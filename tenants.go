package bps

import (
	"fmt"

	"bps/internal/qos"
)

// QoSConfig configures the multi-tenant admission controller: the
// control window, the throttle's backoff/recovery multipliers, the
// minimum trickle rate, the token-bucket burst depth, and the shed
// threshold. The zero value disables QoS — tenants share the system
// unarbitrated, exactly as SimulateConcurrentApps runs applications.
type QoSConfig = qos.Config

// TenantSpec describes one tenant in a multi-tenant simulation: its
// identity and service contract (name, priority, optional protected
// BPS floor) plus its sequential workload.
type TenantSpec = qos.TenantSpec

// QoSTenant is a tenant's identity and contract (the embedded head of
// TenantSpec).
type QoSTenant = qos.Tenant

// QoSReport is the controller's end-of-run summary: per-tenant windowed
// metric series, throttle counters, and LASSi-style interference
// scores.
type QoSReport = qos.Report

// QoSTenantReport is one tenant's entry in a QoSReport.
type QoSTenantReport = qos.TenantReport

// ErrShed is the sentinel wrapped into accesses rejected by admission
// control while their tenant is in shed mode.
var ErrShed = qos.ErrShed

// SimulateTenants runs several tenants' workloads concurrently on one
// I/O system under the QoS admission controller: every tenant's
// requests carry the tenant identity through the trace stack, the
// controller tracks per-tenant windowed delivery, and — when q.Enabled
// and a tenant declares a BPSFloor — lower-priority tenants are
// token-bucket throttled (and eventually shed) whenever the protected
// tenant's windowed block rate falls below its floor.
//
// It returns the combined report over every tenant's accesses (the
// paper's global collection), one report per tenant in declaration
// order, and the controller's QoS summary. With q disabled the
// simulated timeline is identical to running the same workloads without
// the controller: admission control is timing-neutral until it acts.
func SimulateTenants(cfg RunConfig, q QoSConfig, tenants ...TenantSpec) (combined RunReport, perTenant []RunReport, report *QoSReport, err error) {
	if len(tenants) == 0 {
		return RunReport{}, nil, nil, fmt.Errorf("bps: no tenants given")
	}
	e, err := newEngine(cfg)
	if err != nil {
		return RunReport{}, nil, nil, err
	}
	ob := attachObserver(e, cfg)
	res, err := qos.Run(e, qos.RunSpec{
		Servers: cfg.Storage.Servers,
		Media:   cfg.Storage.Media,
		Faults:  faultPlan(cfg),
		QoS:     q,
		Tenants: tenants,
	})
	if err != nil {
		return RunReport{}, nil, nil, fmt.Errorf("bps: %w", err)
	}
	for _, t := range res.Tenants {
		perTenant = append(perTenant, RunReport{
			Metrics: t.Metrics,
			Records: t.Records,
			Errors:  t.Errors,
		})
	}
	ob = finishObservation(ob, res.Records)
	combined = RunReport{
		Metrics:     res.Combined,
		Records:     res.Records,
		Errors:      res.Errors,
		Obs:         ob,
		Attribution: ob.Attribution(),
	}
	return combined, perTenant, res.Report, nil
}
