package bps

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Figure benchmarks
// execute the corresponding experiment sweep at 1/256 of the paper's data
// volume and report the headline normalized-CC values as custom metrics,
// so the benchmark output doubles as the reproduction record:
//
//	BenchmarkFig05SizesHDD  ...  0.96 CC(BPS)  -0.96 CC(IOPS)
//
// Ablation benchmarks at the bottom quantify the design choices called
// out in DESIGN.md §6.

import (
	"io"
	"math/rand"
	"testing"

	"bps/internal/core"
	"bps/internal/device"
	"bps/internal/experiments"
	"bps/internal/fsim"
	"bps/internal/middleware"
	"bps/internal/report"
	"bps/internal/sim"
	"bps/internal/trace"
	"bps/internal/workload"
)

// benchParams is the scale every figure benchmark runs at.
func benchParams() experiments.Params {
	return experiments.Params{Scale: 1.0 / 256, Seed: 42}
}

// benchFigure runs one figure sweep per iteration and reports its CC
// values (when present) as custom benchmark metrics.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		f, err := s.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	if fig.CC != nil {
		for _, k := range core.Kinds {
			b.ReportMetric(fig.CC.CC[k], "CC("+k.String()+")")
		}
	} else if len(fig.Points) > 0 {
		first := fig.Points[0].Metrics
		last := fig.Points[len(fig.Points)-1].Metrics
		b.ReportMetric(first.Value(fig.DetailKind), fig.DetailKind.String()+"-first")
		b.ReportMetric(last.Value(fig.DetailKind), fig.DetailKind.String()+"-last")
	}
}

// --- Tables ---

// BenchmarkTable1Directions renders the paper's Table 1 (expected CC
// directions per metric).
func BenchmarkTable1Directions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.WriteTable1(io.Discard)
	}
}

// BenchmarkTable2Sets renders the paper's Table 2 (experiment sets).
func BenchmarkTable2Sets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.WriteTable2(io.Discard)
	}
}

// --- Figures 4–12 ---

// BenchmarkFig04Devices regenerates Fig. 4: CC across storage devices.
func BenchmarkFig04Devices(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig05SizesHDD regenerates Fig. 5: CC across I/O sizes, HDD.
func BenchmarkFig05SizesHDD(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig06SizesSSD regenerates Fig. 6: CC across I/O sizes, SSD.
func BenchmarkFig06SizesSSD(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig07IOPSDetail regenerates Fig. 7: IOPS vs execution time.
func BenchmarkFig07IOPSDetail(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig08ARPTDetail regenerates Fig. 8: ARPT vs execution time.
func BenchmarkFig08ARPTDetail(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig09Concurrency regenerates Fig. 9: CC under pure
// concurrency.
func BenchmarkFig09Concurrency(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10ARPTConcurrency regenerates Fig. 10: ARPT vs execution
// time under concurrency.
func BenchmarkFig10ARPTConcurrency(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11IOR regenerates Fig. 11: CC for IOR on a shared file.
func BenchmarkFig11IOR(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12Sieving regenerates Fig. 12: CC under data sieving.
func BenchmarkFig12Sieving(b *testing.B) { benchFigure(b, "fig12") }

// --- The Fig. 3 algorithm (§III.C overhead analysis) ---

func randomRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, n)
	for i := range recs {
		start := Time(rng.Int63n(int64(10 * Second)))
		recs[i] = Record{
			PID:    int64(i % 16),
			Blocks: 128,
			Start:  start,
			End:    start + Time(rng.Int63n(int64(5*Millisecond))),
		}
	}
	return recs
}

// BenchmarkOverlapTime measures the O(n log n) overlapped-time
// computation on unsorted records, the cost §III.C bounds.
func BenchmarkOverlapTime(b *testing.B) {
	for _, n := range []int{1000, 65535, 1 << 20} {
		recs := randomRecords(n)
		b.Run(sizeName(n), func(b *testing.B) {
			work := make([]Record, len(recs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, recs) // OverlapIntervals sorts in place
				if OverlapTime(work) == 0 {
					b.Fatal("zero union")
				}
			}
		})
	}
}

// BenchmarkOverlapStreaming measures the O(1)-memory streaming merge on
// pre-sorted input.
func BenchmarkOverlapStreaming(b *testing.B) {
	g := trace.FromRecords(randomRecords(65535))
	g.SortByStart()
	recs := g.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc core.MergeAccumulator
		for _, r := range recs {
			acc.Add(r.Start, r.End)
		}
		if acc.Total() == 0 {
			b.Fatal("zero union")
		}
	}
}

// BenchmarkTraceFootprint encodes the paper's 65535-operation example in
// the 32-byte record format (§III.C: ≈ 2 MiB, "about 3 megabytes").
func BenchmarkTraceFootprint(b *testing.B) {
	recs := randomRecords(65535)
	b.SetBytes(int64(len(recs)) * RecordSize)
	for i := 0; i < b.N; i++ {
		if err := WriteTrace(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationOverlapVsSum compares the union time with the naive
// duration sum on a heavily concurrent trace: the two diverge by the
// concurrency factor, which is exactly why ARPT misleads.
func BenchmarkAblationOverlapVsSum(b *testing.B) {
	recs := randomRecords(65535)
	var union, sum Time
	for i := 0; i < b.N; i++ {
		work := make([]Record, len(recs))
		copy(work, recs)
		union = OverlapTime(work)
		sum = SumTime(recs)
	}
	b.ReportMetric(float64(sum)/float64(union), "sum/union")
}

// BenchmarkAblationSieveBuffer sweeps the data-sieving buffer size on a
// fixed noncontiguous pattern and reports each run's execution time:
// larger buffers amortize per-access costs until the extent is covered.
func BenchmarkAblationSieveBuffer(b *testing.B) {
	for _, buf := range []int64{256 << 10, 1 << 20, 4 << 20} {
		buf := buf
		b.Run(sizeName(int(buf)), func(b *testing.B) {
			var exec Time
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(1)
				dev := device.NewHDD(e, device.DefaultHDD())
				fs := fsim.New(e, dev, fsim.Config{})
				f, err := fs.Create("f", 1<<30)
				if err != nil {
					b.Fatal(err)
				}
				env := &workload.LocalEnv{FS: fs, Files: []*fsim.File{f}}
				w := workload.Noncontig{
					Label: "ablate", Processes: 1,
					RegionCount: 8192, RegionSize: 256, RegionSpacing: 2048,
					RegionsPerCall: 1024, Sieving: true, SieveBufSize: buf,
				}
				res, err := w.Run(e, env)
				if err != nil {
					b.Fatal(err)
				}
				exec = res.ExecTime
			}
			b.ReportMetric(exec.Seconds(), "exec-s")
		})
	}
}

// BenchmarkAblationSievingOnOff compares sieving against direct region
// reads at the paper's geometry: the crossover that motivated data
// sieving in the first place.
func BenchmarkAblationSievingOnOff(b *testing.B) {
	for _, sieving := range []bool{true, false} {
		name := "direct"
		if sieving {
			name = "sieving"
		}
		sieving := sieving
		b.Run(name, func(b *testing.B) {
			var exec Time
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(1)
				dev := device.NewHDD(e, device.DefaultHDD())
				fs := fsim.New(e, dev, fsim.Config{})
				f, err := fs.Create("f", 1<<30)
				if err != nil {
					b.Fatal(err)
				}
				env := &workload.LocalEnv{FS: fs, Files: []*fsim.File{f}}
				w := workload.Noncontig{
					Label: "ablate", Processes: 1,
					RegionCount: 4096, RegionSize: 256, RegionSpacing: 1024,
					RegionsPerCall: 1024, Sieving: sieving,
				}
				res, err := w.Run(e, env)
				if err != nil {
					b.Fatal(err)
				}
				exec = res.ExecTime
			}
			b.ReportMetric(exec.Seconds(), "exec-s")
		})
	}
}

// BenchmarkAblationSSDChannels sweeps the SSD channel count for one
// large sequential read: device-internal parallelism is what lets large
// requests approach full bandwidth.
func BenchmarkAblationSSDChannels(b *testing.B) {
	for _, ch := range []int{1, 4, 8} {
		ch := ch
		b.Run(sizeName(ch), func(b *testing.B) {
			var took Time
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(1)
				cfg := device.DefaultSSD()
				cfg.Channels = ch
				d := device.NewSSD(e, cfg)
				e.Spawn("r", func(p *sim.Proc) {
					for off := int64(0); off < 64<<20; off += 8 << 20 {
						if err := d.Access(p, device.Request{Offset: off, Size: 8 << 20}); err != nil {
							b.Error(err)
						}
					}
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				took = e.Now()
			}
			b.ReportMetric(took.Seconds(), "exec-s")
		})
	}
}

// BenchmarkAblationServerReadahead compares interleaved shared-file
// streams on an HDD server with and without kernel readahead: without
// it, per-request seeks collapse aggregate throughput.
func BenchmarkAblationServerReadahead(b *testing.B) {
	run := func(b *testing.B, ra int64) Time {
		e := sim.NewEngine(1)
		dev := device.NewHDD(e, device.DefaultHDD())
		cfg := fsim.Config{}
		if ra > 0 {
			cfg.CacheBytes = 1 << 30
			cfg.ReadAhead = ra
		}
		fs := fsim.New(e, dev, cfg)
		f, err := fs.Create("f", 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			base := int64(s) * (16 << 20)
			e.Spawn("stream", func(p *sim.Proc) {
				for off := int64(0); off < 16<<20; off += 64 << 10 {
					if err := f.ReadAt(p, base+off, 64<<10); err != nil {
						b.Error(err)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		return e.Now()
	}
	for _, ra := range []int64{0, 1 << 20} {
		name := "readahead"
		if ra == 0 {
			name = "none"
		}
		ra := ra
		b.Run(name, func(b *testing.B) {
			var took Time
			for i := 0; i < b.N; i++ {
				took = run(b, ra)
			}
			b.ReportMetric(took.Seconds(), "exec-s")
		})
	}
}

// BenchmarkSimEngine measures raw event throughput of the DES kernel.
func BenchmarkSimEngine(b *testing.B) {
	e := sim.NewEngine(1)
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return itoa(n>>20) + "Mi"
	case n >= 1<<10 && n%(1<<10) == 0:
		return itoa(n>>10) + "Ki"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationIOScheduler compares FCFS vs SSTF vs SCAN elevators
// on a 4-stream random-read HDD load.
func BenchmarkAblationIOScheduler(b *testing.B) {
	run := func(policy device.SchedPolicy) Time {
		e := sim.NewEngine(11)
		hdd := device.NewHDD(e, device.DefaultHDD())
		sched := device.NewScheduler(e, hdd, policy)
		for k := 0; k < 4; k++ {
			k := k
			e.Spawn("client", func(p *sim.Proc) {
				for i := 0; i < 32; i++ {
					off := int64((i*7919+k*104729)%60000) * 4096 * 1000
					off %= hdd.Capacity() - 4096
					off -= off % 512
					if err := sched.Access(p, device.Request{Offset: off, Size: 4096}); err != nil {
						b.Error(err)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		return e.Now()
	}
	for _, policy := range []device.SchedPolicy{device.FCFS, device.SSTF, device.SCAN} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			var took Time
			for i := 0; i < b.N; i++ {
				took = run(policy)
			}
			b.ReportMetric(took.Seconds(), "exec-s")
		})
	}
}

// BenchmarkAblationRAID0 sweeps the member count for one large
// sequential read on striped HDDs.
func BenchmarkAblationRAID0(b *testing.B) {
	run := func(members int) Time {
		e := sim.NewEngine(1)
		devs := make([]device.Device, members)
		for i := range devs {
			devs[i] = device.NewHDD(e, device.DefaultHDD())
		}
		raid := device.NewRAID0(e, "raid0", devs, 64<<10)
		e.Spawn("r", func(p *sim.Proc) {
			for off := int64(0); off < 64<<20; off += 8 << 20 {
				if err := raid.Access(p, device.Request{Offset: off, Size: 8 << 20}); err != nil {
					b.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		return e.Now()
	}
	for _, members := range []int{1, 2, 4, 8} {
		members := members
		b.Run(sizeName(members), func(b *testing.B) {
			var took Time
			for i := 0; i < b.N; i++ {
				took = run(members)
			}
			b.ReportMetric(took.Seconds(), "exec-s")
		})
	}
}

// BenchmarkAblationCollectiveVsSieving compares the two ROMIO
// optimizations on an interleaved pattern (see examples/collectiveio).
func BenchmarkAblationCollectiveVsSieving(b *testing.B) {
	run := func(collective bool) Time {
		e := sim.NewEngine(1)
		dev := device.NewHDD(e, device.DefaultHDD())
		fs := fsim.New(e, dev, fsim.Config{})
		const regions, regionSize, procs = 512, 16 << 10, 4
		f, err := fs.Create("f", regions*regionSize)
		if err != nil {
			b.Fatal(err)
		}
		target := middleware.NewTarget(f.Layer(), f.Name(), f.Size())
		var coll *middleware.Collective
		if collective {
			coll = middleware.NewCollective(e, target, procs, middleware.CollectiveConfig{})
		}
		for pid := 0; pid < procs; pid++ {
			pid := pid
			col := trace.NewCollector(int64(pid))
			e.Spawn("rank", func(p *sim.Proc) {
				var rs []middleware.Region
				for i := pid; i < regions; i += procs {
					rs = append(rs, middleware.Region{Off: int64(i) * regionSize, Size: regionSize})
				}
				if collective {
					if err := coll.ReadAll(p, col, rs); err != nil {
						b.Error(err)
					}
					return
				}
				m := middleware.NewMPIIO(target, col, middleware.MPIIOConfig{DataSieving: true})
				if err := m.ReadRegions(p, rs); err != nil {
					b.Error(err)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		return e.Now()
	}
	for _, mode := range []bool{false, true} {
		name := "sieving"
		if mode {
			name = "collective"
		}
		mode := mode
		b.Run(name, func(b *testing.B) {
			var took Time
			for i := 0; i < b.N; i++ {
				took = run(mode)
			}
			b.ReportMetric(took.Seconds(), "exec-s")
		})
	}
}

// BenchmarkExt1Prefetch regenerates the ext1 extension experiment.
func BenchmarkExt1Prefetch(b *testing.B) { benchFigure(b, "ext1") }

// BenchmarkExt2WriteSweep regenerates the ext2 extension experiment.
func BenchmarkExt2WriteSweep(b *testing.B) { benchFigure(b, "ext2") }

// BenchmarkExt3AccessMethods regenerates the ext3 extension experiment.
func BenchmarkExt3AccessMethods(b *testing.B) { benchFigure(b, "ext3") }
