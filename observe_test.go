package bps_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bps"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// goldenCfg is the fixed scenario of the no-op golden test: a two-server
// HDD cluster, so all three instrumented layers (device, net, pfs) are
// on the simulated path.
func goldenCfg() bps.RunConfig {
	return bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true},
		Seed:    7,
	}
}

func goldenRun(t *testing.T, cfg bps.RunConfig) bps.RunReport {
	t.Helper()
	rep, err := bps.SimulateSequentialRead(cfg, 2, 256<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestNoopHooksGolden locks the uninstrumented run's records against a
// golden file: the no-op observability hooks must not change a single
// simulation timestamp across refactors.
func TestNoopHooksGolden(t *testing.T) {
	rep := goldenRun(t, goldenCfg())
	var buf bytes.Buffer
	if err := bps.WriteTraceCSV(&buf, rep.Records); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "noop_records.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("records differ from %s (rerun with -update-golden if the change is intended)\ngot:\n%s",
			golden, buf.String())
	}
	if rep.Obs != nil {
		t.Fatal("uninstrumented run returned an observer")
	}
}

// TestObservedRunIsTimingNeutral runs the golden scenario with the full
// observability subsystem attached and requires byte-identical records
// and metrics: observation must never perturb the simulation.
func TestObservedRunIsTimingNeutral(t *testing.T) {
	plain := goldenRun(t, goldenCfg())

	cfg := goldenCfg()
	cfg.Observe = &bps.ObserveOptions{
		ChromeTrace:   true,
		SampleEvery:   bps.Millisecond,
		QueueCounters: true,
	}
	observed := goldenRun(t, cfg)

	if !reflect.DeepEqual(plain.Records, observed.Records) {
		t.Fatal("observed run produced different records")
	}
	if plain.Metrics != observed.Metrics {
		t.Fatalf("observed run produced different metrics:\nplain:    %+v\nobserved: %+v",
			plain.Metrics, observed.Metrics)
	}
	if observed.Obs == nil {
		t.Fatal("observed run returned no observer")
	}
}

// TestChromeTraceCoversLayers checks the exported Chrome trace of a
// cluster run: valid JSON with span events from the device, net, pfs,
// and app layers.
func TestChromeTraceCoversLayers(t *testing.T) {
	cfg := goldenCfg()
	cfg.Observe = &bps.ObserveOptions{ChromeTrace: true, SampleEvery: bps.Millisecond}
	rep := goldenRun(t, cfg)

	var buf bytes.Buffer
	if err := rep.Obs.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range f.TraceEvents {
		if ev.Phase == "X" {
			cats[ev.Cat]++
		}
	}
	for _, layer := range []string{"device", "net", "pfs", "app"} {
		if cats[layer] == 0 {
			t.Fatalf("no %q spans in trace (cats: %v)", layer, cats)
		}
	}
}

// TestWriteChromeTraceFromRecords exports records without a simulation.
func TestWriteChromeTraceFromRecords(t *testing.T) {
	records := []bps.Record{
		{PID: 1, Blocks: 8, Start: 0, End: 1000},
		{PID: 2, Blocks: 8, Start: 500, End: 2000},
	}
	var buf bytes.Buffer
	if err := bps.WriteChromeTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	events, ok := f["traceEvents"].([]any)
	if !ok || len(events) < 4 { // 2 process metas + 2 thread metas + 2 spans
		t.Fatalf("traceEvents = %v", f["traceEvents"])
	}
}
