// Package bps is a Go implementation of the BPS (Blocks Per Second) I/O
// performance metric from He, Sun, and Yin, "BPS: A Performance Metric of
// I/O System" (IEEE IPDPSW 2013), together with the full simulated
// parallel-I/O testbed used to reproduce the paper's evaluation.
//
// The package has three layers:
//
//   - The metric toolkit: trace records (one 32-byte record per
//     application I/O access), the overlapped-I/O-time computation
//     (paper Fig. 3), and the four metrics under comparison — IOPS,
//     bandwidth, average response time (ARPT), and BPS — plus the
//     correlation statistics of the paper's methodology.
//
//   - A high-level simulation API (Simulate*) that runs IOzone-, IOR-,
//     and HPIO-style workloads on simulated storage stacks (HDD/SSD,
//     direct-attached or PVFS-like parallel file system) and returns
//     measured metrics.
//
//   - The paper-reproduction suite (NewSuite) regenerating every
//     evaluation table and figure.
//
// The heavy lifting lives in internal packages (sim, device, netsim,
// fsim, pfs, middleware, trace, core, stats, workload, experiments);
// this package is the supported surface.
package bps

import (
	"io"

	"bps/internal/core"
	"bps/internal/sim"
	"bps/internal/trace"
)

// BlockSize is the I/O block unit BPS counts in: 512 bytes.
const BlockSize = trace.BlockSize

// RecordSize is the encoded size of one trace record: 32 bytes, matching
// the paper's overhead analysis (§III.C).
const RecordSize = trace.RecordSize

// Time is a simulated timestamp or duration in nanoseconds.
type Time = sim.Time

// Time unit constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Record is one application I/O access: process ID, required size in
// 512-byte blocks, start time, and end time.
type Record = trace.Record

// Collector accumulates the records of one process.
type Collector = trace.Collector

// NewCollector returns a collector for the given process ID.
func NewCollector(pid int64) *Collector { return trace.NewCollector(pid) }

// Gather merges per-process collectors into a global record collection.
func Gather(collectors ...*Collector) *trace.Global { return trace.Gather(collectors...) }

// BlocksOf converts a byte count to whole 512-byte blocks, rounding up.
func BlocksOf(bytes int64) int64 { return trace.BlocksOf(bytes) }

// Metrics holds one run's measurements; its methods derive the four
// metric values.
type Metrics = core.Metrics

// MetricKind identifies one of the four metrics under comparison.
type MetricKind = core.MetricKind

// The four metrics (paper §II and Table 1).
const (
	IOPS = core.IOPS
	BW   = core.BW
	ARPT = core.ARPT
	BPS  = core.BPS
)

// MetricKinds lists the metrics in the paper's presentation order.
var MetricKinds = core.Kinds

// OverlapTime computes T in the BPS equation: the union of all access
// intervals, counting concurrent time once and excluding idle gaps
// (paper Fig. 3 algorithm, O(n log n)).
func OverlapTime(records []Record) Time { return core.OverlapTime(records) }

// SumTime is the naive alternative: the arithmetic sum of access
// durations, counting concurrency multiply (ARPT's numerator).
func SumTime(records []Record) Time { return core.SumTime(records) }

// ComputeMetrics derives a run's metrics from its records, the bytes
// actually moved at the file-system level, and the application execution
// time.
func ComputeMetrics(records []Record, movedBytes int64, execTime Time) Metrics {
	return core.Compute(trace.FromRecords(records), movedBytes, execTime)
}

// TimelinePoint is the measurement of one fixed window of a run.
type TimelinePoint = core.TimelinePoint

// Timeline slices a run into fixed windows and measures each: completed
// operations and blocks are attributed to the window containing the
// access's completion, busy time is the exact intersection of the
// overlap union with the window, and each window's BPS/IOPS follow. It
// turns the single-number BPS into a time series.
func Timeline(records []Record, window Time) ([]TimelinePoint, error) {
	return core.Timeline(trace.FromRecords(records), window)
}

// Trace codecs: the binary format is the paper's 32-byte record (four
// little-endian int64s); CSV and JSONL forms exist for interoperability.

// WriteTrace encodes records in the 32-byte binary format.
func WriteTrace(w io.Writer, records []Record) error { return trace.WriteBinary(w, records) }

// ReadTrace decodes records from the 32-byte binary format.
func ReadTrace(r io.Reader) ([]Record, error) { return trace.ReadBinary(r) }

// WriteTraceCSV encodes records as CSV with a header row.
func WriteTraceCSV(w io.Writer, records []Record) error { return trace.WriteCSV(w, records) }

// ReadTraceCSV decodes records from CSV.
func ReadTraceCSV(r io.Reader) ([]Record, error) { return trace.ReadCSV(r) }

// WriteTraceJSONL encodes records as one JSON object per line.
func WriteTraceJSONL(w io.Writer, records []Record) error { return trace.WriteJSONL(w, records) }

// ReadTraceJSONL decodes records from JSONL.
func ReadTraceJSONL(r io.Reader) ([]Record, error) { return trace.ReadJSONL(r) }

// ParseBlkparse converts blktrace/blkparse text output into records:
// issue (D) / completion (C) pairs become accesses, with the sector
// count as the block count (blktrace sectors are 512 bytes, the paper's
// block unit). dropped counts issues that never completed.
func ParseBlkparse(r io.Reader) (records []Record, dropped int, err error) {
	return trace.ParseBlkparse(r)
}
