package bps

import (
	"fmt"

	"bps/internal/backend"
	"bps/internal/clock"
	"bps/internal/live"
	"bps/internal/sim"
)

// LiveConfig parameterizes a live measurement run: the same access
// streams a simulation replays (ReplayAccesses), but issued for real —
// by concurrent OS goroutines against an actual filesystem — through
// the same middleware chain and metric stack. The resulting RunReport
// is shape-identical to a simulated one, so every report writer and
// figure consumer works on live data unchanged.
type LiveConfig struct {
	// Dir, when non-empty, measures a real directory tree rooted there
	// (the os backend, pread/pwrite on real files). Empty selects the
	// in-memory backend (memfs): os-identical semantics, no disk.
	Dir string

	// Direct opens data files with O_DIRECT on the os backend where the
	// platform supports it (Linux), bypassing the page cache so the
	// numbers reflect device speeds. Ignored by the memory backend.
	Direct bool

	// Wall selects wall-clock timing: timestamps are real elapsed
	// nanoseconds and recorded think time paces for real. When false,
	// each worker runs on a deterministic virtual clock lane advanced by
	// the cost model below — reproducible byte-identical results, the
	// mode the pinned livemem figure uses.
	Wall bool

	// CostPerOp and CostBytesPerSec form the virtual-mode service-time
	// model (ignored under Wall). Zero values default to 100 µs per op
	// and 200 MB/s, so casual virtual runs produce non-degenerate
	// windows.
	CostPerOp       Time
	CostBytesPerSec float64

	// WindowEvery sizes the streaming BPS/IOPS/BW/ARPT windows
	// (default 10 ms).
	WindowEvery Time

	// Seed derives per-worker RNG streams; equal seeds give identical
	// virtual-mode results.
	Seed int64

	// Label names the run in errors.
	Label string
}

// backendFor builds the configured backend.
func (cfg LiveConfig) backendFor() backend.FS {
	if cfg.Dir != "" {
		return backend.NewOSFS(cfg.Dir, cfg.Direct)
	}
	return backend.NewMemFS()
}

// liveConfig translates the public knobs into the driver's config.
func (cfg LiveConfig) liveConfig() live.Config {
	mode := live.Virtual
	if cfg.Wall {
		mode = live.Wall
	}
	cost := clock.CostModel{PerOp: cfg.CostPerOp, BytesPerSec: cfg.CostBytesPerSec}
	if cost.PerOp == 0 && cost.BytesPerSec == 0 {
		cost = clock.CostModel{PerOp: 100 * sim.Microsecond, BytesPerSec: 200e6}
	}
	label := cfg.Label
	if label == "" {
		label = "live"
	}
	return live.Config{
		FS:          cfg.backendFor(),
		Mode:        mode,
		Cost:        cost,
		WindowEvery: cfg.WindowEvery,
		Seed:        cfg.Seed,
		Label:       label,
	}
}

// MeasureAccesses issues an offset-aware access stream — generated
// (iogen), ingested from a Darshan-style log (ReadLog), or handwritten —
// against a real backend and measures it: one concurrent worker per
// recorded process, recorded think time preserved, application-required
// blocks and actually-moved bytes counted exactly as in a simulation.
// RunReport.Obs is nil (live runs have no engine tracer); Attribution
// carries the windowed metric series but no per-layer blame.
func MeasureAccesses(cfg LiveConfig, accs []Access) (RunReport, error) {
	if len(accs) == 0 {
		return RunReport{}, fmt.Errorf("bps: empty access stream")
	}
	rep, err := live.Run(cfg.liveConfig(), accs)
	if err != nil {
		return RunReport{}, fmt.Errorf("bps: live: %w", err)
	}
	return RunReport{
		Metrics:     rep.Metrics,
		Records:     rep.Records,
		Errors:      rep.Errors,
		Attribution: rep.Attribution,
	}, nil
}
