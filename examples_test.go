package bps_test

// Smoke tests for the runnable examples: each must build and exit 0.
// They guard the documentation's entry points against rot; skipped in
// -short mode because each `go run` pays a build.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 3 {
		t.Fatalf("only %d examples found; the repo promises at least 3", len(dirs))
	}
	return dirs
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
