package bps_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"bps"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/sim"
)

func replayCfg() bps.RunConfig {
	return bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 4, SharedFile: true},
		Seed:    1,
		Observe: &bps.ObserveOptions{
			SampleEvery: sim.Millisecond,
			WindowEvery: 10 * sim.Millisecond,
		},
	}
}

// TestReplayLogDeterminism is the ISSUE's acceptance criterion: an
// ingested sample log replayed twice produces bit-identical window
// series and forecasts.
func TestReplayLogDeterminism(t *testing.T) {
	l, err := bps.ReadLog("testdata/darshan_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (bps.RunReport, []forecast.Point, []forecast.Alert) {
		rep, err := bps.ReplayLog(replayCfg(), l)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Attribution == nil {
			t.Fatal("no attribution report")
		}
		tr := forecast.NewTracker(forecast.Config{})
		for _, w := range rep.Attribution.Windows {
			tr.ObserveWindow(w)
		}
		return rep, tr.SeriesByName("bps").Points(), tr.Alerts()
	}
	rep1, pts1, al1 := run()
	rep2, pts2, al2 := run()

	if rep1.Metrics != rep2.Metrics {
		t.Errorf("metrics diverged across replays:\n%+v\n%+v", rep1.Metrics, rep2.Metrics)
	}
	if !reflect.DeepEqual(rep1.Attribution.Windows, rep2.Attribution.Windows) {
		t.Error("window series diverged across replays")
	}
	if !reflect.DeepEqual(pts1, pts2) {
		t.Error("forecasts diverged across replays")
	}
	if !reflect.DeepEqual(al1, al2) {
		t.Error("alerts diverged across replays")
	}
	if len(rep1.Attribution.Windows) == 0 {
		t.Fatal("replay produced no windows")
	}
	if len(pts1) == 0 {
		t.Fatal("replay produced no forecast points")
	}
}

// TestReplayLogMeasuresB checks the replay pushes exactly the log's
// bytes through the stack: B must equal total segment bytes / 512.
func TestReplayLogMeasuresB(t *testing.T) {
	l, err := bps.ReadLog("testdata/darshan_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	var bytesTotal int64
	for _, s := range l.Segments {
		bytesTotal += s.Length
	}
	rep, err := bps.ReplayLog(replayCfg(), l)
	if err != nil {
		t.Fatal(err)
	}
	if want := bytesTotal / 512; rep.Metrics.Blocks != want {
		t.Fatalf("B = %d, want %d (log bytes %d / 512)", rep.Metrics.Blocks, want, bytesTotal)
	}
	if rep.Metrics.IOTime <= 0 || rep.Metrics.BPS() <= 0 {
		t.Fatalf("degenerate metrics: T=%v BPS=%v", rep.Metrics.IOTime, rep.Metrics.BPS())
	}
}

// TestLogRoundTripThroughPublicCodecs writes the parsed sample back
// out through both public codecs and reparses, requiring identical
// segment tables.
func TestLogRoundTripThroughPublicCodecs(t *testing.T) {
	l, err := bps.ReadLog("testdata/darshan_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, jlBuf bytes.Buffer
	if err := bps.WriteLogCSV(&csvBuf, l); err != nil {
		t.Fatal(err)
	}
	if err := bps.WriteLogJSONL(&jlBuf, l); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := bps.ParseLogCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := bps.ParseLogJSONL(&jlBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCSV.Segments, l.Segments) {
		t.Error("CSV round trip changed the segment table")
	}
	if !reflect.DeepEqual(fromJSONL.Segments, l.Segments) {
		t.Error("JSONL round trip changed the segment table")
	}
}

// TestReadLogsMergesAndValidates splits the sample by rank into two
// JSONL files and merges them back through ReadLogs.
func TestReadLogsMergesAndValidates(t *testing.T) {
	l, err := bps.ReadLog("testdata/darshan_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, 0, 2)
	for _, rank := range l.Ranks() {
		part := &bps.IOLog{}
		for _, s := range l.Segments {
			if s.Rank == rank {
				part.Segments = append(part.Segments, s)
			}
		}
		part.SynthesizeCounters()
		var buf bytes.Buffer
		if err := bps.WriteLogJSONL(&buf, part); err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("%s/rank%d.jsonl", dir, rank)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	merged, err := bps.ReadLogs(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != l.Len() {
		t.Fatalf("merged %d segments, want %d", merged.Len(), l.Len())
	}
	accA, extA := merged.Accesses()
	accB, extB := l.Accesses()
	if !reflect.DeepEqual(accA, accB) || !reflect.DeepEqual(extA, extB) {
		t.Error("merged per-rank logs reconstruct a different access stream")
	}
}

// TestReplayLogRejectsBadLog checks validation runs before replay.
func TestReplayLogRejectsBadLog(t *testing.T) {
	l := &bps.IOLog{Segments: []bps.LogSegment{{Rank: 0, File: "f", Length: -5, End: 1}}}
	if _, err := bps.ReplayLog(replayCfg(), l); err == nil {
		t.Fatal("invalid log replayed without error")
	}
	if _, err := bps.ReadLogs(); err == nil {
		t.Fatal("ReadLogs with no paths succeeded")
	}
	if _, err := bps.ReadLog(t.TempDir() + "/missing.csv"); err == nil {
		t.Fatal("missing file read without error")
	}
}

// TestServeSnapshotJSONStable ties the public replay path to the serve
// layer: replaying under two hooked publishers yields byte-identical
// snapshot JSON, the wire-level form of the determinism criterion.
func TestServeSnapshotJSONStable(t *testing.T) {
	l, err := bps.ReadLog("testdata/darshan_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	snap := func() string {
		pub := serve.NewPublisher("test", forecast.Config{})
		cfg := replayCfg()
		cfg.Observe.Tick = pub.Hook()
		if _, err := bps.ReplayLog(cfg, l); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(pub.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	s1, s2 := snap(), snap()
	if s1 != s2 {
		t.Fatal("snapshot JSON diverged across identical replays")
	}
	if !strings.Contains(s1, `"series"`) || !strings.Contains(s1, `"windows"`) {
		t.Fatalf("snapshot missing expected sections: %s", s1)
	}
}
