package bps

import (
	"io"

	"bps/internal/obs"
	"bps/internal/obs/attrib"
	"bps/internal/sim"
)

// ObserveOptions configures run observability: Chrome trace-event
// collection, the time-series sampler interval, and per-resource queue
// counter tracks. A nil *ObserveOptions in RunConfig (the default)
// disables observability entirely; an observed run produces bit-identical
// metrics and records to an unobserved one.
type ObserveOptions = obs.Options

// Observer is a run's attached observability handle: the metrics
// registry, sampler series, and Chrome trace buffer collected while the
// simulation ran. RunReport.Obs exposes it after an observed run.
type Observer = obs.Observer

// Attribution is the critical-path profiler's report for one run: the
// per-layer exclusive decomposition of the overlapped time T, folded
// flame-graph stacks, latency quantiles, and the streaming windowed
// time series. RunReport.Attribution exposes it when ObserveOptions
// enabled Attribution or WindowEvery.
type Attribution = attrib.Report

// attachObserver installs an observer on a fresh engine when the run
// config asks for one.
func attachObserver(e *sim.Engine, cfg RunConfig) *Observer {
	if cfg.Observe == nil {
		return nil
	}
	return obs.Attach(e, *cfg.Observe)
}

// finishObservation completes an observed run at teardown: it takes the
// sampler's final sample (the tail the daemon's pending tick never
// reaches) and adds the gathered application records to the trace and
// the attribution profiler (one "app" span per access, one Chrome
// thread per PID), aligning the application timeline with the per-layer
// spans recorded live.
func finishObservation(ob *Observer, records []Record) *Observer {
	if ob == nil {
		return nil
	}
	ob.FinishSampling()
	for _, r := range records {
		ob.AddAppRecord(r.PID, r.Blocks, r.Start, r.End)
	}
	return ob
}

// WriteChromeTrace writes records as Chrome trace-event JSON (loadable
// in Perfetto or chrome://tracing): one thread per process ID, one
// complete event per access. It works on any record source — a prior
// simulation, iogen output, or imported blkparse data — without running
// a simulation. For per-layer spans underneath the application
// intervals, run with RunConfig.Observe and use Observer.WriteChromeTrace.
func WriteChromeTrace(w io.Writer, records []Record) error {
	buf := obs.NewTraceBuffer()
	for _, r := range records {
		buf.AppSpan(r.PID, r.Blocks, r.Start, r.End)
	}
	return buf.Write(w)
}
