package bps

import (
	"io"

	"bps/internal/obs"
	"bps/internal/sim"
)

// ObserveOptions configures run observability: Chrome trace-event
// collection, the time-series sampler interval, and per-resource queue
// counter tracks. A nil *ObserveOptions in RunConfig (the default)
// disables observability entirely; an observed run produces bit-identical
// metrics and records to an unobserved one.
type ObserveOptions = obs.Options

// Observer is a run's attached observability handle: the metrics
// registry, sampler series, and Chrome trace buffer collected while the
// simulation ran. RunReport.Obs exposes it after an observed run.
type Observer = obs.Observer

// attachObserver installs an observer on a fresh engine when the run
// config asks for one.
func attachObserver(e *sim.Engine, cfg RunConfig) *Observer {
	if cfg.Observe == nil {
		return nil
	}
	return obs.Attach(e, *cfg.Observe)
}

// finishObservation adds the gathered application records to the trace
// (one "app" span per access, one Chrome thread per PID), aligning the
// application timeline with the per-layer spans recorded live.
func finishObservation(ob *Observer, records []Record) *Observer {
	if ob == nil {
		return nil
	}
	for _, r := range records {
		ob.AddAppRecord(r.PID, r.Blocks, r.Start, r.End)
	}
	return ob
}

// WriteChromeTrace writes records as Chrome trace-event JSON (loadable
// in Perfetto or chrome://tracing): one thread per process ID, one
// complete event per access. It works on any record source — a prior
// simulation, iogen output, or imported blkparse data — without running
// a simulation. For per-layer spans underneath the application
// intervals, run with RunConfig.Observe and use Observer.WriteChromeTrace.
func WriteChromeTrace(w io.Writer, records []Record) error {
	buf := obs.NewTraceBuffer()
	for _, r := range records {
		buf.AppSpan(r.PID, r.Blocks, r.Start, r.End)
	}
	return buf.Write(w)
}
