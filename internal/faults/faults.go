// Package faults provides a seed-deterministic fault plan for the
// simulated I/O stack. One Config describes what misbehaves — transient
// device errors, latency stragglers, throughput degradation, network
// drops and delays, per-server fail/slow windows, and permanent server
// death — and the per-layer adaptors (WrapDevice, NewLink,
// NewServerFaults) instantiate it on a specific engine.
//
// Determinism contract: everything a plan injects is a pure function of
// (Config.Seed, component identity, simulated state). Per-component RNG
// streams are seeded with the same FNV-1a derivation scheme the
// experiment runner uses for engine seeds, and window activity is a
// stateless hash of (seed, period index), so parallel sweep runs remain
// bit-identical to sequential ones.
package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"bps/internal/sim"
)

// DeviceConfig describes per-access device misbehavior. All rates are
// probabilities in [0, 1] drawn independently per access.
type DeviceConfig struct {
	// ErrorRate is the probability an access fails transiently: it
	// consumes its full service time and then returns
	// device.ErrInjectedFault — the paper's unsuccessful-but-counted
	// access (§III.A).
	ErrorRate float64

	// StragglerRate is the probability an access stalls for an extra
	// StragglerDelay after service (a slow sector, an internal retry).
	StragglerRate  float64
	StragglerDelay sim.Time

	// DegradeRate is the probability an access additionally clocks its
	// payload through a DegradedRate bytes/s bottleneck (media falling
	// back to a slow path).
	DegradeRate  float64
	DegradedRate float64
}

func (c DeviceConfig) enabled() bool {
	return c.ErrorRate > 0 || (c.StragglerRate > 0 && c.StragglerDelay > 0) ||
		(c.DegradeRate > 0 && c.DegradedRate > 0)
}

// NetworkConfig describes link-level misbehavior applied per transfer.
type NetworkConfig struct {
	// DropRate is the probability a transfer loses its first copy and
	// pays one full retransmission through the sender's NIC.
	DropRate float64

	// DelayRate is the probability a transfer is held for an extra
	// Delay in the switch (congestion, a slow path).
	DelayRate float64
	Delay     sim.Time
}

func (c NetworkConfig) enabled() bool {
	return c.DropRate > 0 || (c.DelayRate > 0 && c.Delay > 0)
}

// ServerConfig describes PFS-server misbehavior: recurring fail/slow
// windows plus optional permanent death.
type ServerConfig struct {
	// Period and Duration set the window geometry: each Period-long
	// slot independently activates (per the rates below) and an active
	// slot misbehaves for its first Duration.
	Period   sim.Time
	Duration sim.Time

	// FailRate is the per-period probability of a fail window, during
	// which the server silently drops incoming jobs (clients see RPC
	// timeouts).
	FailRate float64

	// SlowRate is the per-period probability of a slow window, during
	// which every job pays an extra SlowDelay of service time.
	SlowRate  float64
	SlowDelay sim.Time

	// DeadRate is the probability a given server dies permanently at
	// DeadAt and never services another job.
	DeadRate float64
	DeadAt   sim.Time
}

func (c ServerConfig) enabled() bool {
	return (c.Period > 0 && c.Duration > 0 && (c.FailRate > 0 || (c.SlowRate > 0 && c.SlowDelay > 0))) ||
		c.DeadRate > 0
}

// Config is a complete fault plan. The zero value injects nothing.
type Config struct {
	// Seed roots every derived RNG stream and window hash.
	Seed int64

	Device  DeviceConfig
	Network NetworkConfig
	Server  ServerConfig
}

// Enabled reports whether the plan injects anything at all.
func (c Config) Enabled() bool {
	return c.Device.enabled() || c.Network.enabled() || c.Server.enabled()
}

// DeviceEnabled reports whether the device layer misbehaves.
func (c Config) DeviceEnabled() bool { return c.Device.enabled() }

// NetworkEnabled reports whether the network layer misbehaves.
func (c Config) NetworkEnabled() bool { return c.Network.enabled() }

// ServerEnabled reports whether the PFS-server layer misbehaves.
func (c Config) ServerEnabled() bool { return c.Server.enabled() }

// Profile returns the canonical degradation plan used by the FaultSweep
// experiments: every layer misbehaves with intensity proportional to
// rate (rate ≈ the probability an individual device access fails).
// rate <= 0 returns the zero Config, which injects nothing.
func Profile(seed int64, rate float64) Config {
	if rate <= 0 {
		return Config{}
	}
	return Config{
		Seed: seed,
		Device: DeviceConfig{
			ErrorRate:      rate,
			StragglerRate:  rate / 2,
			StragglerDelay: 2 * sim.Millisecond,
			DegradeRate:    rate,
			DegradedRate:   40e6,
		},
		Network: NetworkConfig{
			DropRate:  rate / 4,
			DelayRate: rate / 2,
			Delay:     200 * sim.Microsecond,
		},
		Server: ServerConfig{
			Period:    50 * sim.Millisecond,
			Duration:  10 * sim.Millisecond,
			FailRate:  rate / 2,
			SlowRate:  rate,
			SlowDelay: sim.Millisecond,
			DeadRate:  rate / 2,
			DeadAt:    20 * sim.Millisecond,
		},
	}
}

// deriveSeed mirrors the experiment runner's DeriveSeed: FNV-1a over the
// 8-byte little-endian base seed, a stream ID, a zero separator, and a
// component label. Reimplemented here (it is four lines of hashing) so
// the faults package stays importable from every layer without pulling
// in the experiments package.
func deriveSeed(base int64, stream, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(stream))
	h.Write([]byte{0})
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// hash01 maps a derived seed to a uniform float64 in [0, 1).
func hash01(seed int64) float64 {
	// Re-hash so consecutive seeds do not map to correlated values.
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Windows deterministically marks recurring time windows as active
// without any mutable state: period index i activates when
// hash(seed, i) < Rate, and an active period misbehaves for its first
// Duration. Being a pure function of (seed, t), it gives every observer
// the same answer regardless of query order — the property that keeps
// parallel runs bit-identical.
type Windows struct {
	Seed     int64
	Period   sim.Time
	Duration sim.Time
	Rate     float64
}

// Active reports whether t falls inside an active window.
func (w Windows) Active(t sim.Time) bool {
	if w.Period <= 0 || w.Duration <= 0 || w.Rate <= 0 || t < 0 {
		return false
	}
	idx := int64(t / w.Period)
	if t%w.Period >= w.Duration {
		return false
	}
	if w.Rate >= 1 {
		return true
	}
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(w.Seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(idx))
	h.Write(b[:])
	return float64(h.Sum64()>>11)/float64(1<<53) < w.Rate
}

// clamp01 bounds a probability into [0, 1]; NaN becomes 0.
func clamp01(p float64) float64 {
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
