package faults

import (
	"fmt"

	"bps/internal/sim"
)

// ServerFaults is one PFS server's view of the plan: whether it is down
// (permanently dead or inside a fail window) and how much extra service
// delay a slow window imposes. It implements pfs.ServerFaults.
//
// Everything here is a pure function of (Config.Seed, server ID,
// simulated time) — no RNG state, no call-order sensitivity — so any
// mix of workers querying it produces identical schedules.
type ServerFaults struct {
	dead   bool
	deadAt sim.Time
	fail   Windows
	slow   Windows
	delay  sim.Time
}

// NewServerFaults builds server id's view of plan c. With the server
// layer disabled the returned value injects nothing (Down always false,
// SlowDelay always zero).
func NewServerFaults(c Config, id int) *ServerFaults {
	if !c.Server.enabled() {
		return &ServerFaults{}
	}
	sc := c.Server
	label := fmt.Sprintf("ios%d", id)
	return &ServerFaults{
		dead:   hash01(deriveSeed(c.Seed, "server-dead", label)) < clamp01(sc.DeadRate),
		deadAt: sc.DeadAt,
		fail: Windows{
			Seed:     deriveSeed(c.Seed, "server-fail", label),
			Period:   sc.Period,
			Duration: sc.Duration,
			Rate:     clamp01(sc.FailRate),
		},
		slow: Windows{
			Seed:     deriveSeed(c.Seed, "server-slow", label),
			Period:   sc.Period,
			Duration: sc.Duration,
			Rate:     clamp01(sc.SlowRate),
		},
		delay: sc.SlowDelay,
	}
}

// Down reports whether the server drops jobs at time now: permanently
// once dead, transiently inside fail windows.
func (s *ServerFaults) Down(now sim.Time) bool {
	if s.dead && now >= s.deadAt {
		return true
	}
	return s.fail.Active(now)
}

// Dead reports whether the server is scheduled to die permanently.
func (s *ServerFaults) Dead() bool { return s.dead }

// SlowDelay returns the extra per-job service delay at time now (zero
// outside slow windows).
func (s *ServerFaults) SlowDelay(now sim.Time) sim.Time {
	if s.delay > 0 && s.slow.Active(now) {
		return s.delay
	}
	return 0
}
