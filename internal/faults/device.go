package faults

import (
	"math/rand"

	"bps/internal/device"
	"bps/internal/obs"
	"bps/internal/sim"
)

// Injector wraps a device.Device and applies the plan's device-layer
// misbehavior: transient errors (full service time consumed, then
// device.ErrInjectedFault — the access the BPS paper still counts in B),
// latency stragglers, and throughput degradation.
//
// Each injector owns a private RNG stream seeded from
// (Config.Seed, "device", inner name), so two devices in the same plan
// misbehave independently and reordering unrelated draws elsewhere in
// the simulation cannot shift this device's fault pattern.
type Injector struct {
	inner device.Device
	cfg   DeviceConfig
	rng   *rand.Rand
	stats device.Stats

	// Observability handles; nil-safe on unobserved engines.
	injected *obs.Counter
	stalls   *obs.Counter
	degraded *obs.Counter
}

// WrapDevice wraps inner with c's device-layer plan. label identifies
// the device within the plan — it keys the RNG stream and the metric
// names, so give each wrapped device a distinct label (device Name
// fields often repeat, e.g. every testbed HDD is "hdd"); an empty label
// falls back to inner.Name(). When the plan's device layer is disabled
// the inner device is returned unchanged, so a zero-rate sweep point
// runs the exact unwrapped code path.
func WrapDevice(e *sim.Engine, inner device.Device, c Config, label string) device.Device {
	if !c.Device.enabled() {
		return inner
	}
	if label == "" {
		label = inner.Name()
	}
	cfg := c.Device
	cfg.ErrorRate = clamp01(cfg.ErrorRate)
	cfg.StragglerRate = clamp01(cfg.StragglerRate)
	cfg.DegradeRate = clamp01(cfg.DegradeRate)
	reg := obs.Get(e).Registry()
	base := "faults/device/" + label + "/"
	return &Injector{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(deriveSeed(c.Seed, "device", label))),
		injected: reg.Counter(base + "errors"),
		stalls:   reg.Counter(base + "stalls"),
		degraded: reg.Counter(base + "degraded"),
	}
}

// Name implements Device.
func (f *Injector) Name() string { return f.inner.Name() + "+faults" }

// Capacity implements Device.
func (f *Injector) Capacity() int64 { return f.inner.Capacity() }

// BusyTime implements Device.
func (f *Injector) BusyTime() sim.Time { return f.inner.BusyTime() }

// Stats implements Device: the inner device's counters plus the
// injected errors.
func (f *Injector) Stats() device.Stats {
	s := f.inner.Stats()
	s.Errors += f.stats.Errors
	return s
}

// Access implements Device. The inner access always runs first, so
// injected faults consume the full service time of the request they
// fail; straggler and degradation stalls extend it further.
func (f *Injector) Access(p *sim.Proc, req device.Request) error {
	if err := f.inner.Access(p, req); err != nil {
		return err
	}
	if f.cfg.StragglerRate > 0 && f.rng.Float64() < f.cfg.StragglerRate {
		f.stalls.Add(1)
		p.Sleep(f.cfg.StragglerDelay)
	}
	if f.cfg.DegradeRate > 0 && f.rng.Float64() < f.cfg.DegradeRate {
		f.degraded.Add(1)
		p.Sleep(sim.TransferTime(req.Size, f.cfg.DegradedRate))
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		f.stats.Errors++
		f.injected.Add(1)
		return device.ErrInjectedFault
	}
	return nil
}

// EveryNth wraps a device and fails every nth request, 1-based and
// counted after the inner access succeeds — the exact semantics of the
// deprecated device.FaultInjector, kept for stacks that want a
// clock-like fault pattern instead of a seeded plan.
type EveryNth struct {
	inner device.Device
	every uint64
	n     uint64
	stats device.Stats
}

// NewEveryNth wraps inner, failing request numbers k·every.
// every == 0 disables injection.
func NewEveryNth(inner device.Device, every uint64) *EveryNth {
	return &EveryNth{inner: inner, every: every}
}

// Name implements Device.
func (f *EveryNth) Name() string { return f.inner.Name() + "+faults" }

// Capacity implements Device.
func (f *EveryNth) Capacity() int64 { return f.inner.Capacity() }

// BusyTime implements Device.
func (f *EveryNth) BusyTime() sim.Time { return f.inner.BusyTime() }

// Stats implements Device.
func (f *EveryNth) Stats() device.Stats {
	s := f.inner.Stats()
	s.Errors += f.stats.Errors
	return s
}

// Access implements Device.
func (f *EveryNth) Access(p *sim.Proc, req device.Request) error {
	if err := f.inner.Access(p, req); err != nil {
		return err
	}
	f.n++
	if f.every > 0 && f.n%f.every == 0 {
		f.stats.Errors++
		return device.ErrInjectedFault
	}
	return nil
}
