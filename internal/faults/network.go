package faults

import (
	"math/rand"

	"bps/internal/netsim"
	"bps/internal/sim"
)

// Link applies the plan's network-layer misbehavior to fabric
// transfers. It implements netsim.LinkFaults: the fabric consults it
// once per transfer and folds the answer into its timing model (a drop
// costs one extra serialization pass through the sender's NIC, a delay
// is added to the switch latency).
//
// The RNG stream is private to the link and derived from
// (Config.Seed, "net", "link"); draws happen only inside Transfer,
// which the engine serializes, so the stream is deterministic.
type Link struct {
	cfg  NetworkConfig
	seed int64
	rng  *rand.Rand
}

// NewLink builds the plan's link-fault model, or nil when the network
// layer is disabled — a nil LinkFaults leaves the fabric's transfer
// path exactly as it was.
func NewLink(c Config) *Link {
	if !c.Network.enabled() {
		return nil
	}
	cfg := c.Network
	cfg.DropRate = clamp01(cfg.DropRate)
	cfg.DelayRate = clamp01(cfg.DelayRate)
	return &Link{
		cfg:  cfg,
		seed: c.Seed,
		rng:  rand.New(rand.NewSource(deriveSeed(c.Seed, "net", "link"))),
	}
}

// ForSource implements netsim.LinkFaultsBySource: an independent stream
// per sending NIC, derived from (Seed, "net", "link:<name>"). A sharded
// fabric consults these so a transfer's perturbation depends only on the
// sender's own transfer order, never on the global interleaving across
// domains — which also makes the draws identical for every shard count.
func (l *Link) ForSource(name string) netsim.LinkFaults {
	return &Link{
		cfg:  l.cfg,
		seed: l.seed,
		rng:  rand.New(rand.NewSource(deriveSeed(l.seed, "net", "link:"+name))),
	}
}

// Perturb implements netsim.LinkFaults: it returns how many extra
// retransmissions and how much extra switch delay a transfer of size
// bytes suffers.
func (l *Link) Perturb(size int64) (retransmits int, delay sim.Time) {
	if l.cfg.DropRate > 0 && l.rng.Float64() < l.cfg.DropRate {
		retransmits = 1
	}
	if l.cfg.DelayRate > 0 && l.rng.Float64() < l.cfg.DelayRate {
		delay = l.cfg.Delay
	}
	return retransmits, delay
}
