package faults

import (
	"fmt"
	"math/rand"

	"bps/internal/device"
	"bps/internal/ioreq"
	"bps/internal/obs"
	"bps/internal/sim"
)

// Wrap returns an ioreq middleware applying the plan's device-layer
// misbehavior to any layer stack — the generic form of WrapDevice for
// pipelines whose terminal layer is not a device.Device. Semantics
// match the Injector exactly: the inner layer serves first (so injected
// faults consume the full service time of the request they fail), then
// straggler and degradation stalls extend it, then the error draw fires.
// Errors wrap device.ErrInjectedFault, so errors.Is sees through every
// layer above. A disabled plan returns nil, which ioreq.Chain skips —
// the zero-rate sweep point runs the exact unwrapped pipeline.
//
// label keys the middleware's private RNG stream and metric names, like
// WrapDevice's label; the stream scheme is shared, so a layer wrapper
// and a device wrapper with the same label inject identical patterns.
func Wrap(e *sim.Engine, c Config, label string) ioreq.Middleware {
	if !c.Device.enabled() {
		return nil
	}
	cfg := c.Device
	cfg.ErrorRate = clamp01(cfg.ErrorRate)
	cfg.StragglerRate = clamp01(cfg.StragglerRate)
	cfg.DegradeRate = clamp01(cfg.DegradeRate)
	rng := rand.New(rand.NewSource(deriveSeed(c.Seed, "device", label)))
	reg := obs.Get(e).Registry()
	base := "faults/layer/" + label + "/"
	injected := reg.Counter(base + "errors")
	stalls := reg.Counter(base + "stalls")
	degraded := reg.Counter(base + "degraded")
	return func(next ioreq.Layer) ioreq.Layer {
		return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
			if err := next.Serve(p, req); err != nil {
				return err
			}
			if cfg.StragglerRate > 0 && rng.Float64() < cfg.StragglerRate {
				stalls.Add(1)
				p.Sleep(cfg.StragglerDelay)
			}
			if cfg.DegradeRate > 0 && rng.Float64() < cfg.DegradeRate {
				degraded.Add(1)
				p.Sleep(sim.TransferTime(req.Size, cfg.DegradedRate))
			}
			if cfg.ErrorRate > 0 && rng.Float64() < cfg.ErrorRate {
				injected.Add(1)
				return fmt.Errorf("faults: %s: %w", label, device.ErrInjectedFault)
			}
			return nil
		})
	}
}
