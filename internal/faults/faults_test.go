package faults

import (
	"errors"
	"testing"

	"bps/internal/device"
	"bps/internal/sim"
)

// TestDeriveSeedMatchesExperiments pins deriveSeed against the same
// constants experiments.TestDeriveSeedPinned pins for DeriveSeed. The
// two implementations must agree forever: the fault plan promises that
// its streams use the experiment runner's derivation scheme, and this
// package cannot import experiments (the dependency runs the other way).
func TestDeriveSeedMatchesExperiments(t *testing.T) {
	pinned := map[[2]string]int64{
		{"set1", "local-hdd"}: -1083276964539255126,
		{"set1", "pvfs-8s"}:   5539543175295217317,
		{"set2-hdd", "4KB"}:   4562652203324125485,
	}
	for key, want := range pinned {
		if got := deriveSeed(42, key[0], key[1]); got != want {
			t.Errorf("deriveSeed(42, %q, %q) = %d, want %d (diverged from experiments.DeriveSeed)",
				key[0], key[1], got, want)
		}
	}
	if deriveSeed(42, "ab", "c") == deriveSeed(42, "a", "bc") {
		t.Error("(stream, label) framing is ambiguous")
	}
}

func TestProfileZeroRateInjectsNothing(t *testing.T) {
	c := Profile(7, 0)
	if c.Enabled() {
		t.Fatalf("Profile(seed, 0) = %+v, want the zero Config", c)
	}
	if c != (Config{}) {
		t.Fatalf("Profile(seed, 0) = %+v, want exactly the zero value", c)
	}
	if NewLink(c) != nil {
		t.Error("zero profile built a link-fault model")
	}
	sf := NewServerFaults(c, 0)
	if sf.Down(0) || sf.Down(sim.Second) || sf.SlowDelay(sim.Second) != 0 || sf.Dead() {
		t.Error("zero profile's server faults misbehave")
	}
}

func TestProfileEnablesEveryLayer(t *testing.T) {
	c := Profile(7, 0.01)
	if !c.DeviceEnabled() || !c.NetworkEnabled() || !c.ServerEnabled() {
		t.Fatalf("Profile(seed, 0.01) leaves a layer healthy: %+v", c)
	}
}

func TestWrapDeviceDisabledPassThrough(t *testing.T) {
	e := sim.NewEngine(1)
	inner := device.NewRAMDisk(e, "ram", 1<<30, sim.Microsecond, 1e9)
	if got := WrapDevice(e, inner, Config{}, "x"); got != device.Device(inner) {
		t.Error("WrapDevice with a disabled plan did not return the inner device unchanged")
	}
}

// TestWindowsPure checks the stateless window schedule: pure in t,
// inactive outside the duration, degenerate rates behave, and distinct
// seeds give distinct schedules.
func TestWindowsPure(t *testing.T) {
	w := Windows{Seed: 99, Period: 10 * sim.Millisecond, Duration: 2 * sim.Millisecond, Rate: 0.5}
	times := []sim.Time{0, sim.Millisecond, 3 * sim.Millisecond, 15 * sim.Millisecond, 21 * sim.Millisecond, 995 * sim.Millisecond}
	first := make([]bool, len(times))
	for i, tt := range times {
		first[i] = w.Active(tt)
	}
	// Re-query in reverse: answers must not depend on call order.
	for i := len(times) - 1; i >= 0; i-- {
		if w.Active(times[i]) != first[i] {
			t.Fatalf("Active(%v) changed between queries", times[i])
		}
	}
	for tt := sim.Time(0); tt < sim.Second; tt += 500 * sim.Microsecond {
		if w.Active(tt) && tt%w.Period >= w.Duration {
			t.Fatalf("Active(%v) outside the window duration", tt)
		}
	}
	always := Windows{Seed: 99, Period: 10 * sim.Millisecond, Duration: 2 * sim.Millisecond, Rate: 1}
	if !always.Active(0) || !always.Active(10*sim.Millisecond) || always.Active(2*sim.Millisecond) {
		t.Error("Rate=1 window schedule wrong")
	}
	never := Windows{Seed: 99, Period: 10 * sim.Millisecond, Duration: 2 * sim.Millisecond, Rate: 0}
	for tt := sim.Time(0); tt < sim.Second; tt += sim.Millisecond {
		if never.Active(tt) {
			t.Fatalf("Rate=0 window active at %v", tt)
		}
	}
	if (Windows{}).Active(0) {
		t.Error("zero-value window active")
	}
	other := Windows{Seed: 100, Period: 10 * sim.Millisecond, Duration: 2 * sim.Millisecond, Rate: 0.5}
	same := true
	for i := sim.Time(0); i < sim.Second; i += 10 * sim.Millisecond {
		if w.Active(i) != other.Active(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("two seeds produced identical 100-period schedules")
	}
}

// TestServerFaultsIndependentPerServer checks that servers draw from
// distinct streams: with aggressive rates, 8 servers should not share
// one fail schedule.
func TestServerFaultsIndependentPerServer(t *testing.T) {
	c := Profile(3, 0.5)
	schedule := func(id int) string {
		sf := NewServerFaults(c, id)
		var b []byte
		for tt := sim.Time(0); tt < sim.Second; tt += 5 * sim.Millisecond {
			if sf.Down(tt) {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		return string(b)
	}
	base := schedule(0)
	distinct := false
	for id := 1; id < 8; id++ {
		if schedule(id) != base {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("8 servers share one fault schedule")
	}
	// And the view itself is pure: rebuilding gives the same schedule.
	if schedule(0) != base {
		t.Error("rebuilding a server's fault view changed its schedule")
	}
}

// errorPattern runs n sequential accesses against dev inside a sim proc
// and records which ones fail.
func errorPattern(t *testing.T, e *sim.Engine, dev device.Device, n int) []bool {
	t.Helper()
	out := make([]bool, n)
	e.Spawn("probe", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			err := dev.Access(p, device.Request{Offset: int64(i) * 4096, Size: 4096})
			if err != nil && !errors.Is(err, device.ErrInjectedFault) {
				t.Errorf("access %d: unexpected error %v", i, err)
			}
			out[i] = err != nil
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEveryNthMatchesDeprecatedShim locks the replacement to the shim it
// deprecates: identical error pattern and identical Stats accounting.
func TestEveryNthMatchesDeprecatedShim(t *testing.T) {
	const n = 32
	e1 := sim.NewEngine(1)
	old := device.NewFaultInjector(device.NewRAMDisk(e1, "ram", 1<<30, sim.Microsecond, 1e9), 3)
	oldPat := errorPattern(t, e1, old, n)

	e2 := sim.NewEngine(1)
	neu := NewEveryNth(device.NewRAMDisk(e2, "ram", 1<<30, sim.Microsecond, 1e9), 3)
	newPat := errorPattern(t, e2, neu, n)

	for i := range oldPat {
		if oldPat[i] != newPat[i] {
			t.Fatalf("access %d: shim failed=%v, EveryNth failed=%v", i, oldPat[i], newPat[i])
		}
	}
	if old.Stats().Errors != neu.Stats().Errors || neu.Stats().Errors != n/3 {
		t.Fatalf("errors: shim=%d EveryNth=%d, want %d", old.Stats().Errors, neu.Stats().Errors, n/3)
	}
	if old.Name() != neu.Name() {
		t.Errorf("names differ: %q vs %q", old.Name(), neu.Name())
	}
}

// TestInjectorDeterministicPerLabel checks the wrapped device's fault
// stream is a pure function of (plan seed, label): same label → same
// pattern on a fresh engine; different label → different pattern.
func TestInjectorDeterministicPerLabel(t *testing.T) {
	plan := Profile(11, 0.2)
	plan.Server = ServerConfig{}
	plan.Network = NetworkConfig{}
	pattern := func(label string) []bool {
		e := sim.NewEngine(1)
		dev := WrapDevice(e, device.NewRAMDisk(e, "ram", 1<<30, sim.Microsecond, 1e9), plan, label)
		return errorPattern(t, e, dev, 64)
	}
	a, b := pattern("ios0.hdd"), pattern("ios0.hdd")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs across identical runs", i)
		}
	}
	c := pattern("ios1.hdd")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two labels share one fault stream")
	}
}

// TestLinkPerturbDeterministic checks the link stream replays exactly.
func TestLinkPerturbDeterministic(t *testing.T) {
	c := Profile(5, 0.3)
	seq := func() []int {
		l := NewLink(c)
		out := make([]int, 200)
		for i := range out {
			rt, d := l.Perturb(1 << 20)
			out[i] = rt
			if d > 0 {
				out[i] += 2
			}
		}
		return out
	}
	a, b := seq(), seq()
	sawFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical links", i)
		}
		if a[i] != 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("200 draws at rate 0.3 injected nothing")
	}
}

func TestClamp01(t *testing.T) {
	cases := map[float64]float64{-1: 0, 0: 0, 0.5: 0.5, 1: 1, 2: 1}
	for in, want := range cases {
		if got := clamp01(in); got != want {
			t.Errorf("clamp01(%g) = %g, want %g", in, got, want)
		}
	}
	if clamp01(nan()) != 0 {
		t.Error("clamp01(NaN) != 0")
	}
}

func nan() float64 { z := 0.0; return z / z }
