package stats

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// This file is the statistical layer under the suite figure: a
// seed-deterministic bootstrap that turns a small sample (one CC value
// per seed, one headroom value per run) into a distribution summary
// with confidence bounds. Everything here is a pure function of its
// inputs — the resampling PRNG is seeded by the same FNV-1a derivation
// the experiment runner uses for engine seeds, so bootstrap CIs are
// bit-identical no matter how many workers produced the sample or in
// which order the summaries are computed.

// DeriveSeed returns a child seed as a pure function of (base seed,
// scope, label): FNV-1a over the little-endian base followed by the
// NUL-framed identifiers. It is the canonical derivation the whole
// repository uses — experiments.DeriveSeed delegates here, and the
// bootstrap seeds its resampling PRNG the same way — so a pinned seed
// in one subsystem pins them all.
func DeriveSeed(base int64, scope, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(scope))
	h.Write([]byte{0}) // unambiguous (scope, label) framing
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// splitmix64 is the bootstrap's deterministic PRNG: tiny, allocation
// free, and — unlike math/rand sources — guaranteed stable across Go
// releases, which the pinned-CI golden tests rely on.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n) by rejection, avoiding the
// modulo bias a plain remainder would add to small samples.
func (s *splitmix64) intn(n int) int {
	bound := uint64(n)
	threshold := -bound % bound // 2^64 mod n
	for {
		v := s.next()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// BootstrapConfig parameterizes NewDist. The zero value means 1000
// resamples at 95% confidence with seed 0 — every field has a
// documented default so call sites only set what they mean.
type BootstrapConfig struct {
	// Resamples is the number of bootstrap resamples (default 1000).
	Resamples int

	// Confidence is the two-sided CI level in (0, 1) (default 0.95).
	Confidence float64

	// Seed drives the resampling PRNG. Derive it with DeriveSeed from
	// stable identifiers, never from execution order, and equal inputs
	// give bit-identical Dists under any parallelism.
	Seed int64
}

func (c BootstrapConfig) withDefaults() BootstrapConfig {
	if c.Resamples <= 0 {
		c.Resamples = 1000
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	return c
}

// Dist summarizes a sample's distribution: location, spread, quartiles,
// and a bootstrap percentile confidence interval for the mean — the
// "CC with error bars" presentation the single-number tables lack.
type Dist struct {
	N int // sample size

	Mean   float64
	Median float64
	StdDev float64 // population standard deviation
	Min    float64
	Max    float64
	Q1     float64 // nearest-rank 25th percentile
	Q3     float64 // nearest-rank 75th percentile

	// CILo and CIHi bound the bootstrap percentile confidence interval
	// of the mean at level Confidence, from Resamples with-replacement
	// resamples of the sample.
	CILo, CIHi float64
	Confidence float64
	Resamples  int
}

// IQR returns the interquartile range Q3 − Q1.
func (d Dist) IQR() float64 { return d.Q3 - d.Q1 }

// NewDist summarizes xs. The input is not modified. A sample of one
// observation gets degenerate (point) bounds; an empty sample returns
// the zero Dist.
func NewDist(xs []float64, cfg BootstrapConfig) Dist {
	cfg = cfg.withDefaults()
	d := Dist{N: len(xs), Confidence: cfg.Confidence, Resamples: cfg.Resamples}
	if len(xs) == 0 {
		return d
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d.Mean = Mean(sorted)
	d.StdDev = StdDev(sorted)
	d.Min = sorted[0]
	d.Max = sorted[len(sorted)-1]
	d.Median = QuantileSorted(sorted, 0.5)
	d.Q1 = QuantileSorted(sorted, 0.25)
	d.Q3 = QuantileSorted(sorted, 0.75)

	// Percentile bootstrap of the mean: resample with replacement,
	// record each resample's mean, and read the CI off the resample
	// distribution's quantiles. With n == 1 every resample is the
	// observation itself and the interval collapses to a point, which
	// is the honest answer for a sample that size.
	rng := splitmix64{state: uint64(cfg.Seed)}
	means := make([]float64, cfg.Resamples)
	for r := range means {
		var sum float64
		for i := 0; i < len(sorted); i++ {
			sum += sorted[rng.intn(len(sorted))]
		}
		means[r] = sum / float64(len(sorted))
	}
	sort.Float64s(means)
	alpha := (1 - cfg.Confidence) / 2
	d.CILo = QuantileSorted(means, alpha)
	d.CIHi = QuantileSorted(means, 1-alpha)
	return d
}

// GeoMean returns the geometric mean of xs (the IO500 composite-score
// fold), or NaN when the sample is empty or any observation is
// non-positive — a non-positive rate has no geometric contribution and
// silently clamping it would fake a score.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
