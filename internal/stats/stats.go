// Package stats provides the statistics the BPS paper's evaluation uses:
// the Pearson correlation coefficient (paper equation 2) between a metric
// series and the application-execution-time series, and the paper's
// normalization that flips the sign when the measured correlation
// direction contradicts the expected one (Table 1).
package stats

import (
	"fmt"
	"math"
	"sort"

	"bps/internal/core"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson computes the correlation coefficient between x and y (paper
// equation 2). It returns NaN when either series is constant or the
// series lengths differ or are shorter than 2 — situations where the
// correlation is undefined.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}

// NormalizedCC applies the paper's presentation convention (§IV.B): given
// the raw CC between a metric and execution time and the metric's
// expected correlation direction, return +|CC| when the measured sign
// matches the expectation and −|CC| when it contradicts it. NaN passes
// through.
func NormalizedCC(cc float64, expected core.Direction) float64 {
	if math.IsNaN(cc) {
		return cc
	}
	matches := (cc < 0 && expected == core.Negative) || (cc > 0 && expected == core.Positive)
	abs := math.Abs(cc)
	if matches {
		return abs
	}
	return -abs
}

// MetricCC computes the normalized CC for one metric kind across a sweep
// of runs: values are the metric measurements, execTimes the matching
// application execution times in seconds.
func MetricCC(kind core.MetricKind, values, execTimes []float64) float64 {
	return NormalizedCC(Pearson(values, execTimes), kind.ExpectedDirection())
}

// CCTable holds the normalized CC of every metric for one experiment —
// one bar group in the paper's Figs. 4–6, 9, 11–12.
type CCTable struct {
	Label string
	CC    map[core.MetricKind]float64
}

// NewCCTable computes the full table from per-run metrics and execution
// times (seconds).
func NewCCTable(label string, runs []core.Metrics) CCTable {
	exec := make([]float64, len(runs))
	for i, m := range runs {
		exec[i] = m.ExecTime.Seconds()
	}
	tbl := CCTable{Label: label, CC: make(map[core.MetricKind]float64)}
	for _, k := range core.Kinds {
		vals := make([]float64, len(runs))
		for i, m := range runs {
			vals[i] = m.Value(k)
		}
		tbl.CC[k] = MetricCC(k, vals, exec)
	}
	return tbl
}

// String renders the table on one line, in the paper's metric order.
func (t CCTable) String() string {
	return fmt.Sprintf("%s: IOPS=%+.2f BW=%+.2f ARPT=%+.2f BPS=%+.2f",
		t.Label, t.CC[core.IOPS], t.CC[core.BW], t.CC[core.ARPT], t.CC[core.BPS])
}

// Spearman computes the rank correlation coefficient: Pearson on the
// ranks of x and y. Rate metrics relate to execution time hyperbolically
// (metric ∝ 1/T), which depresses Pearson over wide sweeps even when the
// ordering is perfect; Spearman measures the monotone relationship the
// paper's correlation-direction argument actually relies on. Ties get
// fractional (average) ranks.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks returns average ranks (1-based) of the values.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
