package stats

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestDeriveSeedCrossPin pins the same derived values the experiment
// runner pins, proving the delegation in experiments.DeriveSeed never
// drifts from the canonical derivation here.
func TestDeriveSeedCrossPin(t *testing.T) {
	pinned := map[[2]string]int64{
		{"set1", "local-hdd"}:  -1083276964539255126,
		{"set1", "pvfs-8s"}:    5539543175295217317,
		{"set2-hdd", "4KB"}:    4562652203324125485,
		{"ext3", "collective"}: 1002652676135534745,
	}
	for key, want := range pinned {
		if got := DeriveSeed(42, key[0], key[1]); got != want {
			t.Errorf("DeriveSeed(42, %q, %q) = %d, want %d", key[0], key[1], got, want)
		}
	}
}

// TestSplitmix64Pinned pins the PRNG stream: the bootstrap's CIs are a
// function of these words, so a change to the mixer shows up here
// before it silently shifts every confidence bound.
func TestSplitmix64Pinned(t *testing.T) {
	s := splitmix64{state: 42}
	want := []uint64{0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Fatalf("splitmix64(42) word %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestIntnUniformRange: rejection sampling stays in range and hits every
// residue for a small modulus.
func TestIntnUniformRange(t *testing.T) {
	s := splitmix64{state: 7}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("intn(7) hit only %d residues in 1000 draws", len(seen))
	}
}

// TestNewDistGolden pins a full Dist for a fixed sample and seed — the
// bit-exactness contract the suite figure's CIs rest on.
func TestNewDistGolden(t *testing.T) {
	xs := []float64{0.91, 0.84, 0.97, 0.88, 0.93}
	d := NewDist(xs, BootstrapConfig{Seed: DeriveSeed(42, "golden", "cc")})
	if d.N != 5 || d.Resamples != 1000 || d.Confidence != 0.95 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if d.Min != 0.84 || d.Max != 0.97 || d.Median != 0.91 || d.Q1 != 0.88 || d.Q3 != 0.93 {
		t.Fatalf("order stats wrong: %+v", d)
	}
	if math.Abs(d.Mean-0.906) > 1e-12 {
		t.Fatalf("mean = %v, want 0.906", d.Mean)
	}
	// Pinned bootstrap CI bounds for this exact (sample, seed,
	// resamples) triple. Math here is pure float64 arithmetic over a
	// pinned PRNG stream, so the bounds are stable across platforms.
	const wantLo, wantHi = 0.86799999999999999, 0.94199999999999995
	if math.Abs(d.CILo-wantLo) > 1e-12 || math.Abs(d.CIHi-wantHi) > 1e-12 {
		t.Fatalf("CI = [%.17g, %.17g], want [%v, %v]", d.CILo, d.CIHi, wantLo, wantHi)
	}
	if !(d.CILo <= d.Mean && d.Mean <= d.CIHi) {
		t.Fatalf("mean %v outside CI [%v, %v]", d.Mean, d.CILo, d.CIHi)
	}
}

// TestNewDistDeterministicUnderParallelism: summarizing the same sample
// concurrently from many goroutines yields bit-identical Dists — the
// property that lets the suite bootstrap inside a ForEach fan-out.
func TestNewDistDeterministicUnderParallelism(t *testing.T) {
	xs := []float64{1.2, 3.4, 2.2, 5.1, 0.7, 4.4, 2.9, 3.3}
	cfg := BootstrapConfig{Resamples: 500, Seed: DeriveSeed(7, "par", "x")}
	ref := NewDist(xs, cfg)
	var wg sync.WaitGroup
	got := make([]Dist, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = NewDist(xs, cfg)
		}(i)
	}
	wg.Wait()
	for i, d := range got {
		if !reflect.DeepEqual(d, ref) {
			t.Fatalf("goroutine %d Dist diverged:\n got %+v\nwant %+v", i, d, ref)
		}
	}
}

// TestNewDistInputNotModified: the caller's slice must come back in its
// original order (NewDist sorts a copy).
func TestNewDistInputNotModified(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewDist(xs, BootstrapConfig{})
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatalf("input mutated: %v", xs)
	}
}

// TestNewDistEdgeCases: empty and single-observation samples.
func TestNewDistEdgeCases(t *testing.T) {
	if d := NewDist(nil, BootstrapConfig{}); d.N != 0 || d.Mean != 0 {
		t.Fatalf("empty sample: %+v", d)
	}
	d := NewDist([]float64{2.5}, BootstrapConfig{Seed: 1})
	if d.CILo != 2.5 || d.CIHi != 2.5 || d.Mean != 2.5 {
		t.Fatalf("single observation should collapse to a point: %+v", d)
	}
	if d.IQR() != 0 {
		t.Fatalf("single-observation IQR = %v", d.IQR())
	}
}

// TestGeoMean: the IO500 composite fold and its refusal to fake scores.
func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); !math.IsNaN(g) {
		t.Fatalf("GeoMean(empty) = %v, want NaN", g)
	}
	if g := GeoMean([]float64{1, 0, 2}); !math.IsNaN(g) {
		t.Fatalf("GeoMean with zero = %v, want NaN", g)
	}
}

// TestNearestRankIndex pins the shared quantile convention both
// LatencyDist and obs.Histogram now route through.
func TestNearestRankIndex(t *testing.T) {
	cases := []struct {
		n    int
		q    float64
		want int
	}{
		{0, 0.5, 0}, {1, 0.5, 0}, {10, 0, 0}, {10, 1, 9},
		{10, 0.5, 4}, {10, 0.95, 9}, {10, 0.25, 2}, {4, 0.5, 1},
		{100, 0.99, 98}, {3, 0.5, 1},
	}
	for _, c := range cases {
		if got := NearestRankIndex(c.n, c.q); got != c.want {
			t.Errorf("NearestRankIndex(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

// TestQuantileSortedTypes: the generic helper works for both float64
// samples and sim.Time-like defined integer types.
func TestQuantileSortedTypes(t *testing.T) {
	type dur int64
	ds := []dur{10, 20, 30, 40}
	if got := QuantileSorted(ds, 0.5); got != 20 {
		t.Fatalf("QuantileSorted(int64 kind, 0.5) = %v, want 20", got)
	}
	fs := []float64{1.5, 2.5, 3.5}
	if got := QuantileSorted(fs, 1.0); got != 3.5 {
		t.Fatalf("QuantileSorted(float64, 1.0) = %v, want 3.5", got)
	}
	var empty []float64
	if got := QuantileSorted(empty, 0.5); got != 0 {
		t.Fatalf("QuantileSorted(empty) = %v, want 0", got)
	}
}

// BenchmarkBootstrapDist is benchguard-tracked: the suite figure runs
// one bootstrap per (phase, metric, statistic), so regressions here
// multiply across the whole report.
func BenchmarkBootstrapDist(b *testing.B) {
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i%7) + 0.25*float64(i)
	}
	cfg := BootstrapConfig{Seed: 42}
	for i := 0; i < b.N; i++ {
		NewDist(xs, cfg)
	}
}
