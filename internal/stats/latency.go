package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bps/internal/sim"
	"bps/internal/trace"
)

// LatencyDist summarizes a run's per-access response-time distribution —
// the detail that ARPT's single mean hides. The paper's critique of ARPT
// is precisely that the mean discards shape; a distribution makes the
// shape visible.
type LatencyDist struct {
	Count  int
	Min    sim.Time
	Max    sim.Time
	Mean   sim.Time
	StdDev sim.Time

	// sorted response times for quantile queries.
	sorted []sim.Time
}

// NewLatencyDist builds a distribution from access records.
func NewLatencyDist(records []trace.Record) LatencyDist {
	if len(records) == 0 {
		return LatencyDist{}
	}
	d := LatencyDist{
		Count:  len(records),
		sorted: make([]sim.Time, len(records)),
	}
	var sum float64
	for i, r := range records {
		dur := r.Duration()
		d.sorted[i] = dur
		sum += float64(dur)
	}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	d.Min = d.sorted[0]
	d.Max = d.sorted[len(d.sorted)-1]
	mean := sum / float64(d.Count)
	d.Mean = sim.Time(mean)
	var ss float64
	for _, dur := range d.sorted {
		diff := float64(dur) - mean
		ss += diff * diff
	}
	d.StdDev = sim.Time(math.Sqrt(ss / float64(d.Count)))
	return d
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank; Quantile(0.5)
// is the median, Quantile(0.99) the p99.
func (d LatencyDist) Quantile(q float64) sim.Time {
	return QuantileSorted(d.sorted, q)
}

// String renders the usual summary row.
func (d LatencyDist) String() string {
	if d.Count == 0 {
		return "latency: no accesses"
	}
	return fmt.Sprintf("latency: n=%d min=%v p50=%v mean=%v p95=%v p99=%v max=%v",
		d.Count, d.Min, d.Quantile(0.5), d.Mean, d.Quantile(0.95), d.Quantile(0.99), d.Max)
}

// Histogram renders a log2-bucketed ASCII histogram of the distribution,
// one line per occupied bucket.
func (d LatencyDist) Histogram(width int) string {
	if d.Count == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	// log2 buckets over [Min, Max].
	type bucket struct {
		lo, hi sim.Time
		n      int
	}
	var buckets []bucket
	lo := sim.Time(1)
	for lo*2 <= d.Min {
		lo *= 2
	}
	for hi := lo * 2; lo <= d.Max; lo, hi = hi, hi*2 {
		buckets = append(buckets, bucket{lo: lo, hi: hi})
	}
	idx := 0
	for _, dur := range d.sorted {
		for idx < len(buckets)-1 && dur >= buckets[idx].hi {
			idx++
		}
		buckets[idx].n++
	}
	peak := 0
	for _, b := range buckets {
		if b.n > peak {
			peak = b.n
		}
	}
	var sb strings.Builder
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		bar := strings.Repeat("#", int(float64(width)*float64(b.n)/float64(peak)+0.5))
		fmt.Fprintf(&sb, "%12v..%-12v %7d %s\n", b.lo, b.hi, b.n, bar)
	}
	return sb.String()
}
