package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bps/internal/core"
	"bps/internal/sim"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice mean/stddev not 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestPearsonPerfectCorrelations(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	down := []float64{50, 40, 30, 20, 10}
	if cc := Pearson(x, up); math.Abs(cc-1) > 1e-12 {
		t.Fatalf("Pearson(up) = %v", cc)
	}
	if cc := Pearson(x, down); math.Abs(cc+1) > 1e-12 {
		t.Fatalf("Pearson(down) = %v", cc)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{3})) {
		t.Error("length mismatch did not give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Error("single point did not give NaN")
	}
	if !math.IsNaN(Pearson([]float64{2, 2, 2}, []float64{1, 5, 9})) {
		t.Error("constant series did not give NaN")
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	// Symmetric V shape: zero linear correlation.
	x := []float64{-2, -1, 0, 1, 2}
	y := []float64{4, 1, 0, 1, 4}
	if cc := Pearson(x, y); math.Abs(cc) > 1e-12 {
		t.Fatalf("Pearson(V) = %v, want 0", cc)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric, and invariant
// under positive affine transforms of either argument.
func TestPearsonProperties(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		cc := Pearson(x, y)
		if math.IsNaN(cc) {
			return true
		}
		if cc < -1-1e-9 || cc > 1+1e-9 {
			return false
		}
		if math.Abs(cc-Pearson(y, x)) > 1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = 3*x[i] + 7
		}
		return math.Abs(Pearson(scaled, y)-cc) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: negating one series negates the CC.
func TestPearsonAntisymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i], y[i] = rng.Float64(), rng.Float64()
		}
		cc := Pearson(x, y)
		neg := make([]float64, 10)
		for i := range y {
			neg[i] = -y[i]
		}
		return math.IsNaN(cc) || math.Abs(Pearson(x, neg)+cc) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedCC(t *testing.T) {
	cases := []struct {
		cc       float64
		expected core.Direction
		want     float64
	}{
		{-0.9, core.Negative, 0.9},  // matches expectation → positive
		{0.9, core.Negative, -0.9},  // contradicts → negative
		{0.7, core.Positive, 0.7},   // matches
		{-0.7, core.Positive, -0.7}, // contradicts
		{0, core.Negative, 0},
	}
	for _, c := range cases {
		if got := NormalizedCC(c.cc, c.expected); got != c.want {
			t.Errorf("NormalizedCC(%v, %v) = %v, want %v", c.cc, c.expected, got, c.want)
		}
	}
	if !math.IsNaN(NormalizedCC(math.NaN(), core.Negative)) {
		t.Error("NaN did not pass through")
	}
}

func TestMetricCC(t *testing.T) {
	// BPS falling while time rises: expected (negative) direction → +1.
	bpsVals := []float64{100, 80, 60, 40}
	times := []float64{1, 2, 3, 4}
	if got := MetricCC(core.BPS, bpsVals, times); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MetricCC(BPS) = %v, want +1", got)
	}
	// IOPS rising while time rises: wrong direction → −1.
	iopsVals := []float64{10, 20, 30, 40}
	if got := MetricCC(core.IOPS, iopsVals, times); math.Abs(got+1) > 1e-9 {
		t.Fatalf("MetricCC(IOPS) = %v, want -1", got)
	}
}

func TestNewCCTable(t *testing.T) {
	// Fabricate three runs where everything improves together: all four
	// metrics should come out with matching directions.
	mkRun := func(scale int64) core.Metrics {
		return core.Metrics{
			Ops:        100,
			Blocks:     100 * 128,
			MovedBytes: 100 * 128 * 512,
			IOTime:     sim.Time(scale) * sim.Second,
			SumRespt:   sim.Time(scale) * sim.Second,
			ExecTime:   sim.Time(scale) * sim.Second,
		}
	}
	runs := []core.Metrics{mkRun(1), mkRun(2), mkRun(4)}
	tbl := NewCCTable("test", runs)
	for _, k := range core.Kinds {
		cc := tbl.CC[k]
		if math.IsNaN(cc) {
			t.Fatalf("%v CC is NaN", k)
		}
		if cc < 0.9 {
			t.Errorf("%v CC = %v, want strongly matching", k, cc)
		}
	}
	if tbl.String() == "" {
		t.Error("empty String()")
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	// Hyperbolic relation: Pearson well below 1, Spearman exactly 1.
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 1 / v
	}
	pearson := Pearson(x, y)
	spearman := Spearman(x, y)
	if math.Abs(spearman+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1 (perfect inverse ordering)", spearman)
	}
	if pearson <= -0.99 {
		t.Fatalf("Pearson = %v; fixture should be nonlinear enough to separate the two", pearson)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{10, 20, 20, 30}
	if cc := Spearman(x, y); math.Abs(cc-1) > 1e-12 {
		t.Fatalf("Spearman with ties = %v, want 1", cc)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if !math.IsNaN(Spearman([]float64{1}, []float64{2})) {
		t.Error("single point did not give NaN")
	}
	if !math.IsNaN(Spearman([]float64{2, 2}, []float64{1, 3})) {
		t.Error("constant series did not give NaN")
	}
}

func TestRanksAveraging(t *testing.T) {
	got := ranks([]float64{10, 30, 20, 30})
	want := []float64{1, 3.5, 2, 3.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

// Property: Spearman is invariant under any strictly monotone transform
// of either variable.
func TestSpearmanMonotoneInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		base := Spearman(x, y)
		tx := make([]float64, n)
		for i := range x {
			tx[i] = math.Exp(x[i]) // strictly increasing
		}
		return math.IsNaN(base) || math.Abs(Spearman(tx, y)-base) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
