package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bps/internal/sim"
	"bps/internal/trace"
)

func recWithDur(dur sim.Time) trace.Record {
	return trace.Record{PID: 1, Blocks: 1, Start: 0, End: dur}
}

func TestLatencyDistEmpty(t *testing.T) {
	d := NewLatencyDist(nil)
	if d.Count != 0 || d.Quantile(0.5) != 0 {
		t.Fatalf("empty dist = %+v", d)
	}
	if d.String() != "latency: no accesses" {
		t.Fatalf("String = %q", d.String())
	}
	if d.Histogram(40) != "" {
		t.Fatal("empty histogram not empty")
	}
}

func TestLatencyDistBasics(t *testing.T) {
	records := []trace.Record{
		recWithDur(1 * sim.Millisecond),
		recWithDur(2 * sim.Millisecond),
		recWithDur(3 * sim.Millisecond),
		recWithDur(4 * sim.Millisecond),
		recWithDur(100 * sim.Millisecond), // outlier
	}
	d := NewLatencyDist(records)
	if d.Count != 5 {
		t.Fatalf("count = %d", d.Count)
	}
	if d.Min != sim.Millisecond || d.Max != 100*sim.Millisecond {
		t.Fatalf("min/max = %v/%v", d.Min, d.Max)
	}
	if d.Mean != 22*sim.Millisecond {
		t.Fatalf("mean = %v", d.Mean)
	}
	if got := d.Quantile(0.5); got != 3*sim.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	// The outlier dominates p99 but not p50 — the shape ARPT hides.
	if got := d.Quantile(0.99); got != 100*sim.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := d.Quantile(0); got != d.Min {
		t.Fatalf("q0 = %v", got)
	}
	if got := d.Quantile(1); got != d.Max {
		t.Fatalf("q1 = %v", got)
	}
	if !strings.Contains(d.String(), "p99") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	var records []trace.Record
	for i := 0; i < 64; i++ {
		records = append(records, recWithDur(sim.Millisecond))
	}
	records = append(records, recWithDur(64*sim.Millisecond))
	d := NewLatencyDist(records)
	h := d.Histogram(20)
	lines := strings.Split(strings.TrimSpace(h), "\n")
	if len(lines) != 2 {
		t.Fatalf("histogram lines = %d:\n%s", len(lines), h)
	}
	if !strings.Contains(lines[0], "64") {
		t.Fatalf("first bucket should hold 64 accesses:\n%s", h)
	}
}

// Property: quantiles are monotone in q and bounded by min/max; the mean
// lies within [min, max].
func TestLatencyDistProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		records := make([]trace.Record, n)
		for i := range records {
			records[i] = recWithDur(sim.Time(rng.Int63n(int64(sim.Second))) + 1)
		}
		d := NewLatencyDist(records)
		prev := sim.Time(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := d.Quantile(q)
			if v < prev || v < d.Min || v > d.Max {
				return false
			}
			prev = v
		}
		return d.Mean >= d.Min && d.Mean <= d.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
