package stats

import "math"

// NearestRankIndex returns the 0-based index of the nearest-rank
// q-quantile in a sorted sample of n observations: ceil(q·n) − 1,
// clamped to [0, n−1]. It is the one quantile convention the whole
// codebase shares — the latency distribution, the bootstrap summaries,
// and the registry's histogram quantiles all rank through it, so their
// p50/p95/p99 columns agree by construction.
func NearestRankIndex(n int, q float64) int {
	if n <= 0 {
		return 0
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return n - 1
	}
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank > n-1 {
		rank = n - 1
	}
	return rank
}

// QuantileSorted returns the nearest-rank q-quantile of an ascending
// sorted slice (zero value when empty).
func QuantileSorted[T ~int64 | ~float64](sorted []T, q float64) T {
	if len(sorted) == 0 {
		var zero T
		return zero
	}
	return sorted[NearestRankIndex(len(sorted), q)]
}
