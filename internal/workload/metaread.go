package workload

import (
	"fmt"

	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

// MetaRead is the metadata-heavy phase of the IO500-style suite: each
// process opens FilesPerProcess small files through the metadata server
// (paying the MDS RPC round trip and service queueing per open) and
// reads each one fully in RecordSize records. With files this small the
// MDS path dominates, so the workload exercises exactly the regime the
// mdtest-style phases of IO500 probe — throughput limited by metadata
// operations, not data movement.
//
// MetaRead requires a *ClusterEnv: opens are metadata-server operations
// and only the pfs client exposes them. The env's files must be named
// MetaFileName(pid, i) — testbed.NewMetaFilesEnv creates a matching
// population.
type MetaRead struct {
	Label           string
	Processes       int
	FilesPerProcess int
	RecordSize      int64

	// FirstPID offsets the trace process IDs (see SeqRead.FirstPID).
	FirstPID int64
}

// MetaFileName returns the name of process pid's i-th file — the
// contract between MetaRead and the env that preallocates its files.
func MetaFileName(pid, i int) string {
	return fmt.Sprintf("meta.p%d.%d", pid, i)
}

// RequiredFiles returns the total file population the env must hold.
func (w MetaRead) RequiredFiles() int {
	return w.Processes * w.FilesPerProcess
}

// Start implements Starter.
func (w MetaRead) Start(e *sim.Engine, env Env) (*Pending, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	cenv, ok := env.(*ClusterEnv)
	if !ok {
		return nil, fmt.Errorf("workload %q: MetaRead needs a *ClusterEnv (opens are MDS operations)", w.Label)
	}
	pend := newPending(e, w.Label, env, w.Processes)
	for pid := 0; pid < w.Processes; pid++ {
		pid := pid
		col := trace.NewCollector(w.FirstPID + int64(pid))
		pend.collectors[pid] = col
		cl := cenv.Clients[pid%len(cenv.Clients)]
		prev := e.SetDomain(placeDomain(env, pid))
		e.Spawn(fmt.Sprintf("%s.p%d", w.Label, pid), pend.track(pid, func(p *sim.Proc) {
			for i := 0; i < w.FilesPerProcess; i++ {
				f, err := cl.Open(p, MetaFileName(pid, i))
				if err != nil {
					pend.errs[pid]++
					continue
				}
				io := middleware.NewPOSIX(middleware.NewTarget(cl.Layer(f), f.Name(), f.Size()), col)
				for off := int64(0); off < f.Size(); off += w.RecordSize {
					n := w.RecordSize
					if off+n > f.Size() {
						n = f.Size() - off
					}
					if err := io.Read(p, off, n); err != nil {
						pend.errs[pid]++
					}
				}
			}
		}))
		e.SetDomain(prev)
	}
	return pend, nil
}

// Run implements Runner.
func (w MetaRead) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}

func (w MetaRead) validate() error {
	switch {
	case w.Processes < 1:
		return fmt.Errorf("workload %q: Processes %d < 1", w.Label, w.Processes)
	case w.FilesPerProcess < 1:
		return fmt.Errorf("workload %q: FilesPerProcess %d < 1", w.Label, w.FilesPerProcess)
	case w.RecordSize <= 0:
		return fmt.Errorf("workload %q: RecordSize %d <= 0", w.Label, w.RecordSize)
	}
	return nil
}
