package workload

import (
	"fmt"

	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

// AccessMethod selects how a noncontiguous pattern is serviced.
type AccessMethod int

// The three ways ROMIO can service interleaved region lists.
const (
	// DirectAccess issues one small read per region.
	DirectAccess AccessMethod = iota

	// SievingAccess uses per-process data sieving (covering-extent reads).
	SievingAccess

	// CollectiveAccess uses two-phase collective I/O.
	CollectiveAccess
)

// String implements fmt.Stringer.
func (m AccessMethod) String() string {
	switch m {
	case DirectAccess:
		return "direct"
	case SievingAccess:
		return "sieving"
	case CollectiveAccess:
		return "collective"
	default:
		return fmt.Sprintf("AccessMethod(%d)", int(m))
	}
}

// InterleavedRead is the canonical collective-I/O pattern: Processes
// processes share one target, and process p needs regions p, p+P, p+2P,
// … of TotalRegions regions of RegionSize bytes. The Method decides how
// the middleware services it. All processes use Target(0): the pattern
// is only meaningful on a shared file.
type InterleavedRead struct {
	Label        string
	Processes    int
	TotalRegions int
	RegionSize   int64
	Method       AccessMethod

	// SieveBufSize tunes data sieving (default 4 MiB).
	SieveBufSize int64

	// Aggregators tunes collective I/O (default min(4, Processes)).
	Aggregators int
}

// RequiredBytes returns the total application-required bytes.
func (w InterleavedRead) RequiredBytes() int64 {
	return int64(w.TotalRegions) * w.RegionSize
}

// Start implements Starter.
func (w InterleavedRead) Start(e *sim.Engine, env Env) (*Pending, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	pend := newPending(e, w.Label, env, w.Processes)
	// The pattern shares one target (and, for collective I/O, aggregator
	// state), so every process — and the aggregators — must live in the
	// shared target's domain.
	prev := e.SetDomain(placeDomain(env, 0))
	defer e.SetDomain(prev)
	target := env.Target(0)
	var coll *middleware.Collective
	if w.Method == CollectiveAccess {
		coll = middleware.NewCollective(e, target, w.Processes, middleware.CollectiveConfig{
			Aggregators: w.Aggregators,
		})
	}
	for pid := 0; pid < w.Processes; pid++ {
		pid := pid
		col := trace.NewCollector(int64(pid))
		pend.collectors[pid] = col
		e.Spawn(fmt.Sprintf("%s.p%d", w.Label, pid), pend.track(pid, func(p *sim.Proc) {
			var regions []middleware.Region
			for i := pid; i < w.TotalRegions; i += w.Processes {
				regions = append(regions, middleware.Region{
					Off:  int64(i) * w.RegionSize,
					Size: w.RegionSize,
				})
			}
			var err error
			switch w.Method {
			case CollectiveAccess:
				err = coll.ReadAll(p, col, regions)
			case SievingAccess:
				m := middleware.NewMPIIO(target, col, middleware.MPIIOConfig{
					DataSieving:  true,
					SieveBufSize: w.SieveBufSize,
				})
				err = m.ReadRegions(p, regions)
			default:
				m := middleware.NewMPIIO(target, col, middleware.MPIIOConfig{})
				err = m.ReadRegions(p, regions)
			}
			if err != nil {
				pend.errs[pid]++
			}
		}))
	}
	return pend, nil
}

// Run implements Runner.
func (w InterleavedRead) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}

func (w InterleavedRead) validate() error {
	switch {
	case w.Processes < 1:
		return fmt.Errorf("workload %q: Processes %d < 1", w.Label, w.Processes)
	case w.TotalRegions < w.Processes:
		return fmt.Errorf("workload %q: TotalRegions %d < Processes %d", w.Label, w.TotalRegions, w.Processes)
	case w.RegionSize <= 0:
		return fmt.Errorf("workload %q: RegionSize %d <= 0", w.Label, w.RegionSize)
	}
	return nil
}
