package workload

import (
	"fmt"
	"sort"

	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

// Replay re-issues a recorded trace against a (different) simulated
// storage stack — what-if analysis: "what would this application's trace
// have looked like on an SSD?". Each recorded process becomes one
// simulation process that issues its accesses in original order, no
// earlier than their original start times (preserving recorded think
// time) but otherwise as fast as the new stack allows. Records carry no
// file offsets (the paper's record is {pid, blocks, start, end}), so
// accesses are laid out sequentially per process — the replay preserves
// sizes, ordering, concurrency structure, and think gaps, not physical
// placement.
type Replay struct {
	Label   string
	Records []trace.Record
}

// PIDBytes returns the total required bytes per PID, which sizes the
// per-process files a replay needs.
func (w Replay) PIDBytes() map[int64]int64 {
	out := make(map[int64]int64)
	for _, r := range w.Records {
		out[r.PID] += r.Bytes()
	}
	return out
}

// Start implements Starter.
func (w Replay) Start(e *sim.Engine, env Env) (*Pending, error) {
	if len(w.Records) == 0 {
		return nil, fmt.Errorf("workload %q: empty trace", w.Label)
	}
	// Group records per PID, preserving start order.
	perPID := make(map[int64][]trace.Record)
	var pids []int64
	for _, r := range w.Records {
		if r.Blocks <= 0 {
			return nil, fmt.Errorf("workload %q: record with %d blocks", w.Label, r.Blocks)
		}
		if _, ok := perPID[r.PID]; !ok {
			pids = append(pids, r.PID)
		}
		perPID[r.PID] = append(perPID[r.PID], r)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		recs := perPID[pid]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	}

	// Normalize so the earliest recorded start replays at simulated now.
	base := w.Records[0].Start
	for _, r := range w.Records {
		if r.Start < base {
			base = r.Start
		}
	}

	pend := newPending(e, w.Label, env, len(pids))
	for slot, pid := range pids {
		slot, pid := slot, pid
		recs := perPID[pid]
		col := trace.NewCollector(pid)
		pend.collectors[slot] = col
		target := env.Target(slot)
		start := e.Now()
		e.Spawn(fmt.Sprintf("%s.pid%d", w.Label, pid), pend.track(slot, func(p *sim.Proc) {
			io := middleware.NewPOSIX(target, col)
			var off int64
			for _, r := range recs {
				// Respect the recorded issue time (think gaps), but never
				// wait for the recorded completion — the new stack sets
				// the pace.
				issueAt := start + (r.Start - base)
				if p.Now() < issueAt {
					p.Sleep(issueAt - p.Now())
				}
				if err := io.Read(p, off, r.Bytes()); err != nil {
					pend.errs[slot]++
				}
				off += r.Bytes()
			}
		}))
	}
	return pend, nil
}

// Run implements Runner.
func (w Replay) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}
