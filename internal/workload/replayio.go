package workload

import (
	"fmt"
	"sort"

	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

// Access is one offset-aware recorded I/O: the raw material of an
// ingested real-world log (a Darshan-style read/write segment), richer
// than the paper's 32-byte record because it carries the operation, the
// file offset, and the target file slot. ReplayIO re-issues accesses
// with full placement fidelity, where Replay (offset-less records) has
// to lay accesses out sequentially.
type Access struct {
	// PID is the originating process (the log's rank).
	PID int64

	// Slot indexes the env file the access targets: ingestion assigns
	// one slot per distinct (rank, file) pair and the replay env creates
	// one file per slot.
	Slot int

	// Write distinguishes the operation (false = read).
	Write bool

	// Off and Size are the recorded file range in bytes.
	Off, Size int64

	// Start and End are the recorded access interval, normalized so the
	// log's earliest access starts at 0.
	Start, End sim.Time
}

// Blocks returns the application-required size in 512-byte blocks.
func (a Access) Blocks() int64 { return trace.BlocksOf(a.Size) }

// ReplayIO re-issues offset-aware accesses against a simulated stack.
// Each recorded process becomes one simulation process that issues its
// accesses in original order at their original offsets, no earlier than
// their recorded start times (preserving think time) but otherwise as
// fast as the new stack allows — the same pacing contract as Replay,
// plus placement.
type ReplayIO struct {
	Label    string
	Accesses []Access
}

// Slots returns the number of env file slots the accesses reference
// (max slot + 1), which sizes the env a replay needs.
func (w ReplayIO) Slots() int {
	n := 0
	for _, a := range w.Accesses {
		if a.Slot+1 > n {
			n = a.Slot + 1
		}
	}
	return n
}

// SlotExtents returns the per-slot file size the replay needs: the
// largest end offset any access reaches in that slot.
func (w ReplayIO) SlotExtents() []int64 {
	ext := make([]int64, w.Slots())
	for _, a := range w.Accesses {
		if end := a.Off + a.Size; end > ext[a.Slot] {
			ext[a.Slot] = end
		}
	}
	return ext
}

// Start implements Starter.
func (w ReplayIO) Start(e *sim.Engine, env Env) (*Pending, error) {
	if len(w.Accesses) == 0 {
		return nil, fmt.Errorf("workload %q: no accesses", w.Label)
	}
	perPID := make(map[int64][]Access)
	var pids []int64
	for _, a := range w.Accesses {
		if a.Size <= 0 {
			return nil, fmt.Errorf("workload %q: access with size %d", w.Label, a.Size)
		}
		if a.Off < 0 || a.Slot < 0 {
			return nil, fmt.Errorf("workload %q: access with offset %d slot %d", w.Label, a.Off, a.Slot)
		}
		if _, ok := perPID[a.PID]; !ok {
			pids = append(pids, a.PID)
		}
		perPID[a.PID] = append(perPID[a.PID], a)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		accs := perPID[pid]
		sort.SliceStable(accs, func(i, j int) bool { return accs[i].Start < accs[j].Start })
	}

	base := w.Accesses[0].Start
	for _, a := range w.Accesses {
		if a.Start < base {
			base = a.Start
		}
	}

	pend := newPending(e, w.Label, env, len(pids))
	for slot, pid := range pids {
		slot, pid := slot, pid
		accs := perPID[pid]
		col := trace.NewCollector(pid)
		pend.collectors[slot] = col
		start := e.Now()
		e.Spawn(fmt.Sprintf("%s.pid%d", w.Label, pid), pend.track(slot, func(p *sim.Proc) {
			// One POSIX wrapper per file slot the process touches, built
			// lazily; all share the process's collector.
			ios := make(map[int]*middleware.POSIX)
			for _, a := range accs {
				io, ok := ios[a.Slot]
				if !ok {
					io = middleware.NewPOSIX(env.Target(a.Slot), col)
					ios[a.Slot] = io
				}
				issueAt := start + (a.Start - base)
				if p.Now() < issueAt {
					p.Sleep(issueAt - p.Now())
				}
				var err error
				if a.Write {
					err = io.Write(p, a.Off, a.Size)
				} else {
					err = io.Read(p, a.Off, a.Size)
				}
				if err != nil {
					pend.errs[slot]++
				}
			}
		}))
	}
	return pend, nil
}

// Run implements Runner.
func (w ReplayIO) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}
