// Package workload implements synthetic equivalents of the three
// benchmark tools the BPS paper drives its experiments with: IOzone-style
// sequential reads with configurable record sizes and a multi-process
// throughput mode, IOR-style segmented shared-file access with fixed
// transfer sizes, and HPIO-style noncontiguous region patterns with data
// sieving. Every workload runs against an Env (a configured simulated I/O
// system) and returns the gathered trace plus the measurements needed by
// the metrics.
package workload

import (
	"fmt"

	"bps/internal/fsim"
	"bps/internal/ioreq"
	"bps/internal/middleware"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/trace"
)

// Env is a configured I/O system under test.
type Env interface {
	// Target returns the I/O target process pid should use. Different
	// pids may share a target (shared-file workloads) or get their own.
	Target(pid int) middleware.Target

	// Moved returns the bytes actually moved at the file-system level so
	// far — the bandwidth metric's numerator.
	Moved() int64
}

// DomainPlacer is implemented by envs that assign each process an
// engine domain — sharded testbeds place every process in the domain
// that owns its client's NIC, so all of the process's blocking
// primitives stay domain-local. Envs without domains (and all classic
// runs) simply don't implement it and every process spawns in the
// default domain.
type DomainPlacer interface {
	DomainFor(pid int) int
}

// placeDomain returns the engine domain pid's process should spawn in.
func placeDomain(env Env, pid int) int {
	if dp, ok := env.(DomainPlacer); ok {
		return dp.DomainFor(pid)
	}
	return 0
}

// LocalEnv is one local file system with one file per process (pid i uses
// Files[i % len(Files)]).
type LocalEnv struct {
	FS    *fsim.FileSystem
	Files []*fsim.File

	// Wrap, when non-nil, is layered outermost in front of every target —
	// the hook QoS admission control uses to throttle an env's requests
	// before they enter the stack. Nil leaves the pipeline untouched.
	Wrap ioreq.Middleware
}

// Target implements Env.
func (l *LocalEnv) Target(pid int) middleware.Target {
	f := l.Files[pid%len(l.Files)]
	t := middleware.NewTarget(f.Layer(), f.Name(), f.Size())
	if l.Wrap != nil {
		t = t.Wrap(l.Wrap)
	}
	return t
}

// Moved implements Env.
func (l *LocalEnv) Moved() int64 { return l.FS.Moved() }

// ClusterEnv is a parallel file system with per-process clients; pid i
// accesses Files[i % len(Files)] through Clients[i % len(Clients)].
type ClusterEnv struct {
	Cluster *pfs.Cluster
	Clients []*pfs.Client
	Files   []*pfs.File

	// Cache, when non-nil, is a shared client-side page cache layered in
	// front of every target's pfs client (see ioreq.Cache). Nil leaves
	// the pipeline exactly as before the cache existed.
	Cache *ioreq.Cache

	// Wrap, when non-nil, is layered outermost — in front of the cache,
	// so QoS admission control sees the application's requests before
	// any hit/miss splitting. Nil leaves the pipeline untouched.
	Wrap ioreq.Middleware

	// Domains, when non-empty, is the engine domain of each client
	// (parallel to Clients); sharded testbeds populate it so workloads
	// spawn each process in its client's domain. Empty means the
	// default domain for every process.
	Domains []int
}

// DomainFor implements DomainPlacer: pid i runs in its client's domain.
func (c *ClusterEnv) DomainFor(pid int) int {
	if len(c.Domains) == 0 {
		return 0
	}
	return c.Domains[pid%len(c.Domains)]
}

// Target implements Env.
func (c *ClusterEnv) Target(pid int) middleware.Target {
	cl := c.Clients[pid%len(c.Clients)]
	f := c.Files[pid%len(c.Files)]
	t := middleware.NewTarget(cl.Layer(f), f.Name(), f.Size())
	if c.Cache != nil {
		t = t.Wrap(c.Cache.Middleware(f.Size()))
	}
	if c.Wrap != nil {
		t = t.Wrap(c.Wrap)
	}
	return t
}

// Moved implements Env.
func (c *ClusterEnv) Moved() int64 { return c.Cluster.Moved() }

// Result is everything measured from one workload run.
type Result struct {
	Label    string
	ExecTime sim.Time      // application execution time (all processes done)
	Trace    *trace.Global // gathered application-access records
	Moved    int64         // file-system-level bytes moved
	Errors   int           // failed application accesses
}

// Runner is a workload that can execute on an engine against an Env. The
// engine must be fresh: Run spawns the application processes and then
// drives the event loop to completion.
type Runner interface {
	Run(e *sim.Engine, env Env) (Result, error)
}

// Starter is a workload that can be started without driving the engine,
// so several applications can share one simulation — the paper's
// multi-application recording case (§III.B step 1). Start spawns the
// processes; after the caller runs the engine, Pending.Result returns
// the workload's measurements.
type Starter interface {
	Start(e *sim.Engine, env Env) (*Pending, error)
}

// Pending is a started workload awaiting engine completion.
type Pending struct {
	label      string
	env        Env
	collectors []*trace.Collector
	errs       []int
	startedAt  sim.Time
	doneAts    []sim.Time // per-process completion times (sharding-safe)
}

// Result assembles the workload's measurements. Call it only after the
// engine has drained. ExecTime is the span from workload start to the
// completion of its last process; Moved is the env-level total (shared
// by every workload on the env).
func (p *Pending) Result() Result {
	var nerr int
	for _, n := range p.errs {
		nerr += n
	}
	doneAt := p.startedAt
	for _, t := range p.doneAts {
		if t > doneAt {
			doneAt = t
		}
	}
	return Result{
		Label:    p.label,
		ExecTime: doneAt - p.startedAt,
		Trace:    trace.Gather(p.collectors...),
		Moved:    p.env.Moved(),
		Errors:   nerr,
	}
}

// track wraps process idx's body so the pending records its completion
// time. Each process owns its slot, so tracking is race-free when
// processes run in different domains; Result takes the max.
func (p *Pending) track(idx int, body func(*sim.Proc)) func(*sim.Proc) {
	return func(proc *sim.Proc) {
		body(proc)
		if proc.Now() > p.doneAts[idx] {
			p.doneAts[idx] = proc.Now()
		}
	}
}

func newPending(e *sim.Engine, label string, env Env, procs int) *Pending {
	done := make([]sim.Time, procs)
	for i := range done {
		done[i] = e.Now()
	}
	return &Pending{
		label:      label,
		env:        env,
		collectors: make([]*trace.Collector, procs),
		errs:       make([]int, procs),
		startedAt:  e.Now(),
		doneAts:    done,
	}
}

// SeqRead is the IOzone/IOR-style sequential read workload: each of
// Processes reads BytesPerProcess bytes in RecordSize records, starting
// at StartOffset(pid) in its target.
type SeqRead struct {
	Label           string
	Processes       int
	BytesPerProcess int64
	RecordSize      int64

	// StartOffset gives each process its starting file offset; nil means
	// every process starts at 0 (own-file mode). IOR-style segmented
	// shared-file mode passes pid*segment.
	StartOffset func(pid int) int64

	// UseMPIIO routes accesses through the MPI-IO layer instead of POSIX.
	UseMPIIO bool

	// Write performs writes instead of reads (IOzone's write/re-write
	// modes, or a checkpoint-style dump).
	Write bool

	// ComputePerOp inserts a fixed think time after each record,
	// modelling per-record application work (0 for pure I/O benchmarks).
	ComputePerOp sim.Time

	// FirstPID offsets the trace process IDs, keeping them globally
	// unique when several applications share one I/O system.
	FirstPID int64
}

// Start implements Starter.
func (w SeqRead) Start(e *sim.Engine, env Env) (*Pending, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	pend := newPending(e, w.Label, env, w.Processes)
	for pid := 0; pid < w.Processes; pid++ {
		pid := pid
		col := trace.NewCollector(w.FirstPID + int64(pid))
		pend.collectors[pid] = col
		base := int64(0)
		if w.StartOffset != nil {
			base = w.StartOffset(pid)
		}
		prev := e.SetDomain(placeDomain(env, pid))
		target := env.Target(pid)
		e.Spawn(fmt.Sprintf("%s.p%d", w.Label, pid), pend.track(pid, func(p *sim.Proc) {
			read := accessorFor(target, col, w.UseMPIIO, w.Write)
			for done := int64(0); done < w.BytesPerProcess; done += w.RecordSize {
				n := w.RecordSize
				if done+n > w.BytesPerProcess {
					n = w.BytesPerProcess - done
				}
				if err := read(p, base+done, n); err != nil {
					pend.errs[pid]++
				}
				if w.ComputePerOp > 0 {
					p.Sleep(w.ComputePerOp)
				}
			}
		}))
		e.SetDomain(prev)
	}
	return pend, nil
}

// Run implements Runner.
func (w SeqRead) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}

// runToCompletion starts a single workload, drains the engine, and
// assembles its result.
func runToCompletion(w Starter, e *sim.Engine, env Env) (Result, error) {
	pend, err := w.Start(e, env)
	if err != nil {
		return Result{}, err
	}
	if err := e.Run(); err != nil {
		return Result{}, err
	}
	return pend.Result(), nil
}

func (w SeqRead) validate() error {
	switch {
	case w.Processes < 1:
		return fmt.Errorf("workload %q: Processes %d < 1", w.Label, w.Processes)
	case w.BytesPerProcess <= 0:
		return fmt.Errorf("workload %q: BytesPerProcess %d <= 0", w.Label, w.BytesPerProcess)
	case w.RecordSize <= 0:
		return fmt.Errorf("workload %q: RecordSize %d <= 0", w.Label, w.RecordSize)
	}
	return nil
}

// accessorFor returns a read or write function through the chosen
// middleware layer.
func accessorFor(target middleware.Target, col *trace.Collector, useMPIIO, write bool) func(*sim.Proc, int64, int64) error {
	if useMPIIO {
		m := middleware.NewMPIIO(target, col, middleware.MPIIOConfig{})
		if write {
			return m.Write
		}
		return m.Read
	}
	io := middleware.NewPOSIX(target, col)
	if write {
		return io.Write
	}
	return io.Read
}

// Noncontig is the HPIO-style noncontiguous read workload: each process
// reads RegionCount regions of RegionSize bytes separated by
// RegionSpacing holes, batched RegionsPerCall regions per MPI-IO call,
// optionally with data sieving.
type Noncontig struct {
	Label          string
	Processes      int
	RegionCount    int
	RegionSize     int64
	RegionSpacing  int64
	RegionsPerCall int
	Sieving        bool
	SieveBufSize   int64

	// BaseFor gives each process the start of its region sequence; nil
	// means pid * span(RegionCount) so processes never overlap.
	BaseFor func(pid int) int64

	// FirstPID offsets the trace process IDs (see SeqRead.FirstPID).
	FirstPID int64
}

// Span returns the bytes covered by one process's region sequence,
// including holes (without the trailing hole).
func (w Noncontig) Span() int64 {
	if w.RegionCount == 0 {
		return 0
	}
	return int64(w.RegionCount)*(w.RegionSize+w.RegionSpacing) - w.RegionSpacing
}

// RequiredBytes returns the application-required bytes per process.
func (w Noncontig) RequiredBytes() int64 {
	return int64(w.RegionCount) * w.RegionSize
}

// Start implements Starter.
func (w Noncontig) Start(e *sim.Engine, env Env) (*Pending, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	perCall := w.RegionsPerCall
	if perCall <= 0 {
		perCall = 4096
	}
	pend := newPending(e, w.Label, env, w.Processes)
	for pid := 0; pid < w.Processes; pid++ {
		pid := pid
		col := trace.NewCollector(w.FirstPID + int64(pid))
		pend.collectors[pid] = col
		base := int64(pid) * (w.Span() + w.RegionSpacing)
		if w.BaseFor != nil {
			base = w.BaseFor(pid)
		}
		prev := e.SetDomain(placeDomain(env, pid))
		target := env.Target(pid)
		e.Spawn(fmt.Sprintf("%s.p%d", w.Label, pid), pend.track(pid, func(p *sim.Proc) {
			m := middleware.NewMPIIO(target, col, middleware.MPIIOConfig{
				DataSieving:  w.Sieving,
				SieveBufSize: w.SieveBufSize,
			})
			stride := w.RegionSize + w.RegionSpacing
			for first := 0; first < w.RegionCount; first += perCall {
				n := perCall
				if first+n > w.RegionCount {
					n = w.RegionCount - first
				}
				regions := middleware.Regions(base+int64(first)*stride, n, w.RegionSize, w.RegionSpacing)
				if err := m.ReadRegions(p, regions); err != nil {
					pend.errs[pid]++
				}
			}
		}))
		e.SetDomain(prev)
	}
	return pend, nil
}

// Run implements Runner.
func (w Noncontig) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}

func (w Noncontig) validate() error {
	switch {
	case w.Processes < 1:
		return fmt.Errorf("workload %q: Processes %d < 1", w.Label, w.Processes)
	case w.RegionCount < 1:
		return fmt.Errorf("workload %q: RegionCount %d < 1", w.Label, w.RegionCount)
	case w.RegionSize <= 0:
		return fmt.Errorf("workload %q: RegionSize %d <= 0", w.Label, w.RegionSize)
	case w.RegionSpacing < 0:
		return fmt.Errorf("workload %q: RegionSpacing %d < 0", w.Label, w.RegionSpacing)
	}
	return nil
}
