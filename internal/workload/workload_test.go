package workload

import (
	"fmt"
	"testing"

	"bps/internal/core"
	"bps/internal/device"
	"bps/internal/fsim"
	"bps/internal/middleware"
	"bps/internal/netsim"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/trace"
)

// newLocalEnv builds a RAM-backed local env with one file per process.
func newLocalEnv(e *sim.Engine, nfiles int, fileSize int64) *LocalEnv {
	dev := device.NewRAMDisk(e, "ram", 16<<30, 10*sim.Microsecond, 500e6)
	fs := fsim.New(e, dev, fsim.Config{})
	env := &LocalEnv{FS: fs}
	for i := 0; i < nfiles; i++ {
		f, err := fs.Create(fileName(i), fileSize)
		if err != nil {
			panic(err)
		}
		env.Files = append(env.Files, f)
	}
	return env
}

func fileName(i int) string { return fmt.Sprintf("f%d", i) }

func newClusterEnv(e *sim.Engine, nservers, nclients int, files func(c *pfs.Cluster) []*pfs.File) *ClusterEnv {
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := make([]device.Device, nservers)
	for i := range devs {
		devs[i] = device.NewRAMDisk(e, "d", 16<<30, 10*sim.Microsecond, 200e6)
	}
	cluster := pfs.NewCluster(e, fabric, pfs.Config{}, devs)
	env := &ClusterEnv{Cluster: cluster, Files: files(cluster)}
	for i := 0; i < nclients; i++ {
		env.Clients = append(env.Clients, cluster.NewClient("client"))
	}
	return env
}

func TestSeqReadValidate(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	bad := []SeqRead{
		{Processes: 0, BytesPerProcess: 1, RecordSize: 1},
		{Processes: 1, BytesPerProcess: 0, RecordSize: 1},
		{Processes: 1, BytesPerProcess: 1, RecordSize: 0},
	}
	for i, w := range bad {
		if _, err := w.Run(e, env); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSeqReadSingleProcess(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	w := SeqRead{Label: "seq", Processes: 1, BytesPerProcess: 1 << 20, RecordSize: 64 << 10}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 16 {
		t.Fatalf("recorded %d ops, want 16", res.Trace.Len())
	}
	if res.Trace.TotalBytes() != 1<<20 {
		t.Fatalf("required bytes = %d", res.Trace.TotalBytes())
	}
	if res.Moved != 1<<20 {
		t.Fatalf("moved = %d", res.Moved)
	}
	if res.ExecTime <= 0 || res.Errors != 0 {
		t.Fatalf("exec=%v errors=%d", res.ExecTime, res.Errors)
	}
}

func TestSeqReadTailRecord(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	// 100 KiB in 64 KiB records: one full + one 36 KiB tail.
	w := SeqRead{Label: "tail", Processes: 1, BytesPerProcess: 100 << 10, RecordSize: 64 << 10}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 2 {
		t.Fatalf("ops = %d, want 2", res.Trace.Len())
	}
	if res.Trace.TotalBytes() != 100<<10 {
		t.Fatalf("required = %d, want %d", res.Trace.TotalBytes(), 100<<10)
	}
}

func TestSeqReadMultiProcessOwnFiles(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 4, 1<<20)
	w := SeqRead{Label: "tp", Processes: 4, BytesPerProcess: 1 << 20, RecordSize: 64 << 10}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Trace.PIDs()); got != 4 {
		t.Fatalf("PIDs = %d, want 4", got)
	}
	if res.Moved != 4<<20 {
		t.Fatalf("moved = %d", res.Moved)
	}
}

func TestSeqReadSegmentedSharedFile(t *testing.T) {
	e := sim.NewEngine(1)
	const nprocs = 4
	const seg = 1 << 20
	env := newClusterEnv(e, 2, nprocs, func(c *pfs.Cluster) []*pfs.File {
		f, err := c.Create("shared", nprocs*seg, c.DefaultLayout())
		if err != nil {
			panic(err)
		}
		return []*pfs.File{f}
	})
	w := SeqRead{
		Label:           "ior",
		Processes:       nprocs,
		BytesPerProcess: seg,
		RecordSize:      64 << 10,
		StartOffset:     func(pid int) int64 { return int64(pid) * seg },
		UseMPIIO:        true,
	}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Moved != nprocs*seg {
		t.Fatalf("moved = %d, want %d", res.Moved, nprocs*seg)
	}
	if res.Trace.Len() != nprocs*seg/(64<<10) {
		t.Fatalf("ops = %d", res.Trace.Len())
	}
}

func TestSeqReadComputePhaseExtendsExecNotIOTime(t *testing.T) {
	run := func(think sim.Time) (exec, iotime sim.Time) {
		e := sim.NewEngine(1)
		env := newLocalEnv(e, 1, 1<<20)
		w := SeqRead{Label: "c", Processes: 1, BytesPerProcess: 1 << 20, RecordSize: 256 << 10, ComputePerOp: think}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime, core.OverlapTime(res.Trace.Records())
	}
	exec0, io0 := run(0)
	exec1, io1 := run(10 * sim.Millisecond)
	if io0 != io1 {
		t.Fatalf("think time changed I/O time: %v vs %v", io0, io1)
	}
	if exec1 != exec0+4*10*sim.Millisecond {
		t.Fatalf("exec with think = %v, want %v", exec1, exec0+40*sim.Millisecond)
	}
}

func TestSeqReadOutOfBoundsCountsErrors(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 64<<10) // file smaller than the workload
	w := SeqRead{Label: "err", Processes: 1, BytesPerProcess: 128 << 10, RecordSize: 64 << 10}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 {
		t.Fatalf("errors = %d, want 1", res.Errors)
	}
	// Both accesses recorded, including the failed one (paper §III.A).
	if res.Trace.Len() != 2 {
		t.Fatalf("trace len = %d, want 2", res.Trace.Len())
	}
}

func TestNoncontigValidate(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	bad := []Noncontig{
		{Processes: 0, RegionCount: 1, RegionSize: 1},
		{Processes: 1, RegionCount: 0, RegionSize: 1},
		{Processes: 1, RegionCount: 1, RegionSize: 0},
		{Processes: 1, RegionCount: 1, RegionSize: 1, RegionSpacing: -1},
	}
	for i, w := range bad {
		if _, err := w.Run(e, env); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNoncontigSpanAndRequired(t *testing.T) {
	w := Noncontig{RegionCount: 10, RegionSize: 256, RegionSpacing: 1024}
	if w.Span() != 10*(256+1024)-1024 {
		t.Fatalf("Span = %d", w.Span())
	}
	if w.RequiredBytes() != 2560 {
		t.Fatalf("Required = %d", w.RequiredBytes())
	}
}

func TestNoncontigSievingMovesMore(t *testing.T) {
	run := func(sieving bool) Result {
		e := sim.NewEngine(1)
		env := newLocalEnv(e, 1, 64<<20)
		w := Noncontig{
			Label:          "hpio",
			Processes:      1,
			RegionCount:    512,
			RegionSize:     256,
			RegionSpacing:  4096,
			RegionsPerCall: 128,
			Sieving:        sieving,
		}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sieve, direct := run(true), run(false)
	required := int64(512 * 256)
	if direct.Moved != required {
		t.Fatalf("direct moved %d, want %d", direct.Moved, required)
	}
	if sieve.Moved <= direct.Moved {
		t.Fatalf("sieving moved %d, direct %d: holes not read", sieve.Moved, direct.Moved)
	}
	// Both record only the required data: per the paper, B is the total
	// required bytes divided by the block size — 128 regions × 256 B per
	// call is 64 blocks, over 4 calls.
	wantBlocks := trace.BlocksOf(128*256) * 4
	if sieve.Trace.TotalBlocks() != wantBlocks || direct.Trace.TotalBlocks() != wantBlocks {
		t.Fatalf("recorded blocks: sieve=%d direct=%d want=%d",
			sieve.Trace.TotalBlocks(), direct.Trace.TotalBlocks(), wantBlocks)
	}
	// 512 regions in calls of 128 → 4 MPI-IO accesses.
	if sieve.Trace.Len() != 4 {
		t.Fatalf("ops = %d, want 4", sieve.Trace.Len())
	}
}

func TestNoncontigMultiProcessDisjoint(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 64<<20)
	w := Noncontig{
		Label:          "hpio4",
		Processes:      4,
		RegionCount:    64,
		RegionSize:     256,
		RegionSpacing:  1024,
		RegionsPerCall: 32,
		Sieving:        true,
	}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d (processes overlapped?)", res.Errors)
	}
	if got := len(res.Trace.PIDs()); got != 4 {
		t.Fatalf("PIDs = %d", got)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() Result {
		e := sim.NewEngine(5)
		env := newLocalEnv(e, 2, 4<<20)
		w := SeqRead{Label: "det", Processes: 2, BytesPerProcess: 4 << 20, RecordSize: 64 << 10}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.Moved != b.Moved || a.Trace.Len() != b.Trace.Len() {
		t.Fatal("nondeterministic workload run")
	}
	for i, r := range a.Trace.Records() {
		if r != b.Trace.Records()[i] {
			t.Fatalf("trace records diverge at %d", i)
		}
	}
}

func TestHopReadValidate(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	bad := []HopRead{
		{Processes: 0, Hops: 1, RecordsPerHop: 1, RecordSize: 1},
		{Processes: 1, Hops: 0, RecordsPerHop: 1, RecordSize: 1},
		{Processes: 1, Hops: 1, RecordsPerHop: 0, RecordSize: 1},
		{Processes: 1, Hops: 1, RecordsPerHop: 1, RecordSize: 0},
		{Processes: 1, Hops: 1, RecordsPerHop: 1, RecordSize: 1, PrefetchWindow: -1},
	}
	for i, w := range bad {
		if _, err := w.Run(e, env); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHopReadPrefetchMovesMore(t *testing.T) {
	run := func(window int64) Result {
		e := sim.NewEngine(1)
		env := newLocalEnv(e, 1, 64<<20)
		w := HopRead{
			Label: "hop", Processes: 1, Hops: 16, RecordsPerHop: 4,
			RecordSize: 64 << 10, PrefetchWindow: window, Seed: 5,
		}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(0), run(4<<20)
	if off.Errors != 0 || on.Errors != 0 {
		t.Fatalf("errors: off=%d on=%d", off.Errors, on.Errors)
	}
	// Required bytes identical; moved grows with prefetching.
	if off.Trace.TotalBlocks() != on.Trace.TotalBlocks() {
		t.Fatalf("required blocks differ: %d vs %d", off.Trace.TotalBlocks(), on.Trace.TotalBlocks())
	}
	want := HopRead{Hops: 16, RecordsPerHop: 4, RecordSize: 64 << 10}.RequiredBytes()
	if off.Moved != want {
		t.Fatalf("no-prefetch moved %d, want required %d", off.Moved, want)
	}
	if on.Moved <= 2*off.Moved {
		t.Fatalf("prefetching moved %d, want ≫ %d (stranded windows)", on.Moved, off.Moved)
	}
}

func TestHopReadDeterminism(t *testing.T) {
	run := func() Result {
		e := sim.NewEngine(2)
		env := newLocalEnv(e, 1, 32<<20)
		w := HopRead{
			Label: "hop", Processes: 2, Hops: 8, RecordsPerHop: 2,
			RecordSize: 64 << 10, PrefetchWindow: 1 << 20, Seed: 3,
		}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.Moved != b.Moved {
		t.Fatal("nondeterministic hop read")
	}
}

func TestSeqWriteMode(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	w := SeqRead{Label: "wr", Processes: 1, BytesPerProcess: 1 << 20, RecordSize: 64 << 10, Write: true}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Trace.Len() != 16 {
		t.Fatalf("errors=%d ops=%d", res.Errors, res.Trace.Len())
	}
	if env.FS.Device().Stats().BytesWritten != 1<<20 {
		t.Fatalf("device wrote %d", env.FS.Device().Stats().BytesWritten)
	}
	if env.FS.Device().Stats().BytesRead != 0 {
		t.Fatalf("write workload read %d bytes", env.FS.Device().Stats().BytesRead)
	}
}

func TestSeqWriteModeMPIIO(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	w := SeqRead{Label: "wrm", Processes: 1, BytesPerProcess: 512 << 10, RecordSize: 64 << 10, Write: true, UseMPIIO: true}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Trace.Len() != 8 {
		t.Fatalf("errors=%d ops=%d", res.Errors, res.Trace.Len())
	}
	if env.FS.Device().Stats().BytesWritten != 512<<10 {
		t.Fatalf("device wrote %d", env.FS.Device().Stats().BytesWritten)
	}
}

func TestFirstPIDOffsetsTrace(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 2, 1<<20)
	w := SeqRead{Label: "pid", Processes: 2, BytesPerProcess: 128 << 10, RecordSize: 64 << 10, FirstPID: 10}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	pids := res.Trace.PIDs()
	if len(pids) != 2 || pids[0] != 10 || pids[1] != 11 {
		t.Fatalf("PIDs = %v, want [10 11]", pids)
	}
}

func TestTwoWorkloadsShareOneEngine(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 4, 1<<20)
	a := SeqRead{Label: "a", Processes: 2, BytesPerProcess: 1 << 20, RecordSize: 64 << 10}
	b := SeqRead{Label: "b", Processes: 2, BytesPerProcess: 512 << 10, RecordSize: 64 << 10, FirstPID: 2}
	pa, err := a.Start(e, env)
	if err != nil {
		t.Fatal(err)
	}
	// Use files 2,3 for workload b by targeting pids 2,3.
	pb, err := b.Start(e, &shiftedEnv{env: env, shift: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ra, rb := pa.Result(), pb.Result()
	if ra.Trace.Len() != 32 || rb.Trace.Len() != 16 {
		t.Fatalf("ops: a=%d b=%d", ra.Trace.Len(), rb.Trace.Len())
	}
	// The shorter workload finished first; exec times are per workload.
	if rb.ExecTime >= ra.ExecTime {
		t.Fatalf("exec: a=%v b=%v, b should finish first", ra.ExecTime, rb.ExecTime)
	}
	// Combined trace covers all four PIDs.
	combined := trace.Gather()
	combined.Append(ra.Trace.Records()...)
	combined.Append(rb.Trace.Records()...)
	if got := len(combined.PIDs()); got != 4 {
		t.Fatalf("combined PIDs = %d", got)
	}
}

// shiftedEnv offsets pid→target mapping so two workloads on one env use
// disjoint files.
type shiftedEnv struct {
	env   Env
	shift int
}

func (s *shiftedEnv) Target(pid int) middleware.Target { return s.env.Target(pid + s.shift) }
func (s *shiftedEnv) Moved() int64                     { return s.env.Moved() }

func TestReplayPreservesStructure(t *testing.T) {
	// A trace with two processes: one dense, one with a think gap.
	records := []trace.Record{
		{PID: 1, Blocks: 128, Start: 0, End: 10 * sim.Millisecond},
		{PID: 1, Blocks: 128, Start: 10 * sim.Millisecond, End: 20 * sim.Millisecond},
		{PID: 2, Blocks: 64, Start: 0, End: 5 * sim.Millisecond},
		{PID: 2, Blocks: 64, Start: 100 * sim.Millisecond, End: 105 * sim.Millisecond},
	}
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 2, 1<<20)
	res, err := Replay{Label: "rp", Records: records}.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Trace.Len() != 4 {
		t.Fatalf("errors=%d ops=%d", res.Errors, res.Trace.Len())
	}
	// Required bytes preserved exactly.
	if res.Trace.TotalBlocks() != 128+128+64+64 {
		t.Fatalf("blocks = %d", res.Trace.TotalBlocks())
	}
	// PID 2's second access must not start before its recorded think gap.
	var second trace.Record
	for _, r := range res.Trace.Records() {
		if r.PID == 2 && r.Start > second.Start {
			second = r
		}
	}
	if second.Start < 100*sim.Millisecond {
		t.Fatalf("replayed access ignored the think gap: start %v", second.Start)
	}
}

func TestReplayPIDBytes(t *testing.T) {
	w := Replay{Records: []trace.Record{
		{PID: 3, Blocks: 10},
		{PID: 3, Blocks: 20},
		{PID: 7, Blocks: 5},
	}}
	sizes := w.PIDBytes()
	if sizes[3] != 30*trace.BlockSize || sizes[7] != 5*trace.BlockSize {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestReplayValidation(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	if _, err := (Replay{Label: "x"}).Run(e, env); err == nil {
		t.Error("empty trace accepted")
	}
	bad := []trace.Record{{PID: 1, Blocks: 0, Start: 0, End: 1}}
	if _, err := (Replay{Label: "x", Records: bad}).Run(e, env); err == nil {
		t.Error("zero-block record accepted")
	}
}

func TestReplayNonZeroBase(t *testing.T) {
	// Recorded times far from zero replay relative to the earliest start.
	records := []trace.Record{
		{PID: 1, Blocks: 8, Start: 100 * sim.Second, End: 100*sim.Second + sim.Millisecond},
		{PID: 1, Blocks: 8, Start: 101 * sim.Second, End: 101*sim.Second + sim.Millisecond},
	}
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	res, err := Replay{Label: "rp", Records: records}.Run(e, env)
	if err != nil {
		t.Fatal(err)
	}
	// The replay spans about 1 s (the recorded gap), not 101 s.
	if res.ExecTime > 2*sim.Second {
		t.Fatalf("replay took %v; base not normalized", res.ExecTime)
	}
	if res.ExecTime < sim.Second {
		t.Fatalf("replay took %v; think gap dropped", res.ExecTime)
	}
}

func TestInterleavedReadValidation(t *testing.T) {
	e := sim.NewEngine(1)
	env := newLocalEnv(e, 1, 1<<20)
	bad := []InterleavedRead{
		{Processes: 0, TotalRegions: 4, RegionSize: 1},
		{Processes: 8, TotalRegions: 4, RegionSize: 1},
		{Processes: 1, TotalRegions: 4, RegionSize: 0},
	}
	for i, w := range bad {
		if _, err := w.Run(e, env); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DirectAccess.String() != "direct" || SievingAccess.String() != "sieving" ||
		CollectiveAccess.String() != "collective" {
		t.Error("method strings wrong")
	}
}

func TestInterleavedReadMethodsAgreeOnRequired(t *testing.T) {
	run := func(m AccessMethod) Result {
		e := sim.NewEngine(1)
		env := newLocalEnv(e, 1, 1<<20)
		w := InterleavedRead{
			Label: "il", Processes: 4, TotalRegions: 64, RegionSize: 16 << 10, Method: m,
		}
		res, err := w.Run(e, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("%v: %d errors", m, res.Errors)
		}
		return res
	}
	d, s, c := run(DirectAccess), run(SievingAccess), run(CollectiveAccess)
	want := int64(64 * 16 << 10 / trace.BlockSize)
	for m, res := range map[AccessMethod]Result{DirectAccess: d, SievingAccess: s, CollectiveAccess: c} {
		if res.Trace.TotalBlocks() != want {
			t.Errorf("%v required blocks = %d, want %d", m, res.Trace.TotalBlocks(), want)
		}
	}
	// Collective moves the file once; sieving re-reads per process.
	if c.Moved >= s.Moved {
		t.Errorf("collective moved %d, sieving %d", c.Moved, s.Moved)
	}
}
