package workload

import (
	"fmt"
	"math/rand"

	"bps/internal/middleware"
	"bps/internal/sim"
	"bps/internal/trace"
)

// HopRead models applications with partial sequential locality: each
// process performs Hops bursts, each burst reading RecordsPerHop records
// of RecordSize sequentially from a pseudorandom (seeded, deterministic)
// hop offset. With client-side prefetching enabled, every hop strands
// the prefetched-but-unused tail of the readahead window — the
// prefetching analogue of data sieving's holes: extra data movement the
// application never required.
type HopRead struct {
	Label         string
	Processes     int
	Hops          int
	RecordsPerHop int
	RecordSize    int64

	// PrefetchWindow enables client-side readahead of this many bytes
	// (0 disables prefetching).
	PrefetchWindow int64

	// Seed drives the hop-offset sequence.
	Seed int64

	// FirstPID offsets the trace process IDs (see SeqRead.FirstPID).
	FirstPID int64
}

// RequiredBytes returns the application-required bytes per process.
func (w HopRead) RequiredBytes() int64 {
	return int64(w.Hops) * int64(w.RecordsPerHop) * w.RecordSize
}

// Start implements Starter.
func (w HopRead) Start(e *sim.Engine, env Env) (*Pending, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	pend := newPending(e, w.Label, env, w.Processes)
	for pid := 0; pid < w.Processes; pid++ {
		pid := pid
		col := trace.NewCollector(w.FirstPID + int64(pid))
		pend.collectors[pid] = col
		prev := e.SetDomain(placeDomain(env, pid))
		target := env.Target(pid)
		if w.PrefetchWindow > 0 {
			target = target.With(middleware.NewPrefetcher(target, w.PrefetchWindow))
		}
		rng := rand.New(rand.NewSource(w.Seed + int64(pid)))
		e.Spawn(fmt.Sprintf("%s.p%d", w.Label, pid), pend.track(pid, func(p *sim.Proc) {
			io := middleware.NewPOSIX(target, col)
			burst := int64(w.RecordsPerHop) * w.RecordSize
			span := target.Size() - burst
			if span < 1 {
				span = 1
			}
			for h := 0; h < w.Hops; h++ {
				base := rng.Int63n(span)
				base -= base % w.RecordSize
				for r := 0; r < w.RecordsPerHop; r++ {
					if err := io.Read(p, base+int64(r)*w.RecordSize, w.RecordSize); err != nil {
						pend.errs[pid]++
					}
				}
			}
		}))
		e.SetDomain(prev)
	}
	return pend, nil
}

// Run implements Runner.
func (w HopRead) Run(e *sim.Engine, env Env) (Result, error) {
	return runToCompletion(w, e, env)
}

func (w HopRead) validate() error {
	switch {
	case w.Processes < 1:
		return fmt.Errorf("workload %q: Processes %d < 1", w.Label, w.Processes)
	case w.Hops < 1:
		return fmt.Errorf("workload %q: Hops %d < 1", w.Label, w.Hops)
	case w.RecordsPerHop < 1:
		return fmt.Errorf("workload %q: RecordsPerHop %d < 1", w.Label, w.RecordsPerHop)
	case w.RecordSize <= 0:
		return fmt.Errorf("workload %q: RecordSize %d <= 0", w.Label, w.RecordSize)
	case w.PrefetchWindow < 0:
		return fmt.Errorf("workload %q: PrefetchWindow %d < 0", w.Label, w.PrefetchWindow)
	}
	return nil
}
