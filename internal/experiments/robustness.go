package experiments

import (
	"fmt"
	"math"

	"bps/internal/core"
)

// Robustness summarizes how one figure's normalized CC values vary
// across independent seeds — the reproduction-quality check that a
// single lucky seed cannot fake. A conclusion like "BW has the wrong
// direction in Fig. 12" only stands if the sign is stable across seeds.
type Robustness struct {
	FigureID string
	Seeds    int

	// Min, Max, Mean of the normalized CC per metric across seeds.
	Min  map[core.MetricKind]float64
	Max  map[core.MetricKind]float64
	Mean map[core.MetricKind]float64

	// SignStable reports whether the CC kept one sign across every seed.
	SignStable map[core.MetricKind]bool
}

// RunRobustness reproduces figure id under nseeds different seeds (the
// suite's own seed, then consecutive offsets) and aggregates the CC
// values. Only CC figures are supported. The per-seed suites are
// independent, so they run across p.Parallel workers (on top of each
// suite's own sweep parallelism); results are folded in seed order, so
// the aggregate is bit-identical for any worker count.
func RunRobustness(p Params, id string, nseeds int) (Robustness, error) {
	if nseeds < 2 {
		return Robustness{}, fmt.Errorf("experiments: robustness needs ≥ 2 seeds, got %d", nseeds)
	}
	p = p.withDefaults()
	r := Robustness{
		FigureID:   id,
		Seeds:      nseeds,
		Min:        make(map[core.MetricKind]float64),
		Max:        make(map[core.MetricKind]float64),
		Mean:       make(map[core.MetricKind]float64),
		SignStable: make(map[core.MetricKind]bool),
	}
	for _, k := range core.Kinds {
		r.Min[k] = math.Inf(1)
		r.Max[k] = math.Inf(-1)
	}
	figs := make([]Figure, nseeds)
	err := ForEach(p.Parallel, nseeds, func(s int) error {
		params := p
		params.Seed = p.Seed + int64(s)*1000
		f, err := NewSuite(params).Figure(id)
		if err != nil {
			return err
		}
		if f.CC == nil {
			return fmt.Errorf("experiments: %s is a detail figure; robustness needs a CC figure", id)
		}
		for _, k := range core.Kinds {
			if math.IsNaN(f.CC.CC[k]) {
				return fmt.Errorf("experiments: %s seed %d: CC(%v) is NaN", id, params.Seed, k)
			}
		}
		figs[s] = f
		return nil
	})
	if err != nil {
		return r, err
	}
	for _, f := range figs {
		for _, k := range core.Kinds {
			cc := f.CC.CC[k]
			if cc < r.Min[k] {
				r.Min[k] = cc
			}
			if cc > r.Max[k] {
				r.Max[k] = cc
			}
			r.Mean[k] += cc / float64(nseeds)
		}
	}
	for _, k := range core.Kinds {
		r.SignStable[k] = r.Min[k] > 0 == (r.Max[k] > 0) && r.Min[k] != 0
	}
	return r, nil
}

// String renders one line per metric.
func (r Robustness) String() string {
	out := fmt.Sprintf("%s over %d seeds:\n", r.FigureID, r.Seeds)
	for _, k := range core.Kinds {
		stability := "STABLE"
		if !r.SignStable[k] {
			stability = "sign flips"
		}
		out += fmt.Sprintf("  %-5s mean %+.2f  range [%+.2f, %+.2f]  %s\n",
			k, r.Mean[k], r.Min[k], r.Max[k], stability)
	}
	return out
}
