package experiments

import (
	"reflect"
	"testing"
)

func TestQoSFigureStaysOutOfPaperOutputs(t *testing.T) {
	for _, id := range FigureIDs {
		if id == QoSFigureID {
			t.Fatal("qos must not join the paper-reproduction figure list")
		}
	}
	for _, id := range ExtensionIDs {
		if id == QoSFigureID {
			t.Fatal("qos must not join the extension figure list")
		}
	}
}

// TestQoSFigureTellsTheThrottleStory pins the figure's acceptance
// thresholds: the interfering tenant degrades A's BPS by at least 20%,
// and throttling B against A's floor restores A to within 10% of its
// solo baseline while actually exercising the controller (activations,
// delays or sheds, and an interference risk above 1 for B).
func TestQoSFigureTellsTheThrottleStory(t *testing.T) {
	s := NewSuite(Params{Scale: 1.0 / 64, Seed: 42})
	f, err := s.Figure(QoSFigureID)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 3 {
		t.Fatalf("points = %d, want 3 (A-solo, A+B, A+B-throttled)", len(f.Points))
	}
	solo, mixed, throttled := f.Points[0], f.Points[1], f.Points[2]
	if solo.Label != "A-solo" || mixed.Label != "A+B" || throttled.Label != "A+B-throttled" {
		t.Fatalf("unexpected scenario labels: %q %q %q", solo.Label, mixed.Label, throttled.Label)
	}
	for _, pt := range f.Points {
		if pt.Errors != 0 {
			t.Fatalf("%s: %d errors in a healthy sweep", pt.Label, pt.Errors)
		}
	}
	if solo.Aux["a_vs_solo"] != 1 {
		t.Fatalf("solo a_vs_solo = %v, want 1", solo.Aux["a_vs_solo"])
	}
	if solo.Aux["a_floor"] <= 0 {
		t.Fatalf("solo baseline produced no floor (a_floor = %v)", solo.Aux["a_floor"])
	}
	if r := mixed.Aux["a_vs_solo"]; r > 0.8 {
		t.Fatalf("unthrottled interference degraded A to only %.0f%% of solo, want ≤ 80%%", 100*r)
	}
	if r := throttled.Aux["a_vs_solo"]; r < 0.9 {
		t.Fatalf("throttling restored A to only %.0f%% of solo, want ≥ 90%%", 100*r)
	}
	if mixed.Aux["activations"] != 0 {
		t.Fatalf("QoS-off run recorded %v activations", mixed.Aux["activations"])
	}
	if throttled.Aux["activations"] == 0 {
		t.Fatal("throttled run never activated the controller")
	}
	if throttled.Aux["b_delayed"]+throttled.Aux["b_shed"] == 0 {
		t.Fatal("throttled run neither delayed nor shed any of B's requests")
	}
	if risk := throttled.Aux["b_risk"]; risk <= 1 {
		t.Fatalf("B's interference risk = %v, want > 1 (occupancy share above metric share)", risk)
	}
	if mixed.Aux["b_bps"] <= 0 {
		t.Fatal("tenant B delivered nothing in the unthrottled mix")
	}
}

// TestQoSParallelMatchesSequential pins the determinism contract: every
// engine seed is a pure function of (Seed, figure, label), so fanning
// the two mixed-tenant runs across workers cannot change a bit.
func TestQoSParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) Figure {
		s := NewSuite(Params{Scale: 1.0 / 64, Seed: 42, Parallel: parallel})
		f, err := s.Figure(QoSFigureID)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return f
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("points differ between parallel=1 and parallel=4:\nseq: %+v\npar: %+v", seq.Points, par.Points)
	}
}

// TestQoSRepeatIsBitIdentical reruns the figure on a fresh suite with
// the same seed and requires identical output, and checks a different
// seed still tells the same qualitative story.
func TestQoSRepeatIsBitIdentical(t *testing.T) {
	run := func(seed int64) Figure {
		s := NewSuite(Params{Scale: 1.0 / 64, Seed: seed})
		f, err := s.Figure(QoSFigureID)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		return f
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different figures:\na: %+v\nb: %+v", a, b)
	}
	other := run(7)
	if r := other.Points[2].Aux["a_vs_solo"]; r < 0.9 {
		t.Errorf("seed 7: throttling restored A to only %.0f%% of solo", 100*r)
	}
}
