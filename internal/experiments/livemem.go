package experiments

import (
	"fmt"

	"bps/internal/backend"
	"bps/internal/clock"
	"bps/internal/live"
	"bps/internal/sim"
	"bps/internal/workload"
)

// LiveMemFigureID names the live in-memory-backend figure: the record-
// size sweep of the paper's set 2, but measured — not simulated —
// against the memfs backend through the live driver. Each worker runs
// on a deterministic virtual clock lane with a fixed cost model, so the
// figure is byte-identical on every run and machine (pinned by golden
// test), while exercising the entire live measurement path: backend
// files, the shared middleware chain, the window estimator, and
// core.Compute over real trace records. Like the other extension
// figures it is routed through Suite.Figure but kept out of FigureIDs.
const LiveMemFigureID = "livemem"

// liveMemFileBytes is the unscaled per-process volume.
const liveMemFileBytes = 256 << 20

// liveMemProcs is the live worker count (one clock lane each).
const liveMemProcs = 4

// liveMemCost is the virtual service-time model: a fixed per-op setup
// cost plus a 200 MB/s transfer rate. Small records are op-dominated
// (IOPS high, BW starved), large records transfer-dominated — the
// regime change that makes BPS, IOPS, and BW rank the sweep differently.
func liveMemCost() clock.CostModel {
	return clock.CostModel{PerOp: 100 * sim.Microsecond, BytesPerSec: 200e6}
}

// liveMemAccesses builds the deterministic workload for one record
// size: every process sequentially reads its own slot file in record-
// size chunks, back to back (Start 0 — pacing comes entirely from the
// cost model on each lane).
func liveMemAccesses(fileBytes, record int64) []workload.Access {
	var accs []workload.Access
	for pid := 0; pid < liveMemProcs; pid++ {
		for off := int64(0); off < fileBytes; off += record {
			n := record
			if off+n > fileBytes {
				n = fileBytes - off
			}
			accs = append(accs, workload.Access{
				PID: int64(pid), Slot: pid, Off: off, Size: n,
			})
		}
	}
	return accs
}

// figLiveMem measures the record-size sweep on the memfs backend.
func (s *Suite) figLiveMem() (Figure, error) {
	pts, err := s.sweep(LiveMemFigureID, func() ([]Point, error) {
		pts := make([]Point, 0, len(set2RecordSizes))
		for _, record := range set2RecordSizes {
			label := sizeLabel(record)
			fileBytes := s.params.scaled(liveMemFileBytes, record)
			rep, err := live.Run(live.Config{
				FS:          backend.NewMemFS(),
				Mode:        live.Virtual,
				Cost:        liveMemCost(),
				WindowEvery: 10 * sim.Millisecond,
				Seed:        DeriveSeed(s.params.Seed, LiveMemFigureID, label),
				Label:       LiveMemFigureID + "-" + label,
			}, liveMemAccesses(fileBytes, record))
			if err != nil {
				return nil, fmt.Errorf("livemem %s: %w", label, err)
			}
			pts = append(pts, Point{
				Label:   label,
				Metrics: rep.Metrics,
				Errors:  rep.Errors,
				Aux: map[string]float64{
					"windows": float64(len(rep.Attribution.Windows)),
				},
			})
		}
		return pts, nil
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     LiveMemFigureID,
		Title:  "LiveMem: record-size sweep measured on the in-memory backend",
		Notes:  "Live driver on memfs with per-worker virtual clock lanes (deterministic cost model); BPS tracks required blocks over overlapped time while IOPS rewards small records and BW rewards large ones.",
		XLabel: "record size",
		Points: pts,
		CC:     ccTable(LiveMemFigureID, pts),
	}, nil
}
