package experiments

import (
	"fmt"

	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/workload"
)

// ExtensionIDs lists the experiments that go beyond the paper's figures,
// exercising its future-work direction of evaluating further I/O
// optimizations with BPS (paper §V).
var ExtensionIDs = []string{"ext1", "ext2", "ext3"}

// ext1 sweeps the client-side prefetch window on a hop-read workload:
// prefetching, like data sieving, moves data the application never
// required, so file-system bandwidth rises with the window while the
// application only gets slower — BW misleads, BPS does not (the paper's
// §I prefetching argument, measured).
func (s *Suite) ext1() (Figure, error) {
	pts, err := s.sweep("ext1", func() ([]Point, error) {
		windows := []int64{0, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
		const (
			hops       = 192
			perHop     = 4
			record     = 64 << 10
			fileFactor = 64
		)
		hopsScaled := int(s.params.Scale * hops * 64)
		if hopsScaled < 32 {
			hopsScaled = 32
		}
		var specs []runSpec
		for _, win := range windows {
			w := workload.HopRead{
				Label:          "hopread",
				Processes:      1,
				Hops:           hopsScaled,
				RecordsPerHop:  perHop,
				RecordSize:     record,
				PrefetchWindow: win,
				Seed:           s.params.Seed,
			}
			fileSize := w.RequiredBytes() * fileFactor / int64(perHop)
			label := "off"
			if win > 0 {
				label = sizeLabel(win)
			}
			specs = append(specs, runSpec{label: label, build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newLocalEnv(e, hdd, 1, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("ext1", specs)
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext1",
		Title:  "Extension: normalized CC, prefetching as additional data movement",
		Notes:  "Paper §I names prefetching as the second extra-movement source; expectation: BW misleads, BPS correct.",
		XLabel: "prefetch window",
		Points: pts,
		CC:     ccTable("ext1", pts),
	}, nil
}

// ext2 repeats the record-size sweep (Set 2) with *writes* on an SSD
// under sustained-write conditions — FTL write amplification and
// garbage-collection stalls. The paper evaluates reads only; this checks
// that its conclusions carry over to the write path: IOPS and ARPT still
// invert, BW and BPS still track the application.
func (s *Suite) ext2() (Figure, error) {
	pts, err := s.sweep("ext2", func() ([]Point, error) {
		var specs []runSpec
		for _, record := range set2RecordSizes {
			fileSize := s.params.scaled(set2FileBytes, record)
			w := workload.SeqRead{
				Label:           "iozone-write",
				Processes:       1,
				BytesPerProcess: fileSize,
				RecordSize:      record,
				Write:           true,
			}
			specs = append(specs, runSpec{label: sizeLabel(record), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := testbed.NewLocalEnvOn(e, testbed.NewFTLSSD(e), 1, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("ext2", specs)
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext2",
		Title:  "Extension: normalized CC, write record-size sweep on FTL SSD",
		Notes:  "Write-path analogue of Figs. 5-6 under write amplification and GC stalls; expectation: IOPS and ARPT mislead, BW and BPS correct.",
		XLabel: "record size",
		Points: pts,
		CC:     ccTable("ext2", pts),
	}, nil
}

// ext3 compares the three ways of servicing an interleaved
// noncontiguous pattern — direct, per-process data sieving, two-phase
// collective I/O — on one shared HDD-backed file. The point: execution
// time ranks collective < sieving < direct, BPS ranks them identically
// (its CC with execution time is correct), while file-system bandwidth
// cannot separate sieving from collective because it happily counts
// sieving's redundant re-reads as useful throughput.
func (s *Suite) ext3() (Figure, error) {
	pts, err := s.sweep("ext3", func() ([]Point, error) {
		const procs = 4
		const regionSize = 16 << 10
		regions := int(s.params.Scale * 64 * 2048)
		if regions < 128 {
			regions = 128
		}
		regions = regions / procs * procs
		var specs []runSpec
		for _, method := range []workload.AccessMethod{workload.DirectAccess, workload.SievingAccess, workload.CollectiveAccess} {
			w := workload.InterleavedRead{
				Label:        "romio",
				Processes:    procs,
				TotalRegions: regions,
				RegionSize:   regionSize,
				Method:       method,
			}
			fileSize := w.RequiredBytes()
			specs = append(specs, runSpec{label: method.String(), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newLocalEnv(e, hdd, 1, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("ext3", specs)
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext3",
		Title:  "Extension: access-method comparison (direct / sieving / collective)",
		Notes:  "ROMIO's two optimizations on an interleaved pattern; expectation: BPS ranks the methods by application speed, BW cannot separate sieving from collective.",
		XLabel: "access method",
		Points: pts,
		CC:     ccTable("ext3", pts),
	}, nil
}

// ensure the extension is reachable from Figure().
func (s *Suite) extension(id string) (Figure, error) {
	switch id {
	case "ext1":
		return s.ext1()
	case "ext2":
		return s.ext2()
	case "ext3":
		return s.ext3()
	default:
		return Figure{}, fmt.Errorf("experiments: unknown extension %q (have %v)", id, ExtensionIDs)
	}
}
