package experiments

import (
	"fmt"
	"math"

	"bps/internal/core"
	"bps/internal/roofline"
	"bps/internal/sim"
	"bps/internal/stats"
	"bps/internal/workload"
)

// This file is the IO500-style composite suite: four phases spanning
// the access-pattern space (bandwidth-friendly sequential, adversarial
// small-record, random, and metadata-heavy), each swept over client
// concurrency and repeated under independent seeds. Where the paper
// figures report one CC per sweep, the suite reports the CC's
// *distribution* across seeds with bootstrap confidence bounds, plus
// each run's headroom against the analytic roofline ceiling — "how well
// does BPS track execution time" and "how close to the roof did the
// system get" with error bars on both.

// SuiteFigureID names the suite figure on the bpsbench command line.
const SuiteFigureID = "suite"

// suiteProcs is the concurrency sweep every phase walks.
var suiteProcs = []int{1, 2, 4}

// mdsServiceTime mirrors the pfs metadata server's default per-op
// service time, which the metadata phase's roofline ceiling must
// account for (the simulation reads it from pfs.Config defaults).
const mdsServiceTime = 200 * sim.Microsecond

// SuitePhase is one phase of the composite, aggregated across seeds.
type SuitePhase struct {
	// Name is easy, hard, random, or meta.
	Name string

	// Points holds the base-seed sweep (one Point per concurrency
	// level) with the Headroom field populated — the representative
	// run the report tables show.
	Points []Point

	// CeilingBPS is the analytic roofline ceiling per point, aligned
	// with Points. Ceilings are a pure function of the configuration,
	// so they are seed-invariant.
	CeilingBPS []float64

	// CC and RankCC hold the distribution (across seeds) of the
	// normalized Pearson and Spearman correlation coefficients between
	// each metric and execution time, with bootstrap CIs.
	CC     map[core.MetricKind]stats.Dist
	RankCC map[core.MetricKind]stats.Dist

	// Headroom is the distribution of measured BPS / ceiling BPS over
	// every (seed, concurrency) run of the phase.
	Headroom stats.Dist
}

// SuiteReport is the full composite result.
type SuiteReport struct {
	Params Params
	Seeds  int
	Phases []SuitePhase

	// Composite is the distribution (across seeds) of the geometric
	// mean over phases of each phase's mean BPS — the IO500-style
	// single score, with error bars instead of a bare number.
	Composite stats.Dist
}

// suitePoint describes one (phase, concurrency) cell: how to build its
// run and how to compute its analytic ceiling.
type suitePoint struct {
	label string
	procs int

	// record and extraPerOp parameterize the roofline ceiling: the
	// record size requests are issued in and any fixed per-record cost
	// beyond the device+link path (the metadata phase's amortized MDS
	// service).
	record     int64
	extraPerOp sim.Time

	spec  clusterSpec
	build buildFunc
}

// suitePhaseSpec is one phase's sweep description.
type suitePhaseSpec struct {
	name   string
	points []suitePoint
}

// suiteSpec returns the four phase descriptions for one parameter set.
// Everything here is a pure function of p — the per-seed runs share it.
func suiteSpec(p Params) []suitePhaseSpec {
	phases := make([]suitePhaseSpec, 0, 4)

	spec := func(procs int) clusterSpec {
		return clusterSpec{Servers: 4, Media: ssd, Clients: procs}
	}

	// Phase "easy": IOR-style segmented sequential read of a shared
	// striped file in large records — the bandwidth-friendly pattern
	// that should ride the bandwidth roof.
	{
		const record = 1 << 20
		perProc := p.scaled(256<<20, record)
		pts := make([]suitePoint, 0, len(suiteProcs))
		for _, procs := range suiteProcs {
			procs := procs
			cs := spec(procs)
			pts = append(pts, suitePoint{
				label:  fmt.Sprintf("%dp", procs),
				procs:  procs,
				record: record,
				spec:   cs,
				build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
					env, err := newSharedFileEnv(e, cs, int64(procs)*perProc)
					if err != nil {
						return nil, nil, err
					}
					w := workload.SeqRead{
						Label:           "suite-easy",
						Processes:       procs,
						BytesPerProcess: perProc,
						RecordSize:      record,
						StartOffset:     func(pid int) int64 { return int64(pid) * perProc },
					}
					return env, w, nil
				},
			})
		}
		phases = append(phases, suitePhaseSpec{name: "easy", points: pts})
	}

	// Phase "hard": the same shared file hammered in small MPI-IO
	// records — per-request fixed costs dominate and the op roof binds.
	{
		const record = 16 << 10
		perProc := p.scaled(32<<20, record)
		pts := make([]suitePoint, 0, len(suiteProcs))
		for _, procs := range suiteProcs {
			procs := procs
			cs := spec(procs)
			pts = append(pts, suitePoint{
				label:  fmt.Sprintf("%dp", procs),
				procs:  procs,
				record: record,
				spec:   cs,
				build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
					env, err := newSharedFileEnv(e, cs, int64(procs)*perProc)
					if err != nil {
						return nil, nil, err
					}
					w := workload.SeqRead{
						Label:           "suite-hard",
						Processes:       procs,
						BytesPerProcess: perProc,
						RecordSize:      record,
						StartOffset:     func(pid int) int64 { return int64(pid) * perProc },
						UseMPIIO:        true,
					}
					return env, w, nil
				},
			})
		}
		phases = append(phases, suitePhaseSpec{name: "hard", points: pts})
	}

	// Phase "random": seeded hop reads across a large shared file —
	// partial locality, no pattern the server readahead can ride.
	{
		const record = 8 << 10
		hops := int(p.Scale * 256)
		if hops < 4 {
			hops = 4
		}
		fileSize := p.scaled(512<<20, 1<<20)
		pts := make([]suitePoint, 0, len(suiteProcs))
		for _, procs := range suiteProcs {
			procs := procs
			cs := spec(procs)
			label := fmt.Sprintf("%dp", procs)
			hopSeed := stats.DeriveSeed(p.Seed, "suite-random-offsets", label)
			pts = append(pts, suitePoint{
				label:  label,
				procs:  procs,
				record: record,
				spec:   cs,
				build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
					env, err := newSharedFileEnv(e, cs, fileSize)
					if err != nil {
						return nil, nil, err
					}
					w := workload.HopRead{
						Label:         "suite-random",
						Processes:     procs,
						Hops:          hops,
						RecordsPerHop: 4,
						RecordSize:    record,
						Seed:          hopSeed,
					}
					return env, w, nil
				},
			})
		}
		phases = append(phases, suitePhaseSpec{name: "random", points: pts})
	}

	// Phase "meta": mdtest-style open+read storms over many small
	// files. Each file costs one MDS round trip, so the roofline's
	// extra per-record cost is the MDS service time amortized over the
	// records one open amortizes across.
	{
		const record = 16 << 10
		const fileSize = 64 << 10
		files := int(p.Scale * 256)
		if files < 4 {
			files = 4
		}
		recordsPerFile := int64(fileSize) / record
		extra := mdsServiceTime / sim.Time(recordsPerFile)
		pts := make([]suitePoint, 0, len(suiteProcs))
		for _, procs := range suiteProcs {
			procs := procs
			cs := spec(procs)
			pts = append(pts, suitePoint{
				label:      fmt.Sprintf("%dp", procs),
				procs:      procs,
				record:     record,
				extraPerOp: extra,
				spec:       cs,
				build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
					env, err := newMetaFilesEnv(e, cs, files, fileSize)
					if err != nil {
						return nil, nil, err
					}
					w := workload.MetaRead{
						Label:           "suite-meta",
						Processes:       procs,
						FilesPerProcess: files,
						RecordSize:      record,
					}
					return env, w, nil
				},
			})
		}
		phases = append(phases, suitePhaseSpec{name: "meta", points: pts})
	}

	return phases
}

// ceilings returns the per-point roofline ceilings of one phase.
func (ph suitePhaseSpec) ceilings() []float64 {
	out := make([]float64, len(ph.points))
	for i, pt := range ph.points {
		out[i] = roofline.FromCluster(pt.spec).CeilingBPS(pt.record, pt.procs, pt.extraPerOp)
	}
	return out
}

// seedRun holds one seed's sweep of every phase, in phase order.
type seedRun struct {
	phases [][]Point
}

// RunSuite executes the composite under nseeds independent seeds (the
// base seed, then consecutive offsets — the robustness convention) and
// aggregates per-phase CC and headroom distributions with bootstrap
// CIs. Per-seed suites fan out across p.Parallel workers and fold in
// seed order; every bootstrap PRNG is seeded by stats.DeriveSeed from
// stable identifiers, so the report is bit-identical for any worker
// count.
func RunSuite(p Params, nseeds int) (SuiteReport, error) {
	if nseeds < 2 {
		return SuiteReport{}, fmt.Errorf("experiments: suite needs ≥ 2 seeds for CC distributions, got %d", nseeds)
	}
	p = p.withDefaults()
	phases := suiteSpec(p)

	runs := make([]seedRun, nseeds)
	err := ForEach(p.Parallel, nseeds, func(s int) error {
		params := p
		params.Seed = p.Seed + int64(s)*1000
		st := NewSuite(params)
		run := seedRun{phases: make([][]Point, len(phases))}
		for pi, ph := range phases {
			// The sweep spec is rebuilt per seed only for the
			// seed-bearing parts (hop offsets); sizes are identical.
			specPh := suiteSpec(params)[pi]
			specs := make([]runSpec, len(specPh.points))
			for i, pt := range specPh.points {
				specs[i] = runSpec{label: pt.label, build: pt.build}
			}
			pts, err := st.runSweep("suite-"+ph.name, specs)
			if err != nil {
				return err
			}
			run.phases[pi] = pts
		}
		runs[s] = run
		return nil
	})
	if err != nil {
		return SuiteReport{}, err
	}

	rep := SuiteReport{Params: p, Seeds: nseeds, Phases: make([]SuitePhase, len(phases))}
	composite := make([]float64, 0, nseeds)
	for pi, ph := range phases {
		out := SuitePhase{
			Name:       ph.name,
			CeilingBPS: ph.ceilings(),
			CC:         make(map[core.MetricKind]stats.Dist),
			RankCC:     make(map[core.MetricKind]stats.Dist),
		}

		// CC distributions: one normalized Pearson and Spearman value
		// per seed, summarized across seeds.
		for _, k := range core.Kinds {
			ccs := make([]float64, 0, nseeds)
			rccs := make([]float64, 0, nseeds)
			for s := 0; s < nseeds; s++ {
				pts := runs[s].phases[pi]
				vals := make([]float64, len(pts))
				exec := make([]float64, len(pts))
				for i, pt := range pts {
					vals[i] = pt.Metrics.Value(k)
					exec[i] = pt.Metrics.ExecTime.Seconds()
				}
				cc := stats.MetricCC(k, vals, exec)
				rcc := stats.NormalizedCC(stats.Spearman(vals, exec), k.ExpectedDirection())
				if math.IsNaN(cc) || math.IsNaN(rcc) {
					return SuiteReport{}, fmt.Errorf("experiments: suite phase %s seed %d: CC(%v) is NaN", ph.name, p.Seed+int64(s)*1000, k)
				}
				ccs = append(ccs, cc)
				rccs = append(rccs, rcc)
			}
			out.CC[k] = stats.NewDist(ccs, stats.BootstrapConfig{
				Seed: stats.DeriveSeed(p.Seed, "suite-bootstrap", ph.name+"/cc/"+k.String()),
			})
			out.RankCC[k] = stats.NewDist(rccs, stats.BootstrapConfig{
				Seed: stats.DeriveSeed(p.Seed, "suite-bootstrap", ph.name+"/rankcc/"+k.String()),
			})
		}

		// Headroom distribution over every (seed, point) run.
		headrooms := make([]float64, 0, nseeds*len(ph.points))
		for s := 0; s < nseeds; s++ {
			for i, pt := range runs[s].phases[pi] {
				headrooms = append(headrooms, roofline.Headroom(pt.Metrics.BPS(), out.CeilingBPS[i]))
			}
		}
		out.Headroom = stats.NewDist(headrooms, stats.BootstrapConfig{
			Seed: stats.DeriveSeed(p.Seed, "suite-bootstrap", ph.name+"/headroom"),
		})

		// Representative points: the base seed's sweep with headroom.
		out.Points = append([]Point(nil), runs[0].phases[pi]...)
		for i := range out.Points {
			out.Points[i].Headroom = roofline.Headroom(out.Points[i].Metrics.BPS(), out.CeilingBPS[i])
		}
		rep.Phases[pi] = out
	}

	// Composite score: per-seed geometric mean of phase mean BPS.
	for s := 0; s < nseeds; s++ {
		means := make([]float64, len(phases))
		for pi := range phases {
			vals := make([]float64, len(runs[s].phases[pi]))
			for i, pt := range runs[s].phases[pi] {
				vals[i] = pt.Metrics.BPS()
			}
			means[pi] = stats.Mean(vals)
		}
		composite = append(composite, stats.GeoMean(means))
	}
	rep.Composite = stats.NewDist(composite, stats.BootstrapConfig{
		Seed: stats.DeriveSeed(p.Seed, "suite-bootstrap", "composite"),
	})
	return rep, nil
}
