package experiments

import (
	"reflect"
	"testing"
)

func TestClientCacheFigureStaysOutOfPaperOutputs(t *testing.T) {
	for _, id := range FigureIDs {
		if id == ClientCacheFigureID {
			t.Fatal("clientcache must not join the paper-reproduction figure list")
		}
	}
	for _, id := range ExtensionIDs {
		if id == ClientCacheFigureID {
			t.Fatal("clientcache must not join the extension figure list")
		}
	}
}

// TestClientCacheParallelMatchesSequential pins the determinism contract
// through the full layer pipeline — client cache, pfs client, netsim,
// devices — including the Aux hit rates read back from the shared cache
// objects after the sweep.
func TestClientCacheParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) Figure {
		s := NewSuite(Params{Scale: 1.0 / 512, Seed: 42, Parallel: parallel})
		f, err := s.Figure(ClientCacheFigureID)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return f
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("points differ between parallel=1 and parallel=8:\nseq: %+v\npar: %+v", seq.Points, par.Points)
	}
	if !reflect.DeepEqual(seq.CC, par.CC) {
		t.Errorf("CC tables differ between parallel=1 and parallel=8")
	}
}

// TestClientCacheSweepShowsDivergence checks the figure tells the story
// it exists for: hit rate rises with capacity, execution time falls, and
// BPS pulls away from file-system bandwidth (which cannot see hits that
// move no file-system bytes).
func TestClientCacheSweepShowsDivergence(t *testing.T) {
	s := NewSuite(Params{Scale: 1.0 / 512, Seed: 42})
	f, err := s.Figure(ClientCacheFigureID)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != len(clientCacheFractions) {
		t.Fatalf("points = %d, want %d", len(f.Points), len(clientCacheFractions))
	}
	for i, pt := range f.Points {
		if pt.Errors != 0 {
			t.Fatalf("%s: %d errors in a healthy sweep", pt.Label, pt.Errors)
		}
		if pt.Aux == nil {
			t.Fatalf("%s: missing Aux hit rate", pt.Label)
		}
		if i > 0 && pt.Aux["hit_rate"] < f.Points[i-1].Aux["hit_rate"] {
			t.Fatalf("hit rate fell from %v (%s) to %v (%s)",
				f.Points[i-1].Aux["hit_rate"], f.Points[i-1].Label, pt.Aux["hit_rate"], pt.Label)
		}
	}
	off, full := f.Points[0], f.Points[len(f.Points)-1]
	if off.Aux["hit_rate"] != 0 {
		t.Fatalf("cache-off hit rate = %v, want 0", off.Aux["hit_rate"])
	}
	if full.Aux["hit_rate"] < 0.5 {
		t.Fatalf("file-sized cache hit rate = %v, want > 0.5", full.Aux["hit_rate"])
	}
	if full.Metrics.ExecTime >= off.Metrics.ExecTime {
		t.Fatal("cache hits did not reduce execution time")
	}
	// The divergence: BPS/BW grows as hits serve blocks without moving
	// file-system bytes.
	ratio := func(p Point) float64 { return p.Metrics.BPS() / p.Metrics.Bandwidth() }
	if ratio(full) <= 1.5*ratio(off) {
		t.Fatalf("BPS/BW ratio off=%v full=%v: expected clear divergence", ratio(off), ratio(full))
	}
}
