package experiments

import (
	"reflect"
	"strings"
	"testing"

	"bps/internal/obs"
	"bps/internal/sim"
)

// TestFaultPlanSeedPinned pins the fault-plan seed derivation for the
// default sweep labels: these roots feed every injected fault, so a
// change to the derivation or the label format silently reshuffles the
// whole FaultSweep.
func TestFaultPlanSeedPinned(t *testing.T) {
	pinned := map[string]int64{
		"r0":     8472897934957076197,
		"r0.001": -2945874005553772872,
		"r0.004": -2945868507995631817,
		"r0.016": -2946871262600371024,
		"r0.064": -2944034522600154319,
	}
	for label, want := range pinned {
		if got := DeriveSeed(42, "faultsweep-plan", label); got != want {
			t.Errorf("DeriveSeed(42, faultsweep-plan, %q) = %d, want %d", label, got, want)
		}
	}
}

func TestFaultRateLabels(t *testing.T) {
	cases := map[float64]string{0: "r0", 0.001: "r0.001", 0.064: "r0.064"}
	for rate, want := range cases {
		if got := faultRateLabel(rate); got != want {
			t.Errorf("faultRateLabel(%g) = %q, want %q", rate, got, want)
		}
	}
}

// TestFaultFigureStaysOutOfPaperOutputs guards the acceptance criterion
// that `-fig all` output is unchanged: the FaultSweep must never creep
// into the paper-figure or extension ID lists.
func TestFaultFigureStaysOutOfPaperOutputs(t *testing.T) {
	for _, id := range append(append([]string{}, FigureIDs...), ExtensionIDs...) {
		if id == FaultFigureID {
			t.Fatalf("%q listed among paper outputs", FaultFigureID)
		}
	}
}

// TestFaultSweepParallelMatchesSequential extends the determinism
// contract to the FaultSweep: fault injection at every layer, retries,
// backoff jitter, and failover must all replay bit-identically whatever
// the worker count. Run under -race with the rest of the package.
func TestFaultSweepParallelMatchesSequential(t *testing.T) {
	build := func(parallel int) *Suite {
		p := Params{Scale: 1.0 / 512, Seed: 42, Parallel: parallel}
		s := NewSuite(p)
		s.SetObserve(&obs.Options{SampleEvery: sim.Millisecond})
		return s
	}
	seq, par := build(1), build(8)
	fs, err := seq.Figure(FaultFigureID)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	fp, err := par.Figure(FaultFigureID)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(fs, fp) {
		t.Errorf("faults figure differs between parallel=1 and parallel=8:\nseq: %+v\npar: %+v", fs, fp)
	}
	so, po := obsSummary(seq.LastObservation()), obsSummary(par.LastObservation())
	if so != po {
		t.Errorf("observation summaries differ:\n--- parallel=1\n%s--- parallel=8\n%s", so, po)
	}
}

// TestFaultSweepDegradesExecution: rising fault rates must cost the
// application time — the highest-rate point runs longer than the
// healthy one (the property that gives the figure its CC signal).
func TestFaultSweepDegradesExecution(t *testing.T) {
	s := NewSuite(Params{Scale: 1.0 / 256, Seed: 42, FaultRates: []float64{0, 0.1}})
	f, err := s.Figure(FaultFigureID)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(f.Points))
	}
	healthy, faulted := f.Points[0], f.Points[1]
	if faulted.Metrics.ExecTime <= healthy.Metrics.ExecTime {
		t.Errorf("exec time did not degrade: healthy %v, faulted %v",
			healthy.Metrics.ExecTime, faulted.Metrics.ExecTime)
	}
	if healthy.Errors != 0 {
		t.Errorf("healthy point reported %d errors", healthy.Errors)
	}
	// The workload's block demand is fixed; recovery keeps it moving.
	if faulted.Metrics.Ops != healthy.Metrics.Ops {
		t.Errorf("ops differ: healthy %d, faulted %d", healthy.Metrics.Ops, faulted.Metrics.Ops)
	}
}

// TestFaultTraceHasRetrySpans: the Chrome trace of a faulted run must
// carry the recovery story — "retry" spans in the pfs category marking
// each backoff gap.
func TestFaultTraceHasRetrySpans(t *testing.T) {
	s := NewSuite(Params{Scale: 1.0 / 512, Seed: 42, FaultRates: []float64{0.1}})
	s.SetObserve(&obs.Options{ChromeTrace: true, SampleEvery: sim.Millisecond})
	if _, err := s.Figure(FaultFigureID); err != nil {
		t.Fatal(err)
	}
	last := s.LastObservation()
	if last == nil {
		t.Fatal("no observation collected")
	}
	var b strings.Builder
	if err := last.Obs.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	trace := b.String()
	if !strings.Contains(trace, `"retry"`) {
		t.Error("faulted run's Chrome trace has no retry spans")
	}
	if !strings.Contains(trace, `"pfs"`) {
		t.Error("faulted run's Chrome trace has no pfs category")
	}
}
