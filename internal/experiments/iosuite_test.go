package experiments

import (
	"math"
	"reflect"
	"testing"

	"bps/internal/core"
)

func runSmallSuite(t *testing.T, parallel int) SuiteReport {
	t.Helper()
	rep, err := RunSuite(Params{Scale: 1.0 / 512, Seed: 42, Parallel: parallel}, 3)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	return rep
}

// TestRunSuiteShape: four phases, full sweep per phase, populated
// distributions and ceilings.
func TestRunSuiteShape(t *testing.T) {
	rep := runSmallSuite(t, 0)
	wantPhases := []string{"easy", "hard", "random", "meta"}
	if len(rep.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases, want %d", len(rep.Phases), len(wantPhases))
	}
	for i, ph := range rep.Phases {
		if ph.Name != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, wantPhases[i])
		}
		if len(ph.Points) != len(suiteProcs) || len(ph.CeilingBPS) != len(suiteProcs) {
			t.Fatalf("phase %s: %d points, %d ceilings, want %d each", ph.Name, len(ph.Points), len(ph.CeilingBPS), len(suiteProcs))
		}
		for _, k := range core.Kinds {
			cc := ph.CC[k]
			if cc.N != rep.Seeds {
				t.Errorf("phase %s CC(%v): N = %d, want %d", ph.Name, k, cc.N, rep.Seeds)
			}
			if cc.CILo > cc.Mean || cc.Mean > cc.CIHi {
				t.Errorf("phase %s CC(%v): mean %v outside CI [%v, %v]", ph.Name, k, cc.Mean, cc.CILo, cc.CIHi)
			}
			if rk := ph.RankCC[k]; rk.Mean < -1 || rk.Mean > 1 {
				t.Errorf("phase %s RankCC(%v) mean %v outside [-1, 1]", ph.Name, k, rk.Mean)
			}
		}
		for i, pt := range ph.Points {
			if ph.CeilingBPS[i] <= 0 || math.IsNaN(ph.CeilingBPS[i]) {
				t.Errorf("phase %s point %s: degenerate ceiling %v", ph.Name, pt.Label, ph.CeilingBPS[i])
			}
			if pt.Headroom <= 0 || pt.Headroom > 1.25 {
				t.Errorf("phase %s point %s: headroom %v outside (0, 1.25]", ph.Name, pt.Label, pt.Headroom)
			}
		}
		if ph.Headroom.N != rep.Seeds*len(suiteProcs) {
			t.Errorf("phase %s headroom N = %d, want %d", ph.Name, ph.Headroom.N, rep.Seeds*len(suiteProcs))
		}
	}
	if rep.Composite.N != rep.Seeds || rep.Composite.Mean <= 0 {
		t.Fatalf("composite: %+v", rep.Composite)
	}
}

// TestRunSuiteParallelMatchesSequential is the suite's determinism pin:
// the full report — every point, CC distribution, bootstrap CI, and
// headroom — must be bit-identical regardless of worker count. Run
// under -race this also exercises the fan-out for data races.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	seq := runSmallSuite(t, 1)
	par := runSmallSuite(t, 8)
	// The report echoes its Params; the worker count is the one field
	// that legitimately differs between the two runs.
	seq.Params.Parallel = 0
	par.Params.Parallel = 0
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("suite report differs between sequential and parallel runs:\n seq %+v\n par %+v", seq, par)
	}
}

// TestRunSuiteSeedFloor: fewer than two seeds cannot produce a CC
// distribution and must be refused.
func TestRunSuiteSeedFloor(t *testing.T) {
	if _, err := RunSuite(Params{Scale: 1.0 / 512}, 1); err == nil {
		t.Fatal("RunSuite accepted 1 seed")
	}
}
