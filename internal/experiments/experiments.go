// Package experiments reproduces the BPS paper's evaluation (§IV): four
// experiment sets (paper Table 2) sweeping storage devices, I/O request
// sizes, I/O concurrency, and additional data movement, each yielding the
// per-metric normalized correlation coefficients of Figures 4–6, 9, 11,
// and 12 and the detail series of Figures 7, 8, and 10.
//
// Data sizes scale with Params.Scale relative to the paper's testbed so
// the same code serves fast tests (tiny scale), benchmarks (moderate
// scale), and full paper-sized runs (scale 1).
package experiments

import (
	"fmt"

	"bps/internal/core"
	"bps/internal/obs"
	"bps/internal/stats"
)

// Params controls experiment scale and reproducibility.
type Params struct {
	// Scale multiplies the paper's data sizes (1.0 = the paper's 16–64 GB
	// runs). The sweep shapes are scale-invariant as long as per-run I/O
	// remains much larger than one record.
	Scale float64

	// Seed is the base RNG seed. Each run's engine seed is derived as a
	// pure function of (Seed, sweep ID, point label) — see DeriveSeed —
	// so results are independent of sweep order and worker scheduling.
	Seed int64

	// Parallel caps the worker goroutines each sweep fans its runs out
	// across: 1 forces sequential execution, 0 (the default) means
	// GOMAXPROCS. Every value produces bit-identical results; the knob
	// only trades wall-clock time against CPU.
	Parallel int

	// FaultRates overrides the FaultSweep x-axis (the "faults" figure);
	// nil means DefaultFaultRates. The paper figures ignore it.
	FaultRates []float64

	// Shards selects the engine execution mode for every run: 0 (the
	// default) is the classic single-calendar engine, which keeps the
	// paper figures byte-identical to their goldens; N ≥ 1 runs each
	// sweep point on a sharded engine with N workers. Sharded results
	// are bit-identical for every positive N — only classic vs. sharded
	// differ (asynchronous RPC semantics; see DESIGN.md §14). The
	// shardscale figure is always sharded: it uses Shards when set and
	// GOMAXPROCS otherwise.
	Shards int
}

// Default returns the parameters used by the benchmark harness: 1/64 of
// the paper's data volume, which preserves every shape while keeping a
// full reproduction in the tens of seconds.
func Default() Params { return Params{Scale: 1.0 / 64, Seed: 42} }

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1.0 / 64
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// scaled returns bytes scaled by p.Scale, rounded up to a multiple of
// unit and at least one unit.
func (p Params) scaled(bytes int64, unit int64) int64 {
	v := int64(p.Scale * float64(bytes))
	if v < unit {
		return unit
	}
	return (v + unit - 1) / unit * unit
}

// Point is one run of a sweep: a labelled set of measurements.
type Point struct {
	Label   string
	Metrics core.Metrics
	Errors  int

	// Aux carries sweep-specific side measurements (e.g. the clientcache
	// sweep's hit rate) keyed by name; nil for most sweeps.
	Aux map[string]float64

	// Blame names the run's dominant bottleneck layer per the
	// critical-path profiler; "" unless the sweep ran with attribution.
	Blame string

	// Headroom is the run's measured BPS as a fraction of the analytic
	// roofline ceiling (internal/roofline); 0 unless the sweep computed
	// a ceiling (the suite figure does).
	Headroom float64
}

// Figure is the reproduction of one paper figure.
type Figure struct {
	ID    string // e.g. "fig4"
	Title string
	Notes string

	// XLabel names the sweep variable.
	XLabel string

	// Points holds the per-run measurements in sweep order.
	Points []Point

	// CC holds the normalized correlation coefficients (CC figures:
	// 4, 5, 6, 9, 11, 12); nil for detail figures.
	CC *stats.CCTable

	// DetailKind is the metric a detail figure (7, 8, 10) plots against
	// application execution time.
	DetailKind core.MetricKind
	IsDetail   bool
}

// ccTable computes the figure's CC table from its points.
func ccTable(label string, points []Point) *stats.CCTable {
	runs := make([]core.Metrics, len(points))
	for i, pt := range points {
		runs[i] = pt.Metrics
	}
	t := stats.NewCCTable(label, runs)
	return &t
}

// FigureIDs lists every reproducible figure in paper order.
var FigureIDs = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
}

// Suite runs experiments with memoized sweeps, so detail figures reuse
// the runs of their CC figures (Fig. 7 reuses Fig. 5's sweep, etc.).
type Suite struct {
	params  Params
	memo    map[string][]Point
	observe *obs.Options
	lastObs *Observation
}

// Observation is the observability data of one instrumented run.
type Observation struct {
	Label string // the sweep point's label
	Obs   *obs.Observer
}

// NewSuite returns a suite with the given parameters.
func NewSuite(p Params) *Suite {
	return &Suite{params: p.withDefaults(), memo: make(map[string][]Point)}
}

// Params returns the suite's effective parameters.
func (s *Suite) Params() Params { return s.params }

// SetObserve attaches the observability subsystem (with the given
// options) to every subsequent run; nil turns it back off. Observation
// never changes measured results — it exists so a reproduced figure's
// final run can be exported as a Chrome trace or per-layer metrics.
func (s *Suite) SetObserve(opts *obs.Options) { s.observe = opts }

// LastObservation returns the observability data of the most recent
// instrumented run, or nil when no run has been observed. Memoized
// sweeps do not rerun, so reproduce the figure of interest first.
func (s *Suite) LastObservation() *Observation { return s.lastObs }

// sweep memoizes a named sweep.
func (s *Suite) sweep(key string, run func() ([]Point, error)) ([]Point, error) {
	if pts, ok := s.memo[key]; ok {
		return pts, nil
	}
	pts, err := run()
	if err != nil {
		return nil, fmt.Errorf("experiments: sweep %s: %w", key, err)
	}
	s.memo[key] = pts
	return pts, nil
}

// Figure reproduces one figure by ID ("fig4" … "fig12").
func (s *Suite) Figure(id string) (Figure, error) {
	switch id {
	case "fig4":
		return s.fig4()
	case "fig5":
		return s.fig5()
	case "fig6":
		return s.fig6()
	case "fig7":
		return s.fig7()
	case "fig8":
		return s.fig8()
	case "fig9":
		return s.fig9()
	case "fig10":
		return s.fig10()
	case "fig11":
		return s.fig11()
	case "fig12":
		return s.fig12()
	case "ext1", "ext2", "ext3":
		return s.extension(id)
	case FaultFigureID:
		return s.figFaults()
	case ClientCacheFigureID:
		return s.figClientCache()
	case ShardScaleFigureID:
		return s.figShardScale()
	case QoSFigureID:
		return s.figQoS()
	case LiveMemFigureID:
		return s.figLiveMem()
	default:
		return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v, extensions %v, %q, %q, %q, %q, and %q)",
			id, FigureIDs, ExtensionIDs, FaultFigureID, ClientCacheFigureID, ShardScaleFigureID, QoSFigureID, LiveMemFigureID)
	}
}

// All reproduces every figure in paper order.
func (s *Suite) All() ([]Figure, error) {
	figs := make([]Figure, 0, len(FigureIDs))
	for _, id := range FigureIDs {
		f, err := s.Figure(id)
		if err != nil {
			return figs, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
