package experiments

import (
	"fmt"
	"runtime"

	"bps/internal/sim"
	"bps/internal/workload"
)

// ShardScaleFigureID names the shard-scaling headline figure: the
// cluster-scale sweep the sharded engine exists for — 10^5 and more
// client processes over a thousand-server cluster, a size the classic
// single-calendar engine handles but cannot spread across cores. Like
// FaultFigureID it is routed through Suite.Figure but kept out of
// FigureIDs: the paper-reproduction outputs stay exactly as they were.
//
// The figure always runs on a sharded engine (Params.Shards workers
// when set, GOMAXPROCS otherwise). Results are bit-identical for every
// worker count, so the figure itself is reproducible on any machine;
// only the wall-clock time changes with the core count.
const ShardScaleFigureID = "shardscale"

// DefaultShardScaleProcs is the shardscale x-axis: the client process
// counts swept over the thousand-server cluster.
var DefaultShardScaleProcs = []int{25000, 50000, 100000}

// shardScaleServers is the cluster size of the shardscale figure.
const shardScaleServers = 1000

// shardScalePerProcBytes is each client process's unscaled read volume;
// Params.Scale shrinks it like every other sweep's data sizes.
const shardScalePerProcBytes = 16 << 20

// shardScaleWorkers resolves the figure's shard-worker count.
func (s *Suite) shardScaleWorkers() int {
	if s.params.Shards > 0 {
		return s.params.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// shardScaleSweep runs the shardscale sweep: an independent-region
// sequential read (one region per process, one client per process,
// each client in its own engine domain) on a shared file striped over
// every server. Unlike the other sweeps it executes its points
// sequentially regardless of Params.Parallel: each run is internally
// parallel across the shard workers and holds ~10^5 process
// goroutines, so overlapping runs would multiply peak memory for no
// wall-clock win.
func (s *Suite) shardScaleSweep() ([]Point, error) {
	return s.sweep(ShardScaleFigureID, func() ([]Point, error) {
		const record = 64 << 10
		workers := s.shardScaleWorkers()
		perProc := s.params.scaled(shardScalePerProcBytes, record)
		var pts []Point
		for _, procs := range DefaultShardScaleProcs {
			procs := procs
			label := fmt.Sprintf("p%d", procs)
			w := workload.SeqRead{
				Label:           "shardscale",
				Processes:       procs,
				BytesPerProcess: perProc,
				RecordSize:      record,
				StartOffset:     func(pid int) int64 { return int64(pid) * perProc },
			}
			pt, ob, err := runOne(DeriveSeed(s.params.Seed, ShardScaleFigureID, label), label, workers, s.observe,
				func(e *sim.Engine) (workload.Env, workload.Runner, error) {
					env, err := newSharedFileEnv(e, clusterSpec{
						Servers: shardScaleServers,
						Media:   ssd,
						Clients: procs,
					}, perProc*int64(procs))
					return env, w, err
				})
			if err != nil {
				return nil, err
			}
			if ob != nil {
				s.lastObs = ob
			}
			pts = append(pts, pt)
		}
		return pts, nil
	})
}

// figShardScale assembles the shardscale figure.
func (s *Suite) figShardScale() (Figure, error) {
	pts, err := s.shardScaleSweep()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:    ShardScaleFigureID,
		Title: "ShardScale: BPS at cluster scale on the sharded engine",
		Notes: fmt.Sprintf("%d I/O servers, one domain per client and per server, conservative-lookahead windows; results are bit-identical for every shard-worker count.",
			shardScaleServers),
		XLabel: "client processes",
		Points: pts,
		CC:     ccTable(ShardScaleFigureID, pts),
	}, nil
}
