package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"bps/internal/obs"
	"bps/internal/sim"
)

// TestDeriveSeedPinned pins the derived engine seed of one point per
// sweep. These values are load-bearing: every figure's measurements are
// a function of them, so an accidental change to the derivation (hash,
// framing, byte order) shows up here before it silently shifts every
// reproduced number.
func TestDeriveSeedPinned(t *testing.T) {
	pinned := map[[2]string]int64{
		{"set1", "local-hdd"}:  -1083276964539255126,
		{"set1", "pvfs-8s"}:    5539543175295217317,
		{"set2-hdd", "4KB"}:    4562652203324125485,
		{"set2-ssd", "8MB"}:    2875436787786197841,
		{"set3a", "1p"}:        -6779004637803703974,
		{"set3b", "32p"}:       528372403079536243,
		{"set4", "gap4096B"}:   8806648601780494330,
		{"ext1", "off"}:        -4087437439217893992,
		{"ext2", "64KB"}:       -5866257249286401077,
		{"ext3", "collective"}: 1002652676135534745,
	}
	for key, want := range pinned {
		if got := DeriveSeed(42, key[0], key[1]); got != want {
			t.Errorf("DeriveSeed(42, %q, %q) = %d, want %d", key[0], key[1], got, want)
		}
	}
}

// TestDeriveSeedProperties verifies the derivation is a pure function of
// its inputs, sensitive to each of them, and unambiguous about the
// (sweepID, label) split.
func TestDeriveSeedProperties(t *testing.T) {
	a := DeriveSeed(42, "set1", "local-hdd")
	if b := DeriveSeed(42, "set1", "local-hdd"); b != a {
		t.Fatalf("not pure: %d vs %d", a, b)
	}
	if b := DeriveSeed(43, "set1", "local-hdd"); b == a {
		t.Error("insensitive to base seed")
	}
	if b := DeriveSeed(42, "set2", "local-hdd"); b == a {
		t.Error("insensitive to sweep ID")
	}
	if b := DeriveSeed(42, "set1", "local-ssd"); b == a {
		t.Error("insensitive to label")
	}
	// The explicit separator keeps ("ab","c") and ("a","bc") distinct.
	if DeriveSeed(42, "ab", "c") == DeriveSeed(42, "a", "bc") {
		t.Error("(sweepID, label) framing is ambiguous")
	}
}

// TestForEach exercises the worker pool: full coverage of the index
// range for worker counts below, at, and above n, and lowest-index error
// selection regardless of completion order.
func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		var calls atomic.Int64
		seen := make([]atomic.Bool, 33)
		err := ForEach(workers, len(seen), func(i int) error {
			calls.Add(1)
			if seen[i].Swap(true) {
				return fmt.Errorf("index %d ran twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != int64(len(seen)) {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls.Load(), len(seen))
		}
	}
	if err := ForEach(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0 ran a job: %v", err)
	}
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := ForEach(8, 16, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 12:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("error = %v, want lowest-index error %v", err, errLow)
	}
}

// TestRunSweepDuplicateLabel verifies the guard on the seed-derivation
// keyspace: two points with the same label would silently share a seed.
func TestRunSweepDuplicateLabel(t *testing.T) {
	s := NewSuite(testParams())
	_, err := s.runSweep("dup", []runSpec{{label: "x"}, {label: "x"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate point label") {
		t.Fatalf("err = %v, want duplicate-label error", err)
	}
}

// obsSummary flattens an observation's registry (counters, histogram
// statistics, probe values) into a comparable string.
func obsSummary(o *Observation) string {
	if o == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "label=%s\n", o.Label)
	reg := o.Obs.Registry()
	for _, c := range reg.Counters() {
		fmt.Fprintf(&b, "counter %s=%d\n", c.Name(), c.Value())
	}
	for _, g := range reg.Gauges() {
		fmt.Fprintf(&b, "gauge %s=%g\n", g.Name(), g.Value())
	}
	for _, h := range reg.Histograms() {
		fmt.Fprintf(&b, "hist %s n=%d sum=%d max=%d\n", h.Name(), h.Count(), h.Sum(), h.Max())
	}
	for _, p := range reg.Probes() {
		fmt.Fprintf(&b, "probe %s=%g\n", p.Name, p.Fn())
	}
	return b.String()
}

// TestParallelMatchesSequential is the determinism contract test: the
// full tiny-scale suite (all paper figures and extensions, with
// observability attached) run with one worker and with eight workers
// must produce deeply equal Figures, CC tables, and per-run observation
// summaries. Run it under -race to validate the worker pool's memory
// discipline.
func TestParallelMatchesSequential(t *testing.T) {
	build := func(parallel int) *Suite {
		p := Params{Scale: 1.0 / 512, Seed: 42, Parallel: parallel}
		s := NewSuite(p)
		s.SetObserve(&obs.Options{SampleEvery: sim.Millisecond})
		return s
	}
	seq, par := build(1), build(8)
	ids := append(append([]string{}, FigureIDs...), ExtensionIDs...)
	for _, id := range ids {
		fs, err := seq.Figure(id)
		if err != nil {
			t.Fatalf("sequential %s: %v", id, err)
		}
		fp, err := par.Figure(id)
		if err != nil {
			t.Fatalf("parallel %s: %v", id, err)
		}
		if !reflect.DeepEqual(fs.Points, fp.Points) {
			t.Errorf("%s: points differ between parallel=1 and parallel=8", id)
		}
		if !reflect.DeepEqual(fs.CC, fp.CC) {
			t.Errorf("%s: CC tables differ between parallel=1 and parallel=8", id)
		}
		if !reflect.DeepEqual(fs, fp) {
			t.Errorf("%s: figures differ between parallel=1 and parallel=8", id)
		}
		so, po := obsSummary(seq.LastObservation()), obsSummary(par.LastObservation())
		if so != po {
			t.Errorf("%s: observation summaries differ:\n--- parallel=1\n%s--- parallel=8\n%s", id, so, po)
		}
	}
}

// TestRobustnessParallelMatchesSequential extends the contract to the
// robustness harness, whose per-seed suites also fan out.
func TestRobustnessParallelMatchesSequential(t *testing.T) {
	base := Params{Scale: 1.0 / 512, Seed: 42}
	seqP, parP := base, base
	seqP.Parallel = 1
	parP.Parallel = 8
	rs, err := RunRobustness(seqP, "fig5", 3)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunRobustness(parP, "fig5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Errorf("robustness differs:\nseq: %+v\npar: %+v", rs, rp)
	}
}
