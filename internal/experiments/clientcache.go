package experiments

import (
	"bps/internal/ioreq"
	"bps/internal/sim"
	"bps/internal/workload"
)

// ClientCacheFigureID names the client-cache sweep: the layer-pipeline
// experiment showing BPS diverging from file-system bandwidth as a
// client-side shared page cache absorbs a rising share of the accesses.
// Like FaultFigureID it is routed through Suite.Figure but kept out of
// FigureIDs, so the paper-reproduction outputs stay exactly as they
// were.
const ClientCacheFigureID = "clientcache"

// clientCacheFileBytes is the sweep's unscaled shared-file volume.
const clientCacheFileBytes = 4 << 30

// clientCacheFractions is the sweep x-axis: the client cache's capacity
// as a fraction of the file, from disabled to file-sized.
var clientCacheFractions = []struct {
	label string
	num   int64
	den   int64
}{
	{"off", 0, 1},
	{"1/8", 1, 8},
	{"1/4", 1, 4},
	{"1/2", 1, 2},
	{"full", 1, 1},
}

// clientCacheSweep reruns one HopRead workload — random bursts over a
// shared striped file, re-visiting far more records than the file holds
// distinct pages — while the client cache's capacity rises from zero to
// the whole file. The access pattern (workload seed) is identical at
// every point; only the cache differs. Server-side caching is disabled
// (ServerCache < 0) so the bytes the file system moves track client
// misses one-for-one: as the hit rate climbs, execution time and moved
// bytes fall together, file-system bandwidth stays pinned near the
// device rate, and BPS — which counts the application's block demand B
// against the shrinking access time — is the only throughput metric
// that rises with the delivered service.
func (s *Suite) clientCacheSweep() ([]Point, error) {
	return s.sweep(ClientCacheFigureID, func() ([]Point, error) {
		const (
			record  = 64 << 10
			procs   = 4
			servers = 4
			perHop  = 4
		)
		fileBytes := s.params.scaled(clientCacheFileBytes, record)
		// Revisit ~4x the file per run so capacity, not compulsory
		// misses, dominates the hit rate.
		hops := int(4 * fileBytes / procs / (perHop * record))
		if hops < 16 {
			hops = 16
		}
		w := workload.HopRead{
			Label:         "hop-clientcache",
			Processes:     procs,
			Hops:          hops,
			RecordsPerHop: perHop,
			RecordSize:    record,
			// One seed for the whole sweep: every point replays the same
			// access sequence, so B is constant and only the cache moves.
			Seed: DeriveSeed(s.params.Seed, ClientCacheFigureID, "hops"),
		}
		caches := make([]*ioreq.Cache, len(clientCacheFractions))
		var specs []runSpec
		for i, fr := range clientCacheFractions {
			i, fr := i, fr
			specs = append(specs, runSpec{label: fr.label, build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newSharedFileEnv(e, clusterSpec{
					Servers:     servers,
					Media:       hdd,
					Clients:     procs,
					ServerCache: -1,
					ClientCache: ioreq.CacheConfig{
						CapacityBytes: fileBytes * fr.num / fr.den,
						PageSize:      record,
						ReadAhead:     2 * record,
					},
				}, fileBytes)
				if err == nil {
					caches[i] = env.Cache
				}
				return env, w, err
			}})
		}
		pts, err := s.runSweep(ClientCacheFigureID, specs)
		if err != nil {
			return nil, err
		}
		// runSweep's worker pool has fully drained here, so the caches
		// each run published are safe to read.
		for i := range pts {
			pts[i].Aux = map[string]float64{"hit_rate": caches[i].HitRate()}
		}
		return pts, nil
	})
}

// figClientCache assembles the client-cache figure.
func (s *Suite) figClientCache() (Figure, error) {
	pts, err := s.clientCacheSweep()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     ClientCacheFigureID,
		Title:  "ClientCache: BPS vs. BW/IOPS/ARPT under rising cache hit rates",
		Notes:  "Shared client page cache in front of the pfs client; server caching off. Expectation: hits cut execution time without moving file-system bytes, so BW stays near the device rate while BPS rises with the delivered service.",
		XLabel: "cache capacity",
		Points: pts,
		CC:     ccTable(ClientCacheFigureID, pts),
	}, nil
}
