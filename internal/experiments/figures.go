package experiments

import (
	"fmt"

	"bps/internal/core"
	"bps/internal/sim"
	"bps/internal/workload"
)

// Paper testbed data volumes (§IV.C), multiplied by Params.Scale.
const (
	set1FileBytes  = 64 << 30 // Fig. 4: 64 GB sequential read
	set2FileBytes  = 16 << 30 // Figs. 5–8: 16 GB file, record-size sweep
	set3TotalBytes = 32 << 30 // Figs. 9–11: 32 GB total
	set4Regions    = 4096000  // Fig. 12: region count
)

// set1 sweeps storage configurations: local HDD, local SSD, and PVFS on
// 1–8 HDD servers, read sequentially by one process (paper §IV.C.1).
func (s *Suite) set1() ([]Point, error) {
	return s.sweep("set1", func() ([]Point, error) {
		const record = 4 << 20 // large records let striping parallelism engage
		fileSize := s.params.scaled(set1FileBytes, record)
		w := workload.SeqRead{
			Label:           "iozone-seq",
			Processes:       1,
			BytesPerProcess: fileSize,
			RecordSize:      record,
		}
		var specs []runSpec
		for _, k := range []storageKind{hdd, ssd} {
			k := k
			specs = append(specs, runSpec{label: "local-" + k.String(), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newLocalEnv(e, k, 1, fileSize)
				return env, w, err
			}})
		}
		for _, n := range []int{1, 2, 4, 8} {
			n := n
			specs = append(specs, runSpec{label: fmt.Sprintf("pvfs-%ds", n), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newSharedFileEnv(e, clusterSpec{Servers: n, Media: hdd, Clients: 1}, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("set1", specs)
	})
}

// set2RecordSizes is the paper's 4 KB – 8 MB record-size sweep.
var set2RecordSizes = []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20}

// set2 sweeps the I/O record size on a local device (paper §IV.C.2).
func (s *Suite) set2(k storageKind) ([]Point, error) {
	key := "set2-" + k.String()
	return s.sweep(key, func() ([]Point, error) {
		var specs []runSpec
		for _, record := range set2RecordSizes {
			record := record
			fileSize := s.params.scaled(set2FileBytes, record)
			w := workload.SeqRead{
				Label:           "iozone-sizes",
				Processes:       1,
				BytesPerProcess: fileSize,
				RecordSize:      record,
			}
			specs = append(specs, runSpec{label: sizeLabel(record), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newLocalEnv(e, k, 1, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep(key, specs)
	})
}

// set3aProcs is the Fig. 9 concurrency sweep.
var set3aProcs = []int{1, 2, 3, 4, 5, 6, 7, 8}

// set3a is the paper's "pure" concurrency experiment (§IV.C.3, Figs. 9 and
// 10): 1–8 IOzone processes, each reading its own file pinned to its own
// server through POSIX, 32 GB total across processes.
func (s *Suite) set3a() ([]Point, error) {
	return s.sweep("set3a", func() ([]Point, error) {
		const record = 64 << 10
		total := s.params.scaled(set3TotalBytes, record*int64(len(set3aProcs)))
		var specs []runSpec
		for _, procs := range set3aProcs {
			procs := procs
			perProc := roundTo(total/int64(procs), record)
			w := workload.SeqRead{
				Label:           "iozone-tp",
				Processes:       procs,
				BytesPerProcess: perProc,
				RecordSize:      record,
			}
			specs = append(specs, runSpec{label: fmt.Sprintf("%dp", procs), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newPinnedFilesEnv(e, clusterSpec{Servers: 8, Media: hdd, Clients: procs}, perProc)
				return env, w, err
			}})
		}
		return s.runSweep("set3a", specs)
	})
}

// set3bProcs is the Fig. 11 concurrency sweep.
var set3bProcs = []int{1, 2, 4, 8, 16, 32}

// set3b is the paper's general HPC concurrency experiment (§IV.C.3,
// Fig. 11): IOR over MPI-IO on one shared file striped across 8 servers,
// each of n processes reading its own 1/n with 64 KB transfers.
func (s *Suite) set3b() ([]Point, error) {
	return s.sweep("set3b", func() ([]Point, error) {
		const transfer = 64 << 10
		maxProcs := set3bProcs[len(set3bProcs)-1]
		fileSize := s.params.scaled(set3TotalBytes, transfer*int64(maxProcs))
		var specs []runSpec
		for _, procs := range set3bProcs {
			procs := procs
			segment := roundTo(fileSize/int64(procs), transfer)
			w := workload.SeqRead{
				Label:           "ior",
				Processes:       procs,
				BytesPerProcess: segment,
				RecordSize:      transfer,
				UseMPIIO:        true,
				StartOffset:     func(pid int) int64 { return int64(pid) * segment },
			}
			specs = append(specs, runSpec{label: fmt.Sprintf("%dp", procs), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newSharedFileEnv(e, clusterSpec{Servers: 8, Media: hdd, Clients: procs}, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("set3b", specs)
	})
}

// set4Spacings is the Fig. 12 region-spacing sweep (bytes of hole between
// 256-byte regions).
var set4Spacings = []int64{8, 64, 256, 1024, 2048, 4096}

// set4 is the additional-data-movement experiment (§IV.C.4, Fig. 12):
// HPIO noncontiguous reads with data sieving on a 4-server PVFS, region
// size 256 B, spacing swept 8–4096 B.
func (s *Suite) set4() ([]Point, error) {
	return s.sweep("set4", func() ([]Point, error) {
		// One Hpio process, like one MPI_File_read_all job: interleaved
		// multi-process streams would add seek noise orthogonal to the
		// additional-data-movement effect this set isolates.
		const procs = 1
		const regionSize = 256
		perProc := int(s.params.Scale * set4Regions)
		if perProc < 256 {
			perProc = 256
		}
		var specs []runSpec
		for _, spacing := range set4Spacings {
			spacing := spacing
			w := workload.Noncontig{
				Label:          "hpio",
				Processes:      procs,
				RegionCount:    perProc,
				RegionSize:     regionSize,
				RegionSpacing:  spacing,
				RegionsPerCall: 1024,
				Sieving:        true,
			}
			span := w.Span() + w.RegionSpacing
			fileSize := span * procs
			specs = append(specs, runSpec{label: fmt.Sprintf("gap%dB", spacing), build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newSharedFileEnv(e, clusterSpec{Servers: 4, Media: hdd, Clients: procs}, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("set4", specs)
	})
}

func (s *Suite) fig4() (Figure, error) {
	pts, err := s.set1()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig4",
		Title:  "Normalized CC, various storage devices",
		Notes:  "Paper: all four metrics correct, |CC| ≈ 0.93.",
		XLabel: "storage configuration",
		Points: pts,
		CC:     ccTable("fig4", pts),
	}, nil
}

func (s *Suite) fig5() (Figure, error) {
	pts, err := s.set2(hdd)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5",
		Title:  "Normalized CC, various I/O sizes, HDD",
		Notes:  "Paper: IOPS and ARPT wrong direction; BW and BPS correct, |CC| ≈ 0.90.",
		XLabel: "record size",
		Points: pts,
		CC:     ccTable("fig5", pts),
	}, nil
}

func (s *Suite) fig6() (Figure, error) {
	pts, err := s.set2(ssd)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig6",
		Title:  "Normalized CC, various I/O sizes, SSD",
		Notes:  "Paper: IOPS and ARPT wrong direction; BW and BPS correct, |CC| ≈ 0.90.",
		XLabel: "record size",
		Points: pts,
		CC:     ccTable("fig6", pts),
	}, nil
}

func (s *Suite) fig7() (Figure, error) {
	pts, err := s.set2(hdd)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:         "fig7",
		Title:      "IOPS vs application execution time, various I/O sizes, HDD",
		Notes:      "Paper: IOPS falls from 5156 (4 KB) to 732 (64 KB) while execution time falls 809.6 s → 358.1 s.",
		XLabel:     "record size",
		Points:     pts,
		DetailKind: core.IOPS,
		IsDetail:   true,
	}, nil
}

func (s *Suite) fig8() (Figure, error) {
	pts, err := s.set2(ssd)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:         "fig8",
		Title:      "ARPT vs application execution time, various I/O sizes, SSD",
		Notes:      "Paper: ARPT rises 0.00014 s (4 KB) → 0.02235 s (4 MB) while execution time falls.",
		XLabel:     "record size",
		Points:     pts,
		DetailKind: core.ARPT,
		IsDetail:   true,
	}, nil
}

func (s *Suite) fig9() (Figure, error) {
	pts, err := s.set3a()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig9",
		Title:  "Normalized CC, various I/O concurrency (own file per server)",
		Notes:  "Paper: IOPS/BW/BPS correct, |CC| ≈ 0.96; ARPT wrong direction, |CC| ≈ 0.58.",
		XLabel: "processes",
		Points: pts,
		CC:     ccTable("fig9", pts),
	}, nil
}

func (s *Suite) fig10() (Figure, error) {
	pts, err := s.set3a()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:         "fig10",
		Title:      "ARPT vs application execution time, various I/O concurrency",
		Notes:      "Paper: ARPT varies little (and rises) while execution time falls strongly.",
		XLabel:     "processes",
		Points:     pts,
		DetailKind: core.ARPT,
		IsDetail:   true,
	}, nil
}

func (s *Suite) fig11() (Figure, error) {
	pts, err := s.set3b()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig11",
		Title:  "Normalized CC, IOR on shared striped file, 1–32 processes",
		Notes:  "Paper: IOPS/BW/BPS correct, |CC| ≈ 0.91; ARPT wrong direction, |CC| ≈ 0.39.",
		XLabel: "processes",
		Points: pts,
		CC:     ccTable("fig11", pts),
	}, nil
}

func (s *Suite) fig12() (Figure, error) {
	pts, err := s.set4()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig12",
		Title:  "Normalized CC, additional data movement (data sieving)",
		Notes:  "Paper: BW wrong direction; IOPS/ARPT/BPS correct, |CC| ≈ 0.92.",
		XLabel: "region spacing",
		Points: pts,
		CC:     ccTable("fig12", pts),
	}, nil
}

// sizeLabel formats a record size the way the paper's axes do.
func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func roundTo(v, unit int64) int64 {
	if v < unit {
		return unit
	}
	return v / unit * unit
}
