package experiments

import (
	"os"
	"reflect"
	"strconv"
	"testing"
)

// shardWorkerCounts mirrors the sim/testbed helpers: worker counts
// compared against a 1-worker run, overridable to one count via
// BPS_TEST_SHARDS (CI's shard matrix).
func shardWorkerCounts(t *testing.T) []int {
	t.Helper()
	if s := os.Getenv("BPS_TEST_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("BPS_TEST_SHARDS=%q: want a positive integer", s)
		}
		return []int{n}
	}
	return []int{2, 4, 8}
}

// shardedFig9 reproduces fig9 (the process-count sweep on the parallel
// stack — the most contention-heavy paper figure) at tiny scale on a
// sharded engine with the given worker count.
func shardedFig9(t *testing.T, shards int) Figure {
	t.Helper()
	s := NewSuite(Params{Scale: 1.0 / 1024, Seed: 42, Parallel: 1, Shards: shards})
	f, err := s.Figure("fig9")
	if err != nil {
		t.Fatalf("fig9 (shards=%d): %v", shards, err)
	}
	return f
}

// TestShardsParamWorkerInvariance pins the Params.Shards contract end
// to end through the experiment runner: a whole reproduced figure —
// every point's metrics and CC table — is bit-identical for every
// shard-worker count.
func TestShardsParamWorkerInvariance(t *testing.T) {
	base := shardedFig9(t, 1)
	if len(base.Points) == 0 {
		t.Fatal("fig9 produced no points")
	}
	for _, pt := range base.Points {
		if pt.Metrics.ExecTime <= 0 {
			t.Fatalf("degenerate point %q: ExecTime %v", pt.Label, pt.Metrics.ExecTime)
		}
	}
	for _, w := range shardWorkerCounts(t) {
		got := shardedFig9(t, w)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("fig9 with shards=%d diverged from shards=1", w)
		}
	}
}
