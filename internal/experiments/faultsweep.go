package experiments

import (
	"strconv"

	"bps/internal/faults"
	"bps/internal/sim"
	"bps/internal/workload"
)

// FaultFigureID names the FaultSweep figure: the BPS-under-degradation
// experiment that none of the paper's figures cover. It is routed
// through Suite.Figure like any CC figure (so RunRobustness works on
// it) but kept out of FigureIDs/ExtensionIDs: the paper-reproduction
// outputs stay exactly as they were.
const FaultFigureID = "faults"

// DefaultFaultRates is the FaultSweep x-axis: the per-access device
// fault probability, from healthy to heavily degraded, roughly
// quadrupling per point.
var DefaultFaultRates = []float64{0, 0.001, 0.004, 0.016, 0.064}

// faultsFileBytes is the sweep's unscaled shared-file volume. Smaller
// than the paper sets: each point re-runs the same workload and only
// the fault rate moves, so the shape needs fewer bytes to emerge.
const faultsFileBytes = 8 << 30

// faultRateLabel formats a rate as a sweep label ("r0", "r0.004").
func faultRateLabel(rate float64) string {
	return "r" + strconv.FormatFloat(rate, 'g', -1, 64)
}

// faultSweep runs the FaultSweep: an IOR-style striped shared-file read
// on a 4-server cluster, repeated while the fault plan's intensity
// rises. Every layer degrades together (device errors/stragglers/
// degradation, link drops/delays, server fail/slow windows and death),
// and the client rides through on the recovery policy — so execution
// time climbs with the rate while the application's block demand B is
// constant. BPS = B/T must therefore keep the correct (negative)
// correlation with execution time; file-system bandwidth gets credit
// for every retried and re-moved byte, which is exactly where it
// stops tracking the application.
func (s *Suite) faultSweep() ([]Point, error) {
	return s.sweep("faults", func() ([]Point, error) {
		const (
			record  = 256 << 10
			procs   = 4
			servers = 4
		)
		perProc := s.params.scaled(faultsFileBytes/procs, record)
		fileSize := perProc * procs
		w := workload.SeqRead{
			Label:           "ior-faults",
			Processes:       procs,
			BytesPerProcess: perProc,
			RecordSize:      record,
			UseMPIIO:        true,
			StartOffset:     func(pid int) int64 { return int64(pid) * perProc },
		}
		rates := s.params.FaultRates
		if rates == nil {
			rates = DefaultFaultRates
		}
		var specs []runSpec
		for _, rate := range rates {
			rate := rate
			label := faultRateLabel(rate)
			// The plan seed derives from (base seed, plan stream, label)
			// with the same scheme as the engine seed, so each sweep
			// point's fault pattern is a pure function of stable
			// identifiers — bit-identical across worker counts.
			planSeed := DeriveSeed(s.params.Seed, "faultsweep-plan", label)
			specs = append(specs, runSpec{label: label, build: func(e *sim.Engine) (workload.Env, workload.Runner, error) {
				env, err := newSharedFileEnv(e, clusterSpec{
					Servers: servers,
					Media:   hdd,
					Clients: procs,
					Faults:  faults.Profile(planSeed, rate),
				}, fileSize)
				return env, w, err
			}})
		}
		return s.runSweep("faults", specs)
	})
}

// figFaults assembles the FaultSweep figure.
func (s *Suite) figFaults() (Figure, error) {
	pts, err := s.faultSweep()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     FaultFigureID,
		Title:  "FaultSweep: normalized CC under rising fault injection",
		Notes:  "Faults at device, network, and server layers with client-side retry/failover; expectation: BPS keeps the correct sign while BW is inflated by retry re-movement.",
		XLabel: "injected fault rate",
		Points: pts,
		CC:     ccTable(FaultFigureID, pts),
	}, nil
}
