package experiments

import (
	"reflect"
	"testing"

	"bps/internal/obs"
)

// attribParams is deliberately tiny: blame labels must be stable at any
// scale, and neutrality must hold run-for-run.
func attribParams(parallel int) Params {
	return Params{Scale: 1.0 / 512, Seed: 42, Parallel: parallel}
}

// stripBlame clears the Blame column so attributed and unattributed
// point sets can be compared field-for-field.
func stripBlame(pts []Point) []Point {
	out := append([]Point(nil), pts...)
	for i := range out {
		out[i].Blame = ""
	}
	return out
}

// TestAttributionNeutralOnFigures: running a sweep with the profiler
// attached must reproduce the exact same measurements — the blame
// column is the only difference.
func TestAttributionNeutralOnFigures(t *testing.T) {
	for _, id := range []string{FaultFigureID, ClientCacheFigureID} {
		t.Run(id, func(t *testing.T) {
			plainSuite := NewSuite(attribParams(0))
			plain, err := plainSuite.Figure(id)
			if err != nil {
				t.Fatal(err)
			}
			attribSuite := NewSuite(attribParams(0))
			attribSuite.SetObserve(&obs.Options{Attribution: true})
			attributed, err := attribSuite.Figure(id)
			if err != nil {
				t.Fatal(err)
			}

			for _, pt := range plain.Points {
				if pt.Blame != "" {
					t.Fatalf("unattributed point %q carries blame %q", pt.Label, pt.Blame)
				}
			}
			for _, pt := range attributed.Points {
				if pt.Blame == "" {
					t.Fatalf("attributed point %q has no blame", pt.Label)
				}
			}
			if !reflect.DeepEqual(plain.Points, stripBlame(attributed.Points)) {
				t.Errorf("measurements differ with attribution on:\noff: %+v\n on: %+v",
					plain.Points, attributed.Points)
			}
			if !reflect.DeepEqual(plain.CC, attributed.CC) {
				t.Errorf("CC tables differ with attribution on")
			}
		})
	}
}

// TestBlameParallelMatchesSequential: the blame labels are part of the
// sweep's determinism contract — a parallel sweep must produce the
// same dominant layer per point as a sequential one.
func TestBlameParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) Figure {
		s := NewSuite(attribParams(parallel))
		s.SetObserve(&obs.Options{Attribution: true})
		f, err := s.Figure(FaultFigureID)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return f
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("attributed points differ between parallel=1 and parallel=8:\nseq: %+v\npar: %+v",
			seq.Points, par.Points)
	}
}
