package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"bps/internal/core"
	"bps/internal/stats"
)

// testParams runs the suite at 1/256 of the paper's data volume: every
// qualitative claim below was verified stable across seeds at this scale.
func testParams() Params { return Params{Scale: 1.0 / 256, Seed: 42} }

// sharedSuite memoizes sweeps across the whole test package; individual
// tests read figures only, so sharing is safe (tests here do not run in
// parallel).
var sharedSuite = NewSuite(testParams())

func testSuite(t *testing.T) *Suite {
	t.Helper()
	return sharedSuite
}

func ccOf(t *testing.T, f Figure, k core.MetricKind) float64 {
	t.Helper()
	if f.CC == nil {
		t.Fatalf("%s has no CC table", f.ID)
	}
	cc := f.CC.CC[k]
	if math.IsNaN(cc) {
		t.Fatalf("%s: CC(%v) is NaN", f.ID, k)
	}
	return cc
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != 1.0/64 || p.Seed != 42 {
		t.Fatalf("defaults = %+v", p)
	}
	if got := Default().withDefaults(); !reflect.DeepEqual(got, p) {
		t.Fatalf("Default() = %+v", got)
	}
	if v := (Params{Scale: 1}).scaled(1000, 64); v != 1024 {
		t.Fatalf("scaled rounding = %d, want 1024", v)
	}
	if v := (Params{Scale: 1e-9}).scaled(1000, 64); v != 64 {
		t.Fatalf("scaled floor = %d, want one unit", v)
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := testSuite(t).Figure("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestFig4AllMetricsCorrect pins the paper's §IV.C.1 claim: when only the
// storage device changes, all four metrics correlate in the expected
// direction with strong magnitude.
func TestFig4AllMetricsCorrect(t *testing.T) {
	f, err := testSuite(t).Figure("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 6 {
		t.Fatalf("fig4 has %d points, want 6", len(f.Points))
	}
	for _, k := range core.Kinds {
		if cc := ccOf(t, f, k); cc < 0.5 {
			t.Errorf("fig4: CC(%v) = %+.2f, want strongly correct (paper ≈ 0.93)", k, cc)
		}
	}
	// More PVFS servers must not be slower.
	var prev float64 = math.Inf(1)
	for _, pt := range f.Points[2:] {
		exec := pt.Metrics.ExecTime.Seconds()
		if exec > prev*1.05 {
			t.Errorf("fig4: exec time grew with more servers: %s = %.3fs after %.3fs", pt.Label, exec, prev)
		}
		prev = exec
	}
}

// TestFig5IOPSAndARPTMislead pins §IV.C.2 on HDD: IOPS and ARPT point the
// wrong way, BW and BPS the right way.
func TestFig5IOPSAndARPTMislead(t *testing.T) {
	f, err := testSuite(t).Figure("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if cc := ccOf(t, f, core.IOPS); cc > -0.5 {
		t.Errorf("fig5: CC(IOPS) = %+.2f, want strongly wrong direction", cc)
	}
	if cc := ccOf(t, f, core.ARPT); cc >= 0 {
		t.Errorf("fig5: CC(ARPT) = %+.2f, want wrong direction", cc)
	}
	if cc := ccOf(t, f, core.BW); cc < 0.8 {
		t.Errorf("fig5: CC(BW) = %+.2f, want strongly correct (paper ≈ 0.90)", cc)
	}
	if cc := ccOf(t, f, core.BPS); cc < 0.8 {
		t.Errorf("fig5: CC(BPS) = %+.2f, want strongly correct (paper ≈ 0.90)", cc)
	}
}

// TestFig6SSDSameStory pins the same claims for the SSD environment.
func TestFig6SSDSameStory(t *testing.T) {
	f, err := testSuite(t).Figure("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if cc := ccOf(t, f, core.IOPS); cc >= 0 {
		t.Errorf("fig6: CC(IOPS) = %+.2f, want wrong direction", cc)
	}
	if cc := ccOf(t, f, core.ARPT); cc >= 0 {
		t.Errorf("fig6: CC(ARPT) = %+.2f, want wrong direction", cc)
	}
	if cc := ccOf(t, f, core.BW); cc < 0.6 {
		t.Errorf("fig6: CC(BW) = %+.2f, want correct", cc)
	}
	if cc := ccOf(t, f, core.BPS); cc < 0.6 {
		t.Errorf("fig6: CC(BPS) = %+.2f, want correct", cc)
	}
}

// TestFig7Detail pins the Fig. 7 inversion: from 4 KB to 64 KB records,
// IOPS falls by more than 3× while execution time also falls — the
// "higher IOPS, slower application" mismatch.
func TestFig7Detail(t *testing.T) {
	f, err := testSuite(t).Figure("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsDetail || f.DetailKind != core.IOPS {
		t.Fatalf("fig7 should be an IOPS detail figure: %+v", f)
	}
	at := indexPoints(f)
	small, big := at["4KB"], at["64KB"]
	if small.Metrics.IOPS() < 3*big.Metrics.IOPS() {
		t.Errorf("fig7: IOPS 4KB=%.0f vs 64KB=%.0f, want ≳3× drop (paper 5156→732)",
			small.Metrics.IOPS(), big.Metrics.IOPS())
	}
	if small.Metrics.ExecTime <= big.Metrics.ExecTime {
		t.Errorf("fig7: exec time must fall with record size: 4KB=%v 64KB=%v",
			small.Metrics.ExecTime, big.Metrics.ExecTime)
	}
}

// TestFig8Detail pins the Fig. 8 inversion on SSD: ARPT rises by orders
// of magnitude from 4 KB to 4 MB while execution time falls.
func TestFig8Detail(t *testing.T) {
	f, err := testSuite(t).Figure("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsDetail || f.DetailKind != core.ARPT {
		t.Fatalf("fig8 should be an ARPT detail figure: %+v", f)
	}
	at := indexPoints(f)
	small, big := at["4KB"], at["4MB"]
	if big.Metrics.ARPT() < 10*small.Metrics.ARPT() {
		t.Errorf("fig8: ARPT 4KB=%.5f vs 4MB=%.5f, want ≫ rise (paper 0.00014→0.02235)",
			small.Metrics.ARPT(), big.Metrics.ARPT())
	}
	if big.Metrics.ExecTime >= small.Metrics.ExecTime {
		t.Errorf("fig8: exec time must fall: 4KB=%v 4MB=%v", small.Metrics.ExecTime, big.Metrics.ExecTime)
	}
}

// TestFig9ConcurrencyPure pins §IV.C.3 (pure concurrency): IOPS, BW, BPS
// correct and strong; ARPT wrong direction with modest magnitude.
func TestFig9ConcurrencyPure(t *testing.T) {
	f, err := testSuite(t).Figure("fig9")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []core.MetricKind{core.IOPS, core.BW, core.BPS} {
		if cc := ccOf(t, f, k); cc < 0.7 {
			t.Errorf("fig9: CC(%v) = %+.2f, want strongly correct (paper ≈ 0.96)", k, cc)
		}
	}
	if cc := ccOf(t, f, core.ARPT); cc >= 0 {
		t.Errorf("fig9: CC(ARPT) = %+.2f, want wrong direction (paper ≈ -0.58)", cc)
	}
	// Execution time must fall monotonically with concurrency here.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Metrics.ExecTime >= f.Points[i-1].Metrics.ExecTime {
			t.Errorf("fig9: exec time not decreasing at %s", f.Points[i].Label)
		}
	}
}

// TestFig10Detail pins the Fig. 10 shape: ARPT varies far less than
// execution time (relatively) and does not fall with concurrency.
func TestFig10Detail(t *testing.T) {
	f, err := testSuite(t).Figure("fig10")
	if err != nil {
		t.Fatal(err)
	}
	first, last := f.Points[0].Metrics, f.Points[len(f.Points)-1].Metrics
	execRatio := first.ExecTime.Seconds() / last.ExecTime.Seconds()
	arptRatio := last.ARPT() / first.ARPT()
	if arptRatio < 1 {
		t.Errorf("fig10: ARPT fell with concurrency (%.4f→%.4f)", first.ARPT(), last.ARPT())
	}
	if execRatio < 2 {
		t.Errorf("fig10: exec time barely moved (ratio %.2f), sweep is degenerate", execRatio)
	}
	if arptRatio > execRatio/2 {
		t.Errorf("fig10: ARPT variation (%.2fx) should be much smaller than exec variation (%.2fx)",
			arptRatio, execRatio)
	}
}

// TestFig11IORSharedFile pins the general-HPC concurrency claims.
func TestFig11IORSharedFile(t *testing.T) {
	f, err := testSuite(t).Figure("fig11")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []core.MetricKind{core.IOPS, core.BW, core.BPS} {
		if cc := ccOf(t, f, k); cc < 0.7 {
			t.Errorf("fig11: CC(%v) = %+.2f, want strongly correct (paper ≈ 0.91)", k, cc)
		}
	}
	if cc := ccOf(t, f, core.ARPT); cc >= 0 {
		t.Errorf("fig11: CC(ARPT) = %+.2f, want wrong direction (paper ≈ -0.39)", cc)
	}
	// ARPT itself must grow under contention (32p ≫ 1p).
	at := indexPoints(f)
	if at["32p"].Metrics.ARPT() < 2*at["1p"].Metrics.ARPT() {
		t.Errorf("fig11: ARPT at 32p (%.4f) should far exceed 1p (%.4f)",
			at["32p"].Metrics.ARPT(), at["1p"].Metrics.ARPT())
	}
}

// TestFig12DataSieving pins §IV.C.4: BW is the only wrong-direction
// metric once data sieving moves hole data the application never asked
// for.
func TestFig12DataSieving(t *testing.T) {
	f, err := testSuite(t).Figure("fig12")
	if err != nil {
		t.Fatal(err)
	}
	if cc := ccOf(t, f, core.BW); cc >= 0 {
		t.Errorf("fig12: CC(BW) = %+.2f, want wrong direction", cc)
	}
	for _, k := range []core.MetricKind{core.IOPS, core.ARPT, core.BPS} {
		if cc := ccOf(t, f, k); cc < 0.7 {
			t.Errorf("fig12: CC(%v) = %+.2f, want correct (paper ≈ 0.92)", k, cc)
		}
	}
	// Moved bytes grow with spacing while required bytes stay fixed.
	first, last := f.Points[0].Metrics, f.Points[len(f.Points)-1].Metrics
	if first.Blocks != last.Blocks {
		t.Errorf("fig12: required blocks changed across sweep: %d vs %d", first.Blocks, last.Blocks)
	}
	if last.MovedBytes < 4*first.MovedBytes {
		t.Errorf("fig12: moved bytes should grow strongly with spacing: %d → %d",
			first.MovedBytes, last.MovedBytes)
	}
}

// TestBPSCorrectEverywhere pins the paper's headline (§IV.C.5): BPS is
// the only metric with the expected correlation direction in every
// experiment.
func TestBPSCorrectEverywhere(t *testing.T) {
	s := testSuite(t)
	wrongSomewhere := map[core.MetricKind]bool{}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig9", "fig11", "fig12"} {
		f, err := s.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range core.Kinds {
			if ccOf(t, f, k) <= 0 {
				wrongSomewhere[k] = true
			}
		}
	}
	if wrongSomewhere[core.BPS] {
		t.Error("BPS had a wrong correlation direction in some experiment")
	}
	for _, k := range []core.MetricKind{core.IOPS, core.BW, core.ARPT} {
		if !wrongSomewhere[k] {
			t.Errorf("%v was never misleading; the comparison has lost its point", k)
		}
	}
}

// TestNoRunErrors verifies no workload access failed in any experiment.
func TestNoRunErrors(t *testing.T) {
	s := testSuite(t)
	figs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(FigureIDs) {
		t.Fatalf("All returned %d figures", len(figs))
	}
	for _, f := range figs {
		for _, pt := range f.Points {
			if pt.Errors != 0 {
				t.Errorf("%s %s: %d failed accesses", f.ID, pt.Label, pt.Errors)
			}
			if pt.Metrics.Ops == 0 || pt.Metrics.IOTime <= 0 {
				t.Errorf("%s %s: degenerate run %+v", f.ID, pt.Label, pt.Metrics)
			}
			// I/O time can never exceed execution time.
			if pt.Metrics.IOTime > pt.Metrics.ExecTime {
				t.Errorf("%s %s: IOTime %v > ExecTime %v", f.ID, pt.Label,
					pt.Metrics.IOTime, pt.Metrics.ExecTime)
			}
		}
	}
}

// TestSuiteMemoization verifies detail figures reuse their CC figure's
// sweep rather than re-running it.
func TestSuiteMemoization(t *testing.T) {
	s := testSuite(t)
	f5, err := s.Figure("fig5")
	if err != nil {
		t.Fatal(err)
	}
	f7, err := s.Figure("fig7")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f5.Points {
		if f5.Points[i].Metrics != f7.Points[i].Metrics {
			t.Fatal("fig7 did not reuse fig5's sweep")
		}
	}
}

// TestDeterministicSuite verifies the whole evaluation is reproducible.
func TestDeterministicSuite(t *testing.T) {
	f1, err := NewSuite(testParams()).Figure("fig9")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewSuite(testParams()).Figure("fig9")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Points {
		if f1.Points[i].Metrics != f2.Points[i].Metrics {
			t.Fatalf("fig9 point %d differs across identical suites", i)
		}
	}
}

func indexPoints(f Figure) map[string]Point {
	m := make(map[string]Point, len(f.Points))
	for _, pt := range f.Points {
		m[pt.Label] = pt
	}
	return m
}

// TestExt1Prefetching pins the extension experiment: prefetching is the
// other source of extra data movement the paper names (§I); BW must
// mislead while IOPS/ARPT/BPS stay correct.
func TestExt1Prefetching(t *testing.T) {
	f, err := testSuite(t).Figure("ext1")
	if err != nil {
		t.Fatal(err)
	}
	if cc := ccOf(t, f, core.BW); cc >= 0 {
		t.Errorf("ext1: CC(BW) = %+.2f, want wrong direction", cc)
	}
	for _, k := range []core.MetricKind{core.IOPS, core.ARPT, core.BPS} {
		if cc := ccOf(t, f, k); cc < 0.7 {
			t.Errorf("ext1: CC(%v) = %+.2f, want correct", k, cc)
		}
	}
	// Larger windows move more and run slower; required stays fixed.
	first, last := f.Points[0].Metrics, f.Points[len(f.Points)-1].Metrics
	if first.Blocks != last.Blocks {
		t.Errorf("ext1: required blocks changed: %d vs %d", first.Blocks, last.Blocks)
	}
	if last.MovedBytes <= first.MovedBytes || last.ExecTime <= first.ExecTime {
		t.Errorf("ext1: expected more movement and slower runs with bigger windows")
	}
}

// TestExt2WriteSweep pins the write-path extension: under FTL write
// amplification and GC stalls, the paper's size-sweep inversions carry
// over to writes.
func TestExt2WriteSweep(t *testing.T) {
	f, err := testSuite(t).Figure("ext2")
	if err != nil {
		t.Fatal(err)
	}
	if cc := ccOf(t, f, core.IOPS); cc >= 0 {
		t.Errorf("ext2: CC(IOPS) = %+.2f, want wrong direction", cc)
	}
	if cc := ccOf(t, f, core.ARPT); cc >= 0 {
		t.Errorf("ext2: CC(ARPT) = %+.2f, want wrong direction", cc)
	}
	if cc := ccOf(t, f, core.BW); cc < 0.6 {
		t.Errorf("ext2: CC(BW) = %+.2f, want correct", cc)
	}
	if cc := ccOf(t, f, core.BPS); cc < 0.6 {
		t.Errorf("ext2: CC(BPS) = %+.2f, want correct", cc)
	}
}

// TestRobustnessFig5 verifies the headline Fig. 5 conclusions hold over
// several independent seeds: BW/BPS stay positive, IOPS/ARPT stay
// negative, with no sign flips.
func TestRobustnessFig5(t *testing.T) {
	r, err := RunRobustness(Params{Scale: 1.0 / 512, Seed: 42}, "fig5", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds {
		if !r.SignStable[k] {
			t.Errorf("fig5 CC(%v) flips sign across seeds: [%+.2f, %+.2f]", k, r.Min[k], r.Max[k])
		}
	}
	if r.Mean[core.BPS] < 0.8 || r.Mean[core.IOPS] > -0.8 {
		t.Errorf("fig5 means: BPS %+.2f, IOPS %+.2f", r.Mean[core.BPS], r.Mean[core.IOPS])
	}
	if !strings.Contains(r.String(), "STABLE") {
		t.Errorf("String: %s", r.String())
	}
}

// TestRobustnessFig12BWStaysMisleading pins the most delicate result:
// the BW inversion in the data-sieving experiment holds across seeds.
func TestRobustnessFig12BWStaysMisleading(t *testing.T) {
	r, err := RunRobustness(Params{Scale: 1.0 / 512, Seed: 42}, "fig12", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Max[core.BW] >= 0 {
		t.Errorf("fig12 CC(BW) reached %+.2f; the inversion is seed-sensitive", r.Max[core.BW])
	}
	if r.Min[core.BPS] <= 0 {
		t.Errorf("fig12 CC(BPS) reached %+.2f", r.Min[core.BPS])
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := RunRobustness(testParams(), "fig5", 1); err == nil {
		t.Error("nseeds=1 accepted")
	}
	if _, err := RunRobustness(testParams(), "fig7", 2); err == nil {
		t.Error("detail figure accepted")
	}
	if _, err := RunRobustness(testParams(), "nope", 2); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestCompareAgainstPaper pins the whole reproduction: every CC figure's
// measured directions agree with the paper's reported outcome.
func TestCompareAgainstPaper(t *testing.T) {
	s := testSuite(t)
	for id := range PaperResults {
		f, err := s.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		a, ok := Compare(f)
		if !ok {
			t.Fatalf("%s: no paper comparison available", id)
		}
		if !a.AllSignsMatch() {
			t.Errorf("%s: direction mismatch vs paper: %+v", id, a.SignMatches)
		}
	}
	// Detail figures and extensions have no paper CC entry.
	f7, err := s.Figure("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Compare(f7); ok {
		t.Error("detail figure compared against paper CC")
	}
}

// TestExt3AccessMethods pins the optimization-comparison extension:
// collective I/O is the fastest way to service the interleaved pattern
// and BPS ranks the three methods by application speed, while BW rates
// per-process sieving highest even though it is the slowest — redundant
// re-reads masquerading as throughput.
func TestExt3AccessMethods(t *testing.T) {
	f, err := testSuite(t).Figure("ext3")
	if err != nil {
		t.Fatal(err)
	}
	at := indexPoints(f)
	direct, sieving, collective := at["direct"], at["sieving"], at["collective"]
	if collective.Metrics.ExecTime >= direct.Metrics.ExecTime ||
		collective.Metrics.ExecTime >= sieving.Metrics.ExecTime {
		t.Errorf("collective (%v) should beat direct (%v) and sieving (%v)",
			collective.Metrics.ExecTime, direct.Metrics.ExecTime, sieving.Metrics.ExecTime)
	}
	// BW crowns the slowest method.
	if sieving.Metrics.ExecTime <= direct.Metrics.ExecTime {
		t.Skip("geometry no longer makes sieving slow; revisit the scenario")
	}
	if sieving.Metrics.Bandwidth() <= direct.Metrics.Bandwidth() {
		t.Errorf("BW should rate sieving above direct despite it being slower: %v vs %v",
			sieving.Metrics.Bandwidth(), direct.Metrics.Bandwidth())
	}
	// BPS ranks all three correctly (fastest method = highest BPS).
	if !(collective.Metrics.BPS() > direct.Metrics.BPS() && direct.Metrics.BPS() > sieving.Metrics.BPS()) {
		t.Errorf("BPS ranking wrong: coll=%v direct=%v sieve=%v",
			collective.Metrics.BPS(), direct.Metrics.BPS(), sieving.Metrics.BPS())
	}
	if cc := ccOf(t, f, core.BPS); cc < 0.7 {
		t.Errorf("ext3: CC(BPS) = %+.2f", cc)
	}
	if cc := ccOf(t, f, core.BW); cc >= 0 {
		t.Errorf("ext3: CC(BW) = %+.2f, want wrong direction", cc)
	}
}

// TestFig4RankCorrelationPerfect quantifies why Fig. 4's Pearson CC sits
// below the paper's: the rate metrics relate to execution time
// hyperbolically. Their *ordering* is perfect — Spearman rank
// correlation is exactly ±1 for every metric.
func TestFig4RankCorrelationPerfect(t *testing.T) {
	f, err := testSuite(t).Figure("fig4")
	if err != nil {
		t.Fatal(err)
	}
	exec := make([]float64, len(f.Points))
	for i, pt := range f.Points {
		exec[i] = pt.Metrics.ExecTime.Seconds()
	}
	for _, k := range core.Kinds {
		vals := make([]float64, len(f.Points))
		for i, pt := range f.Points {
			vals[i] = pt.Metrics.Value(k)
		}
		rank := stats.NormalizedCC(stats.Spearman(vals, exec), k.ExpectedDirection())
		if math.Abs(rank-1) > 1e-9 {
			t.Errorf("fig4: rank CC(%v) = %v, want exactly +1", k, rank)
		}
	}
}
