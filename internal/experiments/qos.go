package experiments

import (
	"fmt"

	"bps/internal/obs"
	"bps/internal/qos"
	"bps/internal/sim"
)

// QoSFigureID names the multi-tenant QoS figure: tenant A's BPS with
// and without an interfering tenant B, with and without the admission
// controller throttling B to defend A's floor. Like the other custom
// figures it is routed through Suite.Figure but kept out of FigureIDs,
// so the paper-reproduction outputs stay exactly as they were.
const QoSFigureID = "qos"

// Unscaled per-process volumes: tenant A streams large records, tenant
// B needles the same disks with small ones.
const (
	qosABytes = 1536 << 20
	qosBBytes = 128 << 20
)

// qosTenantA is the protected streaming tenant.
func qosTenantA(bytes int64, floor float64) qos.TenantSpec {
	return qos.TenantSpec{
		Tenant:          qos.Tenant{Name: "tenantA", Priority: 1, BPSFloor: floor},
		Processes:       2,
		BytesPerProcess: bytes,
		RecordSize:      1 << 20,
	}
}

// qosTenantB is the low-priority interfering tenant.
func qosTenantB(bytes int64) qos.TenantSpec {
	return qos.TenantSpec{
		Tenant:          qos.Tenant{Name: "tenantB", Priority: 0},
		Processes:       4,
		BytesPerProcess: bytes,
		RecordSize:      4 << 10,
	}
}

// qosRunSpec is the figure's shared stack: four HDD servers with server
// caching off, so tenant interference reaches the disks instead of
// being absorbed by server readahead.
func qosRunSpec(q qos.Config, tenants ...qos.TenantSpec) qos.RunSpec {
	return qos.RunSpec{Servers: 4, Media: hdd, ServerCache: -1, QoS: q, Tenants: tenants}
}

// runQoSPoint executes one multi-tenant run on a fresh engine — the
// qos-flavored sibling of runOne, returning the full qos.Result so the
// sweep can read per-tenant outcomes.
func runQoSPoint(seed int64, label string, shards int, observe *obs.Options, spec qos.RunSpec) (qos.Result, *Observation, error) {
	e := sim.NewEngine(seed)
	if shards > 0 {
		e.EnableSharding(shards)
	}
	var ob *obs.Observer
	if observe != nil {
		ob = obs.Attach(e, *observe)
	}
	res, err := qos.Run(e, spec)
	if err != nil {
		return qos.Result{}, nil, fmt.Errorf("run %s: %w", label, err)
	}
	var o *Observation
	if ob != nil {
		ob.FinishSampling()
		for _, r := range res.Records {
			ob.AddAppRecord(r.PID, r.Blocks, r.Start, r.End)
		}
		o = &Observation{Label: label, Obs: ob}
	}
	return res, o, nil
}

// qosPoint converts one run into the figure's point: the metrics are
// tenant A's (the figure plots the protected tenant's BPS), the error
// count is the whole run's, and Aux carries tenant B's delivery plus
// the controller's counters.
func qosPoint(label string, res qos.Result, soloBPS float64) Point {
	a := res.Tenants[0]
	pt := Point{
		Label:   label,
		Metrics: a.Metrics,
		Errors:  res.Errors,
		Aux: map[string]float64{
			"activations": float64(res.Report.Activations),
		},
	}
	if soloBPS > 0 {
		pt.Aux["a_vs_solo"] = a.Metrics.BPS() / soloBPS
	}
	for _, tr := range res.Report.Tenants {
		if tr.Name != "tenantB" {
			continue
		}
		pt.Aux["b_delayed"] = float64(tr.Delayed)
		pt.Aux["b_shed"] = float64(tr.Shed)
		pt.Aux["b_risk"] = tr.Score.Risk
	}
	for _, t := range res.Tenants {
		if t.Name == "tenantB" {
			pt.Aux["b_bps"] = t.Metrics.BPS()
		}
	}
	return pt
}

// qosSweep reproduces the QoS scenario comparison in two phases. Phase
// one runs tenant A alone — its solo baseline sets the protected floor
// at 90% of A's delivered block rate. Phase two runs A+B unthrottled
// and A+B throttled, fanned across the suite's workers; both phases
// derive every engine seed from (Seed, figure, label), so the result
// is bit-identical for any Parallel value.
func (s *Suite) qosSweep() ([]Point, error) {
	return s.sweep(QoSFigureID, func() ([]Point, error) {
		aBytes := s.params.scaled(qosABytes, 1<<20)
		bBytes := s.params.scaled(qosBBytes, 4<<10)

		solo, soloObs, err := runQoSPoint(
			DeriveSeed(s.params.Seed, QoSFigureID, "A-solo"), "A-solo",
			s.params.Shards, s.observe,
			qosRunSpec(qos.Config{}, qosTenantA(aBytes, 0)))
		if err != nil {
			return nil, err
		}
		soloA := solo.Tenants[0].Metrics
		soloBPS := soloA.BPS()
		floor := 0.0
		if soloA.ExecTime > 0 {
			// The control law's variable is the windowed delivered block
			// rate (blocks per wall second), so the floor is set on the
			// same scale: 90% of A's solo delivery rate.
			floor = 0.9 * float64(soloA.Blocks) / soloA.ExecTime.Seconds()
		}

		specs := []struct {
			label string
			spec  qos.RunSpec
		}{
			{"A+B", qosRunSpec(qos.Config{}, qosTenantA(aBytes, 0), qosTenantB(bBytes))},
			{"A+B-throttled", qosRunSpec(qos.Config{Enabled: true}, qosTenantA(aBytes, floor), qosTenantB(bBytes))},
		}
		results := make([]qos.Result, len(specs))
		observations := make([]*Observation, len(specs))
		err = ForEach(s.params.Parallel, len(specs), func(i int) error {
			sp := specs[i]
			res, ob, err := runQoSPoint(
				DeriveSeed(s.params.Seed, QoSFigureID, sp.label), sp.label,
				s.params.Shards, s.observe, sp.spec)
			if err != nil {
				return err
			}
			results[i] = res
			observations[i] = ob
			return nil
		})
		if err != nil {
			return nil, err
		}
		if s.observe != nil {
			s.lastObs = observations[len(observations)-1]
			if s.lastObs == nil {
				s.lastObs = soloObs
			}
		}
		pts := []Point{qosPoint("A-solo", solo, 0)}
		pts[0].Aux["a_vs_solo"] = 1
		pts[0].Aux["a_floor"] = floor
		for i, sp := range specs {
			pts = append(pts, qosPoint(sp.label, results[i], soloBPS))
		}
		return pts, nil
	})
}

// figQoS assembles the multi-tenant QoS figure.
func (s *Suite) figQoS() (Figure, error) {
	pts, err := s.qosSweep()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     QoSFigureID,
		Title:  "QoS: tenant A's BPS against interference, with and without throttling",
		Notes:  "Two tenants share four HDD servers (server caching off). Expectation: tenant B's small-record traffic degrades A's BPS well past 20%; throttling B against A's floor (90% of solo delivery) restores A to within 10% of its solo baseline.",
		XLabel: "scenario",
		Points: pts,
	}, nil
}
