package experiments

import (
	"math"

	"bps/internal/core"
)

// PaperCC records the normalized CC values the paper reports (or
// implies) for one figure. Magnitudes the paper states only
// approximately are carried as approximate values; magnitudes it does
// not state at all (it reports only "wrong correlation direction") are
// NaN with the sign carried separately.
type PaperCC struct {
	// Sign is the paper's reported correlation direction per metric:
	// +1 matches Table 1's expectation, −1 contradicts it.
	Sign map[core.MetricKind]int

	// AbsCC is the paper's reported |CC| where stated; NaN when the
	// paper gives no magnitude.
	AbsCC map[core.MetricKind]float64
}

// PaperResults holds the paper's §IV.C outcomes for every CC figure.
var PaperResults = map[string]PaperCC{
	"fig4": {
		Sign:  map[core.MetricKind]int{core.IOPS: +1, core.BW: +1, core.ARPT: +1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: 0.93, core.BW: 0.93, core.ARPT: 0.93, core.BPS: 0.93},
	},
	"fig5": {
		Sign:  map[core.MetricKind]int{core.IOPS: -1, core.BW: +1, core.ARPT: -1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: math.NaN(), core.BW: 0.90, core.ARPT: math.NaN(), core.BPS: 0.90},
	},
	"fig6": {
		Sign:  map[core.MetricKind]int{core.IOPS: -1, core.BW: +1, core.ARPT: -1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: math.NaN(), core.BW: 0.90, core.ARPT: math.NaN(), core.BPS: 0.90},
	},
	"fig9": {
		Sign:  map[core.MetricKind]int{core.IOPS: +1, core.BW: +1, core.ARPT: -1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: 0.96, core.BW: 0.96, core.ARPT: 0.58, core.BPS: 0.96},
	},
	"fig11": {
		Sign:  map[core.MetricKind]int{core.IOPS: +1, core.BW: +1, core.ARPT: -1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: 0.91, core.BW: 0.91, core.ARPT: 0.39, core.BPS: 0.91},
	},
	"fig12": {
		Sign:  map[core.MetricKind]int{core.IOPS: +1, core.BW: -1, core.ARPT: +1, core.BPS: +1},
		AbsCC: map[core.MetricKind]float64{core.IOPS: 0.92, core.BW: math.NaN(), core.ARPT: 0.92, core.BPS: 0.92},
	},
}

// Agreement compares a reproduced figure against the paper's outcome.
type Agreement struct {
	FigureID string

	// SignMatches reports, per metric, whether the measured CC's sign
	// matches the paper's — the qualitative reproduction criterion.
	SignMatches map[core.MetricKind]bool

	// Measured holds the measured normalized CC.
	Measured map[core.MetricKind]float64

	// Paper holds the paper's outcome.
	Paper PaperCC
}

// AllSignsMatch reports whether every metric's direction reproduced.
func (a Agreement) AllSignsMatch() bool {
	for _, ok := range a.SignMatches {
		if !ok {
			return false
		}
	}
	return len(a.SignMatches) > 0
}

// Compare evaluates a reproduced CC figure against PaperResults. The
// second return is false when the paper reports nothing for the figure
// (detail figures, extensions).
func Compare(f Figure) (Agreement, bool) {
	paper, ok := PaperResults[f.ID]
	if !ok || f.CC == nil {
		return Agreement{}, false
	}
	a := Agreement{
		FigureID:    f.ID,
		SignMatches: make(map[core.MetricKind]bool),
		Measured:    make(map[core.MetricKind]float64),
		Paper:       paper,
	}
	for _, k := range core.Kinds {
		cc := f.CC.CC[k]
		a.Measured[k] = cc
		sign := 0
		switch {
		case cc > 0:
			sign = +1
		case cc < 0:
			sign = -1
		}
		a.SignMatches[k] = sign == paper.Sign[k]
	}
	return a, true
}
