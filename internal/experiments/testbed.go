package experiments

import (
	"fmt"

	"bps/internal/core"
	"bps/internal/obs"
	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/workload"
)

// Aliases keeping the experiment code close to the paper's vocabulary;
// the actual models live in internal/testbed.
const (
	hdd = testbed.HDD
	ssd = testbed.SSD
)

type storageKind = testbed.Media

type clusterSpec = testbed.ClusterSpec

func newLocalEnv(e *sim.Engine, k storageKind, nfiles int, fileSize int64) (*workload.LocalEnv, error) {
	return testbed.NewLocalEnv(e, k, nfiles, fileSize)
}

func newSharedFileEnv(e *sim.Engine, spec clusterSpec, fileSize int64) (*workload.ClusterEnv, error) {
	return testbed.NewSharedFileEnv(e, spec, fileSize)
}

func newMetaFilesEnv(e *sim.Engine, spec clusterSpec, filesPerProc int, fileSize int64) (*workload.ClusterEnv, error) {
	return testbed.NewMetaFilesEnv(e, spec, filesPerProc, fileSize)
}

func newPinnedFilesEnv(e *sim.Engine, spec clusterSpec, filePerProc int64) (*workload.ClusterEnv, error) {
	if spec.Clients > spec.Servers {
		return nil, fmt.Errorf("experiments: pure-concurrency env needs a server per client (%d > %d)",
			spec.Clients, spec.Servers)
	}
	return testbed.NewPinnedFilesEnv(e, spec, filePerProc)
}

// runOne executes one workload run on a fresh engine seeded with seed
// and converts the result into a sweep point. It touches no suite state,
// so the run scheduler can call it from any worker goroutine; when
// observe is non-nil the run gets its own observer, returned alongside
// the point. shards > 0 runs the simulation on a sharded engine with
// that many workers (results are bit-identical for every positive
// value); 0 keeps the classic single-calendar engine.
func runOne(seed int64, label string, shards int, observe *obs.Options, build buildFunc) (Point, *Observation, error) {
	e := sim.NewEngine(seed)
	if shards > 0 {
		// Before obs.Attach: the observer checks e.Sharded() to decide
		// which of its features can run against concurrent domains.
		e.EnableSharding(shards)
	}
	var ob *obs.Observer
	if observe != nil {
		ob = obs.Attach(e, *observe)
	}
	env, w, err := build(e)
	if err != nil {
		return Point{}, nil, fmt.Errorf("run %s: %w", label, err)
	}
	res, err := w.Run(e, env)
	if err != nil {
		return Point{}, nil, fmt.Errorf("run %s: %w", label, err)
	}
	e.Shutdown() // unwind server daemons so sweeps don't accumulate goroutines
	pt := Point{
		Label:   label,
		Metrics: core.Compute(res.Trace, res.Moved, res.ExecTime),
		Errors:  res.Errors,
	}
	var o *Observation
	if ob != nil {
		ob.FinishSampling()
		for _, r := range res.Trace.Records() {
			ob.AddAppRecord(r.PID, r.Blocks, r.Start, r.End)
		}
		pt.Blame = ob.Attribution().Dominant()
		o = &Observation{Label: label, Obs: ob}
	}
	return pt, o, nil
}
