package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bps/internal/sim"
	"bps/internal/stats"
	"bps/internal/workload"
)

// This file is the suite's run scheduler: every sweep is described as a
// list of labelled run specs and executed by a worker pool that fans the
// runs out across goroutines, one private sim.Engine per run.
//
// Determinism contract: parallel output is bit-identical to sequential.
// Three properties make that hold:
//
//  1. Each run's engine seed is DeriveSeed(Params.Seed, sweep ID, point
//     label) — a pure function of stable identifiers, never of loop
//     index, submission order, or completion order.
//  2. Each run owns every piece of mutable state it touches: its engine,
//     its simulated stack, and (when the suite observes) its own
//     obs.Observer attached to that engine alone.
//  3. Results land in a slice indexed by sweep position and are read
//     only after every worker has finished, so assembly order is the
//     sweep order regardless of which run completed first.

// buildFunc constructs one run's environment and workload on a fresh
// engine. It must be safe to call from any worker goroutine: everything
// it closes over is read-only after the sweep is described.
type buildFunc func(e *sim.Engine) (workload.Env, workload.Runner, error)

// runSpec is one sweep point awaiting execution.
type runSpec struct {
	label string
	build buildFunc
}

// DeriveSeed returns the engine seed for one sweep point as a pure
// function of (base seed, sweep ID, point label). Reordering a sweep,
// inserting new points, or running points concurrently can therefore
// never change an existing run's result — the fragility of deriving
// seeds from loop-iteration order is structurally gone. The derivation
// itself is stats.DeriveSeed, shared with the bootstrap PRNG seeding,
// so one pinned-golden test covers every consumer.
func DeriveSeed(base int64, sweepID, label string) int64 {
	return stats.DeriveSeed(base, sweepID, label)
}

// ForEach runs job(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 means GOMAXPROCS) and returns the
// lowest-index error once every job has finished. Indices are handed
// out dynamically, so which goroutine runs which job is scheduling
// noise — jobs must depend only on their index, never on execution
// order, which is exactly the runner's determinism contract.
func ForEach(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = job(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runSweep executes one named sweep's points across the suite's worker
// budget (Params.Parallel) and reassembles the results in sweep order.
// Labels must be unique within a sweep: they key the seed derivation.
//
// When the suite observes, every run carries its own observer and the
// suite's last observation becomes the final point's — the same
// semantics a sequential pass over the sweep had.
func (s *Suite) runSweep(sweepID string, specs []runSpec) ([]Point, error) {
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if seen[sp.label] {
			return nil, fmt.Errorf("experiments: sweep %s: duplicate point label %q would collide in seed derivation", sweepID, sp.label)
		}
		seen[sp.label] = true
	}
	points := make([]Point, len(specs))
	observations := make([]*Observation, len(specs))
	observe := s.observe
	err := ForEach(s.params.Parallel, len(specs), func(i int) error {
		sp := specs[i]
		pt, ob, err := runOne(DeriveSeed(s.params.Seed, sweepID, sp.label), sp.label, s.params.Shards, observe, sp.build)
		if err != nil {
			return err
		}
		points[i] = pt
		observations[i] = ob
		return nil
	})
	if err != nil {
		return nil, err
	}
	if observe != nil && len(observations) > 0 {
		s.lastObs = observations[len(observations)-1]
	}
	return points, nil
}
