package experiments

import (
	"reflect"
	"testing"
)

// tiny params keep the livemem sweep fast in tests while preserving the
// regime change across record sizes.
func liveMemTestParams() Params {
	return Params{Scale: 1.0 / 256, Seed: 42}
}

func TestLiveMemFigureShape(t *testing.T) {
	f, err := NewSuite(liveMemTestParams()).Figure(LiveMemFigureID)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != LiveMemFigureID || f.CC == nil || f.IsDetail {
		t.Fatalf("figure shape: %+v", f)
	}
	if len(f.Points) != len(set2RecordSizes) {
		t.Fatalf("%d points, want %d", len(f.Points), len(set2RecordSizes))
	}
	for _, pt := range f.Points {
		if pt.Errors != 0 {
			t.Fatalf("%s: %d errors", pt.Label, pt.Errors)
		}
		if pt.Metrics.BPS() <= 0 || pt.Metrics.Ops <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", pt.Label, pt.Metrics)
		}
		if pt.Aux["windows"] <= 0 {
			t.Fatalf("%s: no windows", pt.Label)
		}
	}
	// The figure's reason to exist: IOPS rewards small records, BW large
	// ones. Check the endpoints rank that way.
	first, last := f.Points[0].Metrics, f.Points[len(f.Points)-1].Metrics
	if first.IOPS() <= last.IOPS() {
		t.Fatalf("IOPS did not fall with record size: %v → %v", first.IOPS(), last.IOPS())
	}
	if first.Bandwidth() >= last.Bandwidth() {
		t.Fatalf("BW did not rise with record size: %v → %v", first.Bandwidth(), last.Bandwidth())
	}
}

// TestLiveMemDeterministic pins the figure's byte-level stability: two
// independent suites at the same params produce identical points.
func TestLiveMemDeterministic(t *testing.T) {
	run := func() Figure {
		f, err := NewSuite(liveMemTestParams()).Figure(LiveMemFigureID)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatalf("livemem points diverge between runs:\n%+v\nvs\n%+v", a.Points, b.Points)
	}
	if !reflect.DeepEqual(a.CC, b.CC) {
		t.Fatalf("livemem CC diverges between runs")
	}
}
