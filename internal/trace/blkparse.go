package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bps/internal/sim"
)

// ParseBlkparse converts blktrace/blkparse-style text output into BPS
// records, bridging the toolkit to real block-layer traces. It consumes
// the default blkparse line format:
//
//	maj,min cpu seq timestamp pid action rwbs sector + sectors [comm]
//
// e.g.
//
//	8,0  1  42  0.000123456  4510  D  R  1000 + 8 [qemu]
//	8,0  1  57  0.000323456  4510  C  R  1000 + 8 [0]
//
// Issue events (action D) open an access; the matching completion
// (action C, same device and sector) closes it. The record's Blocks is
// the sector count — blktrace sectors are 512 bytes, exactly the paper's
// block unit — PID comes from the issue event, Start/End from the two
// timestamps. All other actions (Q, G, I, M, ...) are ignored.
//
// Completions without a matching issue are ignored; issues that never
// complete are reported in the returned count of dropped accesses.
func ParseBlkparse(r io.Reader) (records []Record, dropped int, err error) {
	type key struct {
		dev    string
		sector int64
	}
	type open struct {
		pid    int64
		blocks int64
		start  sim.Time
	}
	inflight := make(map[key][]open)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) < 9 {
			continue // not an event line (summary, blank, ...)
		}
		action := fields[5]
		if action != "D" && action != "C" {
			continue
		}
		if fields[7] == "" || fields[8] != "+" && len(fields) < 10 {
			continue
		}
		ts, err := parseBlkTimestamp(fields[3])
		if err != nil {
			return records, dropped, fmt.Errorf("trace: blkparse line %d: %w", line, err)
		}
		pid, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return records, dropped, fmt.Errorf("trace: blkparse line %d: bad pid %q", line, fields[4])
		}
		sector, err := strconv.ParseInt(fields[7], 10, 64)
		if err != nil {
			return records, dropped, fmt.Errorf("trace: blkparse line %d: bad sector %q", line, fields[7])
		}
		var sectors int64
		if len(fields) >= 10 && fields[8] == "+" {
			sectors, err = strconv.ParseInt(fields[9], 10, 64)
			if err != nil {
				return records, dropped, fmt.Errorf("trace: blkparse line %d: bad sector count %q", line, fields[9])
			}
		} else {
			continue // zero-size barrier/flush events carry no "+ n"
		}
		k := key{dev: fields[0], sector: sector}
		switch action {
		case "D":
			inflight[k] = append(inflight[k], open{pid: pid, blocks: sectors, start: ts})
		case "C":
			q := inflight[k]
			if len(q) == 0 {
				continue // completion without issue (trace started mid-flight)
			}
			o := q[0]
			if len(q) == 1 {
				delete(inflight, k)
			} else {
				inflight[k] = q[1:]
			}
			records = append(records, Record{PID: o.pid, Blocks: o.blocks, Start: o.start, End: ts})
		}
	}
	if err := sc.Err(); err != nil {
		return records, dropped, fmt.Errorf("trace: blkparse: %w", err)
	}
	for _, q := range inflight {
		dropped += len(q)
	}
	return records, dropped, nil
}

// parseBlkTimestamp parses blkparse's seconds.nanoseconds timestamps
// without floating-point rounding.
func parseBlkTimestamp(s string) (sim.Time, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		sec, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q", s)
		}
		return sim.Time(sec) * sim.Second, nil
	}
	sec, err := strconv.ParseInt(s[:dot], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	frac := s[dot+1:]
	if len(frac) > 9 {
		frac = frac[:9]
	}
	for len(frac) < 9 {
		frac += "0"
	}
	ns, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	return sim.Time(sec)*sim.Second + sim.Time(ns), nil
}
