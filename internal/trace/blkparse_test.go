package trace

import (
	"strings"
	"testing"

	"bps/internal/sim"
)

const sampleBlkparse = `8,0  1  1  0.000000000  100  Q  R  1000 + 8 [app]
8,0  1  2  0.000100000  100  D  R  1000 + 8 [app]
8,0  1  3  0.005100000  100  C  R  1000 + 8 [0]
8,0  1  4  0.006000000  200  D  W  2048 + 16 [app]
8,0  1  5  0.006500000  100  D  R  4096 + 8 [app]
8,0  1  6  0.012000000  200  C  W  2048 + 16 [0]
8,0  1  7  0.013000000  100  C  R  4096 + 8 [0]
CPU0 (8,0): reads queued 2
`

func TestParseBlkparseBasic(t *testing.T) {
	records, dropped, err := ParseBlkparse(strings.NewReader(sampleBlkparse))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3 (Q events ignored)", len(records))
	}
	first := records[0]
	if first.PID != 100 || first.Blocks != 8 {
		t.Fatalf("first = %+v", first)
	}
	if first.Start != 100*sim.Microsecond || first.End != 5100*sim.Microsecond {
		t.Fatalf("first times = %v..%v", first.Start, first.End)
	}
	// Overlapping W and R: records carry correct independent intervals.
	if records[1].PID != 200 || records[1].Blocks != 16 {
		t.Fatalf("second = %+v", records[1])
	}
	if got := sim.Time(records[2].End - records[2].Start); got != 6500*sim.Microsecond {
		t.Fatalf("third duration = %v", got)
	}
}

func TestParseBlkparseUnmatchedEvents(t *testing.T) {
	in := `8,0 1 1 0.000000 100 C R 1000 + 8 [0]
8,0 1 2 0.001000 100 D R 2000 + 8 [app]
`
	records, dropped, err := ParseBlkparse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("records = %d, want 0", len(records))
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (issue without completion)", dropped)
	}
}

func TestParseBlkparseQueuedDuplicateSectors(t *testing.T) {
	// Two issues to the same sector complete FIFO.
	in := `8,0 1 1 0.000000 1 D R 500 + 8 [a]
8,0 1 2 0.001000 2 D R 500 + 8 [b]
8,0 1 3 0.002000 1 C R 500 + 8 [0]
8,0 1 4 0.003000 2 C R 500 + 8 [0]
`
	records, dropped, err := ParseBlkparse(strings.NewReader(in))
	if err != nil || dropped != 0 {
		t.Fatal(err, dropped)
	}
	if len(records) != 2 || records[0].PID != 1 || records[1].PID != 2 {
		t.Fatalf("records = %+v", records)
	}
}

func TestParseBlkparseBadFields(t *testing.T) {
	bad := []string{
		"8,0 1 1 notatime 100 D R 1000 + 8 [a]",
		"8,0 1 1 0.5 pid D R 1000 + 8 [a]",
		"8,0 1 1 0.5 100 D R sector + 8 [a]",
		"8,0 1 1 0.5 100 D R 1000 + eight [a]",
	}
	for _, line := range bad {
		if _, _, err := ParseBlkparse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseBlkparseTimestampPrecision(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"0.000000001", 1},
		{"1.5", 1500 * sim.Millisecond},
		{"2", 2 * sim.Second},
		{"0.123456789123", 123456789}, // sub-ns digits truncated
	}
	for _, c := range cases {
		got, err := parseBlkTimestamp(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseBlkTimestamp(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := parseBlkTimestamp("x.y"); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestParseBlkparseIntoMetricsPipeline(t *testing.T) {
	records, _, err := ParseBlkparse(strings.NewReader(sampleBlkparse))
	if err != nil {
		t.Fatal(err)
	}
	g := FromRecords(records)
	if g.TotalBlocks() != 8+16+8 {
		t.Fatalf("B = %d", g.TotalBlocks())
	}
}
