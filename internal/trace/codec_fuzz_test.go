package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenSeed loads the repo's golden record file (CSV form) for corpus
// seeding; it returns nil when unavailable so `go test` keeps working
// from any directory.
func goldenSeed(t *testing.F) []byte {
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "noop_records.golden"))
	if err != nil {
		t.Logf("golden seed unavailable: %v", err)
		return nil
	}
	return b
}

func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{})
	// One whole record and one truncated record.
	one := make([]byte, RecordSize)
	for i := range one {
		one[i] = byte(i)
	}
	f.Add(one)
	f.Add(one[:RecordSize-1])
	if csvBytes := goldenSeed(f); csvBytes != nil {
		if recs, err := ReadCSV(bytes.NewReader(csvBytes)); err == nil {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, recs); err == nil {
				f.Add(buf.Bytes())
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			// Only a trailing partial record may fail, and the whole
			// records before it must still have been decoded.
			if len(data)%RecordSize == 0 {
				t.Fatalf("ReadBinary(%d bytes): %v", len(data), err)
			}
			if len(recs) != len(data)/RecordSize {
				t.Fatalf("ReadBinary decoded %d records before error, want %d", len(recs), len(data)/RecordSize)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("binary round trip changed bytes:\n got %x\nwant %x", buf.Bytes(), data)
		}
	})
}

func FuzzCSVRoundTrip(f *testing.F) {
	f.Add([]byte("pid,blocks,start_ns,end_ns\n"))
	f.Add([]byte("pid,blocks,start_ns,end_ns\n1,128,0,500\n2,-3,9223372036854775807,-9223372036854775808\n"))
	f.Add([]byte("pid,blocks\n1,2\n"))
	if b := goldenSeed(f); b != nil {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, recs); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("ReadCSV of re-encoded output: %v", err)
		}
		if len(recs) == 0 && len(back) == 0 {
			return
		}
		if !reflect.DeepEqual(back, recs) {
			t.Fatalf("CSV round trip changed records:\n got %+v\nwant %+v", back, recs)
		}
	})
}

func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"pid":1,"blocks":128,"start_ns":0,"end_ns":500}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, recs); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("ReadJSONL of re-encoded output: %v", err)
		}
		if len(recs) == 0 && len(back) == 0 {
			return
		}
		if !reflect.DeepEqual(back, recs) {
			t.Fatalf("JSONL round trip changed records:\n got %+v\nwant %+v", back, recs)
		}
	})
}
