package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"bps/internal/sim"
)

// The binary format is exactly the paper's 32-byte record: four
// little-endian int64 fields {pid, blocks, start_ns, end_ns}, no header.

// WriteBinary encodes records in the 32-byte binary format.
func WriteBinary(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	var buf [RecordSize]byte
	for _, r := range records {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.PID))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Blocks))
		binary.LittleEndian.PutUint64(buf[16:], uint64(r.Start))
		binary.LittleEndian.PutUint64(buf[24:], uint64(r.End))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes records from the 32-byte binary format until EOF.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var out []Record
	var buf [RecordSize]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err == io.ErrUnexpectedEOF {
			return out, fmt.Errorf("trace: truncated record after %d records", len(out))
		}
		if err != nil {
			return out, err
		}
		out = append(out, Record{
			PID:    int64(binary.LittleEndian.Uint64(buf[0:])),
			Blocks: int64(binary.LittleEndian.Uint64(buf[8:])),
			Start:  sim.Time(binary.LittleEndian.Uint64(buf[16:])),
			End:    sim.Time(binary.LittleEndian.Uint64(buf[24:])),
		})
	}
}

// csvHeader is the first row of the CSV encoding.
var csvHeader = []string{"pid", "blocks", "start_ns", "end_ns"}

// WriteCSV encodes records as CSV with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range records {
		row := []string{
			strconv.FormatInt(r.PID, 10),
			strconv.FormatInt(r.Blocks, 10),
			strconv.FormatInt(int64(r.Start), 10),
			strconv.FormatInt(int64(r.End), 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes records from CSV produced by WriteCSV. The header row is
// required.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: CSV header %v, want %v", header, csvHeader)
	}
	for i := range csvHeader {
		if header[i] != csvHeader[i] {
			return nil, fmt.Errorf("trace: CSV header %v, want %v", header, csvHeader)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		var rec Record
		fields := []*int64{&rec.PID, &rec.Blocks, (*int64)(&rec.Start), (*int64)(&rec.End)}
		for i, f := range fields {
			v, err := strconv.ParseInt(row[i], 10, 64)
			if err != nil {
				return out, fmt.Errorf("trace: CSV line %d field %q: %w", line, csvHeader[i], err)
			}
			*f = v
		}
		out = append(out, rec)
	}
}

// jsonRecord is the JSONL wire form.
type jsonRecord struct {
	PID    int64 `json:"pid"`
	Blocks int64 `json:"blocks"`
	Start  int64 `json:"start_ns"`
	End    int64 `json:"end_ns"`
}

// WriteJSONL encodes records as one JSON object per line.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(jsonRecord{r.PID, r.Blocks, int64(r.Start), int64(r.End)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: JSONL record %d: %w", len(out)+1, err)
		}
		out = append(out, Record{PID: jr.PID, Blocks: jr.Blocks, Start: sim.Time(jr.Start), End: sim.Time(jr.End)})
	}
}
