// Package trace implements the BPS paper's measurement methodology
// (§III.B): one 32-byte record per application I/O access — process ID,
// size in blocks, start time, end time — captured at the I/O-middleware
// layer, accumulated per process, then gathered into a global collection
// from which the metrics are computed.
package trace

import (
	"sort"

	"bps/internal/sim"
)

// BlockSize is the I/O block unit the paper counts in: 512 bytes.
const BlockSize = 512

// RecordSize is the encoded size of one record in bytes. The paper's
// overhead analysis (§III.C) assumes 32-byte records: 65535 operations ≈
// 3 MB of trace.
const RecordSize = 32

// Record captures one application I/O access.
type Record struct {
	PID    int64    // issuing process
	Blocks int64    // application-required size in 512-byte blocks
	Start  sim.Time // access start
	End    sim.Time // access end
}

// Duration returns the access response time.
func (r Record) Duration() sim.Time { return r.End - r.Start }

// Bytes returns the required size in bytes.
func (r Record) Bytes() int64 { return r.Blocks * BlockSize }

// BlocksOf converts a byte count to whole 512-byte blocks, rounding up:
// a 1-byte access still occupies one block on a block device.
func BlocksOf(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + BlockSize - 1) / BlockSize
}

// Collector accumulates the records of a single process (paper step 1).
// It is not safe for concurrent use; in the simulator each process owns
// its collector, exactly as each MPI process owns its trace buffer.
type Collector struct {
	pid     int64
	records []Record
}

// NewCollector returns a collector for the given process ID.
func NewCollector(pid int64) *Collector {
	return &Collector{pid: pid}
}

// PID returns the process ID the collector records for.
func (c *Collector) PID() int64 { return c.pid }

// Record appends one access.
func (c *Collector) Record(blocks int64, start, end sim.Time) {
	c.records = append(c.records, Record{PID: c.pid, Blocks: blocks, Start: start, End: end})
}

// Records returns the accumulated records (not a copy).
func (c *Collector) Records() []Record { return c.records }

// Len returns the number of recorded accesses.
func (c *Collector) Len() int { return len(c.records) }

// Global is the gathered cross-process record collection (paper step 2):
// the total block count B and the time collection col_time.
type Global struct {
	records []Record
}

// Gather merges the records of all processes into a global collection.
func Gather(collectors ...*Collector) *Global {
	g := &Global{}
	for _, c := range collectors {
		g.records = append(g.records, c.records...)
	}
	return g
}

// FromRecords builds a Global directly from records (e.g. decoded from a
// trace file).
func FromRecords(records []Record) *Global {
	return &Global{records: records}
}

// Append merges more records into the collection, e.g. when the I/O
// system services several applications concurrently and all of them are
// recorded (paper §III.B step 1).
func (g *Global) Append(records ...Record) {
	g.records = append(g.records, records...)
}

// Records returns the gathered records (not a copy).
func (g *Global) Records() []Record { return g.records }

// Len returns the number of gathered records.
func (g *Global) Len() int { return len(g.records) }

// TotalBlocks returns B: the sum of required blocks over every access.
func (g *Global) TotalBlocks() int64 {
	var b int64
	for _, r := range g.records {
		b += r.Blocks
	}
	return b
}

// TotalBytes returns B in bytes.
func (g *Global) TotalBytes() int64 { return g.TotalBlocks() * BlockSize }

// SortByStart orders the collection by access start time (the sort step
// of the paper's Fig. 3 algorithm), breaking ties by end time then PID so
// the order is total and deterministic.
func (g *Global) SortByStart() {
	sort.Slice(g.records, func(i, j int) bool {
		a, b := g.records[i], g.records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.PID < b.PID
	})
}

// PIDs returns the distinct process IDs present, sorted.
func (g *Global) PIDs() []int64 {
	seen := make(map[int64]bool)
	for _, r := range g.records {
		seen[r.PID] = true
	}
	out := make([]int64, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
