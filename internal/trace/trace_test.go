package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"bps/internal/sim"
)

func TestBlocksOf(t *testing.T) {
	cases := []struct {
		bytes, want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {511, 1}, {512, 1}, {513, 2}, {4096, 8},
	}
	for _, c := range cases {
		if got := BlocksOf(c.bytes); got != c.want {
			t.Errorf("BlocksOf(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{PID: 3, Blocks: 8, Start: 100, End: 350}
	if r.Duration() != 250 {
		t.Errorf("Duration = %v", r.Duration())
	}
	if r.Bytes() != 8*512 {
		t.Errorf("Bytes = %d", r.Bytes())
	}
}

func TestCollectorAndGather(t *testing.T) {
	c1, c2 := NewCollector(1), NewCollector(2)
	c1.Record(8, 0, 100)
	c1.Record(16, 100, 300)
	c2.Record(4, 50, 150)
	if c1.Len() != 2 || c1.PID() != 1 {
		t.Fatalf("collector state: len=%d pid=%d", c1.Len(), c1.PID())
	}
	g := Gather(c1, c2)
	if g.Len() != 3 {
		t.Fatalf("gathered %d records", g.Len())
	}
	if g.TotalBlocks() != 28 {
		t.Fatalf("TotalBlocks = %d, want 28", g.TotalBlocks())
	}
	if g.TotalBytes() != 28*512 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
	if pids := g.PIDs(); !reflect.DeepEqual(pids, []int64{1, 2}) {
		t.Fatalf("PIDs = %v", pids)
	}
	g.Append(Record{PID: 9, Blocks: 1, Start: 0, End: 1})
	if g.Len() != 4 || g.TotalBlocks() != 29 {
		t.Fatalf("after Append: len=%d blocks=%d", g.Len(), g.TotalBlocks())
	}
}

func TestSortByStart(t *testing.T) {
	g := FromRecords([]Record{
		{PID: 1, Start: 300, End: 400},
		{PID: 2, Start: 100, End: 150},
		{PID: 3, Start: 100, End: 120},
		{PID: 1, Start: 100, End: 120},
	})
	g.SortByStart()
	r := g.Records()
	// Sorted by start, ties by end then PID.
	if r[0].PID != 1 || r[1].PID != 3 || r[2].PID != 2 || r[3].Start != 300 {
		t.Fatalf("sorted order wrong: %+v", r)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := []Record{
		{PID: 1, Blocks: 128, Start: 0, End: 5 * sim.Millisecond},
		{PID: 2, Blocks: 1, Start: sim.Second, End: sim.Second + 10},
		{PID: -3, Blocks: math.MaxInt64, Start: 0, End: sim.MaxTime},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(recs)*RecordSize {
		t.Fatalf("encoded %d bytes, want %d (32 B/record per paper §III.C)", buf.Len(), len(recs)*RecordSize)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip: got %+v", got)
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Record{{PID: 1, Blocks: 1, Start: 0, End: 1}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:RecordSize-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input decoded without error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{PID: 1, Blocks: 128, Start: 0, End: 5000},
		{PID: 7, Blocks: 42, Start: 123, End: 456},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip: got %+v", got)
	}
}

func TestCSVBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("nope,really\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("pid,blocks,start_ns,end_ns\n1,x,2,3\n")); err == nil {
		t.Fatal("non-numeric field accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted (missing header)")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{PID: 1, Blocks: 128, Start: 0, End: 5000},
		{PID: 2, Blocks: 9, Start: 77, End: 99},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip: got %+v", got)
	}
}

func TestJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"pid\": }\n")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// Property: binary round trip is the identity for arbitrary records.
func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(pids, blocks []int64, starts, durs []uint32) bool {
		n := len(pids)
		for _, s := range [][]int{{len(blocks)}, {len(starts)}, {len(durs)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				PID:    pids[i],
				Blocks: blocks[i],
				Start:  sim.Time(starts[i]),
				End:    sim.Time(starts[i]) + sim.Time(durs[i]),
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return len(recs) == 0 && len(got) == 0
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV and JSONL agree with binary for arbitrary valid records.
func TestCodecAgreementProperty(t *testing.T) {
	prop := func(seed []uint16) bool {
		recs := make([]Record, len(seed))
		for i, s := range seed {
			recs[i] = Record{
				PID:    int64(s % 16),
				Blocks: int64(s%1000) + 1,
				Start:  sim.Time(s) * 100,
				End:    sim.Time(s)*100 + sim.Time(s%997) + 1,
			}
		}
		var b1, b2, b3 bytes.Buffer
		if WriteBinary(&b1, recs) != nil || WriteCSV(&b2, recs) != nil || WriteJSONL(&b3, recs) != nil {
			return false
		}
		g1, e1 := ReadBinary(&b1)
		g2, e2 := ReadCSV(&b2)
		g3, e3 := ReadJSONL(&b3)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		if len(g1) != len(recs) || len(g2) != len(recs) || len(g3) != len(recs) {
			return len(recs) == 0
		}
		for i := range recs {
			if g1[i] != recs[i] || g2[i] != recs[i] || g3[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceFootprint pins the paper's overhead claim: 65535 records fit in
// about 3 MB (they fit in exactly 2 MiB at 32 B each).
func TestTraceFootprint(t *testing.T) {
	recs := make([]Record, 65535)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 65535*32 {
		t.Fatalf("65535 records encode to %d bytes", buf.Len())
	}
	if buf.Len() > 3<<20 {
		t.Fatalf("trace footprint %d exceeds the paper's ~3 MB bound", buf.Len())
	}
}
