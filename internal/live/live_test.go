package live

import (
	"os"
	"reflect"
	"testing"
	"time"

	"bps/internal/backend"
	"bps/internal/clock"
	"bps/internal/ioreq"
	"bps/internal/obs/forecast"
	"bps/internal/obs/serve"
	"bps/internal/sim"
	"bps/internal/workload"
)

// testAccesses is a small two-process mixed read/write workload with
// recorded think time.
func testAccesses() []workload.Access {
	var accs []workload.Access
	for pid := int64(0); pid < 2; pid++ {
		for i := int64(0); i < 16; i++ {
			accs = append(accs, workload.Access{
				PID:   pid,
				Slot:  int(pid),
				Off:   i * 8192,
				Size:  8192,
				Start: sim.Time(i) * 200 * sim.Microsecond,
				Write: i%4 == 0,
			})
		}
	}
	return accs
}

func virtualConfig(fsys backend.FS) Config {
	return Config{
		FS:          fsys,
		Mode:        Virtual,
		Cost:        clock.CostModel{PerOp: 50 * sim.Microsecond, BytesPerSec: 100e6},
		WindowEvery: sim.Millisecond,
		Seed:        42,
		Label:       "test",
	}
}

// TestVirtualDeterminism is the core reproducibility property: two
// virtual-mode runs of the same workload are identical in every
// reported surface — metrics, per-record timestamps, and windows.
func TestVirtualDeterminism(t *testing.T) {
	run := func() Report {
		rep, err := Run(virtualConfig(backend.NewMemFS()), testAccesses())
		if err != nil {
			t.Fatal(err)
		}
		rep.Registry = nil // pointer identity differs by construction
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("virtual runs diverge:\n%+v\nvs\n%+v", a, b)
	}
	if a.Metrics.Ops != 32 || a.Errors != 0 {
		t.Fatalf("ops=%d errors=%d, want 32, 0", a.Metrics.Ops, a.Errors)
	}
	if a.Metrics.BPS() <= 0 || a.Metrics.IOPS() <= 0 {
		t.Fatalf("degenerate metrics: %+v", a.Metrics)
	}
	if len(a.Attribution.Windows) == 0 {
		t.Fatalf("no windows collected")
	}
	if a.Backend != "mem" || a.Mode != Virtual {
		t.Fatalf("backend %q mode %v", a.Backend, a.Mode)
	}
}

// TestVirtualSeedSensitivity: the seed feeds worker RNGs (retry
// jitter), not the timeline — without retry middleware, two different
// seeds still produce identical timestamps, which is what makes the
// livemem figure a pure function of (workload, cost model).
func TestVirtualSeedSensitivity(t *testing.T) {
	run := func(seed int64) Report {
		cfg := virtualConfig(backend.NewMemFS())
		cfg.Seed = seed
		rep, err := Run(cfg, testAccesses())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(2)
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("seed leaked into the virtual timeline: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

// TestWallSmoke runs the wall-clock mode end to end on memfs: real
// timestamps, nonzero BPS, records for every access.
func TestWallSmoke(t *testing.T) {
	cfg := Config{
		FS:    backend.NewMemFS(),
		Mode:  Wall,
		Seed:  1,
		Label: "wall-smoke",
		Retry: &ioreq.RetryConfig{MaxRetries: 2, Backoff: sim.Microsecond},
		Cache: &ioreq.CacheConfig{CapacityBytes: 1 << 20, PageSize: 4096},
	}
	rep, err := Run(cfg, testAccesses())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != Wall || rep.Errors != 0 {
		t.Fatalf("mode %v errors %d", rep.Mode, rep.Errors)
	}
	if rep.Metrics.Ops != 32 || len(rep.Records) != 32 {
		t.Fatalf("ops %d records %d, want 32", rep.Metrics.Ops, len(rep.Records))
	}
	if rep.Metrics.BPS() <= 0 {
		t.Fatalf("wall BPS = %v", rep.Metrics.BPS())
	}
	if rep.Metrics.ExecTime <= 0 {
		t.Fatalf("wall exec time = %v", rep.Metrics.ExecTime)
	}
	for i, r := range rep.Records {
		if r.End < r.Start {
			t.Fatalf("record %d runs backwards: %+v", i, r)
		}
	}
}

// TestRunOnOSFS exercises the real-filesystem backend through a temp
// directory, including the pre-layout path.
func TestRunOnOSFS(t *testing.T) {
	dir := t.TempDir()
	accs := testAccesses()
	osb := backend.NewOSFS(dir, false)
	if _, err := Layout(osb, accs); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(virtualConfig(backend.NewOSFS(dir, false)), accs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "os" || rep.Errors != 0 {
		t.Fatalf("backend %q errors %d", rep.Backend, rep.Errors)
	}
	if rep.Metrics.MovedBytes <= 0 {
		t.Fatalf("no bytes moved through the os backend")
	}
}

func TestLayout(t *testing.T) {
	m := backend.NewMemFS()
	accs := []workload.Access{
		{PID: 0, Slot: 0, Off: 0, Size: 4096},
		{PID: 0, Slot: 0, Off: 4096, Size: 4096},
		{PID: 1, Slot: 1, Off: 10000, Size: 96},
	}
	extents, err := Layout(m, accs)
	if err != nil {
		t.Fatal(err)
	}
	if len(extents) != 2 || extents[0] != 8192 || extents[1] != 10096 {
		t.Fatalf("extents = %v, want [8192 10096]", extents)
	}
	for slot, want := range extents {
		fi, err := m.Stat(SlotName(slot))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != want {
			t.Fatalf("slot %d size %d, want %d", slot, fi.Size(), want)
		}
	}
	// Re-layout is idempotent and never shrinks.
	if err := m.Truncate(SlotName(0), 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := Layout(m, accs); err != nil {
		t.Fatal(err)
	}
	fi, _ := m.Stat(SlotName(0))
	if fi.Size() != 1<<20 {
		t.Fatalf("layout shrank an existing file to %d", fi.Size())
	}
}

// TestPublishServeIntegration plugs a serve.Publisher into the driver's
// Publish hook — the interface-compatibility contract between
// live.Source and serve.Source — and checks the final snapshot made it
// to the HTTP layer's data model.
func TestPublishServeIntegration(t *testing.T) {
	pub := serve.NewPublisher("live-test", forecast.Config{})
	cfg := virtualConfig(backend.NewMemFS())
	cfg.Publish = func(now sim.Time, src Source) { pub.Publish(now, src) }
	cfg.PublishEvery = time.Hour // only the final snapshot fires deterministically
	rep, err := Run(cfg, testAccesses())
	if err != nil {
		t.Fatal(err)
	}
	snap := pub.Snapshot()
	if len(snap.Windows) == 0 {
		t.Fatalf("publisher saw no windows")
	}
	if len(snap.Windows) != len(rep.Attribution.Windows) {
		t.Fatalf("publisher saw %d windows, run reported %d", len(snap.Windows), len(rep.Attribution.Windows))
	}
}

func TestRunValidation(t *testing.T) {
	cfg := virtualConfig(backend.NewMemFS())
	if _, err := Run(cfg, nil); err == nil {
		t.Fatalf("empty access stream accepted")
	}
	if _, err := Run(cfg, []workload.Access{{PID: 0, Slot: 0, Size: 0}}); err == nil {
		t.Fatalf("zero-size access accepted")
	}
	if _, err := Run(cfg, []workload.Access{{PID: 0, Slot: -1, Size: 1}}); err == nil {
		t.Fatalf("negative slot accepted")
	}
	if _, err := Run(Config{}, testAccesses()); err == nil {
		t.Fatalf("nil FS accepted")
	}
}

// TestSlotName pins the shared naming contract with iogen -layout.
func TestSlotName(t *testing.T) {
	if got := SlotName(7); got != "slot0007.dat" {
		t.Fatalf("SlotName(7) = %q", got)
	}
	if _, err := os.Stat(SlotName(0)); err == nil {
		t.Fatalf("SlotName resolved to an existing host file; must be backend-relative")
	}
}
