// Package live is the measurement driver for real backends: it replays
// a workload.Access stream from N concurrent goroutines — one per
// recorded process, the same grouping and pacing contract as
// workload.ReplayIO — against a backend.FS (a real directory tree or
// the in-memory filesystem), through the exact middleware chain and
// metric stack the simulator uses. The output Report carries the same
// Metrics/Records/Attribution shape a simulated run produces, so every
// downstream consumer (report writers, figures, the serve endpoints)
// works on live data unchanged.
//
// Two timelines are supported. Wall mode shares one wall clock across
// workers: timestamps are real elapsed nanoseconds, think-time pacing
// sleeps for real, and the numbers measure the actual I/O system under
// the directory. Virtual mode gives each worker its own deterministic
// clock lane advanced by a CostModel per operation: timestamps become a
// pure function of the workload — independent of goroutine scheduling —
// which is what lets the pinned livemem figure be byte-identical on
// every run.
//
// Fault injection is deliberately not wired in: faults.Wrap models
// simulated hardware, and injecting artificial errors into a real
// filesystem measurement would corrupt exactly the numbers the run
// exists to collect. Retry and the shared page cache (wall mode) remain
// available because they are part of the measured client stack.
package live

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bps/internal/backend"
	"bps/internal/clock"
	"bps/internal/core"
	"bps/internal/ioreq"
	"bps/internal/middleware"
	"bps/internal/obs"
	"bps/internal/obs/attrib"
	"bps/internal/sim"
	"bps/internal/trace"
	"bps/internal/workload"
)

// Mode selects the timeline live workers run against.
type Mode int

const (
	// Virtual gives each worker a deterministic clock lane advanced by
	// the cost model — reproducible runs, no real sleeping.
	Virtual Mode = iota
	// Wall shares one wall clock across workers — real measurements.
	Wall
)

func (m Mode) String() string {
	if m == Wall {
		return "wall"
	}
	return "virtual"
}

// Config parameterizes one live run.
type Config struct {
	// FS is the backend under measurement. Required.
	FS backend.FS

	// Mode selects wall-clock or virtual timing (default Virtual).
	Mode Mode

	// Cost is the virtual-mode service-time model; ignored in wall
	// mode. A zero model produces zero-width accesses, which still
	// yields valid (if degenerate) windows — set at least PerOp.
	Cost clock.CostModel

	// WindowEvery sizes the streaming window estimator (default 10 ms
	// via attrib.NewWindowEstimator).
	WindowEvery sim.Time

	// Seed derives the per-worker RNG streams (retry jitter).
	Seed int64

	// Retry, when non-nil, installs the generic retry middleware.
	Retry *ioreq.RetryConfig

	// Cache, when non-nil in wall mode, installs a shared client page
	// cache. The cache structure is engine-serialized by design, so the
	// driver serializes the cache-and-below portion of the stack behind
	// one mutex — measured concurrency then lives in the pacing and the
	// cache-hit path staying off the device. Ignored in virtual mode,
	// where cross-worker shared state would break lane determinism.
	Cache *ioreq.CacheConfig

	// Publish, when non-nil, receives periodic snapshots (every
	// PublishEvery of real time, default 100 ms) and one final snapshot
	// after the run. Source is method-identical to serve.Source, so
	// serve.Publisher.Publish plugs in directly (the indirection keeps
	// this package free of the HTTP layer). Calls are serialized and the
	// source is safe to read while workers run.
	Publish      func(now sim.Time, src Source)
	PublishEvery time.Duration

	// Label names the run in errors and reports.
	Label string
}

// Report is the result of a live run: the same measurement surfaces a
// simulated RunReport carries, computed from real timestamps.
type Report struct {
	// Backend names the FS measured ("mem", "os").
	Backend string
	// Mode is the timeline the run used.
	Mode Mode
	// Metrics are the paper's headline numbers over the whole run.
	Metrics core.Metrics
	// Records are the application trace records (sorted by start).
	Records []trace.Record
	// Errors counts failed accesses.
	Errors int
	// Attribution carries the windowed BPS/IOPS/BW/ARPT series. Layer
	// blame/stacks are absent: live runs have no span instrumentation.
	Attribution *attrib.Report
	// Registry holds the run's counters (ioreq/live/*).
	Registry *obs.Registry
}

// SlotName maps a workload file slot to its backend path — shared with
// iogen -layout so generated directory trees line up with replays.
func SlotName(slot int) string { return fmt.Sprintf("slot%04d.dat", slot) }

// Source is what the Publish callback snapshots: the streaming windows,
// their cadence, and the run's metric registry. It mirrors serve.Source
// method for method, so the driver can feed a serve.Publisher without
// this package importing the HTTP layer.
type Source interface {
	LiveWindows() []attrib.Window
	WindowEvery() sim.Time
	Registry() *obs.Registry
}

// driver is the shared state of one run; it implements Source (and by
// extension serve.Source) so a publisher can snapshot it while workers
// are in flight.
type driver struct {
	reg *obs.Registry

	mu  sync.Mutex
	est *attrib.WindowEstimator
}

// LiveWindows implements serve.Source.
func (d *driver) LiveWindows() []attrib.Window {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.est.Windows()
}

// WindowEvery implements serve.Source.
func (d *driver) WindowEvery() sim.Time { return d.est.Every() }

// Registry implements serve.Source.
func (d *driver) Registry() *obs.Registry { return d.reg }

// add feeds one completed access to the window estimator.
func (d *driver) add(blocks int64, start, end sim.Time) {
	d.mu.Lock()
	d.est.Add(blocks, start, end)
	d.mu.Unlock()
}

// openSlots creates (or reuses) and opens every slot file the workload
// touches, growing each to its required extent. On error every file
// opened so far is closed; on success the caller owns the files.
func openSlots(fsys backend.FS, accs []workload.Access) ([]backend.File, []int64, error) {
	w := workload.ReplayIO{Accesses: accs}
	extents := w.SlotExtents()
	files := make([]backend.File, len(extents))
	fail := func(slot int, err error) ([]backend.File, []int64, error) {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		return nil, nil, fmt.Errorf("slot %d: %w", slot, err)
	}
	for slot, ext := range extents {
		f, err := fsys.OpenFile(SlotName(slot), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fail(slot, err)
		}
		files[slot] = f
		fi, err := f.Stat()
		if err != nil {
			return fail(slot, err)
		}
		if fi.Size() < ext {
			if err := f.Truncate(ext); err != nil {
				return fail(slot, err)
			}
		}
	}
	return files, extents, nil
}

// Layout materializes the slot files a workload needs under fsys — the
// directory-tree half of a live run, split out so iogen -layout can
// prepare a real dataset ahead of time. Existing files are kept and
// grown only if too small. It returns the per-slot extents in bytes.
func Layout(fsys backend.FS, accs []workload.Access) ([]int64, error) {
	if len(accs) == 0 {
		return nil, fmt.Errorf("live layout: no accesses")
	}
	files, extents, err := openSlots(fsys, accs)
	if err != nil {
		return nil, fmt.Errorf("live layout: %w", err)
	}
	for slot, f := range files {
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("live layout: slot %d: %w", slot, err)
		}
	}
	return extents, nil
}

// workerSeed derives a distinct RNG seed per worker (splitmix-style
// increment, same for every run with the same base seed).
func workerSeed(base int64, i int) int64 {
	return base + int64(i+1)*-0x61c8864680b583eb
}

// Run replays accs against cfg.FS and computes the run's metrics.
func Run(cfg Config, accs []workload.Access) (Report, error) {
	if cfg.FS == nil {
		return Report{}, fmt.Errorf("live %q: no backend FS", cfg.Label)
	}
	if len(accs) == 0 {
		return Report{}, fmt.Errorf("live %q: no accesses", cfg.Label)
	}

	// Group per PID and order by recorded start, exactly as ReplayIO.
	perPID := make(map[int64][]workload.Access)
	var pids []int64
	for _, a := range accs {
		if a.Size <= 0 {
			return Report{}, fmt.Errorf("live %q: access with size %d", cfg.Label, a.Size)
		}
		if a.Off < 0 || a.Slot < 0 {
			return Report{}, fmt.Errorf("live %q: access with offset %d slot %d", cfg.Label, a.Off, a.Slot)
		}
		if _, ok := perPID[a.PID]; !ok {
			pids = append(pids, a.PID)
		}
		perPID[a.PID] = append(perPID[a.PID], a)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		s := perPID[pid]
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	}
	base := accs[0].Start
	for _, a := range accs {
		if a.Start < base {
			base = a.Start
		}
	}

	// Lay out the slot files: every access range must be backed by real
	// bytes, or reads would come up short. Extension is sparse (memfs
	// zero-fills, osfs relies on the host FS).
	files, extents, err := openSlots(cfg.FS, accs)
	if err != nil {
		return Report{}, fmt.Errorf("live %q: %w", cfg.Label, err)
	}
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	defer closeAll()

	// The dormant engine: never Run, it exists so the shared middleware
	// finds a real observer (atomic registry counters) through
	// obs.Get(p.Engine()). With zero Options the trace middleware is
	// inert (Spanning false) and AppAccess is a no-op, so nothing
	// engine-serialized is touched from concurrent workers.
	eng := sim.NewEngine(cfg.Seed)
	o := obs.Attach(eng, obs.Options{})
	exec := sim.NewLiveExec(eng)

	d := &driver{reg: o.Registry(), est: attrib.NewWindowEstimator(cfg.WindowEvery)}

	var wall *clockWall
	if cfg.Mode == Wall {
		wall = newClockWall()
		o.SetClock(wall.w)
	}

	// Shared per-slot targets: the backend layer plus the middleware
	// chain every worker serves through. Outermost to innermost: trace
	// (inert), stats, retry, [locked cache — wall only], [cost — virtual
	// only], file.
	var cacheLock sync.Mutex
	targets := make([]middleware.Target, len(files))
	for slot, f := range files {
		mws := []ioreq.Middleware{
			ioreq.Trace(eng, "live", cfg.FS.Name()),
			ioreq.Stats(eng, "ioreq/live"),
		}
		if cfg.Retry != nil {
			mws = append(mws, ioreq.Retry(eng, *cfg.Retry))
		}
		if cfg.Cache != nil && cfg.Mode == Wall {
			cache := ioreq.NewCache(*cfg.Cache)
			mws = append(mws, lockMW(&cacheLock), cache.Middleware(extents[slot]))
		}
		if cfg.Mode == Virtual {
			mws = append(mws, costMW(cfg.Cost))
		}
		targets[slot] = middleware.NewTarget(backend.FileLayer(f), SlotName(slot), extents[slot]).Wrap(mws...)
	}

	// Optional publisher ticker: a real-time goroutine snapshotting the
	// driver while workers run. Serialized by construction (one
	// goroutine), reading only thread-safe state.
	stopPub := func(now sim.Time) {}
	if cfg.Publish != nil {
		every := cfg.PublishEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		done := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					var now sim.Time
					if wall != nil {
						now = wall.w.Now()
					} else {
						now = d.maxWindowEnd()
					}
					cfg.Publish(now, d)
				}
			}
		}()
		stopPub = func(now sim.Time) {
			close(done)
			<-finished
			cfg.Publish(now, d)
		}
	}

	// One goroutine per recorded process, pacing by recorded think time
	// on its own clock.
	cols := make([]*trace.Collector, len(pids))
	lanes := make([]*clock.VirtualLane, len(pids))
	var errs atomic.Int64
	var wg sync.WaitGroup
	for i, pid := range pids {
		col := trace.NewCollector(pid)
		cols[i] = col
		var lc sim.LiveClock
		if cfg.Mode == Wall {
			lc = wall.w
		} else {
			lanes[i] = clock.NewVirtualLane(0)
			lc = lanes[i]
		}
		p := exec.NewProc(fmt.Sprintf("live.pid%d", pid), lc, workerSeed(cfg.Seed, i))
		myAccs := perPID[pid]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ios := make(map[int]*middleware.POSIX)
			start := p.Now()
			for _, a := range myAccs {
				io, ok := ios[a.Slot]
				if !ok {
					io = middleware.NewPOSIX(targets[a.Slot], col)
					ios[a.Slot] = io
				}
				issueAt := start + (a.Start - base)
				if now := p.Now(); now < issueAt {
					p.Sleep(issueAt - now)
				}
				var err error
				if a.Write {
					err = io.Write(p, a.Off, a.Size)
				} else {
					err = io.Read(p, a.Off, a.Size)
				}
				if err != nil {
					errs.Add(1)
				}
				// The record just captured is the access's authoritative
				// interval; feed it to the shared window estimator (the
				// sim path does this inside AppAccess, which the dormant
				// observer deliberately no-ops).
				recs := col.Records()
				r := recs[len(recs)-1]
				d.add(r.Blocks, r.Start, r.End)
			}
		}()
	}
	wg.Wait()

	// T: wall time elapsed, or the furthest virtual lane cursor.
	var execTime sim.Time
	if cfg.Mode == Wall {
		execTime = wall.w.Now()
	} else {
		for _, l := range lanes {
			if t := l.Now(); t > execTime {
				execTime = t
			}
		}
	}
	stopPub(execTime)

	g := trace.Gather(cols...)
	g.SortByStart()
	rep := Report{
		Backend: cfg.FS.Name(),
		Mode:    cfg.Mode,
		Metrics: core.Compute(g, cfg.FS.Moved(), execTime),
		Records: g.Records(),
		Errors:  int(errs.Load()),
		Attribution: &attrib.Report{
			Total:       execTime,
			Windows:     d.est.Windows(),
			WindowEvery: d.est.Every(),
		},
		Registry: d.reg,
	}
	return rep, nil
}

// maxWindowEnd approximates "now" for virtual-mode publishing: the end
// of the latest window the estimator has seen.
func (d *driver) maxWindowEnd() sim.Time {
	wins := d.LiveWindows()
	if len(wins) == 0 {
		return 0
	}
	return wins[len(wins)-1].End
}

// clockWall wraps the shared wall clock so the driver can hold one
// origin for pacing, publishing, and the final T.
type clockWall struct{ w *clock.Wall }

func newClockWall() *clockWall { return &clockWall{w: clock.NewWall()} }

// costMW charges the virtual cost model for every request reaching the
// backend — the deterministic stand-in for real device service time.
func costMW(m clock.CostModel) ioreq.Middleware {
	return func(next ioreq.Layer) ioreq.Layer {
		return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
			p.Sleep(m.Cost(req.Size))
			return next.Serve(p, req)
		})
	}
}

// lockMW serializes the wrapped portion of the stack behind mu — how
// the engine-serialized page cache stays safe under concurrent workers.
func lockMW(mu *sync.Mutex) ioreq.Middleware {
	return func(next ioreq.Layer) ioreq.Layer {
		return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
			mu.Lock()
			defer mu.Unlock()
			return next.Serve(p, req)
		})
	}
}
