package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteFaultFigure(t *testing.T) {
	f := fakeFigure(false)
	f.ID = "faults"
	f.Notes = "note text"
	f.Points[1].Errors = 7
	var buf bytes.Buffer
	WriteFaultFigure(&buf, f)
	out := buf.String()
	for _, want := range []string{"Faults", "errors", "note: note text", "normalized CC", "CC bars"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault figure output missing %q:\n%s", want, out)
		}
	}
	// The per-run table carries the error column's value.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " b ") && !strings.Contains(line, " 7 ") {
			t.Errorf("row for point b lost its error count: %q", line)
		}
	}
}
