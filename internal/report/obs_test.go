package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"bps/internal/obs"
)

func testRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("device/hdd/bytes_read").Add(4096)
	reg.Counter("net/fabric/transfers").Add(3)
	reg.Gauge("pfs/mds/load").Set(0.5)
	h := reg.Histogram("device/hdd/service_ns")
	h.Observe(1000)
	h.Observe(3000)
	reg.Probe("device/hdd/utilization", func() float64 { return 0.25 })
	return reg
}

func TestWriteObsSummary(t *testing.T) {
	var buf bytes.Buffer
	WriteObsSummary(&buf, testRegistry())
	out := buf.String()
	for _, want := range []string{
		"[device]", "[net]", "[pfs]",
		"device/hdd/bytes_read", "4096",
		"device/hdd/service_ns", "n=2",
		"device/hdd/utilization", "0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Nil registry is a silent no-op.
	buf.Reset()
	WriteObsSummary(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestWriteObsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteObsCSV(&buf, testRegistry()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rows[0], ","); got != "layer,component,metric,kind,value" {
		t.Fatalf("header = %q", got)
	}
	// 2 counters + 1 gauge + 5 histogram stats + 1 probe.
	if len(rows) != 1+2+1+5+1 {
		t.Fatalf("rows = %d:\n%v", len(rows), rows)
	}
	found := map[string]string{}
	for _, r := range rows[1:] {
		if len(r) != 5 {
			t.Fatalf("row width %d: %v", len(r), r)
		}
		found[r[0]+"/"+r[1]+"/"+r[2]] = r[4]
	}
	if found["device/hdd/bytes_read"] != "4096" {
		t.Fatalf("bytes_read = %q", found["device/hdd/bytes_read"])
	}
	if found["device/hdd/service_ns.count"] != "2" {
		t.Fatalf("service_ns.count = %q", found["device/hdd/service_ns.count"])
	}
	if found["device/hdd/service_ns.mean"] != "2000" {
		t.Fatalf("service_ns.mean = %q", found["device/hdd/service_ns.mean"])
	}
}

func TestFigureCSVEscapesTitle(t *testing.T) {
	f := fakeFigure(false)
	f.Title = `requests, sizes and "holes"`
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	// The whole output must stay machine-parseable despite the comma and
	// quotes in the title (cc rows are narrower than run rows).
	cr := csv.NewReader(&buf)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("output not parseable: %v\n%s", err, buf.String())
	}
	var ccRows int
	for _, r := range rows {
		if r[0] != "cc" {
			continue
		}
		ccRows++
		if got := r[len(r)-1]; got != f.Title {
			t.Fatalf("cc row title = %q, want %q", got, f.Title)
		}
	}
	if ccRows != 4 {
		t.Fatalf("cc rows = %d", ccRows)
	}
}
