package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"bps/internal/core"
	"bps/internal/experiments"
)

// WriteCCBars renders a CC figure the way the paper draws it: one
// horizontal bar per metric on a −1 … +1 axis, positive (expected
// direction) to the right, negative (misleading) to the left.
//
//	IOPS  ──────────────────┤####################  +0.92
//	BW    #########─────────┤                      -0.41
func WriteCCBars(w io.Writer, f experiments.Figure, width int) {
	if f.CC == nil {
		return
	}
	if width <= 0 {
		width = 24
	}
	fmt.Fprintf(w, "  CC bars (%s):\n", f.ID)
	axis := strings.Repeat(" ", width)
	fmt.Fprintf(w, "        -1 %s 0 %s +1\n", strings.ReplaceAll(axis, " ", "─"), strings.ReplaceAll(axis, " ", "─"))
	for _, k := range core.Kinds {
		cc := f.CC.CC[k]
		fmt.Fprintf(w, "  %-5s %s %+.2f\n", k, ccBar(cc, width), cc)
	}
}

// ccBar builds one bar: width cells on each side of the center axis.
func ccBar(cc float64, width int) string {
	if math.IsNaN(cc) {
		return strings.Repeat(" ", width) + "│" + strings.Repeat(" ", width) + "  NaN"
	}
	clamped := cc
	if clamped > 1 {
		clamped = 1
	}
	if clamped < -1 {
		clamped = -1
	}
	n := int(math.Abs(clamped)*float64(width) + 0.5)
	left := strings.Repeat(" ", width)
	right := strings.Repeat(" ", width)
	if clamped >= 0 {
		right = strings.Repeat("#", n) + strings.Repeat(" ", width-n)
	} else {
		left = strings.Repeat(" ", width-n) + strings.Repeat("#", n)
	}
	return " " + left + "│" + right
}
