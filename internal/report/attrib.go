package report

import (
	"fmt"
	"io"

	"bps/internal/experiments"
	"bps/internal/obs/attrib"
)

// hasBlame reports whether any point of the figure carries a
// critical-path blame label — figures rendered without attribution keep
// their exact historical layout.
func hasBlame(f experiments.Figure) bool {
	for _, pt := range f.Points {
		if pt.Blame != "" {
			return true
		}
	}
	return false
}

// WriteAttribution renders a run's critical-path attribution report:
// the per-layer blame table partitioning the overlapped time T, the
// folded stacks, the latency quantile rows, and (when the streaming
// estimator ran) the windowed time series. Deterministic for equal
// reports, so pinned-seed output can be golden-tested.
func WriteAttribution(w io.Writer, rep *attrib.Report) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "Critical-path attribution — T = %.6fs (blame partitions T; busy may overlap)\n",
		rep.Total.Seconds())
	fmt.Fprintf(w, "  %-8s %12s %7s %12s %10s %12s\n",
		"layer", "excl(s)", "excl%", "busy(s)", "spans", "offpath(s)")
	for _, l := range rep.Layers {
		pct := 0.0
		if rep.Total > 0 {
			pct = 100 * float64(l.Exclusive) / float64(rep.Total)
		}
		fmt.Fprintf(w, "  %-8s %12.6f %6.1f%% %12.6f %10d %12.6f\n",
			l.Layer, l.Exclusive.Seconds(), pct, l.Busy.Seconds(), l.Spans, l.OffPath.Seconds())
	}
	if dom := rep.Dominant(); dom != "" {
		fmt.Fprintf(w, "  dominant: %s\n", dom)
	}
	// Printed only when the caller supplied a roofline ceiling, so
	// reports without a model keep their exact historical layout.
	if rep.CeilingBPS > 0 {
		fmt.Fprintf(w, "  roofline: BPS %.0f of ceiling %.0f blk/s — headroom %.1f%%\n",
			rep.BPS(), rep.CeilingBPS, 100*rep.Headroom())
	}
	if len(rep.Stacks) > 0 {
		fmt.Fprintf(w, "  stacks:\n")
		for _, st := range rep.Stacks {
			path := ""
			for i, f := range st.Frames {
				if i > 0 {
					path += ";"
				}
				path += f
			}
			fmt.Fprintf(w, "    %-40s %12.6f\n", path, st.Time.Seconds())
		}
	}
	if len(rep.Latency) > 0 {
		fmt.Fprintf(w, "  latency (ns):\n")
		fmt.Fprintf(w, "    %-32s %10s %12s %12s %12s %12s %12s\n",
			"histogram", "count", "mean", "p50", "p95", "p99", "max")
		for _, row := range rep.Latency {
			fmt.Fprintf(w, "    %-32s %10d %12.0f %12d %12d %12d %12d\n",
				row.Name, row.Count, row.Mean, row.P50, row.P95, row.P99, row.Max)
		}
	}
	if len(rep.Windows) > 0 {
		WriteAttribWindows(w, rep)
	}
	fmt.Fprintln(w)
}

// WriteAttribWindows renders the streaming estimator's time series: one
// row per fixed window with its completion-attributed BPS, IOPS,
// bandwidth, ARPT, and utilization.
func WriteAttribWindows(w io.Writer, rep *attrib.Report) {
	if rep == nil || len(rep.Windows) == 0 {
		return
	}
	fmt.Fprintf(w, "  windows (%.3fs each):\n", rep.WindowEvery.Seconds())
	fmt.Fprintf(w, "    %10s %8s %10s %14s %12s %12s %12s %8s\n",
		"start(s)", "ops", "blocks", "BPS(blk/s)", "IOPS", "BW(MB/s)", "ARPT(ms)", "util")
	for _, win := range rep.Windows {
		fmt.Fprintf(w, "    %10.3f %8d %10d %14.0f %12.1f %12.2f %12.4f %7.1f%%\n",
			win.Start.Seconds(), win.Ops, win.Blocks, win.BPS(), win.IOPS(),
			win.Bandwidth()/1e6, win.ARPT()*1e3, 100*win.Utilization())
	}
}
