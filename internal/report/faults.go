package report

import (
	"fmt"
	"io"
	"strings"

	"bps/internal/experiments"
)

// WriteFaultFigure renders the FaultSweep figure. It differs from
// WriteFigure in one column: each run reports its application-visible
// error count — the accesses that exhausted the recovery policy's
// retry budget — which is what separates a degraded-but-recovering run
// from one that is actually losing work.
func WriteFaultFigure(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	if f.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", f.Notes)
	}
	blame := hasBlame(f)
	fmt.Fprintf(w, "  %-12s %12s %12s %10s %8s %14s %12s %12s %16s",
		f.XLabel, "exec(s)", "T(s)", "ops", "errors", "IOPS", "BW(MB/s)", "ARPT(ms)", "BPS(blk/s)")
	if blame {
		fmt.Fprintf(w, " %8s", "attrib")
	}
	fmt.Fprintln(w)
	for _, pt := range f.Points {
		m := pt.Metrics
		fmt.Fprintf(w, "  %-12s %12.4f %12.4f %10d %8d %14.1f %12.2f %12.4f %16.0f",
			pt.Label, m.ExecTime.Seconds(), m.IOTime.Seconds(), m.Ops, pt.Errors,
			m.IOPS(), m.Bandwidth()/1e6, m.ARPT()*1e3, m.BPS())
		if blame {
			fmt.Fprintf(w, " %8s", pt.Blame)
		}
		fmt.Fprintln(w)
	}
	if f.CC != nil {
		writeCC(w, f)
		WriteCCBars(w, f, 24)
	}
	fmt.Fprintln(w)
}
