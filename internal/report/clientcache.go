package report

import (
	"fmt"
	"io"
	"strings"

	"bps/internal/experiments"
	"bps/internal/trace"
)

// WriteClientCacheFigure renders the client-cache sweep. It differs
// from WriteFigure in two columns: each run reports its client-cache
// hit rate (the sweep's real x-axis) and the BPS/BW ratio — the number
// that exposes how far application-delivered throughput has pulled away
// from file-system bandwidth once a cache layer serves requests without
// moving file-system bytes.
func WriteClientCacheFigure(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	if f.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", f.Notes)
	}
	blame := hasBlame(f)
	fmt.Fprintf(w, "  %-12s %8s %12s %10s %14s %12s %12s %16s %10s",
		f.XLabel, "hit%", "exec(s)", "ops", "IOPS", "BW(MB/s)", "ARPT(ms)", "BPS(blk/s)", "BPS/BW")
	if blame {
		fmt.Fprintf(w, " %8s", "attrib")
	}
	fmt.Fprintln(w)
	for _, pt := range f.Points {
		m := pt.Metrics
		ratio := 0.0
		if bw := m.Bandwidth(); bw > 0 {
			ratio = m.BPS() * float64(trace.BlockSize) / bw
		}
		fmt.Fprintf(w, "  %-12s %8.1f %12.4f %10d %14.1f %12.2f %12.4f %16.0f %10.2f",
			pt.Label, 100*pt.Aux["hit_rate"], m.ExecTime.Seconds(), m.Ops,
			m.IOPS(), m.Bandwidth()/1e6, m.ARPT()*1e3, m.BPS(), ratio)
		if blame {
			fmt.Fprintf(w, " %8s", pt.Blame)
		}
		fmt.Fprintln(w)
	}
	if f.CC != nil {
		writeCC(w, f)
		WriteCCBars(w, f, 24)
	}
	fmt.Fprintln(w)
}
