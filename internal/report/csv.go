package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"bps/internal/core"
	"bps/internal/experiments"
)

// figureCSVHeader is the per-run row schema of WriteFigureCSV.
var figureCSVHeader = []string{
	"figure", "label", "exec_s", "io_time_s", "ops", "blocks",
	"moved_bytes", "iops", "bw_bytes_per_s", "arpt_s", "bps_blocks_per_s",
}

// WriteFigureCSV emits one CSV row per run of the figure, plus (for CC
// figures) one `cc` row per metric, for downstream plotting.
func WriteFigureCSV(w io.Writer, f experiments.Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(figureCSVHeader); err != nil {
		return err
	}
	for _, pt := range f.Points {
		m := pt.Metrics
		row := []string{
			f.ID,
			pt.Label,
			fmtFloat(m.ExecTime.Seconds()),
			fmtFloat(m.IOTime.Seconds()),
			strconv.FormatInt(m.Ops, 10),
			strconv.FormatInt(m.Blocks, 10),
			strconv.FormatInt(m.MovedBytes, 10),
			fmtFloat(m.IOPS()),
			fmtFloat(m.Bandwidth()),
			fmtFloat(m.ARPT()),
			fmtFloat(m.BPS()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if f.CC != nil {
		// The cc rows carry the free-form figure title; going through the
		// csv.Writer quotes any commas or quotes it contains.
		for _, k := range core.Kinds {
			row := []string{"cc", f.ID, fmt.Sprint(k), fmtFloat(f.CC.CC[k]), f.Title}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}
