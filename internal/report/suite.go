package report

import (
	"encoding/json"
	"fmt"
	"io"

	"bps/internal/core"
	"bps/internal/experiments"
	"bps/internal/stats"
)

// WriteSuite renders the IO500-style composite: per-phase run tables
// with roofline ceilings and headroom, CC distributions across seeds
// with bootstrap confidence intervals, and the composite score.
// Deterministic for equal reports.
func WriteSuite(w io.Writer, rep experiments.SuiteReport) {
	fmt.Fprintf(w, "Suite — IO500-style composite, %d phases × %d seeds (bootstrap %.0f%% CIs, %d resamples)\n",
		len(rep.Phases), rep.Seeds, 100*rep.Composite.Confidence, rep.Composite.Resamples)
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "\nPhase %s — base-seed runs:\n", ph.Name)
		fmt.Fprintf(w, "  %-8s %12s %12s %10s %16s %16s %10s\n",
			"procs", "exec(s)", "T(s)", "ops", "BPS(blk/s)", "ceiling(blk/s)", "headroom")
		for i, pt := range ph.Points {
			m := pt.Metrics
			fmt.Fprintf(w, "  %-8s %12.4f %12.4f %10d %16.0f %16.0f %9.1f%%\n",
				pt.Label, m.ExecTime.Seconds(), m.IOTime.Seconds(), m.Ops,
				m.BPS(), ph.CeilingBPS[i], 100*pt.Headroom)
		}
		fmt.Fprintf(w, "  normalized CC across seeds (Pearson | Spearman):\n")
		fmt.Fprintf(w, "    %-6s %8s %22s %8s %8s %8s %22s\n",
			"metric", "mean", "95% CI", "median", "IQR", "rk mean", "rk 95% CI")
		for _, k := range core.Kinds {
			cc, rk := ph.CC[k], ph.RankCC[k]
			fmt.Fprintf(w, "    %-6s %+8.3f %22s %+8.3f %8.3f %+8.3f %22s\n",
				k, cc.Mean, ciString(cc), cc.Median, cc.IQR(), rk.Mean, ciString(rk))
		}
		fmt.Fprintf(w, "  headroom across %d runs: mean %.1f%% %s  median %.1f%%  range [%.1f%%, %.1f%%]\n",
			ph.Headroom.N, 100*ph.Headroom.Mean, ciPctString(ph.Headroom),
			100*ph.Headroom.Median, 100*ph.Headroom.Min, 100*ph.Headroom.Max)
	}
	c := rep.Composite
	fmt.Fprintf(w, "\nComposite (geomean of phase mean BPS): %.0f blk/s, 95%% CI [%.0f, %.0f], range [%.0f, %.0f] over %d seeds\n\n",
		c.Mean, c.CILo, c.CIHi, c.Min, c.Max, c.N)
}

// ciString renders a Dist's confidence interval.
func ciString(d stats.Dist) string {
	return fmt.Sprintf("[%+.3f, %+.3f]", d.CILo, d.CIHi)
}

// ciPctString renders a Dist's confidence interval as percentages.
func ciPctString(d stats.Dist) string {
	return fmt.Sprintf("CI [%.1f%%, %.1f%%]", 100*d.CILo, 100*d.CIHi)
}

// suiteJSON is the machine-readable shape of -roofline-out.
type suiteJSON struct {
	Seeds     int              `json:"seeds"`
	Phases    []suitePhaseJSON `json:"phases"`
	Composite stats.Dist       `json:"composite"`
}

type suitePhaseJSON struct {
	Name     string                `json:"name"`
	Points   []suitePointJSON      `json:"points"`
	CC       map[string]stats.Dist `json:"cc"`
	RankCC   map[string]stats.Dist `json:"rank_cc"`
	Headroom stats.Dist            `json:"headroom"`
}

type suitePointJSON struct {
	Label      string  `json:"label"`
	BPS        float64 `json:"bps"`
	CeilingBPS float64 `json:"ceiling_bps"`
	Headroom   float64 `json:"headroom"`
	ExecS      float64 `json:"exec_s"`
}

// WriteSuiteJSON emits the suite report as indented JSON — the
// -roofline-out artifact that downstream tooling (dashboards, CI
// trend lines) consumes instead of scraping the text tables.
func WriteSuiteJSON(w io.Writer, rep experiments.SuiteReport) error {
	out := suiteJSON{Seeds: rep.Seeds, Composite: rep.Composite}
	for _, ph := range rep.Phases {
		pj := suitePhaseJSON{
			Name:     ph.Name,
			CC:       make(map[string]stats.Dist, len(ph.CC)),
			RankCC:   make(map[string]stats.Dist, len(ph.RankCC)),
			Headroom: ph.Headroom,
		}
		for k, d := range ph.CC {
			pj.CC[k.String()] = d
		}
		for k, d := range ph.RankCC {
			pj.RankCC[k.String()] = d
		}
		for i, pt := range ph.Points {
			pj.Points = append(pj.Points, suitePointJSON{
				Label:      pt.Label,
				BPS:        pt.Metrics.BPS(),
				CeilingBPS: ph.CeilingBPS[i],
				Headroom:   pt.Headroom,
				ExecS:      pt.Metrics.ExecTime.Seconds(),
			})
		}
		out.Phases = append(out.Phases, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
