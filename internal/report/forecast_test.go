package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"bps/internal/obs/attrib"
	"bps/internal/obs/forecast"
	"bps/internal/sim"
)

func windowedReport() *attrib.Report {
	e := attrib.NewWindowEstimator(10 * sim.Millisecond)
	e.Add(64, 0, 8*sim.Millisecond)
	// Window 1 idle; window 2 active again, then a burst in window 3.
	e.Add(32, 20*sim.Millisecond, 26*sim.Millisecond)
	e.Add(4096, 30*sim.Millisecond, 39*sim.Millisecond)
	return &attrib.Report{Windows: e.Windows(), WindowEvery: e.Every()}
}

// TestWriteWindowsCSVValid parses the export back: every cell must be a
// finite number, including the idle window's zero rates.
func TestWriteWindowsCSVValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWindowsCSV(&buf, windowedReport()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(rows) != 5 { // header + 4 windows
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for i, row := range rows[1:] {
		for j, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Errorf("row %d col %s: %q is not a number", i, rows[0][j], cell)
			}
			if v != v || v > 1e308 || v < -1e308 {
				t.Errorf("row %d col %s: %v not finite", i, rows[0][j], v)
			}
		}
	}
	// The idle window (row 2) exports plain zeros.
	idle := rows[2]
	for j, cell := range idle[2:] {
		if cell != "0" {
			t.Errorf("idle window col %s = %q, want 0", rows[0][j+2], cell)
		}
	}
}

// TestWriteForecastOutput checks the rendered table and that the burst
// window raises an alert line.
func TestWriteForecastOutput(t *testing.T) {
	var buf bytes.Buffer
	WriteForecast(&buf, windowedReport(), forecast.Config{Warmup: 1, BurstK: 2, Season: 2})
	out := buf.String()
	if !strings.Contains(out, "Burst forecast — window 0.010s, 4 windows") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "alerts (k=2×baseline):") {
		t.Errorf("burst window produced no alert section:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("forecast table contains NaN/Inf:\n%s", out)
	}
	// Deterministic rendering.
	var buf2 bytes.Buffer
	WriteForecast(&buf2, windowedReport(), forecast.Config{Warmup: 1, BurstK: 2, Season: 2})
	if buf2.String() != out {
		t.Error("WriteForecast output diverged across identical reports")
	}
}

// TestWriteForecastEmptyReport must write nothing rather than panic.
func TestWriteForecastEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	WriteForecast(&buf, nil, forecast.Config{})
	WriteForecast(&buf, &attrib.Report{}, forecast.Config{})
	if err := WriteWindowsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != 0 {
		t.Fatalf("empty inputs wrote %d bytes: %q", got, buf.String())
	}
}
