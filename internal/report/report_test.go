package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bps/internal/core"
	"bps/internal/experiments"
	"bps/internal/sim"
	"bps/internal/stats"
)

// fakeFigure builds a figure without running the simulator.
func fakeFigure(detail bool) experiments.Figure {
	mk := func(scale int64) core.Metrics {
		return core.Metrics{
			Ops:        100,
			Blocks:     12800,
			MovedBytes: 12800 * 512,
			IOTime:     sim.Time(scale) * sim.Second,
			SumRespt:   sim.Time(scale) * sim.Second,
			ExecTime:   sim.Time(scale) * sim.Second,
		}
	}
	f := experiments.Figure{
		ID:     "fig4",
		Title:  "test figure",
		Notes:  "Paper: something.",
		XLabel: "x",
		Points: []experiments.Point{
			{Label: "a", Metrics: mk(1)},
			{Label: "b", Metrics: mk(2)},
			{Label: "c", Metrics: mk(4)},
		},
	}
	if detail {
		f.IsDetail = true
		f.DetailKind = core.ARPT
	} else {
		runs := []core.Metrics{mk(1), mk(2), mk(4)}
		t := stats.NewCCTable("fig4", runs)
		f.CC = &t
	}
	return f
}

func TestWriteFigureCC(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, fakeFigure(false))
	out := buf.String()
	for _, want := range []string{"Fig4", "test figure", "normalized CC", "IOPS=", "BPS=", "a", "b", "c"} {
		if !strings.Contains(out, want) {
			t.Errorf("CC figure output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureDetail(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, fakeFigure(true))
	out := buf.String()
	if !strings.Contains(out, "ARPT") || !strings.Contains(out, "exec time (s)") {
		t.Errorf("detail output missing series headers:\n%s", out)
	}
	if strings.Contains(out, "normalized CC") {
		t.Errorf("detail figure printed a CC row:\n%s", out)
	}
}

func TestFormatMetricUnits(t *testing.T) {
	cases := []struct {
		k    core.MetricKind
		v    float64
		want string
	}{
		{core.ARPT, 0.5, "0.50000 s"},
		{core.BW, 2e6, "2.00 MB/s"},
		{core.BPS, 1234.4, "1234 blk/s"},
		{core.IOPS, 12.34, "12.3"},
	}
	for _, c := range cases {
		if got := formatMetric(c.k, c.v); got != c.want {
			t.Errorf("formatMetric(%v, %v) = %q, want %q", c.k, c.v, got, c.want)
		}
	}
}

func TestWriteTables(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf)
	out := buf.String()
	// Paper Table 1 content: ARPT positive, others negative.
	if !strings.Contains(out, "Average response time") || !strings.Contains(out, "positive") {
		t.Errorf("Table 1 output wrong:\n%s", out)
	}
	if strings.Count(out, "negative") != 3 {
		t.Errorf("Table 1 should list 3 negative metrics:\n%s", out)
	}

	buf.Reset()
	WriteTable2(&buf)
	out = buf.String()
	for _, want := range []string{"Set1", "Set4", "various storage device", "additional data movement"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	good := fakeFigure(false)
	figs := []experiments.Figure{good, fakeFigure(true)} // detail skipped
	s := Summarize(figs)
	for _, k := range core.Kinds {
		if s.MeanCC[k] < 0.9 {
			t.Errorf("mean CC(%v) = %v", k, s.MeanCC[k])
		}
		if !s.AlwaysCorrect[k] {
			t.Errorf("%v should be always correct in this fixture", k)
		}
	}

	// Flip one metric's CC negative: AlwaysCorrect must drop.
	bad := fakeFigure(false)
	bad.CC.CC[core.BW] = -0.4
	s = Summarize([]experiments.Figure{good, bad})
	if s.AlwaysCorrect[core.BW] {
		t.Error("BW marked always-correct despite a wrong-direction figure")
	}
	if !s.AlwaysCorrect[core.BPS] {
		t.Error("BPS should remain always-correct")
	}

	var buf bytes.Buffer
	WriteSummary(&buf, []experiments.Figure{good, bad})
	if !strings.Contains(buf.String(), "false") || !strings.Contains(buf.String(), "true") {
		t.Errorf("summary output:\n%s", buf.String())
	}
}

func TestWriteCCBars(t *testing.T) {
	f := fakeFigure(false)
	f.CC.CC[core.BW] = -0.5
	var buf bytes.Buffer
	WriteCCBars(&buf, f, 10)
	out := buf.String()
	if !strings.Contains(out, "CC bars") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + axis + 4 metric rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The BW row's hashes must be left of the axis (misleading).
	var bwLine string
	for _, l := range lines {
		if strings.Contains(l, "BW") {
			bwLine = l
		}
	}
	axis := strings.IndexRune(bwLine, '│')
	hash := strings.IndexRune(bwLine, '#')
	if axis < 0 || hash < 0 || hash > axis {
		t.Fatalf("BW bar not on the negative side: %q", bwLine)
	}
	// Detail figures render no bars.
	buf.Reset()
	WriteCCBars(&buf, fakeFigure(true), 10)
	if buf.Len() != 0 {
		t.Fatal("bars rendered for a detail figure")
	}
}

func TestCCBarClamping(t *testing.T) {
	if got := ccBar(2.5, 4); !strings.Contains(got, "####") {
		t.Fatalf("over-range bar %q", got)
	}
	if got := ccBar(math.NaN(), 4); !strings.Contains(got, "NaN") {
		t.Fatalf("NaN bar %q", got)
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, fakeFigure(false)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 3 runs + 4 cc rows.
	if len(lines) != 8 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "figure,label,exec_s") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "fig4,a,") {
		t.Fatalf("first row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[4], "cc,fig4,IOPS,") {
		t.Fatalf("cc row = %q", lines[4])
	}
	// Detail figures emit runs but no cc rows.
	buf.Reset()
	if err := WriteFigureCSV(&buf, fakeFigure(true)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\ncc,") {
		t.Fatal("detail figure emitted cc rows")
	}
}

func TestWriteComparison(t *testing.T) {
	f := fakeFigure(false) // ID fig4; all CC ≈ +0.93 per the fixture
	var buf bytes.Buffer
	WriteComparison(&buf, []experiments.Figure{f, fakeFigure(true)})
	out := buf.String()
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "YES") {
		t.Fatalf("comparison output:\n%s", out)
	}
	// A flipped sign must show NO.
	f.CC.CC[core.BW] = -0.4
	buf.Reset()
	WriteComparison(&buf, []experiments.Figure{f})
	if !strings.Contains(buf.String(), "NO") {
		t.Fatalf("flipped sign not flagged:\n%s", buf.String())
	}
}
