package report

import (
	"bytes"
	"strings"
	"testing"

	"bps/internal/core"
	"bps/internal/experiments"
	"bps/internal/obs/attrib"
	"bps/internal/sim"
)

func blameFigure(blame bool) experiments.Figure {
	pt := experiments.Point{
		Label: "r0",
		Metrics: core.Metrics{
			Ops: 100, Blocks: 6400, MovedBytes: 6400 * 512,
			IOTime: sim.Second / 2, ExecTime: sim.Second,
		},
	}
	if blame {
		pt.Blame = "device"
	}
	return experiments.Figure{
		ID: "faults", Title: "test", XLabel: "rate",
		Points: []experiments.Point{pt},
	}
}

// TestBlameColumnOnlyWhenAttributed: figure tables grow the attrib
// column only when a point carries blame — unattributed output stays
// byte-identical to the historical layout.
func TestBlameColumnOnlyWhenAttributed(t *testing.T) {
	var plain, attributed bytes.Buffer
	WriteFaultFigure(&plain, blameFigure(false))
	WriteFaultFigure(&attributed, blameFigure(true))
	if strings.Contains(plain.String(), "attrib") {
		t.Fatalf("unattributed table shows the attrib column:\n%s", plain.String())
	}
	if !strings.Contains(attributed.String(), "attrib") || !strings.Contains(attributed.String(), "device") {
		t.Fatalf("attributed table missing the blame column:\n%s", attributed.String())
	}

	plainCC, attribCC := blameFigure(false), blameFigure(true)
	var p2, a2 bytes.Buffer
	WriteClientCacheFigure(&p2, plainCC)
	WriteClientCacheFigure(&a2, attribCC)
	if strings.Contains(p2.String(), "attrib") {
		t.Fatalf("unattributed clientcache table shows the attrib column:\n%s", p2.String())
	}
	if !strings.Contains(a2.String(), "attrib") {
		t.Fatalf("attributed clientcache table missing the blame column:\n%s", a2.String())
	}
}

// TestWriteAttribution smoke-checks the blame-table writer: every
// layer row, the dominant line, stacks, latency, and windows render.
func TestWriteAttribution(t *testing.T) {
	rep := &attrib.Report{
		Total: sim.Second,
		Layers: []attrib.LayerTime{
			{Layer: attrib.LayerDevice, Exclusive: 3 * sim.Second / 4, Busy: 3 * sim.Second / 4, Spans: 10},
			{Layer: attrib.LayerClient, Exclusive: sim.Second / 4},
		},
		Stacks: []attrib.Stack{
			{Frames: []string{"app", "device"}, Time: 3 * sim.Second / 4},
			{Frames: []string{"app", "client"}, Time: sim.Second / 4},
		},
		Latency: []attrib.LatencyRow{
			{Name: "device/hdd/service_ns", Count: 10, Mean: 1000, P50: 1024, P95: 2048, P99: 2048, Max: 1999},
		},
		Windows: []attrib.Window{
			{Start: 0, End: sim.Second, Ops: 10, Blocks: 640,
				SumDur: sim.Second / 2, Busy: sim.Second},
		},
		WindowEvery: sim.Second,
	}
	var buf bytes.Buffer
	WriteAttribution(&buf, rep)
	out := buf.String()
	for _, want := range []string{"device", "dominant: device", "app;device",
		"device/hdd/service_ns", "windows (1.000s each)"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution output missing %q:\n%s", want, out)
		}
	}
	// Nil report renders nothing.
	var empty bytes.Buffer
	WriteAttribution(&empty, nil)
	if empty.Len() != 0 {
		t.Errorf("nil report produced output: %q", empty.String())
	}
}
