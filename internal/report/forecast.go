package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"bps/internal/obs/attrib"
	"bps/internal/obs/forecast"
)

// WriteForecast replays a run's closed window series through the online
// burst forecaster and renders the per-window forecasts: observed BPS,
// one-step-ahead prediction, the model selection, the EWMA baseline,
// and any burst alerts. Post hoc it sees exactly the windows the live
// path fed at sampler ticks, so its output matches what /forecast
// served during the run. Deterministic for equal reports.
func WriteForecast(w io.Writer, rep *attrib.Report, cfg forecast.Config) {
	if rep == nil || len(rep.Windows) == 0 {
		return
	}
	tr := forecast.NewTracker(cfg)
	for _, win := range rep.Windows {
		tr.ObserveWindow(win)
	}
	fmt.Fprintf(w, "Burst forecast — window %.3fs, %d windows\n",
		rep.WindowEvery.Seconds(), len(rep.Windows))
	fmt.Fprintf(w, "  %8s %14s %14s %10s %14s\n",
		"window", "BPS(blk/s)", "forecast", "model", "baseline")
	s := tr.SeriesByName("bps")
	for _, pt := range s.Points() {
		fmt.Fprintf(w, "  %8.3f %14.0f %14.0f %10s %14.0f\n",
			rep.Windows[pt.Index].Start.Seconds(), pt.Observed, pt.Forecast,
			pt.Model.String(), pt.Baseline)
	}
	alerts := tr.Alerts()
	if len(alerts) == 0 {
		fmt.Fprintf(w, "  no burst alerts\n")
		return
	}
	fmt.Fprintf(w, "  alerts (k=%g×baseline):\n", cfgBurstK(cfg))
	for _, a := range alerts {
		fmt.Fprintf(w, "    window %4d %-5s %-9s value %.0f > limit %.0f\n",
			a.Window, a.Series, a.Kind.String(), a.Value, a.Limit)
	}
}

// cfgBurstK resolves the config's effective burst threshold.
func cfgBurstK(cfg forecast.Config) float64 {
	if cfg.BurstK <= 1 {
		return 2.5
	}
	return cfg.BurstK
}

// WriteWindowsCSV exports a run's window series as CSV: one row per
// window with its counts and completion-attributed rates. Zero-activity
// and zero-busy windows export as plain zeros — the rate helpers never
// produce NaN or Inf — so sparse series load cleanly anywhere.
func WriteWindowsCSV(w io.Writer, rep *attrib.Report) error {
	if rep == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"start_s", "end_s", "ops", "blocks", "busy_s",
		"bps", "bw_bytes_per_s", "iops", "arpt_s", "utilization",
	}); err != nil {
		return err
	}
	for _, win := range rep.Windows {
		row := []string{
			strconv.FormatFloat(win.Start.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(win.End.Seconds(), 'g', -1, 64),
			strconv.FormatInt(win.Ops, 10),
			strconv.FormatInt(win.Blocks, 10),
			strconv.FormatFloat(win.Busy.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(win.BPS(), 'g', -1, 64),
			strconv.FormatFloat(win.Bandwidth(), 'g', -1, 64),
			strconv.FormatFloat(win.IOPS(), 'g', -1, 64),
			strconv.FormatFloat(win.ARPT(), 'g', -1, 64),
			strconv.FormatFloat(win.Utilization(), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
