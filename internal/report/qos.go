package report

import (
	"fmt"
	"io"
	"strings"

	"bps/internal/experiments"
)

// WriteQoSFigure renders the multi-tenant QoS scenario comparison. The
// metric columns are tenant A's (the protected tenant the figure
// plots); the trailing columns show A's BPS relative to its solo
// baseline, tenant B's delivered BPS, the controller's throttle
// counters, and B's LASSi-style interference risk.
func WriteQoSFigure(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	if f.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", f.Notes)
	}
	fmt.Fprintf(w, "  %-14s %10s %10s %8s %8s %14s %10s %9s %9s %9s %7s %11s\n",
		f.XLabel, "exec(s)", "T(s)", "ops", "errors", "A-BPS(blk/s)", "A/solo",
		"B-BPS", "B-delay", "B-shed", "B-risk", "activations")
	for _, pt := range f.Points {
		m := pt.Metrics
		aux := func(k string) float64 { return pt.Aux[k] }
		fmt.Fprintf(w, "  %-14s %10.4f %10.4f %8d %8d %14.0f %9.0f%% %9.0f %9.0f %9.0f %7.2f %11.0f\n",
			pt.Label, m.ExecTime.Seconds(), m.IOTime.Seconds(), m.Ops, pt.Errors,
			m.BPS(), 100*aux("a_vs_solo"), aux("b_bps"), aux("b_delayed"),
			aux("b_shed"), aux("b_risk"), aux("activations"))
	}
	fmt.Fprintln(w)
}
