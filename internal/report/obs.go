package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bps/internal/obs"
)

// splitMetric breaks a "layer/component/metric" name into its parts;
// shorter names degrade gracefully (missing parts are empty).
func splitMetric(name string) (layer, component, metric string) {
	parts := strings.SplitN(name, "/", 3)
	switch len(parts) {
	case 3:
		return parts[0], parts[1], parts[2]
	case 2:
		return parts[0], "", parts[1]
	default:
		return "", "", name
	}
}

// WriteObsSummary renders the registry's metrics as a plain-text table
// grouped by layer (the first path segment of each metric name), the
// per-layer decomposition companion to the run's headline BPS numbers.
func WriteObsSummary(w io.Writer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(w, "Observability summary — per-layer metrics")
	var lastLayer string
	emit := func(name, kind, value string) {
		layer, _, _ := splitMetric(name)
		if layer != lastLayer {
			fmt.Fprintf(w, "  [%s]\n", layer)
			lastLayer = layer
		}
		fmt.Fprintf(w, "    %-40s %-10s %s\n", name, kind, value)
	}
	for _, c := range reg.Counters() {
		emit(c.Name(), "counter", strconv.FormatInt(c.Value(), 10))
	}
	for _, g := range reg.Gauges() {
		emit(g.Name(), "gauge", strconv.FormatFloat(g.Value(), 'g', 6, 64))
	}
	for _, h := range reg.Histograms() {
		if h.Count() == 0 {
			emit(h.Name(), "histogram", "(empty)")
			continue
		}
		emit(h.Name(), "histogram", fmt.Sprintf(
			"n=%d mean=%.1f p50=%d p99=%d max=%d",
			h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max()))
	}
	for _, pr := range reg.Probes() {
		emit(pr.Name, "probe", strconv.FormatFloat(pr.Fn(), 'g', 6, 64))
	}
	fmt.Fprintln(w)
}

// obsCSVHeader is the row schema of WriteObsCSV: one row per metric (and
// per derived histogram statistic), keyed by the layer/component split of
// the metric name.
var obsCSVHeader = []string{"layer", "component", "metric", "kind", "value"}

// WriteObsCSV emits the registry as CSV with per-layer columns.
// Histograms expand into .count/.mean/.p50/.p99/.max rows.
func WriteObsCSV(w io.Writer, reg *obs.Registry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(obsCSVHeader); err != nil {
		return err
	}
	if reg == nil {
		cw.Flush()
		return cw.Error()
	}
	row := func(name, kind, value string) error {
		layer, component, metric := splitMetric(name)
		return cw.Write([]string{layer, component, metric, kind, value})
	}
	for _, c := range reg.Counters() {
		if err := row(c.Name(), "counter", strconv.FormatInt(c.Value(), 10)); err != nil {
			return err
		}
	}
	for _, g := range reg.Gauges() {
		if err := row(g.Name(), "gauge", fmtFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, h := range reg.Histograms() {
		stats := []struct {
			suffix, value string
		}{
			{".count", strconv.FormatUint(h.Count(), 10)},
			{".mean", fmtFloat(h.Mean())},
			{".p50", strconv.FormatInt(h.Quantile(0.5), 10)},
			{".p99", strconv.FormatInt(h.Quantile(0.99), 10)},
			{".max", strconv.FormatInt(h.Max(), 10)},
		}
		for _, s := range stats {
			if err := row(h.Name()+s.suffix, "histogram", s.value); err != nil {
				return err
			}
		}
	}
	for _, pr := range reg.Probes() {
		if err := row(pr.Name, "probe", fmtFloat(pr.Fn())); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
