// Package report renders experiment results as plain-text tables: the
// per-metric normalized-CC bar values of the paper's CC figures, the
// metric/execution-time series of its detail figures, and the static
// Tables 1 and 2.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"bps/internal/core"
	"bps/internal/experiments"
)

// WriteFigure renders one figure reproduction.
func WriteFigure(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	if f.Notes != "" {
		fmt.Fprintf(w, "  paper: %s\n", strings.TrimPrefix(f.Notes, "Paper: "))
	}
	if f.IsDetail {
		writeDetail(w, f)
	} else {
		writeRuns(w, f)
		if f.CC != nil {
			writeCC(w, f)
			WriteCCBars(w, f, 24)
		}
	}
	fmt.Fprintln(w)
}

// writeRuns prints the per-run measurements of a sweep. A headroom
// column appears only when at least one point carries a roofline
// headroom, so figures without a model keep their exact historical
// layout (the attrib and livemem goldens pin it).
func writeRuns(w io.Writer, f experiments.Figure) {
	headroom := false
	for _, pt := range f.Points {
		if pt.Headroom > 0 {
			headroom = true
			break
		}
	}
	fmt.Fprintf(w, "  %-12s %12s %12s %10s %14s %12s %12s %16s",
		f.XLabel, "exec(s)", "T(s)", "ops", "IOPS", "BW(MB/s)", "ARPT(ms)", "BPS(blk/s)")
	if headroom {
		fmt.Fprintf(w, " %10s", "headroom")
	}
	fmt.Fprintln(w)
	for _, pt := range f.Points {
		m := pt.Metrics
		fmt.Fprintf(w, "  %-12s %12.4f %12.4f %10d %14.1f %12.2f %12.4f %16.0f",
			pt.Label, m.ExecTime.Seconds(), m.IOTime.Seconds(), m.Ops,
			m.IOPS(), m.Bandwidth()/1e6, m.ARPT()*1e3, m.BPS())
		if headroom {
			fmt.Fprintf(w, " %9.1f%%", 100*pt.Headroom)
		}
		fmt.Fprintln(w)
	}
}

// writeCC prints the normalized CC row, the figure's headline result.
func writeCC(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "  normalized CC vs execution time:")
	for _, k := range core.Kinds {
		fmt.Fprintf(w, "  %s=%+.2f", k, f.CC.CC[k])
	}
	fmt.Fprintln(w)
}

// writeDetail prints a metric/execution-time detail series (Figs. 7, 8, 10).
func writeDetail(w io.Writer, f experiments.Figure) {
	fmt.Fprintf(w, "  %-12s %16s %14s\n", f.XLabel, f.DetailKind.String(), "exec time (s)")
	for _, pt := range f.Points {
		fmt.Fprintf(w, "  %-12s %16s %14.4f\n",
			pt.Label, formatMetric(f.DetailKind, pt.Metrics.Value(f.DetailKind)),
			pt.Metrics.ExecTime.Seconds())
	}
}

// formatMetric renders a metric value with its natural unit.
func formatMetric(k core.MetricKind, v float64) string {
	switch k {
	case core.ARPT:
		return fmt.Sprintf("%.5f s", v)
	case core.BW:
		return fmt.Sprintf("%.2f MB/s", v/1e6)
	case core.BPS:
		return fmt.Sprintf("%.0f blk/s", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// WriteTable1 renders the paper's Table 1: expected correlation
// directions per metric.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Expected correlation directions of each I/O metric")
	fmt.Fprintf(w, "  %-24s %s\n", "I/O metric", "CC value")
	names := map[core.MetricKind]string{
		core.IOPS: "IOPS",
		core.BW:   "Bandwidth",
		core.ARPT: "Average response time",
		core.BPS:  "BPS",
	}
	for _, k := range core.Kinds {
		fmt.Fprintf(w, "  %-24s %s\n", names[k], k.ExpectedDirection())
	}
	fmt.Fprintln(w)
}

// WriteTable2 renders the paper's Table 2: the experiment sets.
func WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — I/O access cases")
	rows := []struct{ set, desc, figs string }{
		{"Set1", "various storage device", "fig4"},
		{"Set2", "various I/O request size", "fig5 fig6 fig7 fig8"},
		{"Set3", "various I/O concurrency", "fig9 fig10 fig11"},
		{"Set4", "various additional data movement", "fig12"},
	}
	fmt.Fprintf(w, "  %-6s %-36s %s\n", "Set", "Description", "Figures")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s %-36s %s\n", r.set, r.desc, r.figs)
	}
	fmt.Fprintln(w)
}

// Summary computes the cross-experiment average |CC| per metric over the
// CC figures, the paper's §IV.C.5 summary (BPS ≈ 0.91 overall, with the
// sign reporting whether every experiment agreed with Table 1).
type Summary struct {
	// MeanCC is the mean normalized CC per metric across CC figures.
	MeanCC map[core.MetricKind]float64

	// AlwaysCorrect reports whether the metric had the expected direction
	// in every CC figure.
	AlwaysCorrect map[core.MetricKind]bool
}

// Summarize builds the summary from reproduced figures (detail figures
// are skipped).
func Summarize(figs []experiments.Figure) Summary {
	s := Summary{
		MeanCC:        make(map[core.MetricKind]float64),
		AlwaysCorrect: make(map[core.MetricKind]bool),
	}
	for _, k := range core.Kinds {
		var sum float64
		n := 0
		correct := true
		for _, f := range figs {
			if f.CC == nil {
				continue
			}
			cc := f.CC.CC[k]
			sum += cc
			n++
			if cc <= 0 {
				correct = false
			}
		}
		if n > 0 {
			s.MeanCC[k] = sum / float64(n)
		}
		s.AlwaysCorrect[k] = correct && n > 0
	}
	return s
}

// WriteSummary renders the cross-experiment summary.
func WriteSummary(w io.Writer, figs []experiments.Figure) {
	s := Summarize(figs)
	fmt.Fprintln(w, "Summary — mean normalized CC across all CC figures")
	fmt.Fprintf(w, "  %-6s %10s %18s\n", "metric", "mean CC", "always correct?")
	for _, k := range core.Kinds {
		fmt.Fprintf(w, "  %-6s %+10.3f %18v\n", k, s.MeanCC[k], s.AlwaysCorrect[k])
	}
	fmt.Fprintln(w)
}

// WriteComparison renders the paper-vs-measured agreement table for the
// given reproduced figures (figures the paper reports no CC for are
// skipped).
func WriteComparison(w io.Writer, figs []experiments.Figure) {
	fmt.Fprintln(w, "Paper vs. measured — normalized CC directions")
	fmt.Fprintf(w, "  %-7s %-6s %14s %14s %10s\n", "figure", "metric", "paper", "measured", "agree?")
	for _, f := range figs {
		a, ok := experiments.Compare(f)
		if !ok {
			continue
		}
		for _, k := range core.Kinds {
			paper := formatPaperCC(a.Paper, k)
			agree := "YES"
			if !a.SignMatches[k] {
				agree = "NO"
			}
			fmt.Fprintf(w, "  %-7s %-6s %14s %+14.2f %10s\n", f.ID, k, paper, a.Measured[k], agree)
		}
	}
	fmt.Fprintln(w)
}

// formatPaperCC renders the paper's reported value: a signed magnitude
// when stated, otherwise just the direction.
func formatPaperCC(p experiments.PaperCC, k core.MetricKind) string {
	abs := p.AbsCC[k]
	if math.IsNaN(abs) {
		if p.Sign[k] < 0 {
			return "wrong dir"
		}
		return "correct dir"
	}
	return fmt.Sprintf("%+.2f", float64(p.Sign[k])*abs)
}
