package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bps/internal/sim"
	"bps/internal/trace"
)

func rec(start, end sim.Time) trace.Record {
	return trace.Record{PID: 1, Blocks: 1, Start: start, End: end}
}

func TestOverlapTimeEmpty(t *testing.T) {
	if got := OverlapTime(nil); got != 0 {
		t.Fatalf("OverlapTime(nil) = %v", got)
	}
}

func TestOverlapTimeSingle(t *testing.T) {
	if got := OverlapTime([]trace.Record{rec(10, 30)}); got != 20 {
		t.Fatalf("got %v, want 20", got)
	}
}

// TestOverlapTimePaperFig2 reproduces the paper's Fig. 2: R1, R2, R3
// overlap partially (union Δt1), an idle gap, then R4 alone (Δt2);
// T = Δt1 + Δt2.
func TestOverlapTimePaperFig2(t *testing.T) {
	records := []trace.Record{
		rec(10, 40), // R1
		rec(20, 55), // R2 overlaps R1
		rec(35, 60), // R3 overlaps R2
		rec(80, 95), // R4 after an idle gap [60,80)
	}
	want := sim.Time((60 - 10) + (95 - 80))
	if got := OverlapTime(records); got != want {
		t.Fatalf("Fig.2 union = %v, want %v", got, want)
	}
	// The naive sum counts the concurrency multiply.
	if s := SumTime(records); s != 30+35+25+15 {
		t.Fatalf("SumTime = %v", s)
	}
	// The span includes the idle gap.
	if sp := Span(records); sp != 85 {
		t.Fatalf("Span = %v, want 85", sp)
	}
}

func TestOverlapTouchingIntervalsMerge(t *testing.T) {
	// [0,5) then [5,9): the Fig. 3 algorithm merges touching records
	// (endtime < starttime is the split test, and 5 < 5 is false).
	got := OverlapTime([]trace.Record{rec(0, 5), rec(5, 9)})
	if got != 9 {
		t.Fatalf("touching union = %v, want 9", got)
	}
}

func TestOverlapUnorderedInput(t *testing.T) {
	records := []trace.Record{rec(80, 95), rec(35, 60), rec(10, 40), rec(20, 55)}
	if got := OverlapTime(records); got != 65 {
		t.Fatalf("unordered union = %v, want 65", got)
	}
}

func TestOverlapContainedInterval(t *testing.T) {
	// A record fully inside another must not shrink the union.
	got := OverlapTime([]trace.Record{rec(0, 100), rec(20, 30)})
	if got != 100 {
		t.Fatalf("contained union = %v, want 100", got)
	}
	// Same when the contained one sorts second by start.
	got = OverlapTime([]trace.Record{rec(0, 100), rec(0, 10)})
	if got != 100 {
		t.Fatalf("same-start union = %v, want 100", got)
	}
}

func TestOverlapZeroLength(t *testing.T) {
	got := OverlapTime([]trace.Record{rec(5, 5), rec(7, 7)})
	if got != 0 {
		t.Fatalf("zero-length union = %v, want 0", got)
	}
}

func TestMergeAccumulatorMatchesBatch(t *testing.T) {
	records := []trace.Record{rec(10, 40), rec(20, 55), rec(35, 60), rec(80, 95)}
	var acc MergeAccumulator
	for _, r := range records { // already sorted by start
		acc.Add(r.Start, r.End)
	}
	if acc.Total() != OverlapTime(records) {
		t.Fatalf("streaming %v != batch %v", acc.Total(), OverlapTime(records))
	}
}

func TestMergeAccumulatorEmpty(t *testing.T) {
	var acc MergeAccumulator
	if acc.Total() != 0 {
		t.Fatalf("empty accumulator total = %v", acc.Total())
	}
}

func TestMergeAccumulatorOutOfOrderPanics(t *testing.T) {
	var acc MergeAccumulator
	acc.Add(10, 20)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	acc.Add(5, 8)
}

// randomRecords builds n records with bounded coordinates from a seeded
// source, for property tests.
func randomRecords(rng *rand.Rand, n int) []trace.Record {
	records := make([]trace.Record, n)
	for i := range records {
		start := sim.Time(rng.Int63n(10_000))
		records[i] = rec(start, start+sim.Time(rng.Int63n(1_000)))
	}
	return records
}

// Property: max single duration ≤ union ≤ min(span, sum of durations).
func TestOverlapBoundsProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, int(nRaw%50)+1)
		union := OverlapTime(records)
		var maxDur sim.Time
		for _, r := range records {
			if d := r.Duration(); d > maxDur {
				maxDur = d
			}
		}
		sum, span := SumTime(records), Span(records)
		if union < maxDur || union > sum && sum > 0 {
			return false
		}
		return union <= span
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the union is invariant under permutation of the records.
func TestOverlapPermutationInvariance(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, int(nRaw%50)+1)
		want := OverlapTime(records)
		shuffled := append([]trace.Record(nil), records...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return OverlapTime(shuffled) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting any record into two touching halves leaves the
// union unchanged (the union is a measure, not a count).
func TestOverlapSplitInvariance(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, int(nRaw%30)+1)
		want := OverlapTime(records)
		var split []trace.Record
		for _, r := range records {
			if d := r.Duration(); d >= 2 {
				mid := r.Start + d/2
				split = append(split, rec(r.Start, mid), rec(mid, r.End))
			} else {
				split = append(split, r)
			}
		}
		return OverlapTime(split) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicating records never changes the union (idempotence).
func TestOverlapDuplicateInvariance(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, int(nRaw%30)+1)
		want := OverlapTime(records)
		doubled := append(append([]trace.Record(nil), records...), records...)
		return OverlapTime(doubled) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the streaming accumulator agrees with the batch union on
// sorted input.
func TestMergeAccumulatorProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, int(nRaw%60)+1)
		g := trace.FromRecords(append([]trace.Record(nil), records...))
		g.SortByStart()
		var acc MergeAccumulator
		for _, r := range g.Records() {
			acc.Add(r.Start, r.End)
		}
		return acc.Total() == OverlapTime(records)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapIntervalsDirect(t *testing.T) {
	if got := OverlapIntervals(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	ivs := []Interval{{Start: 10, End: 5}} // inverted: zero duration
	if got := OverlapIntervals(ivs); got != 0 {
		t.Fatalf("inverted = %v", got)
	}
	ivs = []Interval{{Start: 0, End: 10}, {Start: 20, End: 5}}
	if got := OverlapIntervals(ivs); got != 10 {
		t.Fatalf("mixed = %v", got)
	}
}

func TestIntervalDuration(t *testing.T) {
	if (Interval{Start: 5, End: 3}).Duration() != 0 {
		t.Fatal("inverted interval has nonzero duration")
	}
	if (Interval{Start: 3, End: 5}).Duration() != 2 {
		t.Fatal("duration wrong")
	}
}
