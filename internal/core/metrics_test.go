package core

import (
	"math"
	"testing"

	"bps/internal/sim"
	"bps/internal/trace"
)

func TestMetricKindStrings(t *testing.T) {
	want := map[MetricKind]string{IOPS: "IOPS", BW: "BW", ARPT: "ARPT", BPS: "BPS"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if MetricKind(99).String() != "MetricKind(99)" {
		t.Errorf("unknown kind string = %q", MetricKind(99).String())
	}
}

func TestExpectedDirectionsMatchTable1(t *testing.T) {
	// Paper Table 1.
	want := map[MetricKind]Direction{
		IOPS: Negative,
		BW:   Negative,
		ARPT: Positive,
		BPS:  Negative,
	}
	for k, d := range want {
		if k.ExpectedDirection() != d {
			t.Errorf("%v expected direction = %v, want %v", k, k.ExpectedDirection(), d)
		}
	}
	if Negative.String() != "negative" || Positive.String() != "positive" {
		t.Error("Direction strings wrong")
	}
}

func TestComputeBasic(t *testing.T) {
	c := trace.NewCollector(1)
	// Two sequential 1-second accesses of 1024 blocks each.
	c.Record(1024, 0, sim.Second)
	c.Record(1024, sim.Second, 2*sim.Second)
	g := trace.Gather(c)
	m := Compute(g, 2048*trace.BlockSize, 3*sim.Second)

	if m.Ops != 2 || m.Blocks != 2048 {
		t.Fatalf("Ops=%d Blocks=%d", m.Ops, m.Blocks)
	}
	if m.IOTime != 2*sim.Second {
		t.Fatalf("IOTime = %v", m.IOTime)
	}
	if got := m.BPS(); math.Abs(got-1024) > 1e-9 {
		t.Fatalf("BPS = %v, want 1024", got)
	}
	if got := m.IOPS(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("IOPS = %v, want 1", got)
	}
	if got := m.Bandwidth(); math.Abs(got-1024*512) > 1e-6 {
		t.Fatalf("BW = %v", got)
	}
	if got := m.ARPT(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ARPT = %v, want 1s", got)
	}
}

// TestPaperFig1a reproduces the paper's Fig. 1(a) IOPS critique: two
// small requests served in 2T have the same IOPS as one merged request
// served in T, yet the merged case is twice as fast overall — and BPS
// tells them apart.
func TestPaperFig1a(t *testing.T) {
	const T = sim.Second
	const blocks = 100

	left := trace.NewCollector(1)
	left.Record(blocks, 0, T)
	left.Record(blocks, T, 2*T)
	mLeft := Compute(trace.Gather(left), 2*blocks*trace.BlockSize, 2*T)

	right := trace.NewCollector(1)
	right.Record(2*blocks, 0, T)
	mRight := Compute(trace.Gather(right), 2*blocks*trace.BlockSize, T)

	if mLeft.IOPS() != mRight.IOPS() {
		t.Fatalf("IOPS should not distinguish the cases: %v vs %v", mLeft.IOPS(), mRight.IOPS())
	}
	if !(mRight.BPS() > mLeft.BPS()) {
		t.Fatalf("BPS must prefer the merged case: left=%v right=%v", mLeft.BPS(), mRight.BPS())
	}
	if mRight.BPS() != 2*mLeft.BPS() {
		t.Fatalf("merged case should double BPS: %v vs %v", mRight.BPS(), mLeft.BPS())
	}
}

// TestPaperFig1b reproduces Fig. 1(b): extra data movement raises BW but
// not BPS when the application-visible time is unchanged.
func TestPaperFig1b(t *testing.T) {
	const T = sim.Second
	const appBytes = 100 * trace.BlockSize

	plain := trace.NewCollector(1)
	plain.Record(100, 0, T)
	plain.Record(100, T, 2*T)
	mPlain := Compute(trace.Gather(plain), 2*appBytes, 2*T)

	extra := trace.NewCollector(1)
	extra.Record(100, 0, T)
	extra.Record(100, T, 2*T)
	// Same required data and time, but the I/O stack moved twice as much.
	mExtra := Compute(trace.Gather(extra), 4*appBytes, 2*T)

	if !(mExtra.Bandwidth() > mPlain.Bandwidth()) {
		t.Fatal("BW should rise with extra movement")
	}
	if mExtra.BPS() != mPlain.BPS() {
		t.Fatalf("BPS must not rise with extra movement: %v vs %v", mExtra.BPS(), mPlain.BPS())
	}
}

// TestPaperFig1c reproduces Fig. 1(c): sequential vs concurrent requests
// have equal ARPT, but BPS rewards the concurrency.
func TestPaperFig1c(t *testing.T) {
	const T = sim.Second

	seq := trace.NewCollector(1)
	seq.Record(100, 0, T)
	seq.Record(100, T, 2*T)
	mSeq := Compute(trace.Gather(seq), 200*trace.BlockSize, 2*T)

	conc := trace.NewCollector(1)
	conc.Record(100, 0, T)
	conc.Record(100, 0, T) // concurrent
	mConc := Compute(trace.Gather(conc), 200*trace.BlockSize, T)

	if mSeq.ARPT() != mConc.ARPT() {
		t.Fatalf("ARPT should not distinguish: %v vs %v", mSeq.ARPT(), mConc.ARPT())
	}
	if mConc.BPS() != 2*mSeq.BPS() {
		t.Fatalf("BPS must reward concurrency: seq=%v conc=%v", mSeq.BPS(), mConc.BPS())
	}
}

func TestMetricsEmptyRun(t *testing.T) {
	m := Compute(trace.Gather(), 0, 0)
	for _, k := range Kinds {
		if v := m.Value(k); v != 0 || math.IsNaN(v) {
			t.Errorf("%v on empty run = %v, want 0", k, v)
		}
	}
}

func TestMetricsValueDispatch(t *testing.T) {
	c := trace.NewCollector(1)
	c.Record(512, 0, sim.Second)
	m := Compute(trace.Gather(c), 512*trace.BlockSize, sim.Second)
	if m.Value(IOPS) != m.IOPS() || m.Value(BW) != m.Bandwidth() ||
		m.Value(ARPT) != m.ARPT() || m.Value(BPS) != m.BPS() {
		t.Fatal("Value dispatch disagrees with direct methods")
	}
	defer func() {
		if recover() == nil {
			t.Error("Value of unknown kind did not panic")
		}
	}()
	m.Value(MetricKind(42))
}

// TestFailedAccessesCountInB pins §III.A: non-successful accesses are
// counted in B like any other.
func TestFailedAccessesCountInB(t *testing.T) {
	c := trace.NewCollector(1)
	c.Record(100, 0, sim.Second)            // success
	c.Record(100, sim.Second, 2*sim.Second) // failed access, still recorded
	m := Compute(trace.Gather(c), 100*trace.BlockSize, 2*sim.Second)
	if m.Blocks != 200 {
		t.Fatalf("B = %d, want 200 (failed ops count)", m.Blocks)
	}
}
