package core

import (
	"fmt"

	"bps/internal/sim"
	"bps/internal/trace"
)

// MetricKind identifies one of the four I/O metrics the paper compares.
type MetricKind int

// The metrics under comparison (paper §II and Table 1).
const (
	IOPS MetricKind = iota // I/O operations per second
	BW                     // bandwidth: actually-moved bytes per second
	ARPT                   // average response time per request
	BPS                    // blocks per second (the paper's contribution)
)

// Kinds lists all metric kinds in the paper's presentation order.
var Kinds = []MetricKind{IOPS, BW, ARPT, BPS}

// String implements fmt.Stringer.
func (k MetricKind) String() string {
	switch k {
	case IOPS:
		return "IOPS"
	case BW:
		return "BW"
	case ARPT:
		return "ARPT"
	case BPS:
		return "BPS"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Direction is the expected correlation direction between a metric and
// application execution time.
type Direction int

// Correlation directions (paper Table 1).
const (
	Negative Direction = -1 // metric improves as execution time shrinks
	Positive Direction = +1 // metric grows with execution time
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Negative {
		return "negative"
	}
	return "positive"
}

// ExpectedDirection returns the paper's Table 1 entry for the metric:
// higher IOPS, BW, and BPS should mean shorter execution time (negative
// CC); higher response time should mean longer execution time (positive
// CC).
func (k MetricKind) ExpectedDirection() Direction {
	if k == ARPT {
		return Positive
	}
	return Negative
}

// Metrics holds everything measured for one run, from which all four
// metric values are derived.
type Metrics struct {
	Ops        int64    // number of application I/O accesses (N)
	Blocks     int64    // B: application-required 512-byte blocks
	MovedBytes int64    // M: bytes actually moved at the file-system level
	IOTime     sim.Time // T: overlapped I/O time (OverlapTime)
	SumRespt   sim.Time // Σ per-access response times
	ExecTime   sim.Time // application execution time (overall performance)
}

// Compute derives the per-run measurements from a gathered trace, the
// file-system-level moved-byte count, and the application execution time.
func Compute(g *trace.Global, movedBytes int64, execTime sim.Time) Metrics {
	recs := g.Records()
	return Metrics{
		Ops:        int64(len(recs)),
		Blocks:     g.TotalBlocks(),
		MovedBytes: movedBytes,
		IOTime:     OverlapTime(recs),
		SumRespt:   SumTime(recs),
		ExecTime:   execTime,
	}
}

// BPS returns blocks per second: B / T (paper equation 1).
func (m Metrics) BPS() float64 {
	return rate(float64(m.Blocks), m.IOTime)
}

// IOPS returns application I/O operations per second of I/O activity.
func (m Metrics) IOPS() float64 {
	return rate(float64(m.Ops), m.IOTime)
}

// Bandwidth returns the file-system-level data rate in bytes per second:
// actually-moved bytes over the overlapped I/O time. Under optimizations
// such as data sieving, MovedBytes exceeds the application-required bytes
// — the divergence the paper's Fig. 12 exploits.
func (m Metrics) Bandwidth() float64 {
	return rate(float64(m.MovedBytes), m.IOTime)
}

// ARPT returns the average response time per request in seconds.
func (m Metrics) ARPT() float64 {
	if m.Ops == 0 {
		return 0
	}
	return m.SumRespt.Seconds() / float64(m.Ops)
}

// Value returns the metric value for a kind, for table-driven evaluation.
func (m Metrics) Value(k MetricKind) float64 {
	switch k {
	case IOPS:
		return m.IOPS()
	case BW:
		return m.Bandwidth()
	case ARPT:
		return m.ARPT()
	case BPS:
		return m.BPS()
	default:
		panic("core: unknown metric kind")
	}
}

// rate divides a count by a simulated duration in seconds, returning 0
// for an empty observation window rather than NaN so that degenerate runs
// stay finite in downstream statistics.
func rate(count float64, t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return count / t.Seconds()
}
