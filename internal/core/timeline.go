package core

import (
	"fmt"

	"bps/internal/sim"
	"bps/internal/trace"
)

// TimelinePoint is the measurement of one fixed window of a run.
type TimelinePoint struct {
	Index int
	Start sim.Time // window start (inclusive)
	End   sim.Time // window end (exclusive)

	Ops    int64    // accesses completed in the window
	Blocks int64    // required blocks of those accesses
	Busy   sim.Time // I/O activity inside the window (overlap union ∩ window)
}

// BPS returns the window's blocks-per-second over its busy time.
func (p TimelinePoint) BPS() float64 { return rate(float64(p.Blocks), p.Busy) }

// IOPS returns the window's completed operations per second of busy time.
func (p TimelinePoint) IOPS() float64 { return rate(float64(p.Ops), p.Busy) }

// Utilization returns the fraction of the window with I/O in flight.
func (p TimelinePoint) Utilization() float64 {
	if p.End <= p.Start {
		return 0
	}
	return float64(p.Busy) / float64(p.End-p.Start)
}

// Timeline slices a run into fixed windows and measures each one,
// turning the single-number BPS into a time series — the paper's
// "easy-to-use toolkit" direction (§V). Completed work is attributed to
// the window containing the access's end time (completion-time
// attribution, like iostat), while busy time is the exact intersection
// of the run's overlap union with each window, so a window's BPS never
// counts concurrent time twice and idle windows report zero.
func Timeline(g *trace.Global, window sim.Time) ([]TimelinePoint, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: timeline window %v must be positive", window)
	}
	records := g.Records()
	if len(records) == 0 {
		return nil, nil
	}

	lo, hi := records[0].Start, records[0].End
	for _, r := range records[1:] {
		if r.Start < lo {
			lo = r.Start
		}
		if r.End > hi {
			hi = r.End
		}
	}
	lo = lo / window * window // align to window grid
	n := int((hi-lo)/window) + 1

	points := make([]TimelinePoint, n)
	for i := range points {
		points[i] = TimelinePoint{
			Index: i,
			Start: lo + sim.Time(i)*window,
			End:   lo + sim.Time(i+1)*window,
		}
	}

	// Completion-time attribution of ops and blocks.
	for _, r := range records {
		w := int((r.End - lo) / window)
		if r.End == points[w].Start && w > 0 {
			w-- // zero-length record exactly on a boundary belongs left
		}
		if w >= n {
			w = n - 1
		}
		points[w].Ops++
		points[w].Blocks += r.Blocks
	}

	// Busy time: merge the union once, then distribute each merged span
	// over the windows it crosses.
	sorted := trace.FromRecords(append([]trace.Record(nil), records...))
	sorted.SortByStart()
	var acc spanCollector
	acc.grid = lo
	acc.window = window
	acc.points = points
	for _, r := range sorted.Records() {
		acc.add(r.Start, r.End)
	}
	acc.flush()
	return points, nil
}

// spanCollector merges sorted intervals and spreads merged spans across
// windows.
type spanCollector struct {
	grid    sim.Time
	window  sim.Time
	points  []TimelinePoint
	cur     Interval
	started bool
}

func (c *spanCollector) add(start, end sim.Time) {
	iv := Interval{Start: start, End: end}
	if !c.started {
		c.cur = iv
		c.started = true
		return
	}
	if c.cur.End < iv.Start {
		c.spread(c.cur)
		c.cur = iv
		return
	}
	if iv.End > c.cur.End {
		c.cur.End = iv.End
	}
}

func (c *spanCollector) flush() {
	if c.started {
		c.spread(c.cur)
		c.started = false
	}
}

// spread adds the span's time to each window it intersects.
func (c *spanCollector) spread(iv Interval) {
	if iv.End <= iv.Start {
		return
	}
	for t := iv.Start; t < iv.End; {
		w := int((t - c.grid) / c.window)
		if w >= len(c.points) {
			break
		}
		winEnd := c.points[w].End
		seg := iv.End
		if seg > winEnd {
			seg = winEnd
		}
		c.points[w].Busy += seg - t
		t = seg
	}
}
