package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bps/internal/sim"
	"bps/internal/trace"
)

func TestTimelineEmptyAndInvalid(t *testing.T) {
	if _, err := Timeline(trace.Gather(), 0); err == nil {
		t.Error("zero window accepted")
	}
	pts, err := Timeline(trace.Gather(), sim.Second)
	if err != nil || pts != nil {
		t.Errorf("empty trace: pts=%v err=%v", pts, err)
	}
}

func TestTimelineBasic(t *testing.T) {
	c := trace.NewCollector(1)
	// Window grid of 1s. Activity: [0.2s,0.7s), idle, [2.1s,2.3s).
	c.Record(100, 200*sim.Millisecond, 700*sim.Millisecond)
	c.Record(50, 2100*sim.Millisecond, 2300*sim.Millisecond)
	pts, err := Timeline(trace.Gather(c), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("windows = %d, want 3", len(pts))
	}
	if pts[0].Ops != 1 || pts[0].Blocks != 100 || pts[0].Busy != 500*sim.Millisecond {
		t.Fatalf("window 0 = %+v", pts[0])
	}
	if pts[1].Ops != 0 || pts[1].Busy != 0 || pts[1].BPS() != 0 {
		t.Fatalf("idle window 1 = %+v", pts[1])
	}
	if pts[2].Ops != 1 || pts[2].Blocks != 50 || pts[2].Busy != 200*sim.Millisecond {
		t.Fatalf("window 2 = %+v", pts[2])
	}
	if u := pts[0].Utilization(); u != 0.5 {
		t.Fatalf("window 0 utilization = %v", u)
	}
	// Window 0 BPS: 100 blocks / 0.5s busy.
	if got := pts[0].BPS(); got != 200 {
		t.Fatalf("window 0 BPS = %v", got)
	}
}

func TestTimelineSpanningRecord(t *testing.T) {
	c := trace.NewCollector(1)
	// One access spanning three windows; completion attribution puts the
	// blocks in the last one, busy time is split exactly.
	c.Record(300, 500*sim.Millisecond, 2500*sim.Millisecond)
	pts, err := Timeline(trace.Gather(c), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("windows = %d", len(pts))
	}
	if pts[0].Blocks != 0 || pts[1].Blocks != 0 || pts[2].Blocks != 300 {
		t.Fatalf("completion attribution wrong: %+v", pts)
	}
	if pts[0].Busy != 500*sim.Millisecond || pts[1].Busy != sim.Second || pts[2].Busy != 500*sim.Millisecond {
		t.Fatalf("busy split wrong: %v %v %v", pts[0].Busy, pts[1].Busy, pts[2].Busy)
	}
}

func TestTimelineConcurrencyCountedOnce(t *testing.T) {
	c := trace.NewCollector(1)
	// Four fully-overlapping accesses in one window.
	for i := 0; i < 4; i++ {
		c.Record(10, 100*sim.Millisecond, 400*sim.Millisecond)
	}
	pts, err := Timeline(trace.Gather(c), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Busy != 300*sim.Millisecond {
		t.Fatalf("busy = %v, concurrent time counted multiply", pts[0].Busy)
	}
	if pts[0].Ops != 4 || pts[0].Blocks != 40 {
		t.Fatalf("ops/blocks = %d/%d", pts[0].Ops, pts[0].Blocks)
	}
}

// Property: window busy times sum to the overlap union, and window
// ops/blocks sum to the totals, for any trace and window size.
func TestTimelineConservationProperty(t *testing.T) {
	prop := func(seed int64, nRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		window := sim.Time(wRaw%200)*sim.Millisecond + 50*sim.Millisecond
		records := make([]trace.Record, n)
		for i := range records {
			start := sim.Time(rng.Int63n(int64(3 * sim.Second)))
			records[i] = trace.Record{
				PID:    1,
				Blocks: rng.Int63n(100) + 1,
				Start:  start,
				End:    start + sim.Time(rng.Int63n(int64(sim.Second))),
			}
		}
		g := trace.FromRecords(records)
		pts, err := Timeline(g, window)
		if err != nil {
			return false
		}
		var busy sim.Time
		var ops, blocks int64
		for _, p := range pts {
			busy += p.Busy
			ops += p.Ops
			blocks += p.Blocks
			if p.Busy < 0 || p.Busy > window {
				return false
			}
		}
		return busy == OverlapTime(records) &&
			ops == int64(len(records)) &&
			blocks == g.TotalBlocks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
