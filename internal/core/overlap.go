// Package core implements the BPS paper's contribution: the overlapped
// I/O-time computation (paper Fig. 3) and the four I/O metrics under
// comparison — IOPS, bandwidth, average response time, and BPS itself —
// computed from gathered trace records.
package core

import (
	"sort"
	"sync"

	"bps/internal/sim"
	"bps/internal/trace"
)

// Interval is a half-open span of simulated time [Start, End).
type Interval struct {
	Start, End sim.Time
}

// Duration returns End−Start, or 0 for inverted intervals.
func (iv Interval) Duration() sim.Time {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// intervalPool recycles the scratch interval slices OverlapTime builds,
// so that sweeps computing T for run after run stop re-allocating (and
// re-growing) the same buffer. A sync.Pool keeps this safe when the
// experiment runner computes metrics on several worker goroutines.
var intervalPool = sync.Pool{
	New: func() interface{} { s := make([]Interval, 0, 1024); return &s },
}

// OverlapTime computes T in the BPS equation: the union ("overlapped
// mode") of all access intervals. Concurrent accesses are counted once
// and idle gaps are excluded, per paper §III.A and Fig. 2. The input
// order does not matter; cost is O(n log n) for the sort plus one linear
// merge pass — the paper's Fig. 3 algorithm. The interval scratch buffer
// is pooled, so steady-state calls allocate nothing.
func OverlapTime(records []trace.Record) sim.Time {
	if len(records) == 0 {
		return 0
	}
	bufp := intervalPool.Get().(*[]Interval)
	ivs := (*bufp)[:0]
	for _, r := range records {
		ivs = append(ivs, Interval{Start: r.Start, End: r.End})
	}
	total := OverlapIntervals(ivs)
	*bufp = ivs[:0]
	intervalPool.Put(bufp)
	return total
}

// OverlapIntervals computes the union length of arbitrary intervals.
// The slice is sorted in place.
func OverlapIntervals(ivs []Interval) sim.Time {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	return overlapSorted(ivs)
}

// overlapSorted is the merge pass of the paper's Fig. 3 algorithm: walk
// records in start order, extending the current merged interval while the
// next record begins before (or exactly when) it ends, otherwise banking
// its duration and starting a new one.
func overlapSorted(ivs []Interval) sim.Time {
	var total sim.Time
	cur := ivs[0]
	for _, next := range ivs[1:] {
		if cur.End < next.Start {
			total += cur.Duration()
			cur = next
			continue
		}
		if next.End > cur.End {
			cur.End = next.End
		}
	}
	return total + cur.Duration()
}

// SumTime is the naive alternative to OverlapTime: the arithmetic sum of
// every access duration, counting concurrent time multiply. It exists for
// the ablation benchmarks showing why the overlap union matters; ARPT is
// SumTime/N.
func SumTime(records []trace.Record) sim.Time {
	var total sim.Time
	for _, r := range records {
		total += r.Duration()
	}
	return total
}

// Span returns the wall span from the earliest start to the latest end,
// including idle gaps. Together with SumTime it brackets OverlapTime:
//
//	max single duration ≤ OverlapTime ≤ min(Span, SumTime)
func Span(records []trace.Record) sim.Time {
	if len(records) == 0 {
		return 0
	}
	lo, hi := records[0].Start, records[0].End
	for _, r := range records[1:] {
		if r.Start < lo {
			lo = r.Start
		}
		if r.End > hi {
			hi = r.End
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// MergeAccumulator is a streaming form of the Fig. 3 merge pass for
// callers that already produce records sorted by start time (e.g. a
// time-ordered trace file): O(1) memory instead of buffering the whole
// collection.
type MergeAccumulator struct {
	total   sim.Time
	cur     Interval
	started bool
	lastAdd sim.Time
}

// Add feeds the next interval. Intervals must arrive in nondecreasing
// start order; Add panics otherwise, because a silently wrong T would
// invalidate every metric computed from it.
func (m *MergeAccumulator) Add(start, end sim.Time) {
	if m.started && start < m.lastAdd {
		panic("core: MergeAccumulator fed out-of-order interval")
	}
	m.lastAdd = start
	iv := Interval{Start: start, End: end}
	if !m.started {
		m.cur = iv
		m.started = true
		return
	}
	if m.cur.End < iv.Start {
		m.total += m.cur.Duration()
		m.cur = iv
		return
	}
	if iv.End > m.cur.End {
		m.cur.End = iv.End
	}
}

// Total returns the union length of everything added so far.
func (m *MergeAccumulator) Total() sim.Time {
	if !m.started {
		return 0
	}
	return m.total + m.cur.Duration()
}
