package ioreq

import (
	"bps/internal/obs"
	"bps/internal/sim"
)

// CacheConfig parameterizes a client-side shared page cache.
type CacheConfig struct {
	// CapacityBytes is the cache size; <= 0 disables the cache entirely
	// (NewCache returns nil, whose Middleware is a no-op).
	CapacityBytes int64

	// PageSize is the caching granularity (default 64 KiB, one default
	// PFS stripe).
	PageSize int64

	// ReadAhead, when positive, extends sequential cache-missing reads
	// by up to this many bytes beyond the requested range.
	ReadAhead int64

	// MemRate is the cache-hit copy rate in bytes/second (default 5 GB/s).
	MemRate float64

	// HitLatency is the fixed software-path cost paid once per access
	// that hits at least one page (default 1 µs).
	HitLatency sim.Time
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.PageSize <= 0 {
		c.PageSize = 64 << 10
	}
	if c.MemRate <= 0 {
		c.MemRate = 5e9
	}
	if c.HitLatency <= 0 {
		c.HitLatency = sim.Microsecond
	}
	return c
}

// pageKey identifies one cached page across files.
type pageKey struct {
	file string
	page int64
}

// cacheMaxStreams bounds the per-file sequential-cursor table (matching
// the fsim read-ahead tracker): enough for every interleaved client
// stream in the modeled workloads, tiny enough to scan linearly.
const cacheMaxStreams = 64

// cacheStreams tracks per-file sequential read cursors so read-ahead
// fires for each client's stream even when many clients interleave on
// one shared file.
type cacheStreams struct {
	ends []int64
	use  []uint64
	tick uint64
}

// advance reports whether a read at off continues a tracked stream, and
// records end as that stream's new cursor (replacing the least-recently
// advanced cursor when the read starts a new stream).
func (s *cacheStreams) advance(off, end int64) bool {
	s.tick++
	for i, e := range s.ends {
		if e == off {
			s.ends[i], s.use[i] = end, s.tick
			return true
		}
	}
	if len(s.ends) < cacheMaxStreams {
		s.ends = append(s.ends, end)
		s.use = append(s.use, s.tick)
		return false
	}
	victim := 0
	for i := range s.use {
		if s.use[i] < s.use[victim] {
			victim = i
		}
	}
	s.ends[victim], s.use[victim] = end, s.tick
	return false
}

// Cache is a client-side shared page cache with sequential read-ahead —
// the layer the pipeline refactor makes composable: it sits in front of
// the pfs client layer and serves re-read pages at memory speed without
// the pfs package knowing it exists. All clients of one cluster share
// the same Cache value, like compute-node processes sharing a node-local
// page cache; the engine's serialized execution makes the unsynchronized
// sharing deterministic and safe.
//
// Timing model: an access that hits cached pages pays HitLatency plus a
// memory-rate copy of the hit bytes, once. Missing page runs coalesce
// into one downstream sub-request each (keeping the parent request's
// ID), so a partially cached range still reaches storage as few, large
// accesses.
type Cache struct {
	cfg     CacheConfig
	pages   *LRU[pageKey]
	streams map[string]*cacheStreams

	hits      uint64 // requested pages served from cache
	misses    uint64 // requested pages fetched downstream
	raBytes   int64  // bytes fetched beyond the requested ranges
	hitBytes  int64  // bytes served from cache
	missBytes int64  // bytes fetched downstream (read-ahead included)
}

// NewCache builds a shared client cache, or returns nil when the config
// disables it (nil Cache handles are safe: Middleware returns nil, which
// Chain skips).
func NewCache(cfg CacheConfig) *Cache {
	if cfg.CapacityBytes <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	capPages := cfg.CapacityBytes / cfg.PageSize
	if capPages < 1 {
		capPages = 1
	}
	return &Cache{
		cfg:     cfg,
		pages:   NewLRU[pageKey](capPages),
		streams: make(map[string]*cacheStreams),
	}
}

// Middleware returns the cache as a wrapper for a pipeline serving a
// file of fileSize bytes. The cache itself is shared across every
// pipeline it wraps; fileSize only bounds read-ahead.
func (c *Cache) Middleware(fileSize int64) Middleware {
	if c == nil {
		return nil
	}
	return func(next Layer) Layer {
		return &cacheLayer{c: c, next: next, size: fileSize}
	}
}

// Hits returns the number of requested pages served from cache.
func (c *Cache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits
}

// Misses returns the number of requested pages fetched downstream.
func (c *Cache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c == nil || c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// ReadAheadBytes returns the bytes fetched beyond requested ranges.
func (c *Cache) ReadAheadBytes() int64 {
	if c == nil {
		return 0
	}
	return c.raBytes
}

// cacheLayer binds the shared cache to one file's pipeline.
type cacheLayer struct {
	c    *Cache
	next Layer
	size int64
}

// Serve implements Layer.
func (l *cacheLayer) Serve(p *sim.Proc, req *Request) error {
	c := l.c
	if req.Op == OpWrite {
		// Write-through: the write pays full downstream cost, then the
		// written pages are cache-resident for later readers.
		if err := l.next.Serve(p, req); err != nil {
			return err
		}
		c.insertRange(req.File, req.Off, req.End())
		return nil
	}

	off, end := req.Off, req.End()
	fetchEnd := end
	seq := c.streamFor(req.File).advance(off, end)
	if c.cfg.ReadAhead > 0 && (seq || off == 0) && !c.allCached(req.File, off, end) {
		fetchEnd = end + c.cfg.ReadAhead
		if fetchEnd > l.size {
			fetchEnd = l.size
		}
	}

	ps := c.cfg.PageSize
	first, last := off/ps, (fetchEnd-1)/ps
	lastReq := (end - 1) / ps
	var hitBytes int64
	missStart := int64(-1)

	// flush coalesces the pending miss run [missStart, endPage) into one
	// downstream sub-request and marks its pages resident.
	flush := func(endPage int64) error {
		if missStart < 0 {
			return nil
		}
		start := missStart
		missStart = -1
		lo, hi := start*ps, endPage*ps
		if hi > l.size {
			hi = l.size
		}
		if err := l.next.Serve(p, req.Child(lo, hi-lo)); err != nil {
			return err
		}
		c.missBytes += hi - lo
		for pg := start; pg < endPage; pg++ {
			c.pages.Insert(pageKey{req.File, pg})
		}
		return nil
	}

	for pg := first; pg <= last; pg++ {
		if c.pages.Lookup(pageKey{req.File, pg}) {
			if err := flush(pg); err != nil {
				return err
			}
			if pg <= lastReq {
				c.hits++
				hitBytes += overlap(pg*ps, (pg+1)*ps, off, end)
			}
		} else {
			if missStart < 0 {
				missStart = pg
			}
			if pg <= lastReq {
				c.misses++
			}
		}
	}
	if err := flush(last + 1); err != nil {
		return err
	}
	if fetchEnd > end {
		c.raBytes += fetchEnd - end
	}
	if hitBytes > 0 {
		c.hitBytes += hitBytes
		var sp obs.Span
		if o := obs.Get(p.Engine()); o.Spanning() {
			var args map[string]any
			if o.Tracing() {
				args = map[string]any{"bytes": hitBytes}
			}
			sp = o.Begin(p, "cache", "hit", args)
		}
		p.Sleep(c.cfg.HitLatency + sim.TransferTime(hitBytes, c.cfg.MemRate))
		sp.End()
	}
	return nil
}

// streamFor returns the file's sequential-cursor table, creating it on
// first use.
func (c *Cache) streamFor(file string) *cacheStreams {
	s, ok := c.streams[file]
	if !ok {
		s = &cacheStreams{}
		c.streams[file] = s
	}
	return s
}

// allCached reports whether every page of [off, end) is resident,
// without touching recency or counters.
func (c *Cache) allCached(file string, off, end int64) bool {
	ps := c.cfg.PageSize
	for pg := off / ps; pg <= (end-1)/ps; pg++ {
		if !c.pages.Contains(pageKey{file, pg}) {
			return false
		}
	}
	return true
}

// insertRange marks every page overlapping [off, end) resident.
func (c *Cache) insertRange(file string, off, end int64) {
	ps := c.cfg.PageSize
	for pg := off / ps; pg <= (end-1)/ps; pg++ {
		c.pages.Insert(pageKey{file, pg})
	}
}

// overlap returns the byte overlap of [alo, ahi) and [blo, bhi).
func overlap(alo, ahi, blo, bhi int64) int64 {
	if blo > alo {
		alo = blo
	}
	if bhi < ahi {
		ahi = bhi
	}
	if ahi <= alo {
		return 0
	}
	return ahi - alo
}
