// Package ioreq defines the unified request path of the simulated I/O
// stack: one Request struct describing an application-required access
// and one Layer interface that every storage layer speaks, from the
// middleware down to the device. Layers compose http.Handler-style via
// Middleware wrappers, so cross-cutting concerns — trace spans, fault
// injection, retries, stats, caching — are written once and chained in
// front of any terminal layer instead of being re-woven by hand inside
// each package.
//
// The package is timing-neutral by construction: building a Request or
// threading it through wrappers never advances simulated time. Only the
// layers that model real work (devices, network legs, caches) sleep.
package ioreq

import (
	"fmt"

	"bps/internal/sim"
)

// Op is a request operation.
type Op int

const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// ParseOp parses the wire spelling of an operation ("read"/"write",
// accepting the "r"/"w" shorthand trace formats use).
func ParseOp(s string) (Op, error) {
	switch s {
	case "read", "r", "R":
		return OpRead, nil
	case "write", "w", "W":
		return OpWrite, nil
	}
	return OpRead, fmt.Errorf("ioreq: unknown op %q (read, write)", s)
}

// Request describes one access travelling down the layer pipeline. A
// logical application call allocates one Request; layers that split it
// (striping, sieving, cache miss runs) derive sub-requests via Child,
// which keep the parent's identity so trace spans thread end to end.
type Request struct {
	Op   Op
	Off  int64
	Size int64

	// PID is the originating application process ID (the trace PID), or
	// -1 when the access is not attributable to a single application
	// process (collective aggregators, replication traffic, tests).
	PID int64

	// ID is the engine-unique request identifier. Every sub-request and
	// retry of one logical access carries the same ID; the observability
	// layer stamps it on each span opened while the request is in flight.
	ID uint64

	// File is the target file identity; Stripe is the stripe position a
	// striping layer routed a sub-request to (-1 until set).
	File   string
	Stripe int

	// Attempt counts delivery attempts (0 = first try); recovery layers
	// increment it on retry.
	Attempt int

	// Deadline, when nonzero, is the absolute simulated time after which
	// the issuer abandons the current attempt.
	Deadline sim.Time

	// Tenant is the owning tenant's identifier in multi-tenant runs, ""
	// for single-tenant workloads. The QoS admission layer stamps it at
	// the top of the pipeline; Child keeps it, so every sub-request and
	// span of a tenant's access carries the tenant identity end to end.
	Tenant string

	// Tags carries optional cross-layer annotations; nil until first use.
	Tags map[string]string
}

// IDSource allocates unique request identifiers. Both *sim.Engine and
// *sim.Proc satisfy it; issuing layers should pass the proc so IDs come
// from the proc's own domain namespace — in classic runs that is the
// engine counter (byte-identical), in sharded runs it keeps allocation
// race-free and independent of cross-domain interleaving.
type IDSource interface {
	NextRequestID() uint64
}

// New builds a request against file with a fresh unique ID.
func New(ids IDSource, op Op, off, size int64, file string) *Request {
	return &Request{
		Op:     op,
		Off:    off,
		Size:   size,
		PID:    -1,
		ID:     ids.NextRequestID(),
		File:   file,
		Stripe: -1,
	}
}

// Child returns a copy of r covering [off, off+size) that keeps the
// parent's identity (ID, PID, file, attempt, deadline, tags). Layers
// that decompose a request pass children downstream.
func (r *Request) Child(off, size int64) *Request {
	c := *r
	c.Off, c.Size = off, size
	return &c
}

// End returns the exclusive end offset of the request.
func (r *Request) End() int64 { return r.Off + r.Size }

// Validate checks the request range against a file of fileSize bytes.
func (r *Request) Validate(fileSize int64) error {
	if r.Size <= 0 {
		return fmt.Errorf("ioreq: %s size %d must be positive", r.Op, r.Size)
	}
	if r.Off < 0 || r.End() > fileSize {
		return fmt.Errorf("ioreq: %s [%d, %d) out of bounds (file size %d)",
			r.Op, r.Off, r.End(), fileSize)
	}
	return nil
}

// SetTag annotates the request, allocating the tag map on first use.
func (r *Request) SetTag(k, v string) {
	if r.Tags == nil {
		r.Tags = make(map[string]string, 1)
	}
	r.Tags[k] = v
}

// Tag returns the annotation for k ("" when absent).
func (r *Request) Tag(k string) string { return r.Tags[k] }

// TraceID is the observability hook: obs.Begin checks the calling
// proc's context (sim.Proc.Ctx) for this method and, when present, adds
// a "req" argument to every span it opens — the thread that stitches
// one logical access's spans across layers.
func (r *Request) TraceID() uint64 { return r.ID }

// TenantID is the multi-tenant observability hook, the tenant-identity
// counterpart of TraceID: obs.Begin adds a "tenant" argument to spans
// opened while a tenant-owned request is in flight. "" (single-tenant
// workloads) adds nothing, keeping existing traces byte-identical.
func (r *Request) TenantID() string { return r.Tenant }

// Layer is one stage of the I/O path. Serve runs req to completion on
// behalf of proc p, advancing simulated time as the modeled work
// requires, and returns the request's outcome.
type Layer interface {
	Serve(p *sim.Proc, req *Request) error
}

// Func adapts a function to a Layer.
type Func func(p *sim.Proc, req *Request) error

// Serve implements Layer.
func (f Func) Serve(p *sim.Proc, req *Request) error { return f(p, req) }

// Middleware wraps a Layer with a cross-cutting concern.
type Middleware func(Layer) Layer

// Chain wraps l with the given middlewares. The first middleware
// becomes the outermost layer, so Chain(l, a, b) serves a → b → l.
// Nil middlewares are skipped, so optional layers compose without
// branching at the call site.
func Chain(l Layer, mws ...Middleware) Layer {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			l = mws[i](l)
		}
	}
	return l
}
