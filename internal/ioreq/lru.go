package ioreq

import "container/list"

// LRU is a least-recently-used presence set, lifted from the fsim page
// cache so every caching layer shares one implementation. It tracks
// presence only: the simulator never stores data, just the timing
// consequences of hits and misses.
type LRU[K comparable] struct {
	capacity int64
	lru      *list.List          // front = most recent; values are keys
	index    map[K]*list.Element // key → node
	hits     uint64
	misses   uint64
}

// NewLRU builds an LRU holding at most capacity keys (minimum 1).
func NewLRU[K comparable](capacity int64) *LRU[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K]{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Lookup reports whether k is cached, updating recency and counters.
func (c *LRU[K]) Lookup(k K) bool {
	if el, ok := c.index[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports presence without touching recency or counters.
func (c *LRU[K]) Contains(k K) bool {
	_, ok := c.index[k]
	return ok
}

// Insert adds k (or refreshes it), evicting the least-recently-used key
// when over capacity.
func (c *LRU[K]) Insert(k K) {
	if el, ok := c.index[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.index[k] = c.lru.PushFront(k)
	for int64(c.lru.Len()) > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(K))
	}
}

// Reset drops every key but keeps the hit/miss counters: they are
// cumulative across flushes, like kernel counters.
func (c *LRU[K]) Reset() {
	c.lru.Init()
	c.index = make(map[K]*list.Element)
}

// Len returns the number of cached keys.
func (c *LRU[K]) Len() int { return c.lru.Len() }

// Hits returns the cumulative lookup hit count.
func (c *LRU[K]) Hits() uint64 { return c.hits }

// Misses returns the cumulative lookup miss count.
func (c *LRU[K]) Misses() uint64 { return c.misses }
