package ioreq

import (
	"errors"
	"testing"

	"bps/internal/obs"
	"bps/internal/sim"
)

// runProc runs body inside one simulated process to completion.
func runProc(t *testing.T, e *sim.Engine, body func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChainOrderSkipsNil(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next Layer) Layer {
			return Func(func(p *sim.Proc, req *Request) error {
				order = append(order, name)
				return next.Serve(p, req)
			})
		}
	}
	base := Func(func(p *sim.Proc, req *Request) error {
		order = append(order, "base")
		return nil
	})
	l := Chain(base, mw("a"), nil, mw("b"))
	if err := l.Serve(nil, &Request{}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "base"}
	if len(order) != len(want) {
		t.Fatalf("serve order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("serve order %v, want %v", order, want)
		}
	}
}

func TestRequestIdentity(t *testing.T) {
	e := sim.NewEngine(1)
	r1 := New(e, OpRead, 0, 100, "f")
	r2 := New(e, OpWrite, 0, 100, "f")
	if r1.ID == 0 || r2.ID != r1.ID+1 {
		t.Fatalf("request IDs %d, %d: want fresh monotonic IDs", r1.ID, r2.ID)
	}
	if r1.PID != -1 || r1.Stripe != -1 {
		t.Fatalf("defaults PID=%d Stripe=%d, want -1/-1", r1.PID, r1.Stripe)
	}
	r1.PID = 7
	r1.SetTag("k", "v")
	c := r1.Child(64, 32)
	if c.ID != r1.ID || c.PID != 7 || c.File != "f" || c.Tag("k") != "v" {
		t.Fatalf("child lost identity: %+v", c)
	}
	if c.Off != 64 || c.Size != 32 || c.End() != 96 {
		t.Fatalf("child range [%d,%d)", c.Off, c.End())
	}
	if r1.Off != 0 || r1.Size != 100 {
		t.Fatalf("child mutated parent: %+v", r1)
	}
}

func TestRequestValidate(t *testing.T) {
	r := &Request{Op: OpRead, Off: 0, Size: 100}
	if err := r.Validate(100); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Request{
		{Op: OpRead, Off: 0, Size: 0},
		{Op: OpRead, Off: -1, Size: 10},
		{Op: OpWrite, Off: 96, Size: 10},
	} {
		if err := bad.Validate(100); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

func TestLRUEvictionAndCounters(t *testing.T) {
	c := NewLRU[int](2)
	c.Insert(1)
	c.Insert(2)
	if !c.Lookup(1) { // 1 becomes most recent
		t.Fatal("missing key 1")
	}
	c.Insert(3) // evicts 2
	if c.Contains(2) {
		t.Fatal("LRU kept the least-recent key")
	}
	if !c.Contains(1) || !c.Contains(3) || c.Len() != 2 {
		t.Fatalf("unexpected contents, len=%d", c.Len())
	}
	if c.Lookup(2) {
		t.Fatal("evicted key still hits")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	c.Reset()
	if c.Len() != 0 || c.Hits() != 1 {
		t.Fatal("Reset must drop keys but keep counters")
	}
}

func TestRetryRecoversAndGivesUp(t *testing.T) {
	e := sim.NewEngine(1)
	failErr := errors.New("transient")
	var fails int
	var attempts []int
	flaky := Func(func(p *sim.Proc, req *Request) error {
		attempts = append(attempts, req.Attempt)
		if fails > 0 {
			fails--
			return failErr
		}
		return nil
	})
	l := Chain(flaky, Retry(e, RetryConfig{MaxRetries: 3}))
	runProc(t, e, func(p *sim.Proc) {
		fails = 2
		start := p.Now()
		if err := l.Serve(p, &Request{Op: OpRead, Size: 1}); err != nil {
			t.Errorf("retry did not recover: %v", err)
		}
		if p.Now() == start {
			t.Error("retries slept no backoff time")
		}
		if len(attempts) != 3 || attempts[2] != 2 {
			t.Errorf("attempts = %v, want [0 1 2]", attempts)
		}

		attempts = nil
		fails = 10 // more than the budget
		if err := l.Serve(p, &Request{Op: OpRead, Size: 1}); !errors.Is(err, failErr) {
			t.Errorf("exhausted retry returned %v, want the layer error", err)
		}
		if len(attempts) != 4 { // first try + MaxRetries
			t.Errorf("exhausted retry made %d attempts, want 4", len(attempts))
		}
	})
}

func TestRetryIfFiltersErrors(t *testing.T) {
	e := sim.NewEngine(1)
	fatal := errors.New("fatal")
	var calls int
	l := Chain(
		Func(func(p *sim.Proc, req *Request) error { calls++; return fatal }),
		Retry(e, RetryConfig{MaxRetries: 3, RetryIf: func(err error) bool { return !errors.Is(err, fatal) }}),
	)
	runProc(t, e, func(p *sim.Proc) {
		if err := l.Serve(p, &Request{}); !errors.Is(err, fatal) {
			t.Errorf("err = %v", err)
		}
	})
	if calls != 1 {
		t.Fatalf("non-retryable error was tried %d times, want 1", calls)
	}
}

func TestStatsCountsIntoRegistry(t *testing.T) {
	e := sim.NewEngine(1)
	ob := obs.Attach(e, obs.Options{})
	boom := errors.New("boom")
	var fail bool
	l := Chain(
		Func(func(p *sim.Proc, req *Request) error {
			if fail {
				return boom
			}
			return nil
		}),
		Stats(e, "ioreq/test"),
	)
	runProc(t, e, func(p *sim.Proc) {
		_ = l.Serve(p, &Request{Op: OpRead, Size: 100})
		fail = true
		_ = l.Serve(p, &Request{Op: OpRead, Size: 28})
	})
	reg := ob.Registry()
	if v := reg.Counter("ioreq/test/requests").Value(); v != 2 {
		t.Fatalf("requests = %d, want 2", v)
	}
	if v := reg.Counter("ioreq/test/bytes").Value(); v != 128 {
		t.Fatalf("bytes = %d, want 128", v)
	}
	if v := reg.Counter("ioreq/test/errors").Value(); v != 1 {
		t.Fatalf("errors = %d, want 1", v)
	}
}

func TestTraceSpansCarryRequestID(t *testing.T) {
	e := sim.NewEngine(1)
	ob := obs.Attach(e, obs.Options{ChromeTrace: true})
	inner := Chain(
		Func(func(p *sim.Proc, req *Request) error { p.Sleep(sim.Microsecond); return nil }),
		Trace(e, "test", "inner"),
	)
	l := Chain(inner, Trace(e, "test", "outer"))
	var id uint64
	runProc(t, e, func(p *sim.Proc) {
		req := New(e, OpRead, 0, 4096, "f")
		id = req.ID
		prev := p.Ctx()
		p.SetCtx(req)
		defer p.SetCtx(prev)
		if err := l.Serve(p, req); err != nil {
			t.Error(err)
		}
	})
	var spans int
	for _, ev := range ob.TraceBuffer().Events() {
		if ev.Cat != "test" {
			continue
		}
		spans++
		if got, ok := ev.Args["req"].(uint64); !ok || got != id {
			t.Fatalf("span %q args = %v, want req=%d", ev.Name, ev.Args, id)
		}
		if ev.Args["op"] != "read" || ev.Args["size"] != int64(4096) {
			t.Fatalf("span %q args = %v", ev.Name, ev.Args)
		}
	}
	if spans != 2 {
		t.Fatalf("recorded %d spans, want outer+inner", spans)
	}
}
