package ioreq

import (
	"bps/internal/obs"
	"bps/internal/sim"
)

// Trace returns a middleware that opens one Chrome-trace span per
// request under category cat with the given span name, carrying the
// request's op, offset and size. The observability layer adds the
// threading "req" argument from the proc's request context, so the span
// joins the access's end-to-end span chain. On an uninstrumented engine
// the middleware is free of allocations and side effects.
func Trace(e *sim.Engine, cat, name string) Middleware {
	o := obs.Get(e)
	return func(next Layer) Layer {
		return Func(func(p *sim.Proc, req *Request) error {
			if !o.Spanning() {
				return next.Serve(p, req)
			}
			var args map[string]any
			if o.Tracing() {
				args = map[string]any{
					"op":     req.Op.String(),
					"offset": req.Off,
					"size":   req.Size,
				}
			}
			sp := o.Begin(p, cat, name, args)
			err := next.Serve(p, req)
			sp.End()
			return err
		})
	}
}

// Stats returns a middleware counting requests, bytes and errors into
// the engine's metrics registry under prefix (e.g. "ioreq/clientcache").
// All handles are nil-safe, so the middleware costs nothing on an
// uninstrumented engine.
func Stats(e *sim.Engine, prefix string) Middleware {
	reg := obs.Get(e).Registry()
	requests := reg.Counter(prefix + "/requests")
	bytes := reg.Counter(prefix + "/bytes")
	errs := reg.Counter(prefix + "/errors")
	return func(next Layer) Layer {
		return Func(func(p *sim.Proc, req *Request) error {
			requests.Inc()
			bytes.Add(req.Size)
			err := next.Serve(p, req)
			if err != nil {
				errs.Inc()
			}
			return err
		})
	}
}

// RetryConfig parameterizes the generic Retry middleware: a bounded
// capped-exponential-backoff retry loop for layer stacks that have no
// specialized recovery. (The pfs client keeps its own timeout/failover
// state machine — Retry is for the simple cases, e.g. a faulty local
// device behind a workload.)
type RetryConfig struct {
	// MaxRetries bounds retries after the first attempt (default 3).
	MaxRetries int
	// Backoff is the initial retry delay (default 1 ms), doubling per
	// retry up to MaxBackoff (default 16 ms), plus engine-RNG jitter.
	Backoff    sim.Time
	MaxBackoff sim.Time
	// RetryIf filters retryable errors; nil retries every error.
	RetryIf func(error) bool
}

// Retry returns a middleware that re-serves failed requests with capped
// exponential backoff, bumping req.Attempt on each try. The jitter draw
// comes from the serving proc's RNG, keeping simulated runs
// seed-deterministic (on a classic engine that is the engine RNG) while
// staying race-free when concurrent live workers share one stack.
func Retry(e *sim.Engine, cfg RetryConfig) Middleware {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = sim.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * sim.Millisecond
	}
	return func(next Layer) Layer {
		return Func(func(p *sim.Proc, req *Request) error {
			backoff := cfg.Backoff
			for attempt := 0; ; attempt++ {
				req.Attempt = attempt
				err := next.Serve(p, req)
				if err == nil || attempt >= cfg.MaxRetries {
					return err
				}
				if cfg.RetryIf != nil && !cfg.RetryIf(err) {
					return err
				}
				jitter := sim.Time(p.Rand().Int63n(int64(backoff)/2 + 1))
				p.Sleep(backoff + jitter)
				if backoff *= 2; backoff > cfg.MaxBackoff {
					backoff = cfg.MaxBackoff
				}
			}
		})
	}
}
