package ioreq

import (
	"testing"

	"bps/internal/sim"
)

const testPage = 4096

// recordingLayer captures the sub-requests a cache emits downstream.
type recordingLayer struct {
	reqs []*Request
}

func (r *recordingLayer) Serve(p *sim.Proc, req *Request) error {
	r.reqs = append(r.reqs, req)
	return nil
}

// cacheSetup wires a cache over a recording layer for a fileSize-byte
// file and runs body in a simulated process.
func cacheSetup(t *testing.T, cfg CacheConfig, fileSize int64, body func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer)) {
	t.Helper()
	e := sim.NewEngine(1)
	rec := &recordingLayer{}
	c := NewCache(cfg)
	if c == nil {
		t.Fatal("cache disabled by config")
	}
	l := Chain(rec, c.Middleware(fileSize))
	runProc(t, e, func(p *sim.Proc) { body(p, l, c, rec) })
}

func TestCacheDisabled(t *testing.T) {
	if c := NewCache(CacheConfig{}); c != nil {
		t.Fatal("zero config must disable the cache")
	}
	var c *Cache
	if c.Middleware(1<<20) != nil {
		t.Fatal("nil cache Middleware must be nil (skipped by Chain)")
	}
	if c.Hits() != 0 || c.Misses() != 0 || c.HitRate() != 0 || c.ReadAheadBytes() != 0 {
		t.Fatal("nil cache accessors must return zero")
	}
}

func TestCacheHitAvoidsDownstream(t *testing.T) {
	cfg := CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage}
	cacheSetup(t, cfg, 1<<20, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		if err := l.Serve(p, New(e, OpRead, testPage, 2*testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 || rec.reqs[0].Off != testPage || rec.reqs[0].Size != 2*testPage {
			t.Fatalf("cold read forwarded %+v, want one exact fetch", rec.reqs)
		}
		before := p.Now()
		if err := l.Serve(p, New(e, OpRead, testPage, 2*testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 {
			t.Fatalf("warm re-read went downstream: %+v", rec.reqs[1:])
		}
		if p.Now() <= before {
			t.Fatal("cache hit paid no memory-copy time")
		}
		if c.Hits() != 2 || c.Misses() != 2 {
			t.Fatalf("hits/misses = %d/%d, want 2/2", c.Hits(), c.Misses())
		}
		if c.HitRate() != 0.5 {
			t.Fatalf("hit rate = %v, want 0.5", c.HitRate())
		}
	})
}

func TestCacheCoalescesMissRuns(t *testing.T) {
	cfg := CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage}
	cacheSetup(t, cfg, 1<<20, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		// Warm page 1 only, then read pages 0–2: the two missing pages
		// sit on either side of the cached one, so the cache must issue
		// exactly two one-page fetches, not three or one.
		if err := l.Serve(p, New(e, OpRead, testPage, testPage, "f")); err != nil {
			t.Fatal(err)
		}
		rec.reqs = nil
		req := New(e, OpRead, 0, 3*testPage, "f")
		if err := l.Serve(p, req); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 2 {
			t.Fatalf("downstream fetches = %+v, want 2 coalesced runs", rec.reqs)
		}
		if rec.reqs[0].Off != 0 || rec.reqs[0].Size != testPage {
			t.Fatalf("first run = [%d,%d)", rec.reqs[0].Off, rec.reqs[0].End())
		}
		if rec.reqs[1].Off != 2*testPage || rec.reqs[1].Size != testPage {
			t.Fatalf("second run = [%d,%d)", rec.reqs[1].Off, rec.reqs[1].End())
		}
		// Sub-requests keep the parent's identity.
		for _, sub := range rec.reqs {
			if sub.ID != req.ID {
				t.Fatalf("sub-request ID %d, parent %d", sub.ID, req.ID)
			}
		}
	})
}

func TestCacheReadAheadClampsAtEOF(t *testing.T) {
	fileSize := int64(4 * testPage)
	cfg := CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage, ReadAhead: 8 * testPage}
	cacheSetup(t, cfg, fileSize, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		// A read starting at offset 0 triggers read-ahead, clamped to EOF.
		if err := l.Serve(p, New(e, OpRead, 0, testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 || rec.reqs[0].Off != 0 || rec.reqs[0].Size != fileSize {
			t.Fatalf("fetch = %+v, want one whole-file fetch", rec.reqs)
		}
		if c.ReadAheadBytes() != fileSize-testPage {
			t.Fatalf("readahead bytes = %d, want %d", c.ReadAheadBytes(), fileSize-testPage)
		}
		// The read-ahead pages now serve sequential follow-ups from cache.
		rec.reqs = nil
		for off := int64(testPage); off < fileSize; off += testPage {
			if err := l.Serve(p, New(e, OpRead, off, testPage, "f")); err != nil {
				t.Fatal(err)
			}
		}
		if len(rec.reqs) != 0 {
			t.Fatalf("prefetched reads went downstream: %+v", rec.reqs)
		}
	})
}

func TestCacheRandomReadSkipsReadAhead(t *testing.T) {
	cfg := CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage, ReadAhead: 8 * testPage}
	cacheSetup(t, cfg, 1<<20, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		// A non-sequential read away from offset 0 must not read ahead.
		if err := l.Serve(p, New(e, OpRead, 100*testPage, testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 || rec.reqs[0].Size != testPage {
			t.Fatalf("random read fetched %+v, want exact size", rec.reqs)
		}
		// Continuing that stream is sequential: read-ahead kicks in.
		if err := l.Serve(p, New(e, OpRead, 101*testPage, testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if got := rec.reqs[1].Size; got != 9*testPage {
			t.Fatalf("sequential continuation fetched %d bytes, want demand+readahead", got)
		}
	})
}

func TestCacheWriteThrough(t *testing.T) {
	cfg := CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage}
	cacheSetup(t, cfg, 1<<20, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		if err := l.Serve(p, New(e, OpWrite, 0, 2*testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 || rec.reqs[0].Op != OpWrite || rec.reqs[0].Size != 2*testPage {
			t.Fatalf("write forwarded as %+v, want full write-through", rec.reqs)
		}
		rec.reqs = nil
		if err := l.Serve(p, New(e, OpRead, 0, 2*testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 0 {
			t.Fatal("read after write-through went downstream")
		}
	})
}

func TestCacheEvictionBoundsResidency(t *testing.T) {
	cfg := CacheConfig{CapacityBytes: 2 * testPage, PageSize: testPage}
	cacheSetup(t, cfg, 1<<20, func(p *sim.Proc, l Layer, c *Cache, rec *recordingLayer) {
		e := p.Engine()
		for pg := int64(0); pg < 4; pg++ {
			if err := l.Serve(p, New(e, OpRead, pg*testPage, testPage, "f")); err != nil {
				t.Fatal(err)
			}
		}
		rec.reqs = nil
		// Page 0 was evicted by pages 2 and 3; re-reading it must miss.
		if err := l.Serve(p, New(e, OpRead, 0, testPage, "f")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 1 {
			t.Fatal("evicted page still served from cache")
		}
	})
}

func TestCacheSharedAcrossPipelines(t *testing.T) {
	// One Cache wrapping two files' pipelines: pages are keyed by file,
	// so the same offsets do not collide.
	e := sim.NewEngine(1)
	rec := &recordingLayer{}
	c := NewCache(CacheConfig{CapacityBytes: 64 * testPage, PageSize: testPage})
	la := Chain(rec, c.Middleware(1<<20))
	lb := Chain(rec, c.Middleware(1<<20))
	runProc(t, e, func(p *sim.Proc) {
		if err := la.Serve(p, New(e, OpRead, 0, testPage, "a")); err != nil {
			t.Fatal(err)
		}
		if err := lb.Serve(p, New(e, OpRead, 0, testPage, "b")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 2 {
			t.Fatalf("distinct files shared pages: %+v", rec.reqs)
		}
		rec.reqs = nil
		if err := la.Serve(p, New(e, OpRead, 0, testPage, "a")); err != nil {
			t.Fatal(err)
		}
		if len(rec.reqs) != 0 {
			t.Fatal("shared cache missed a page it cached via the other pipeline")
		}
	})
}
