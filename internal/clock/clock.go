// Package clock provides the Timeline sources a measurement run can
// tell time through. A simulated run's timeline is its engine; a live
// run's timeline is either the wall clock (real measurements on real
// hardware) or a deterministic virtual lane per worker (reproducible
// figures on the in-memory backend). All downstream consumers — trace
// records, the attrib window estimator, core.Compute — are pure over
// the sim.Time values a timeline hands out, so the same metric stack
// serves all three without modification.
package clock

import (
	"time"

	"bps/internal/sim"
)

// Timeline is any source of current time on some timeline. *sim.Engine
// satisfies it (simulated time), as do Wall and VirtualLane below.
type Timeline = sim.TimeSource

// Sim returns the timeline of a simulation engine: its own clock.
func Sim(e *sim.Engine) Timeline { return e }

// Wall is a live timeline anchored at an origin instant: Now reports
// nanoseconds elapsed since the origin, and Sleep blocks for real. One
// Wall is shared by all workers of a live run so their timestamps are
// mutually comparable — it is safe for concurrent use.
type Wall struct {
	origin time.Time
}

// NewWall returns a wall-clock timeline anchored at the current instant.
func NewWall() *Wall { return &Wall{origin: time.Now()} }

// Now returns nanoseconds elapsed since the origin.
func (w *Wall) Now() sim.Time { return sim.Time(time.Since(w.origin)) }

// Sleep blocks the calling goroutine for d real nanoseconds.
func (w *Wall) Sleep(d sim.Time) { time.Sleep(time.Duration(d)) }

// VirtualLane is a deterministic per-worker logical clock: Now returns
// the lane's cursor and Sleep advances it without blocking. Giving each
// live worker its own lane makes every timestamp a pure function of the
// workload and the cost model — independent of goroutine interleaving —
// which is what lets the in-memory backend produce byte-identical
// pinned figures. A lane must only be used by its own worker.
type VirtualLane struct {
	cur sim.Time
}

// NewVirtualLane returns a lane whose cursor starts at start.
func NewVirtualLane(start sim.Time) *VirtualLane { return &VirtualLane{cur: start} }

// Now returns the lane's cursor.
func (v *VirtualLane) Now() sim.Time { return v.cur }

// Sleep advances the cursor by d without blocking.
func (v *VirtualLane) Sleep(d sim.Time) {
	if d < 0 {
		panic("clock: negative sleep")
	}
	v.cur += d
}

// CostModel charges deterministic virtual time for live operations: a
// fixed per-op overhead plus size-proportional transfer time. It is the
// virtual counterpart of a simulated device's service time, applied by
// the live driver so VirtualLane runs accumulate meaningful, stable
// durations instead of zero-width accesses.
type CostModel struct {
	PerOp       sim.Time // fixed cost charged per operation
	BytesPerSec float64  // transfer rate; <=0 means no size-dependent cost
}

// Cost returns the virtual duration of an operation moving n bytes.
func (m CostModel) Cost(n int64) sim.Time {
	d := m.PerOp
	if m.BytesPerSec > 0 && n > 0 {
		d += sim.TransferTime(n, m.BytesPerSec)
	}
	return d
}
