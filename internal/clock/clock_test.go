package clock

import (
	"testing"

	"bps/internal/sim"
)

func TestVirtualLane(t *testing.T) {
	v := NewVirtualLane(0)
	if v.Now() != 0 {
		t.Fatalf("fresh lane Now = %v", v.Now())
	}
	v.Sleep(3 * sim.Millisecond)
	v.Sleep(0)
	if v.Now() != 3*sim.Millisecond {
		t.Fatalf("Now = %v, want 3ms", v.Now())
	}
	v2 := NewVirtualLane(sim.Second)
	if v2.Now() != sim.Second {
		t.Fatalf("lane with start offset: Now = %v", v2.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("negative Sleep did not panic")
		}
	}()
	v.Sleep(-1)
}

func TestWall(t *testing.T) {
	w := NewWall()
	a := w.Now()
	if a < 0 {
		t.Fatalf("wall Now went backwards from the origin: %v", a)
	}
	w.Sleep(2 * sim.Millisecond)
	b := w.Now()
	if b-a < 2*sim.Millisecond {
		t.Fatalf("Sleep(2ms) advanced only %v", b-a)
	}
	// Monotone and comparable across the shared instance.
	if c := w.Now(); c < b {
		t.Fatalf("wall time regressed: %v then %v", b, c)
	}
}

func TestSimTimeline(t *testing.T) {
	e := sim.NewEngine(1)
	var tl Timeline = Sim(e)
	if tl.Now() != 0 {
		t.Fatalf("sim timeline Now = %v", tl.Now())
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{PerOp: 100 * sim.Microsecond, BytesPerSec: 1e6} // 1 MB/s
	if got := m.Cost(0); got != 100*sim.Microsecond {
		t.Fatalf("Cost(0) = %v, want the per-op cost alone", got)
	}
	// 1e6 bytes at 1 MB/s = 1 s, plus the per-op cost.
	if got, want := m.Cost(1_000_000), sim.Second+100*sim.Microsecond; got != want {
		t.Fatalf("Cost(1MB) = %v, want %v", got, want)
	}
	// Zero rate charges only the per-op cost regardless of size.
	m2 := CostModel{PerOp: 5 * sim.Microsecond}
	if got := m2.Cost(1 << 30); got != 5*sim.Microsecond {
		t.Fatalf("rate-less Cost = %v, want 5µs", got)
	}
}
