package netsim

import (
	"testing"
	"testing/quick"

	"bps/internal/sim"
)

func TestTransferTimeComponents(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, Config{Bandwidth: 1e6, Latency: sim.Millisecond, MTU: 1 << 20, FrameOverhead: 0})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	var took sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		f.Transfer(p, a, b, 1e6) // 1 MB at 1 MB/s: 1 s per side
		took = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*sim.Second + sim.Millisecond // tx + rx serialization + latency
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
	if a.Sent() != 1e6 || b.Received() != 1e6 {
		t.Fatalf("counters: sent=%d received=%d", a.Sent(), b.Received())
	}
}

func TestZeroAndLoopbackTransfers(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, DefaultGigabit())
	a := f.NewNIC("a")
	e.Spawn("p", func(p *sim.Proc) {
		f.Transfer(p, a, a, 4096) // loopback: cheap
		f.Transfer(p, a, a, 0)    // zero bytes: free
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() >= sim.Millisecond {
		t.Fatalf("loopback transfers took %v", e.Now())
	}
	if a.Sent() != 0 {
		t.Fatalf("loopback counted as sent: %d", a.Sent())
	}
}

func TestReceiverContention(t *testing.T) {
	// Two senders to one receiver must serialize on the receiver's rx NIC.
	run := func(nsenders int) sim.Time {
		e := sim.NewEngine(1)
		f := NewFabric(e, Config{Bandwidth: 1e6, Latency: 0, MTU: 1 << 20})
		dst := f.NewNIC("server")
		for i := 0; i < nsenders; i++ {
			src := f.NewNIC("client")
			e.Spawn("send", func(p *sim.Proc) {
				f.Transfer(p, src, dst, 1e6)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one, two := run(1), run(2)
	// With independent tx sides, both messages arrive at the switch after
	// 1 s; the shared rx side then clocks them in sequentially.
	if two != one+sim.Second {
		t.Fatalf("2 senders %v, want %v (rx serialization)", two, one+sim.Second)
	}
}

func TestFrameOverhead(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, Config{Bandwidth: 1e9, Latency: 0, MTU: 1000, FrameOverhead: sim.Microsecond})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	e.Spawn("p", func(p *sim.Proc) {
		f.Transfer(p, a, b, 10_000) // 10 frames
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialization: 10 µs data + 10 µs frame overhead, both sides.
	want := 2 * (10*sim.Microsecond + 10*sim.Microsecond)
	if e.Now() != want {
		t.Fatalf("took %v, want %v", e.Now(), want)
	}
}

func TestNICBusyAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, Config{Bandwidth: 1e6, Latency: sim.Millisecond, MTU: 1 << 20})
	a, b := f.NewNIC("a"), f.NewNIC("b")
	e.Spawn("p", func(p *sim.Proc) {
		f.Transfer(p, a, b, 500_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.TxBusy() != 500*sim.Millisecond || b.RxBusy() != 500*sim.Millisecond {
		t.Fatalf("busy: tx=%v rx=%v, want 500ms each", a.TxBusy(), b.RxBusy())
	}
}

func TestBackplaneContention(t *testing.T) {
	// Two simultaneous 1 MB transfers between disjoint NIC pairs: with an
	// infinite backplane they finish together; with a 1 MB/s backplane the
	// second queues behind the first for the backplane stage.
	run := func(backplane float64) sim.Time {
		e := sim.NewEngine(1)
		f := NewFabric(e, Config{Bandwidth: 1e9, Latency: 0, MTU: 1 << 20, BackplaneRate: backplane})
		for i := 0; i < 2; i++ {
			src, dst := f.NewNIC("s"), f.NewNIC("d")
			e.Spawn("xfer", func(p *sim.Proc) {
				f.Transfer(p, src, dst, 1e6)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	free, limited := run(0), run(1e6)
	if limited < free+sim.Second {
		t.Fatalf("backplane-limited run %v vs free %v: no serialization", limited, free)
	}
}

// Validation: sustained one-way traffic from a single synchronous sender
// approaches half the line rate (store-and-forward pays tx then rx),
// while two overlapping senders to distinct receivers pipeline back up
// to the line rate per path.
func TestSustainedThroughputModel(t *testing.T) {
	const msg = 1 << 20
	const count = 64
	run := func(nstreams int) sim.Time {
		e := sim.NewEngine(1)
		f := NewFabric(e, Config{Bandwidth: 100e6, Latency: 0, MTU: 1 << 20})
		for s := 0; s < nstreams; s++ {
			src, dst := f.NewNIC("s"), f.NewNIC("d")
			e.Spawn("stream", func(p *sim.Proc) {
				for i := 0; i < count; i++ {
					f.Transfer(p, src, dst, msg)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	oneStream := run(1)
	perStream := float64(count*msg) / oneStream.Seconds()
	if perStream < 45e6 || perStream > 55e6 {
		t.Fatalf("single synchronous stream = %.1f MB/s, want ≈ 50 (half line rate)", perStream/1e6)
	}
	// Independent streams don't interfere (separate NIC pairs).
	two := run(2)
	if two != oneStream {
		t.Fatalf("independent streams interfered: %v vs %v", two, oneStream)
	}
}

// Property: transfer time is monotone in message size and zero-size
// transfers are free.
func TestTransferMonotoneProperty(t *testing.T) {
	prop := func(a, b uint32) bool {
		sa, sb := int64(a%(8<<20))+1, int64(b%(8<<20))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		measure := func(size int64) sim.Time {
			e := sim.NewEngine(1)
			f := NewFabric(e, DefaultGigabit())
			src, dst := f.NewNIC("a"), f.NewNIC("b")
			e.Spawn("x", func(p *sim.Proc) { f.Transfer(p, src, dst, size) })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			return e.Now()
		}
		return measure(sa) <= measure(sb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// fixedFaults is a deterministic LinkFaults: every transfer pays the
// given retransmissions and delay.
type fixedFaults struct {
	retransmits int
	delay       sim.Time
}

func (f fixedFaults) Perturb(int64) (int, sim.Time) { return f.retransmits, f.delay }

// TestLinkFaultsExtendTransfer pins the fault hook's timing model: one
// retransmission doubles the tx serialization (the rx side clocks the
// surviving copy once), and a delay is added to the switch latency.
func TestLinkFaultsExtendTransfer(t *testing.T) {
	run := func(lf LinkFaults) sim.Time {
		e := sim.NewEngine(1)
		f := NewFabric(e, Config{Bandwidth: 1e6, Latency: sim.Millisecond, MTU: 1 << 20})
		if lf != nil {
			f.SetFaults(lf)
		}
		a, b := f.NewNIC("a"), f.NewNIC("b")
		e.Spawn("p", func(p *sim.Proc) {
			f.Transfer(p, a, b, 1e6) // 1 s serialization per side
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	healthy := run(nil)
	if clean := run(fixedFaults{}); clean != healthy {
		t.Fatalf("no-op faults changed timing: %v vs %v", clean, healthy)
	}
	if dropped := run(fixedFaults{retransmits: 1}); dropped != healthy+sim.Second {
		t.Fatalf("1 retransmit: %v, want %v", dropped, healthy+sim.Second)
	}
	if delayed := run(fixedFaults{delay: 5 * sim.Millisecond}); delayed != healthy+5*sim.Millisecond {
		t.Fatalf("5ms delay: %v, want %v", delayed, healthy+5*sim.Millisecond)
	}
}
