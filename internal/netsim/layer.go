package netsim

import (
	"bps/internal/ioreq"
	"bps/internal/sim"
)

// TransferLayer adapts one fabric leg (src → dst) into an ioreq layer:
// a request's Size bytes travel the leg, paying the fabric's latency,
// bandwidth and MTU segmentation costs. Compose it in front of a remote
// terminal layer to model the wire hop of a request path explicitly.
func TransferLayer(f *Fabric, src, dst *NIC) ioreq.Layer {
	return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
		f.Transfer(p, src, dst, req.Size)
		return nil
	})
}
