// Package netsim models a switched cluster interconnect (the BPS paper's
// Gigabit Ethernet) at the level that matters for I/O experiments: each
// node has a full-duplex NIC whose transmit and receive sides serialize
// traffic at line rate, and the switch adds fixed latency. Contention at a
// busy I/O server therefore shows up as queueing on that server's receive
// and transmit NIC resources.
package netsim

import (
	"bps/internal/obs"
	"bps/internal/sim"
)

// Config parameterizes a network fabric.
type Config struct {
	// Bandwidth is the per-NIC line rate in bytes/second.
	// Gigabit Ethernet ≈ 125e6.
	Bandwidth float64

	// Latency is the one-way propagation plus switching delay.
	Latency sim.Time

	// MTU splits large transfers into frames for pipelining granularity;
	// a transfer of n bytes pays per-frame overhead FrameOverhead on top
	// of serialization. Default 9000 (jumbo frames), overhead 1 µs.
	MTU           int64
	FrameOverhead sim.Time

	// BackplaneRate, when positive, models a finite switch backplane:
	// every transfer additionally serializes through a single shared
	// resource at this rate (bytes/second). Under high aggregate load the
	// backplane queues, which is how concurrent streams perturb each
	// other's response times even when they touch disjoint servers.
	BackplaneRate float64
}

// DefaultGigabit returns a Gigabit Ethernet fabric like the paper's
// testbed interconnect.
func DefaultGigabit() Config {
	return Config{
		Bandwidth:     125e6,
		Latency:       50 * sim.Microsecond,
		MTU:           9000,
		FrameOverhead: sim.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	if c.Bandwidth <= 0 {
		c.Bandwidth = 125e6
	}
	if c.MTU <= 0 {
		c.MTU = 9000
	}
	return c
}

// LinkFaults lets a fault plan perturb individual transfers. Perturb is
// consulted once per non-loopback transfer and returns how many extra
// retransmissions the transfer pays (each one full serialization pass
// through the sender's NIC) and how much extra switch delay it suffers.
// Implementations live outside this package (internal/faults) so netsim
// carries no fault-model dependency; a nil LinkFaults leaves Transfer's
// code path exactly as it was.
type LinkFaults interface {
	Perturb(size int64) (retransmits int, delay sim.Time)
}

// LinkFaultsBySource extends LinkFaults for sharded engines: one global
// Perturb stream would make a transfer's perturbation depend on the
// global interleaving of transfers, which concurrent domains neither
// have nor want. ForSource returns an independent deterministic stream
// for the named sending NIC; the fabric caches one per NIC. A sharded
// run with faults requires this interface.
type LinkFaultsBySource interface {
	LinkFaults
	ForSource(name string) LinkFaults
}

// Fabric is a switched network connecting NICs.
type Fabric struct {
	eng       *sim.Engine
	cfg       Config
	backplane *sim.Resource // nil when BackplaneRate is 0
	faults    LinkFaults    // nil = healthy network

	// Observability handles; all nil-safe when the engine is unobserved.
	o           *obs.Observer
	transfers   *obs.Counter
	bytes       *obs.Counter
	transferNS  *obs.Histogram
	retransmits *obs.Counter
	faultDelay  *obs.Counter // accumulated injected delay, ns
}

// NewFabric constructs a fabric on the engine. On a sharded engine the
// fabric registers its link latency as the engine's conservative
// lookahead: the switch delay is the minimum time any cross-domain
// interaction takes, which is exactly what bounds a safe parallel
// window.
func NewFabric(e *sim.Engine, cfg Config) *Fabric {
	f := &Fabric{eng: e, cfg: cfg.withDefaults()}
	if e.Sharded() {
		if f.cfg.Latency <= 0 {
			panic("netsim: sharded engines need a positive link latency (it is the synchronization lookahead)")
		}
		e.SetLookahead(f.cfg.Latency)
	}
	if f.cfg.BackplaneRate > 0 {
		f.backplane = e.NewResource("switch.backplane", 1)
	}
	f.o = obs.Get(e)
	reg := f.o.Registry()
	f.transfers = reg.Counter("net/fabric/transfers")
	f.bytes = reg.Counter("net/fabric/bytes")
	f.transferNS = reg.Histogram("net/fabric/transfer_ns")
	f.retransmits = reg.Counter("net/fabric/retransmits")
	f.faultDelay = reg.Counter("net/fabric/fault_delay_ns")
	if f.backplane != nil && reg != nil {
		bp := f.backplane
		reg.Probe("net/backplane/utilization", func() float64 { return bp.Utilization(e.Now()) })
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetFaults installs (or, with nil, removes) the fabric's link-fault
// model. Call before the simulation starts: changing it mid-run would
// make results depend on installation order.
func (f *Fabric) SetFaults(lf LinkFaults) { f.faults = lf }

// NIC is one node's network interface: independent transmit and receive
// resources, each serializing at line rate. A NIC belongs to the domain
// that was current at NewNIC; on a sharded engine its receive side is an
// event-driven serializer (see deliver) instead of a blocking resource,
// so inbound frames need no extra goroutine per NIC.
type NIC struct {
	fabric *Fabric
	name   string
	dom    int
	tx     *sim.Resource
	rx     *sim.Resource

	sent, received int64 // bytes

	// Sharded receive-side state: rxFree is when the receive side next
	// goes idle, rxBusy the accumulated busy time; lf is the cached
	// per-source fault stream used when this NIC transmits.
	rxFree sim.Time
	rxBusy sim.Time
	lf     LinkFaults
}

// NewNIC attaches a new NIC to the fabric, bound to the engine's current
// construction domain.
func (f *Fabric) NewNIC(name string) *NIC {
	n := &NIC{
		fabric: f,
		name:   name,
		dom:    f.eng.CurrentDomain(),
		tx:     f.eng.NewResource(name+".tx", 1),
		rx:     f.eng.NewResource(name+".rx", 1),
	}
	if reg := f.o.Registry(); reg != nil {
		e := f.eng
		tx, rx := n.tx, n.rx
		reg.Probe("net/"+name+"/tx_util", func() float64 { return tx.Utilization(e.Now()) })
		reg.Probe("net/"+name+"/rx_util", func() float64 { return rx.Utilization(e.Now()) })
	}
	return n
}

// Name returns the NIC name.
func (n *NIC) Name() string { return n.name }

// Sent returns total bytes transmitted.
func (n *NIC) Sent() int64 { return n.sent }

// Received returns total bytes received.
func (n *NIC) Received() int64 { return n.received }

// TxBusy returns accumulated transmit-side busy time.
func (n *NIC) TxBusy() sim.Time { return n.tx.BusyTime() }

// RxBusy returns accumulated receive-side busy time.
func (n *NIC) RxBusy() sim.Time { return n.rx.BusyTime() + n.rxBusy }

// Domain returns the id of the domain the NIC belongs to.
func (n *NIC) Domain() int { return n.dom }

// serialization returns the time to clock size bytes through one NIC side,
// including per-frame overhead.
func (f *Fabric) serialization(size int64) sim.Time {
	frames := (size + f.cfg.MTU - 1) / f.cfg.MTU
	if frames < 1 {
		frames = 1
	}
	return sim.TransferTime(size, f.cfg.Bandwidth) + sim.Time(frames)*f.cfg.FrameOverhead
}

// Transfer moves size bytes from NIC src to NIC dst, blocking the calling
// process until the last byte has been received. The model is
// store-and-forward through the switch: the sender's tx side serializes
// the message, the switch adds latency, and the receiver's rx side clocks
// it in; both NIC sides are contended resources.
func (f *Fabric) Transfer(p *sim.Proc, src, dst *NIC, size int64) {
	if size <= 0 {
		return
	}
	if src == dst {
		// Loopback: no NIC involvement, just a memory-speed hop.
		p.Sleep(f.cfg.Latency / 10)
		return
	}
	var sp obs.Span
	if f.o.Tracing() {
		sp = f.o.Begin(p, "net", src.name+"->"+dst.name, map[string]any{"bytes": size})
	} else if f.o.Spanning() {
		sp = f.o.Begin(p, "net", "transfer", nil)
	}
	start := f.eng.Now()
	ser := f.serialization(size)

	// A dropped transfer retransmits: the sender serializes the whole
	// message again while holding its tx side; an injected delay is paid
	// in the switch alongside the propagation latency.
	txSer, extraDelay := ser, sim.Time(0)
	if f.faults != nil {
		rt, d := f.faults.Perturb(size)
		if rt > 0 {
			txSer += sim.Time(rt) * ser
			f.retransmits.Add(int64(rt))
		}
		if d > 0 {
			extraDelay = d
			f.faultDelay.Add(int64(d))
		}
	}

	src.tx.Acquire(p)
	p.Sleep(txSer)
	src.tx.Release()
	src.sent += size

	if f.backplane != nil {
		f.backplane.Acquire(p)
		p.Sleep(sim.TransferTime(size, f.cfg.BackplaneRate))
		f.backplane.Release()
	}
	p.Sleep(f.cfg.Latency + extraDelay)

	dst.rx.Acquire(p)
	p.Sleep(ser)
	dst.rx.Release()
	dst.received += size

	f.transfers.Add(1)
	f.bytes.Add(size)
	f.transferNS.Observe(int64(f.eng.Now() - start))
	sp.End()
}

// Send moves size bytes from src to dst and runs delivered when the last
// byte has been clocked through dst's receive side. It is the
// shard-aware transfer primitive:
//
//   - Classic engine: exactly Transfer followed by delivered in the
//     calling process — byte-identical to the historical inline pattern
//     (Transfer; act-on-receiver).
//   - Sharded engine: the caller pays the transmit serialization and the
//     (contention-free) backplane delay in its own domain, then the
//     frame is posted to dst's domain, where the receive side serializes
//     it event-driven in FIFO arrival order. delivered runs in dst's
//     domain and must not block (enqueue work or complete a future;
//     spawn via the Ctx-free helpers if a blocking continuation is
//     needed). The caller returns after transmit, not delivery — in
//     sharded mode RPC-style blocking is built from Send plus a reply
//     Send completing a Future.
func (f *Fabric) Send(p *sim.Proc, src, dst *NIC, size int64, delivered func()) {
	if size <= 0 {
		if delivered != nil {
			delivered()
		}
		return
	}
	if !f.eng.Sharded() || src == dst {
		// Loopback never crosses a domain boundary, so the classic path
		// is exact in both modes.
		f.Transfer(p, src, dst, size)
		if delivered != nil {
			delivered()
		}
		return
	}

	start := p.Now()
	ser := f.serialization(size)
	txSer, extraDelay := ser, sim.Time(0)
	if lf := f.faultsFor(src); lf != nil {
		rt, d := lf.Perturb(size)
		if rt > 0 {
			txSer += sim.Time(rt) * ser
			f.retransmits.Add(int64(rt))
		}
		if d > 0 {
			extraDelay = d
			f.faultDelay.Add(int64(d))
		}
	}

	src.tx.Acquire(p)
	p.Sleep(txSer)
	src.tx.Release()
	src.sent += size

	// A finite backplane is modeled as pure added delay here: the classic
	// engine's single shared backplane resource is a zero-lookahead
	// global coupling no conservative schedule can run in parallel.
	if f.cfg.BackplaneRate > 0 {
		p.Sleep(sim.TransferTime(size, f.cfg.BackplaneRate))
	}

	at := p.Now() + f.cfg.Latency + extraDelay
	p.Post(dst.dom, at, func(dc sim.Ctx) {
		begin := dc.Now()
		if dst.rxFree > begin {
			begin = dst.rxFree
		}
		done := begin + ser
		dst.rxFree = done
		dst.rxBusy += ser
		dc.At(done, func(dc sim.Ctx) {
			dst.received += size
			f.transfers.Add(1)
			f.bytes.Add(size)
			f.transferNS.Observe(int64(dc.Now() - start))
			if delivered != nil {
				delivered()
			}
		})
	})
}

// faultsFor returns the link-fault stream a transfer from src should
// consult: the shared model classically, a cached per-source stream on a
// sharded engine.
func (f *Fabric) faultsFor(src *NIC) LinkFaults {
	if f.faults == nil {
		return nil
	}
	if !f.eng.Sharded() {
		return f.faults
	}
	if src.lf == nil {
		bs, ok := f.faults.(LinkFaultsBySource)
		if !ok {
			panic("netsim: sharded engines need per-source link faults (LinkFaultsBySource)")
		}
		src.lf = bs.ForSource(src.name)
	}
	return src.lf
}
