package obs

import (
	"encoding/json"
	"io"
	"strconv"

	"bps/internal/sim"
)

// Chrome trace-event phases used by the exporter (a subset of the
// Trace Event Format that Perfetto and chrome://tracing accept).
const (
	PhaseComplete = "X" // a span with ts + dur
	PhaseCounter  = "C" // a counter sample
	PhaseMetadata = "M" // process/thread naming
)

// Synthetic Chrome process IDs used to group the timeline: all simulator
// activity (device, net, pfs spans and counters) lives under SimPID with
// one thread per simulation process, and application trace records live
// under AppPID with one thread per application PID.
const (
	SimPID = 1
	AppPID = 2
)

// Event is one Chrome trace event. Timestamps and durations are in
// microseconds, per the Trace Event Format; fractional values carry the
// simulator's nanosecond precision.
type Event struct {
	Name  string         `json:"name,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of a Chrome trace.
type TraceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// usOf converts simulated nanoseconds to trace microseconds.
func usOf(t sim.Time) float64 { return float64(t) / 1e3 }

// TraceBuffer accumulates Chrome trace events during a run.
type TraceBuffer struct {
	events  []Event
	tids    map[*sim.Proc]int64
	nextTID int64
	appTIDs map[int64]bool
}

// NewTraceBuffer returns an empty buffer.
func NewTraceBuffer() *TraceBuffer {
	b := &TraceBuffer{tids: make(map[*sim.Proc]int64), appTIDs: make(map[int64]bool)}
	b.events = append(b.events,
		metaEvent(SimPID, 0, "process_name", "sim"),
		metaEvent(AppPID, 0, "process_name", "app"))
	return b
}

func metaEvent(pid, tid int64, name, value string) Event {
	return Event{Name: name, Phase: PhaseMetadata, PID: pid, TID: tid,
		Args: map[string]any{"name": value}}
}

// Len returns the number of buffered events.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Events returns the buffered events.
func (b *TraceBuffer) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}

// tid returns the Chrome thread ID for a simulation process, naming the
// thread on first use.
func (b *TraceBuffer) tid(p *sim.Proc) int64 {
	if id, ok := b.tids[p]; ok {
		return id
	}
	b.nextTID++
	id := b.nextTID
	b.tids[p] = id
	b.events = append(b.events, metaEvent(SimPID, id, "thread_name", p.Name()))
	return id
}

// span opens a complete ("X") event at start with an unresolved
// duration, returning its index.
func (b *TraceBuffer) span(p *sim.Proc, cat, name string, start sim.Time, args map[string]any) int {
	b.events = append(b.events, Event{
		Name: name, Cat: cat, Phase: PhaseComplete,
		TS: usOf(start), PID: SimPID, TID: b.tid(p), Args: args,
	})
	return len(b.events) - 1
}

// counter appends a counter ("C") sample.
func (b *TraceBuffer) counter(name string, at sim.Time, v float64) {
	b.events = append(b.events, Event{
		Name: name, Cat: "counter", Phase: PhaseCounter,
		TS: usOf(at), PID: SimPID,
		Args: map[string]any{"value": v},
	})
}

// AppSpan appends an application-layer access span (one BPS trace
// record) under the "app" process, one thread per application PID.
func (b *TraceBuffer) AppSpan(pid, blocks int64, start, end sim.Time) {
	if b == nil {
		return
	}
	if !b.appTIDs[pid] {
		b.appTIDs[pid] = true
		b.events = append(b.events, metaEvent(AppPID, pid, "thread_name", appThreadName(pid)))
	}
	b.events = append(b.events, Event{
		Name: "access", Cat: "app", Phase: PhaseComplete,
		TS: usOf(start), Dur: usOf(end - start),
		PID: AppPID, TID: pid,
		Args: map[string]any{"blocks": blocks},
	})
}

func appThreadName(pid int64) string { return "pid " + strconv.FormatInt(pid, 10) }

// Write emits the buffer as a Chrome trace-event JSON object, loadable
// in Perfetto or chrome://tracing.
func (b *TraceBuffer) Write(w io.Writer) error {
	f := TraceFile{TraceEvents: b.Events(), DisplayTimeUnit: "ns"}
	if f.TraceEvents == nil {
		f.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Span is a handle to an open trace span; the zero value (from a nil or
// trace-disabled observer) is inert. A span may record into the Chrome
// trace buffer (ok), into the attribution profiler (layer > 0), or both.
type Span struct {
	o     *Observer
	idx   int
	ok    bool
	layer int      // attribution StackOrder index + 1; 0 = none
	start sim.Time // span open time (attribution only)
}

// Active reports whether the span is actually recording — use it to skip
// building argument maps when tracing is off.
func (s Span) Active() bool { return s.ok || s.layer > 0 }

// End closes the span at the current simulated time.
func (s Span) End() {
	if s.o == nil {
		return
	}
	if s.ok {
		ev := &s.o.buf.events[s.idx]
		ev.Dur = usOf(s.o.eng.Now()) - ev.TS
	}
	if s.layer > 0 {
		s.o.attrib.AddSpan(s.layer-1, s.start, s.o.eng.Now())
	}
}
