package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"bps/internal/sim"
)

// TestSamplerSyntheticWorkload drives a known workload — a process that
// increments a counter once per 10 ms for 100 ms — under a 10 ms sampler
// and checks every tick's timestamp and value.
func TestSamplerSyntheticWorkload(t *testing.T) {
	const tick = 10 * sim.Millisecond
	e := sim.NewEngine(1)
	o := Attach(e, Options{SampleEvery: tick})
	c := o.Registry().Counter("test/proc/steps")
	e.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(tick)
			c.Add(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()

	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	sr := o.Sampler().SeriesByName("test/proc/steps")
	if sr == nil {
		t.Fatal("no series for the counter")
	}
	if len(sr.Times) != 10 {
		t.Fatalf("samples = %d, want 10 (times %v)", len(sr.Times), sr.Times)
	}
	for i := range sr.Times {
		wantT := sim.Time(i+1) * tick
		if sr.Times[i] != wantT {
			t.Fatalf("sample %d at %v, want %v", i, sr.Times[i], wantT)
		}
		// The sampler daemon was spawned before the worker, so at each
		// shared timestamp it samples before the worker's increment runs:
		// tick i+1 sees i completed increments.
		if sr.Values[i] != float64(i) {
			t.Fatalf("sample %d = %v, want %v", i, sr.Values[i], float64(i))
		}
	}
}

// TestSamplerNeverExtendsRun checks that the background sampler daemon
// does not keep the calendar alive: the run ends exactly when the last
// foreground event does.
func TestSamplerNeverExtendsRun(t *testing.T) {
	e := sim.NewEngine(1)
	Attach(e, Options{SampleEvery: sim.Millisecond})
	e.Spawn("worker", func(p *sim.Proc) { p.Sleep(7 * sim.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7*sim.Millisecond {
		t.Fatalf("run ended at %v, want 7ms", e.Now())
	}
	e.Shutdown()
}

// TestTraceEventJSONRoundTrip pushes a TraceFile through encoding/json
// and back.
func TestTraceEventJSONRoundTrip(t *testing.T) {
	in := TraceFile{
		DisplayTimeUnit: "ns",
		TraceEvents: []Event{
			{Name: "process_name", Phase: PhaseMetadata, PID: SimPID,
				Args: map[string]any{"name": "sim"}},
			{Name: "hdd read", Cat: "device", Phase: PhaseComplete,
				TS: 1.5, Dur: 42.25, PID: SimPID, TID: 3,
				Args: map[string]any{"size": 4096.0}},
			{Name: "resource in_use", Cat: "counter", Phase: PhaseCounter,
				TS: 2, PID: SimPID, Args: map[string]any{"value": 1.0}},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out TraceFile
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestTraceBufferWrite exercises the span/counter/app paths and checks
// the written JSON decodes with consistent nesting metadata.
func TestTraceBufferWrite(t *testing.T) {
	e := sim.NewEngine(1)
	o := Attach(e, Options{ChromeTrace: true})
	e.Spawn("worker", func(p *sim.Proc) {
		sp := o.Begin(p, "device", "hdd read", map[string]any{"size": 512})
		p.Sleep(3 * sim.Microsecond)
		sp.End()
		o.Counter("queue", 2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	o.AddAppRecord(7, 8, 0, 5*sim.Microsecond)

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("written trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var span, counter, app, threadNames int
	for _, ev := range f.TraceEvents {
		switch {
		case ev.Phase == PhaseComplete && ev.Cat == "device":
			span++
			if ev.Dur != 3 { // 3 µs
				t.Fatalf("span dur = %v µs, want 3", ev.Dur)
			}
		case ev.Phase == PhaseCounter:
			counter++
		case ev.Phase == PhaseComplete && ev.Cat == "app":
			app++
			if ev.PID != AppPID || ev.TID != 7 {
				t.Fatalf("app span on pid/tid %d/%d", ev.PID, ev.TID)
			}
		case ev.Phase == PhaseMetadata && ev.Name == "thread_name":
			threadNames++
		}
	}
	if span != 1 || counter != 1 || app != 1 || threadNames != 2 {
		t.Fatalf("span/counter/app/threads = %d/%d/%d/%d", span, counter, app, threadNames)
	}
}

// TestNilObserver checks the whole nil no-op surface.
func TestNilObserver(t *testing.T) {
	var o *Observer
	if o.Tracing() || o.Registry() != nil || o.Sampler() != nil || o.TraceBuffer() != nil {
		t.Fatal("nil observer reported attached state")
	}
	sp := o.Begin(nil, "device", "x", nil)
	if sp.Active() {
		t.Fatal("nil observer opened a span")
	}
	sp.End()
	o.Counter("x", 1)
	o.AddAppRecord(1, 1, 0, 1)
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil observer trace output = %q", buf.String())
	}
}

// TestGet checks observer discovery through the engine.
func TestGet(t *testing.T) {
	e := sim.NewEngine(1)
	if Get(e) != nil {
		t.Fatal("unobserved engine returned an observer")
	}
	o := Attach(e, Options{})
	if Get(e) != o {
		t.Fatal("Get did not return the attached observer")
	}
}
