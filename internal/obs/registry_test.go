package obs

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// Bucket 0 is the underflow bucket.
	if lo, hi := BucketBounds(0); lo != math.MinInt64 || hi != 0 {
		t.Fatalf("bucket 0 bounds = [%d, %d]", lo, hi)
	}
	// Bucket i (1 ≤ i < 63) holds [2^(i−1), 2^i − 1].
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		if lo != 1<<(i-1) || hi != 1<<i-1 {
			t.Fatalf("bucket %d bounds = [%d, %d], want [%d, %d]",
				i, lo, hi, 1<<(i-1), 1<<i-1)
		}
	}
	// The top bucket absorbs everything up to MaxInt64.
	if lo, hi := BucketBounds(HistBuckets - 1); lo != 1<<62 || hi != math.MaxInt64 {
		t.Fatalf("top bucket bounds = [%d, %d]", lo, hi)
	}

	// Samples land exactly on their bucket's closed range.
	h := &Histogram{}
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		h.Observe(lo)
		h.Observe(hi)
	}
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.MaxInt64)
	for _, b := range h.Buckets() {
		for i := 0; i < HistBuckets; i++ {
			lo, hi := BucketBounds(i)
			if lo == b.Lo && hi == b.Hi {
				goto found
			}
		}
		t.Fatalf("bucket [%d, %d] matches no BucketBounds", b.Lo, b.Hi)
	found:
	}
	if got := h.Buckets()[0]; got.Hi != 0 || got.Count != 2 {
		t.Fatalf("underflow bucket = %+v", got)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<21 - 1, 21}, {math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Fatalf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 || h.Max() != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Mean(); got != 500.5 {
		t.Fatalf("mean = %v", got)
	}
	// Quantiles are bucket upper bounds: p50 of 1..1000 falls in
	// [512, 1023] whose upper bound is clipped to the observed max.
	if q := h.Quantile(0.5); q < 500 || q > 1000 {
		t.Fatalf("p50 = %d", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want max", q)
	}
	if q := h.Quantile(0); q <= 0 {
		t.Fatalf("p0 = %d", q)
	}
}

// TestHistogramQuantileEdges pins Quantile's behavior in the corner
// cases the attribution latency rows rely on: empty histograms, all
// samples in a single bucket, and a saturated top bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	// Empty: every quantile is 0.
	empty := &Histogram{}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single bucket: samples 100..120 all land in [64, 127], so every
	// quantile reports that bucket, clipped to the observed max.
	single := &Histogram{}
	for v := int64(100); v <= 120; v++ {
		single.Observe(v)
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := single.Quantile(q)
		if got < 100 || got > 127 {
			t.Fatalf("single-bucket Quantile(%v) = %d, want within [100,127]", q, got)
		}
	}
	if got := single.Quantile(1); got != 120 {
		t.Fatalf("single-bucket p100 = %d, want observed max 120", got)
	}

	// Saturated top bucket: huge samples hit bucket HistBuckets-1 whose
	// upper bound is MaxInt64; the result must clip to the observed max
	// instead of reporting an absurd bound.
	sat := &Histogram{}
	sat.Observe(math.MaxInt64)
	sat.Observe(1 << 62)
	for _, q := range []float64{0.5, 1} {
		if got := sat.Quantile(q); got != math.MaxInt64 {
			t.Fatalf("saturated Quantile(%v) = %d, want max %d", q, got, int64(math.MaxInt64))
		}
	}
	sat2 := &Histogram{}
	sat2.Observe(1<<62 + 5)
	if got := sat2.Quantile(0.5); got != 1<<62+5 {
		t.Fatalf("saturated Quantile(0.5) = %d, want observed max %d", got, int64(1<<62+5))
	}

	// Out-of-range q clips rather than panicking.
	if single.Quantile(-1) != single.Quantile(0) || single.Quantile(2) != single.Quantile(1) {
		t.Fatal("out-of-range q not clipped")
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("x")
	h.Observe(7)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	r.Probe("x", func() float64 { return 1 })
	if r.Counters() != nil || r.Gauges() != nil || r.Histograms() != nil || r.Probes() != nil {
		t.Fatal("nil registry returned sources")
	}
	if r.StartSampler(nil, 0) != nil {
		t.Fatal("nil registry started a sampler")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("layer/comp/metric")
	b := r.Counter("layer/comp/metric")
	if a != b {
		t.Fatal("same name gave distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("handles not shared")
	}
	r.Counter("z")
	r.Counter("a")
	cs := r.Counters()
	if len(cs) != 3 || cs[0].Name() != "a" || cs[2].Name() != "z" {
		t.Fatalf("counters not sorted: %v", []string{cs[0].Name(), cs[1].Name(), cs[2].Name()})
	}
}
