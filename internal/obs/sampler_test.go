package obs

import (
	"testing"

	"bps/internal/sim"
)

// TestSamplerFinishCoversTail: the daemon's pending tick after the last
// foreground event never fires, so without Finish the series stop one
// interval early. Finish takes the final sample at run end.
func TestSamplerFinishCoversTail(t *testing.T) {
	const tick = 2 * sim.Millisecond
	e := sim.NewEngine(1)
	o := Attach(e, Options{SampleEvery: tick})
	c := o.Registry().Counter("test/tail/steps")
	e.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(7 * sim.Millisecond)
		c.Add(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()

	sr := o.Sampler().SeriesByName("test/tail/steps")
	if sr == nil {
		t.Fatal("no series")
	}
	// Ticks at 2, 4, 6 ms; the 8 ms tick is past run end and never fires.
	if got := len(sr.Times); got != 3 {
		t.Fatalf("pre-finish samples = %d (times %v), want 3", got, sr.Times)
	}
	if sr.Values[2] != 0 {
		t.Fatalf("tick at 6ms saw %v increments, want 0", sr.Values[2])
	}

	o.FinishSampling()
	if got := len(sr.Times); got != 4 {
		t.Fatalf("post-finish samples = %d (times %v), want 4", got, sr.Times)
	}
	if sr.Times[3] != 7*sim.Millisecond || sr.Values[3] != 1 {
		t.Fatalf("final sample = (%v, %v), want (7ms, 1)", sr.Times[3], sr.Values[3])
	}

	// Finish is idempotent: a second call at the same time adds nothing.
	o.FinishSampling()
	if got := len(sr.Times); got != 4 {
		t.Fatalf("repeated finish grew the series to %d points", got)
	}
}

// TestSamplerGapFill: a sample arriving more than one interval after
// the previous one gets carry-forward filler points at the sampling
// interval, so every series stays continuous through quiet stretches.
func TestSamplerGapFill(t *testing.T) {
	const tick = 2 * sim.Millisecond
	e := sim.NewEngine(1)
	r := NewRegistry()
	s := r.StartSampler(e, tick)
	g := r.Gauge("test/gap/value")

	g.Set(5)
	s.sample(2 * sim.Millisecond)
	g.Set(9)
	s.sample(11 * sim.Millisecond) // 9 ms of silence: fillers at 4, 6, 8, 10

	sr := s.SeriesByName("test/gap/value")
	if sr == nil {
		t.Fatal("no series")
	}
	wantTimes := []sim.Time{2, 4, 6, 8, 10, 11}
	wantVals := []float64{5, 5, 5, 5, 5, 9}
	if len(sr.Times) != len(wantTimes) {
		t.Fatalf("samples = %d (times %v), want %d", len(sr.Times), sr.Times, len(wantTimes))
	}
	for i := range wantTimes {
		if sr.Times[i] != wantTimes[i]*sim.Millisecond || sr.Values[i] != wantVals[i] {
			t.Fatalf("sample %d = (%v, %v), want (%v, %v)",
				i, sr.Times[i], sr.Values[i], wantTimes[i]*sim.Millisecond, wantVals[i])
		}
	}
}

// TestSamplerFinishNilSafe: nil observers and samplers absorb Finish.
func TestSamplerFinishNilSafe(t *testing.T) {
	var o *Observer
	o.FinishSampling() // must not panic
	var s *Sampler
	s.Finish(5) // must not panic
	e := sim.NewEngine(1)
	unsampled := Attach(e, Options{})
	unsampled.FinishSampling() // sampler disabled: no-op
}
