package ingest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bps/internal/ioreq"
	"bps/internal/sim"
)

// sampleLog builds a small two-rank, three-file log with out-of-order
// segment arrival, matching counters included.
func sampleLog() *Log {
	l := &Log{Segments: []Segment{
		{Rank: 1, File: "/data/b", Op: ioreq.OpRead, Offset: 0, Length: 4096, Start: 0.5, End: 0.51},
		{Rank: 0, File: "/data/a", Op: ioreq.OpRead, Offset: 0, Length: 8192, Start: 0.5, End: 0.52},
		{Rank: 0, File: "/data/a", Op: ioreq.OpRead, Offset: 8192, Length: 8192, Start: 0.53, End: 0.54},
		{Rank: 0, File: "/data/out", Op: ioreq.OpWrite, Offset: 0, Length: 512, Start: 0.55, End: 0.551},
	}}
	l.SynthesizeCounters()
	return l
}

func TestValidateAcceptsConsistentLog(t *testing.T) {
	if err := sampleLog().Validate(); err != nil {
		t.Fatalf("consistent log rejected: %v", err)
	}
}

// TestValidateRejectsTruncation drops one segment but keeps the
// counters: the byte totals no longer match and the log must be
// rejected instead of silently replayed short.
func TestValidateRejectsTruncation(t *testing.T) {
	l := sampleLog()
	l.Segments = l.Segments[:len(l.Segments)-1]
	if err := l.Validate(); err == nil {
		t.Fatal("truncated log passed validation")
	}
}

func TestValidateRejectsBadSegments(t *testing.T) {
	cases := []Segment{
		{Rank: 0, File: "f", Length: 0, Start: 0, End: 1},   // zero length
		{Rank: 0, File: "f", Length: -1, Start: 0, End: 1},  // negative length
		{Rank: 0, File: "f", Offset: -1, Length: 1, End: 1}, // negative offset
		{Rank: 0, File: "f", Length: 1, Start: 2, End: 1},   // end before start
		{Rank: 0, File: "f", Length: 1, Start: -1, End: 1},  // negative start
	}
	for i, s := range cases {
		l := &Log{Segments: []Segment{s}}
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: bad segment %+v passed validation", i, s)
		}
	}
	if err := (&Log{}).Validate(); err == nil {
		t.Error("empty log passed validation")
	}
}

// TestValidateIgnoresUnknownCounters checks foreign counters are
// carried without being cross-checked.
func TestValidateIgnoresUnknownCounters(t *testing.T) {
	l := sampleLog()
	l.Counters = append(l.Counters, Counter{Rank: 0, File: "/data/a", Name: "POSIX_F_READ_TIME", Value: 12345})
	if err := l.Validate(); err != nil {
		t.Fatalf("unknown counter broke validation: %v", err)
	}
}

// TestRecordsNormalization checks records are origin-normalized and
// sorted, with the paper's 512-byte block rounding.
func TestRecordsNormalization(t *testing.T) {
	recs := sampleLog().Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Start != 0 {
		t.Fatalf("earliest record starts at %v, want 0 (origin-normalized)", recs[0].Start)
	}
	// 0.5s origin: the 0.53s segment lands at 0.03s.
	if want := sim.FromSeconds(0.03); recs[2].Start != want {
		t.Fatalf("record 2 start %v, want %v", recs[2].Start, want)
	}
	if recs[0].Blocks != 16 { // 8192 bytes = 16 blocks; sorted order puts rank 0 first on equal start? (end decides)
		// sort: equal start 0.5, ends 0.51 < 0.52 → rank 1's 4096 first
		t.Logf("records[0] = %+v", recs[0])
	}
	if recs[0].Blocks != 8 || recs[1].Blocks != 16 {
		t.Fatalf("block counts %d,%d, want 8,16 (sorted by end on equal start)", recs[0].Blocks, recs[1].Blocks)
	}
}

// TestAccessesSlotAssignment checks the deterministic slot mapping —
// sorted (rank, file) order — and the per-slot extents.
func TestAccessesSlotAssignment(t *testing.T) {
	accs, extents := sampleLog().Accesses()
	if len(accs) != 4 {
		t.Fatalf("got %d accesses, want 4", len(accs))
	}
	// Sorted (rank, file): (0,/data/a)=0, (0,/data/out)=1, (1,/data/b)=2.
	wantExt := []int64{16384, 512, 4096}
	if !reflect.DeepEqual(extents, wantExt) {
		t.Fatalf("extents %v, want %v", extents, wantExt)
	}
	for _, a := range accs {
		switch {
		case a.PID == 0 && !a.Write && a.Slot != 0:
			t.Errorf("rank 0 read got slot %d, want 0", a.Slot)
		case a.PID == 0 && a.Write && a.Slot != 1:
			t.Errorf("rank 0 write got slot %d, want 1", a.Slot)
		case a.PID == 1 && a.Slot != 2:
			t.Errorf("rank 1 got slot %d, want 2", a.Slot)
		}
	}
}

// TestAccessesDeterministicAcrossInputOrder shuffles the segment input
// order and requires identical reconstructed streams.
func TestAccessesDeterministicAcrossInputOrder(t *testing.T) {
	a := sampleLog()
	b := sampleLog()
	// Reverse b's segments: parsing order must not matter.
	for i, j := 0, len(b.Segments)-1; i < j; i, j = i+1, j-1 {
		b.Segments[i], b.Segments[j] = b.Segments[j], b.Segments[i]
	}
	accsA, extA := a.Accesses()
	accsB, extB := b.Accesses()
	if !reflect.DeepEqual(accsA, accsB) {
		t.Fatalf("access streams differ across input order:\n%v\n%v", accsA, accsB)
	}
	if !reflect.DeepEqual(extA, extB) {
		t.Fatalf("extents differ across input order: %v vs %v", extA, extB)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Segments, l.Segments) {
		t.Fatalf("CSV round trip changed segments:\n%v\n%v", back.Segments, l.Segments)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Segments, l.Segments) {
		t.Fatalf("JSONL round trip changed segments")
	}
	if !reflect.DeepEqual(back.Counters, l.Counters) {
		t.Fatalf("JSONL round trip changed counters:\n%v\n%v", back.Counters, l.Counters)
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",        // no header
		"a,b,c\n", // wrong header
		"rank,file,op,offset,length,start_s,end_s\nx,f,read,0,1,0,1\n",    // bad rank
		"rank,file,op,offset,length,start_s,end_s\n0,f,chmod,0,1,0,1\n",   // bad op
		"rank,file,op,offset,length,start_s,end_s\n0,f,read,zero,1,0,1\n", // bad offset
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestReadCSVSkipsComments(t *testing.T) {
	in := "# a comment\nrank,file,op,offset,length,start_s,end_s\n# another\n0,f,read,0,512,0,0.1\n"
	l, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("got %d segments, want 1", l.Len())
	}
}

func TestReadJSONLRejectsUnknownType(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"type":"mystery","rank":0}` + "\n")); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

func TestReadAutoSniffsFormat(t *testing.T) {
	l := sampleLog()
	var csvBuf, jlBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, l); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jlBuf, l); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadAuto("trace.CSV", &csvBuf); err != nil || got.Len() != l.Len() {
		t.Fatalf("ReadAuto csv: %v (%d segments)", err, got.Len())
	}
	if got, err := ReadAuto("trace.jsonl", &jlBuf); err != nil || got.Len() != l.Len() {
		t.Fatalf("ReadAuto jsonl: %v", err)
	}
}

// TestAppendMerges checks multi-file logs merge and still validate.
func TestAppendMerges(t *testing.T) {
	a := sampleLog()
	b := &Log{Segments: []Segment{
		{Rank: 2, File: "/data/c", Op: ioreq.OpRead, Offset: 0, Length: 1024, Start: 0.6, End: 0.61},
	}}
	b.SynthesizeCounters()
	a.Append(b)
	if err := a.Validate(); err != nil {
		t.Fatalf("merged log rejected: %v", err)
	}
	if len(a.Ranks()) != 3 {
		t.Fatalf("ranks = %v, want 3 distinct", a.Ranks())
	}
}
