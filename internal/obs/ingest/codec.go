package ingest

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bps/internal/ioreq"
)

// The CSV form carries the timestamped segments (the shape of a
// Darshan DXT trace exported as a table); counters, which need a second
// record kind, travel in the JSONL form. Both round-trip losslessly for
// what they carry.

// csvHeader is the required first row of the CSV encoding.
var csvHeader = []string{"rank", "file", "op", "offset", "length", "start_s", "end_s"}

// WriteCSV encodes the log's segments as CSV with a header row.
func WriteCSV(w io.Writer, l *Log) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range l.Segments {
		row := []string{
			strconv.FormatInt(s.Rank, 10),
			s.File,
			s.Op.String(),
			strconv.FormatInt(s.Offset, 10),
			strconv.FormatInt(s.Length, 10),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a segment table written by WriteCSV (or exported from
// real tracing). The header row is required; comment lines starting
// with '#' are skipped.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("ingest: CSV header %v, want %v", header, csvHeader)
	}
	for i := range csvHeader {
		if strings.TrimSpace(header[i]) != csvHeader[i] {
			return nil, fmt.Errorf("ingest: CSV header %v, want %v", header, csvHeader)
		}
	}
	l := &Log{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return l, nil
		}
		if err != nil {
			return nil, err
		}
		s, err := parseSegmentRow(row)
		if err != nil {
			return nil, fmt.Errorf("ingest: CSV line %d: %w", line, err)
		}
		l.Segments = append(l.Segments, s)
	}
}

// parseSegmentRow decodes one CSV segment row.
func parseSegmentRow(row []string) (Segment, error) {
	var s Segment
	var err error
	if s.Rank, err = strconv.ParseInt(strings.TrimSpace(row[0]), 10, 64); err != nil {
		return s, fmt.Errorf("rank: %w", err)
	}
	s.File = row[1]
	if s.Op, err = ioreq.ParseOp(strings.TrimSpace(row[2])); err != nil {
		return s, err
	}
	if s.Offset, err = strconv.ParseInt(strings.TrimSpace(row[3]), 10, 64); err != nil {
		return s, fmt.Errorf("offset: %w", err)
	}
	if s.Length, err = strconv.ParseInt(strings.TrimSpace(row[4]), 10, 64); err != nil {
		return s, fmt.Errorf("length: %w", err)
	}
	if s.Start, err = strconv.ParseFloat(strings.TrimSpace(row[5]), 64); err != nil {
		return s, fmt.Errorf("start_s: %w", err)
	}
	if s.End, err = strconv.ParseFloat(strings.TrimSpace(row[6]), 64); err != nil {
		return s, fmt.Errorf("end_s: %w", err)
	}
	return s, nil
}

// jsonLine is the JSONL wire form: one object per line, discriminated
// by "type" ("segment" when absent, matching bare DXT exports).
type jsonLine struct {
	Type   string  `json:"type,omitempty"`
	Rank   int64   `json:"rank"`
	File   string  `json:"file"`
	Op     string  `json:"op,omitempty"`
	Offset int64   `json:"offset,omitempty"`
	Length int64   `json:"length,omitempty"`
	Start  float64 `json:"start,omitempty"`
	End    float64 `json:"end,omitempty"`
	Name   string  `json:"name,omitempty"`
	Value  int64   `json:"value,omitempty"`
}

// WriteJSONL encodes the full log — counters then segments — as one
// JSON object per line.
func WriteJSONL(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range l.Counters {
		if err := enc.Encode(jsonLine{Type: "counter", Rank: c.Rank, File: c.File, Name: c.Name, Value: c.Value}); err != nil {
			return err
		}
	}
	for _, s := range l.Segments {
		if err := enc.Encode(jsonLine{
			Type: "segment", Rank: s.Rank, File: s.File, Op: s.Op.String(),
			Offset: s.Offset, Length: s.Length, Start: s.Start, End: s.End,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a log written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for n := 1; ; n++ {
		var jl jsonLine
		if err := dec.Decode(&jl); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("ingest: JSONL record %d: %w", n, err)
		}
		switch jl.Type {
		case "counter":
			l.Counters = append(l.Counters, Counter{Rank: jl.Rank, File: jl.File, Name: jl.Name, Value: jl.Value})
		case "segment", "":
			op, err := ioreq.ParseOp(jl.Op)
			if err != nil {
				return nil, fmt.Errorf("ingest: JSONL record %d: %w", n, err)
			}
			l.Segments = append(l.Segments, Segment{
				Rank: jl.Rank, File: jl.File, Op: op,
				Offset: jl.Offset, Length: jl.Length, Start: jl.Start, End: jl.End,
			})
		default:
			return nil, fmt.Errorf("ingest: JSONL record %d: unknown type %q (segment, counter)", n, jl.Type)
		}
	}
}

// ReadAuto sniffs the format from the file name: .csv reads the segment
// table, anything else (typically .jsonl/.json) the JSONL form.
func ReadAuto(name string, r io.Reader) (*Log, error) {
	if strings.HasSuffix(strings.ToLower(name), ".csv") {
		return ReadCSV(r)
	}
	return ReadJSONL(r)
}
