// Package ingest imports real-world I/O logs into the simulated stack.
// The accepted format is modeled on Darshan instrumentation output: a
// log is a set of per-rank counter records (POSIX_READS,
// POSIX_BYTES_READ, ... — the module counters Darshan aggregates per
// file) plus timestamped read/write segments (rank, file, offset,
// length, start, end — the records Darshan's extended tracing emits per
// access). Segments alone fully determine a replay; counters, when
// present, cross-check the segment list so truncated or corrupted logs
// are rejected instead of silently replayed short.
//
// Ingestion is deterministic end to end: parsing normalizes timestamps
// against the log's earliest access and converts float seconds to
// integer simulated nanoseconds with one fixed rounding rule, the
// segment order is made total by an explicit sort, and the reconstructed
// access stream feeds the same middleware/testbed path every synthetic
// workload uses — so one log replayed twice produces bit-identical
// traces, window series, and forecasts.
package ingest

import (
	"fmt"
	"sort"

	"bps/internal/ioreq"
	"bps/internal/sim"
	"bps/internal/trace"
	"bps/internal/workload"
)

// Segment is one timestamped I/O segment of a log: rank r performed op
// on [Offset, Offset+Length) of File during [Start, End] seconds.
type Segment struct {
	Rank   int64
	File   string
	Op     ioreq.Op
	Offset int64
	Length int64
	Start  float64 // seconds since log start
	End    float64
}

// Counter is one per-rank per-file module counter record.
type Counter struct {
	Rank  int64
	File  string
	Name  string
	Value int64
}

// Counter names the validator cross-checks against the segment list.
// Any other name is carried but not interpreted.
const (
	CounterReads        = "POSIX_READS"
	CounterWrites       = "POSIX_WRITES"
	CounterBytesRead    = "POSIX_BYTES_READ"
	CounterBytesWritten = "POSIX_BYTES_WRITTEN"
)

// Log is one parsed Darshan-style log.
type Log struct {
	Segments []Segment
	Counters []Counter
}

// Append merges another log into l (multiple log files of one job).
func (l *Log) Append(other *Log) {
	l.Segments = append(l.Segments, other.Segments...)
	l.Counters = append(l.Counters, other.Counters...)
}

// Len returns the number of segments.
func (l *Log) Len() int { return len(l.Segments) }

// sortSegments makes the segment order total and deterministic
// regardless of input file order.
func (l *Log) sortSegments() {
	sort.SliceStable(l.Segments, func(i, j int) bool {
		a, b := l.Segments[i], l.Segments[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Offset < b.Offset
	})
}

// Validate checks segment sanity (positive lengths, end ≥ start,
// non-negative offsets) and, when the recognized per-rank counters are
// present, cross-checks them against the segment list: operation counts
// and byte totals must match exactly, so a log whose trace was truncated
// relative to its counters is rejected.
func (l *Log) Validate() error {
	if len(l.Segments) == 0 {
		return fmt.Errorf("ingest: log has no segments")
	}
	for i, s := range l.Segments {
		switch {
		case s.Length <= 0:
			return fmt.Errorf("ingest: segment %d: length %d must be positive", i, s.Length)
		case s.Offset < 0:
			return fmt.Errorf("ingest: segment %d: negative offset %d", i, s.Offset)
		case s.Start < 0 || s.End < s.Start:
			return fmt.Errorf("ingest: segment %d: bad interval [%g, %g]", i, s.Start, s.End)
		}
	}
	type key struct {
		rank int64
		file string
	}
	type sums struct{ reads, writes, bytesRead, bytesWritten int64 }
	got := make(map[key]*sums)
	for _, s := range l.Segments {
		k := key{s.Rank, s.File}
		sm := got[k]
		if sm == nil {
			sm = &sums{}
			got[k] = sm
		}
		if s.Op == ioreq.OpWrite {
			sm.writes++
			sm.bytesWritten += s.Length
		} else {
			sm.reads++
			sm.bytesRead += s.Length
		}
	}
	for _, c := range l.Counters {
		sm := got[key{c.Rank, c.File}]
		var have int64
		switch c.Name {
		case CounterReads:
			if sm != nil {
				have = sm.reads
			}
		case CounterWrites:
			if sm != nil {
				have = sm.writes
			}
		case CounterBytesRead:
			if sm != nil {
				have = sm.bytesRead
			}
		case CounterBytesWritten:
			if sm != nil {
				have = sm.bytesWritten
			}
		default:
			continue // unrecognized counters are carried, not checked
		}
		if have != c.Value {
			return fmt.Errorf("ingest: rank %d file %q: %s = %d but segments sum to %d",
				c.Rank, c.File, c.Name, c.Value, have)
		}
	}
	return nil
}

// origin returns the earliest segment start.
func (l *Log) origin() float64 {
	o := l.Segments[0].Start
	for _, s := range l.Segments[1:] {
		if s.Start < o {
			o = s.Start
		}
	}
	return o
}

// Records converts the log into the paper's 32-byte records — pid,
// required blocks, start, end — normalized so the earliest access
// starts at simulated time 0. This is the post-hoc path: metrics and
// timelines straight from the log, no simulation.
func (l *Log) Records() []trace.Record {
	if len(l.Segments) == 0 {
		return nil
	}
	l.sortSegments()
	base := l.origin()
	out := make([]trace.Record, len(l.Segments))
	for i, s := range l.Segments {
		out[i] = trace.Record{
			PID:    s.Rank,
			Blocks: trace.BlocksOf(s.Length),
			Start:  sim.FromSeconds(s.Start - base),
			End:    sim.FromSeconds(s.End - base),
		}
	}
	return out
}

// Accesses reconstructs the offset-aware access stream for replay: one
// workload.Access per segment with a file slot per distinct (rank,
// file) pair, plus the per-slot extents that size the replay env's
// files. Slots are assigned in sorted (rank, file) order, so the
// mapping — and therefore the whole replay — is deterministic.
func (l *Log) Accesses() (accs []workload.Access, extents []int64) {
	if len(l.Segments) == 0 {
		return nil, nil
	}
	l.sortSegments()

	type key struct {
		rank int64
		file string
	}
	keys := make([]key, 0)
	seen := make(map[key]bool)
	for _, s := range l.Segments {
		k := key{s.Rank, s.File}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].file < keys[j].file
	})
	slot := make(map[key]int, len(keys))
	for i, k := range keys {
		slot[k] = i
	}

	base := l.origin()
	accs = make([]workload.Access, len(l.Segments))
	extents = make([]int64, len(keys))
	for i, s := range l.Segments {
		sl := slot[key{s.Rank, s.File}]
		accs[i] = workload.Access{
			PID:   s.Rank,
			Slot:  sl,
			Write: s.Op == ioreq.OpWrite,
			Off:   s.Offset,
			Size:  s.Length,
			Start: sim.FromSeconds(s.Start - base),
			End:   sim.FromSeconds(s.End - base),
		}
		if end := s.Offset + s.Length; end > extents[sl] {
			extents[sl] = end
		}
	}
	return accs, extents
}

// Ranks returns the distinct ranks present, sorted.
func (l *Log) Ranks() []int64 {
	seen := make(map[int64]bool)
	for _, s := range l.Segments {
		seen[s.Rank] = true
	}
	out := make([]int64, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SynthesizeCounters fills in the recognized per-rank counters from the
// segment list — what Darshan's reduction step does at runtime. Useful
// when round-tripping a log that arrived as bare segments.
func (l *Log) SynthesizeCounters() {
	type key struct {
		rank int64
		file string
	}
	type sums struct{ reads, writes, bytesRead, bytesWritten int64 }
	got := make(map[key]*sums)
	var keys []key
	for _, s := range l.Segments {
		k := key{s.Rank, s.File}
		sm := got[k]
		if sm == nil {
			sm = &sums{}
			got[k] = sm
			keys = append(keys, k)
		}
		if s.Op == ioreq.OpWrite {
			sm.writes++
			sm.bytesWritten += s.Length
		} else {
			sm.reads++
			sm.bytesRead += s.Length
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].file < keys[j].file
	})
	l.Counters = l.Counters[:0]
	for _, k := range keys {
		sm := got[k]
		l.Counters = append(l.Counters,
			Counter{k.rank, k.file, CounterReads, sm.reads},
			Counter{k.rank, k.file, CounterWrites, sm.writes},
			Counter{k.rank, k.file, CounterBytesRead, sm.bytesRead},
			Counter{k.rank, k.file, CounterBytesWritten, sm.bytesWritten},
		)
	}
}
