// Package serve is the live export surface of the observability
// subsystem: a Publisher that snapshots the metrics registry and the
// streaming window series on sampler ticks — inside the simulation,
// without consuming simulated time — and an HTTP server that exposes
// the snapshots as Prometheus-text /metrics, JSON /windows and
// /forecast, and an SSE /stream of windows and burst alerts as they
// close.
//
// The split keeps the timing-neutrality contract trivial to audit: the
// only code that runs in simulation context is the Tick hook, which
// reads observer state the simulation goroutine already owns and
// publishes an immutable Snapshot behind a mutex. HTTP handlers (their
// own goroutines) only ever read published snapshots; nothing they do
// can reach back into the run. A run with serving attached produces
// bit-identical metrics, traces, and window series to the same run
// without it.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bps/internal/obs"
	"bps/internal/obs/attrib"
	"bps/internal/obs/forecast"
	"bps/internal/sim"
)

// WindowJSON is one closed (or in-progress) window in wire form.
type WindowJSON struct {
	Index  int     `json:"index"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Ops    int64   `json:"ops"`
	Blocks int64   `json:"blocks"`
	BusyS  float64 `json:"busy_s"`
	BPS    float64 `json:"bps"`
	BW     float64 `json:"bw_bytes_per_s"`
	IOPS   float64 `json:"iops"`
	ARPTS  float64 `json:"arpt_s"`
	Util   float64 `json:"utilization"`
}

func windowJSON(i int, w attrib.Window) WindowJSON {
	return WindowJSON{
		Index:  i,
		StartS: w.Start.Seconds(),
		EndS:   w.End.Seconds(),
		Ops:    w.Ops,
		Blocks: w.Blocks,
		BusyS:  w.Busy.Seconds(),
		BPS:    w.BPS(),
		BW:     w.Bandwidth(),
		IOPS:   w.IOPS(),
		ARPTS:  w.ARPT(),
		Util:   w.Utilization(),
	}
}

// PointJSON is one forecast point in wire form.
type PointJSON struct {
	Index    int     `json:"index"`
	Observed float64 `json:"observed"`
	Forecast float64 `json:"forecast"`
	Model    string  `json:"model"`
	Baseline float64 `json:"baseline"`
}

// SeriesJSON is one forecast series in wire form.
type SeriesJSON struct {
	Name   string      `json:"name"`
	Model  string      `json:"model"`  // currently selected model
	MAE    float64     `json:"mae"`    // its rolling mean absolute error
	Points []PointJSON `json:"points"` // one per closed window, in order
}

// AlertJSON is one burst alert in wire form.
type AlertJSON struct {
	Series string  `json:"series"`
	Window int     `json:"window"`
	Kind   string  `json:"kind"` // "observed" or "forecast"
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
}

func alertJSON(a forecast.Alert) AlertJSON {
	return AlertJSON{Series: a.Series, Window: a.Window, Kind: a.Kind.String(), Value: a.Value, Limit: a.Limit}
}

// RooflineJSON is the run's roofline position in wire form: the
// analytic ceiling the caller installed with SetRoofline, and the
// measured BPS so far. Blocks and busy time are exact int64/duration
// sums over the window series, so the measured BPS here equals the
// post-hoc metric (B/T) once the run completes — the live endpoint and
// the printed report can never disagree.
type RooflineJSON struct {
	CeilingBPS  float64 `json:"ceiling_bps"`
	MeasuredBPS float64 `json:"measured_bps"`
	Headroom    float64 `json:"headroom"` // MeasuredBPS / CeilingBPS
	Blocks      int64   `json:"blocks"`
	BusyS       float64 `json:"busy_s"`
}

// MetricJSON is one scalar registry metric in wire form.
type MetricJSON struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter" or "gauge"
	Value float64 `json:"value"`
}

// HistJSON is one duration histogram summary in wire form.
type HistJSON struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot is one published view of the run, immutable once built.
type Snapshot struct {
	Label   string       `json:"label"`
	NowS    float64      `json:"now_s"`
	WindowS float64      `json:"window_s"`
	Closed  int          `json:"closed"` // windows fed to the forecaster so far
	Windows []WindowJSON `json:"windows"`
	Series  []SeriesJSON `json:"series"`
	Alerts  []AlertJSON  `json:"alerts"`
	Metrics []MetricJSON `json:"metrics"`
	Hists   []HistJSON   `json:"histograms"`

	// Roofline is present only when the caller installed a ceiling via
	// SetRoofline; runs without a model publish the historical shape.
	Roofline *RooflineJSON `json:"roofline,omitempty"`
}

// event is one SSE broadcast.
type event struct {
	kind string // "window" or "alert"
	data []byte
}

// Source is what a publisher snapshots: the streaming window series,
// the window cadence, and the metrics registry. *obs.Observer satisfies
// it for simulated runs; the live driver (internal/live) satisfies it
// directly so wall-clock runs publish through the identical pipeline.
type Source interface {
	LiveWindows() []attrib.Window
	WindowEvery() sim.Time
	Registry() *obs.Registry
}

// Publisher feeds the forecaster from closing windows and publishes
// immutable snapshots for the HTTP layer. Create one per run, install
// its Hook as obs.Options.Tick (simulated runs) or call Publish from a
// ticker goroutine (live runs), and serve its Handler.
type Publisher struct {
	label   string
	fcfg    forecast.Config
	tracker *forecast.Tracker

	fed     int    // windows already fed to the tracker
	lastRun Source // source of the run currently ticking

	ceilingBPS float64 // roofline ceiling; 0 disables the roofline view

	mu   sync.RWMutex
	snap *Snapshot

	smu     sync.Mutex
	subs    map[*subscriber]bool
	dropped atomic.Int64 // events discarded on full subscriber buffers
}

// subscriber is one SSE consumer. missed counts consecutive events its
// buffer had no room for; past DropLimit the broadcaster evicts it
// (closes ch) rather than let an abandoned or glacial consumer force
// unbounded skew between the stream and the run.
type subscriber struct {
	ch     chan event
	missed int
}

// DropLimit is the number of consecutive missed events after which a
// slow SSE subscriber is evicted. A healthy consumer that briefly
// stalls resumes losslessly as long as its 256-event buffer holds; one
// that stays stalled is disconnected and can re-sync from /windows.
const DropLimit = 1024

// NewPublisher returns a publisher for one labeled run. The forecast
// config's zero value selects the documented defaults.
func NewPublisher(label string, fcfg forecast.Config) *Publisher {
	return &Publisher{
		label:   label,
		fcfg:    fcfg,
		tracker: forecast.NewTracker(fcfg),
		subs:    make(map[*subscriber]bool),
	}
}

// Reset prepares the publisher for a fresh run: new forecaster, window
// feed restarted from index zero. The last published snapshot and any
// SSE subscribers are kept, so a looping daemon serves continuously
// across runs. Call it between runs only — never while a simulation
// that ticks this publisher is in flight.
func (p *Publisher) Reset() {
	p.fed = 0
	p.tracker = forecast.NewTracker(p.fcfg)
}

// Tracker returns the publisher's forecast tracker (final state is
// valid after the run for post-hoc reporting).
func (p *Publisher) Tracker() *forecast.Tracker { return p.tracker }

// SetRoofline installs the analytic BPS ceiling (blocks/s) the run is
// measured against; snapshots then carry a Roofline view and /metrics
// exports bps_roofline_* gauges. Zero or negative disables it. Call it
// before the run starts ticking — like Reset, never mid-run.
func (p *Publisher) SetRoofline(ceilingBPS float64) { p.ceilingBPS = ceilingBPS }

// Hook returns the function to install as obs.Options.Tick. It runs in
// simulation context on every sampler pass: feeds windows that have
// closed by now to the forecaster, rebuilds the snapshot, and
// broadcasts SSE events — all without touching simulated time.
func (p *Publisher) Hook() func(now sim.Time, o *obs.Observer) {
	return func(now sim.Time, o *obs.Observer) { p.tick(now, o) }
}

// Publish is the live-run counterpart of the sampler Hook: feed closed
// windows, rebuild the snapshot, broadcast. Callers must serialize
// their calls (the live driver publishes from a single ticker
// goroutine), and src must be safe to read concurrently with the run's
// workers — the Hook path gets both for free from simulation context.
func (p *Publisher) Publish(now sim.Time, src Source) { p.tick(now, src) }

func (p *Publisher) tick(now sim.Time, src Source) {
	// One publisher can serve a sequence of runs (a looping daemon, a
	// suite sweep): each run attaches its own observer, so a new
	// source identity marks a run boundary and restarts the window
	// feed. Runs must tick sequentially, never interleaved.
	if src != p.lastRun {
		if p.lastRun != nil {
			p.Reset()
		}
		p.lastRun = src
	}
	wins := src.LiveWindows()
	var events []event

	// Feed windows whose end has passed: their ops/blocks/durations are
	// final (completions arrive in end-time order and the sampler tick
	// runs after all foreground events at this timestamp); only Busy can
	// still grow if a long access is in flight across the boundary.
	for p.fed < len(wins) && wins[p.fed].End <= now {
		w := wins[p.fed]
		alerts := p.tracker.ObserveWindow(w)
		if data, err := json.Marshal(windowJSON(p.fed, w)); err == nil {
			events = append(events, event{kind: "window", data: data})
		}
		for _, a := range alerts {
			if data, err := json.Marshal(alertJSON(a)); err == nil {
				events = append(events, event{kind: "alert", data: data})
			}
		}
		p.fed++
	}

	p.publish(p.buildSnapshot(now, src))
	p.broadcast(events)
}

// buildSnapshot assembles one immutable snapshot. Runs in simulation
// context (or the live driver's single ticker goroutine), so registry
// reads need no extra synchronization beyond the counters' own atomics.
func (p *Publisher) buildSnapshot(now sim.Time, src Source) *Snapshot {
	s := &Snapshot{
		Label:   p.label,
		NowS:    now.Seconds(),
		WindowS: src.WindowEvery().Seconds(),
		Closed:  p.fed,
	}
	var blocks int64
	var busy sim.Time
	for i, w := range src.LiveWindows() {
		s.Windows = append(s.Windows, windowJSON(i, w))
		blocks += w.Blocks
		busy += w.Busy
	}
	if p.ceilingBPS > 0 {
		// Sum in int64/sim.Time, divide once: the windows partition the
		// run's completions, so measured BPS here is exactly the core
		// metric B/T the post-hoc report prints.
		r := &RooflineJSON{CeilingBPS: p.ceilingBPS, Blocks: blocks, BusyS: busy.Seconds()}
		if busy > 0 {
			r.MeasuredBPS = float64(blocks) / busy.Seconds()
			r.Headroom = r.MeasuredBPS / r.CeilingBPS
		}
		s.Roofline = r
	}
	for _, fs := range p.tracker.Series() {
		sj := SeriesJSON{Name: fs.Name(), Model: fs.Last().Model.String(), MAE: fs.MAE()}
		for _, pt := range fs.Points() {
			sj.Points = append(sj.Points, PointJSON{
				Index: pt.Index, Observed: pt.Observed, Forecast: pt.Forecast,
				Model: pt.Model.String(), Baseline: pt.Baseline,
			})
		}
		s.Series = append(s.Series, sj)
	}
	for _, a := range p.tracker.Alerts() {
		s.Alerts = append(s.Alerts, alertJSON(a))
	}
	reg := src.Registry()
	for _, c := range reg.Counters() {
		s.Metrics = append(s.Metrics, MetricJSON{Name: c.Name(), Kind: "counter", Value: float64(c.Value())})
	}
	for _, g := range reg.Gauges() {
		s.Metrics = append(s.Metrics, MetricJSON{Name: g.Name(), Kind: "gauge", Value: g.Value()})
	}
	for _, h := range reg.Histograms() {
		s.Hists = append(s.Hists, HistJSON{
			Name: h.Name(), Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99), Max: h.Max(),
		})
	}
	return s
}

func (p *Publisher) publish(s *Snapshot) {
	p.mu.Lock()
	p.snap = s
	p.mu.Unlock()
}

// Snapshot returns the most recently published snapshot (nil before the
// first tick).
func (p *Publisher) Snapshot() *Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.snap
}

// subscribe registers an SSE consumer.
func (p *Publisher) subscribe() *subscriber {
	s := &subscriber{ch: make(chan event, 256)}
	p.smu.Lock()
	p.subs[s] = true
	p.smu.Unlock()
	return s
}

func (p *Publisher) unsubscribe(s *subscriber) {
	p.smu.Lock()
	delete(p.subs, s)
	p.smu.Unlock()
}

// Dropped returns the total SSE events discarded because a subscriber's
// buffer was full — the backpressure signal surfaced on /metrics as
// bps_stream_dropped_total and on /healthz.
func (p *Publisher) Dropped() int64 { return p.dropped.Load() }

// Subscribers returns the current SSE subscriber count.
func (p *Publisher) Subscribers() int {
	p.smu.Lock()
	defer p.smu.Unlock()
	return len(p.subs)
}

// broadcast fans events out to subscribers, never blocking the
// simulation: a subscriber whose buffer is full misses events (counted
// in dropped; it can re-sync from /windows), and one that misses
// DropLimit events in a row is evicted — its channel is closed, which
// ends its handler.
func (p *Publisher) broadcast(events []event) {
	if len(events) == 0 {
		return
	}
	p.smu.Lock()
	defer p.smu.Unlock()
	for s := range p.subs {
		for _, ev := range events {
			select {
			case s.ch <- ev:
				s.missed = 0
			default:
				s.missed++
				p.dropped.Add(1)
				if s.missed >= DropLimit {
					delete(p.subs, s)
					close(s.ch)
				}
			}
			if !p.subs[s] {
				break
			}
		}
	}
}

// --- HTTP layer ------------------------------------------------------

// Handler returns the endpoint mux: /metrics (Prometheus text),
// /windows and /forecast (JSON), /stream (SSE).
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/windows", p.handleWindows)
	mux.HandleFunc("/forecast", p.handleForecast)
	mux.HandleFunc("/roofline", p.handleRoofline)
	mux.HandleFunc("/stream", p.handleStream)
	mux.HandleFunc("/healthz", p.handleHealthz)
	mux.HandleFunc("/", p.handleIndex)
	return mux
}

// Health is the /healthz payload: liveness plus the backpressure
// signals an operator needs to judge whether streaming consumers are
// keeping up.
type Health struct {
	Status        string  `json:"status"`
	Label         string  `json:"label"`
	NowS          float64 `json:"now_s"`
	Closed        int     `json:"closed"`
	Subscribers   int     `json:"subscribers"`
	StreamDropped int64   `json:"stream_dropped"`
}

// Healthz returns the current health view (also served on /healthz).
func (p *Publisher) Healthz() Health {
	h := Health{Status: "ok", Label: p.label, Subscribers: p.Subscribers(), StreamDropped: p.Dropped()}
	if s := p.Snapshot(); s != nil {
		h.NowS, h.Closed = s.NowS, s.Closed
	}
	return h
}

func (p *Publisher) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.Healthz())
}

func (p *Publisher) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "bps live observability (%s)\nendpoints: /metrics /windows /forecast /roofline /stream\n", p.label)
}

// promName sanitizes a registry metric name into a legal Prometheus
// metric name under the bps_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("bps_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (p *Publisher) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := p.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s != nil {
		writeProm(w, s)
	} else {
		fmt.Fprintf(w, "# no snapshot published yet\n")
	}
	// Stream backpressure counters live HTTP-side, not in the snapshot:
	// they move when consumers stall, even between sampler ticks.
	fmt.Fprintf(w, "# TYPE bps_stream_dropped_total counter\nbps_stream_dropped_total %d\n", p.Dropped())
	fmt.Fprintf(w, "# TYPE bps_stream_subscribers gauge\nbps_stream_subscribers %d\n", p.Subscribers())
}

// writeProm renders a snapshot in the Prometheus text exposition
// format: registry scalars, histogram summaries, and the latest closed
// window's rates plus the current forecasts.
func writeProm(w io.Writer, s *Snapshot) {
	fmt.Fprintf(w, "# HELP bps_sim_now_seconds Simulated time of this snapshot.\n")
	fmt.Fprintf(w, "# TYPE bps_sim_now_seconds gauge\nbps_sim_now_seconds %g\n", s.NowS)
	for _, m := range s.Metrics {
		n := promName(m.Name)
		fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", n, m.Kind, n, m.Value)
	}
	for _, h := range s.Hists {
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", n, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", n, h.P95)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", n, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	if s.Closed > 0 && s.Closed <= len(s.Windows) {
		last := s.Windows[s.Closed-1]
		fmt.Fprintf(w, "# HELP bps_window_bps Latest closed window's BPS (blocks/s of busy time).\n")
		fmt.Fprintf(w, "# TYPE bps_window_bps gauge\nbps_window_bps %g\n", last.BPS)
		fmt.Fprintf(w, "# TYPE bps_window_bandwidth_bytes_per_second gauge\nbps_window_bandwidth_bytes_per_second %g\n", last.BW)
		fmt.Fprintf(w, "# TYPE bps_window_iops gauge\nbps_window_iops %g\n", last.IOPS)
		fmt.Fprintf(w, "# TYPE bps_window_utilization gauge\nbps_window_utilization %g\n", last.Util)
		fmt.Fprintf(w, "# TYPE bps_window_index gauge\nbps_window_index %d\n", last.Index)
	}
	for _, fs := range s.Series {
		if len(fs.Points) == 0 {
			continue
		}
		last := fs.Points[len(fs.Points)-1]
		fmt.Fprintf(w, "# TYPE bps_forecast_next gauge\nbps_forecast_next{series=%q,model=%q} %g\n",
			fs.Name, last.Model, last.Forecast)
	}
	if r := s.Roofline; r != nil {
		fmt.Fprintf(w, "# HELP bps_roofline_ceiling_bps Analytic BPS ceiling for this run.\n")
		fmt.Fprintf(w, "# TYPE bps_roofline_ceiling_bps gauge\nbps_roofline_ceiling_bps %g\n", r.CeilingBPS)
		fmt.Fprintf(w, "# HELP bps_roofline_headroom Measured BPS as a fraction of the ceiling.\n")
		fmt.Fprintf(w, "# TYPE bps_roofline_headroom gauge\nbps_roofline_headroom %g\n", r.Headroom)
		fmt.Fprintf(w, "# TYPE bps_roofline_measured_bps gauge\nbps_roofline_measured_bps %g\n", r.MeasuredBPS)
	}
	fmt.Fprintf(w, "# TYPE bps_alerts_total counter\nbps_alerts_total %d\n", len(s.Alerts))
}

func (p *Publisher) handleWindows(w http.ResponseWriter, r *http.Request) {
	s := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if s == nil {
		io.WriteString(w, "{}\n")
		return
	}
	json.NewEncoder(w).Encode(struct {
		Label   string       `json:"label"`
		NowS    float64      `json:"now_s"`
		WindowS float64      `json:"window_s"`
		Closed  int          `json:"closed"`
		Windows []WindowJSON `json:"windows"`
	}{s.Label, s.NowS, s.WindowS, s.Closed, s.Windows})
}

func (p *Publisher) handleForecast(w http.ResponseWriter, r *http.Request) {
	s := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if s == nil {
		io.WriteString(w, "{}\n")
		return
	}
	json.NewEncoder(w).Encode(struct {
		Label  string       `json:"label"`
		NowS   float64      `json:"now_s"`
		Series []SeriesJSON `json:"series"`
		Alerts []AlertJSON  `json:"alerts"`
	}{s.Label, s.NowS, s.Series, s.Alerts})
}

// handleRoofline serves the run's roofline position. Without an
// installed ceiling (or before the first tick) it serves {} so probes
// can distinguish "no model" from an error.
func (p *Publisher) handleRoofline(w http.ResponseWriter, r *http.Request) {
	s := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if s == nil || s.Roofline == nil {
		io.WriteString(w, "{}\n")
		return
	}
	json.NewEncoder(w).Encode(struct {
		Label string  `json:"label"`
		NowS  float64 `json:"now_s"`
		*RooflineJSON
	}{s.Label, s.NowS, s.Roofline})
}

// handleStream serves SSE: a "snapshot" event with the current state,
// then "window" and "alert" events as the run progresses.
func (p *Publisher) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// The server's WriteTimeout protects request/response endpoints; an
	// SSE stream is legitimately open for the whole run, so exempt this
	// response from the deadline. Slow-consumer protection comes from
	// the broadcaster's DropLimit eviction instead.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})

	sub := p.subscribe()
	defer p.unsubscribe(sub)

	if s := p.Snapshot(); s != nil {
		if data, err := json.Marshal(s); err == nil {
			fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				// Evicted by the broadcaster for falling DropLimit
				// events behind; tell the client why before hanging up.
				fmt.Fprintf(w, "event: evicted\ndata: {\"reason\":\"slow consumer\"}\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, ev.data)
			fl.Flush()
		}
	}
}

// Timeouts bounds every phase of an HTTP connection's life so a stalled
// or malicious peer (slow-loris: a client that trickles header bytes
// forever) cannot pin a connection goroutine indefinitely.
type Timeouts struct {
	ReadHeader time.Duration // request line + headers must arrive within this
	Read       time.Duration // whole request (incl. body) must arrive within this
	Write      time.Duration // response must be written within this (SSE exempts itself)
	Idle       time.Duration // keep-alive connections idle longer than this are closed
}

// DefaultTimeouts is the hardened default for every bps HTTP server:
// tight on headers (nothing legitimate takes 5 s to say GET), generous
// on response writes, and bounded keep-alive.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		ReadHeader: 5 * time.Second,
		Read:       30 * time.Second,
		Write:      60 * time.Second,
		Idle:       120 * time.Second,
	}
}

// Server is a running HTTP endpoint over one publisher.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (":0" picks a free port) and serves the
// publisher's handler with DefaultTimeouts until Close or Shutdown.
func Start(addr string, p *Publisher) (*Server, error) {
	return StartHandler(addr, p.Handler())
}

// StartHandler is Start for an arbitrary handler (a daemon that mounts
// extra endpoints next to the publisher's), with DefaultTimeouts.
func StartHandler(addr string, h http.Handler) (*Server, error) {
	return StartWith(addr, h, DefaultTimeouts())
}

// StartWith is StartHandler with explicit timeouts. A zero field leaves
// that phase unbounded — only tests should want that.
func StartWith(addr string, h http.Handler, t Timeouts) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, dropping open connections.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains gracefully: stops accepting, waits for in-flight
// requests (bounded by ctx), then closes. SSE streams never finish on
// their own, so drain callers should cancel them (Close after the
// deadline) — Shutdown returns ctx.Err() in that case.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
