package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"bps"
	"bps/internal/obs/forecast"
	"bps/internal/sim"
)

// runCfg is a small cluster run with windows and sampling on.
func runCfg(tick func(sim.Time, *bps.Observer)) bps.RunConfig {
	return bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true},
		Seed:    7,
		Observe: &bps.ObserveOptions{
			SampleEvery: sim.Millisecond,
			WindowEvery: 10 * sim.Millisecond,
			Tick:        tick,
		},
	}
}

func mustRun(t *testing.T, tick func(sim.Time, *bps.Observer)) bps.RunReport {
	t.Helper()
	rep, err := bps.SimulateSequentialRead(runCfg(tick), 2, 4<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTimingNeutrality is the serving contract: a run with the live
// publisher hooked in produces bit-identical records, metrics, and
// window series to the same run without it.
func TestTimingNeutrality(t *testing.T) {
	plain := mustRun(t, nil)

	pub := NewPublisher("test", forecast.Config{})
	hooked := mustRun(t, pub.Hook())

	if plain.Metrics != hooked.Metrics {
		t.Errorf("metrics diverged:\nplain:  %+v\nhooked: %+v", plain.Metrics, hooked.Metrics)
	}
	if !reflect.DeepEqual(plain.Records, hooked.Records) {
		t.Error("records diverged under serving")
	}
	if !reflect.DeepEqual(plain.Attribution.Windows, hooked.Attribution.Windows) {
		t.Error("window series diverged under serving")
	}
}

// TestPublisherDeterminism runs the same simulation twice against two
// publishers and requires identical snapshots and forecasts — the
// replay-twice acceptance criterion at the publisher level.
func TestPublisherDeterminism(t *testing.T) {
	run := func() *Snapshot {
		pub := NewPublisher("det", forecast.Config{})
		mustRun(t, pub.Hook())
		return pub.Snapshot()
	}
	s1, s2 := run(), run()
	if s1 == nil || s2 == nil {
		t.Fatal("no snapshot published")
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Fatalf("snapshots diverged across identical runs:\n%s\n%s", b1, b2)
	}
}

// TestSnapshotContents sanity-checks what one run publishes: closed
// windows fed in order, three forecast series, registry metrics.
func TestSnapshotContents(t *testing.T) {
	pub := NewPublisher("contents", forecast.Config{})
	mustRun(t, pub.Hook())
	s := pub.Snapshot()
	if s == nil {
		t.Fatal("no snapshot published")
	}
	if s.Closed == 0 || len(s.Windows) < s.Closed {
		t.Fatalf("closed=%d windows=%d: want some closed windows", s.Closed, len(s.Windows))
	}
	if len(s.Series) != len(forecast.TrackedSeries) {
		t.Fatalf("got %d forecast series, want %d", len(s.Series), len(forecast.TrackedSeries))
	}
	for _, fs := range s.Series {
		if len(fs.Points) != s.Closed {
			t.Errorf("series %q has %d points, want %d (one per closed window)", fs.Name, len(fs.Points), s.Closed)
		}
	}
	if len(s.Metrics) == 0 || len(s.Hists) == 0 {
		t.Fatal("snapshot missing registry metrics")
	}
	if s.NowS <= 0 || s.WindowS != 0.01 {
		t.Fatalf("now=%v window=%v: bad snapshot header", s.NowS, s.WindowS)
	}
}

// TestPublisherMultiRunReset checks one publisher serving consecutive
// runs restarts its window feed per run instead of accumulating.
func TestPublisherMultiRunReset(t *testing.T) {
	pub := NewPublisher("multi", forecast.Config{})
	mustRun(t, pub.Hook())
	first := pub.Snapshot()
	mustRun(t, pub.Hook())
	second := pub.Snapshot()
	if second.Closed != first.Closed {
		t.Fatalf("second run closed %d windows, want %d (feed must restart per run)", second.Closed, first.Closed)
	}
}

// TestEndpoints exercises the HTTP surface over a finished run.
func TestEndpoints(t *testing.T) {
	pub := NewPublisher("http", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"bps_sim_now_seconds", "bps_window_bps", "bps_forecast_next", "bps_alerts_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "NaN") || strings.Contains(metrics, "Inf") {
		t.Error("/metrics contains NaN/Inf")
	}

	var wins struct {
		Windows []WindowJSON `json:"windows"`
		Closed  int          `json:"closed"`
	}
	if err := json.Unmarshal([]byte(get("/windows")), &wins); err != nil {
		t.Fatalf("/windows: %v", err)
	}
	if len(wins.Windows) == 0 || wins.Closed == 0 {
		t.Fatal("/windows served no windows")
	}

	var fc struct {
		Series []SeriesJSON `json:"series"`
	}
	if err := json.Unmarshal([]byte(get("/forecast")), &fc); err != nil {
		t.Fatalf("/forecast: %v", err)
	}
	if len(fc.Series) != 3 {
		t.Fatalf("/forecast served %d series, want 3", len(fc.Series))
	}

	if idx := get("/"); !strings.Contains(idx, "/stream") {
		t.Errorf("index page missing endpoint list: %q", idx)
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %s, want 404", resp.Status)
	}
}

// TestStreamSSE checks /stream: an immediate snapshot event, then live
// window events broadcast by a later run.
func TestStreamSSE(t *testing.T) {
	pub := NewPublisher("sse", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "event: snapshot" {
		t.Fatalf("first SSE line %q, want snapshot event", line)
	}

	// A second run broadcasts its windows to the open subscriber.
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustRun(t, pub.Hook())
	}()
	<-done
	sawWindow := false
	for i := 0; i < 200 && !sawWindow; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		if strings.TrimSpace(line) == "event: window" {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Fatal("no window event streamed during the second run")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim/engine/events":  "bps_sim_engine_events",
		"device/hdd.bytes":   "bps_device_hdd_bytes",
		"already_legal_123":  "bps_already_legal_123",
		"weird metric (x%y)": "bps_weird_metric__x_y_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServerStartClose checks the real listener path used by the cmds.
func TestServerStartClose(t *testing.T) {
	pub := NewPublisher("srv", forecast.Config{})
	mustRun(t, pub.Hook())
	srv, err := Start("127.0.0.1:0", pub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/windows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /windows: %s", resp.Status)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
