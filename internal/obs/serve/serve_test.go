package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bps"
	"bps/internal/obs/forecast"
	"bps/internal/sim"
)

// runCfg is a small cluster run with windows and sampling on.
func runCfg(tick func(sim.Time, *bps.Observer)) bps.RunConfig {
	return bps.RunConfig{
		Storage: bps.Storage{Media: bps.HDD, Servers: 2, SharedFile: true},
		Seed:    7,
		Observe: &bps.ObserveOptions{
			SampleEvery: sim.Millisecond,
			WindowEvery: 10 * sim.Millisecond,
			Tick:        tick,
		},
	}
}

func mustRun(t *testing.T, tick func(sim.Time, *bps.Observer)) bps.RunReport {
	t.Helper()
	rep, err := bps.SimulateSequentialRead(runCfg(tick), 2, 4<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTimingNeutrality is the serving contract: a run with the live
// publisher hooked in produces bit-identical records, metrics, and
// window series to the same run without it.
func TestTimingNeutrality(t *testing.T) {
	plain := mustRun(t, nil)

	pub := NewPublisher("test", forecast.Config{})
	hooked := mustRun(t, pub.Hook())

	if plain.Metrics != hooked.Metrics {
		t.Errorf("metrics diverged:\nplain:  %+v\nhooked: %+v", plain.Metrics, hooked.Metrics)
	}
	if !reflect.DeepEqual(plain.Records, hooked.Records) {
		t.Error("records diverged under serving")
	}
	if !reflect.DeepEqual(plain.Attribution.Windows, hooked.Attribution.Windows) {
		t.Error("window series diverged under serving")
	}
}

// TestPublisherDeterminism runs the same simulation twice against two
// publishers and requires identical snapshots and forecasts — the
// replay-twice acceptance criterion at the publisher level.
func TestPublisherDeterminism(t *testing.T) {
	run := func() *Snapshot {
		pub := NewPublisher("det", forecast.Config{})
		mustRun(t, pub.Hook())
		return pub.Snapshot()
	}
	s1, s2 := run(), run()
	if s1 == nil || s2 == nil {
		t.Fatal("no snapshot published")
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Fatalf("snapshots diverged across identical runs:\n%s\n%s", b1, b2)
	}
}

// TestSnapshotContents sanity-checks what one run publishes: closed
// windows fed in order, three forecast series, registry metrics.
func TestSnapshotContents(t *testing.T) {
	pub := NewPublisher("contents", forecast.Config{})
	mustRun(t, pub.Hook())
	s := pub.Snapshot()
	if s == nil {
		t.Fatal("no snapshot published")
	}
	if s.Closed == 0 || len(s.Windows) < s.Closed {
		t.Fatalf("closed=%d windows=%d: want some closed windows", s.Closed, len(s.Windows))
	}
	if len(s.Series) != len(forecast.TrackedSeries) {
		t.Fatalf("got %d forecast series, want %d", len(s.Series), len(forecast.TrackedSeries))
	}
	for _, fs := range s.Series {
		if len(fs.Points) != s.Closed {
			t.Errorf("series %q has %d points, want %d (one per closed window)", fs.Name, len(fs.Points), s.Closed)
		}
	}
	if len(s.Metrics) == 0 || len(s.Hists) == 0 {
		t.Fatal("snapshot missing registry metrics")
	}
	if s.NowS <= 0 || s.WindowS != 0.01 {
		t.Fatalf("now=%v window=%v: bad snapshot header", s.NowS, s.WindowS)
	}
}

// TestPublisherMultiRunReset checks one publisher serving consecutive
// runs restarts its window feed per run instead of accumulating.
func TestPublisherMultiRunReset(t *testing.T) {
	pub := NewPublisher("multi", forecast.Config{})
	mustRun(t, pub.Hook())
	first := pub.Snapshot()
	mustRun(t, pub.Hook())
	second := pub.Snapshot()
	if second.Closed != first.Closed {
		t.Fatalf("second run closed %d windows, want %d (feed must restart per run)", second.Closed, first.Closed)
	}
}

// TestEndpoints exercises the HTTP surface over a finished run.
func TestEndpoints(t *testing.T) {
	pub := NewPublisher("http", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"bps_sim_now_seconds", "bps_window_bps", "bps_forecast_next", "bps_alerts_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "NaN") || strings.Contains(metrics, "Inf") {
		t.Error("/metrics contains NaN/Inf")
	}

	var wins struct {
		Windows []WindowJSON `json:"windows"`
		Closed  int          `json:"closed"`
	}
	if err := json.Unmarshal([]byte(get("/windows")), &wins); err != nil {
		t.Fatalf("/windows: %v", err)
	}
	if len(wins.Windows) == 0 || wins.Closed == 0 {
		t.Fatal("/windows served no windows")
	}

	var fc struct {
		Series []SeriesJSON `json:"series"`
	}
	if err := json.Unmarshal([]byte(get("/forecast")), &fc); err != nil {
		t.Fatalf("/forecast: %v", err)
	}
	if len(fc.Series) != 3 {
		t.Fatalf("/forecast served %d series, want 3", len(fc.Series))
	}

	if idx := get("/"); !strings.Contains(idx, "/stream") {
		t.Errorf("index page missing endpoint list: %q", idx)
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %s, want 404", resp.Status)
	}
}

// TestStreamSSE checks /stream: an immediate snapshot event, then live
// window events broadcast by a later run.
func TestStreamSSE(t *testing.T) {
	pub := NewPublisher("sse", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "event: snapshot" {
		t.Fatalf("first SSE line %q, want snapshot event", line)
	}

	// A second run broadcasts its windows to the open subscriber.
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustRun(t, pub.Hook())
	}()
	<-done
	sawWindow := false
	for i := 0; i < 200 && !sawWindow; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		if strings.TrimSpace(line) == "event: window" {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Fatal("no window event streamed during the second run")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim/engine/events":  "bps_sim_engine_events",
		"device/hdd.bytes":   "bps_device_hdd_bytes",
		"already_legal_123":  "bps_already_legal_123",
		"weird metric (x%y)": "bps_weird_metric__x_y_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServerStartClose checks the real listener path used by the cmds.
func TestServerStartClose(t *testing.T) {
	pub := NewPublisher("srv", forecast.Config{})
	mustRun(t, pub.Hook())
	srv, err := Start("127.0.0.1:0", pub)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/windows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /windows: %s", resp.Status)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSlowLorisHeaderTimeout is the hardening regression: a client that
// sends half a request and then goes silent must be disconnected by the
// ReadHeader timeout, not allowed to pin a connection goroutine forever.
func TestSlowLorisHeaderTimeout(t *testing.T) {
	pub := NewPublisher("loris", forecast.Config{})
	srv, err := StartWith("127.0.0.1:0", pub.Handler(), Timeouts{ReadHeader: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: headers never finish (no terminating blank line).
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: bps\r\nX-Trickle: sl"); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server must close the connection (plain close or a 408 first);
	// our read deadline firing instead means it never did.
	buf := make([]byte, 512)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue // a 408 response body; keep reading until close
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("server left the slow-loris connection open past the header timeout")
		}
		return // EOF or reset: the server hung up, as required
	}
}

// TestStreamBackpressure runs a fast and a slow SSE consumer against
// one broadcaster concurrently: the fast consumer sees every event in
// order, the slow one (which never reads) is evicted after DropLimit
// misses, and the drops are counted for /metrics and /healthz.
func TestStreamBackpressure(t *testing.T) {
	p := NewPublisher("bp", forecast.Config{})
	fast := p.subscribe()
	slow := p.subscribe()
	defer p.unsubscribe(fast)

	const total = 2*DropLimit + 512 // enough to evict slow mid-run
	var consumed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			ev, ok := <-fast.ch
			if !ok {
				t.Errorf("fast consumer evicted after %d events", i)
				return
			}
			if want := fmt.Sprintf("%d", i); string(ev.data) != want {
				t.Errorf("fast consumer saw %q at position %d, want %q", ev.data, i, want)
				return
			}
			consumed.Add(1)
		}
	}()

	// Broadcast in sub-buffer batches, letting the fast consumer drain
	// between batches so only the slow consumer can ever miss.
	const batch = 128
	for n := 0; n < total; n += batch {
		for i := n; i < n+batch && i < total; i++ {
			p.broadcast([]event{{kind: "window", data: []byte(fmt.Sprintf("%d", i))}})
		}
		deadline := time.Now().Add(10 * time.Second)
		for int(consumed.Load()) < min(n+batch, total) {
			if time.Now().After(deadline) {
				t.Fatalf("fast consumer stalled at %d/%d", consumed.Load(), total)
			}
			time.Sleep(time.Millisecond)
		}
	}
	<-done

	if got := p.Dropped(); got != DropLimit {
		t.Errorf("dropped = %d, want exactly DropLimit=%d (eviction stops the bleeding)", got, DropLimit)
	}
	if got := p.Subscribers(); got != 1 {
		t.Errorf("subscribers = %d after eviction, want 1 (fast only)", got)
	}
	// The slow consumer's channel holds its buffered prefix, then closes.
	buffered := 0
	for range slow.ch {
		buffered++
	}
	if buffered != cap(slow.ch) {
		t.Errorf("slow consumer drained %d buffered events, want %d", buffered, cap(slow.ch))
	}
}

// TestStreamEviction drives the HTTP /stream handler end to end: a
// consumer that stops reading is evicted and its response ends, while
// the publisher keeps serving everyone else.
func TestStreamEviction(t *testing.T) {
	pub := NewPublisher("evict", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || strings.TrimSpace(line) != "event: snapshot" {
		t.Fatalf("first SSE line %q (err %v), want snapshot event", line, err)
	}

	// Stop reading and flood: buffer (256) + DropLimit misses evict us.
	for i := 0; i < 256+DropLimit+16; i++ {
		pub.broadcast([]event{{kind: "window", data: []byte("{}")}})
	}
	// The handler drains the buffered prefix into the response, appends
	// the eviction notice, and returns; the body must therefore end.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		t.Fatalf("reading post-eviction body: %v", err)
	}
	if !strings.Contains(string(body), "event: evicted") {
		t.Error("evicted stream did not receive the eviction notice")
	}
	if pub.Dropped() < DropLimit {
		t.Errorf("dropped = %d, want >= %d", pub.Dropped(), DropLimit)
	}
}

// TestHealthzAndStreamMetrics checks the /healthz payload and the
// backpressure counters on /metrics.
func TestHealthzAndStreamMetrics(t *testing.T) {
	pub := NewPublisher("health", forecast.Config{})
	mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Label != "health" {
		t.Fatalf("healthz = %+v", h)
	}
	if h.NowS <= 0 || h.Closed == 0 {
		t.Fatalf("healthz shows no progress: %+v", h)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"bps_stream_dropped_total", "bps_stream_subscribers"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServerShutdownDrains checks graceful drain: in-flight requests
// finish, new connections are refused, Shutdown returns.
func TestServerShutdownDrains(t *testing.T) {
	pub := NewPublisher("drain", forecast.Config{})
	mustRun(t, pub.Hook())
	srv, err := StartHandler("127.0.0.1:0", pub.Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestRooflineEndpoint pins the live/post-hoc agreement contract: with
// a ceiling installed, /roofline serves exactly the measured BPS the
// post-hoc metrics compute from the finished run — the window series'
// block and busy sums are exact, so the two can never disagree — and
// /metrics exports the roofline gauges.
func TestRooflineEndpoint(t *testing.T) {
	const ceiling = 250000.0
	pub := NewPublisher("roof", forecast.Config{})
	pub.SetRoofline(ceiling)
	rep := mustRun(t, pub.Hook())
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/roofline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got RooflineJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("/roofline: %v", err)
	}
	if got.CeilingBPS != ceiling {
		t.Errorf("ceiling %v, want %v", got.CeilingBPS, ceiling)
	}
	wantBPS := rep.Metrics.BPS()
	if wantBPS <= 0 {
		t.Fatalf("run measured no BPS: %v", wantBPS)
	}
	if got.MeasuredBPS != wantBPS {
		t.Errorf("live measured BPS %v != post-hoc BPS %v (must be exact)", got.MeasuredBPS, wantBPS)
	}
	if want := wantBPS / ceiling; got.Headroom != want {
		t.Errorf("headroom %v, want %v", got.Headroom, want)
	}
	if got.Blocks <= 0 || got.BusyS <= 0 {
		t.Errorf("blocks=%d busy=%v: want positive sums", got.Blocks, got.BusyS)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"bps_roofline_ceiling_bps 250000", "bps_roofline_headroom ", "bps_roofline_measured_bps "} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestRooflineAbsentByDefault checks a publisher without a ceiling
// publishes the historical snapshot shape: no Roofline view, an empty
// /roofline object, and no bps_roofline_* gauges.
func TestRooflineAbsentByDefault(t *testing.T) {
	pub := NewPublisher("noroof", forecast.Config{})
	mustRun(t, pub.Hook())
	if s := pub.Snapshot(); s == nil || s.Roofline != nil {
		t.Fatalf("snapshot roofline = %+v, want absent", s.Roofline)
	}
	ts := httptest.NewServer(pub.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/roofline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(body)) != "{}" {
		t.Errorf("/roofline = %q, want {}", body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if strings.Contains(string(mbody), "bps_roofline") {
		t.Error("/metrics exports roofline gauges without a ceiling")
	}
}
