package forecast

import (
	"testing"

	"bps/internal/obs/attrib"
	"bps/internal/sim"
	"bps/internal/trace"
)

// TestGoldenSeries pins the predictor's full output — forecasts, model
// selection, baselines, and alerts — for a fixed input with spikes one
// season apart. The forecaster is pure arithmetic over the observation
// sequence, so every value must match bit for bit; any drift here is a
// behavior change, not noise. Note the forecast alert at window 8: the
// seasonal model predicts the window-9 burst one step before it lands.
func TestGoldenSeries(t *testing.T) {
	in := []float64{100, 120, 80, 110, 400, 90, 105, 95, 115, 420, 100, 110}
	cfg := Config{Alpha: 0.5, Season: 5, TrendWindow: 4, ErrWindow: 6, BurstK: 2, MinBaseline: 10, Warmup: 3}

	want := []Point{
		{0, 100, 100, ModelEWMA, 100},
		{1, 120, 110, ModelEWMA, 100},
		{2, 80, 95, ModelEWMA, 110},
		{3, 110, 102.5, ModelEWMA, 95},
		{4, 400, 251.25, ModelEWMA, 102.5},
		{5, 90, 120, ModelSeasonal, 251.25},
		{6, 105, 80, ModelSeasonal, 170.625},
		{7, 95, 110, ModelSeasonal, 137.8125},
		{8, 115, 400, ModelSeasonal, 116.40625},
		{9, 420, 90, ModelSeasonal, 115.703125},
		{10, 100, 105, ModelSeasonal, 267.8515625},
		{11, 110, 95, ModelSeasonal, 183.92578125},
	}
	wantAlerts := []Alert{
		{"bps", 4, AlertObserved, 400, 205},
		{"bps", 8, AlertForecast, 400, 231.40625},
		{"bps", 9, AlertObserved, 420, 231.40625},
	}

	s := NewSeries("bps", cfg)
	for i, x := range in {
		got := s.Observe(x)
		if got != want[i] {
			t.Errorf("point %d: got %+v, want %+v", i, got, want[i])
		}
	}
	alerts := s.Alerts()
	if len(alerts) != len(wantAlerts) {
		t.Fatalf("got %d alerts %+v, want %d", len(alerts), alerts, len(wantAlerts))
	}
	for i, a := range alerts {
		if a != wantAlerts[i] {
			t.Errorf("alert %d: got %+v, want %+v", i, a, wantAlerts[i])
		}
	}
}

// TestGoldenDeterminism replays the golden input twice and requires
// bit-identical outputs — the forecaster must be a pure function of its
// observation sequence.
func TestGoldenDeterminism(t *testing.T) {
	in := []float64{100, 120, 80, 110, 400, 90, 105, 95, 115, 420, 100, 110}
	run := func() ([]Point, []Alert) {
		s := NewSeries("x", Config{Alpha: 0.5, Season: 5, TrendWindow: 4, ErrWindow: 6, BurstK: 2, MinBaseline: 10, Warmup: 3})
		for _, x := range in {
			s.Observe(x)
		}
		return s.Points(), s.Alerts()
	}
	p1, a1 := run()
	p2, a2 := run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("point %d differs across runs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("alert %d differs across runs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

// TestConstantSeries checks the degenerate steady state: every model
// predicts the constant exactly, EWMA wins on the tie-break, and no
// alerts fire.
func TestConstantSeries(t *testing.T) {
	s := NewSeries("c", Config{})
	for i := 0; i < 50; i++ {
		pt := s.Observe(42)
		if pt.Forecast != 42 {
			t.Fatalf("window %d: forecast %v, want 42", i, pt.Forecast)
		}
		if pt.Model != ModelEWMA {
			t.Fatalf("window %d: model %v, want ewma on ties", i, pt.Model)
		}
	}
	if alerts := s.Alerts(); len(alerts) != 0 {
		t.Fatalf("constant series raised alerts: %+v", alerts)
	}
}

// TestTrendSelection checks that a steady linear ramp hands the
// selection to the trend model, whose extrapolation then beats EWMA's
// systematic lag.
func TestTrendSelection(t *testing.T) {
	s := NewSeries("t", Config{})
	var last Point
	for i := 0; i < 40; i++ {
		last = s.Observe(float64(100 + 10*i))
	}
	if last.Model != ModelTrend {
		t.Fatalf("ramp selected %v, want trend", last.Model)
	}
	next := float64(100 + 10*40)
	if diff := last.Forecast - next; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("trend forecast %v, want %v", last.Forecast, next)
	}
}

// TestSeasonalSelection checks that a strictly periodic series hands
// the selection to the seasonal-naive model and forecasts exactly one
// period back.
func TestSeasonalSelection(t *testing.T) {
	period := []float64{10, 500, 20, 30}
	s := NewSeries("s", Config{Season: 4, Warmup: 1 << 30}) // alerts off
	var last Point
	for i := 0; i < 48; i++ {
		last = s.Observe(period[i%4])
	}
	if last.Model != ModelSeasonal {
		t.Fatalf("periodic series selected %v, want seasonal", last.Model)
	}
	if want := period[48%4]; last.Forecast != want {
		t.Fatalf("seasonal forecast %v, want %v", last.Forecast, want)
	}
}

// TestWarmupSuppressesAlerts checks that bursts inside the warmup
// window stay silent and identical bursts after it alert.
func TestWarmupSuppressesAlerts(t *testing.T) {
	cfg := Config{Warmup: 5, BurstK: 2, Season: 3}
	s := NewSeries("w", cfg)
	s.Observe(100)
	s.Observe(1000) // burst at window 1: inside warmup
	for i := 2; i < 5; i++ {
		s.Observe(100)
	}
	if n := len(s.Alerts()); n != 0 {
		t.Fatalf("warmup window raised %d alerts: %+v", n, s.Alerts())
	}
	s.Observe(10000) // window 5: past warmup
	found := false
	for _, a := range s.Alerts() {
		if a.Window == 5 && a.Kind == AlertObserved {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-warmup burst raised no observed alert: %+v", s.Alerts())
	}
}

// TestMinBaselineFloor checks that near-idle series don't alert on the
// first real work when the floor covers it.
func TestMinBaselineFloor(t *testing.T) {
	s := NewSeries("f", Config{MinBaseline: 1000, BurstK: 2, Warmup: 1})
	s.Observe(0)
	s.Observe(0)
	s.Observe(1500) // above 2×EWMA(≈0) but below 2×floor
	if n := len(s.Alerts()); n != 0 {
		t.Fatalf("floored series alerted: %+v", s.Alerts())
	}
	s.Observe(5000) // above 2×floor too
	if n := len(s.Alerts()); n == 0 {
		t.Fatal("genuine burst above the floor raised no alert")
	}
}

// TestTrackerFansOut checks that one window feeds all three tracked
// series with its own rate helpers' values.
func TestTrackerFansOut(t *testing.T) {
	tr := NewTracker(Config{})
	w := attrib.Window{
		Start: 0, End: 10 * sim.Millisecond,
		Ops: 4, Blocks: 2048, SumDur: 8 * sim.Millisecond, Busy: 10 * sim.Millisecond,
	}
	tr.ObserveWindow(w)
	if got := tr.Windows(); got != 1 {
		t.Fatalf("Windows() = %d, want 1", got)
	}
	checks := map[string]float64{"bps": w.BPS(), "bw": w.Bandwidth(), "iops": w.IOPS()}
	for name, want := range checks {
		s := tr.SeriesByName(name)
		if s == nil {
			t.Fatalf("series %q missing", name)
		}
		if got := s.Last().Observed; got != want {
			t.Errorf("series %q observed %v, want %v", name, got, want)
		}
	}
}

// TestTrackerBandwidthFloor checks that the bw series' burst floor is
// the BPS floor scaled to bytes, so both floors mean the same physical
// rate.
func TestTrackerBandwidthFloor(t *testing.T) {
	tr := NewTracker(Config{MinBaseline: 7})
	bw := tr.SeriesByName("bw")
	if got, want := bw.cfg.MinBaseline, 7.0*trace.BlockSize; got != want {
		t.Fatalf("bw MinBaseline = %v, want %v", got, want)
	}
	if got := tr.SeriesByName("bps").cfg.MinBaseline; got != 7 {
		t.Fatalf("bps MinBaseline = %v, want 7", got)
	}
}

// TestConfigDefaults checks the zero config resolves to the documented
// defaults.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	want := Config{Alpha: 0.3, Season: 8, TrendWindow: 8, ErrWindow: 16, BurstK: 2.5, MinBaseline: 1, Warmup: 8}
	if c != want {
		t.Fatalf("defaults = %+v, want %+v", c, want)
	}
}
