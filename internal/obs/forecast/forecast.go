// Package forecast is the online prediction layer of the observability
// subsystem: it consumes the streaming windowed estimator's series
// (BPS, bandwidth, IOPS per fixed window) one closed window at a time
// and emits one-step-ahead forecasts and burst alerts while the run is
// still in flight — the LASSi-style "metrics first, act before the
// burst lands" model applied to the paper's metric.
//
// Three cheap models run side by side per series — an EWMA baseline, a
// seasonal-naive predictor (value one season ago), and a rolling
// linear-trend extrapolation — and the emitted forecast is whichever
// model currently has the lowest rolling absolute error on its past
// one-step-ahead predictions. Everything is pure float arithmetic over
// the observed sequence in order: equal inputs produce equal forecasts,
// so pinned series golden-test the whole layer.
package forecast

import (
	"fmt"

	"bps/internal/obs/attrib"
	"bps/internal/trace"
)

// Model identifies one of the candidate predictors.
type Model int

const (
	// ModelEWMA predicts the exponentially weighted moving average of
	// everything seen so far.
	ModelEWMA Model = iota

	// ModelTrend fits a least-squares line to the last TrendWindow
	// observations and extrapolates one step.
	ModelTrend

	// ModelSeasonal predicts the value observed one season (Season
	// windows) ago.
	ModelSeasonal

	numModels
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelEWMA:
		return "ewma"
	case ModelTrend:
		return "trend"
	case ModelSeasonal:
		return "seasonal"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Config parameterizes the predictor. The zero value is usable: every
// field falls back to the default noted on it.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher tracks
	// faster. Default 0.3.
	Alpha float64

	// Season is the seasonal-naive lag in windows. Default 8.
	Season int

	// TrendWindow is the linear model's fit window. Default 8.
	TrendWindow int

	// ErrWindow is the rolling window (in one-step-ahead predictions)
	// over which per-model error is scored for selection. Default 16.
	ErrWindow int

	// BurstK is the burst threshold: an observed or forecast value
	// above BurstK times the EWMA baseline raises an alert. Default 2.5.
	BurstK float64

	// MinBaseline floors the baseline used in the burst comparison, so
	// near-idle stretches don't alert on the first real work. Values
	// are in the series' own unit (blocks/s for BPS). Default 1.
	MinBaseline float64

	// Warmup suppresses alerts for the first Warmup windows of a
	// series, while the baseline is still settling. Default Season.
	Warmup int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Season <= 0 {
		c.Season = 8
	}
	if c.TrendWindow <= 1 {
		c.TrendWindow = 8
	}
	if c.ErrWindow <= 0 {
		c.ErrWindow = 16
	}
	if c.BurstK <= 1 {
		c.BurstK = 2.5
	}
	if c.MinBaseline <= 0 {
		c.MinBaseline = 1
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Season
	}
	return c
}

// AlertKind distinguishes how a burst was detected.
type AlertKind int

const (
	// AlertObserved fires when a window's observed value crossed the
	// threshold.
	AlertObserved AlertKind = iota

	// AlertForecast fires when the forecast for the next window crosses
	// the threshold before any observation does — the actionable one.
	AlertForecast
)

// String implements fmt.Stringer.
func (k AlertKind) String() string {
	if k == AlertForecast {
		return "forecast"
	}
	return "observed"
}

// Alert is one burst detection.
type Alert struct {
	Series string    // series name ("bps", "bw", "iops")
	Window int       // index of the window that triggered it
	Kind   AlertKind // observed or forecast
	Value  float64   // the offending value (observed, or forecast for Window+1)
	Limit  float64   // the threshold it crossed (BurstK × baseline)
}

// Point is the predictor's output for one observed window.
type Point struct {
	Index    int     // window index (0-based over the observed sequence)
	Observed float64 // the value fed in
	Forecast float64 // one-step-ahead forecast for window Index+1
	Model    Model   // the model that produced Forecast
	Baseline float64 // EWMA baseline before this observation
}

// Series is the online predictor for one metric. Feed it closed-window
// values in order with Observe; it is not safe for concurrent use.
type Series struct {
	name string
	cfg  Config

	hist []float64 // all observations (index = window)
	ewma float64

	// pred[m] is model m's standing prediction for the next
	// observation; err[m] its rolling absolute errors.
	pred [numModels]float64
	errs [numModels][]float64

	points []Point
	alerts []Alert
}

// NewSeries returns a predictor for one named series.
func NewSeries(name string, cfg Config) *Series {
	return &Series{name: name, cfg: cfg.withDefaults()}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Observe feeds the next window's observed value and returns the
// predictor's point for it (forecast for the next window, chosen model,
// baseline). Alerts raised by this observation are appended to Alerts.
func (s *Series) Observe(x float64) Point {
	idx := len(s.hist)
	baseline := s.ewma
	if idx == 0 {
		baseline = x
	}

	// Score each model's standing prediction against the observation.
	if idx > 0 {
		for m := Model(0); m < numModels; m++ {
			e := s.pred[m] - x
			if e < 0 {
				e = -e
			}
			s.errs[m] = append(s.errs[m], e)
			if len(s.errs[m]) > s.cfg.ErrWindow {
				s.errs[m] = s.errs[m][1:]
			}
		}
	}

	s.hist = append(s.hist, x)
	if idx == 0 {
		s.ewma = x
	} else {
		s.ewma = s.cfg.Alpha*x + (1-s.cfg.Alpha)*s.ewma
	}

	// Refresh each model's prediction for the next window.
	s.pred[ModelEWMA] = s.ewma
	s.pred[ModelTrend] = clampNonNeg(s.trendNext())
	s.pred[ModelSeasonal] = s.seasonalNext()

	best := s.bestModel()
	pt := Point{
		Index:    idx,
		Observed: x,
		Forecast: s.pred[best],
		Model:    best,
		Baseline: baseline,
	}
	s.points = append(s.points, pt)

	// Burst detection against the pre-observation baseline.
	if idx >= s.cfg.Warmup {
		limit := s.cfg.BurstK * maxf(baseline, s.cfg.MinBaseline)
		if x > limit {
			s.alerts = append(s.alerts, Alert{
				Series: s.name, Window: idx, Kind: AlertObserved, Value: x, Limit: limit,
			})
		}
		// The forecast alert compares against the post-observation
		// baseline: "given everything seen, the next window is
		// predicted to burst".
		flimit := s.cfg.BurstK * maxf(s.ewma, s.cfg.MinBaseline)
		if pt.Forecast > flimit {
			s.alerts = append(s.alerts, Alert{
				Series: s.name, Window: idx, Kind: AlertForecast, Value: pt.Forecast, Limit: flimit,
			})
		}
	}
	return pt
}

// trendNext extrapolates a least-squares line over the last TrendWindow
// observations one step forward. With fewer than two observations it
// repeats the last value.
func (s *Series) trendNext() float64 {
	n := len(s.hist)
	if n == 0 {
		return 0
	}
	k := s.cfg.TrendWindow
	if k > n {
		k = n
	}
	if k < 2 {
		return s.hist[n-1]
	}
	win := s.hist[n-k:]
	// x = 0..k-1, predict at x = k.
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range win {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	fk := float64(k)
	den := fk*sumXX - sumX*sumX
	if den == 0 {
		return win[k-1]
	}
	slope := (fk*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / fk
	return intercept + slope*fk
}

// seasonalNext predicts the value one season ago; before a full season
// of history it repeats the last value.
func (s *Series) seasonalNext() float64 {
	n := len(s.hist)
	if n == 0 {
		return 0
	}
	// The next observation has index n; one season before it is n-Season.
	if i := n - s.cfg.Season; i >= 0 {
		return s.hist[i]
	}
	return s.hist[n-1]
}

// bestModel returns the model with the lowest rolling mean absolute
// error, preferring the earlier model (EWMA < trend < seasonal) on ties
// or when no errors have been scored yet.
func (s *Series) bestModel() Model {
	best := ModelEWMA
	bestMAE := mae(s.errs[ModelEWMA])
	for m := ModelEWMA + 1; m < numModels; m++ {
		if e := mae(s.errs[m]); e < bestMAE {
			best, bestMAE = m, e
		}
	}
	return best
}

// Points returns every observed point in order.
func (s *Series) Points() []Point { return s.points }

// Alerts returns every alert raised so far in order.
func (s *Series) Alerts() []Alert { return s.alerts }

// Last returns the most recent point (zero Point before any
// observation).
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{Index: -1}
	}
	return s.points[len(s.points)-1]
}

// MAE returns the selected model's current rolling mean absolute error.
func (s *Series) MAE() float64 { return mae(s.errs[s.bestModel()]) }

func mae(errs []float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	return sum / float64(len(errs))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// TrackedSeries lists the window metrics the tracker forecasts, in
// feed order.
var TrackedSeries = []string{"bps", "bw", "iops"}

// Tracker runs one predictor per tracked window metric and fans each
// closed window out to all of them.
type Tracker struct {
	cfg    Config
	series []*Series
}

// NewTracker returns a tracker with one Series per TrackedSeries name.
// The BPS config is used as given; the bandwidth series scales
// MinBaseline by the block size so the floor means the same physical
// rate.
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{cfg: cfg}
	for _, name := range TrackedSeries {
		scfg := cfg
		if name == "bw" {
			scfg.MinBaseline = cfg.MinBaseline * trace.BlockSize
		}
		t.series = append(t.series, NewSeries(name, scfg))
	}
	return t
}

// ObserveWindow feeds one closed window to every tracked series and
// returns the alerts this window raised, in series order.
func (t *Tracker) ObserveWindow(w attrib.Window) []Alert {
	var out []Alert
	for _, s := range t.series {
		before := len(s.alerts)
		switch s.name {
		case "bps":
			s.Observe(w.BPS())
		case "bw":
			s.Observe(w.Bandwidth())
		case "iops":
			s.Observe(w.IOPS())
		}
		out = append(out, s.alerts[before:]...)
	}
	return out
}

// Series returns the tracked series in TrackedSeries order.
func (t *Tracker) Series() []*Series { return t.series }

// SeriesByName returns one tracked series (nil when absent).
func (t *Tracker) SeriesByName(name string) *Series {
	for _, s := range t.series {
		if s.name == name {
			return s
		}
	}
	return nil
}

// Alerts returns every alert across all series, ordered by window then
// series feed order.
func (t *Tracker) Alerts() []Alert {
	var out []Alert
	for i := 0; ; i++ {
		found := false
		for _, s := range t.series {
			for _, a := range s.alerts {
				if a.Window == i {
					out = append(out, a)
					found = true
				}
			}
		}
		if !found {
			done := true
			for _, s := range t.series {
				if len(s.points) > i {
					done = false
					break
				}
			}
			if done {
				return out
			}
		}
	}
}

// Windows returns how many windows have been observed.
func (t *Tracker) Windows() int {
	if len(t.series) == 0 {
		return 0
	}
	return len(t.series[0].points)
}
