package attrib

import (
	"bytes"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"bps/internal/sim"
)

// parseFolded is the test-side parser of the collapsed-stacks format:
// one "frame;frame;... weight" line per stack. It rejects anything
// WriteFolded would never emit (empty frames, missing weight, negative
// or non-numeric weights), returning an error the fuzzer uses to skip
// invalid inputs.
func parseFolded(data []byte) ([]Stack, error) {
	var stacks []Stack
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("line %d: no weight separator", ln+1)
		}
		weight, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("line %d: bad weight %q", ln+1, line[sp+1:])
		}
		frames := strings.Split(line[:sp], ";")
		for _, f := range frames {
			if f == "" || strings.ContainsAny(f, " \n") {
				return nil, fmt.Errorf("line %d: bad frame %q", ln+1, f)
			}
		}
		stacks = append(stacks, Stack{Frames: frames, Time: sim.Time(weight)})
	}
	return stacks, nil
}

// foldedBytes renders a report's stacks.
func foldedBytes(t testing.TB, stacks []Stack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := (&Report{Stacks: stacks}).WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return buf.Bytes()
}

// collectorFolded builds a small real report and renders it — the
// golden-corpus seed shared by the round-trip test and the fuzzer.
func collectorFolded(t testing.TB) []byte {
	t.Helper()
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 100)
	c.AddSpan(LayerIndex(LayerRPC), 0, 90)
	c.AddSpan(LayerIndex(LayerServer), 10, 80)
	c.AddSpan(LayerIndex(LayerNet), 20, 60)
	c.AddSpan(LayerIndex(LayerDevice), 30, 50)
	return foldedBytes(t, c.Report().Stacks)
}

// TestFoldedRoundTrip: a real collector report survives write → parse →
// write byte-identically.
func TestFoldedRoundTrip(t *testing.T) {
	out := collectorFolded(t)
	stacks, err := parseFolded(out)
	if err != nil {
		t.Fatalf("parseFolded: %v\n%s", err, out)
	}
	if len(stacks) == 0 {
		t.Fatal("no stacks in rendered report")
	}
	if again := foldedBytes(t, stacks); !bytes.Equal(again, out) {
		t.Fatalf("round trip changed bytes:\n got %q\nwant %q", again, out)
	}
}

// FuzzFoldedRoundTrip feeds arbitrary bytes through the test parser;
// whenever they parse as a valid folded file, writing the parsed stacks
// and re-parsing must reproduce them exactly.
func FuzzFoldedRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("app;client 5\n"))
	f.Add([]byte("app;rpc;server;device 123456789\napp;rpc;server;net 42\n"))
	f.Add([]byte("bad line without weight\n"))
	f.Add(collectorFolded(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		stacks, err := parseFolded(data)
		if err != nil {
			return // not a folded file; nothing to round-trip
		}
		out := foldedBytes(t, stacks)
		back, err := parseFolded(out)
		if err != nil {
			t.Fatalf("rendered output did not parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(back, stacks) {
			t.Fatalf("round trip changed stacks:\n got %+v\nwant %+v", back, stacks)
		}
	})
}
