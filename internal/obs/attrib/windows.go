package attrib

import (
	"sort"

	"bps/internal/sim"
	"bps/internal/trace"
)

// Window is one fixed window of the streaming estimator's time series.
// Windows are aligned to the simulation clock origin (start = i·width),
// completed work is attributed to the window containing the access's
// end time (completion-time attribution, like iostat), and Busy is the
// intersection of the run's overlap union with the window — the same
// semantics as the post-hoc core.Timeline, produced live.
type Window struct {
	Start, End sim.Time

	Ops    int64    // accesses completed in the window
	Blocks int64    // required blocks of those accesses
	SumDur sim.Time // summed durations of those accesses (ARPT numerator)
	Busy   sim.Time // I/O activity inside the window (overlap union ∩ window)
}

// BPS returns the window's blocks per second of busy time.
func (w Window) BPS() float64 { return winRate(float64(w.Blocks), w.Busy) }

// IOPS returns the window's completed operations per second of busy time.
func (w Window) IOPS() float64 { return winRate(float64(w.Ops), w.Busy) }

// Bandwidth returns the window's required-byte bandwidth (blocks ×
// block size over busy time) in bytes/second — required, not moved:
// per-window file-system movement is not attributable to a window.
func (w Window) Bandwidth() float64 {
	return winRate(float64(w.Blocks*trace.BlockSize), w.Busy)
}

// ARPT returns the window's average response time per access in seconds.
func (w Window) ARPT() float64 {
	if w.Ops == 0 {
		return 0
	}
	return w.SumDur.Seconds() / float64(w.Ops)
}

// Utilization returns the fraction of the window with I/O in flight.
func (w Window) Utilization() float64 {
	if w.End <= w.Start {
		return 0
	}
	return float64(w.Busy) / float64(w.End-w.Start)
}

func winRate(v float64, t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return v / t.Seconds()
}

// WindowEstimator ingests application accesses as they complete and
// maintains per-window accumulators on a fixed grid. Accesses arrive
// in completion order (the simulation dispatches completions in time
// order), so ops/blocks/durations land in their bucket in O(1); the
// per-window busy union is resolved once at Windows().
type WindowEstimator struct {
	every sim.Time
	ops   []int64
	blk   []int64
	dur   []sim.Time
	ivs   []interval

	minStart sim.Time
	maxEnd   sim.Time
	any      bool
}

// NewWindowEstimator returns an estimator with the given window width
// (10 ms when every is not positive).
func NewWindowEstimator(every sim.Time) *WindowEstimator {
	if every <= 0 {
		every = 10 * sim.Millisecond
	}
	return &WindowEstimator{every: every}
}

// Every returns the window width.
func (e *WindowEstimator) Every() sim.Time {
	if e == nil {
		return 0
	}
	return e.every
}

// Add ingests one completed access.
func (e *WindowEstimator) Add(blocks int64, start, end sim.Time) {
	if e == nil || end < start || start < 0 {
		return
	}
	if !e.any || start < e.minStart {
		e.minStart = start
	}
	if end > e.maxEnd {
		e.maxEnd = end
	}
	e.any = true

	idx := int(end / e.every)
	if end == sim.Time(idx)*e.every && idx > 0 {
		idx-- // completion exactly on a boundary belongs to the left window
	}
	for len(e.ops) <= idx {
		e.ops = append(e.ops, 0)
		e.blk = append(e.blk, 0)
		e.dur = append(e.dur, 0)
	}
	e.ops[idx]++
	e.blk[idx] += blocks
	e.dur[idx] += end - start
	if end > start {
		e.ivs = append(e.ivs, interval{start, end})
	}
}

// Windows assembles the time series: every window from the first
// access's start to the last completion, empty windows included so the
// series is continuous.
func (e *WindowEstimator) Windows() []Window {
	if e == nil || !e.any {
		return nil
	}
	first := int(e.minStart / e.every)
	last := int((e.maxEnd - 1) / e.every)
	if len(e.ops) > 0 && len(e.ops)-1 > last {
		last = len(e.ops) - 1
	}
	wins := make([]Window, last-first+1)
	for i := range wins {
		wins[i].Start = sim.Time(first+i) * e.every
		wins[i].End = sim.Time(first+i+1) * e.every
	}
	for idx := first; idx < len(e.ops); idx++ {
		wins[idx-first].Ops = e.ops[idx]
		wins[idx-first].Blocks = e.blk[idx]
		wins[idx-first].SumDur = e.dur[idx]
	}

	// Busy: one sort, one Fig. 3 merge, spreading each merged span
	// over the windows it crosses.
	ivs := append([]interval(nil), e.ivs...)
	if len(ivs) == 0 {
		return wins
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	spread := func(iv interval) {
		for t := iv.start; t < iv.end; {
			w := int(t/e.every) - first
			if w < 0 {
				t = sim.Time(first) * e.every
				continue
			}
			if w >= len(wins) {
				break
			}
			seg := iv.end
			if seg > wins[w].End {
				seg = wins[w].End
			}
			wins[w].Busy += seg - t
			t = seg
		}
	}
	cur := ivs[0]
	for _, next := range ivs[1:] {
		if cur.end < next.start {
			spread(cur)
			cur = next
			continue
		}
		if next.end > cur.end {
			cur.end = next.end
		}
	}
	spread(cur)
	return wins
}
