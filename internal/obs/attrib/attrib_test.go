package attrib

import (
	"testing"

	"bps/internal/sim"
)

// layer index shorthands for test readability.
var (
	liRPC    = LayerIndex(LayerRPC)
	liServer = LayerIndex(LayerServer)
	liNet    = LayerIndex(LayerNet)
	liDevice = LayerIndex(LayerDevice)
)

func layerByName(t *testing.T, rep *Report, name string) LayerTime {
	t.Helper()
	for _, l := range rep.Layers {
		if l.Layer == name {
			return l
		}
	}
	t.Fatalf("layer %q not in report", name)
	return LayerTime{}
}

// TestSweepPartition checks the core invariant on a hand-built nesting:
// every instant of the app union is charged to exactly one layer (the
// innermost active one), so the exclusive times partition T.
func TestSweepPartition(t *testing.T) {
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 100)
	c.AddSpan(liServer, 0, 50)
	c.AddSpan(liNet, 5, 40)
	c.AddSpan(liDevice, 10, 30)
	rep := c.Report()

	if rep.Total != 100 {
		t.Fatalf("Total = %d, want 100", rep.Total)
	}
	if got := rep.ExclusiveSum(); got != rep.Total {
		t.Fatalf("ExclusiveSum = %d, want Total %d", got, rep.Total)
	}
	want := map[string]sim.Time{
		LayerServer: 15, // [0,5) + [40,50)
		LayerNet:    15, // [5,10) + [30,40)
		LayerDevice: 20, // [10,30)
		LayerClient: 50, // [50,100)
	}
	for name, excl := range want {
		if l := layerByName(t, rep, name); l.Exclusive != excl {
			t.Errorf("%s exclusive = %d, want %d", name, l.Exclusive, excl)
		}
	}
	// Busy is each layer's own union, independent of nesting.
	if l := layerByName(t, rep, LayerNet); l.Busy != 35 || l.Spans != 1 {
		t.Errorf("net busy/spans = %d/%d, want 35/1", l.Busy, l.Spans)
	}
	if l := layerByName(t, rep, LayerServer); l.Busy != 50 {
		t.Errorf("server busy = %d, want 50", l.Busy)
	}
	if rep.Dominant() != LayerClient {
		t.Errorf("Dominant = %q, want %q", rep.Dominant(), LayerClient)
	}
	// Stack times partition T too.
	var stackSum sim.Time
	for _, st := range rep.Stacks {
		stackSum += st.Time
	}
	if stackSum != rep.Total {
		t.Errorf("stack sum = %d, want Total %d", stackSum, rep.Total)
	}
}

// TestSweepConcurrencyCountedOnce overlays two processes' concurrent
// device spans: the overlap must be counted once, exactly as the
// paper's Fig. 3 counts concurrent accesses once.
func TestSweepConcurrencyCountedOnce(t *testing.T) {
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 10)
	c.AddApp(5, 25) // overlapping second process: union is [0,25)
	c.AddSpan(liDevice, 0, 8)
	c.AddSpan(liDevice, 4, 12) // overlaps the first span
	rep := c.Report()

	if rep.Total != 25 {
		t.Fatalf("Total = %d, want 25 (union of overlapping apps)", rep.Total)
	}
	dev := layerByName(t, rep, LayerDevice)
	if dev.Exclusive != 12 {
		t.Errorf("device exclusive = %d, want 12 (union of overlapping spans)", dev.Exclusive)
	}
	if dev.Busy != 12 || dev.Spans != 2 {
		t.Errorf("device busy/spans = %d/%d, want 12/2", dev.Busy, dev.Spans)
	}
	if got := rep.ExclusiveSum(); got != rep.Total {
		t.Fatalf("ExclusiveSum = %d, want Total %d", got, rep.Total)
	}
}

// TestSweepOffPath: layer activity outside every app interval is
// reported as off-path, never charged to T.
func TestSweepOffPath(t *testing.T) {
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 10)
	c.AddSpan(liServer, 5, 20) // [10,20) is after the app finished
	rep := c.Report()

	if rep.Total != 10 {
		t.Fatalf("Total = %d, want 10", rep.Total)
	}
	srv := layerByName(t, rep, LayerServer)
	if srv.Exclusive != 5 || srv.OffPath != 10 {
		t.Errorf("server exclusive/offpath = %d/%d, want 5/10", srv.Exclusive, srv.OffPath)
	}
	if got := rep.ExclusiveSum(); got != rep.Total {
		t.Fatalf("ExclusiveSum = %d, want Total %d", got, rep.Total)
	}
}

// TestDominantTieBreaksDeeper: equal exclusive shares resolve to the
// deeper (closer-to-hardware) layer.
func TestDominantTieBreaksDeeper(t *testing.T) {
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 20)
	c.AddSpan(liNet, 0, 10)
	c.AddSpan(liDevice, 10, 20)
	rep := c.Report()
	if rep.Dominant() != LayerDevice {
		t.Errorf("Dominant = %q, want device (deeper wins ties)", rep.Dominant())
	}

	var empty *Report
	if empty.Dominant() != "" {
		t.Errorf("nil report Dominant = %q, want \"\"", empty.Dominant())
	}
	if (&Report{}).Dominant() != "" {
		t.Errorf("zero report Dominant = %q, want \"\"", (&Report{}).Dominant())
	}
}

// TestLayerOf checks the span-identifier classification used by the
// observer's Begin.
func TestLayerOf(t *testing.T) {
	cases := []struct {
		cat, name string
		want      int
	}{
		{"device", "hdd read", liDevice},
		{"device", "ssd write", liDevice},
		{"net", "cn0->switch", liNet},
		{"net", "transfer", liNet},
		{"cache", "hit", LayerIndex(LayerCache)},
		{"pfs", "read", liRPC},
		{"pfs", "write", liRPC},
		{"pfs", "retry", LayerIndex(LayerRetry)},
		{"pfs", "ios0 serve", liServer},
		{"pfs", "ios12 serve", liServer},
		{"app", "access", -1},
		{"counter", "x", -1},
	}
	for _, tc := range cases {
		if got := LayerOf(tc.cat, tc.name); got != tc.want {
			t.Errorf("LayerOf(%q, %q) = %d, want %d", tc.cat, tc.name, got, tc.want)
		}
	}
}

// TestCollectorDisabledAndNil: span collection off (windows-only) and
// nil collectors absorb everything.
func TestCollectorDisabledAndNil(t *testing.T) {
	c := NewCollector(Config{})
	c.AddApp(0, 10)
	c.AddSpan(liDevice, 0, 5)
	c.AddAccess(8, 0, 10)
	rep := c.Report()
	if rep.Total != 0 || rep.Layers != nil || rep.Windows != nil {
		t.Fatalf("disabled collector produced data: %+v", rep)
	}

	var nc *Collector
	nc.AddApp(0, 1)
	nc.AddSpan(0, 0, 1)
	nc.AddAccess(1, 0, 1)
	if nc.Report() != nil {
		t.Fatal("nil collector returned a report")
	}
}

// TestReportCached: Report computes once and returns the same pointer.
func TestReportCached(t *testing.T) {
	c := NewCollector(Config{Spans: true})
	c.AddApp(0, 10)
	if c.Report() != c.Report() {
		t.Fatal("Report not cached")
	}
}
