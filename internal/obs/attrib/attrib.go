// Package attrib is the critical-path profiler of the observability
// subsystem: it decomposes the BPS metric's overlapped I/O time T into
// the exclusive contribution of each stack layer.
//
// The paper's Fig. 3 algorithm computes T as the union of all
// application access intervals; this package runs the same sweep over
// the per-layer spans recorded *inside* those intervals (device
// service, network transfer, server request handling, client cache
// hits, retry backoff) and charges every instant of T to exactly one
// layer — the innermost one active at that instant. Concurrent activity
// is counted once, exactly as Fig. 3 counts concurrent accesses once,
// so the per-layer exclusive times sum to T without rounding games:
// "blame" is a partition of the overlapped time, not a sum of
// busy-times that can exceed it.
//
// The collector also carries the streaming windowed estimator (BPS,
// IOPS, bandwidth, and ARPT per fixed window, fed live at access
// completion) and renders flame-graph-compatible folded stacks of the
// layer nesting over T.
package attrib

import (
	"sort"

	"bps/internal/sim"
)

// Layer names, in stack order from the application downward. The order
// encodes nesting depth, not call order: when several layers are active
// at once (across any of the run's processes), the innermost — the
// highest index — is the one actually limiting progress, and the sweep
// charges the instant to it.
const (
	LayerCache  = "cache"  // client page-cache hit service
	LayerRPC    = "rpc"    // pfs client request in flight (fan-out, waiting)
	LayerRetry  = "retry"  // recovery backoff between attempts
	LayerServer = "server" // pfs server handling a request
	LayerNet    = "net"    // fabric transfer legs
	LayerDevice = "device" // device service time
	LayerClient = "client" // app interval covered by no recorded span
)

// StackOrder lists the span-producing layers outermost-first; the
// synthetic LayerClient (uncovered application time) is not in it.
var StackOrder = []string{LayerCache, LayerRPC, LayerRetry, LayerServer, LayerNet, LayerDevice}

// NumLayers is len(StackOrder); collectors index layers by position.
var NumLayers = len(StackOrder)

// LayerIndex returns a layer's position in StackOrder, or -1.
func LayerIndex(name string) int {
	for i, n := range StackOrder {
		if n == name {
			return i
		}
	}
	return -1
}

// LayerOf classifies a span's (category, name) pair — the identifiers
// the instrumented layers already use for Chrome tracing — into a
// StackOrder index, or -1 for spans that carry no attribution (the
// "app" category arrives via AddApp, not as a layer span).
func LayerOf(cat, name string) int {
	switch cat {
	case "device":
		return LayerIndex(LayerDevice)
	case "net":
		return LayerIndex(LayerNet)
	case "cache":
		return LayerIndex(LayerCache)
	case "pfs":
		switch {
		case name == "retry":
			return LayerIndex(LayerRetry)
		case len(name) >= 5 && name[len(name)-5:] == "serve":
			return LayerIndex(LayerServer)
		default:
			return LayerIndex(LayerRPC)
		}
	}
	return -1
}

// interval is a half-open span of simulated time.
type interval struct {
	start, end sim.Time
}

// Config parameterizes a collector.
type Config struct {
	// Spans enables layer-span collection and the sweep-line blame
	// report; off, the collector only serves the windowed estimator.
	Spans bool

	// WindowEvery, when positive, sizes the streaming windowed
	// estimator's fixed windows.
	WindowEvery sim.Time
}

// Collector accumulates the raw material of one run's attribution:
// closed layer spans, application access intervals, and the streaming
// window accumulators. It follows the simulation's single-threaded
// discipline — all mutation happens in simulation context or after the
// run — and computes its Report lazily, once.
type Collector struct {
	cfg    Config
	spans  [][]interval // indexed by StackOrder position
	counts []int
	apps   []interval
	blocks int64
	est    *WindowEstimator

	report *Report
}

// NewCollector returns an empty collector.
func NewCollector(cfg Config) *Collector {
	c := &Collector{cfg: cfg}
	if cfg.Spans {
		c.spans = make([][]interval, NumLayers)
		c.counts = make([]int, NumLayers)
	}
	if cfg.WindowEvery > 0 {
		c.est = NewWindowEstimator(cfg.WindowEvery)
	}
	return c
}

// AddSpan records one closed layer span. layer is a StackOrder index
// (see LayerOf); out-of-range layers and empty spans are dropped.
func (c *Collector) AddSpan(layer int, start, end sim.Time) {
	if c == nil || c.spans == nil || layer < 0 || layer >= NumLayers || end <= start {
		return
	}
	c.spans[layer] = append(c.spans[layer], interval{start, end})
	c.counts[layer]++
}

// AddApp records one application access interval — the material of the
// paper's T. Zero-length accesses still count toward the window
// estimator's ops (via AddAccess) but contribute no time here.
func (c *Collector) AddApp(start, end sim.Time) {
	if c == nil || c.spans == nil || end <= start {
		return
	}
	c.apps = append(c.apps, interval{start, end})
}

// AddAccess feeds one completed application access to the streaming
// windowed estimator (no-op when windows are disabled).
func (c *Collector) AddAccess(blocks int64, start, end sim.Time) {
	if c == nil || c.est == nil {
		return
	}
	c.est.Add(blocks, start, end)
}

// AddBlocks accumulates the run's required blocks (the BPS numerator B)
// alongside the application intervals, so the report can state the
// run's own BPS — Blocks over Total — next to the per-layer blame.
func (c *Collector) AddBlocks(blocks int64) {
	if c == nil {
		return
	}
	c.blocks += blocks
}

// LayerTime is one layer's share of the attribution report.
type LayerTime struct {
	Layer string

	// Exclusive is the layer's share of the overlapped time T: the
	// part of T during which this layer was the innermost active one.
	// Exclusive times over all layers (client included) sum to T.
	Exclusive sim.Time

	// Busy is the union of the layer's own spans — its wall-clock
	// activity regardless of deeper layers. Busy times overlap across
	// layers and may individually exceed Exclusive.
	Busy sim.Time

	// Spans is the number of spans the layer closed.
	Spans int

	// OffPath is layer activity outside the application intervals —
	// work no application access was waiting on (e.g. a server
	// finishing an RPC its client already timed out on).
	OffPath sim.Time
}

// Stack is one folded flame-graph stack: the layer nesting observed
// during Time of the overlapped interval, outermost frame first.
type Stack struct {
	Frames []string
	Time   sim.Time
}

// Report is one run's computed attribution.
type Report struct {
	// Total is T: the union of the application access intervals, the
	// denominator of BPS.
	Total sim.Time

	// Blocks is B: the required 512-byte blocks accumulated via
	// AddBlocks (0 when the feeder does not track blocks).
	Blocks int64

	// CeilingBPS is the analytic roofline ceiling of the observed
	// configuration, set by the caller that knows the testbed
	// parameters (internal/roofline); 0 when no model applies. It
	// exists so the blame table can print headroom — how much of the
	// achievable roof the run's BPS reached — next to where the lost
	// time went.
	CeilingBPS float64

	// Layers holds one entry per StackOrder layer plus a final
	// LayerClient entry, in that order.
	Layers []LayerTime

	// Stacks are the folded flame-graph stacks over T, sorted by path.
	Stacks []Stack

	// Windows is the streaming estimator's time series (nil when
	// windows were disabled); WindowEvery is its window width.
	Windows     []Window
	WindowEvery sim.Time

	// Latency holds per-histogram latency quantiles harvested from the
	// metrics registry (filled by the observer).
	Latency []LatencyRow
}

// LatencyRow is one duration histogram's summary.
type LatencyRow struct {
	Name  string
	Count uint64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
}

// BPS returns the report's own blocks-per-second — Blocks over Total —
// or 0 when either is unknown. Both come from the same application
// records core.Compute consumes, so this equals the post-hoc metric
// exactly.
func (r *Report) BPS() float64 {
	if r == nil || r.Total <= 0 || r.Blocks <= 0 {
		return 0
	}
	return float64(r.Blocks) / r.Total.Seconds()
}

// Headroom returns BPS()/CeilingBPS, or 0 when no ceiling was set.
func (r *Report) Headroom() float64 {
	if r == nil || r.CeilingBPS <= 0 {
		return 0
	}
	return r.BPS() / r.CeilingBPS
}

// ExclusiveSum returns the sum of the per-layer exclusive times; by
// construction it equals Total exactly.
func (r *Report) ExclusiveSum() sim.Time {
	var sum sim.Time
	for _, l := range r.Layers {
		sum += l.Exclusive
	}
	return sum
}

// Dominant returns the layer with the largest exclusive share — the
// run's bottleneck ("" when no application time was attributed). Ties
// resolve to the deeper layer.
func (r *Report) Dominant() string {
	if r == nil || r.Total == 0 {
		return ""
	}
	best := 0
	for i, l := range r.Layers {
		if l.Exclusive >= r.Layers[best].Exclusive {
			best = i
		}
	}
	return r.Layers[best].Layer
}

// LiveWindows returns the estimator's window series as of now, without
// memoizing a report — the live-serving path calls it mid-run, on
// sampler ticks. Nil when windows are disabled. Windows whose end lies
// at or before the current simulated time are final except for Busy,
// which an in-flight long access can still extend retroactively.
func (c *Collector) LiveWindows() []Window {
	if c == nil || c.est == nil {
		return nil
	}
	return c.est.Windows()
}

// WindowEvery returns the estimator's window width (0 when disabled).
func (c *Collector) WindowEvery() sim.Time {
	if c == nil || c.est == nil {
		return 0
	}
	return c.est.Every()
}

// Report computes (once) the attribution from everything collected.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	if c.report != nil {
		return c.report
	}
	rep := &Report{Blocks: c.blocks}
	if c.spans != nil {
		c.sweep(rep)
	}
	if c.est != nil {
		rep.Windows = c.est.Windows()
		rep.WindowEvery = c.est.Every()
	}
	c.report = rep
	return rep
}

// sweepEvent is one boundary of the sweep-line: a depth change of one
// layer (or of the application union, layer == -1).
type sweepEvent struct {
	t     sim.Time
	layer int
	delta int
}

// sweep runs the Fig. 3-style sweep-line over every collected span and
// application interval, partitioning the app union T among the layers.
func (c *Collector) sweep(rep *Report) {
	var evs []sweepEvent
	for li, spans := range c.spans {
		for _, iv := range spans {
			evs = append(evs,
				sweepEvent{iv.start, li, 1},
				sweepEvent{iv.end, li, -1})
		}
	}
	for _, iv := range c.apps {
		evs = append(evs,
			sweepEvent{iv.start, -1, 1},
			sweepEvent{iv.end, -1, -1})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	rep.Layers = make([]LayerTime, NumLayers+1)
	for i, name := range StackOrder {
		rep.Layers[i] = LayerTime{Layer: name, Busy: unionOf(c.spans[i]), Spans: c.counts[i]}
	}
	rep.Layers[NumLayers] = LayerTime{Layer: LayerClient}

	depth := make([]int, NumLayers)
	appDepth := 0
	stacks := make(map[string]sim.Time)

	i := 0
	for i < len(evs) {
		t := evs[i].t
		for i < len(evs) && evs[i].t == t {
			if evs[i].layer < 0 {
				appDepth += evs[i].delta
			} else {
				depth[evs[i].layer] += evs[i].delta
			}
			i++
		}
		if i == len(evs) {
			break
		}
		dt := evs[i].t - t
		if dt == 0 {
			continue
		}
		inner := -1
		for li := NumLayers - 1; li >= 0; li-- {
			if depth[li] > 0 {
				inner = li
				break
			}
		}
		if appDepth > 0 {
			rep.Total += dt
			if inner < 0 {
				rep.Layers[NumLayers].Exclusive += dt
			} else {
				rep.Layers[inner].Exclusive += dt
			}
			stacks[foldKey(depth, inner)] += dt
		} else if inner >= 0 {
			rep.Layers[inner].OffPath += dt
		}
	}

	keys := make([]string, 0, len(stacks))
	for k := range stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Stacks = append(rep.Stacks, Stack{Frames: splitFrames(k), Time: stacks[k]})
	}
}

// foldKey renders the active layer set as a folded stack path rooted at
// "app"; a segment with no active layer folds to app;client.
func foldKey(depth []int, inner int) string {
	if inner < 0 {
		return "app;" + LayerClient
	}
	key := "app"
	for li, d := range depth {
		if d > 0 {
			key += ";" + StackOrder[li]
		}
	}
	return key
}

// splitFrames splits a folded path back into frames.
func splitFrames(key string) []string {
	var frames []string
	for len(key) > 0 {
		j := 0
		for j < len(key) && key[j] != ';' {
			j++
		}
		frames = append(frames, key[:j])
		if j == len(key) {
			break
		}
		key = key[j+1:]
	}
	return frames
}

// unionOf computes the union length of a layer's own spans (the Fig. 3
// merge over one layer instead of the app).
func unionOf(ivs []interval) sim.Time {
	if len(ivs) == 0 {
		return 0
	}
	sorted := append([]interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	var total sim.Time
	cur := sorted[0]
	for _, next := range sorted[1:] {
		if cur.end < next.start {
			total += cur.end - cur.start
			cur = next
			continue
		}
		if next.end > cur.end {
			cur.end = next.end
		}
	}
	return total + cur.end - cur.start
}
