package attrib

import (
	"bufio"
	"io"
	"strconv"
)

// WriteFolded writes the report's stacks in the collapsed/folded
// format FlameGraph's flamegraph.pl and speedscope ingest directly:
// one stack per line, frames joined by semicolons, a space, and the
// sample weight — here the stack's share of the overlapped time T in
// nanoseconds. Lines are sorted by path, so equal reports produce
// byte-identical files.
func (r *Report) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range r.Stacks {
		for i, f := range st.Frames {
			if i > 0 {
				if err := bw.WriteByte(';'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(f); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(' '); err != nil {
			return err
		}
		if _, err := bw.WriteString(strconv.FormatInt(int64(st.Time), 10)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
