package attrib

import (
	"math"
	"reflect"
	"testing"

	"bps/internal/sim"
	"bps/internal/trace"
)

const win = 10 * sim.Millisecond

// TestWindowsCompletionAttribution: work lands in the window containing
// the access's end, with an end exactly on a boundary belonging to the
// left window — the same convention as core.Timeline.
func TestWindowsCompletionAttribution(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(4, 0, win)             // ends exactly on the first boundary → window 0
	e.Add(8, win/2, win+1)       // crosses the boundary → window 1
	e.Add(2, 2*win, 2*win+win/2) // window 2
	wins := e.Windows()

	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	if wins[0].Ops != 1 || wins[0].Blocks != 4 {
		t.Errorf("window 0 ops/blocks = %d/%d, want 1/4", wins[0].Ops, wins[0].Blocks)
	}
	if wins[1].Ops != 1 || wins[1].Blocks != 8 {
		t.Errorf("window 1 ops/blocks = %d/%d, want 1/8", wins[1].Ops, wins[1].Blocks)
	}
	if wins[2].Ops != 1 || wins[2].Blocks != 2 {
		t.Errorf("window 2 ops/blocks = %d/%d, want 1/2", wins[2].Ops, wins[2].Blocks)
	}
	for i, w := range wins {
		if w.Start != sim.Time(i)*win || w.End != sim.Time(i+1)*win {
			t.Errorf("window %d bounds [%d,%d), want [%d,%d)", i, w.Start, w.End,
				sim.Time(i)*win, sim.Time(i+1)*win)
		}
	}
}

// TestWindowsBusyUnion: busy is the overlap union clipped to each
// window — concurrent accesses are counted once, idle gaps not at all.
func TestWindowsBusyUnion(t *testing.T) {
	e := NewWindowEstimator(win)
	// Two concurrent accesses covering [0, 6ms); idle until 8ms; then
	// one access crossing into the second window.
	e.Add(1, 0, 6*sim.Millisecond)
	e.Add(1, 2*sim.Millisecond, 6*sim.Millisecond)
	e.Add(1, 8*sim.Millisecond, 14*sim.Millisecond)
	wins := e.Windows()

	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	if want := 8 * sim.Millisecond; wins[0].Busy != want { // [0,6) ∪ [8,10)
		t.Errorf("window 0 busy = %v, want %v", wins[0].Busy, want)
	}
	if want := 4 * sim.Millisecond; wins[1].Busy != want { // [10,14)
		t.Errorf("window 1 busy = %v, want %v", wins[1].Busy, want)
	}
	if got, want := wins[0].Utilization(), 0.8; got != want {
		t.Errorf("window 0 utilization = %v, want %v", got, want)
	}
}

// TestWindowsContinuousThroughGaps: a long idle stretch still yields
// the in-between empty windows, so the series has no holes.
func TestWindowsContinuousThroughGaps(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(1, 0, sim.Millisecond)
	e.Add(1, 5*win, 5*win+sim.Millisecond)
	wins := e.Windows()

	if len(wins) != 6 {
		t.Fatalf("windows = %d, want 6 (gap windows included)", len(wins))
	}
	for i := 1; i <= 4; i++ {
		if wins[i].Ops != 0 || wins[i].Busy != 0 {
			t.Errorf("gap window %d ops/busy = %d/%v, want 0/0", i, wins[i].Ops, wins[i].Busy)
		}
		if wins[i].BPS() != 0 || wins[i].ARPT() != 0 {
			t.Errorf("gap window %d rates nonzero", i)
		}
	}
}

// TestWindowRates checks the per-window metric arithmetic against hand
// computation.
func TestWindowRates(t *testing.T) {
	w := Window{
		Start: 0, End: win,
		Ops: 4, Blocks: 64,
		SumDur: 8 * sim.Millisecond,
		Busy:   5 * sim.Millisecond,
	}
	if got, want := w.BPS(), 64/0.005; got != want {
		t.Errorf("BPS = %v, want %v", got, want)
	}
	if got, want := w.IOPS(), 4/0.005; got != want {
		t.Errorf("IOPS = %v, want %v", got, want)
	}
	if got, want := w.Bandwidth(), 64*float64(trace.BlockSize)/0.005; got != want {
		t.Errorf("Bandwidth = %v, want %v", got, want)
	}
	if got, want := w.ARPT(), 0.008/4; got != want {
		t.Errorf("ARPT = %v, want %v", got, want)
	}

	var zero Window
	if zero.BPS() != 0 || zero.IOPS() != 0 || zero.Bandwidth() != 0 ||
		zero.ARPT() != 0 || zero.Utilization() != 0 {
		t.Error("zero window produced nonzero rates")
	}
}

// TestEstimatorRejectsBadInput: negative or inverted intervals are
// dropped rather than corrupting the grid.
func TestEstimatorRejectsBadInput(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(1, -5, 5)
	e.Add(1, 10, 5)
	if e.Windows() != nil {
		t.Fatal("bad input produced windows")
	}
	var ne *WindowEstimator
	ne.Add(1, 0, 1)
	if ne.Windows() != nil || ne.Every() != 0 {
		t.Fatal("nil estimator produced data")
	}
}

// TestEstimatorOutOfOrderFinishes: the simulation feeds completions in
// end-time order, but the estimator must not depend on it — the same
// accesses added in any order produce the identical series.
func TestEstimatorOutOfOrderFinishes(t *testing.T) {
	accesses := [][3]sim.Time{ // {blocks (as Time for brevity), start, end}
		{4, 0, 3 * sim.Millisecond},
		{8, 2 * sim.Millisecond, 15 * sim.Millisecond},
		{2, 12 * sim.Millisecond, 13 * sim.Millisecond},
		{6, 25 * sim.Millisecond, 31 * sim.Millisecond},
		{1, 9 * sim.Millisecond, 9 * sim.Millisecond},
	}
	feed := func(order []int) []Window {
		e := NewWindowEstimator(win)
		for _, i := range order {
			a := accesses[i]
			e.Add(int64(a[0]), a[1], a[2])
		}
		return e.Windows()
	}
	sorted := feed([]int{0, 4, 2, 1, 3})
	reversed := feed([]int{3, 1, 2, 4, 0})
	shuffled := feed([]int{2, 0, 3, 1, 4})
	if !reflect.DeepEqual(sorted, reversed) || !reflect.DeepEqual(sorted, shuffled) {
		t.Fatalf("series depends on add order:\nsorted:   %+v\nreversed: %+v\nshuffled: %+v",
			sorted, reversed, shuffled)
	}
}

// TestEstimatorStraddlingSpan: one access spanning several whole
// windows books its ops/blocks in the completion window but spreads its
// busy time across every window it crosses.
func TestEstimatorStraddlingSpan(t *testing.T) {
	e := NewWindowEstimator(win)
	// [5ms, 35ms): crosses windows 0..3, completes in window 3.
	e.Add(10, win/2, 3*win+win/2)
	wins := e.Windows()
	if len(wins) != 4 {
		t.Fatalf("windows = %d, want 4", len(wins))
	}
	for i, w := range wins {
		wantOps := int64(0)
		if i == 3 {
			wantOps = 1
		}
		if w.Ops != wantOps {
			t.Errorf("window %d ops = %d, want %d (completion-time attribution)", i, w.Ops, wantOps)
		}
		wantBusy := win
		if i == 0 || i == 3 {
			wantBusy = win / 2
		}
		if w.Busy != wantBusy {
			t.Errorf("window %d busy = %v, want %v", i, w.Busy, wantBusy)
		}
	}
	if wins[3].Blocks != 10 {
		t.Errorf("window 3 blocks = %d, want 10", wins[3].Blocks)
	}
	// Middle windows are busy the whole time but complete nothing: their
	// rates must still be finite (zero ops, nonzero busy).
	if got := wins[1].BPS(); got != 0 {
		t.Errorf("window 1 BPS = %v, want 0 (no completions)", got)
	}
	if got := wins[1].Utilization(); got != 1 {
		t.Errorf("window 1 utilization = %v, want 1", got)
	}
}

// TestEstimatorSpanEndingOnBoundary: a span ending exactly on a window
// boundary contributes busy only to the left window and none past it.
func TestEstimatorSpanEndingOnBoundary(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(5, win/2, 2*win) // ends exactly at the window-1/2 boundary
	wins := e.Windows()
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2 (boundary end belongs left)", len(wins))
	}
	if wins[1].Ops != 1 || wins[1].Blocks != 5 {
		t.Errorf("window 1 ops/blocks = %d/%d, want 1/5", wins[1].Ops, wins[1].Blocks)
	}
	if wins[0].Busy != win/2 || wins[1].Busy != win {
		t.Errorf("busy = %v,%v, want %v,%v", wins[0].Busy, wins[1].Busy, win/2, win)
	}
}

// TestWindowRatesNeverNaNOrInf sweeps degenerate windows — zero busy,
// zero width, zero ops, inverted bounds — through every rate helper:
// all must return finite values (satellite: no NaN/Inf in exports).
func TestWindowRatesNeverNaNOrInf(t *testing.T) {
	cases := []Window{
		{},
		{Start: win, End: win}, // zero width
		{Start: win, End: 2 * win, Ops: 3, Blocks: 12}, // ops but no busy
		{Start: win, End: 2 * win, Busy: win},          // busy but no ops
		{Start: 2 * win, End: win, Ops: 1, Blocks: 1},  // inverted bounds
		{Start: 0, End: win, SumDur: win, Busy: -win},  // negative busy
	}
	for i, w := range cases {
		for name, v := range map[string]float64{
			"BPS": w.BPS(), "IOPS": w.IOPS(), "Bandwidth": w.Bandwidth(),
			"ARPT": w.ARPT(), "Utilization": w.Utilization(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("case %d: %s = %v on %+v", i, name, v, w)
			}
		}
	}
	// The common degenerate values are exactly zero, not merely finite.
	z := Window{Start: win, End: win}
	if z.BPS() != 0 || z.Utilization() != 0 {
		t.Errorf("zero-width window rates: BPS=%v Util=%v, want 0", z.BPS(), z.Utilization())
	}
}

// TestEstimatorZeroDuration: an instantaneous access still counts as an
// op in its window but adds no busy time.
func TestEstimatorZeroDuration(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(3, win/2, win/2)
	wins := e.Windows()
	if len(wins) != 1 || wins[0].Ops != 1 || wins[0].Blocks != 3 || wins[0].Busy != 0 {
		t.Fatalf("zero-duration access: %+v", wins)
	}
}
