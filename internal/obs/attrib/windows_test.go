package attrib

import (
	"testing"

	"bps/internal/sim"
	"bps/internal/trace"
)

const win = 10 * sim.Millisecond

// TestWindowsCompletionAttribution: work lands in the window containing
// the access's end, with an end exactly on a boundary belonging to the
// left window — the same convention as core.Timeline.
func TestWindowsCompletionAttribution(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(4, 0, win)          // ends exactly on the first boundary → window 0
	e.Add(8, win/2, win+1)    // crosses the boundary → window 1
	e.Add(2, 2*win, 2*win+win/2) // window 2
	wins := e.Windows()

	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	if wins[0].Ops != 1 || wins[0].Blocks != 4 {
		t.Errorf("window 0 ops/blocks = %d/%d, want 1/4", wins[0].Ops, wins[0].Blocks)
	}
	if wins[1].Ops != 1 || wins[1].Blocks != 8 {
		t.Errorf("window 1 ops/blocks = %d/%d, want 1/8", wins[1].Ops, wins[1].Blocks)
	}
	if wins[2].Ops != 1 || wins[2].Blocks != 2 {
		t.Errorf("window 2 ops/blocks = %d/%d, want 1/2", wins[2].Ops, wins[2].Blocks)
	}
	for i, w := range wins {
		if w.Start != sim.Time(i)*win || w.End != sim.Time(i+1)*win {
			t.Errorf("window %d bounds [%d,%d), want [%d,%d)", i, w.Start, w.End,
				sim.Time(i)*win, sim.Time(i+1)*win)
		}
	}
}

// TestWindowsBusyUnion: busy is the overlap union clipped to each
// window — concurrent accesses are counted once, idle gaps not at all.
func TestWindowsBusyUnion(t *testing.T) {
	e := NewWindowEstimator(win)
	// Two concurrent accesses covering [0, 6ms); idle until 8ms; then
	// one access crossing into the second window.
	e.Add(1, 0, 6*sim.Millisecond)
	e.Add(1, 2*sim.Millisecond, 6*sim.Millisecond)
	e.Add(1, 8*sim.Millisecond, 14*sim.Millisecond)
	wins := e.Windows()

	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	if want := 8 * sim.Millisecond; wins[0].Busy != want { // [0,6) ∪ [8,10)
		t.Errorf("window 0 busy = %v, want %v", wins[0].Busy, want)
	}
	if want := 4 * sim.Millisecond; wins[1].Busy != want { // [10,14)
		t.Errorf("window 1 busy = %v, want %v", wins[1].Busy, want)
	}
	if got, want := wins[0].Utilization(), 0.8; got != want {
		t.Errorf("window 0 utilization = %v, want %v", got, want)
	}
}

// TestWindowsContinuousThroughGaps: a long idle stretch still yields
// the in-between empty windows, so the series has no holes.
func TestWindowsContinuousThroughGaps(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(1, 0, sim.Millisecond)
	e.Add(1, 5*win, 5*win+sim.Millisecond)
	wins := e.Windows()

	if len(wins) != 6 {
		t.Fatalf("windows = %d, want 6 (gap windows included)", len(wins))
	}
	for i := 1; i <= 4; i++ {
		if wins[i].Ops != 0 || wins[i].Busy != 0 {
			t.Errorf("gap window %d ops/busy = %d/%v, want 0/0", i, wins[i].Ops, wins[i].Busy)
		}
		if wins[i].BPS() != 0 || wins[i].ARPT() != 0 {
			t.Errorf("gap window %d rates nonzero", i)
		}
	}
}

// TestWindowRates checks the per-window metric arithmetic against hand
// computation.
func TestWindowRates(t *testing.T) {
	w := Window{
		Start: 0, End: win,
		Ops: 4, Blocks: 64,
		SumDur: 8 * sim.Millisecond,
		Busy:   5 * sim.Millisecond,
	}
	if got, want := w.BPS(), 64/0.005; got != want {
		t.Errorf("BPS = %v, want %v", got, want)
	}
	if got, want := w.IOPS(), 4/0.005; got != want {
		t.Errorf("IOPS = %v, want %v", got, want)
	}
	if got, want := w.Bandwidth(), 64*float64(trace.BlockSize)/0.005; got != want {
		t.Errorf("Bandwidth = %v, want %v", got, want)
	}
	if got, want := w.ARPT(), 0.008/4; got != want {
		t.Errorf("ARPT = %v, want %v", got, want)
	}

	var zero Window
	if zero.BPS() != 0 || zero.IOPS() != 0 || zero.Bandwidth() != 0 ||
		zero.ARPT() != 0 || zero.Utilization() != 0 {
		t.Error("zero window produced nonzero rates")
	}
}

// TestEstimatorRejectsBadInput: negative or inverted intervals are
// dropped rather than corrupting the grid.
func TestEstimatorRejectsBadInput(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(1, -5, 5)
	e.Add(1, 10, 5)
	if e.Windows() != nil {
		t.Fatal("bad input produced windows")
	}
	var ne *WindowEstimator
	ne.Add(1, 0, 1)
	if ne.Windows() != nil || ne.Every() != 0 {
		t.Fatal("nil estimator produced data")
	}
}

// TestEstimatorZeroDuration: an instantaneous access still counts as an
// op in its window but adds no busy time.
func TestEstimatorZeroDuration(t *testing.T) {
	e := NewWindowEstimator(win)
	e.Add(3, win/2, win/2)
	wins := e.Windows()
	if len(wins) != 1 || wins[0].Ops != 1 || wins[0].Blocks != 3 || wins[0].Busy != 0 {
		t.Fatalf("zero-duration access: %+v", wins)
	}
}
