package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"bps/internal/stats"
)

// Registry holds a run's metrics, keyed by slash-separated names with
// the convention "layer/component/metric" (e.g. "device/hdd/service_ns",
// "net/ios0/tx_bytes", "pfs/ios0/requests"). Metric handles are
// get-or-create: instrumented components look their handles up once at
// construction and hold them for the run.
//
// Every method on Registry and on the metric types is nil-receiver-safe
// and returns zero values, so uninstrumented code paths can hold nil
// handles and call them unconditionally.
//
// Metric handles are registered at construction time (single-threaded)
// and thereafter only mutated through atomic operations, so instrumented
// layers may update them from any domain of a sharded engine; reads are
// likewise safe mid-run or after Run has returned. Registration itself
// (Counter/Gauge/Histogram/Probe) keeps the single-threaded discipline:
// call it at construction or from classic simulation context only.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	probes   []Probe

	// order preserves registration order per kind for deterministic
	// iteration; exported accessors sort by name instead.
	counterOrder, gaugeOrder, histOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (still usable) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.counterOrder = append(r.counterOrder, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.gaugeOrder = append(r.gaugeOrder, name)
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	r.histOrder = append(r.histOrder, name)
	return h
}

// Probe registers a sampled metric: fn is evaluated at each sampler tick
// (and in snapshots), reading live simulation state such as resource
// utilization or queue depth. fn must only be called in simulation
// context or after the run.
func (r *Registry) Probe(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.probes = append(r.probes, Probe{Name: name, Fn: fn})
}

// Probe is a registered sampled metric.
type Probe struct {
	Name string
	Fn   func() float64
}

// Counters returns all counters sorted by name.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	out := make([]*Counter, 0, len(r.counters))
	for _, name := range sortedKeys(r.counterOrder) {
		out = append(out, r.counters[name])
	}
	return out
}

// Gauges returns all gauges sorted by name.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	out := make([]*Gauge, 0, len(r.gauges))
	for _, name := range sortedKeys(r.gaugeOrder) {
		out = append(out, r.gauges[name])
	}
	return out
}

// Histograms returns all histograms sorted by name.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(r.hists))
	for _, name := range sortedKeys(r.histOrder) {
		out = append(out, r.hists[name])
	}
	return out
}

// Probes returns the registered probes sorted by name.
func (r *Registry) Probes() []Probe {
	if r == nil {
		return nil
	}
	out := append([]Probe(nil), r.probes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortedKeys(order []string) []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing integer metric. Updates are
// atomic, so counters may be bumped from any domain of a sharded run.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Set/Value are atomic; Add
// is a CAS loop (gauges are low-rate: probes and samplers).
type Gauge struct {
	name string
	v    atomic.Uint64 // float64 bits
}

// Name returns the gauge's registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// HistBuckets is the number of histogram buckets: one underflow bucket
// for values ≤ 0 plus one per bit length of a positive int64.
const HistBuckets = 64

// Histogram accumulates a distribution of non-negative int64 samples
// (typically durations in nanoseconds or sizes in bytes) in fixed
// log₂-scale buckets: bucket 0 holds v ≤ 0 and bucket i ≥ 1 holds
// v ∈ [2^(i−1), 2^i − 1]. Fixed boundaries keep observation O(1) with no
// allocation and make histograms from different runs directly
// comparable.
// Updates are atomic so any domain of a sharded run may observe
// samples; a mid-run reader may see count/sum/buckets mid-update
// relative to each other, which the post-run reporting paths never do.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// Name returns the histogram's registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// bucketIndex maps a sample to its bucket: 0 for v ≤ 0, otherwise the
// bit length of v.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBounds returns the closed sample range [lo, hi] of bucket i.
// Bucket 0 is the underflow bucket (lo = math.MinInt64, hi = 0).
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return math.MinInt64, 0
	case i >= HistBuckets-1:
		return 1 << (HistBuckets - 2), math.MaxInt64
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(h.Count())
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the first bucket whose cumulative count reaches the
// nearest rank (the same nearest-rank convention stats.LatencyDist and
// the bootstrap summaries use, via stats.NearestRankIndex). Resolution
// is one power of two.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.Count() == 0 {
		return 0
	}
	max := h.max.Load()
	target := uint64(stats.NearestRankIndex(int(h.Count()), q)) + 1
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			_, hi := BucketBounds(i)
			if hi > max && i > 0 {
				return max
			}
			return hi
		}
	}
	return max
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Lo, Hi int64 // closed sample range
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending range order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}
