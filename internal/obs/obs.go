// Package obs is the cross-layer observability subsystem of the
// simulated I/O stack: a lightweight metrics registry (counters, gauges,
// fixed-bucket log-scale histograms, and a periodic time-series sampler
// driven by a simulation daemon), structured event hooks on the sim
// engine (event dispatch, process lifecycle, resource admission), and a
// Chrome trace-event exporter whose output loads in Perfetto or
// chrome://tracing.
//
// The design goal is that uninstrumented runs pay nothing: every entry
// point is nil-receiver-safe, the engine hooks are plain nil checks, and
// attaching an observer never consumes simulated time — a run with
// observability on produces bit-identical metrics to the same run with
// it off.
//
// The BPS paper argues that single-number metrics hide where I/O time
// goes; this package is the reproduction's answer for its own simulator.
// Where the paper's Fig. 3 computes the overlapped union of
// application-level access intervals, the observer records the per-layer
// spans *inside* those intervals (device service, network transfer, PFS
// request handling), so a BPS value can be decomposed into the layer
// activity that produced it.
package obs

import (
	"io"
	"strings"

	"bps/internal/obs/attrib"
	"bps/internal/sim"
)

// Options configures an observer.
type Options struct {
	// ChromeTrace enables span and counter collection for the Chrome
	// trace-event export.
	ChromeTrace bool

	// SampleEvery is the sampler daemon's tick interval; 0 disables the
	// sampler.
	SampleEvery sim.Time

	// QueueCounters, when tracing, also emits per-resource in-use and
	// queue-depth counter tracks on every resource state change. Rich but
	// verbose; off by default.
	QueueCounters bool

	// Attribution enables the critical-path profiler: layer spans are
	// collected (even when ChromeTrace is off) and Observer.Attribution
	// returns the per-layer decomposition of the overlapped time T.
	Attribution bool

	// WindowEvery, when positive, sizes the streaming windowed
	// estimator's fixed windows: BPS/IOPS/bandwidth/ARPT per window,
	// fed live at access completion (Observer.AppAccess) and returned
	// in the attribution report.
	WindowEvery sim.Time

	// Tick, when set, runs at the end of every sampler pass (each
	// periodic tick and the final FinishSampling), in simulation
	// context. It must not consume simulated time: the live-serving
	// layer uses it to snapshot the registry and window series without
	// perturbing the run. Requires SampleEvery > 0 to fire periodically.
	Tick func(now sim.Time, o *Observer)
}

// Observer ties the pieces together for one engine: it implements
// sim.Tracer for the structured engine hooks, owns the metrics registry
// and optional trace buffer, and is the handle instrumented layers
// (device, netsim, pfs) discover via Get. A nil *Observer is the no-op
// default: every method is safe to call and does nothing.
type Observer struct {
	eng     *sim.Engine
	clock   sim.TimeSource // the engine for sim runs; pluggable for live ones
	reg     *Registry
	buf     *TraceBuffer      // nil when ChromeTrace is off
	sampler *Sampler          // nil when SampleEvery is 0
	attrib  *attrib.Collector // nil unless Attribution or WindowEvery
	spans   bool              // Attribution: collect layer spans
	opts    Options

	// Engine-level metrics.
	events       *Counter
	procsStarted *Counter
	procsEnded   *Counter

	// Per-resource metric handles, cached so tracer callbacks do one map
	// lookup by pointer instead of string formatting per event.
	resources map[*sim.Resource]*resMetrics
}

// resMetrics caches one resource's metric handles.
type resMetrics struct {
	acquires *Counter
	waitNS   *Histogram
	inUse    string // counter-track names (QueueCounters)
	queued   string
}

// Attach creates an observer, installs it as the engine's tracer, and
// (per opts) starts the sampler daemon. Call it right after NewEngine,
// before building the simulated stack, so component constructors find it
// via Get.
//
// On a sharded engine the serialized features — Chrome trace spans, the
// attribution profiler, the sampler, and the Tick hook — are disabled:
// domains dispatch concurrently, and those consumers depend on the
// classic engine's total event order. The registry stays live (its
// metrics are atomic), so counters, histograms, and post-run probes
// work identically in both modes.
func Attach(e *sim.Engine, opts Options) *Observer {
	if e.Sharded() {
		opts.ChromeTrace = false
		opts.SampleEvery = 0
		opts.Attribution = false
		opts.WindowEvery = 0
		opts.Tick = nil
	}
	o := &Observer{
		eng:       e,
		clock:     e,
		reg:       NewRegistry(),
		opts:      opts,
		resources: make(map[*sim.Resource]*resMetrics),
	}
	o.events = o.reg.Counter("sim/engine/events")
	o.procsStarted = o.reg.Counter("sim/engine/procs_started")
	o.procsEnded = o.reg.Counter("sim/engine/procs_ended")
	if opts.ChromeTrace {
		o.buf = NewTraceBuffer()
	}
	if opts.Attribution || opts.WindowEvery > 0 {
		o.attrib = attrib.NewCollector(attrib.Config{
			Spans:       opts.Attribution,
			WindowEvery: opts.WindowEvery,
		})
		o.spans = opts.Attribution
	}
	e.SetTracer(o)
	if opts.SampleEvery > 0 {
		o.sampler = o.reg.StartSampler(e, opts.SampleEvery)
		if o.buf != nil {
			o.sampler.onSample = func(name string, at sim.Time, v float64) {
				o.buf.counter(name, at, v)
			}
		}
		if opts.Tick != nil {
			o.sampler.onTick = func(now sim.Time) { opts.Tick(now, o) }
		}
	}
	return o
}

// Get returns the observer attached to e, or nil when the engine is
// uninstrumented. Component constructors call this once and keep the
// (possibly nil) handle.
func Get(e *sim.Engine) *Observer {
	o, _ := e.GetTracer().(*Observer)
	return o
}

// now is the observer's own clock read. For simulated runs the clock is
// the engine itself, so this is exactly the old eng.Now() — timing
// neutrality is preserved by construction. A live run may install a
// wall or virtual timeline via SetClock.
func (o *Observer) now() sim.Time { return o.clock.Now() }

// SetClock repoints the observer's timeline. Call before any
// measurement starts; the default is the attached engine. Live drivers
// use this so tracer timestamps (if any fire) land on the live
// timeline rather than the dormant engine's frozen clock.
func (o *Observer) SetClock(ts sim.TimeSource) {
	if o == nil || ts == nil {
		return
	}
	o.clock = ts
}

// Registry returns the metrics registry (nil for a nil observer, which
// the registry's own nil-safety absorbs).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Sampler returns the time-series sampler, or nil.
func (o *Observer) Sampler() *Sampler {
	if o == nil {
		return nil
	}
	return o.sampler
}

// TraceBuffer returns the Chrome trace buffer, or nil.
func (o *Observer) TraceBuffer() *TraceBuffer {
	if o == nil {
		return nil
	}
	return o.buf
}

// Tracing reports whether Chrome trace collection is enabled — use it to
// guard span-name or argument construction.
func (o *Observer) Tracing() bool { return o != nil && o.buf != nil }

// Spanning reports whether Begin/End have any consumer — Chrome trace
// collection or the attribution profiler. Instrumented layers guard
// span opening with it and build argument maps only when Tracing().
func (o *Observer) Spanning() bool { return o != nil && (o.buf != nil || o.spans) }

// Begin opens a span in p's timeline under category cat (the layer:
// "device", "net", "pfs", ...). args may be nil; build it only when
// Tracing() to keep uninstrumented paths allocation-free. When the
// attribution profiler is on, the span's close also charges its
// [start, end) to the layer LayerOf(cat, name) classifies.
func (o *Observer) Begin(p *sim.Proc, cat, name string, args map[string]any) Span {
	if o == nil || (o.buf == nil && !o.spans) {
		return Span{}
	}
	sp := Span{o: o}
	if o.buf != nil {
		if r, ok := p.Ctx().(traceIDed); ok {
			if args == nil {
				args = make(map[string]any, 1)
			}
			args["req"] = r.TraceID()
		}
		if t, ok := p.Ctx().(tenanted); ok {
			if id := t.TenantID(); id != "" {
				if args == nil {
					args = make(map[string]any, 1)
				}
				args["tenant"] = id
			}
		}
		sp.idx = o.buf.span(p, cat, name, o.now(), args)
		sp.ok = true
	}
	if o.spans {
		if layer := attrib.LayerOf(cat, name); layer >= 0 {
			sp.layer = layer + 1 // 0 means "no attribution"
			sp.start = o.now()
		}
	}
	if !sp.ok && sp.layer == 0 {
		return Span{}
	}
	return sp
}

// traceIDed is the request-context hook: when the calling proc's context
// (sim.Proc.Ctx) implements it — ioreq.Request does — every span opened
// on that proc carries a "req" argument with the request identifier, the
// thread that stitches one logical access's spans across layers.
type traceIDed interface{ TraceID() uint64 }

// tenanted is the multi-tenant counterpart of traceIDed: requests that
// carry a tenant identity (ioreq.Request does) stamp a "tenant"
// argument on every span opened while they are in flight. Single-tenant
// requests report "" and add nothing, keeping their traces byte-
// identical to the pre-QoS output.
type tenanted interface{ TenantID() string }

// Counter emits a Chrome counter-track sample at the current simulated
// time (distinct from Registry counters: this is a trace visualization).
func (o *Observer) Counter(name string, v float64) {
	if o == nil || o.buf == nil {
		return
	}
	o.buf.counter(name, o.now(), v)
}

// AddAppRecord converts one gathered application trace record into an
// "app" layer span, one Chrome thread per application PID. Records share
// the simulation's timeline, so they align with the per-layer spans
// below them. The same intervals feed the attribution profiler as the
// application union — the T the per-layer blame partitions.
func (o *Observer) AddAppRecord(pid, blocks int64, start, end sim.Time) {
	if o == nil {
		return
	}
	if o.attrib != nil {
		o.attrib.AddApp(start, end)
		o.attrib.AddBlocks(blocks)
	}
	if o.buf != nil {
		o.buf.AppSpan(pid, blocks, start, end)
	}
}

// AppAccess feeds one completed application access to the streaming
// windowed estimator, at completion time — the middleware's trace
// capture sites call it alongside trace.Collector.Record. A nil or
// windows-disabled observer absorbs the call; it never touches
// simulated time.
func (o *Observer) AppAccess(blocks int64, start, end sim.Time) {
	if o == nil || o.attrib == nil {
		return
	}
	o.attrib.AddAccess(blocks, start, end)
}

// LiveWindows returns the streaming estimator's window series as of the
// current simulated time, without computing the memoized report — safe
// to call mid-run from a Tick hook. Nil when windows are disabled.
func (o *Observer) LiveWindows() []attrib.Window {
	if o == nil || o.attrib == nil {
		return nil
	}
	return o.attrib.LiveWindows()
}

// WindowEvery returns the streaming estimator's window width (0 when
// windows are disabled).
func (o *Observer) WindowEvery() sim.Time {
	if o == nil || o.attrib == nil {
		return 0
	}
	return o.attrib.WindowEvery()
}

// Attribution computes (once) and returns the run's critical-path
// attribution report, or nil when neither Attribution nor WindowEvery
// was requested. Call it after the application records have been added
// via AddAppRecord — the report's T is their union.
func (o *Observer) Attribution() *attrib.Report {
	if o == nil || o.attrib == nil {
		return nil
	}
	rep := o.attrib.Report()
	if rep.Latency == nil {
		rep.Latency = latencyRows(o.reg)
	}
	return rep
}

// latencyRows harvests every duration histogram (the "_ns" convention)
// into per-request latency quantile rows.
func latencyRows(reg *Registry) []attrib.LatencyRow {
	var rows []attrib.LatencyRow
	for _, h := range reg.Histograms() {
		if !strings.HasSuffix(h.Name(), "_ns") || h.Count() == 0 {
			continue
		}
		rows = append(rows, attrib.LatencyRow{
			Name:  h.Name(),
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			Max:   h.Max(),
		})
	}
	return rows
}

// FinishSampling takes the sampler's final sample at the engine's
// current time, covering the tail after the last foreground event —
// where the sampler daemon's pending background tick never fires.
func (o *Observer) FinishSampling() {
	if o == nil || o.sampler == nil {
		return
	}
	o.sampler.Finish(o.now())
}

// WriteChromeTrace writes the collected Chrome trace-event JSON.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil || o.buf == nil {
		return (&TraceBuffer{}).Write(w)
	}
	return o.buf.Write(w)
}

// --- sim.Tracer implementation -------------------------------------

// EventDispatched implements sim.Tracer.
func (o *Observer) EventDispatched(now sim.Time, nevents uint64) {
	o.events.Add(1)
}

// ProcStarted implements sim.Tracer.
func (o *Observer) ProcStarted(p *sim.Proc) {
	o.procsStarted.Add(1)
}

// ProcEnded implements sim.Tracer.
func (o *Observer) ProcEnded(p *sim.Proc) {
	o.procsEnded.Add(1)
}

// resOf returns (creating on first sight) the cached handles for r.
func (o *Observer) resOf(r *sim.Resource) *resMetrics {
	if m, ok := o.resources[r]; ok {
		return m
	}
	base := "resource/" + r.Name() + "/"
	m := &resMetrics{
		acquires: o.reg.Counter(base + "acquires"),
		waitNS:   o.reg.Histogram(base + "wait_ns"),
	}
	if o.opts.QueueCounters && o.buf != nil {
		m.inUse = r.Name() + " in_use"
		m.queued = r.Name() + " queued"
	}
	o.resources[r] = m
	return m
}

// ResourceQueued implements sim.Tracer.
func (o *Observer) ResourceQueued(r *sim.Resource, p *sim.Proc, n int) {
	m := o.resOf(r)
	if m.queued != "" {
		o.buf.counter(m.queued, o.now(), float64(r.QueueLen()))
	}
}

// ResourceAcquired implements sim.Tracer.
func (o *Observer) ResourceAcquired(r *sim.Resource, n int, waited sim.Time) {
	m := o.resOf(r)
	m.acquires.Add(1)
	m.waitNS.Observe(int64(waited))
	if m.inUse != "" {
		o.buf.counter(m.inUse, o.now(), float64(r.InUse()))
	}
	if m.queued != "" && waited > 0 {
		o.buf.counter(m.queued, o.now(), float64(r.QueueLen()))
	}
}

// ResourceReleased implements sim.Tracer.
func (o *Observer) ResourceReleased(r *sim.Resource, n int) {
	m := o.resOf(r)
	if m.inUse != "" {
		o.buf.counter(m.inUse, o.now(), float64(r.InUse()))
	}
}
