package obs

import (
	"sort"

	"bps/internal/sim"
)

// Series is one sampled time series: aligned timestamp/value slices.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Sampler is a periodic time-series collector: a simulation daemon that
// wakes every interval (on background events, so it never extends the
// run), evaluates every counter, gauge, and probe in the registry, and
// appends the values to per-metric series. Sources registered after the
// sampler starts are picked up at their first tick.
type Sampler struct {
	reg    *Registry
	every  sim.Time
	series map[string]*Series
	order  []string
	lastAt sim.Time // time of the most recent sample

	// onSample, when set, additionally receives every sampled value —
	// the observer uses it to emit Chrome counter tracks.
	onSample func(name string, at sim.Time, v float64)

	// onTick, when set, runs once at the end of every sample pass (the
	// periodic daemon ticks and the final Finish sample). It runs in
	// simulation context and must not consume simulated time — the live
	// observability hook publishes snapshots through it.
	onTick func(now sim.Time)
}

// StartSampler spawns the sampler daemon on e, ticking every interval.
// The daemon parks between ticks on background wake-ups: it samples only
// while workload (foreground) events keep the simulation alive, and
// Engine.Shutdown unwinds it like any other daemon.
func (r *Registry) StartSampler(e *sim.Engine, every sim.Time) *Sampler {
	if r == nil {
		return nil
	}
	if every <= 0 {
		every = 10 * sim.Millisecond
	}
	s := &Sampler{reg: r, every: every, series: make(map[string]*Series)}
	e.SpawnDaemon("obs.sampler", func(p *sim.Proc) {
		for {
			p.SleepBackground(every)
			s.sample(p.Now())
		}
	})
	return s
}

// Interval returns the sampling interval.
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.every
}

// Finish takes one final sample at now, unless a sample at or after now
// was already taken. The daemon's pending tick after the last foreground
// event never fires (background events alone don't advance the run), so
// without this the series silently stop at the penultimate interval;
// run teardown calls it via Observer.FinishSampling.
func (s *Sampler) Finish(now sim.Time) {
	if s == nil || now <= s.lastAt {
		return
	}
	s.sample(now)
}

// sample appends one data point per registered source at time now.
func (s *Sampler) sample(now sim.Time) {
	s.lastAt = now
	for _, c := range s.reg.Counters() {
		s.record(c.Name(), now, float64(c.Value()))
	}
	for _, g := range s.reg.Gauges() {
		s.record(g.Name(), now, g.Value())
	}
	for _, pr := range s.reg.Probes() {
		s.record(pr.Name, now, pr.Fn())
	}
	if s.onTick != nil {
		s.onTick(now)
	}
}

func (s *Sampler) record(name string, now sim.Time, v float64) {
	sr, ok := s.series[name]
	if !ok {
		sr = &Series{Name: name}
		s.series[name] = sr
		s.order = append(s.order, name)
	}
	// Gap fill: a quiet stretch longer than the interval (a skipped
	// stretch of ticks, or a Finish long after the last tick) would
	// leave a hole in the series. Carry the previous value forward at
	// the sampling interval so every series stays continuous.
	if n := len(sr.Times); n > 0 {
		prev := sr.Values[n-1]
		for t := sr.Times[n-1] + s.every; t < now; t += s.every {
			sr.Times = append(sr.Times, t)
			sr.Values = append(sr.Values, prev)
			if s.onSample != nil {
				s.onSample(name, t, prev)
			}
		}
	}
	sr.Times = append(sr.Times, now)
	sr.Values = append(sr.Values, v)
	if s.onSample != nil {
		s.onSample(name, now, v)
	}
}

// Series returns the collected series sorted by name.
func (s *Sampler) Series() []*Series {
	if s == nil {
		return nil
	}
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	out := make([]*Series, 0, len(names))
	for _, name := range names {
		out = append(out, s.series[name])
	}
	return out
}

// SeriesByName returns one series (nil when absent).
func (s *Sampler) SeriesByName(name string) *Series {
	if s == nil {
		return nil
	}
	return s.series[name]
}
