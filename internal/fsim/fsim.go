// Package fsim simulates a local file system on top of a simulated block
// device: extent-based allocation mapping file offsets to device offsets,
// plus an optional write-through LRU page cache that can be flushed
// explicitly (the BPS paper flushes all caches before each run).
package fsim

import (
	"fmt"
	"math/rand"
	"sort"

	"bps/internal/device"
	"bps/internal/ioreq"
	"bps/internal/sim"
)

// Config parameterizes a local file system.
type Config struct {
	Name string

	// BlockSize is the allocation and cache-page granularity (default 4096).
	BlockSize int64

	// CacheBytes is the page-cache capacity; 0 disables caching.
	CacheBytes int64

	// MemRate is the memory copy rate for cache hits (default 5 GB/s).
	MemRate float64

	// CacheHitLatency is the fixed cost of a cache hit (default 1 µs).
	CacheHitLatency sim.Time

	// ReadAhead, when positive and caching is enabled, extends
	// cache-missing sequential reads by this many bytes, like the kernel
	// readahead an I/O server relies on: interleaved sequential streams
	// then cost one seek per readahead window instead of one per request.
	// Detection is per-stream (multiple concurrent cursors per file).
	ReadAhead int64

	// FragmentExtent, when positive, models an aged file system:
	// allocation happens in extents of this size scattered across the
	// device (deterministically, from the engine's seed) instead of one
	// contiguous run, so logically sequential reads pay seeks at every
	// extent boundary.
	FragmentExtent int64

	// WriteBack buffers writes in memory (requires CacheBytes > 0): the
	// application pays only a memory copy, and a flusher daemon writes
	// dirty pages to the device after FlushDelay (or immediately on
	// Sync). This is the behaviour the BPS paper defends against by
	// flushing all caches before each run — with write-back on, recorded
	// access times no longer reflect device work.
	WriteBack bool

	// FlushDelay is the write-back delay before dirty pages go to the
	// device (default 100 ms).
	FlushDelay sim.Time
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "fs"
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.MemRate <= 0 {
		c.MemRate = 5e9
	}
	if c.CacheHitLatency <= 0 {
		c.CacheHitLatency = sim.Microsecond
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = 100 * sim.Millisecond
	}
	return c
}

// FileSystem is a simulated local file system bound to one device.
type FileSystem struct {
	eng      *sim.Engine
	dev      device.Device
	cfg      Config
	files    map[string]*File
	nextFree int64
	cache    *ioreq.LRU[int64]
	rng      *rand.Rand // latched at New from the construction-cursor domain

	moved int64 // bytes actually transferred to/from the device

	// Write-back state: dirty device pages awaiting flush. Dirty pages
	// live outside the LRU so eviction can never lose unwritten data.
	dirty       map[int64]bool
	flushSignal *sim.Queue
	syncWaiters []*sim.Future
	forceFlush  bool
	flushTimer  *sim.Future // in-progress lazy delay, completable early
}

// New constructs a file system on dev.
func New(e *sim.Engine, dev device.Device, cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		eng:   e,
		dev:   dev,
		cfg:   cfg,
		files: make(map[string]*File),
		rng:   e.Rand(),
	}
	if cfg.CacheBytes > 0 {
		fs.cache = ioreq.NewLRU[int64](cfg.CacheBytes / cfg.BlockSize)
	}
	if cfg.WriteBack {
		if fs.cache == nil {
			panic("fsim: WriteBack requires CacheBytes > 0")
		}
		fs.dirty = make(map[int64]bool)
		fs.flushSignal = e.NewQueue()
		e.SpawnDaemon(cfg.Name+".flusher", fs.flusher)
	}
	return fs
}

// Dirty returns the number of dirty (unflushed) pages.
func (fs *FileSystem) Dirty() int { return len(fs.dirty) }

// isDirty reports whether a device page is buffered dirty in memory.
func (fs *FileSystem) isDirty(pg int64) bool {
	return fs.dirty != nil && fs.dirty[pg]
}

// Sync blocks p until every dirty page has reached the device (fsync
// semantics), skipping the flush delay for flushes that have not started
// yet; a flush already waiting out its delay completes on its own
// schedule. A no-op when nothing is dirty or write-back is off.
func (fs *FileSystem) Sync(p *sim.Proc) {
	if fs.dirty == nil || len(fs.dirty) == 0 {
		return
	}
	fut := p.NewFuture()
	fs.syncWaiters = append(fs.syncWaiters, fut)
	fs.forceFlush = true
	if fs.flushTimer != nil && !fs.flushTimer.Done() {
		fs.flushTimer.Complete() // cut an in-progress lazy delay short
	}
	fs.flushSignal.Put(struct{}{})
	fut.Wait(p)
}

// flusher is the write-back daemon: woken when pages first go dirty (or
// by Sync), it waits out the flush delay, then writes the dirty snapshot
// to the device in coalesced runs.
func (fs *FileSystem) flusher(p *sim.Proc) {
	for {
		fs.flushSignal.Get(p)
		if len(fs.dirty) == 0 {
			fs.completeSyncs()
			continue
		}
		if !fs.forceFlush {
			// Interruptible lazy delay: Sync completes the timer early.
			timer := p.NewFuture()
			fs.flushTimer = timer
			p.After(fs.cfg.FlushDelay, func() {
				if !timer.Done() {
					timer.Complete()
				}
			})
			timer.Wait(p)
			fs.flushTimer = nil
		}
		fs.forceFlush = false

		// Snapshot and clear: writes landing during the device I/O
		// re-dirty pages and deposit a fresh signal.
		pages := make([]int64, 0, len(fs.dirty))
		for pg := range fs.dirty {
			pages = append(pages, pg)
		}
		fs.dirty = make(map[int64]bool)
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

		bs := fs.cfg.BlockSize
		for i := 0; i < len(pages); {
			j := i
			for j+1 < len(pages) && pages[j+1] == pages[j]+1 {
				j++
			}
			n := int64(j-i+1) * bs
			fs.moved += n
			// The flusher ignores individual write errors (as the kernel
			// does for async write-back); data is still marked clean.
			_ = fs.dev.Access(p, device.Request{Offset: pages[i] * bs, Size: n, Write: true})
			for _, pg := range pages[i : j+1] {
				fs.cache.Insert(pg)
			}
			i = j + 1
		}
		if len(fs.dirty) == 0 {
			fs.completeSyncs()
		}
	}
}

func (fs *FileSystem) completeSyncs() {
	for _, fut := range fs.syncWaiters {
		fut.Complete()
	}
	fs.syncWaiters = nil
}

// Device returns the underlying device.
func (fs *FileSystem) Device() device.Device { return fs.dev }

// Moved returns the number of bytes actually moved to or from the device
// (cache hits excluded). This is the "amount of data actually moved
// through the I/O system" that the bandwidth metric measures.
func (fs *FileSystem) Moved() int64 { return fs.moved }

// FlushCache drops all cached pages, mimicking the paper's pre-run cache
// flush. No-op when caching is disabled.
func (fs *FileSystem) FlushCache() {
	if fs.cache != nil {
		fs.cache.Reset()
	}
}

// CacheHits returns the number of page-cache hits served.
func (fs *FileSystem) CacheHits() uint64 {
	if fs.cache == nil {
		return 0
	}
	return fs.cache.Hits()
}

// File is an open file with a physical extent mapping.
type File struct {
	fs      *FileSystem
	name    string
	size    int64
	extents []extent
	ra      raState
}

// extent maps [FileOff, FileOff+Len) to [DevOff, DevOff+Len).
type extent struct {
	fileOff int64
	devOff  int64
	length  int64
}

// Create allocates a file of the given size. Allocation is contiguous and
// block-aligned; running out of device space is an error.
func (fs *FileSystem) Create(name string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("fsim: create %q: size %d must be positive", name, size)
	}
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("fsim: create %q: already exists", name)
	}
	alloc := roundUp(size, fs.cfg.BlockSize)
	if fs.nextFree+alloc > fs.dev.Capacity() {
		return nil, fmt.Errorf("fsim: create %q: device full (%d needed, %d free)",
			name, alloc, fs.dev.Capacity()-fs.nextFree)
	}
	f := &File{fs: fs, name: name, size: size}
	if fs.cfg.FragmentExtent > 0 {
		f.extents = fs.allocateFragmented(alloc)
	} else {
		f.extents = []extent{{fileOff: 0, devOff: fs.nextFree, length: alloc}}
		fs.nextFree += alloc
	}
	fs.files[name] = f
	return f, nil
}

// allocateFragmented scatters the file's extents over the device,
// deterministically per engine seed, leaving gaps between them like an
// aged allocator working around existing data.
func (fs *FileSystem) allocateFragmented(alloc int64) []extent {
	ext := roundUp(fs.cfg.FragmentExtent, fs.cfg.BlockSize)
	rng := fs.rng
	var extents []extent
	var fileOff int64
	for fileOff < alloc {
		n := ext
		if fileOff+n > alloc {
			n = alloc - fileOff
		}
		// Skip a random gap of up to 16 extents before the next run.
		gap := rng.Int63n(16) * ext
		if fs.nextFree+gap+n > fs.dev.Capacity() {
			gap = 0 // device nearly full: fall back to packing
		}
		fs.nextFree += gap
		extents = append(extents, extent{fileOff: fileOff, devOff: fs.nextFree, length: n})
		fs.nextFree += n
		fileOff += n
	}
	return extents
}

// Open returns an existing file.
func (fs *FileSystem) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fsim: open %q: no such file", name)
	}
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the logical file size in bytes.
func (f *File) Size() int64 { return f.size }

// ReadAt reads size bytes at file offset off, blocking the calling process
// for the simulated duration.
func (f *File) ReadAt(p *sim.Proc, off, size int64) error {
	return f.access(p, off, size, false)
}

// WriteAt writes size bytes at file offset off.
func (f *File) WriteAt(p *sim.Proc, off, size int64) error {
	return f.access(p, off, size, true)
}

func (f *File) access(p *sim.Proc, off, size int64, write bool) error {
	if size <= 0 {
		return fmt.Errorf("fsim: %s: access size %d must be positive", f.name, size)
	}
	if off < 0 || off+size > f.size {
		return fmt.Errorf("fsim: %s: access [%d,%d) out of bounds (size %d)", f.name, off, off+size, f.size)
	}
	if !write && f.fs.cfg.ReadAhead > 0 && f.fs.cache != nil {
		// Readahead decision: a sequential read that misses the cache is
		// extended by the readahead window; fully-cached reads and random
		// reads proceed as requested.
		sequential := f.ra.sequential(off)
		f.ra.update(off, off+size)
		if sequential && !f.allCached(off, size) {
			size += f.fs.cfg.ReadAhead
			if off+size > f.size {
				size = f.size - off
			}
		}
	}
	for size > 0 {
		devOff, runLen, err := f.mapOffset(off)
		if err != nil {
			return err
		}
		n := size
		if n > runLen {
			n = runLen
		}
		if err := f.fs.transfer(p, devOff, n, write); err != nil {
			return err
		}
		off += n
		size -= n
	}
	return nil
}

// allCached reports whether every page backing [off, off+size) is in the
// page cache, without updating recency or hit counters.
func (f *File) allCached(off, size int64) bool {
	bs := f.fs.cfg.BlockSize
	for size > 0 {
		devOff, runLen, err := f.mapOffset(off)
		if err != nil {
			return false
		}
		n := size
		if n > runLen {
			n = runLen
		}
		for pg := devOff / bs; pg <= (devOff+n-1)/bs; pg++ {
			if !f.fs.cache.Contains(pg) && !f.fs.isDirty(pg) {
				return false
			}
		}
		off += n
		size -= n
	}
	return true
}

// raState detects sequential streams on a file. Several concurrent
// readers may stream disjoint areas of the same file (e.g. segments of a
// shared striped file landing on one I/O server), so it keeps one cursor
// per stream, LRU-replaced, like kernel per-context readahead state.
type raState struct {
	ends  []int64 // last read end per detected stream
	uses  []uint64
	clock uint64
}

// maxStreams bounds the per-file cursor table.
const maxStreams = 64

// sequential reports whether a read at off continues a known stream.
func (s *raState) sequential(off int64) bool {
	if off == 0 {
		return true
	}
	for _, end := range s.ends {
		if end == off {
			return true
		}
	}
	return false
}

// update records the read [off, end), extending the matching stream
// cursor or opening a new one.
func (s *raState) update(off, end int64) {
	s.clock++
	for i, e := range s.ends {
		if e == off {
			s.ends[i] = end
			s.uses[i] = s.clock
			return
		}
	}
	if len(s.ends) < maxStreams {
		s.ends = append(s.ends, end)
		s.uses = append(s.uses, s.clock)
		return
	}
	oldest := 0
	for i, u := range s.uses {
		if u < s.uses[oldest] {
			oldest = i
		}
	}
	s.ends[oldest] = end
	s.uses[oldest] = s.clock
}

// mapOffset translates a file offset to (device offset, contiguous bytes
// remaining in the extent).
func (f *File) mapOffset(off int64) (devOff, runLen int64, err error) {
	for _, e := range f.extents {
		if off >= e.fileOff && off < e.fileOff+e.length {
			return e.devOff + (off - e.fileOff), e.fileOff + e.length - off, nil
		}
	}
	return 0, 0, fmt.Errorf("fsim: %s: offset %d not mapped", f.name, off)
}

// transfer moves a contiguous device range, consulting the cache.
func (fs *FileSystem) transfer(p *sim.Proc, devOff, size int64, write bool) error {
	if fs.cache == nil {
		fs.moved += size
		return fs.dev.Access(p, device.Request{Offset: devOff, Size: size, Write: write})
	}
	return fs.cachedTransfer(p, devOff, size, write)
}

// cachedTransfer handles the page-granular cache protocol: hits cost
// memory time; runs of missing pages coalesce into single device requests.
// Writes are write-through and populate the cache.
func (fs *FileSystem) cachedTransfer(p *sim.Proc, devOff, size int64, write bool) error {
	bs := fs.cfg.BlockSize
	first := devOff / bs
	last := (devOff + size - 1) / bs

	if write {
		if fs.dirty != nil {
			// Write-back: dirty the pages and pay only the memory copy.
			wasClean := len(fs.dirty) == 0
			for pg := first; pg <= last; pg++ {
				fs.dirty[pg] = true
			}
			if wasClean {
				fs.flushSignal.Put(struct{}{})
			}
			p.Sleep(fs.cfg.CacheHitLatency + sim.TransferTime(size, fs.cfg.MemRate))
			return nil
		}
		fs.moved += size
		if err := fs.dev.Access(p, device.Request{Offset: devOff, Size: size, Write: true}); err != nil {
			return err
		}
		for pg := first; pg <= last; pg++ {
			fs.cache.Insert(pg)
		}
		return nil
	}

	var hitBytes int64
	missStart := int64(-1)
	flushMisses := func(endPage int64) error {
		if missStart < 0 {
			return nil
		}
		start := missStart * bs
		n := (endPage - missStart) * bs
		fs.moved += n
		if err := fs.dev.Access(p, device.Request{Offset: start, Size: n}); err != nil {
			return err
		}
		for pg := missStart; pg < endPage; pg++ {
			fs.cache.Insert(pg)
		}
		missStart = -1
		return nil
	}
	for pg := first; pg <= last; pg++ {
		if fs.cache.Lookup(pg) || fs.isDirty(pg) {
			if err := flushMisses(pg); err != nil {
				return err
			}
			hitBytes += bs
		} else if missStart < 0 {
			missStart = pg
		}
	}
	if err := flushMisses(last + 1); err != nil {
		return err
	}
	if hitBytes > 0 {
		p.Sleep(fs.cfg.CacheHitLatency + sim.TransferTime(hitBytes, fs.cfg.MemRate))
	}
	return nil
}

func roundUp(v, unit int64) int64 {
	return (v + unit - 1) / unit * unit
}
