package fsim

import "container/list"

// pageCache is an LRU set of device page numbers. It tracks presence only:
// the simulator never stores data, just the timing consequences of hits
// and misses.
type pageCache struct {
	capacity int64
	lru      *list.List              // front = most recent; values are page numbers
	index    map[int64]*list.Element // page number → node
	hits     uint64
	misses   uint64
}

func newPageCache(capacityPages int64) *pageCache {
	if capacityPages < 1 {
		capacityPages = 1
	}
	return &pageCache{
		capacity: capacityPages,
		lru:      list.New(),
		index:    make(map[int64]*list.Element),
	}
}

// lookup reports whether page is cached, updating recency and counters.
func (c *pageCache) lookup(page int64) bool {
	if el, ok := c.index[page]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// contains reports presence without touching recency or counters.
func (c *pageCache) contains(page int64) bool {
	_, ok := c.index[page]
	return ok
}

// insert adds page (or refreshes it), evicting the least-recently-used
// page when over capacity.
func (c *pageCache) insert(page int64) {
	if el, ok := c.index[page]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.index[page] = c.lru.PushFront(page)
	for int64(c.lru.Len()) > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(int64))
	}
}

// reset drops every page and zeroes nothing else: hit/miss counters are
// cumulative across flushes, like kernel counters.
func (c *pageCache) reset() {
	c.lru.Init()
	c.index = make(map[int64]*list.Element)
}
