package fsim

import (
	"bps/internal/ioreq"
	"bps/internal/sim"
)

// Layer adapts the file into a terminal ioreq layer: requests map to
// the file's ReadAt/WriteAt by op.
func (f *File) Layer() ioreq.Layer {
	return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
		if req.Op == ioreq.OpWrite {
			return f.WriteAt(p, req.Off, req.Size)
		}
		return f.ReadAt(p, req.Off, req.Size)
	})
}
