package fsim

import (
	"testing"
	"testing/quick"

	"bps/internal/device"
	"bps/internal/sim"
)

func newRAMFS(e *sim.Engine, cfg Config) *FileSystem {
	dev := device.NewRAMDisk(e, "ram", 1<<30, sim.Microsecond, 1e9)
	return New(e, dev, cfg)
}

func run(t *testing.T, body func(e *sim.Engine, p *sim.Proc)) sim.Time {
	t.Helper()
	e := sim.NewEngine(1)
	e.Spawn("test", func(p *sim.Proc) { body(e, p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestCreateOpenErrors(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{})
		if _, err := fs.Create("a", 0); err == nil {
			t.Error("zero-size create succeeded")
		}
		if _, err := fs.Create("a", 4096); err != nil {
			t.Error(err)
		}
		if _, err := fs.Create("a", 4096); err == nil {
			t.Error("duplicate create succeeded")
		}
		if _, err := fs.Open("missing"); err == nil {
			t.Error("open of missing file succeeded")
		}
		if f, err := fs.Open("a"); err != nil || f.Name() != "a" || f.Size() != 4096 {
			t.Errorf("open: %v %v", f, err)
		}
		if _, err := fs.Create("huge", 2<<30); err == nil {
			t.Error("create beyond device capacity succeeded")
		}
	})
}

func TestReadWriteBounds(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{})
		f, err := fs.Create("f", 10000)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.ReadAt(p, 0, 10000); err != nil {
			t.Error(err)
		}
		if err := f.ReadAt(p, 9999, 2); err == nil {
			t.Error("read past EOF succeeded")
		}
		if err := f.ReadAt(p, -1, 10); err == nil {
			t.Error("negative offset read succeeded")
		}
		if err := f.WriteAt(p, 0, 0); err == nil {
			t.Error("zero-size write succeeded")
		}
		if err := f.WriteAt(p, 5000, 5000); err != nil {
			t.Error(err)
		}
	})
}

func TestMovedCountsDeviceBytes(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{})
		f, _ := fs.Create("f", 1<<20)
		if err := f.ReadAt(p, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if fs.Moved() != 1<<20 {
			t.Fatalf("Moved = %d, want %d", fs.Moved(), 1<<20)
		}
		if fs.Device().Stats().BytesRead != 1<<20 {
			t.Fatalf("device BytesRead = %d", fs.Device().Stats().BytesRead)
		}
	})
}

func TestCacheHitsFasterAndNotMoved(t *testing.T) {
	var coldMoved, warmMoved int64
	var coldT, warmT sim.Time
	run(t, func(e *sim.Engine, p *sim.Proc) {
		// Slow device so the cache effect is unmistakable.
		dev := device.NewRAMDisk(e, "slow", 1<<30, sim.Millisecond, 50e6)
		fs := New(e, dev, Config{CacheBytes: 64 << 20})
		f, _ := fs.Create("f", 8<<20)
		t0 := p.Now()
		if err := f.ReadAt(p, 0, 8<<20); err != nil {
			t.Fatal(err)
		}
		coldT, coldMoved = p.Now()-t0, fs.Moved()
		t1 := p.Now()
		if err := f.ReadAt(p, 0, 8<<20); err != nil {
			t.Fatal(err)
		}
		warmT, warmMoved = p.Now()-t1, fs.Moved()-coldMoved
	})
	if warmMoved != 0 {
		t.Fatalf("warm read moved %d bytes from device, want 0", warmMoved)
	}
	if coldMoved != 8<<20 {
		t.Fatalf("cold read moved %d, want %d", coldMoved, 8<<20)
	}
	if warmT*10 > coldT {
		t.Fatalf("warm read %v not ≫ faster than cold %v", warmT, coldT)
	}
}

func TestFlushCacheForcesDeviceTraffic(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{CacheBytes: 64 << 20})
		f, _ := fs.Create("f", 1<<20)
		if err := f.ReadAt(p, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		fs.FlushCache()
		before := fs.Moved()
		if err := f.ReadAt(p, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if fs.Moved()-before != 1<<20 {
			t.Fatalf("post-flush read moved %d, want full %d", fs.Moved()-before, 1<<20)
		}
	})
}

func TestCacheEviction(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		// Cache holds 1 MiB; read 4 MiB then re-read the start: must miss.
		fs := newRAMFS(e, Config{CacheBytes: 1 << 20})
		f, _ := fs.Create("f", 4<<20)
		if err := f.ReadAt(p, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		before := fs.Moved()
		if err := f.ReadAt(p, 0, 4096); err != nil {
			t.Fatal(err)
		}
		if fs.Moved() == before {
			t.Fatal("evicted page served from cache")
		}
	})
}

func TestWriteThroughPopulatesCache(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{CacheBytes: 64 << 20})
		f, _ := fs.Create("f", 1<<20)
		if err := f.WriteAt(p, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if fs.Moved() != 1<<20 {
			t.Fatalf("write-through moved %d", fs.Moved())
		}
		before := fs.Moved()
		if err := f.ReadAt(p, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if fs.Moved() != before {
			t.Fatal("read after write went to device; write should populate cache")
		}
	})
}

func TestPartialCacheRunCoalescing(t *testing.T) {
	run(t, func(e *sim.Engine, p *sim.Proc) {
		fs := newRAMFS(e, Config{CacheBytes: 64 << 20})
		f, _ := fs.Create("f", 64<<10)
		// Warm pages 4..7 (offsets 16K..32K).
		if err := f.ReadAt(p, 16<<10, 16<<10); err != nil {
			t.Fatal(err)
		}
		devOps := fs.Device().Stats().Ops()
		// Read the whole file: misses split into two coalesced runs around
		// the warm middle.
		if err := f.ReadAt(p, 0, 64<<10); err != nil {
			t.Fatal(err)
		}
		newOps := fs.Device().Stats().Ops() - devOps
		if newOps != 2 {
			t.Fatalf("full read issued %d device ops, want 2 coalesced runs", newOps)
		}
	})
}

// Property: for any in-bounds read pattern, Moved never exceeds bytes
// requested (no cache) and equals them exactly.
func TestMovedEqualsRequestedWithoutCache(t *testing.T) {
	prop := func(offs []uint16) bool {
		e := sim.NewEngine(1)
		fs := newRAMFS(e, Config{})
		var want int64
		ok := true
		e.Spawn("p", func(p *sim.Proc) {
			f, err := fs.Create("f", 1<<20)
			if err != nil {
				ok = false
				return
			}
			for _, o := range offs {
				off := int64(o) % (1 << 19)
				size := int64(o%1000) + 1
				if err := f.ReadAt(p, off, size); err != nil {
					ok = false
					return
				}
				want += size
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok && fs.Moved() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAheadAmortizesDeviceOps(t *testing.T) {
	run := func(ra int64) (devOps uint64, moved int64) {
		e := sim.NewEngine(1)
		dev := device.NewRAMDisk(e, "ram", 1<<30, 100*sim.Microsecond, 100e6)
		fs := New(e, dev, Config{CacheBytes: 64 << 20, ReadAhead: ra})
		e.Spawn("p", func(p *sim.Proc) {
			f, err := fs.Create("f", 8<<20)
			if err != nil {
				t.Error(err)
				return
			}
			for off := int64(0); off < 8<<20; off += 64 << 10 {
				if err := f.ReadAt(p, off, 64<<10); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fs.Device().Stats().Ops(), fs.Moved()
	}
	noRAOps, noRAMoved := run(0)
	raOps, raMoved := run(1 << 20)
	if noRAOps != 128 {
		t.Fatalf("no-RA device ops = %d, want 128", noRAOps)
	}
	// With 1 MiB readahead, roughly one device op per MiB: ~8 ops.
	if raOps > 10 {
		t.Fatalf("RA device ops = %d, want ~8", raOps)
	}
	if noRAMoved != 8<<20 || raMoved != 8<<20 {
		t.Fatalf("moved: noRA=%d RA=%d, want exactly file size", noRAMoved, raMoved)
	}
}

func TestReadAheadInterleavedStreams(t *testing.T) {
	// Two interleaved sequential streams on one file must both be
	// detected, so device ops stay ~one per readahead window per stream.
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "ram", 1<<30, 100*sim.Microsecond, 100e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, ReadAhead: 1 << 20})
	f, err := fs.Create("f", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		base := int64(s) * (8 << 20)
		e.Spawn("stream", func(p *sim.Proc) {
			for off := int64(0); off < 8<<20; off += 64 << 10 {
				if err := f.ReadAt(p, base+off, 64<<10); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ops := fs.Device().Stats().Ops(); ops > 20 {
		t.Fatalf("interleaved streams issued %d device ops, want ~16", ops)
	}
}

func TestReadAheadRandomReadsNotExtended(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "ram", 1<<30, 10*sim.Microsecond, 100e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, ReadAhead: 1 << 20})
	e.Spawn("p", func(p *sim.Proc) {
		f, err := fs.Create("f", 32<<20)
		if err != nil {
			t.Error(err)
			return
		}
		// Random-ish offsets (descending, never adjacent).
		for _, off := range []int64{24 << 20, 16 << 20, 9 << 20, 2 << 20} {
			if err := f.ReadAt(p, off, 4096); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() != 4*4096 {
		t.Fatalf("random reads moved %d, want %d (no readahead)", fs.Moved(), 4*4096)
	}
}

func TestReadAheadStopsAtEOF(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "ram", 1<<30, 10*sim.Microsecond, 100e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, ReadAhead: 64 << 20})
	e.Spawn("p", func(p *sim.Proc) {
		f, err := fs.Create("f", 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.ReadAt(p, 0, 4096); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() != 1<<20 {
		t.Fatalf("readahead past EOF: moved %d, want %d", fs.Moved(), 1<<20)
	}
}

func TestFragmentedAllocation(t *testing.T) {
	e := sim.NewEngine(3)
	dev := device.NewRAMDisk(e, "ram", 1<<30, 10*sim.Microsecond, 500e6)
	fs := New(e, dev, Config{FragmentExtent: 256 << 10})
	f, err := fs.Create("aged", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.extents) != 16 {
		t.Fatalf("extents = %d, want 16 of 256 KiB", len(f.extents))
	}
	// Extents cover the file exactly and in order.
	var off int64
	for _, ext := range f.extents {
		if ext.fileOff != off {
			t.Fatalf("extent fileOff = %d, want %d", ext.fileOff, off)
		}
		off += ext.length
	}
	if off != 4<<20 {
		t.Fatalf("covered %d", off)
	}
	// Reads across extent boundaries still work and move exact bytes.
	e.Spawn("p", func(p *sim.Proc) {
		if err := f.ReadAt(p, 0, 4<<20); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() != 4<<20 {
		t.Fatalf("moved = %d", fs.Moved())
	}
}

func TestFragmentationSlowsHDDSequentialRead(t *testing.T) {
	read := func(fragment int64) sim.Time {
		e := sim.NewEngine(3)
		dev := device.NewHDD(e, device.DefaultHDD())
		fs := New(e, dev, Config{FragmentExtent: fragment})
		f, err := fs.Create("f", 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		e.Spawn("p", func(p *sim.Proc) {
			for off := int64(0); off < 32<<20; off += 1 << 20 {
				if err := f.ReadAt(p, off, 1<<20); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	contiguous, fragmented := read(0), read(256<<10)
	if fragmented < contiguous*3/2 {
		t.Fatalf("fragmented read (%v) not meaningfully slower than contiguous (%v)",
			fragmented, contiguous)
	}
}

func TestWriteBackBuffersWrites(t *testing.T) {
	e := sim.NewEngine(1)
	// A very slow device makes buffering unmistakable.
	dev := device.NewRAMDisk(e, "slow", 1<<30, sim.Millisecond, 10e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, WriteBack: true, FlushDelay: 50 * sim.Millisecond})
	var writeTook sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		f, err := fs.Create("f", 8<<20)
		if err != nil {
			t.Error(err)
			return
		}
		t0 := p.Now()
		if err := f.WriteAt(p, 0, 8<<20); err != nil {
			t.Error(err)
		}
		writeTook = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	// 8 MiB at memory speed is ~1.7 ms; at device speed it would be ~840 ms.
	if writeTook > 10*sim.Millisecond {
		t.Fatalf("buffered write took %v, not memory speed", writeTook)
	}
	// The flusher still pushed everything to the device afterwards.
	if fs.Moved() != 8<<20 {
		t.Fatalf("moved = %d, want full flush", fs.Moved())
	}
	if dev.Stats().BytesWritten != 8<<20 {
		t.Fatalf("device wrote %d", dev.Stats().BytesWritten)
	}
	if fs.Dirty() != 0 {
		t.Fatalf("dirty pages remain: %d", fs.Dirty())
	}
}

func TestWriteBackSyncBlocksUntilClean(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "slow", 1<<30, 0, 50e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, WriteBack: true, FlushDelay: 10 * sim.Second})
	var syncDone sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := fs.Create("f", 4<<20)
		if err := f.WriteAt(p, 0, 4<<20); err != nil {
			t.Error(err)
		}
		fs.Sync(p) // must not wait the 10 s lazy delay
		syncDone = p.Now()
		if fs.Dirty() != 0 {
			t.Error("Sync returned with dirty pages")
		}
		fs.Sync(p) // idempotent no-op when clean
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	// 4 MiB at 50 MB/s ≈ 84 ms ≪ the 10 s lazy delay.
	if syncDone > sim.Second {
		t.Fatalf("Sync waited the lazy delay: done at %v", syncDone)
	}
	if fs.Moved() != 4<<20 {
		t.Fatalf("moved = %d", fs.Moved())
	}
}

func TestWriteBackReadHitsDirtyPages(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "dev", 1<<30, sim.Millisecond, 100e6)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, WriteBack: true, FlushDelay: 10 * sim.Second})
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := fs.Create("f", 1<<20)
		if err := f.WriteAt(p, 0, 1<<20); err != nil {
			t.Error(err)
		}
		// Read-after-write must be served from the dirty buffer.
		before := dev.Stats().Reads
		if err := f.ReadAt(p, 0, 1<<20); err != nil {
			t.Error(err)
		}
		if dev.Stats().Reads != before {
			t.Error("read-after-buffered-write went to the device")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
}

func TestWriteBackEvictionCannotLoseDirtyData(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "dev", 1<<30, 0, 1e9)
	// Cache of 1 MiB, write 8 MiB buffered: dirty pages exceed the LRU
	// capacity but must all reach the device.
	fs := New(e, dev, Config{CacheBytes: 1 << 20, WriteBack: true, FlushDelay: sim.Millisecond})
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := fs.Create("f", 8<<20)
		if err := f.WriteAt(p, 0, 8<<20); err != nil {
			t.Error(err)
		}
		fs.Sync(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if dev.Stats().BytesWritten != 8<<20 {
		t.Fatalf("device wrote %d, dirty data lost to eviction", dev.Stats().BytesWritten)
	}
}

func TestWriteBackFlusherCoalesces(t *testing.T) {
	e := sim.NewEngine(1)
	dev := device.NewRAMDisk(e, "dev", 1<<30, 0, 1e9)
	fs := New(e, dev, Config{CacheBytes: 64 << 20, WriteBack: true, FlushDelay: sim.Millisecond})
	e.Spawn("p", func(p *sim.Proc) {
		f, _ := fs.Create("f", 4<<20)
		// 64 separate 64 KiB writes, contiguous: one coalesced flush.
		for off := int64(0); off < 4<<20; off += 64 << 10 {
			if err := f.WriteAt(p, off, 64<<10); err != nil {
				t.Error(err)
			}
		}
		fs.Sync(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if ops := dev.Stats().Writes; ops > 2 {
		t.Fatalf("flusher issued %d device writes, want coalesced run(s)", ops)
	}
}

// TestWriteBackDistortsRecordedTimes demonstrates why the paper flushes
// caches: with write-back on, the application-recorded access times no
// longer reflect device work, so BPS computed from them is inflated.
func TestWriteBackDistortsRecordedTimes(t *testing.T) {
	run := func(writeBack bool) (recorded sim.Time, deviceBusy sim.Time) {
		e := sim.NewEngine(1)
		dev := device.NewRAMDisk(e, "dev", 1<<30, 10*sim.Microsecond, 100e6)
		cfg := Config{}
		if writeBack {
			cfg = Config{CacheBytes: 64 << 20, WriteBack: true, FlushDelay: sim.Millisecond}
		}
		fs := New(e, dev, cfg)
		e.Spawn("p", func(p *sim.Proc) {
			f, _ := fs.Create("f", 16<<20)
			t0 := p.Now()
			for off := int64(0); off < 16<<20; off += 1 << 20 {
				if err := f.WriteAt(p, off, 1<<20); err != nil {
					t.Error(err)
				}
			}
			recorded = p.Now() - t0
			if writeBack {
				fs.Sync(p)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return recorded, dev.BusyTime()
	}
	throughRec, throughBusy := run(false)
	backRec, backBusy := run(true)
	// Device does the same work either way...
	if backBusy < throughBusy/2 {
		t.Fatalf("device busy: wb=%v wt=%v", backBusy, throughBusy)
	}
	// ...but the application-visible (recordable) time collapses.
	if backRec*10 > throughRec {
		t.Fatalf("buffered recorded time %v not ≪ write-through %v", backRec, throughRec)
	}
}
