package testbed

import (
	"errors"
	"testing"

	"bps/internal/device"
	"bps/internal/faults"
	"bps/internal/ioreq"
	"bps/internal/pfs"
	"bps/internal/sim"
)

// sentinelRead builds a cluster from spec and performs one read through
// the full layer path (workload target → optional client cache → pfs
// client → netsim → server → device), returning the application-visible
// error so tests can assert sentinel wrapping end to end.
func sentinelRead(t *testing.T, spec ClusterSpec) error {
	t.Helper()
	e := sim.NewEngine(7)
	env, err := NewSharedFileEnv(e, spec, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	var readErr error
	e.Spawn("app", func(p *sim.Proc) {
		readErr = env.Target(0).ReadAt(p, 0, 64<<10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return readErr
}

// quickRecovery keeps the failing-path tests fast: tiny timeout, one
// retry, no failover.
func quickRecovery() pfs.RecoveryConfig {
	return pfs.RecoveryConfig{Enabled: true, Timeout: 2 * sim.Millisecond, MaxRetries: 1, Backoff: sim.Millisecond}
}

func TestDeviceFaultSentinelSurvivesLayerPath(t *testing.T) {
	// Every device access fails, so retries and failover exhaust and the
	// injected sentinel must surface through the pfs %w chain, the client
	// Layer, and the client cache wrapper.
	err := sentinelRead(t, ClusterSpec{
		Servers: 2, Media: SSD, Clients: 1,
		Faults:      faults.Config{Seed: 3, Device: faults.DeviceConfig{ErrorRate: 1}},
		ClientCache: ioreq.CacheConfig{CapacityBytes: 1 << 20},
	})
	if err == nil {
		t.Fatal("read on an always-failing device succeeded")
	}
	if !errors.Is(err, device.ErrInjectedFault) {
		t.Fatalf("err = %v, want device.ErrInjectedFault in the chain", err)
	}
}

func TestServerFaultSentinelSurvivesLayerPath(t *testing.T) {
	// Servers drop every job (permanent fail window), so each attempt
	// ends in an RPC timeout.
	err := sentinelRead(t, ClusterSpec{
		Servers: 2, Media: SSD, Clients: 1,
		Faults: faults.Config{Seed: 3, Server: faults.ServerConfig{
			Period: 10 * sim.Millisecond, Duration: 10 * sim.Millisecond, FailRate: 1,
		}},
		Recovery:    quickRecovery(),
		ClientCache: ioreq.CacheConfig{CapacityBytes: 1 << 20},
	})
	if err == nil {
		t.Fatal("read against always-down servers succeeded")
	}
	if !errors.Is(err, pfs.ErrRPCTimeout) {
		t.Fatalf("err = %v, want pfs.ErrRPCTimeout in the chain", err)
	}
}

func TestLinkFaultSentinelSurvivesLayerPath(t *testing.T) {
	// Every transfer is held in the switch far longer than the RPC
	// timeout, so replies never arrive in time.
	err := sentinelRead(t, ClusterSpec{
		Servers: 2, Media: SSD, Clients: 1,
		Faults: faults.Config{Seed: 3, Network: faults.NetworkConfig{
			DelayRate: 1, Delay: 20 * sim.Millisecond,
		}},
		Recovery:    quickRecovery(),
		ClientCache: ioreq.CacheConfig{CapacityBytes: 1 << 20},
	})
	if err == nil {
		t.Fatal("read across an always-delayed fabric succeeded")
	}
	if !errors.Is(err, pfs.ErrRPCTimeout) {
		t.Fatalf("err = %v, want pfs.ErrRPCTimeout in the chain", err)
	}
}
