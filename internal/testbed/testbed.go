// Package testbed assembles the simulated equivalents of the BPS paper's
// cluster (§IV.B) from the substrate packages: 7200 RPM SATA HDDs, PCI-E
// SSDs, Gigabit Ethernet with a finite shared backplane, and PVFS-like
// I/O servers running a local file system with kernel readahead. Both the
// paper-reproduction experiments and the public API build their systems
// here.
package testbed

import (
	"fmt"

	"bps/internal/device"
	"bps/internal/faults"
	"bps/internal/fsim"
	"bps/internal/ioreq"
	"bps/internal/netsim"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/workload"
)

// Testbed constants mirroring the paper's cluster.
const (
	// ServerCacheBytes is each I/O server's page-cache size.
	ServerCacheBytes = 1 << 30

	// ServerReadAhead is each server's kernel readahead window.
	ServerReadAhead = 1 << 20

	// BackplaneRate is the shared-fabric aggregate limit — the stand-in
	// for every cross-stream coupling the real cluster has (switch
	// backplane, client VFS, PVFS metadata path). See DESIGN.md.
	BackplaneRate = 400e6
)

// Media selects a device model.
type Media int

// The two storage media in the paper's testbed.
const (
	HDD Media = iota
	SSD
)

// String implements fmt.Stringer.
func (m Media) String() string {
	if m == HDD {
		return "hdd"
	}
	return "ssd"
}

// NewDevice builds one device of the given media with the paper-testbed
// defaults.
func NewDevice(e *sim.Engine, m Media) device.Device {
	if m == SSD {
		return device.NewSSD(e, device.DefaultSSD())
	}
	return device.NewHDD(e, device.DefaultHDD())
}

// NewFTLSSD builds an SSD under sustained-write conditions: FTL write
// amplification 2.5 and periodic foreground garbage-collection stalls,
// for the write-workload extension experiments.
func NewFTLSSD(e *sim.Engine) device.Device {
	cfg := device.DefaultSSD()
	cfg.WriteAmplification = 2.5
	cfg.GCPauseEvery = 256 << 20
	cfg.GCPause = 20 * sim.Millisecond
	return device.NewSSD(e, cfg)
}

// NewLocalEnvOn builds a local file system on an explicit device.
func NewLocalEnvOn(e *sim.Engine, dev device.Device, nfiles int, fileSize int64) (*workload.LocalEnv, error) {
	fs := fsim.New(e, dev, fsim.Config{Name: "local." + dev.Name()})
	env := &workload.LocalEnv{FS: fs}
	for i := 0; i < nfiles; i++ {
		f, err := fs.Create(fmt.Sprintf("file%d", i), fileSize)
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	return env, nil
}

// NewLocalEnv builds a direct-attached local file system on one device
// with nfiles preallocated files. No page cache: the paper flushes caches
// before each local run.
func NewLocalEnv(e *sim.Engine, m Media, nfiles int, fileSize int64) (*workload.LocalEnv, error) {
	fs := fsim.New(e, NewDevice(e, m), fsim.Config{Name: "local." + m.String()})
	env := &workload.LocalEnv{FS: fs}
	for i := 0; i < nfiles; i++ {
		f, err := fs.Create(fmt.Sprintf("file%d", i), fileSize)
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	return env, nil
}

// ClusterSpec describes a PVFS-like deployment for one run.
type ClusterSpec struct {
	Servers int
	Media   Media
	Clients int

	// Faults, when its plan is enabled, wires fault injection into
	// every layer of the cluster: device wrappers, the fabric's link
	// faults, and per-server fail/slow windows. An enabled plan also
	// turns on client recovery (a cluster that injects faults without
	// retries would deadlock on the first dropped job).
	Faults faults.Config

	// Recovery overrides the client recovery policy. The zero value
	// means: recovery off for healthy clusters, DefaultRecovery() when
	// Faults is enabled.
	Recovery pfs.RecoveryConfig

	// ClientCache, when its CapacityBytes is positive, layers a shared
	// client-side page cache with read-ahead in front of every client's
	// pfs pipeline (see ioreq.CacheConfig). The zero value leaves the
	// request path exactly as it was before the cache existed.
	ClientCache ioreq.CacheConfig

	// ServerCache overrides each I/O server's page-cache size: 0 keeps
	// the testbed default (ServerCacheBytes with ServerReadAhead),
	// negative disables server caching and readahead entirely — the
	// configuration the clientcache sweep uses so device traffic tracks
	// client-cache misses one-for-one.
	ServerCache int64
}

// DefaultRecovery is the recovery policy fault-injected testbeds use
// unless the spec overrides it: pfs defaults (50 ms RPC timeout, 4
// retries, 1–16 ms backoff) plus failover to replica servers.
func DefaultRecovery() pfs.RecoveryConfig {
	return pfs.RecoveryConfig{Enabled: true, Failover: true}
}

// NewCluster builds the cluster testbed: Gigabit fabric with a finite
// backplane, one device per server, server-side cache and readahead.
func NewCluster(e *sim.Engine, spec ClusterSpec) (*pfs.Cluster, []*pfs.Client) {
	cluster, clients, _ := buildCluster(e, spec)
	return cluster, clients
}

// buildCluster is NewCluster plus the engine-domain assignment of each
// client (parallel to the returned clients). On a classic engine every
// domain id is 0 and the construction is exactly the historical one; on
// a sharded engine each I/O server (and the MDS, inside pfs) owns a
// domain, and clients get one domain each — or a single shared "cn"
// domain when a shared client cache couples every client's request
// path, since cache state must stay domain-local.
func buildCluster(e *sim.Engine, spec ClusterSpec) (*pfs.Cluster, []*pfs.Client, []int) {
	fabric := netsim.NewFabric(e, netsim.Config{
		Bandwidth:     125e6,
		Latency:       50 * sim.Microsecond,
		MTU:           9000,
		FrameOverhead: sim.Microsecond,
		BackplaneRate: BackplaneRate,
	})
	if lf := faults.NewLink(spec.Faults); lf != nil {
		fabric.SetFaults(lf)
	}
	// Each device is built with its server's domain as construction
	// cursor: device resources and RNG streams bind to the cursor domain.
	serverDoms := make([]int, spec.Servers)
	devs := make([]device.Device, spec.Servers)
	for i := range devs {
		serverDoms[i] = e.NewDomain(fmt.Sprintf("ios%d", i))
		prev := e.SetDomain(serverDoms[i])
		devs[i] = faults.WrapDevice(e, NewDevice(e, spec.Media), spec.Faults,
			fmt.Sprintf("ios%d.%s", i, spec.Media))
		e.SetDomain(prev)
	}
	scache, sra := int64(ServerCacheBytes), int64(ServerReadAhead)
	switch {
	case spec.ServerCache < 0:
		scache, sra = 0, 0
	case spec.ServerCache > 0:
		scache = spec.ServerCache
	}
	pcfg := pfs.Config{
		ServerFS: fsim.Config{
			CacheBytes: scache,
			ReadAhead:  sra,
		},
		Recovery: spec.Recovery,
		DomainOf: func(i int) int { return serverDoms[i] },
	}
	if spec.Faults.Enabled() {
		if !pcfg.Recovery.Enabled {
			pcfg.Recovery = DefaultRecovery()
		}
		if spec.Faults.ServerEnabled() {
			plan := spec.Faults
			pcfg.Faults = func(id int) pfs.ServerFaults { return faults.NewServerFaults(plan, id) }
		}
	}
	cluster := pfs.NewCluster(e, fabric, pcfg, devs)
	clients := make([]*pfs.Client, spec.Clients)
	clientDoms := make([]int, spec.Clients)
	sharedDom := -1
	for i := range clients {
		if spec.ClientCache.CapacityBytes > 0 {
			if sharedDom < 0 {
				sharedDom = e.NewDomain("cn")
			}
			clientDoms[i] = sharedDom
		} else {
			clientDoms[i] = e.NewDomain(fmt.Sprintf("cn%d", i))
		}
		prev := e.SetDomain(clientDoms[i])
		clients[i] = cluster.NewClient(fmt.Sprintf("cn%d", i))
		e.SetDomain(prev)
	}
	return cluster, clients, clientDoms
}

// NewSharedFileEnv builds a cluster env with one file striped over all
// servers, shared by all clients.
func NewSharedFileEnv(e *sim.Engine, spec ClusterSpec, fileSize int64) (*workload.ClusterEnv, error) {
	cluster, clients, doms := buildCluster(e, spec)
	f, err := cluster.Create("shared", fileSize, cluster.DefaultLayout())
	if err != nil {
		return nil, err
	}
	cluster.FlushCaches()
	return &workload.ClusterEnv{
		Cluster: cluster,
		Clients: clients,
		Files:   []*pfs.File{f},
		Cache:   ioreq.NewCache(spec.ClientCache),
		Domains: doms,
	}, nil
}

// NewFilesEnv builds a replay-style env with one preallocated file per
// sizes entry, named prefix0, prefix1, ... — cluster specs stripe each
// file with the default layout and get one client per file
// (prefix.cn0, ...); local specs (Servers == 0) build a file system on
// dev, which must be non-nil. Both trace replay paths (offset-less
// records and ingested offset-aware logs) size their files through
// this.
func NewFilesEnv(e *sim.Engine, spec ClusterSpec, dev device.Device, prefix string, sizes []int64) (workload.Env, error) {
	if spec.Servers > 0 {
		cluster, _ := NewCluster(e, spec)
		env := &workload.ClusterEnv{Cluster: cluster, Cache: ioreq.NewCache(spec.ClientCache)}
		for i, size := range sizes {
			f, err := cluster.Create(fmt.Sprintf("%s%d", prefix, i), size, cluster.DefaultLayout())
			if err != nil {
				return nil, err
			}
			env.Files = append(env.Files, f)
			env.Clients = append(env.Clients, cluster.NewClient(fmt.Sprintf("%s.cn%d", prefix, i)))
		}
		return env, nil
	}
	fs := fsim.New(e, dev, fsim.Config{Name: prefix})
	env := &workload.LocalEnv{FS: fs}
	for i, size := range sizes {
		f, err := fs.Create(fmt.Sprintf("%s%d", prefix, i), size)
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	return env, nil
}

// NewMetaFilesEnv builds the metadata-heavy env for workload.MetaRead:
// filesPerProc small files of fileSize bytes per client process, named
// by workload.MetaFileName and striped with the default layout. Caches
// are flushed after the create storm so the measured phase starts cold,
// matching the other env constructors.
func NewMetaFilesEnv(e *sim.Engine, spec ClusterSpec, filesPerProc int, fileSize int64) (*workload.ClusterEnv, error) {
	cluster, clients, doms := buildCluster(e, spec)
	env := &workload.ClusterEnv{Cluster: cluster, Clients: clients, Cache: ioreq.NewCache(spec.ClientCache), Domains: doms}
	for pid := 0; pid < spec.Clients; pid++ {
		for i := 0; i < filesPerProc; i++ {
			f, err := cluster.Create(workload.MetaFileName(pid, i), fileSize, cluster.DefaultLayout())
			if err != nil {
				return nil, err
			}
			env.Files = append(env.Files, f)
		}
	}
	cluster.FlushCaches()
	return env, nil
}

// NewPinnedFilesEnv builds the paper's "pure" concurrency setup
// (§IV.C.3): one file per client, pinned to server i mod Servers.
func NewPinnedFilesEnv(e *sim.Engine, spec ClusterSpec, filePerProc int64) (*workload.ClusterEnv, error) {
	cluster, clients, doms := buildCluster(e, spec)
	env := &workload.ClusterEnv{Cluster: cluster, Clients: clients, Cache: ioreq.NewCache(spec.ClientCache), Domains: doms}
	for i := 0; i < spec.Clients; i++ {
		f, err := cluster.Create(fmt.Sprintf("own%d", i), filePerProc, cluster.PinnedLayout(i%spec.Servers))
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	cluster.FlushCaches()
	return env, nil
}
