package testbed

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"bps/internal/sim"
	"bps/internal/workload"
)

// shardWorkerCounts returns the worker counts the invariance tests
// compare against a 1-worker run: {2, 4, 8} by default, or the single
// count in BPS_TEST_SHARDS (how CI's shard matrix pins one cell per
// job).
func shardWorkerCounts(t *testing.T) []int {
	t.Helper()
	if s := os.Getenv("BPS_TEST_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("BPS_TEST_SHARDS=%q: want a positive integer", s)
		}
		return []int{n}
	}
	return []int{2, 4, 8}
}

// runShardedSeq runs one small shared-file sequential-read cluster on a
// sharded engine with the given worker count and returns its result.
func runShardedSeq(t *testing.T, workers int, spec ClusterSpec) workload.Result {
	t.Helper()
	e := sim.NewEngine(42)
	e.EnableSharding(workers)
	defer e.Shutdown()
	env, err := NewSharedFileEnv(e, spec, 1<<28)
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	w := workload.SeqRead{
		Label:           "shard",
		Processes:       spec.Clients,
		BytesPerProcess: 1 << 21,
		RecordSize:      64 << 10,
		StartOffset:     func(pid int) int64 { return int64(pid) << 21 },
	}
	res, err := w.Run(e, env)
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	if res.Errors != 0 {
		t.Fatalf("workers=%d: %d access errors", workers, res.Errors)
	}
	return res
}

// TestShardedWorkerCountInvariant pins the tentpole guarantee: a sharded
// run's result is bit-identical for every worker count, because event
// order is a pure function of the domain topology, never of which worker
// executes a domain's window.
func TestShardedWorkerCountInvariant(t *testing.T) {
	spec := ClusterSpec{Servers: 4, Media: SSD, Clients: 8}
	base := runShardedSeq(t, 1, spec)
	if base.ExecTime <= 0 {
		t.Fatalf("degenerate run: ExecTime %v", base.ExecTime)
	}
	if base.Moved == 0 {
		t.Fatalf("degenerate run: no bytes moved")
	}
	for _, k := range shardWorkerCounts(t) {
		got := runShardedSeq(t, k, spec)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d diverged from workers=1:\n  base: ExecTime=%v Moved=%d records=%d\n  got:  ExecTime=%v Moved=%d records=%d",
				k, base.ExecTime, base.Moved, len(base.Trace.Records()),
				got.ExecTime, got.Moved, len(got.Trace.Records()))
		}
	}
}
