package testbed

import (
	"testing"

	"bps/internal/sim"
	"bps/internal/workload"
)

func TestMediaString(t *testing.T) {
	if HDD.String() != "hdd" || SSD.String() != "ssd" {
		t.Fatalf("media strings: %s %s", HDD, SSD)
	}
}

func TestNewDeviceKinds(t *testing.T) {
	e := sim.NewEngine(1)
	if d := NewDevice(e, HDD); d.Name() != "hdd" {
		t.Fatalf("HDD device name = %s", d.Name())
	}
	if d := NewDevice(e, SSD); d.Name() != "ssd" {
		t.Fatalf("SSD device name = %s", d.Name())
	}
}

func TestNewLocalEnv(t *testing.T) {
	e := sim.NewEngine(1)
	env, err := NewLocalEnv(e, SSD, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Files) != 3 {
		t.Fatalf("files = %d", len(env.Files))
	}
	// Each pid maps to its own file.
	if env.Target(0).File() == env.Target(1).File() {
		t.Fatal("pids share a file in own-file mode")
	}
}

func TestClusterEnvsRun(t *testing.T) {
	w := workload.SeqRead{Label: "t", Processes: 2, BytesPerProcess: 256 << 10, RecordSize: 64 << 10}

	e1 := sim.NewEngine(1)
	shared, err := NewSharedFileEnv(e1, ClusterSpec{Servers: 2, Media: HDD, Clients: 2}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ws := w
	ws.StartOffset = func(pid int) int64 { return int64(pid) * (256 << 10) }
	if res, err := ws.Run(e1, shared); err != nil || res.Errors != 0 {
		t.Fatalf("shared run: %v, errors %d", err, res.Errors)
	}

	e2 := sim.NewEngine(1)
	pinned, err := NewPinnedFilesEnv(e2, ClusterSpec{Servers: 2, Media: HDD, Clients: 2}, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := w.Run(e2, pinned); err != nil || res.Errors != 0 {
		t.Fatalf("pinned run: %v, errors %d", err, res.Errors)
	}
}

func TestPinnedWrapsAroundServers(t *testing.T) {
	e := sim.NewEngine(1)
	env, err := NewPinnedFilesEnv(e, ClusterSpec{Servers: 2, Media: HDD, Clients: 4}, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Files) != 4 {
		t.Fatalf("files = %d", len(env.Files))
	}
}
