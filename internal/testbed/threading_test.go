package testbed

import (
	"testing"

	"bps/internal/ioreq"
	"bps/internal/obs"
	"bps/internal/sim"
)

// TestRequestIDThreadsAllLayers verifies the pipeline's end-to-end span
// chain: one logical application access produces spans at the
// middleware, pfs client, network, pfs server, and device layers, and
// every one of them carries the same "req" argument — the request ID
// minted when the access entered the stack.
func TestRequestIDThreadsAllLayers(t *testing.T) {
	e := sim.NewEngine(11)
	ob := obs.Attach(e, obs.Options{ChromeTrace: true})
	env, err := NewSharedFileEnv(e, ClusterSpec{Servers: 2, Media: SSD, Clients: 1}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var id uint64
	e.Spawn("app", func(p *sim.Proc) {
		tgt := env.Target(0).Wrap(ioreq.Trace(e, "middleware", "access"))
		req := tgt.NewRequest(p, ioreq.OpRead, 64<<10, 128<<10)
		id = req.ID
		if err := tgt.Serve(p, req); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("no request ID was minted")
	}
	cats := make(map[string]int)
	for _, ev := range ob.TraceBuffer().Events() {
		req, ok := ev.Args["req"]
		if !ok {
			continue
		}
		got, ok := req.(uint64)
		if !ok || got != id {
			t.Fatalf("span %s/%s carries req=%v, want %d (one access, one ID)", ev.Cat, ev.Name, req, id)
		}
		cats[ev.Cat]++
	}
	// The read is striped over two servers, so the pfs/net/device layers
	// must each contribute at least one span; the middleware wrapper
	// contributes exactly one.
	for _, cat := range []string{"middleware", "pfs", "net", "device"} {
		if cats[cat] == 0 {
			t.Fatalf("no %s-layer span carries the request ID (got %v)", cat, cats)
		}
	}
	if cats["middleware"] != 1 {
		t.Fatalf("middleware spans = %d, want 1", cats["middleware"])
	}
}
