package middleware

import (
	"testing"

	"bps/internal/ioreq"
	"bps/internal/sim"
)

// recordedReq is one request a scriptLayer saw.
type recordedReq struct {
	Op   ioreq.Op
	Off  int64
	Size int64
	ID   uint64
}

// scriptLayer records every request it serves, so tests can assert the
// exact sub-requests a readahead layer emits downstream.
type scriptLayer struct {
	reqs []recordedReq
}

func (s *scriptLayer) Serve(p *sim.Proc, req *ioreq.Request) error {
	s.reqs = append(s.reqs, recordedReq{req.Op, req.Off, req.Size, req.ID})
	return nil
}

// prefetchSetup builds a Prefetcher over a recording layer and runs body
// in a simulated process.
func prefetchSetup(t *testing.T, fileSize, window int64, body func(p *sim.Proc, tgt Target, pf *Prefetcher, rec *scriptLayer)) {
	t.Helper()
	e := sim.NewEngine(1)
	rec := &scriptLayer{}
	target := NewTarget(rec, "f", fileSize)
	pf := NewPrefetcher(target, window)
	tgt := target.With(pf)
	e.Spawn("app", func(p *sim.Proc) { body(p, tgt, pf, rec) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchWindowClampsAtEOF(t *testing.T) {
	const (
		fileSize = 160 << 10
		window   = 64 << 10
		rec      = 32 << 10
	)
	prefetchSetup(t, fileSize, window, func(p *sim.Proc, tgt Target, pf *Prefetcher, inner *scriptLayer) {
		for off := int64(0); off < fileSize; off += rec {
			if err := tgt.ReadAt(p, off, rec); err != nil {
				t.Fatal(err)
			}
		}
		// 5 sequential reads collapse to 2 fetches: one full demand+window
		// fetch and one clamped at EOF.
		want := []recordedReq{
			{ioreq.OpRead, 0, rec + window, inner.reqs[0].ID},
			{ioreq.OpRead, 96 << 10, fileSize - 96<<10, inner.reqs[1].ID},
		}
		if len(inner.reqs) != len(want) {
			t.Fatalf("inner saw %d requests (%+v), want %d", len(inner.reqs), inner.reqs, len(want))
		}
		for i, r := range inner.reqs {
			if r != want[i] {
				t.Fatalf("inner request %d = %+v, want %+v", i, r, want[i])
			}
		}
		if pf.Hits() != 3 || pf.Misses() != 2 {
			t.Fatalf("hits/misses = %d/%d, want 3/2", pf.Hits(), pf.Misses())
		}
		if got := pf.PrefetchedBytes(); got != (rec+window-rec)+(fileSize-96<<10-rec) {
			t.Fatalf("prefetched = %d", got)
		}
	})
}

func TestPrefetchNeverShrinksDemand(t *testing.T) {
	// A demand that itself crosses EOF must be forwarded whole: the
	// clamp bounds the readahead, never the application's request.
	const (
		fileSize = 64 << 10
		window   = 64 << 10
	)
	prefetchSetup(t, fileSize, window, func(p *sim.Proc, tgt Target, pf *Prefetcher, inner *scriptLayer) {
		if err := tgt.ReadAt(p, 0, 48<<10); err != nil {
			t.Fatal(err)
		}
		// Sequential follow-up read larger than the bytes left in the
		// file: fetch clamps to 16 KiB, which is below the demand, so
		// the guard restores the full 32 KiB.
		if err := tgt.ReadAt(p, 48<<10, 32<<10); err != nil {
			t.Fatal(err)
		}
		want := []recordedReq{
			{ioreq.OpRead, 0, fileSize, inner.reqs[0].ID}, // demand+window clamped to file end
			{ioreq.OpRead, 48 << 10, 32 << 10, inner.reqs[1].ID},
		}
		if len(inner.reqs) != 2 || inner.reqs[0] != want[0] || inner.reqs[1] != want[1] {
			t.Fatalf("inner requests = %+v, want %+v", inner.reqs, want)
		}
	})
}

func TestPrefetchWriteInvalidatesStaging(t *testing.T) {
	const (
		fileSize = 1 << 20
		window   = 64 << 10
		rec      = 16 << 10
	)
	prefetchSetup(t, fileSize, window, func(p *sim.Proc, tgt Target, pf *Prefetcher, inner *scriptLayer) {
		if err := tgt.ReadAt(p, 0, rec); err != nil { // stages [0, 80K)
			t.Fatal(err)
		}
		if err := tgt.WriteAt(p, 0, rec); err != nil { // invalidates
			t.Fatal(err)
		}
		if err := tgt.ReadAt(p, rec, rec); err != nil { // would have been a hit
			t.Fatal(err)
		}
		if pf.Hits() != 0 {
			t.Fatalf("hits = %d after invalidating write, want 0", pf.Hits())
		}
		if len(inner.reqs) != 3 {
			t.Fatalf("inner saw %d requests (%+v), want 3", len(inner.reqs), inner.reqs)
		}
		if inner.reqs[1].Op != ioreq.OpWrite || inner.reqs[1].Size != rec {
			t.Fatalf("write forwarded as %+v", inner.reqs[1])
		}
		// The post-write read is sequential, so it refetches with readahead.
		if r := inner.reqs[2]; r.Op != ioreq.OpRead || r.Off != rec || r.Size != rec+window {
			t.Fatalf("post-write read = %+v, want refetch of %d+window", r, rec)
		}
	})
}

func TestPrefetchRandomReadSkipsReadahead(t *testing.T) {
	const (
		fileSize = 256 << 10
		window   = 64 << 10
		rec      = 16 << 10
	)
	prefetchSetup(t, fileSize, window, func(p *sim.Proc, tgt Target, pf *Prefetcher, inner *scriptLayer) {
		if err := tgt.ReadAt(p, 0, rec); err != nil { // stages [0, 80K)
			t.Fatal(err)
		}
		if err := tgt.ReadAt(p, 128<<10, rec); err != nil { // random jump
			t.Fatal(err)
		}
		if err := tgt.ReadAt(p, rec, rec); err != nil { // staging was dropped
			t.Fatal(err)
		}
		// The jump and the post-jump read are both exact-size reads: no
		// readahead without sequentiality, and the jump cleared staging.
		if len(inner.reqs) != 3 {
			t.Fatalf("inner saw %d requests (%+v), want 3", len(inner.reqs), inner.reqs)
		}
		if r := inner.reqs[1]; r.Off != 128<<10 || r.Size != rec {
			t.Fatalf("random read = %+v, want exact-size passthrough", r)
		}
		if r := inner.reqs[2]; r.Off != rec || r.Size != rec {
			t.Fatalf("post-jump read = %+v, want exact-size passthrough", r)
		}
		if pf.Hits() != 0 || pf.Misses() != 3 {
			t.Fatalf("hits/misses = %d/%d, want 0/3", pf.Hits(), pf.Misses())
		}
	})
}
