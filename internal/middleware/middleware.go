// Package middleware simulates the I/O layers the application talks to —
// a POSIX interface and an MPI-IO interface with ROMIO-style data
// sieving, plus an optional readahead prefetcher. This is the layer where
// the BPS paper captures its trace records (§III.B step 1): every
// application access is recorded with the *application-required* size,
// regardless of how much data the layers below actually move.
//
// Since the layer-pipeline refactor, the middleware speaks ioreq: a
// Target is the head of an ioreq.Layer pipeline plus the file identity
// requests carry, and each application call allocates one ioreq.Request
// whose ID threads every derived sub-request — and therefore every
// trace span — down to the device.
package middleware

import (
	"fmt"

	"bps/internal/ioreq"
	"bps/internal/obs"
	"bps/internal/sim"
	"bps/internal/trace"
)

// record captures one completed application access at its completion
// time: the BPS trace record that post-hoc metrics consume, and — when
// the engine is observed — the live feed of the streaming windowed
// estimator (obs.Observer.AppAccess, a no-op otherwise).
func record(p *sim.Proc, col *trace.Collector, blocks int64, start sim.Time) {
	end := p.Now()
	col.Record(blocks, start, end)
	obs.Get(p.Engine()).AppAccess(blocks, start, end)
}

// Target is an open file as seen from the middleware: the head of a
// layer pipeline plus the file identity the pipeline serves. The old
// LocalTarget/PFSTarget adapter pair collapsed into this one value —
// local files, PFS clients and raw devices all enter as ioreq.Layer
// pipelines.
type Target struct {
	layer ioreq.Layer
	file  string
	size  int64
}

// NewTarget binds a layer pipeline to a file identity and size.
func NewTarget(layer ioreq.Layer, file string, size int64) Target {
	return Target{layer: layer, file: file, size: size}
}

// Size returns the file's logical size.
func (t Target) Size() int64 { return t.size }

// File returns the file identity requests carry.
func (t Target) File() string { return t.file }

// Layer returns the pipeline head.
func (t Target) Layer() ioreq.Layer { return t.layer }

// With returns a copy of the target headed by l (same file identity).
func (t Target) With(l ioreq.Layer) Target {
	t.layer = l
	return t
}

// Wrap returns a copy of the target with mws chained in front; nil
// entries are skipped, so optional layers compose without branching.
func (t Target) Wrap(mws ...ioreq.Middleware) Target {
	t.layer = ioreq.Chain(t.layer, mws...)
	return t
}

// NewRequest allocates a request against this target's file with a
// fresh engine-unique ID.
func (t Target) NewRequest(p *sim.Proc, op ioreq.Op, off, size int64) *ioreq.Request {
	return ioreq.New(p, op, off, size, t.file)
}

// Serve runs one request down the pipeline with the request installed
// as the proc's context, so every span opened below carries its ID.
func (t Target) Serve(p *sim.Proc, req *ioreq.Request) error {
	prev := p.Ctx()
	p.SetCtx(req)
	err := t.layer.Serve(p, req)
	p.SetCtx(prev)
	return err
}

// ReadAt serves one freshly allocated read request — the convenience
// path for callers that do not record application traces (collective
// aggregators, tests).
func (t Target) ReadAt(p *sim.Proc, off, size int64) error {
	return t.Serve(p, t.NewRequest(p, ioreq.OpRead, off, size))
}

// WriteAt serves one freshly allocated write request.
func (t Target) WriteAt(p *sim.Proc, off, size int64) error {
	return t.Serve(p, t.NewRequest(p, ioreq.OpWrite, off, size))
}

// POSIX is the plain interface: one application call maps to one
// file-system access and one trace record.
type POSIX struct {
	target Target
	col    *trace.Collector
}

// NewPOSIX wraps a target with trace capture for one process.
func NewPOSIX(target Target, col *trace.Collector) *POSIX {
	return &POSIX{target: target, col: col}
}

// Read performs and records one application read.
func (io *POSIX) Read(p *sim.Proc, off, size int64) error {
	start := p.Now()
	req := io.target.NewRequest(p, ioreq.OpRead, off, size)
	req.PID = io.col.PID()
	err := io.target.Serve(p, req)
	record(p, io.col, trace.BlocksOf(size), start)
	return err
}

// Write performs and records one application write.
func (io *POSIX) Write(p *sim.Proc, off, size int64) error {
	start := p.Now()
	req := io.target.NewRequest(p, ioreq.OpWrite, off, size)
	req.PID = io.col.PID()
	err := io.target.Serve(p, req)
	record(p, io.col, trace.BlocksOf(size), start)
	return err
}

// Region is one piece of a noncontiguous MPI-IO access.
type Region struct {
	Off  int64
	Size int64
}

// End returns the first offset past the region.
func (r Region) End() int64 { return r.Off + r.Size }

// Regions builds count regions of the given size separated by spacing
// bytes of hole, starting at base — HPIO's access-pattern parameters.
func Regions(base int64, count int, size, spacing int64) []Region {
	out := make([]Region, count)
	off := base
	for i := range out {
		out[i] = Region{Off: off, Size: size}
		off += size + spacing
	}
	return out
}

// MPIIOConfig parameterizes the MPI-IO layer.
type MPIIOConfig struct {
	// DataSieving enables ROMIO-style data sieving for noncontiguous
	// reads: instead of one small access per region, the layer reads the
	// covering extent — holes included — through a sieve buffer.
	DataSieving bool

	// SieveBufSize is the sieve buffer size (ROMIO default 4 MiB).
	SieveBufSize int64
}

func (c MPIIOConfig) withDefaults() MPIIOConfig {
	if c.SieveBufSize <= 0 {
		c.SieveBufSize = 4 << 20
	}
	return c
}

// MPIIO is the MPI-IO interface for one process. A noncontiguous call is
// recorded as a single application access whose size is the sum of the
// region sizes — the data the application required — even though with
// sieving the layers below move the whole covering extent. Every piece
// the call decomposes into shares one request ID.
type MPIIO struct {
	target Target
	col    *trace.Collector
	cfg    MPIIOConfig
}

// NewMPIIO wraps a target with MPI-IO semantics and trace capture.
func NewMPIIO(target Target, col *trace.Collector, cfg MPIIOConfig) *MPIIO {
	return &MPIIO{target: target, col: col, cfg: cfg.withDefaults()}
}

// Read performs a contiguous MPI-IO read (degenerate single region).
func (m *MPIIO) Read(p *sim.Proc, off, size int64) error {
	return m.ReadRegions(p, []Region{{Off: off, Size: size}})
}

// Write performs a contiguous MPI-IO write.
func (m *MPIIO) Write(p *sim.Proc, off, size int64) error {
	if size <= 0 || off < 0 {
		return fmt.Errorf("middleware: write [%d,%d) invalid", off, off+size)
	}
	start := p.Now()
	req := m.target.NewRequest(p, ioreq.OpWrite, off, size)
	req.PID = m.col.PID()
	err := m.target.Serve(p, req)
	record(p, m.col, trace.BlocksOf(size), start)
	return err
}

// ReadRegions performs one noncontiguous read call over the given
// regions, which must be sorted by offset and non-overlapping.
func (m *MPIIO) ReadRegions(p *sim.Proc, regions []Region) error {
	required, err := validateRegions(regions)
	if err != nil {
		return err
	}
	start := p.Now()
	// One logical call, one request identity: every sieve piece or
	// per-region access below is a Child of req.
	req := m.target.NewRequest(p, ioreq.OpRead, regions[0].Off, required)
	req.PID = m.col.PID()
	if m.cfg.DataSieving && len(regions) > 1 {
		err = m.sieveRead(p, req, regions)
	} else {
		err = m.directRead(p, req, regions)
	}
	record(p, m.col, trace.BlocksOf(required), start)
	return err
}

// directRead issues one underlying access per region.
func (m *MPIIO) directRead(p *sim.Proc, req *ioreq.Request, regions []Region) error {
	for _, r := range regions {
		if err := m.target.Serve(p, req.Child(r.Off, r.Size)); err != nil {
			return err
		}
	}
	return nil
}

// sieveRead reads the covering extent [first.Off, last.End) in sieve-
// buffer-sized pieces; the holes between regions are moved through the
// I/O system although the application never asked for them.
func (m *MPIIO) sieveRead(p *sim.Proc, req *ioreq.Request, regions []Region) error {
	lo := regions[0].Off
	hi := regions[len(regions)-1].End()
	for off := lo; off < hi; off += m.cfg.SieveBufSize {
		n := m.cfg.SieveBufSize
		if off+n > hi {
			n = hi - off
		}
		if err := m.target.Serve(p, req.Child(off, n)); err != nil {
			return err
		}
	}
	return nil
}

// validateRegions checks ordering/overlap and returns the required bytes.
func validateRegions(regions []Region) (int64, error) {
	if len(regions) == 0 {
		return 0, fmt.Errorf("middleware: empty region list")
	}
	var required int64
	prevEnd := int64(-1)
	for i, r := range regions {
		if r.Size <= 0 || r.Off < 0 {
			return 0, fmt.Errorf("middleware: region %d [%d,%d) invalid", i, r.Off, r.End())
		}
		if r.Off < prevEnd {
			return 0, fmt.Errorf("middleware: region %d overlaps or is unsorted", i)
		}
		prevEnd = r.End()
		required += r.Size
	}
	return required, nil
}
