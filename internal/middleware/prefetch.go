package middleware

import (
	"bps/internal/ioreq"
	"bps/internal/sim"
)

// Prefetcher is a sequential-readahead layer: when read requests arrive
// in ascending adjacent order it fetches Window bytes ahead into a
// client-side staging buffer, so later sequential reads are served at
// memory speed. Like data sieving, this is an optimization that moves
// *more* data through the I/O system than the application requires — the
// second source of BW/BPS divergence the paper names (§I, prefetching
// [13,14]). Fetch sub-requests keep the demand request's identity.
type Prefetcher struct {
	inner ioreq.Layer
	size  int64 // file size, bounds the readahead window

	// Window is the readahead size (default 4 MiB).
	Window int64

	// MemRate is the staging-buffer copy rate (default 5 GB/s).
	MemRate float64

	// staged is the half-open prefetched range.
	stagedLo, stagedHi int64
	lastEnd            int64
	hits, misses       uint64
	prefetched         int64
}

// NewPrefetcher builds a readahead layer in front of target's pipeline;
// install it with target.With(pf).
func NewPrefetcher(target Target, window int64) *Prefetcher {
	if window <= 0 {
		window = 4 << 20
	}
	return &Prefetcher{inner: target.Layer(), size: target.Size(), Window: window, MemRate: 5e9}
}

// Hits returns the number of reads fully served from the staging buffer.
func (pf *Prefetcher) Hits() uint64 { return pf.hits }

// Misses returns the number of reads that went to the underlying layer.
func (pf *Prefetcher) Misses() uint64 { return pf.misses }

// PrefetchedBytes returns the total bytes fetched ahead of demand.
func (pf *Prefetcher) PrefetchedBytes() int64 { return pf.prefetched }

// Serve implements ioreq.Layer. Writes bypass and invalidate the
// staging buffer (keeping the model conservative).
func (pf *Prefetcher) Serve(p *sim.Proc, req *ioreq.Request) error {
	if req.Op == ioreq.OpWrite {
		pf.stagedLo, pf.stagedHi = 0, 0
		return pf.inner.Serve(p, req)
	}
	off, size := req.Off, req.Size
	if off >= pf.stagedLo && off+size <= pf.stagedHi {
		// Full staging-buffer hit: memory-speed copy.
		pf.hits++
		p.Sleep(sim.TransferTime(size, pf.MemRate))
		pf.lastEnd = off + size
		return nil
	}
	pf.misses++
	sequential := off == pf.lastEnd
	pf.lastEnd = off + size

	if !sequential {
		pf.stagedLo, pf.stagedHi = 0, 0
		return pf.inner.Serve(p, req)
	}
	// Sequential miss: fetch the demand plus the readahead window.
	fetch := size + pf.Window
	if off+fetch > pf.size {
		fetch = pf.size - off
	}
	if fetch < size {
		fetch = size
	}
	if err := pf.inner.Serve(p, req.Child(off, fetch)); err != nil {
		return err
	}
	pf.prefetched += fetch - size
	pf.stagedLo, pf.stagedHi = off, off+fetch
	return nil
}
