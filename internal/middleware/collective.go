package middleware

import (
	"fmt"

	"bps/internal/sim"
	"bps/internal/trace"
)

// CollectiveConfig parameterizes two-phase collective I/O.
type CollectiveConfig struct {
	// Aggregators is the number of processes doing the file-access phase
	// (ROMIO cb_nodes); default min(procs, 4).
	Aggregators int

	// AggBufSize is the aggregator staging-buffer size; each aggregator
	// reads its file domain in pieces of this size (default 4 MiB).
	AggBufSize int64

	// ExchangeRate is the redistribution rate of the exchange phase in
	// bytes/second (default 1 GB/s: memory plus interconnect scatter).
	ExchangeRate float64

	// ExchangeLatency is the fixed per-call cost of the exchange phase.
	ExchangeLatency sim.Time
}

func (c CollectiveConfig) withDefaults(procs int) CollectiveConfig {
	if c.Aggregators <= 0 {
		c.Aggregators = 4
	}
	if c.Aggregators > procs {
		c.Aggregators = procs
	}
	if c.AggBufSize <= 0 {
		c.AggBufSize = 4 << 20
	}
	if c.ExchangeRate <= 0 {
		c.ExchangeRate = 1e9
	}
	return c
}

// Collective implements ROMIO-style two-phase collective I/O over one
// shared target: all participants synchronize, a few aggregators read
// contiguous file domains covering every process's regions exactly once,
// and the exchange phase scatters each process its own data. Compared
// with independent data sieving, interleaved access patterns stop
// re-reading the same extent once per process — the other classic
// optimization the paper's reference [8] introduces alongside data
// sieving.
type Collective struct {
	eng    *sim.Engine
	target Target
	procs  int
	cfg    CollectiveConfig

	round *collRound
}

// collRound is the state of one in-flight collective call.
type collRound struct {
	arrivals int
	lo, hi   int64 // covering extent across all participants
	any      bool
	done     *sim.Future
	err      error
}

// NewCollective builds a collective context for procs participants over
// target. Every participant must call ReadAll once per collective
// operation (MPI collective semantics).
func NewCollective(e *sim.Engine, target Target, procs int, cfg CollectiveConfig) *Collective {
	if procs < 1 {
		panic("middleware: collective needs at least one process")
	}
	return &Collective{
		eng:    e,
		target: target,
		procs:  procs,
		cfg:    cfg.withDefaults(procs),
	}
}

// ReadAll is one process's part of a collective read. regions may be
// empty (the process participates without requesting data). The call
// returns when the process has received its data; the trace record
// carries the process's own required size over the full collective
// duration it observed.
func (c *Collective) ReadAll(p *sim.Proc, col *trace.Collector, regions []Region) error {
	var required int64
	if len(regions) > 0 {
		var err error
		required, err = validateRegions(regions)
		if err != nil {
			return err
		}
	}
	start := p.Now()

	r := c.round
	if r == nil {
		r = &collRound{done: c.eng.NewFuture()}
		c.round = r
	}
	r.arrivals++
	if len(regions) > 0 {
		lo, hi := regions[0].Off, regions[len(regions)-1].End()
		if !r.any || lo < r.lo {
			r.lo = lo
		}
		if !r.any || hi > r.hi {
			r.hi = hi
		}
		r.any = true
	}

	if r.arrivals < c.procs {
		r.done.Wait(p) // barrier: wait for the last participant
	} else {
		c.round = nil // the next call opens a fresh round
		if r.any {
			r.err = c.aggregate(p, r.lo, r.hi)
		}
		r.done.Complete()
	}

	// Exchange phase: each process receives its own data.
	if required > 0 && r.err == nil {
		p.Sleep(c.cfg.ExchangeLatency + sim.TransferTime(required, c.cfg.ExchangeRate))
	}
	record(p, col, trace.BlocksOf(required), start)
	return r.err
}

// aggregate performs the file-access phase: the covering extent is split
// into contiguous domains, one per aggregator, read in parallel through
// staging buffers.
func (c *Collective) aggregate(p *sim.Proc, lo, hi int64) error {
	k := c.cfg.Aggregators
	extent := hi - lo
	domain := (extent + int64(k) - 1) / int64(k)
	if domain <= 0 {
		return nil
	}
	futures := make([]*sim.Future, 0, k)
	errs := make([]error, k)
	for a := 0; a < k; a++ {
		dlo := lo + int64(a)*domain
		if dlo >= hi {
			break
		}
		dhi := dlo + domain
		if dhi > hi {
			dhi = hi
		}
		a := a
		fut := c.eng.NewFuture()
		futures = append(futures, fut)
		c.eng.Spawn(fmt.Sprintf("coll.agg%d", a), func(agg *sim.Proc) {
			errs[a] = c.readDomain(agg, dlo, dhi)
			fut.Complete()
		})
	}
	sim.WaitAll(p, futures...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readDomain reads [lo, hi) in staging-buffer pieces.
func (c *Collective) readDomain(p *sim.Proc, lo, hi int64) error {
	for off := lo; off < hi; off += c.cfg.AggBufSize {
		n := c.cfg.AggBufSize
		if off+n > hi {
			n = hi - off
		}
		if err := c.target.ReadAt(p, off, n); err != nil {
			return err
		}
	}
	return nil
}
