package middleware

import (
	"testing"
	"testing/quick"

	"bps/internal/device"
	"bps/internal/fsim"
	"bps/internal/netsim"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/trace"
)

// localSetup builds a RAM-backed local file target of the given size.
func localSetup(e *sim.Engine, size int64) (Target, *fsim.FileSystem) {
	dev := device.NewRAMDisk(e, "ram", 4<<30, 10*sim.Microsecond, 200e6)
	fs := fsim.New(e, dev, fsim.Config{})
	f, err := fs.Create("f", size)
	if err != nil {
		panic(err)
	}
	return NewTarget(f.Layer(), f.Name(), f.Size()), fs
}

func TestPOSIXRecordsAccesses(t *testing.T) {
	e := sim.NewEngine(1)
	col := trace.NewCollector(7)
	e.Spawn("app", func(p *sim.Proc) {
		target, _ := localSetup(e, 1<<20)
		io := NewPOSIX(target, col)
		if err := io.Read(p, 0, 64<<10); err != nil {
			t.Error(err)
		}
		if err := io.Write(p, 0, 100); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("recorded %d accesses, want 2", len(recs))
	}
	if recs[0].PID != 7 || recs[0].Blocks != 128 {
		t.Fatalf("read record = %+v", recs[0])
	}
	if recs[1].Blocks != 1 { // 100 bytes → 1 block
		t.Fatalf("write record = %+v", recs[1])
	}
	if recs[0].End <= recs[0].Start {
		t.Fatal("record has no duration")
	}
	if recs[1].Start < recs[0].End {
		t.Fatal("sequential accesses overlap in the trace")
	}
}

func TestPOSIXRecordsFailedAccess(t *testing.T) {
	e := sim.NewEngine(1)
	col := trace.NewCollector(1)
	e.Spawn("app", func(p *sim.Proc) {
		target, _ := localSetup(e, 1<<20)
		io := NewPOSIX(target, col)
		if err := io.Read(p, 0, 2<<20); err == nil { // beyond EOF
			t.Error("out-of-bounds read succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Paper §III.A: failed accesses are still counted in B.
	if col.Len() != 1 || col.Records()[0].Blocks != trace.BlocksOf(2<<20) {
		t.Fatalf("failed access not recorded: %+v", col.Records())
	}
}

func TestRegionsBuilder(t *testing.T) {
	rs := Regions(1000, 3, 256, 8)
	want := []Region{{1000, 256}, {1264, 256}, {1528, 256}}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Regions = %+v, want %+v", rs, want)
		}
	}
	if rs[0].End() != 1256 {
		t.Fatalf("End = %d", rs[0].End())
	}
}

func TestValidateRegions(t *testing.T) {
	if _, err := validateRegions(nil); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := validateRegions([]Region{{0, 0}}); err == nil {
		t.Error("zero-size region accepted")
	}
	if _, err := validateRegions([]Region{{-4, 8}}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := validateRegions([]Region{{100, 50}, {120, 10}}); err == nil {
		t.Error("overlapping regions accepted")
	}
	if _, err := validateRegions([]Region{{100, 50}, {50, 10}}); err == nil {
		t.Error("unsorted regions accepted")
	}
	req, err := validateRegions([]Region{{0, 100}, {200, 50}})
	if err != nil || req != 150 {
		t.Errorf("required = %d, err = %v", req, err)
	}
}

func TestMPIIOSievingMovesHolesButRecordsRequired(t *testing.T) {
	run := func(sieving bool) (moved int64, recorded int64, ops int) {
		e := sim.NewEngine(1)
		col := trace.NewCollector(1)
		var fs *fsim.FileSystem
		e.Spawn("app", func(p *sim.Proc) {
			var target Target
			target, fs = localSetup(e, 8<<20)
			m := NewMPIIO(target, col, MPIIOConfig{DataSieving: sieving, SieveBufSize: 1 << 20})
			regions := Regions(0, 100, 256, 4096) // 100×256 B with 4 KiB holes
			if err := m.ReadRegions(p, regions); err != nil {
				t.Error(err)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fs.Moved(), trace.Gather(col).TotalBytes(), col.Len()
	}

	movedSieve, recSieve, opsSieve := run(true)
	movedDirect, recDirect, opsDirect := run(false)

	required := int64(100 * 256)
	if recSieve != roundUpBlocks(required) || recDirect != roundUpBlocks(required) {
		t.Fatalf("recorded bytes: sieve=%d direct=%d, want required %d", recSieve, recDirect, required)
	}
	if opsSieve != 1 || opsDirect != 1 {
		t.Fatalf("ops: sieve=%d direct=%d, want 1 each (one MPI-IO call)", opsSieve, opsDirect)
	}
	if movedDirect != required {
		t.Fatalf("direct moved %d, want exactly required %d", movedDirect, required)
	}
	// Covering extent: 99 holes of 4096 plus 100 regions of 256.
	extent := int64(99*(256+4096) + 256)
	if movedSieve != extent {
		t.Fatalf("sieving moved %d, want covering extent %d", movedSieve, extent)
	}
}

func roundUpBlocks(b int64) int64 { return trace.BlocksOf(b) * trace.BlockSize }

func TestMPIIOSieveBufferChunking(t *testing.T) {
	e := sim.NewEngine(1)
	col := trace.NewCollector(1)
	var fs *fsim.FileSystem
	e.Spawn("app", func(p *sim.Proc) {
		var target Target
		target, fs = localSetup(e, 8<<20)
		m := NewMPIIO(target, col, MPIIOConfig{DataSieving: true, SieveBufSize: 64 << 10})
		// Extent of 1 MiB → 16 sieve reads of 64 KiB.
		regions := []Region{{0, 512}, {1<<20 - 512, 512}}
		if err := m.ReadRegions(p, regions); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ops := fs.Device().Stats().Ops(); ops != 16 {
		t.Fatalf("device ops = %d, want 16 sieve-buffer reads", ops)
	}
}

func TestMPIIOContiguousRead(t *testing.T) {
	e := sim.NewEngine(1)
	col := trace.NewCollector(1)
	e.Spawn("app", func(p *sim.Proc) {
		target, _ := localSetup(e, 1<<20)
		m := NewMPIIO(target, col, MPIIOConfig{DataSieving: true})
		if err := m.Read(p, 0, 64<<10); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 1 || col.Records()[0].Blocks != 128 {
		t.Fatalf("records = %+v", col.Records())
	}
}

func TestMPIIOOverPFS(t *testing.T) {
	e := sim.NewEngine(1)
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := []device.Device{
		device.NewRAMDisk(e, "d0", 8<<30, 10*sim.Microsecond, 200e6),
		device.NewRAMDisk(e, "d1", 8<<30, 10*sim.Microsecond, 200e6),
	}
	cluster := pfs.NewCluster(e, fabric, pfs.Config{}, devs)
	col := trace.NewCollector(1)
	e.Spawn("app", func(p *sim.Proc) {
		f, err := cluster.Create("shared", 4<<20, cluster.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		client := cluster.NewClient("c0")
		m := NewMPIIO(NewTarget(client.Layer(f), f.Name(), f.Size()), col, MPIIOConfig{DataSieving: true, SieveBufSize: 1 << 20})
		if err := m.ReadRegions(p, Regions(0, 64, 256, 8192)); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	required := int64(64 * 256)
	if got := trace.Gather(col).TotalBytes(); got != roundUpBlocks(required) {
		t.Fatalf("recorded %d, want %d", got, required)
	}
	extent := int64(63*(256+8192) + 256)
	if cluster.Moved() != extent {
		t.Fatalf("cluster moved %d, want covering extent %d", cluster.Moved(), extent)
	}
}

func TestPrefetcherSequentialHits(t *testing.T) {
	e := sim.NewEngine(1)
	var pf *Prefetcher
	var fs *fsim.FileSystem
	e.Spawn("app", func(p *sim.Proc) {
		var target Target
		target, fs = localSetup(e, 16<<20)
		pf = NewPrefetcher(target, 4<<20)
		col := trace.NewCollector(1)
		io := NewPOSIX(target.With(pf), col)
		for off := int64(0); off < 8<<20; off += 64 << 10 {
			if err := io.Read(p, off, 64<<10); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Hits() == 0 {
		t.Fatal("sequential reads produced no prefetch hits")
	}
	if pf.PrefetchedBytes() == 0 {
		t.Fatal("no readahead bytes")
	}
	// The prefetcher moved at least the demand (8 MiB) through the FS.
	if fs.Moved() < 8<<20 {
		t.Fatalf("moved %d < demand", fs.Moved())
	}
	// And more than the demand, because of readahead past the last read.
	if fs.Moved() <= 8<<20 {
		t.Fatalf("moved %d, expected readahead beyond demand", fs.Moved())
	}
}

func TestPrefetcherRandomBypasses(t *testing.T) {
	e := sim.NewEngine(1)
	var pf *Prefetcher
	e.Spawn("app", func(p *sim.Proc) {
		target, _ := localSetup(e, 16<<20)
		pf = NewPrefetcher(target, 4<<20)
		tgt := target.With(pf)
		offsets := []int64{8 << 20, 0, 12 << 20, 4 << 20}
		for _, off := range offsets {
			if err := tgt.ReadAt(p, off, 4096); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Hits() != 0 {
		t.Fatalf("random reads got %d staging hits", pf.Hits())
	}
	if pf.PrefetchedBytes() != 0 {
		t.Fatalf("random reads triggered readahead of %d bytes", pf.PrefetchedBytes())
	}
}

func TestPrefetcherWriteInvalidates(t *testing.T) {
	e := sim.NewEngine(1)
	var pf *Prefetcher
	e.Spawn("app", func(p *sim.Proc) {
		target, _ := localSetup(e, 16<<20)
		pf = NewPrefetcher(target, 4<<20)
		tgt := target.With(pf)
		// Prime the staging buffer sequentially from offset 0.
		if err := tgt.ReadAt(p, 0, 64<<10); err != nil {
			t.Error(err)
		}
		if err := tgt.ReadAt(p, 64<<10, 64<<10); err != nil {
			t.Error(err)
		}
		if err := tgt.WriteAt(p, 0, 4096); err != nil {
			t.Error(err)
		}
		hitsBefore := pf.Hits()
		if err := tgt.ReadAt(p, 128<<10, 4096); err != nil {
			t.Error(err)
		}
		if pf.Hits() != hitsBefore {
			t.Error("read after write served from stale staging buffer")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: recorded blocks always equal the ceil of required bytes over
// the block size, for any region geometry, sieving or not.
func TestRecordedBlocksProperty(t *testing.T) {
	prop := func(count, size, spacing uint16, sieve bool) bool {
		n := int(count%20) + 1
		sz := int64(size%2000) + 1
		sp := int64(spacing % 4000)
		e := sim.NewEngine(1)
		col := trace.NewCollector(1)
		ok := true
		e.Spawn("app", func(p *sim.Proc) {
			target, _ := localSetup(e, 64<<20)
			m := NewMPIIO(target, col, MPIIOConfig{DataSieving: sieve, SieveBufSize: 1 << 20})
			if err := m.ReadRegions(p, Regions(0, n, sz, sp)); err != nil {
				ok = false
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok && col.Records()[0].Blocks == trace.BlocksOf(int64(n)*sz)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMPIIOWrite(t *testing.T) {
	e := sim.NewEngine(1)
	col := trace.NewCollector(1)
	var fs *fsim.FileSystem
	e.Spawn("app", func(p *sim.Proc) {
		var target Target
		target, fs = localSetup(e, 1<<20)
		m := NewMPIIO(target, col, MPIIOConfig{})
		if err := m.Write(p, 0, 256<<10); err != nil {
			t.Error(err)
		}
		if err := m.Write(p, -1, 10); err == nil {
			t.Error("negative-offset write accepted")
		}
		if err := m.Write(p, 0, 0); err == nil {
			t.Error("zero-size write accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 1 || col.Records()[0].Blocks != trace.BlocksOf(256<<10) {
		t.Fatalf("records = %+v", col.Records())
	}
	if fs.Device().Stats().BytesWritten != 256<<10 {
		t.Fatalf("wrote %d", fs.Device().Stats().BytesWritten)
	}
}
