package middleware

import (
	"testing"

	"bps/internal/fsim"
	"bps/internal/sim"
	"bps/internal/trace"
)

// interleavedRegions gives process pid blocks pid, pid+n, pid+2n, ... of
// a file of `total` regions of `size` bytes — the classic collective-I/O
// pattern.
func interleavedRegions(pid, nprocs, total int, size int64) []Region {
	var out []Region
	for i := pid; i < total; i += nprocs {
		out = append(out, Region{Off: int64(i) * size, Size: size})
	}
	return out
}

// runCollective runs nprocs processes reading an interleaved pattern
// collectively, returning moved bytes, makespan, and per-proc collectors.
func runCollective(t *testing.T, nprocs int, cfg CollectiveConfig) (int64, sim.Time, []*trace.Collector) {
	t.Helper()
	e := sim.NewEngine(1)
	var fs *fsim.FileSystem
	var target Target
	target, fs = localSetup(e, 16<<20)
	coll := NewCollective(e, target, nprocs, cfg)
	cols := make([]*trace.Collector, nprocs)
	const totalRegions = 256
	const regionSize = 16 << 10
	for pid := 0; pid < nprocs; pid++ {
		pid := pid
		cols[pid] = trace.NewCollector(int64(pid))
		e.Spawn("rank", func(p *sim.Proc) {
			regions := interleavedRegions(pid, nprocs, totalRegions, regionSize)
			if err := coll.ReadAll(p, cols[pid], regions); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return fs.Moved(), e.Now(), cols
}

func TestCollectiveReadsExtentOnce(t *testing.T) {
	moved, _, cols := runCollective(t, 4, CollectiveConfig{})
	extent := int64(256 * (16 << 10))
	if moved != extent {
		t.Fatalf("collective moved %d, want extent %d read exactly once", moved, extent)
	}
	// Each process records exactly its own required data.
	for pid, col := range cols {
		if col.Len() != 1 {
			t.Fatalf("pid %d recorded %d accesses", pid, col.Len())
		}
		wantBlocks := trace.BlocksOf(64 * (16 << 10)) // 256/4 regions each
		if col.Records()[0].Blocks != wantBlocks {
			t.Fatalf("pid %d blocks = %d, want %d", pid, col.Records()[0].Blocks, wantBlocks)
		}
	}
}

func TestCollectiveBeatsIndependentSieving(t *testing.T) {
	collMoved, collTime, _ := runCollective(t, 4, CollectiveConfig{})

	// Independent data sieving: each process's covering extent is nearly
	// the whole file, so the extent is re-read once per process.
	e := sim.NewEngine(1)
	var fs *fsim.FileSystem
	var target Target
	target, fs = localSetup(e, 16<<20)
	for pid := 0; pid < 4; pid++ {
		pid := pid
		col := trace.NewCollector(int64(pid))
		e.Spawn("rank", func(p *sim.Proc) {
			m := NewMPIIO(target, col, MPIIOConfig{DataSieving: true})
			if err := m.ReadRegions(p, interleavedRegions(pid, 4, 256, 16<<10)); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	sieveMoved, sieveTime := fs.Moved(), e.Now()

	if collMoved*3 > sieveMoved {
		t.Fatalf("collective moved %d vs sieving %d: expected ~4x reduction", collMoved, sieveMoved)
	}
	if collTime >= sieveTime {
		t.Fatalf("collective (%v) not faster than independent sieving (%v)", collTime, sieveTime)
	}
}

func TestCollectiveBarrier(t *testing.T) {
	// A straggler delays everyone: all records end at (or after) the
	// straggler's aggregation, and no one returns before it arrives.
	e := sim.NewEngine(1)
	target, _ := localSetup(e, 16<<20)
	coll := NewCollective(e, target, 2, CollectiveConfig{})
	cols := []*trace.Collector{trace.NewCollector(0), trace.NewCollector(1)}
	e.Spawn("early", func(p *sim.Proc) {
		if err := coll.ReadAll(p, cols[0], []Region{{Off: 0, Size: 4096}}); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("late", func(p *sim.Proc) {
		p.Sleep(50 * sim.Millisecond)
		if err := coll.ReadAll(p, cols[1], []Region{{Off: 8192, Size: 4096}}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	early := cols[0].Records()[0]
	if early.Start != 0 {
		t.Fatalf("early start = %v", early.Start)
	}
	if early.End < 50*sim.Millisecond {
		t.Fatalf("early rank returned at %v, before the straggler arrived", early.End)
	}
}

func TestCollectiveEmptyParticipant(t *testing.T) {
	e := sim.NewEngine(1)
	target, fs := localSetup(e, 1<<20)
	coll := NewCollective(e, target, 2, CollectiveConfig{})
	cols := []*trace.Collector{trace.NewCollector(0), trace.NewCollector(1)}
	e.Spawn("reader", func(p *sim.Proc) {
		if err := coll.ReadAll(p, cols[0], []Region{{Off: 0, Size: 64 << 10}}); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("idle", func(p *sim.Proc) {
		if err := coll.ReadAll(p, cols[1], nil); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() != 64<<10 {
		t.Fatalf("moved %d", fs.Moved())
	}
	if cols[1].Records()[0].Blocks != 0 {
		t.Fatalf("idle rank recorded %d blocks", cols[1].Records()[0].Blocks)
	}
}

func TestCollectiveErrorPropagates(t *testing.T) {
	e := sim.NewEngine(1)
	target, _ := localSetup(e, 64<<10) // small file
	coll := NewCollective(e, target, 2, CollectiveConfig{})
	errors := make([]error, 2)
	for pid := 0; pid < 2; pid++ {
		pid := pid
		col := trace.NewCollector(int64(pid))
		e.Spawn("rank", func(p *sim.Proc) {
			// Extent reaches past EOF: aggregation must fail for everyone.
			errors[pid] = coll.ReadAll(p, col, []Region{{Off: int64(pid) * (96 << 10), Size: 32 << 10}})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for pid, err := range errors {
		if err == nil {
			t.Errorf("rank %d saw no error", pid)
		}
	}
}

func TestCollectiveMultipleRounds(t *testing.T) {
	e := sim.NewEngine(1)
	target, fs := localSetup(e, 16<<20)
	coll := NewCollective(e, target, 2, CollectiveConfig{})
	for pid := 0; pid < 2; pid++ {
		pid := pid
		col := trace.NewCollector(int64(pid))
		e.Spawn("rank", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				base := int64(round) * (4 << 20)
				regions := []Region{{Off: base + int64(pid)*(64<<10), Size: 64 << 10}}
				if err := coll.ReadAll(p, col, regions); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() == 0 {
		t.Fatal("no data moved over three rounds")
	}
}

func TestCollectiveSingleProcess(t *testing.T) {
	e := sim.NewEngine(1)
	target, fs := localSetup(e, 1<<20)
	coll := NewCollective(e, target, 1, CollectiveConfig{})
	col := trace.NewCollector(0)
	e.Spawn("solo", func(p *sim.Proc) {
		if err := coll.ReadAll(p, col, []Region{{Off: 0, Size: 128 << 10}}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Moved() != 128<<10 || col.Len() != 1 {
		t.Fatalf("moved=%d records=%d", fs.Moved(), col.Len())
	}
}

func TestCollectiveInvalidConstruction(t *testing.T) {
	e := sim.NewEngine(1)
	target, _ := localSetup(e, 1<<20)
	defer func() {
		if recover() == nil {
			t.Error("zero-proc collective did not panic")
		}
	}()
	NewCollective(e, target, 0, CollectiveConfig{})
}

func TestCollectiveInvalidRegions(t *testing.T) {
	e := sim.NewEngine(1)
	target, _ := localSetup(e, 1<<20)
	coll := NewCollective(e, target, 1, CollectiveConfig{})
	col := trace.NewCollector(0)
	e.Spawn("solo", func(p *sim.Proc) {
		if err := coll.ReadAll(p, col, []Region{{Off: -1, Size: 10}}); err == nil {
			t.Error("invalid regions accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
