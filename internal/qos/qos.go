// Package qos is the multi-tenant quality-of-service subsystem: it
// computes per-tenant windowed BPS/IOPS/BW/ARPT series with the attrib
// window estimator, scores cross-tenant interference LASSi-style (a
// tenant's risk is its share of I/O-time occupancy versus its share of
// the delivered metric), and closes the first control loop over the
// paper's metric — a token-bucket admission middleware that delays or
// sheds low-priority tenants' requests whenever a protected tenant's
// windowed block rate drops below its configured floor.
//
// Everything here runs inside the simulation: the throttle delays are
// sim.Proc sleeps, the control law is evaluated at access-completion
// events, and all state is touched only by tenant procs placed in one
// engine domain — so the subsystem is deterministic by construction
// (same seed, same schedule, bit-identical results for any worker
// count) and works on both the classic and the sharded engine.
package qos

import (
	"errors"
	"fmt"

	"bps/internal/ioreq"
	"bps/internal/obs/attrib"
	"bps/internal/sim"
	"bps/internal/trace"
)

// ErrShed is returned (wrapped) for requests rejected by admission
// control while a tenant is in shed mode. Shed accesses count as failed
// application accesses — which, per the paper's §III.A, still count in
// B.
var ErrShed = errors.New("qos: request shed by admission control")

// Config parameterizes the controller. The zero value disables QoS
// entirely: Middleware returns nil and the request path is exactly the
// pre-QoS pipeline.
type Config struct {
	// Enabled turns the control loop on.
	Enabled bool

	// WindowEvery is the control window width (default 10 ms): the
	// protected tenant's delivered block rate is evaluated once per
	// window, at the first completion past the window's end.
	WindowEvery sim.Time

	// Backoff multiplies a throttled tenant's rate limit on each
	// violated window (default 0.5 — multiplicative decrease).
	Backoff float64

	// Recover multiplies a throttled tenant's rate limit on each clean
	// window (default 1.25 — slow multiplicative recovery). A tenant is
	// released once its limit climbs back above its observed peak rate.
	Recover float64

	// MinRate is the floor of any rate limit in blocks/second (default
	// 128). A throttled tenant always trickles at least this fast unless
	// it is shedding.
	MinRate float64

	// BurstBlocks is the token-bucket depth in blocks (default 64):
	// how much a throttled tenant may burst after an idle period.
	BurstBlocks float64

	// ShedAfter is the number of consecutive violated windows a tenant
	// must spend pinned at MinRate before admission control starts
	// shedding its requests outright (default 8). Shedding clears on the
	// first clean window.
	ShedAfter int
}

func (c Config) withDefaults() Config {
	if c.WindowEvery <= 0 {
		c.WindowEvery = 10 * sim.Millisecond
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.5
	}
	if c.Recover <= 1 {
		c.Recover = 1.25
	}
	if c.MinRate <= 0 {
		c.MinRate = 128
	}
	if c.BurstBlocks <= 0 {
		c.BurstBlocks = 64
	}
	if c.ShedAfter <= 0 {
		c.ShedAfter = 8
	}
	return c
}

// Tenant is one tenant's identity and service contract.
type Tenant struct {
	// Name identifies the tenant; it is stamped on every ioreq.Request
	// the tenant issues (and therefore on every trace span).
	Name string

	// Priority orders tenants: when a protected tenant's floor is
	// violated, only tenants with strictly lower priority are throttled.
	Priority int

	// BPSFloor, when positive, marks the tenant as protected: the
	// controller throttles lower-priority tenants whenever this tenant's
	// windowed delivered rate falls below the floor (blocks/second).
	BPSFloor float64
}

// tenantState is the controller's per-tenant mutable state. It is only
// ever touched from tenant procs running in the controller's domain,
// so the engine's alternation discipline makes access race-free.
type tenantState struct {
	t   Tenant
	est *attrib.WindowEstimator // report series (exact Busy union)

	// Per-window delivered blocks on the control grid, indexed by
	// window; grown on demand. The control law reads these — O(1) per
	// access, unlike the estimator's O(n log n) union.
	wblk []int64

	inflight int // requests currently between admission and completion

	// Token bucket in virtual time: creditAt is the time at which the
	// tenant's spent credit is fully repaid at the current rate. The
	// virtual-scheduling form needs no background refill proc and
	// cannot double-spend under concurrent admissions.
	limited  bool
	rate     float64 // blocks/second while limited
	creditAt sim.Time

	peakRate float64 // highest clean-window delivered rate observed
	atMin    int     // consecutive violated windows pinned at MinRate
	shedding bool

	// Counters surfaced in the report.
	delayed   int64    // requests delayed by the throttle
	delaySim  sim.Time // total simulated delay injected
	shed      int64    // requests rejected in shed mode
	ops       int64
	blocks    int64
	sumDur    sim.Time // Σ access durations (occupancy integral)
	firstSeen bool
}

// Controller drives admission control for one engine run. Build it with
// NewController, wrap each tenant's pipeline with Middleware, and read
// Report/Scores after the engine drains.
type Controller struct {
	cfg     Config
	order   []*tenantState // insertion order (report order)
	byName  map[string]*tenantState
	prot    *tenantState // the protected tenant (highest-priority floor)
	nextWin int          // first control window not yet evaluated

	activations int64 // violated windows acted on
}

// NewController builds a controller over the given tenants. The
// protected tenant is the one with a positive BPSFloor; when several
// declare floors, the highest-priority one wins (ties by declaration
// order).
func NewController(cfg Config, tenants ...Tenant) (*Controller, error) {
	c := &Controller{
		cfg:    cfg.withDefaults(),
		byName: make(map[string]*tenantState, len(tenants)),
	}
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("qos: tenant with empty name")
		}
		if c.byName[t.Name] != nil {
			return nil, fmt.Errorf("qos: duplicate tenant %q", t.Name)
		}
		st := &tenantState{t: t, est: attrib.NewWindowEstimator(c.cfg.WindowEvery)}
		c.order = append(c.order, st)
		c.byName[t.Name] = st
		if t.BPSFloor > 0 && (c.prot == nil || t.Priority > c.prot.t.Priority) {
			c.prot = st
		}
	}
	return c, nil
}

// Enabled reports whether the control loop is on.
func (c *Controller) Enabled() bool { return c != nil && c.cfg.Enabled }

// Middleware returns the admission-control layer for the named tenant.
// It stamps the tenant identity on every request even when the control
// loop is disabled (identity threads through traces regardless); with
// QoS off the middleware adds nothing else to the pipeline's behavior.
// Unknown tenant names panic: they indicate a wiring bug.
func (c *Controller) Middleware(name string) ioreq.Middleware {
	st := c.byName[name]
	if st == nil {
		panic(fmt.Sprintf("qos: Middleware for unknown tenant %q", name))
	}
	return func(next ioreq.Layer) ioreq.Layer {
		return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
			return c.serve(st, next, p, req)
		})
	}
}

// serve is the admission path for one tenant request: stamp identity,
// shed or delay per the tenant's current regime, run the pipeline, and
// account the completion into the tenant's windows and the control law.
// With QoS disabled the windows and scores are still accounted — they
// are pure observations — but the control law never runs and the
// timeline is untouched.
func (c *Controller) serve(st *tenantState, next ioreq.Layer, p *sim.Proc, req *ioreq.Request) error {
	req.Tenant = st.t.Name
	start := p.Now() // admission delay counts in the tenant's ARPT
	blocks := trace.BlocksOf(req.Size)
	if c.cfg.Enabled && st != c.prot {
		st.inflight++
		if st.shedding {
			st.inflight--
			st.shed++
			c.complete(st, blocks, start, p.Now())
			return fmt.Errorf("qos: tenant %q: %w", st.t.Name, ErrShed)
		}
		if st.limited {
			c.admit(st, p, blocks)
		}
		err := next.Serve(p, req)
		st.inflight--
		c.complete(st, blocks, start, p.Now())
		return err
	}
	if c.cfg.Enabled {
		st.inflight++
	}
	err := next.Serve(p, req)
	if c.cfg.Enabled {
		st.inflight--
	}
	c.complete(st, blocks, start, p.Now())
	return err
}

// admit charges blocks against st's token bucket, sleeping until the
// virtual finish time when the bucket is empty. The bucket is expressed
// as the time creditAt at which spent credit is repaid: a tenant idle
// long enough accumulates at most BurstBlocks of credit.
func (c *Controller) admit(st *tenantState, p *sim.Proc, blocks int64) {
	now := p.Now()
	floor := now - sim.Time(c.cfg.BurstBlocks/st.rate*float64(sim.Second))
	if st.creditAt < floor {
		st.creditAt = floor
	}
	st.creditAt += sim.Time(float64(blocks) / st.rate * float64(sim.Second))
	if d := st.creditAt - now; d > 0 {
		st.delayed++
		st.delaySim += d
		p.Sleep(d)
	}
}

// complete accounts one finished (or shed) access and advances the
// control law over every window that has fully closed.
func (c *Controller) complete(st *tenantState, blocks int64, start, end sim.Time) {
	st.est.Add(blocks, start, end)
	st.ops++
	st.blocks += blocks
	st.sumDur += end - start
	st.firstSeen = true
	idx := int(end / c.cfg.WindowEvery)
	if end == sim.Time(idx)*c.cfg.WindowEvery && idx > 0 {
		idx-- // boundary completion belongs to the left window
	}
	for len(st.wblk) <= idx {
		st.wblk = append(st.wblk, 0)
	}
	st.wblk[idx] += blocks
	c.evaluate(end)
}

// evaluate runs the control law over every control window whose end is
// strictly in the past — a window only closes once a later completion
// proves no more work can land in it.
func (c *Controller) evaluate(now sim.Time) {
	if !c.cfg.Enabled || c.prot == nil {
		return
	}
	w := c.cfg.WindowEvery
	for sim.Time(c.nextWin+1)*w < now {
		k := c.nextWin
		c.nextWin++
		c.evalWindow(k)
	}
}

// winBlocks returns st's delivered blocks in control window k.
func (st *tenantState) winBlocks(k int) int64 {
	if k < 0 || k >= len(st.wblk) {
		return 0
	}
	return st.wblk[k]
}

// evalWindow applies the control law to one closed window: violation →
// back off every lower-priority tenant; clean → recover them. Windows
// where the protected tenant is idle with nothing in flight (not yet
// started, compute phase, or finished) are clean: protection ends when
// the protected tenant no longer needs the bandwidth.
func (c *Controller) evalWindow(k int) {
	delivered := float64(c.prot.winBlocks(k)) / c.cfg.WindowEvery.Seconds()
	violated := delivered < c.prot.t.BPSFloor
	if violated && c.prot.winBlocks(k) == 0 && c.prot.inflight == 0 && !pending(c.prot, k) {
		violated = false
	}
	if violated {
		c.activations++
	}
	for _, st := range c.order {
		if st == c.prot || st.t.Priority >= c.prot.t.Priority {
			// Track peaks for everyone so release thresholds exist even
			// for tenants that are throttled later.
			st.notePeak(k, c.cfg.WindowEvery)
			continue
		}
		if violated {
			c.clamp(st, k)
		} else {
			st.notePeak(k, c.cfg.WindowEvery)
			c.recover(st)
		}
	}
}

// pending reports whether the protected tenant completed work in any
// window at or after k — a zero window with later completions means the
// tenant was starved mid-run, not finished.
func pending(st *tenantState, k int) bool {
	for i := k; i < len(st.wblk); i++ {
		if st.wblk[i] > 0 {
			return true
		}
	}
	return false
}

// notePeak records st's delivered rate in clean window k as a release
// threshold candidate.
func (st *tenantState) notePeak(k int, w sim.Time) {
	r := float64(st.winBlocks(k)) / w.Seconds()
	if r > st.peakRate {
		st.peakRate = r
	}
}

// bucketFull is the creditAt sentinel of a freshly-limited tenant: far
// enough in the past that the first admit clamps it to a full burst.
const bucketFull = sim.Time(-1 << 62)

// clamp backs off one tenant after a violated window.
func (c *Controller) clamp(st *tenantState, k int) {
	if !st.limited {
		st.limited = true
		st.creditAt = bucketFull
		base := float64(st.winBlocks(k)) / c.cfg.WindowEvery.Seconds()
		if base <= 0 {
			base = st.peakRate
		}
		st.rate = base * c.cfg.Backoff
	} else {
		st.rate *= c.cfg.Backoff
	}
	if st.rate <= c.cfg.MinRate {
		st.rate = c.cfg.MinRate
		st.atMin++
		if st.atMin >= c.cfg.ShedAfter {
			st.shedding = true
		}
	} else {
		st.atMin = 0
	}
}

// recover relaxes one tenant after a clean window, releasing it once
// its limit climbs back above the fastest rate it has ever delivered —
// past that point the limit no longer binds.
func (c *Controller) recover(st *tenantState) {
	st.atMin = 0
	st.shedding = false
	if !st.limited {
		return
	}
	st.rate *= c.cfg.Recover
	if st.peakRate > 0 && st.rate >= st.peakRate {
		st.limited = false
	}
}

// Score is one tenant's LASSi-style interference rating: its share of
// the run's I/O-time occupancy (Σ access durations, the Little's-law
// integral of its queue presence) against its share of the delivered
// blocks. Risk > 1 means the tenant occupies more of the system than
// the service it extracts — the signature of an interfering workload
// (small random requests seeking a disk another tenant streams from).
type Score struct {
	Name           string  `json:"name"`
	Priority       int     `json:"priority"`
	OccupancyShare float64 `json:"occupancy_share"`
	MetricShare    float64 `json:"metric_share"`
	Risk           float64 `json:"risk"`
}

// Scores computes the per-tenant interference scores over the whole
// run, in tenant declaration order.
func (c *Controller) Scores() []Score {
	var totDur sim.Time
	var totBlk int64
	for _, st := range c.order {
		totDur += st.sumDur
		totBlk += st.blocks
	}
	out := make([]Score, len(c.order))
	for i, st := range c.order {
		s := Score{Name: st.t.Name, Priority: st.t.Priority}
		if totDur > 0 {
			s.OccupancyShare = float64(st.sumDur) / float64(totDur)
		}
		if totBlk > 0 {
			s.MetricShare = float64(st.blocks) / float64(totBlk)
		}
		if s.MetricShare > 0 {
			s.Risk = s.OccupancyShare / s.MetricShare
		}
		out[i] = s
	}
	return out
}

// TenantReport is one tenant's QoS outcome.
type TenantReport struct {
	Name     string  `json:"name"`
	Priority int     `json:"priority"`
	BPSFloor float64 `json:"bps_floor,omitempty"`

	Ops    int64 `json:"ops"`
	Blocks int64 `json:"blocks"`

	// Windows is the tenant's windowed BPS/IOPS/BW/ARPT series from the
	// attrib estimator (exact per-window busy union).
	Windows []attrib.Window `json:"windows,omitempty"`

	Delayed      int64   `json:"delayed"`        // requests the throttle delayed
	DelaySeconds float64 `json:"delay_seconds"`  // total simulated delay injected
	Shed         int64   `json:"shed"`           // requests rejected in shed mode
	Throttled    bool    `json:"throttled"`      // still rate-limited at run end
	RateLimit    float64 `json:"rate_limit"`     // blocks/s limit at run end (0 = none)
	Score        Score   `json:"score"`          // interference rating
}

// Report is the controller's end-of-run summary.
type Report struct {
	Enabled     bool           `json:"enabled"`
	WindowEvery float64        `json:"window_every_seconds"`
	Activations int64          `json:"activations"` // violated windows acted on
	Tenants     []TenantReport `json:"tenants"`
}

// Report assembles the end-of-run summary. Call it after the engine has
// drained.
func (c *Controller) Report() *Report {
	rep := &Report{
		Enabled:     c.cfg.Enabled,
		WindowEvery: c.cfg.WindowEvery.Seconds(),
		Activations: c.activations,
	}
	scores := c.Scores()
	for i, st := range c.order {
		tr := TenantReport{
			Name:         st.t.Name,
			Priority:     st.t.Priority,
			BPSFloor:     st.t.BPSFloor,
			Ops:          st.ops,
			Blocks:       st.blocks,
			Windows:      st.est.Windows(),
			Delayed:      st.delayed,
			DelaySeconds: st.delaySim.Seconds(),
			Shed:         st.shed,
			Throttled:    st.limited,
			Score:        scores[i],
		}
		if st.limited {
			tr.RateLimit = st.rate
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep
}
