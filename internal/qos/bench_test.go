package qos

import (
	"testing"

	"bps/internal/sim"
)

// benchServe measures the middleware's per-request cost over a nop
// pipeline: the controller state is prepared by prep, then one proc
// serves b.N requests.
func benchServe(b *testing.B, cfg Config, prep func(*Controller)) {
	c, err := NewController(cfg, Tenant{Name: "t"})
	if err != nil {
		b.Fatal(err)
	}
	if prep != nil {
		prep(c)
	}
	layer := c.Middleware("t")(nopLayer{})
	e := sim.NewEngine(1)
	e.Spawn("bench", func(p *sim.Proc) {
		req := newReq(p, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := layer.Serve(p, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQoSServeDisabled is the off-switch overhead: identity stamp
// plus window accounting, no control law.
func BenchmarkQoSServeDisabled(b *testing.B) {
	benchServe(b, Config{}, nil)
}

// BenchmarkQoSServeEnabled is the enabled-but-unthrottled admission
// path: inflight tracking, window accounting, control-law window
// scanning.
func BenchmarkQoSServeEnabled(b *testing.B) {
	benchServe(b, Config{Enabled: true}, nil)
}

// BenchmarkQoSAdmitThrottled is the hot throttle path: the virtual-time
// token bucket charging and sleeping every request, under a permanently
// violated floor (the fake protected tenant always has work in flight),
// so the limited regime never releases. MinRate is set high enough that
// the simulated sleeps stay microseconds and ShedAfter high enough that
// the bench never enters shed mode.
func BenchmarkQoSAdmitThrottled(b *testing.B) {
	benchServe(b, Config{Enabled: true, MinRate: 1e6, ShedAfter: 1 << 30}, func(c *Controller) {
		st := c.byName["t"]
		st.limited = true
		st.creditAt = bucketFull
		st.rate = 1e6
		c.prot = &tenantState{t: Tenant{Name: "p", Priority: 9, BPSFloor: 1}, inflight: 1}
	})
}
