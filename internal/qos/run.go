package qos

import (
	"fmt"

	"bps/internal/core"
	"bps/internal/faults"
	"bps/internal/fsim"
	"bps/internal/ioreq"
	"bps/internal/pfs"
	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/trace"
	"bps/internal/workload"
)

// TenantSpec is one tenant's identity, contract, and workload in a
// multi-tenant run: a SeqRead-style sequential workload owned by the
// tenant, admitted through the controller's middleware.
type TenantSpec struct {
	Tenant

	Processes       int
	BytesPerProcess int64
	RecordSize      int64

	// Write performs writes instead of reads.
	Write bool

	// ComputePerOp inserts think time after each record.
	ComputePerOp sim.Time
}

// RunSpec describes one multi-tenant engine run.
type RunSpec struct {
	// Servers selects the stack: 0 = direct-attached local file system,
	// n ≥ 1 = PVFS-like cluster with n I/O servers.
	Servers int
	Media   testbed.Media

	// Faults, when enabled, degrades the stack with the given plan.
	Faults faults.Config

	// ServerCache overrides each I/O server's page-cache size (see
	// testbed.ClusterSpec.ServerCache): 0 keeps the testbed default,
	// negative disables server caching and readahead — the setting the
	// qos figure uses so tenant interference reaches the devices instead
	// of being absorbed by server readahead.
	ServerCache int64

	// QoS configures the admission controller.
	QoS Config

	// Tenants' workloads all start at time zero and share the stack.
	Tenants []TenantSpec
}

// TenantResult is one tenant's measured outcome.
type TenantResult struct {
	Name    string
	Metrics core.Metrics
	Records []trace.Record
	Errors  int // failed accesses, including sheds
}

// Result is everything measured from one multi-tenant run.
type Result struct {
	// Combined covers every tenant's accesses: B, T, and the four
	// metrics over the global collection, as the paper's multi-
	// application recording prescribes.
	Combined core.Metrics
	Records  []trace.Record
	Errors   int

	Tenants []TenantResult

	// Report is the controller's QoS summary (per-tenant windows,
	// throttle counters, interference scores). Non-nil even with QoS
	// disabled — the windows and scores are pure observations.
	Report *Report
}

// Run executes every tenant's workload concurrently on one I/O system
// built on e, with the QoS controller's admission middleware at the top
// of each tenant's pipeline. The engine must be fresh; Run drives it to
// completion and shuts it down.
//
// On a sharded engine all tenant client processes share one engine
// domain (like the shared client cache), so the controller's state is
// domain-local and the alternation discipline keeps it race-free; the
// I/O servers keep their own domains and still execute concurrently.
func Run(e *sim.Engine, spec RunSpec) (Result, error) {
	if len(spec.Tenants) == 0 {
		return Result{}, fmt.Errorf("qos: no tenants given")
	}
	tenants := make([]Tenant, len(spec.Tenants))
	for i, t := range spec.Tenants {
		if t.Processes < 1 || t.BytesPerProcess <= 0 || t.RecordSize <= 0 {
			return Result{}, fmt.Errorf("qos: tenant %q: processes, bytes and record size must be positive", t.Name)
		}
		tenants[i] = t.Tenant
	}
	ctl, err := NewController(spec.QoS, tenants...)
	if err != nil {
		return Result{}, err
	}

	// All tenant clients and processes live in one domain so the
	// controller's shared state stays domain-local.
	clientDom := 0
	if e.Sharded() {
		clientDom = e.NewDomain("qos-cn")
	}

	var cluster *pfs.Cluster
	var localFS *fsim.FileSystem
	if spec.Servers > 0 {
		cluster, _ = testbed.NewCluster(e, testbed.ClusterSpec{
			Servers:     spec.Servers,
			Media:       spec.Media,
			Clients:     0,
			Faults:      spec.Faults,
			ServerCache: spec.ServerCache,
		})
	} else {
		if e.Sharded() {
			return Result{}, fmt.Errorf("qos: sharded runs need a cluster stack (Servers > 0)")
		}
		dev := faults.WrapDevice(e, testbed.NewDevice(e, spec.Media), spec.Faults, "local."+spec.Media.String())
		localFS = fsim.New(e, dev, fsim.Config{Name: "local"})
	}
	moved := func() int64 {
		if cluster != nil {
			return cluster.Moved()
		}
		return localFS.Moved()
	}

	var pendings []*workload.Pending
	firstPID := int64(0)
	for ti, t := range spec.Tenants {
		env, err := tenantEnv(e, cluster, localFS, clientDom, ti, t, ctl.Middleware(t.Name))
		if err != nil {
			return Result{}, fmt.Errorf("qos: tenant %q: %w", t.Name, err)
		}
		w := workload.SeqRead{
			Label:           t.Name,
			Processes:       t.Processes,
			BytesPerProcess: t.BytesPerProcess,
			RecordSize:      t.RecordSize,
			Write:           t.Write,
			ComputePerOp:    t.ComputePerOp,
			FirstPID:        firstPID,
		}
		firstPID += int64(t.Processes)
		pend, err := w.Start(e, env)
		if err != nil {
			return Result{}, fmt.Errorf("qos: tenant %q: %w", t.Name, err)
		}
		pendings = append(pendings, pend)
	}
	if cluster != nil {
		cluster.FlushCaches()
	}
	if err := e.Run(); err != nil {
		return Result{}, fmt.Errorf("qos: simulation: %w", err)
	}
	e.Shutdown()

	res := Result{Report: ctl.Report()}
	for i, pend := range pendings {
		tr := pend.Result()
		res.Tenants = append(res.Tenants, TenantResult{
			Name:    spec.Tenants[i].Name,
			Metrics: core.Compute(tr.Trace, moved(), tr.ExecTime),
			Records: tr.Trace.Records(),
			Errors:  tr.Errors,
		})
		res.Records = append(res.Records, tr.Trace.Records()...)
		res.Errors += tr.Errors
	}
	res.Combined = core.Compute(trace.FromRecords(res.Records), moved(), e.Now())
	return res, nil
}

// tenantEnv builds tenant ti's private files and clients on the shared
// infrastructure, with the tenant's admission middleware outermost. On
// a sharded engine every client binds to the shared tenant domain dom.
func tenantEnv(e *sim.Engine, cluster *pfs.Cluster, localFS *fsim.FileSystem, dom, ti int, t TenantSpec, mw ioreq.Middleware) (workload.Env, error) {
	if cluster != nil {
		env := &workload.ClusterEnv{Cluster: cluster, Wrap: mw}
		for i := 0; i < t.Processes; i++ {
			f, err := cluster.Create(fmt.Sprintf("%s.file%d", t.Name, i), t.BytesPerProcess, cluster.DefaultLayout())
			if err != nil {
				return nil, err
			}
			env.Files = append(env.Files, f)
			prev := e.SetDomain(dom)
			env.Clients = append(env.Clients, cluster.NewClient(fmt.Sprintf("%s.cn%d", t.Name, i)))
			e.SetDomain(prev)
			env.Domains = append(env.Domains, dom)
		}
		return env, nil
	}
	env := &workload.LocalEnv{FS: localFS, Wrap: mw}
	for i := 0; i < t.Processes; i++ {
		f, err := localFS.Create(fmt.Sprintf("%s.file%d", t.Name, i), t.BytesPerProcess)
		if err != nil {
			return nil, err
		}
		env.Files = append(env.Files, f)
	}
	return env, nil
}
