package qos

import (
	"errors"
	"reflect"
	"testing"

	"bps/internal/ioreq"
	"bps/internal/sim"
	"bps/internal/testbed"
)

// specA is the protected streaming tenant: large sequential records.
func specA(floor float64) TenantSpec {
	return TenantSpec{
		Tenant:          Tenant{Name: "tenantA", Priority: 1, BPSFloor: floor},
		Processes:       2,
		BytesPerProcess: 24 << 20,
		RecordSize:      1 << 20,
	}
}

// specB is the interfering tenant: many small random-ish records that
// seek the same disks A streams from.
func specB() TenantSpec {
	return TenantSpec{
		Tenant:          Tenant{Name: "tenantB", Priority: 0},
		Processes:       4,
		BytesPerProcess: 2 << 20,
		RecordSize:      4 << 10,
	}
}

func runSpecWith(q Config, tenants ...TenantSpec) RunSpec {
	// Server caching off: interference must reach the disks, not be
	// absorbed by server readahead.
	return RunSpec{Servers: 4, Media: testbed.HDD, ServerCache: -1, QoS: q, Tenants: tenants}
}

func mustRun(t *testing.T, seed int64, spec RunSpec) Result {
	t.Helper()
	e := sim.NewEngine(seed)
	res, err := Run(e, spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// wallRate is a tenant's delivered blocks per second of execution time —
// the control law's own variable.
func wallRate(r TenantResult) float64 {
	if r.Metrics.ExecTime <= 0 {
		return 0
	}
	return float64(r.Metrics.Blocks) / r.Metrics.ExecTime.Seconds()
}

// TestInterferenceAndThrottle is the acceptance pin of the control
// loop: tenant B degrades tenant A's BPS by at least 20%, and enabling
// the throttle with A's floor restores A to within 10% of its solo
// baseline.
func TestInterferenceAndThrottle(t *testing.T) {
	const seed = 42

	solo := mustRun(t, seed, runSpecWith(Config{}, specA(0)))
	soloBPS := solo.Tenants[0].Metrics.BPS()
	if soloBPS <= 0 {
		t.Fatalf("solo BPS = %v, want > 0", soloBPS)
	}

	both := mustRun(t, seed, runSpecWith(Config{}, specA(0), specB()))
	bothBPS := both.Tenants[0].Metrics.BPS()
	if bothBPS >= 0.8*soloBPS {
		t.Fatalf("tenant B degrades A's BPS only %.4g -> %.4g (want >= 20%% degradation)", soloBPS, bothBPS)
	}

	floor := 0.9 * wallRate(solo.Tenants[0])
	throttled := mustRun(t, seed, runSpecWith(Config{Enabled: true}, specA(floor), specB()))
	thrBPS := throttled.Tenants[0].Metrics.BPS()
	if thrBPS < 0.9*soloBPS {
		t.Fatalf("throttled A BPS %.4g not within 10%% of solo %.4g", thrBPS, soloBPS)
	}
	rep := throttled.Report
	if rep.Activations == 0 {
		t.Fatalf("throttle never activated")
	}
	var b *TenantReport
	for i := range rep.Tenants {
		if rep.Tenants[i].Name == "tenantB" {
			b = &rep.Tenants[i]
		}
	}
	if b == nil {
		t.Fatalf("report missing tenantB")
	}
	if b.Delayed == 0 && b.Shed == 0 {
		t.Fatalf("tenant B neither delayed nor shed: %+v", b)
	}
	t.Logf("solo BPS %.4g, degraded %.4g (%.0f%%), throttled %.4g (%.0f%% of solo); activations %d, B delayed %d shed %d",
		soloBPS, bothBPS, 100*bothBPS/soloBPS, thrBPS, 100*thrBPS/soloBPS, rep.Activations, b.Delayed, b.Shed)
}

// TestShardedWorkerInvariance pins the sharded-engine contract for
// multi-tenant runs: results are bit-identical for every worker count.
// All tenant procs share one domain, so the controller's state is
// domain-local and the conservative-window schedule cannot perturb it.
func TestShardedWorkerInvariance(t *testing.T) {
	run := func(workers int) Result {
		e := sim.NewEngine(42)
		e.EnableSharding(workers)
		res, err := Run(e, runSpecWith(Config{Enabled: true}, specA(5e4), specB()))
		if err != nil {
			t.Fatalf("sharded Run (w=%d): %v", workers, err)
		}
		return res
	}
	w1 := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(w1, got) {
			t.Fatalf("sharded results differ between 1 and %d workers", w)
		}
	}
}

// TestDeterminism pins the determinism contract: identical seeds give
// DeepEqual results, including the full QoS report.
func TestDeterminism(t *testing.T) {
	q := Config{Enabled: true}
	a, b := specA(1e6), specB()
	r1 := mustRun(t, 7, runSpecWith(q, a, b))
	r2 := mustRun(t, 7, runSpecWith(q, a, b))
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results")
	}
	r3 := mustRun(t, 8, runSpecWith(q, a, b))
	if reflect.DeepEqual(r1.Combined, r3.Combined) {
		t.Fatalf("different seeds gave identical combined metrics (suspicious)")
	}
}

// TestDisabledQoSIsTimingNeutral pins that the admission layer without
// an active control loop never touches the simulated timeline: a run
// with QoS enabled but no protected floor is record-identical to a run
// with QoS disabled.
func TestDisabledQoSIsTimingNeutral(t *testing.T) {
	a, b := specA(0), specB()
	off := mustRun(t, 42, runSpecWith(Config{}, a, b))
	on := mustRun(t, 42, runSpecWith(Config{Enabled: true}, a, b))
	if !reflect.DeepEqual(off.Records, on.Records) {
		t.Fatalf("enabled-but-floorless QoS changed the timeline")
	}
	if !reflect.DeepEqual(off.Combined, on.Combined) {
		t.Fatalf("enabled-but-floorless QoS changed the combined metrics")
	}
}

// TestShedMode pins graceful degradation: with an unreachable floor and
// an aggressive shed threshold, B's requests are eventually rejected
// with ErrShed, surfacing as failed accesses that still count in B's
// block total.
func TestShedMode(t *testing.T) {
	q := Config{Enabled: true, ShedAfter: 2}
	res := mustRun(t, 42, runSpecWith(q, specA(1e12), specB()))
	var b TenantResult
	for _, tr := range res.Tenants {
		if tr.Name == "tenantB" {
			b = tr
		}
	}
	if b.Errors == 0 {
		t.Fatalf("unreachable floor never shed tenant B requests")
	}
	var brep TenantReport
	for _, tr := range res.Report.Tenants {
		if tr.Name == "tenantB" {
			brep = tr
		}
	}
	if brep.Shed != int64(b.Errors) {
		t.Fatalf("shed count %d != tenant errors %d", brep.Shed, b.Errors)
	}
	if b.Metrics.Blocks == 0 {
		t.Fatalf("shed accesses must still count in B")
	}
}

// TestShedErrorIdentity pins the sentinel: the middleware's rejection
// wraps ErrShed.
func TestShedErrorIdentity(t *testing.T) {
	c, err := NewController(Config{Enabled: true}, Tenant{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	st := c.byName["x"]
	st.shedding = true
	c.prot = &tenantState{t: Tenant{Name: "p", Priority: 9, BPSFloor: 1}}
	e := sim.NewEngine(1)
	var got error
	layer := c.Middleware("x")(nopLayer{})
	e.Spawn("p", func(p *sim.Proc) {
		got = layer.Serve(p, newReq(p, 4096))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got, ErrShed) {
		t.Fatalf("shed error = %v, want ErrShed", got)
	}
}

// TestInterferenceScores pins the LASSi-style risk direction: the
// small-request tenant occupies more than its metric share, the
// streaming tenant less.
func TestInterferenceScores(t *testing.T) {
	res := mustRun(t, 42, runSpecWith(Config{}, specA(0), specB()))
	var a, b TenantReport
	for _, tr := range res.Report.Tenants {
		switch tr.Name {
		case "tenantA":
			a = tr
		case "tenantB":
			b = tr
		}
	}
	if b.Score.Risk <= a.Score.Risk {
		t.Fatalf("interferer risk %.3f should exceed streamer risk %.3f", b.Score.Risk, a.Score.Risk)
	}
	if b.Score.Risk <= 1 {
		t.Fatalf("interferer risk %.3f should exceed 1 (occupancy share > metric share)", b.Score.Risk)
	}
}

// TestControllerValidation covers constructor errors.
func TestControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}, Tenant{Name: ""}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := NewController(Config{}, Tenant{Name: "a"}, Tenant{Name: "a"}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
}

// TestRunValidation covers RunSpec errors.
func TestRunValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := Run(e, RunSpec{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	e = sim.NewEngine(1)
	if _, err := Run(e, RunSpec{Tenants: []TenantSpec{{Tenant: Tenant{Name: "a"}}}}); err == nil {
		t.Fatal("zero-size workload accepted")
	}
}

// TestTokenBucketDelays pins the virtual-time bucket arithmetic: at
// rate r with burst b, admitting 2b blocks from a cold start sleeps
// b/r seconds.
func TestTokenBucketDelays(t *testing.T) {
	c, err := NewController(Config{Enabled: true, MinRate: 1, BurstBlocks: 64}, Tenant{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	st := c.byName["x"]
	st.limited = true
	st.creditAt = bucketFull // fresh limit = full burst
	st.rate = 1024           // blocks/s
	e := sim.NewEngine(1)
	var elapsed sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		t0 := p.Now()
		c.admit(st, p, 128) // 64 burst + 64 over = 62.5 ms at 1024 blk/s
		elapsed = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(float64(64) / 1024 * float64(sim.Second))
	if diff := elapsed - want; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("bucket delay %v, want ~%v", elapsed, want)
	}
	if st.delayed != 1 {
		t.Fatalf("delayed counter %d, want 1", st.delayed)
	}
}

// nopLayer completes requests instantly.
type nopLayer struct{}

func (nopLayer) Serve(*sim.Proc, *ioreq.Request) error { return nil }

// newReq builds a minimal request of the given size.
func newReq(p *sim.Proc, size int64) *ioreq.Request {
	return ioreq.New(p, ioreq.OpRead, 0, size, "f")
}
