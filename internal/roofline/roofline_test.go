package roofline

import (
	"math"
	"testing"

	"bps/internal/device"
	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/trace"
)

// TestLocalMediaRoofs: the local models must reproduce the device
// defaults exactly — if a device default moves, the roofline must move
// with it, and this test pins the coupling.
func TestLocalMediaRoofs(t *testing.T) {
	ssd := Local(testbed.SSD)
	cfg := device.DefaultSSD()
	wantRate := float64(cfg.Channels) * cfg.ChannelRate
	if ssd.DeviceBytesPerSec != wantRate {
		t.Fatalf("SSD rate = %v, want %v", ssd.DeviceBytesPerSec, wantRate)
	}
	if ssd.DevicePerOp != cfg.CommandOverhead+cfg.ReadLatency {
		t.Fatalf("SSD per-op = %v, want %v", ssd.DevicePerOp, cfg.CommandOverhead+cfg.ReadLatency)
	}
	if got := ssd.BandwidthCeiling(); got != wantRate {
		t.Fatalf("local SSD bw ceiling = %v, want device rate %v", got, wantRate)
	}

	hdd := Local(testbed.HDD)
	hcfg := device.DefaultHDD()
	if hdd.DeviceBytesPerSec != hcfg.OuterRate {
		t.Fatalf("HDD rate = %v, want %v", hdd.DeviceBytesPerSec, hcfg.OuterRate)
	}
	if hdd.DevicePerOp != hcfg.CommandOverhead+hcfg.SettleTime {
		t.Fatalf("HDD per-op = %v, want %v", hdd.DevicePerOp, hcfg.CommandOverhead+hcfg.SettleTime)
	}
}

// TestClusterBandwidthCeiling: with one client the client NIC binds;
// with many clients and servers the backplane binds.
func TestClusterBandwidthCeiling(t *testing.T) {
	one := FromCluster(testbed.ClusterSpec{Servers: 4, Media: testbed.SSD, Clients: 1})
	if got := one.BandwidthCeiling(); got != 125e6 {
		t.Fatalf("1-client ceiling = %v, want client NIC 125e6", got)
	}
	many := FromCluster(testbed.ClusterSpec{Servers: 8, Media: testbed.SSD, Clients: 8})
	if got := many.BandwidthCeiling(); got != testbed.BackplaneRate {
		t.Fatalf("8×8 ceiling = %v, want backplane %v", got, testbed.BackplaneRate)
	}
	// Few servers on HDD: the devices themselves bind.
	disks := FromCluster(testbed.ClusterSpec{Servers: 2, Media: testbed.HDD, Clients: 8})
	want := 2 * device.DefaultHDD().OuterRate
	if got := disks.BandwidthCeiling(); got != want {
		t.Fatalf("2-HDD ceiling = %v, want device aggregate %v", got, want)
	}
}

// TestCeilingRegimes: small records must be op-bound, large records
// bandwidth-bound, and the crossover must be monotone in record size.
func TestCeilingRegimes(t *testing.T) {
	m := FromCluster(testbed.ClusterSpec{Servers: 4, Media: testbed.SSD, Clients: 1})
	bwRoof := m.BandwidthCeiling() / trace.BlockSize

	small := m.CeilingBPS(4<<10, 1, 0)
	if small >= bwRoof {
		t.Fatalf("4KB ceiling %v not op-bound (bw roof %v)", small, bwRoof)
	}
	// Hand-computed: 8 blocks per 4KB record / 180µs per op.
	wantSmall := 8.0 / m.PerOp(0).Seconds()
	if math.Abs(small-wantSmall) > 1e-6*wantSmall {
		t.Fatalf("4KB ceiling = %v, want %v", small, wantSmall)
	}

	large := m.CeilingBPS(4<<20, 1, 0)
	if large != bwRoof {
		t.Fatalf("4MB ceiling = %v, want bw roof %v", large, bwRoof)
	}

	prev := 0.0
	for size := int64(512); size <= 8<<20; size *= 2 {
		c := m.CeilingBPS(size, 1, 0)
		if c < prev {
			t.Fatalf("ceiling not monotone in record size: %d bytes → %v after %v", size, c, prev)
		}
		prev = c
	}
}

// TestCeilingExtraPerOp: extra fixed cost can only lower the ceiling.
func TestCeilingExtraPerOp(t *testing.T) {
	m := FromCluster(testbed.ClusterSpec{Servers: 4, Media: testbed.SSD, Clients: 4})
	base := m.CeilingBPS(16<<10, 4, 0)
	taxed := m.CeilingBPS(16<<10, 4, 200*sim.Microsecond)
	if taxed >= base {
		t.Fatalf("extra per-op cost raised the ceiling: %v → %v", base, taxed)
	}
}

// TestHeadroomEdgeCases: degenerate ceilings give 0, never Inf/NaN.
func TestHeadroomEdgeCases(t *testing.T) {
	if h := Headroom(100, 0); h != 0 {
		t.Fatalf("zero ceiling headroom = %v, want 0", h)
	}
	if h := Headroom(100, math.NaN()); h != 0 {
		t.Fatalf("NaN ceiling headroom = %v, want 0", h)
	}
	if h := Headroom(math.NaN(), 100); h != 0 {
		t.Fatalf("NaN measurement headroom = %v, want 0", h)
	}
	if h := Headroom(50, 100); h != 0.5 {
		t.Fatalf("headroom = %v, want 0.5", h)
	}
	if c := Local(testbed.SSD).CeilingBPS(0, 1, 0); !math.IsNaN(c) {
		t.Fatalf("zero-record ceiling = %v, want NaN", c)
	}
}

// TestFit: fits preserve order and classify the binding roof.
func TestFit(t *testing.T) {
	m := FromCluster(testbed.ClusterSpec{Servers: 4, Media: testbed.SSD, Clients: 1})
	fits := m.Fit([]Sample{
		{Label: "small", RecordBytes: 4 << 10, Concurrency: 1, BPS: 10000},
		{Label: "large", RecordBytes: 4 << 20, Concurrency: 1, BPS: 200000},
	})
	if len(fits) != 2 || fits[0].Label != "small" || fits[1].Label != "large" {
		t.Fatalf("fit order broken: %+v", fits)
	}
	if !fits[0].OpBound {
		t.Fatalf("small record not op-bound: %+v", fits[0])
	}
	if fits[1].OpBound {
		t.Fatalf("large record op-bound: %+v", fits[1])
	}
	for _, f := range fits {
		want := Headroom(f.MeasuredBPS, f.CeilingBPS)
		if f.Headroom != want {
			t.Fatalf("%s headroom = %v, want %v", f.Label, f.Headroom, want)
		}
		if f.Headroom <= 0 || f.Headroom > 1.5 {
			t.Fatalf("%s headroom %v outside sane range", f.Label, f.Headroom)
		}
	}
}

// BenchmarkRooflineCeiling is benchguard-tracked: the ceiling sits on
// live serving paths (every publisher snapshot), so it must stay cheap.
func BenchmarkRooflineCeiling(b *testing.B) {
	m := FromCluster(testbed.ClusterSpec{Servers: 4, Media: testbed.SSD, Clients: 4})
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.CeilingBPS(64<<10, 4, 0)
	}
	_ = sink
}
