// Package roofline computes the analytic BPS ceiling of a simulated
// I/O configuration — the BOPS-style roof a measured run can be held
// against. The model has two roofs, mirroring the classic roofline's
// bandwidth and compute ceilings:
//
//   - a bandwidth roof: the tightest aggregate byte rate on the data
//     path (devices, client NICs, server NICs, switch backplane),
//     divided into 512-byte blocks;
//   - an operation roof: with per-request fixed costs (device command
//     overhead, media latency, link round trips), at most
//     concurrency/perOp requests complete per second, each delivering
//     one record's worth of blocks.
//
// The achievable BPS is the lower of the two. Small records are
// op-bound, large records bandwidth-bound — exactly the regimes the
// record-size sweeps walk. Headroom = measured BPS / ceiling says how
// far from the roof a run sits; the attribution profiler says which
// layer keeps it there.
//
// The parameters come from the same knobs internal/testbed holds, so
// the model and the simulation can never drift apart silently: both
// read device.DefaultHDD/DefaultSSD and the testbed fabric constants.
package roofline

import (
	"fmt"
	"math"

	"bps/internal/device"
	"bps/internal/sim"
	"bps/internal/testbed"
	"bps/internal/trace"
)

// Model holds the roofline parameters of one I/O configuration.
type Model struct {
	// DeviceBytesPerSec is one server device's peak sequential rate.
	DeviceBytesPerSec float64

	// DevicePerOp is the fixed per-request device cost (command
	// overhead plus media latency) that bounds small-request rates.
	DevicePerOp sim.Time

	// Servers and Clients count the I/O servers and client nodes; a
	// local (direct-attached) model has Servers == 1, Clients == 1 and
	// no link.
	Servers int
	Clients int

	// LinkBytesPerSec is the per-NIC line rate; 0 means no network on
	// the path (local stacks).
	LinkBytesPerSec float64

	// LinkRTT is the request/response propagation round trip each
	// remote operation pays; 0 for local stacks.
	LinkRTT sim.Time

	// BackplaneBytesPerSec caps the aggregate fabric rate; 0 means
	// unbounded.
	BackplaneBytesPerSec float64
}

// FromMedia returns the per-device roof parameters of a testbed medium.
func FromMedia(m testbed.Media) (bytesPerSec float64, perOp sim.Time) {
	if m == testbed.SSD {
		cfg := device.DefaultSSD()
		return float64(cfg.Channels) * cfg.ChannelRate, cfg.CommandOverhead + cfg.ReadLatency
	}
	cfg := device.DefaultHDD()
	return cfg.OuterRate, cfg.CommandOverhead + cfg.SettleTime
}

// Local returns the model of a direct-attached stack on one device.
func Local(m testbed.Media) Model {
	rate, perOp := FromMedia(m)
	return Model{DeviceBytesPerSec: rate, DevicePerOp: perOp, Servers: 1, Clients: 1}
}

// FromCluster returns the model of a PVFS-like testbed cluster: the
// spec's server/client counts and media over the testbed's Gigabit
// fabric with its shared backplane.
func FromCluster(spec testbed.ClusterSpec) Model {
	rate, perOp := FromMedia(spec.Media)
	return Model{
		DeviceBytesPerSec:    rate,
		DevicePerOp:          perOp,
		Servers:              spec.Servers,
		Clients:              spec.Clients,
		LinkBytesPerSec:      125e6, // the testbed's Gigabit NICs
		LinkRTT:              2 * 50 * sim.Microsecond,
		BackplaneBytesPerSec: testbed.BackplaneRate,
	}
}

// BandwidthCeiling returns the tightest aggregate byte rate on the
// data path (bytes/second): device aggregate, client NIC aggregate,
// server NIC aggregate, and backplane, whichever binds first.
func (m Model) BandwidthCeiling() float64 {
	servers, clients := m.Servers, m.Clients
	if servers < 1 {
		servers = 1
	}
	if clients < 1 {
		clients = 1
	}
	roof := float64(servers) * m.DeviceBytesPerSec
	if m.LinkBytesPerSec > 0 {
		if r := float64(clients) * m.LinkBytesPerSec; r < roof {
			roof = r
		}
		if r := float64(servers) * m.LinkBytesPerSec; r < roof {
			roof = r
		}
	}
	if m.BackplaneBytesPerSec > 0 && m.BackplaneBytesPerSec < roof {
		roof = m.BackplaneBytesPerSec
	}
	return roof
}

// PerOp returns the fixed cost of one remote record request under this
// model: device per-request cost plus the link round trip plus any
// workload-specific extra (a metadata RPC, a think time).
func (m Model) PerOp(extra sim.Time) sim.Time {
	return m.DevicePerOp + m.LinkRTT + extra
}

// CeilingBPS returns the achievable BPS roof (512-byte blocks per
// second of busy time) for concurrency requesters issuing recordBytes
// records, each paying extraPerOp of fixed non-device cost on top of
// the model's per-request costs. NaN when the record size is not
// positive.
func (m Model) CeilingBPS(recordBytes int64, concurrency int, extraPerOp sim.Time) float64 {
	if recordBytes <= 0 {
		return math.NaN()
	}
	if concurrency < 1 {
		concurrency = 1
	}
	bwRoof := m.BandwidthCeiling() / trace.BlockSize
	perOp := m.PerOp(extraPerOp)
	if perOp <= 0 {
		return bwRoof
	}
	opsPerSec := float64(concurrency) / perOp.Seconds()
	opRoof := opsPerSec * float64(trace.BlocksOf(recordBytes))
	if opRoof < bwRoof {
		return opRoof
	}
	return bwRoof
}

// Headroom returns measured/ceiling — the fraction of the analytic
// roof a run achieved. 0 when the ceiling is degenerate (zero or NaN),
// so absent models render as "no headroom data", never as Inf.
func Headroom(measuredBPS, ceilingBPS float64) float64 {
	if ceilingBPS <= 0 || math.IsNaN(ceilingBPS) || math.IsNaN(measuredBPS) {
		return 0
	}
	return measuredBPS / ceilingBPS
}

// Sample is one measured sweep point awaiting a roofline fit.
type Sample struct {
	Label       string
	RecordBytes int64
	Concurrency int
	ExtraPerOp  sim.Time
	BPS         float64
}

// PointFit is one sample held against the model.
type PointFit struct {
	Label       string  `json:"label"`
	MeasuredBPS float64 `json:"measured_bps"`
	CeilingBPS  float64 `json:"ceiling_bps"`
	Headroom    float64 `json:"headroom"`

	// OpBound reports which roof binds at this sample's record size
	// and concurrency: true when the operation roof is below the
	// bandwidth roof.
	OpBound bool `json:"op_bound"`
}

// Fit holds every sample against the model, in input order.
func (m Model) Fit(samples []Sample) []PointFit {
	fits := make([]PointFit, len(samples))
	for i, s := range samples {
		ceiling := m.CeilingBPS(s.RecordBytes, s.Concurrency, s.ExtraPerOp)
		fits[i] = PointFit{
			Label:       s.Label,
			MeasuredBPS: s.BPS,
			CeilingBPS:  ceiling,
			Headroom:    Headroom(s.BPS, ceiling),
			OpBound:     ceiling < m.BandwidthCeiling()/trace.BlockSize,
		}
	}
	return fits
}

// String renders the model's roofs on one line.
func (m Model) String() string {
	return fmt.Sprintf("roofline: bw roof %.1f MB/s (%.0f blk/s), per-op %v, %d servers × %d clients",
		m.BandwidthCeiling()/1e6, m.BandwidthCeiling()/trace.BlockSize, m.PerOp(0), m.Servers, m.Clients)
}
