package backend

import (
	"fmt"
	"io"

	"bps/internal/ioreq"
	"bps/internal/sim"
)

// FileLayer adapts an open backend File to an ioreq.Layer: the terminal
// layer of a live measurement stack, standing where fsim/device layers
// stand in a simulated one. Reads and writes are served with
// pread/pwrite in chunkSize pieces through pooled aligned buffers, so a
// block-size sweep's hot path stays allocation-free and O_DIRECT-safe.
//
// A short read (the request range extends past EOF) is an error — the
// workload generator is expected to have laid out files covering every
// access (see iogen -layout), and silently under-moving bytes would
// corrupt the BW numerator.
func FileLayer(f File) ioreq.Layer {
	return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
		buf := getBuf()
		defer putBuf(buf)
		b := *buf
		off, left := req.Off, req.Size
		for left > 0 {
			n := int64(len(b))
			if left < n {
				n = left
			}
			chunk := b[:n]
			switch req.Op {
			case ioreq.OpWrite:
				fill(chunk, byte(req.ID))
				if _, err := f.WriteAt(chunk, off); err != nil {
					return fmt.Errorf("backend write at %d: %w", off, err)
				}
			default:
				got, err := f.ReadAt(chunk, off)
				if err == io.EOF && int64(got) < n {
					return fmt.Errorf("backend short read at %d: got %d of %d bytes: %w",
						off, got, n, io.ErrUnexpectedEOF)
				}
				if err != nil && err != io.EOF {
					return fmt.Errorf("backend read at %d: %w", off, err)
				}
			}
			off += n
			left -= n
		}
		return nil
	})
}

// fill writes a deterministic byte pattern so written file contents are
// a pure function of the request, not of stale pool memory.
func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
