// Package backend serves ioreq.Requests from real storage: a directory
// tree on the host filesystem (osfs) or an inode-table in-memory
// filesystem (memfs). Both implement the same FS interface and return
// os-identical *fs.PathError values, so the property-based cross-check
// suite can drive random operation sequences through both and assert
// byte-for-byte agreement on contents, sizes, offsets, and error kinds.
// A backend plugs into the measurement stack through FileLayer, which
// adapts an open File to an ioreq.Layer — the live driver then wraps it
// with the exact middleware chain (trace, stats, retry, cache) a
// simulated device stack uses.
package backend

import (
	"io"
	"io/fs"
	"sync"
	"unsafe"
)

// File is an open backend file. It mirrors the subset of *os.File the
// measurement path needs; memfs files implement it in memory with
// identical semantics.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Truncate changes the file's size; extension zero-fills.
	Truncate(size int64) error
	// Stat reports the file's current metadata.
	Stat() (fs.FileInfo, error)
	// Sync flushes buffered state to the backing store (no-op on memfs).
	Sync() error
}

// FS is a mutable filesystem a live run measures against. Paths are
// slash-separated and interpreted relative to the filesystem root;
// leading slashes and dot segments are cleaned lexically, and a path
// can never escape the root ("../x" resolves to "/x"). Errors are
// *fs.PathError values with the same Op, caller-given Path, and Err
// kind the os package would return.
//
// Implementations are safe for concurrent use: namespace operations are
// serialized per FS, data operations per file.
type FS interface {
	// Name identifies the backend ("mem", "os") for reports.
	Name() string
	// OpenFile opens name with os.O_* flags, creating with perm.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Mkdir creates a single directory.
	Mkdir(name string, perm fs.FileMode) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string, perm fs.FileMode) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// Stat reports metadata for the named file.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// Moved returns the cumulative bytes actually transferred through
	// the backend (reads + writes), the movedBytes input to BW.
	Moved() int64
}

// chunkSize bounds the buffer a single pread/pwrite uses; larger
// requests are served in chunkSize pieces so a block-size sweep cannot
// allocate per-request buffers proportional to the largest record.
const chunkSize = 1 << 20

// chunkAlign is the alignment of pooled buffers. O_DIRECT on Linux
// requires the user buffer to be logical-block-size aligned; 4096
// covers every common device.
const chunkAlign = 4096

// bufPool recycles aligned chunkSize transfer buffers across requests
// and workers, keeping the per-op hot path allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := alignedBuf(chunkSize, chunkAlign)
		return &b
	},
}

// alignedBuf returns a size-byte slice whose base address is aligned to
// align, carved out of a slightly larger allocation.
func alignedBuf(size, align int) []byte {
	raw := make([]byte, size+align)
	off := 0
	if a := addrOf(raw) % uintptr(align); a != 0 {
		off = align - int(a)
	}
	return raw[off : off+size : off+size]
}

// addrOf returns the base address of b's backing array.
func addrOf(b []byte) uintptr { return uintptr(unsafe.Pointer(unsafe.SliceData(b))) }

// getBuf leases a pooled aligned buffer of at most chunkSize bytes.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a leased buffer to the pool.
func putBuf(b *[]byte) { bufPool.Put(b) }
