package backend

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"testing"
)

// TestCrossCheckRandomOps drives identical pseudo-random operation
// sequences through memfs and osfs and requires them to agree at every
// step: same success/failure, same error kind and string, same byte
// counts, and — at the end — identical directory trees, file sizes, and
// file contents. This is the property that makes the in-memory backend
// a faithful stand-in for a real directory in live runs.
func TestCrossCheckRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			crossCheck(t, seed, 400)
		})
	}
}

// pairFile is a handle open on both backends at once.
type pairFile struct {
	name     string
	mem, osf File
}

func crossCheck(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mem := NewMemFS()
	osb := NewOSFS(t.TempDir(), false)

	// The namespace the sequence draws from: a small closed set of
	// names, so collisions (EEXIST, ENOTDIR, ...) actually happen.
	names := []string{
		"a.dat", "b.dat", "d1", "d1/c.dat", "d1/d2", "d1/d2/e.dat",
		"d1/../a.dat", "./b.dat", "d1//c.dat",
	}
	pick := func() string { return names[rng.Intn(len(names))] }
	var open []*pairFile

	same := func(step int, op string, memErr, osErr error) bool {
		t.Helper()
		if (memErr == nil) != (osErr == nil) {
			t.Fatalf("step %d %s: memfs err %v, osfs err %v", step, op, memErr, osErr)
		}
		if memErr == nil {
			return true
		}
		// io.EOF is returned bare by both; everything else must be a
		// PathError with identical rendering.
		if errors.Is(memErr, io.EOF) || errors.Is(osErr, io.EOF) {
			if memErr != osErr {
				t.Fatalf("step %d %s: EOF divergence: memfs %v, osfs %v", step, op, memErr, osErr)
			}
			return false
		}
		if memErr.Error() != osErr.Error() {
			t.Fatalf("step %d %s: error divergence:\n  memfs: %v\n  osfs:  %v", step, op, memErr, osErr)
		}
		return false
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0: // open
			name := pick()
			flag := []int{
				os.O_RDONLY,
				os.O_RDWR,
				os.O_RDWR | os.O_CREATE,
				os.O_WRONLY | os.O_CREATE,
				os.O_RDWR | os.O_CREATE | os.O_EXCL,
				os.O_RDWR | os.O_CREATE | os.O_TRUNC,
			}[rng.Intn(6)]
			mf, memErr := mem.OpenFile(name, flag, 0o644)
			of, osErr := osb.OpenFile(name, flag, 0o644)
			if same(step, "open "+name, memErr, osErr) {
				open = append(open, &pairFile{name: name, mem: mf, osf: of})
			}
		case 1: // mkdir
			name := pick()
			same(step, "mkdir "+name, mem.Mkdir(name, 0o755), osb.Mkdir(name, 0o755))
		case 2: // mkdirall
			name := pick()
			same(step, "mkdirall "+name, mem.MkdirAll(name, 0o755), osb.MkdirAll(name, 0o755))
		case 3: // remove
			name := pick()
			same(step, "remove "+name, mem.Remove(name), osb.Remove(name))
		case 4: // stat
			name := pick()
			mfi, memErr := mem.Stat(name)
			ofi, osErr := osb.Stat(name)
			if same(step, "stat "+name, memErr, osErr) {
				if mfi.IsDir() != ofi.IsDir() || (!mfi.IsDir() && mfi.Size() != ofi.Size()) {
					t.Fatalf("step %d stat %s: memfs (dir=%v size=%d) vs osfs (dir=%v size=%d)",
						step, name, mfi.IsDir(), mfi.Size(), ofi.IsDir(), ofi.Size())
				}
			}
		case 5: // readdir
			name := pick()
			ments, memErr := mem.ReadDir(name)
			oents, osErr := osb.ReadDir(name)
			if same(step, "readdir "+name, memErr, osErr) {
				if len(ments) != len(oents) {
					t.Fatalf("step %d readdir %s: %d vs %d entries", step, name, len(ments), len(oents))
				}
				for i := range ments {
					if ments[i].Name() != oents[i].Name() || ments[i].IsDir() != oents[i].IsDir() {
						t.Fatalf("step %d readdir %s: entry %d: %v vs %v", step, name, i, ments[i], oents[i])
					}
				}
			}
		case 6: // truncate by name
			name := pick()
			size := rng.Int63n(4096)
			same(step, "truncate "+name, mem.Truncate(name, size), osb.Truncate(name, size))
		case 7: // write through an open pair
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			data := make([]byte, 1+rng.Intn(2048))
			rng.Read(data)
			off := rng.Int63n(8192)
			mn, memErr := p.mem.WriteAt(data, off)
			on, osErr := p.osf.WriteAt(data, off)
			same(step, "write "+p.name, memErr, osErr)
			if mn != on {
				t.Fatalf("step %d write %s: wrote %d vs %d bytes", step, p.name, mn, on)
			}
		case 8: // read through an open pair
			if len(open) == 0 {
				continue
			}
			p := open[rng.Intn(len(open))]
			mbuf := make([]byte, 1+rng.Intn(2048))
			obuf := make([]byte, len(mbuf))
			off := rng.Int63n(8192)
			mn, memErr := p.mem.ReadAt(mbuf, off)
			on, osErr := p.osf.ReadAt(obuf, off)
			same(step, "read "+p.name, memErr, osErr)
			if mn != on {
				t.Fatalf("step %d read %s at %d: read %d vs %d bytes", step, p.name, off, mn, on)
			}
			if !bytes.Equal(mbuf[:mn], obuf[:on]) {
				t.Fatalf("step %d read %s at %d: contents diverge", step, p.name, off)
			}
		case 9: // close (sometimes double-close)
			if len(open) == 0 || rng.Intn(2) == 0 {
				continue
			}
			i := rng.Intn(len(open))
			p := open[i]
			same(step, "close "+p.name, p.mem.Close(), p.osf.Close())
			open = append(open[:i], open[i+1:]...)
		}
	}
	for _, p := range open {
		p.mem.Close()
		p.osf.Close()
	}
	compareTrees(t, mem, osb, ".")
	if mem.Moved() != osb.Moved() {
		t.Fatalf("moved bytes diverge: memfs %d, osfs %d", mem.Moved(), osb.Moved())
	}
}

// compareTrees walks both backends in lockstep asserting identical
// structure, sizes, and contents.
func compareTrees(t *testing.T, mem, osb FS, dir string) {
	t.Helper()
	ments, memErr := mem.ReadDir(dir)
	oents, osErr := osb.ReadDir(dir)
	if memErr != nil || osErr != nil {
		t.Fatalf("readdir %s: memfs %v, osfs %v", dir, memErr, osErr)
	}
	if len(ments) != len(oents) {
		t.Fatalf("tree %s: %d vs %d entries", dir, len(ments), len(oents))
	}
	for i := range ments {
		if ments[i].Name() != oents[i].Name() || ments[i].IsDir() != oents[i].IsDir() {
			t.Fatalf("tree %s: entry %d: %s(dir=%v) vs %s(dir=%v)", dir, i,
				ments[i].Name(), ments[i].IsDir(), oents[i].Name(), oents[i].IsDir())
		}
		name := dir + "/" + ments[i].Name()
		if ments[i].IsDir() {
			compareTrees(t, mem, osb, name)
			continue
		}
		mfi, _ := mem.Stat(name)
		ofi, _ := osb.Stat(name)
		if mfi.Size() != ofi.Size() {
			t.Fatalf("tree %s: size %d vs %d", name, mfi.Size(), ofi.Size())
		}
		mf, err := mem.OpenFile(name, os.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		of, err := osb.OpenFile(name, os.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		mdata := readAll(t, mf, mfi.Size())
		odata := readAll(t, of, ofi.Size())
		mf.Close()
		of.Close()
		if !bytes.Equal(mdata, odata) {
			t.Fatalf("tree %s: contents diverge (%d bytes)", name, len(mdata))
		}
	}
}

func readAll(t *testing.T, f File, size int64) []byte {
	t.Helper()
	buf := make([]byte, size)
	if size == 0 {
		return buf
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf[:n]
}

// TestCrossCheckConcurrent runs one writer goroutine per file on both
// backends — the live driver's sharing shape (distinct open files,
// shared FS) — then requires identical contents. Run with -race this
// also proves the memfs locking discipline.
func TestCrossCheckConcurrent(t *testing.T) {
	const workers = 8
	const writes = 64
	mem := NewMemFS()
	osb := NewOSFS(t.TempDir(), false)
	for _, fsys := range []FS{mem, osb} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("slot%04d.dat", w)
				f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					t.Error(err)
					return
				}
				defer f.Close()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < writes; i++ {
					data := make([]byte, 512+rng.Intn(4096))
					rng.Read(data)
					if _, err := f.WriteAt(data, rng.Int63n(1<<16)); err != nil {
						t.Error(err)
						return
					}
					if _, err := f.ReadAt(make([]byte, 256), rng.Int63n(1<<15)); err != nil && err != io.EOF {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	if t.Failed() {
		return
	}
	compareTrees(t, mem, osb, ".")
}

// TestOSFSRootEscape pins the containment property: a path stuffed with
// ".." still resolves inside the root on both backends.
func TestOSFSRootEscape(t *testing.T) {
	dir := t.TempDir()
	osb := NewOSFS(dir, false)
	f, err := osb.OpenFile("../../../../escape.dat", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := os.Stat(dir + "/escape.dat"); err != nil {
		t.Fatalf("cleaned path not under root: %v", err)
	}
	var perr *fs.PathError
	if _, err := osb.Stat("../../nope"); err == nil || !errors.As(err, &perr) || perr.Path != "../../nope" {
		t.Fatalf("error path not rewritten to caller name: %v", err)
	}
}
