package backend

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
	"testing"
)

// FuzzMemfsPath feeds arbitrary path strings through the memfs
// namespace operations and checks the structural invariants: no panic,
// every failure is a *fs.PathError carrying the caller-given name
// verbatim, and a successfully created file is immediately visible to
// Stat under the same (uncleaned) name with working round-trip I/O.
func FuzzMemfsPath(f *testing.F) {
	for _, seed := range []string{
		"", ".", "..", "/", "//", "a", "/a", "a/b", "a//b", "a/./b",
		"../a", "a/../../b", "./", "a/", "slot0000.dat", "a\x00b",
		"very/deep/nested/path/file.dat", "...", "..a", "a..",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		m := NewMemFS()
		checkErr := func(op string, err error) {
			if err == nil || errors.Is(err, io.EOF) {
				return
			}
			var perr *fs.PathError
			if !errors.As(err, &perr) {
				t.Fatalf("%s(%q): %T is not *fs.PathError: %v", op, name, err, err)
			}
			if perr.Path != name {
				t.Fatalf("%s(%q): error path %q is not the caller-given name", op, name, perr.Path)
			}
		}

		_, err := m.Stat(name)
		checkErr("stat", err)
		checkErr("mkdirall", m.MkdirAll(name, 0o755))

		// A fresh FS again: create as a file and round-trip a byte.
		m = NewMemFS()
		h, err := m.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
		checkErr("open", err)
		if err != nil {
			return
		}
		if _, err := m.Stat(name); err != nil {
			t.Fatalf("Stat(%q) after create failed: %v", name, err)
		}
		if _, werr := h.WriteAt([]byte{0xAB}, 3); werr == nil {
			buf := make([]byte, 1)
			if _, rerr := h.ReadAt(buf, 3); rerr != nil && rerr != io.EOF {
				t.Fatalf("ReadAt after WriteAt on %q: %v", name, rerr)
			} else if buf[0] != 0xAB {
				t.Fatalf("round-trip through %q lost the byte", name)
			}
		} else {
			checkErr("write", werr)
		}
		if err := h.Close(); err != nil {
			t.Fatalf("Close(%q): %v", name, err)
		}

		// The raw name and its cleaned form refer to the same node, so
		// removal through the raw name must succeed (except for the root,
		// which removes as EBUSY like an in-use mount point).
		if err := m.Remove(name); err != nil {
			checkErr("remove", err)
			if !errors.Is(err, syscall.EBUSY) {
				t.Fatalf("Remove(%q) after create: %v", name, err)
			}
		}
	})
}
