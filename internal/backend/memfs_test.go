package backend

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
	"testing"
)

func TestMemFSReadWriteRoundtrip(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := []byte("hello, memfs")
	if n, err := f.WriteAt(want, 5); err != nil || n != len(want) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Size(); got != 5+int64(len(want)) {
		t.Fatalf("size after gap write = %d, want %d", got, 5+len(want))
	}

	// The gap is zero-filled.
	head := make([]byte, 5)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range head {
		if b != 0 {
			t.Fatalf("gap byte %d = %#x, want 0", i, b)
		}
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 5); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("ReadAt = %q, want %q", got, want)
	}
}

func TestMemFSPreadSemantics(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	f.WriteAt([]byte("0123456789"), 0)

	// Short read at the tail returns (n, io.EOF).
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 6)
	if n != 4 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 4, io.EOF", n, err)
	}
	// Read past EOF returns (0, io.EOF).
	n, err = f.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("past-EOF ReadAt = %d, %v; want 0, io.EOF", n, err)
	}
	// Exact read returns nil error, matching (*os.File).ReadAt.
	n, err = f.ReadAt(buf[:4], 6)
	if n != 4 || err != nil {
		t.Fatalf("exact-tail ReadAt = %d, %v; want 4, nil", n, err)
	}
}

func TestMemFSTruncate(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	f.WriteAt([]byte("secretdata"), 0)

	// Shrink, then regrow past the old length: the regrown region must
	// be zeros, not the stale bytes (cap reuse would otherwise leak).
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf[:3]) != "sec" {
		t.Fatalf("prefix = %q, want %q", buf[:3], "sec")
	}
	for i, b := range buf[3:] {
		if b != 0 {
			t.Fatalf("regrown byte %d = %#x, want 0 (stale data leaked)", 3+i, b)
		}
	}

	// FS-level truncate of a negative size is EINVAL.
	if err := m.Truncate("a.dat", -1); !errors.Is(err, syscall.EINVAL) {
		t.Fatalf("Truncate(-1) = %v, want EINVAL", err)
	}
}

func TestMemFSOpenTrunc(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	f.WriteAt([]byte("data"), 0)
	f.Close()

	g, err := m.OpenFile("a.dat", os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	fi, _ := g.Stat()
	if fi.Size() != 0 {
		t.Fatalf("size after O_TRUNC = %d, want 0", fi.Size())
	}
}

func TestMemFSAccessModes(t *testing.T) {
	m := NewMemFS()
	w, _ := m.OpenFile("a.dat", os.O_WRONLY|os.O_CREATE, 0o644)
	defer w.Close()
	if _, err := w.ReadAt(make([]byte, 1), 0); !errors.Is(err, syscall.EBADF) {
		t.Fatalf("read of O_WRONLY handle = %v, want EBADF", err)
	}
	r, _ := m.OpenFile("a.dat", os.O_RDONLY, 0o644)
	defer r.Close()
	if _, err := r.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.EBADF) {
		t.Fatalf("write of O_RDONLY handle = %v, want EBADF", err)
	}
}

func TestMemFSClosedHandle(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("read after close = %v, want ErrClosed", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("double close = %v, want ErrClosed", err)
	}
}

func TestMemFSTreeOps(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("a/b/c/x.dat", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("x"), 0)
	f.Close()

	ents, err := m.ReadDir("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "x.dat" || ents[0].IsDir() {
		t.Fatalf("ReadDir = %v", ents)
	}
	fi, err := m.Stat("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() {
		t.Fatalf("a/b is not a dir")
	}
	if err := m.Remove("a/b"); !errors.Is(err, syscall.ENOTEMPTY) {
		t.Fatalf("Remove(non-empty) = %v, want ENOTEMPTY", err)
	}
	if err := m.Remove("a/b/c/x.dat"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("a/b/c"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat(removed) = %v, want not-exist", err)
	}
}

func TestMemFSMoved(t *testing.T) {
	m := NewMemFS()
	f, _ := m.OpenFile("a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	f.WriteAt(make([]byte, 1000), 0)
	f.ReadAt(make([]byte, 400), 0)
	if got := m.Moved(); got != 1400 {
		t.Fatalf("Moved = %d, want 1400", got)
	}
}

func TestMemFSPathCleaning(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("../..//./a.dat", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("x"), 0)
	f.Close()
	// ".." cannot escape the root: the cleaned path is just "a.dat".
	if _, err := m.Stat("a.dat"); err != nil {
		t.Fatalf("Stat(a.dat) after dirty create = %v", err)
	}
}

// TestErrorParity pins memfs error values — op, path, errno kind, and
// the full rendered string — against the os package (through OSFS on a
// real temp directory) for the measurement path's failure modes.
func TestErrorParity(t *testing.T) {
	type fsOps interface {
		FS
	}
	setup := func(fsys fsOps) {
		if err := fsys.Mkdir("dir", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := fsys.OpenFile("dir/file.dat", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("data"), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name  string
		errno syscall.Errno
		do    func(fsys fsOps) error
	}{
		{"open-missing", syscall.ENOENT, func(f fsOps) error {
			_, err := f.OpenFile("missing.dat", os.O_RDONLY, 0)
			return err
		}},
		{"open-excl-existing", syscall.EEXIST, func(f fsOps) error {
			_, err := f.OpenFile("dir/file.dat", os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
			return err
		}},
		{"open-dir-for-write", syscall.EISDIR, func(f fsOps) error {
			_, err := f.OpenFile("dir", os.O_WRONLY, 0)
			return err
		}},
		{"open-under-missing-parent", syscall.ENOENT, func(f fsOps) error {
			_, err := f.OpenFile("nodir/file.dat", os.O_RDWR|os.O_CREATE, 0o644)
			return err
		}},
		{"open-through-file", syscall.ENOTDIR, func(f fsOps) error {
			_, err := f.OpenFile("dir/file.dat/sub", os.O_RDONLY, 0)
			return err
		}},
		{"mkdir-existing", syscall.EEXIST, func(f fsOps) error {
			return f.Mkdir("dir", 0o755)
		}},
		{"mkdir-missing-parent", syscall.ENOENT, func(f fsOps) error {
			return f.Mkdir("nodir/sub", 0o755)
		}},
		{"remove-missing", syscall.ENOENT, func(f fsOps) error {
			return f.Remove("missing.dat")
		}},
		{"remove-nonempty", syscall.ENOTEMPTY, func(f fsOps) error {
			return f.Remove("dir")
		}},
		{"stat-missing", syscall.ENOENT, func(f fsOps) error {
			_, err := f.Stat("missing.dat")
			return err
		}},
		{"readdir-of-file", syscall.ENOTDIR, func(f fsOps) error {
			_, err := f.ReadDir("dir/file.dat")
			return err
		}},
		{"readdir-missing", syscall.ENOENT, func(f fsOps) error {
			_, err := f.ReadDir("missing")
			return err
		}},
		{"truncate-dir", syscall.EISDIR, func(f fsOps) error {
			return f.Truncate("dir", 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := NewMemFS()
			osb := NewOSFS(t.TempDir(), false)
			setup(mem)
			setup(osb)
			memErr := tc.do(mem)
			osErr := tc.do(osb)
			for which, err := range map[string]error{"memfs": memErr, "osfs": osErr} {
				if err == nil {
					t.Fatalf("%s: no error, want %v", which, tc.errno)
				}
				if !errors.Is(err, tc.errno) {
					t.Errorf("%s: error %v is not %v", which, err, tc.errno)
				}
				var perr *fs.PathError
				if !errors.As(err, &perr) {
					t.Fatalf("%s: %T is not *fs.PathError", which, err)
				}
			}
			if memErr.Error() != osErr.Error() {
				t.Errorf("error strings diverge:\n  memfs: %s\n  osfs:  %s", memErr, osErr)
			}
		})
	}
}
