//go:build linux

package backend

import "syscall"

// directFlag returns the O_DIRECT open flag when direct I/O was
// requested; Linux supports it on most filesystems. Callers that pass
// O_DIRECT must use block-aligned buffers — the pooled transfer buffers
// in this package are chunkAlign-aligned for exactly that reason.
func directFlag(direct bool) int {
	if direct {
		return syscall.O_DIRECT
	}
	return 0
}
