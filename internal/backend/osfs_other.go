//go:build !linux

package backend

// directFlag is a no-op off Linux: O_DIRECT is not portable, so direct
// mode silently degrades to page-cached I/O rather than failing runs.
func directFlag(bool) int { return 0 }
