package backend

import (
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// MemFS is an inode-table in-memory filesystem. The namespace (the
// directory tree) is guarded by one RWMutex; each file inode carries
// its own lock for data access, so concurrent workers reading and
// writing disjoint open files never contend on the tree lock.
//
// Error values are constructed to be indistinguishable from the os
// package's on Linux: *fs.PathError with the same Op string, the
// caller-given path verbatim, and a syscall.Errno kind (ENOENT, EEXIST,
// EISDIR, ENOTDIR, ENOTEMPTY, EBADF). The cross-check suite in
// crosscheck_test.go holds MemFS to that contract against a real
// directory tree.
type MemFS struct {
	mu    sync.RWMutex
	root  *inode
	moved atomic.Int64
}

// inode is one filesystem object: a directory with children or a
// regular file with data. Data access takes the inode's own lock; all
// namespace fields (children, names) are guarded by the owning MemFS
// tree lock.
type inode struct {
	dir      bool
	children map[string]*inode // dir only

	mu   sync.RWMutex // file only: guards data
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{root: &inode{dir: true, children: map[string]*inode{}}}
}

// Name identifies the backend.
func (m *MemFS) Name() string { return "mem" }

// Moved returns cumulative bytes transferred through read/write calls.
func (m *MemFS) Moved() int64 { return m.moved.Load() }

// splitPath cleans name into its path elements relative to the root.
// Cleaning happens against a leading slash, so relative names, ".." and
// "." resolve exactly as the os backend resolves them under its root —
// and no name can escape it.
func splitPath(name string) []string {
	clean := path.Clean("/" + name)
	if clean == "/" {
		return nil
	}
	return strings.Split(clean[1:], "/")
}

// walk resolves the directory holding the last element of elems,
// returning (parent, leaf). Callers hold m.mu.
func (m *MemFS) walk(op, name string, elems []string) (*inode, string, error) {
	dir := m.root
	for _, el := range elems[:len(elems)-1] {
		child, ok := dir.children[el]
		if !ok {
			return nil, "", &fs.PathError{Op: op, Path: name, Err: syscall.ENOENT}
		}
		if !child.dir {
			return nil, "", &fs.PathError{Op: op, Path: name, Err: syscall.ENOTDIR}
		}
		dir = child
	}
	return dir, elems[len(elems)-1], nil
}

// lookup resolves a whole path to its inode. Callers hold m.mu.
func (m *MemFS) lookup(op, name string, elems []string) (*inode, error) {
	if len(elems) == 0 {
		return m.root, nil
	}
	dir, leaf, err := m.walk(op, name, elems)
	if err != nil {
		return nil, err
	}
	node, ok := dir.children[leaf]
	if !ok {
		return nil, &fs.PathError{Op: op, Path: name, Err: syscall.ENOENT}
	}
	return node, nil
}

// OpenFile opens name with os.O_* flag semantics. Supported flags are
// the ones the measurement path uses: O_RDONLY/O_WRONLY/O_RDWR plus
// O_CREATE, O_EXCL and O_TRUNC.
func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	elems := splitPath(name)
	m.mu.Lock()
	defer m.mu.Unlock()

	var node *inode
	if len(elems) == 0 {
		node = m.root
	} else {
		dir, leaf, err := m.walk("open", name, elems)
		if err != nil {
			return nil, err
		}
		existing, ok := dir.children[leaf]
		switch {
		case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
			return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.EEXIST}
		case !ok && flag&os.O_CREATE == 0:
			return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.ENOENT}
		case !ok:
			existing = &inode{}
			dir.children[leaf] = existing
		}
		node = existing
	}

	if node.dir && flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.EISDIR}
	}
	if !node.dir && flag&os.O_TRUNC != 0 {
		node.mu.Lock()
		node.data = node.data[:0]
		node.mu.Unlock()
	}
	return &memFile{fs: m, node: node, name: name, flag: flag}, nil
}

// Mkdir creates a single directory.
func (m *MemFS) Mkdir(name string, perm fs.FileMode) error {
	elems := splitPath(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(elems) == 0 {
		return &fs.PathError{Op: "mkdir", Path: name, Err: syscall.EEXIST}
	}
	dir, leaf, err := m.walk("mkdir", name, elems)
	if err != nil {
		return err
	}
	if _, ok := dir.children[leaf]; ok {
		return &fs.PathError{Op: "mkdir", Path: name, Err: syscall.EEXIST}
	}
	dir.children[leaf] = &inode{dir: true, children: map[string]*inode{}}
	return nil
}

// MkdirAll creates a directory and all missing parents; existing
// directories along the way are fine, matching os.MkdirAll.
func (m *MemFS) MkdirAll(name string, perm fs.FileMode) error {
	elems := splitPath(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	dir := m.root
	for _, el := range elems {
		child, ok := dir.children[el]
		if !ok {
			child = &inode{dir: true, children: map[string]*inode{}}
			dir.children[el] = child
		} else if !child.dir {
			return &fs.PathError{Op: "mkdir", Path: name, Err: syscall.ENOTDIR}
		}
		dir = child
	}
	return nil
}

// Remove deletes a file or empty directory.
func (m *MemFS) Remove(name string) error {
	elems := splitPath(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(elems) == 0 {
		return &fs.PathError{Op: "remove", Path: name, Err: syscall.EBUSY}
	}
	dir, leaf, err := m.walk("remove", name, elems)
	if err != nil {
		return err
	}
	node, ok := dir.children[leaf]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: syscall.ENOENT}
	}
	if node.dir && len(node.children) > 0 {
		return &fs.PathError{Op: "remove", Path: name, Err: syscall.ENOTEMPTY}
	}
	delete(dir.children, leaf)
	return nil
}

// Stat reports metadata for the named file.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	elems := splitPath(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	node, err := m.lookup("stat", name, elems)
	if err != nil {
		return nil, err
	}
	return node.info(path.Base(path.Clean("/" + name))), nil
}

// ReadDir lists the named directory in name order.
func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	elems := splitPath(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	node, err := m.lookup("open", name, elems)
	if err != nil {
		return nil, err
	}
	if !node.dir {
		// os.ReadDir opens with O_DIRECTORY, so a non-directory fails at
		// open time; mirror that op.
		return nil, &fs.PathError{Op: "open", Path: name, Err: syscall.ENOTDIR}
	}
	names := make([]string, 0, len(node.children))
	for n := range node.children {
		names = append(names, n)
	}
	sort.Strings(names)
	ents := make([]fs.DirEntry, len(names))
	for i, n := range names {
		ents[i] = dirEntry{info: node.children[n].info(n)}
	}
	return ents, nil
}

// Truncate resizes the named file; extension zero-fills.
func (m *MemFS) Truncate(name string, size int64) error {
	elems := splitPath(name)
	m.mu.RLock()
	node, err := m.lookup("truncate", name, elems)
	m.mu.RUnlock()
	if err != nil {
		return err
	}
	if node.dir {
		return &fs.PathError{Op: "truncate", Path: name, Err: syscall.EISDIR}
	}
	if size < 0 {
		return &fs.PathError{Op: "truncate", Path: name, Err: syscall.EINVAL}
	}
	node.mu.Lock()
	node.resize(size)
	node.mu.Unlock()
	return nil
}

// resize grows or shrinks data to size. Callers hold node.mu.
func (n *inode) resize(size int64) {
	switch cur := int64(len(n.data)); {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		if int64(cap(n.data)) >= size {
			grown := n.data[:size]
			clear(grown[cur:])
			n.data = grown
		} else {
			grown := make([]byte, size)
			copy(grown, n.data)
			n.data = grown
		}
	}
}

// info builds a FileInfo snapshot. Callers hold the relevant lock for a
// consistent size. ModTime is pinned to the zero instant so memfs runs
// stay byte-deterministic.
func (n *inode) info(name string) fs.FileInfo {
	fi := fileInfo{name: name, mode: 0o644}
	if n.dir {
		fi.mode = fs.ModeDir | 0o755
	} else {
		n.mu.RLock()
		fi.size = int64(len(n.data))
		n.mu.RUnlock()
	}
	return fi
}

// memFile is an open handle onto a MemFS inode.
type memFile struct {
	fs     *MemFS
	node   *inode
	name   string
	flag   int
	closed atomic.Bool
}

// readable reports whether the open mode permits reads.
func (f *memFile) readable() bool { return f.flag&(os.O_WRONLY|os.O_RDWR) != os.O_WRONLY }

// writable reports whether the open mode permits writes.
func (f *memFile) writable() bool { return f.flag&(os.O_WRONLY|os.O_RDWR) != 0 }

func (f *memFile) patherr(op string, err error) error {
	return &fs.PathError{Op: op, Path: f.name, Err: err}
}

// ReadAt implements io.ReaderAt with pread semantics: a read past EOF
// returns io.EOF, a short read returns (n, io.EOF).
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, f.patherr("read", os.ErrClosed)
	}
	if !f.readable() {
		return 0, f.patherr("read", syscall.EBADF)
	}
	if f.node.dir {
		return 0, f.patherr("read", syscall.EISDIR)
	}
	if off < 0 {
		return 0, f.patherr("read", syscall.EINVAL)
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	if off >= int64(len(f.node.data)) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	f.fs.moved.Add(int64(n))
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt with pwrite semantics: writing past
// EOF extends the file, zero-filling any gap.
func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, f.patherr("write", os.ErrClosed)
	}
	if !f.writable() {
		return 0, f.patherr("write", syscall.EBADF)
	}
	if off < 0 {
		return 0, f.patherr("write", syscall.EINVAL)
	}
	if len(p) == 0 {
		return 0, nil
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(f.node.data)) {
		f.node.resize(end)
	}
	n := copy(f.node.data[off:], p)
	f.fs.moved.Add(int64(n))
	return n, nil
}

// Truncate resizes the open file.
func (f *memFile) Truncate(size int64) error {
	if f.closed.Load() {
		return f.patherr("truncate", os.ErrClosed)
	}
	if !f.writable() {
		return f.patherr("truncate", syscall.EINVAL)
	}
	if size < 0 {
		return f.patherr("truncate", syscall.EINVAL)
	}
	f.node.mu.Lock()
	f.node.resize(size)
	f.node.mu.Unlock()
	return nil
}

// Stat reports the file's current metadata.
func (f *memFile) Stat() (fs.FileInfo, error) {
	if f.closed.Load() {
		return nil, f.patherr("stat", os.ErrClosed)
	}
	return f.node.info(path.Base(path.Clean("/" + f.name))), nil
}

// Sync is a no-op: memory is the backing store.
func (f *memFile) Sync() error {
	if f.closed.Load() {
		return f.patherr("sync", os.ErrClosed)
	}
	return nil
}

// Close invalidates the handle; further operations return ErrClosed.
func (f *memFile) Close() error {
	if f.closed.Swap(true) {
		return f.patherr("close", os.ErrClosed)
	}
	return nil
}

// fileInfo is the immutable fs.FileInfo snapshot memfs hands out.
type fileInfo struct {
	name string
	size int64
	mode fs.FileMode
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() fs.FileMode  { return fi.mode }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.mode.IsDir() }
func (fi fileInfo) Sys() any           { return nil }

// dirEntry adapts a fileInfo to fs.DirEntry for ReadDir.
type dirEntry struct{ info fs.FileInfo }

func (d dirEntry) Name() string               { return d.info.Name() }
func (d dirEntry) IsDir() bool                { return d.info.IsDir() }
func (d dirEntry) Type() fs.FileMode          { return d.info.Mode().Type() }
func (d dirEntry) Info() (fs.FileInfo, error) { return d.info, nil }
