package backend

import (
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sync/atomic"
)

// OSFS serves requests from a real directory tree rooted at a host
// path, using pread/pwrite (os.File.ReadAt/WriteAt). Paths are cleaned
// exactly like memfs paths — lexically, against a leading slash — so a
// caller-given name resolves to the same object on both backends and
// can never escape the root. Errors coming back from the kernel have
// their PathError.Path rewritten to the caller-given name, keeping osfs
// and memfs error values comparable field for field.
type OSFS struct {
	root   string
	direct bool
	moved  atomic.Int64
}

// NewOSFS returns a backend rooted at dir. When direct is true, data
// files are opened with O_DIRECT where the platform supports it
// (Linux), bypassing the page cache so measurements see device speeds.
func NewOSFS(dir string, direct bool) *OSFS {
	return &OSFS{root: dir, direct: direct}
}

// Name identifies the backend.
func (o *OSFS) Name() string { return "os" }

// Moved returns cumulative bytes transferred through read/write calls.
func (o *OSFS) Moved() int64 { return o.moved.Load() }

// Root returns the host directory the backend is rooted at.
func (o *OSFS) Root() string { return o.root }

// hostPath maps a backend path to its host location under the root.
func (o *OSFS) hostPath(name string) string {
	return filepath.Join(o.root, filepath.FromSlash(path.Clean("/"+name)))
}

// rewrite replaces the host path inside an error with the caller-given
// name, so error values match memfs's byte for byte.
func rewrite(err error, name string) error {
	if perr, ok := err.(*fs.PathError); ok {
		perr.Path = name
		return perr
	}
	return err
}

// OpenFile opens name under the root with os.O_* flags.
func (o *OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(o.hostPath(name), flag|directFlag(o.direct), perm)
	if err != nil {
		return nil, rewrite(err, name)
	}
	return &osFile{f: f, fs: o, name: name}, nil
}

// Mkdir creates a single directory under the root.
func (o *OSFS) Mkdir(name string, perm fs.FileMode) error {
	return rewrite(os.Mkdir(o.hostPath(name), perm), name)
}

// MkdirAll creates a directory and any missing parents under the root.
func (o *OSFS) MkdirAll(name string, perm fs.FileMode) error {
	return rewrite(os.MkdirAll(o.hostPath(name), perm), name)
}

// Remove deletes a file or empty directory under the root.
func (o *OSFS) Remove(name string) error {
	return rewrite(os.Remove(o.hostPath(name)), name)
}

// Stat reports metadata for the named file.
func (o *OSFS) Stat(name string) (fs.FileInfo, error) {
	fi, err := os.Stat(o.hostPath(name))
	return fi, rewrite(err, name)
}

// ReadDir lists the named directory in name order.
func (o *OSFS) ReadDir(name string) ([]fs.DirEntry, error) {
	ents, err := os.ReadDir(o.hostPath(name))
	return ents, rewrite(err, name)
}

// Truncate resizes the named file.
func (o *OSFS) Truncate(name string, size int64) error {
	return rewrite(os.Truncate(o.hostPath(name), size), name)
}

// osFile wraps *os.File to count moved bytes and keep caller-relative
// paths in errors.
type osFile struct {
	f    *os.File
	fs   *OSFS
	name string
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.fs.moved.Add(int64(n))
	return n, rewrite(err, f.name)
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.f.WriteAt(p, off)
	f.fs.moved.Add(int64(n))
	return n, rewrite(err, f.name)
}

func (f *osFile) Truncate(size int64) error { return rewrite(f.f.Truncate(size), f.name) }

func (f *osFile) Stat() (fs.FileInfo, error) {
	fi, err := f.f.Stat()
	return fi, rewrite(err, f.name)
}

func (f *osFile) Sync() error  { return rewrite(f.f.Sync(), f.name) }
func (f *osFile) Close() error { return rewrite(f.f.Close(), f.name) }
