package sim

import (
	"sync"
	"testing"
)

// stubClock is a LiveClock with a manually advanced cursor.
type stubClock struct{ cur Time }

func (c *stubClock) Now() Time      { return c.cur }
func (c *stubClock) Sleep(d Time)   { c.cur += d }
func (c *stubClock) advance(d Time) { c.cur += d }

func TestLiveProcClock(t *testing.T) {
	exec := NewLiveExec(NewEngine(1))
	c := &stubClock{}
	p := exec.NewProc("w0", c, 7)

	if p.Now() != 0 {
		t.Fatalf("Now = %v, want 0", p.Now())
	}
	c.advance(5 * Millisecond)
	if p.Now() != 5*Millisecond {
		t.Fatalf("Now = %v, want 5ms", p.Now())
	}
	p.Sleep(2 * Millisecond)
	if p.Now() != 7*Millisecond {
		t.Fatalf("Now after Sleep = %v, want 7ms", p.Now())
	}
	if p.DomainID() != 0 {
		t.Fatalf("DomainID = %d, want 0", p.DomainID())
	}
	if p.Engine() != exec.Engine() {
		t.Fatalf("Engine() is not the executor's engine")
	}
}

func TestLiveProcRandDeterministic(t *testing.T) {
	mk := func() []int64 {
		exec := NewLiveExec(NewEngine(1))
		p := exec.NewProc("w0", &stubClock{}, 42)
		out := make([]int64, 8)
		for i := range out {
			out[i] = p.Rand().Int63()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Rand stream diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Different seeds give different streams.
	exec := NewLiveExec(NewEngine(1))
	q := exec.NewProc("w1", &stubClock{}, 43)
	if q.Rand().Int63() == a[0] {
		t.Fatalf("seed 43 reproduced seed 42's stream")
	}
}

func TestLiveProcRequestIDsUnique(t *testing.T) {
	exec := NewLiveExec(NewEngine(1))
	const workers, per = 8, 1000
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := exec.NewProc("w", &stubClock{}, int64(w))
		wg.Add(1)
		go func(w int, p *Proc) {
			defer wg.Done()
			mine := make([]uint64, per)
			for i := range mine {
				mine[i] = p.NextRequestID()
			}
			ids[w] = mine
		}(w, p)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, mine := range ids {
		for _, id := range mine {
			if seen[id] {
				t.Fatalf("request ID %d minted twice", id)
			}
			seen[id] = true
		}
	}
}

func TestLiveProcEventLoopFacilitiesPanic(t *testing.T) {
	exec := NewLiveExec(NewEngine(1))
	p := exec.NewProc("w0", &stubClock{}, 1)
	cases := map[string]func(){
		"NewFuture": func() { p.NewFuture() },
		"Spawn":     func() { p.Spawn("child", func(*Proc) {}) },
		"At":        func() { p.At(Millisecond, func() {}) },
		"After":     func() { p.After(Millisecond, func() {}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on a live proc", name)
				}
			}()
			fn()
		})
	}
}

// TestEngineIsTimeSource pins the obs clock plumbing contract: a
// simulated run's timeline is its engine.
func TestEngineIsTimeSource(t *testing.T) {
	var ts TimeSource = NewEngine(1)
	if ts.Now() != 0 {
		t.Fatalf("fresh engine Now = %v", ts.Now())
	}
}
