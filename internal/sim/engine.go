package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// event is a scheduled entry in the event calendar. Exactly one of fn
// and p is set: fn is an ordinary callback, while p marks a process
// wake-up that the dispatch loop resumes directly — the common
// Sleep/Resource path pays no closure allocation per wake.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same time
	fn  func()
	p   *Proc
	bg  bool // background events do not keep the simulation alive
}

// before reports whether ev fires before other in calendar order
// (time, then FIFO sequence).
func (ev *event) before(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is a 4-ary min-heap over concrete event values, ordered by
// (at, seq). It replaces container/heap: the wider fan-out halves the
// tree depth of the sift-down that dominates pop, and the monomorphic
// element type removes the interface{} boxing (one allocation per
// heap.Push) and the Less/Swap indirection of the standard library
// interface.
type eventQueue []event

// push appends ev and sifts it up to its heap position.
func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/p references for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Engine is a deterministic discrete-event simulation engine.
//
// The zero value is not usable; construct with NewEngine. All methods must
// be called either before Run, from inside an event callback, or from a
// running Proc — the engine enforces single-threaded execution, so no
// additional locking is required by users. Distinct engines are fully
// independent: programs may run many of them concurrently on different
// goroutines (one goroutine driving each), which is how the experiment
// runner parallelizes sweeps.
type Engine struct {
	now     Time
	events  eventQueue
	seq     uint64
	nevents uint64
	fg      int // scheduled foreground events still in the calendar

	// tracer, when non-nil, observes event dispatch, process lifecycle,
	// and resource admission. See Tracer.
	tracer Tracer

	// yield is the proc→engine handshake: whichever process goroutine is
	// currently running signals on yield exactly once when it parks or
	// terminates, returning control to the engine.
	yield chan struct{}

	// live tracks spawned processes that have not yet terminated, so that
	// Run can detect deadlock (live procs but an empty calendar).
	live map[*Proc]struct{}

	// procs tracks every unfinished process (including daemons), so
	// Shutdown can unwind parked goroutines.
	procs map[*Proc]struct{}

	// trap carries a panic raised on a process goroutine back to the
	// engine goroutine, where it re-panics inside Run — so simulation
	// bugs surface on the caller's stack instead of crashing a detached
	// goroutine.
	trap interface{}

	rng *rand.Rand

	// nextReq is the last request identifier handed out by NextRequestID.
	nextReq uint64
}

// waitYield blocks until the currently-running process parks or ends,
// then re-raises any panic the process trapped.
func (e *Engine) waitYield() {
	<-e.yield
	if e.trap != nil {
		t := e.trap
		e.trap = nil
		panic(t)
	}
}

// NewEngine returns an engine with simulated time 0 and an RNG seeded with
// seed. Two engines with the same seed executing the same program produce
// identical schedules.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Shutdown unwinds every parked process goroutine (daemon worker loops,
// deadlocked processes) after the simulation has finished, so that
// programs running many simulations do not accumulate blocked
// goroutines. It must be called after Run/RunUntil has returned, from
// the same goroutine; the engine must not be used afterwards.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if !p.started {
			// The start event never fired (RunUntil stopped early); there
			// is no goroutine to unwind.
			delete(e.procs, p)
			delete(e.live, p)
			continue
		}
		p.resume <- true // park() panics with killed{}
		e.waitYield()
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// NextRequestID returns a fresh nonzero engine-scoped request
// identifier. IDs are strictly increasing in allocation order, which
// the engine's serialized execution makes deterministic.
func (e *Engine) NextRequestID() uint64 {
	e.nextReq++
	return e.nextReq
}

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nevents }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (procs and event callbacks), which the
// engine serializes.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an error in the simulation program and panics.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn, false) }

func (e *Engine) schedule(t Time, fn func(), bg bool) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	if !bg {
		e.fg++
	}
	e.events.push(event{at: t, seq: e.seq, fn: fn, bg: bg})
}

// scheduleWake schedules parked process p to be resumed at absolute time
// t. The calendar stores the proc pointer itself, so the ubiquitous
// Sleep/wake path allocates no wrapper closure.
func (e *Engine) scheduleWake(t Time, p *Proc, bg bool) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling wake at %v before now %v", t, e.now))
	}
	e.seq++
	if !bg {
		e.fg++
	}
	e.events.push(event{at: t, seq: e.seq, p: p, bg: bg})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// DeadlockError reports that processes remained blocked with no scheduled
// events to wake them.
type DeadlockError struct {
	Now   Time
	Procs []string // names of blocked processes, sorted
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es) %v", d.Now, len(d.Procs), d.Procs)
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if live processes remain blocked afterwards, nil
// otherwise. Run must be called exactly once on the engine goroutine.
func (e *Engine) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with time ≤ deadline. Events beyond the
// deadline remain in the calendar, as do background events pending once
// the last foreground event has run. It returns a *DeadlockError if the
// foreground calendar drains while processes are still blocked.
//
// The tracer is latched once at entry (SetTracer documents it must be
// called outside a running simulation), keeping the dispatch loop free
// of per-event field loads.
func (e *Engine) RunUntil(deadline Time) error {
	tracer := e.tracer
	for e.fg > 0 {
		if e.events[0].at > deadline {
			return nil
		}
		ev := e.events.pop()
		if !ev.bg {
			e.fg--
		}
		e.now = ev.at
		e.nevents++
		if tracer != nil {
			tracer.EventDispatched(e.now, e.nevents)
		}
		if ev.p != nil {
			e.unpark(ev.p)
		} else {
			ev.fn()
		}
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return &DeadlockError{Now: e.now, Procs: names}
	}
	return nil
}
