package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// event is a scheduled entry in the event calendar. Exactly one of fn
// and p is set: fn is an ordinary callback, while p marks a process
// wake-up that the dispatch loop resumes directly — the common
// Sleep/Resource path pays no closure allocation per wake.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same time
	fn  func()
	p   *Proc
	bg  bool // background events do not keep the simulation alive
}

// before reports whether ev fires before other in calendar order
// (time, then FIFO sequence).
func (ev *event) before(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is a 4-ary min-heap over concrete event values, ordered by
// (at, seq). It replaces container/heap: the wider fan-out halves the
// tree depth of the sift-down that dominates pop, and the monomorphic
// element type removes the interface{} boxing (one allocation per
// heap.Push) and the Less/Swap indirection of the standard library
// interface.
type eventQueue []event

// push appends ev and sifts it up to its heap position.
func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/p references for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// domain is one sequential partition of a simulation: an event calendar
// with its own clock, FIFO sequence, RNG, request-ID space, and process
// set. A classic (unsharded) engine is exactly one domain — Engine
// embeds it, so the single-calendar hot path pays no indirection. A
// sharded engine holds many domains that execute concurrently inside
// conservative lookahead windows (see shard.go) and interact only via
// Proc.Post mailboxes.
type domain struct {
	eng  *Engine
	id   int
	name string

	now     Time
	events  eventQueue
	seq     uint64
	nevents uint64
	fg      int // scheduled foreground events still in the calendar

	// yield is the proc→domain handshake: whichever process goroutine is
	// currently running signals on yield exactly once when it parks or
	// terminates, returning control to the dispatch loop.
	yield chan struct{}

	// live tracks spawned processes that have not yet terminated, so that
	// Run can detect deadlock (live procs but an empty calendar).
	live map[*Proc]struct{}

	// procs tracks every unfinished process (including daemons), so
	// Shutdown can unwind parked goroutines.
	procs map[*Proc]struct{}

	// trap carries a panic raised on a process goroutine back to the
	// dispatching goroutine, where it re-panics inside Run — so simulation
	// bugs surface on the caller's stack instead of crashing a detached
	// goroutine.
	trap interface{}

	// rng is created lazily from rngSeed (except for domain 0, which is
	// seeded eagerly at NewEngine): at 10^5 client domains an eager
	// math/rand state per domain would dominate the engine's footprint.
	rng     *rand.Rand
	rngSeed int64

	// nextReq is the last request identifier handed out by NextRequestID
	// (namespaced by domain id; see nextRequestID).
	nextReq uint64

	// outbox stages cross-domain mail posted during the current window;
	// outSeq is the per-domain FIFO tie-break that, with the domain id,
	// makes the merge order deterministic. hpos is the domain's index in
	// its shard worker's scheduling heap.
	outbox []mail
	outSeq uint64
	hpos   int
}

// waitYield blocks until the currently-running process parks or ends,
// then re-raises any panic the process trapped.
func (d *domain) waitYield() {
	<-d.yield
	if d.trap != nil {
		t := d.trap
		d.trap = nil
		panic(t)
	}
}

func (d *domain) schedule(t Time, fn func(), bg bool) {
	if t < d.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, d.now))
	}
	d.seq++
	if !bg {
		d.fg++
	}
	d.events.push(event{at: t, seq: d.seq, fn: fn, bg: bg})
}

// scheduleWake schedules parked process p to be resumed at absolute time
// t. The calendar stores the proc pointer itself, so the ubiquitous
// Sleep/wake path allocates no wrapper closure.
func (d *domain) scheduleWake(t Time, p *Proc, bg bool) {
	if t < d.now {
		panic(fmt.Sprintf("sim: scheduling wake at %v before now %v", t, d.now))
	}
	d.seq++
	if !bg {
		d.fg++
	}
	d.events.push(event{at: t, seq: d.seq, p: p, bg: bg})
}

// wake schedules p to be resumed at the domain's current time, preserving
// FIFO order with other wakes. It must only be called while p's domain is
// the executing one (the same-domain discipline every blocking primitive
// already follows).
func (d *domain) wake(p *Proc) {
	d.scheduleWake(d.now, p, false)
}

// Rand returns the domain's deterministic random source, creating it on
// first use.
func (d *domain) Rand() *rand.Rand {
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(d.rngSeed))
	}
	return d.rng
}

// nextRequestID hands out the next request identifier. Domain 0 keeps
// the historical engine-wide sequence; other domains namespace their
// counter with the domain id so concurrent domains never collide and the
// ids stay independent of shard-worker interleaving.
func (d *domain) nextRequestID() uint64 {
	d.nextReq++
	if d.id == 0 {
		return d.nextReq
	}
	return uint64(d.id)<<40 | d.nextReq
}

// nextEventAt returns the time of the domain's earliest pending event,
// or MaxTime when the calendar is empty.
func (d *domain) nextEventAt() Time {
	if len(d.events) == 0 {
		return MaxTime
	}
	return d.events[0].at
}

// runTo dispatches every event strictly before horizon. It is the
// sharded window body: no tracer hooks (engine tracer hooks are a
// classic-mode feature), no foreground-drain check (that is global
// across domains and enforced by the coordinator between windows).
func (d *domain) runTo(horizon Time) {
	for len(d.events) > 0 && d.events[0].at < horizon {
		ev := d.events.pop()
		if !ev.bg {
			d.fg--
		}
		d.now = ev.at
		d.nevents++
		if ev.p != nil {
			d.unpark(ev.p)
		} else {
			ev.fn()
		}
	}
}

// Engine is a deterministic discrete-event simulation engine.
//
// The zero value is not usable; construct with NewEngine. All methods must
// be called either before Run, from inside an event callback, or from a
// running Proc — the engine enforces single-threaded execution per domain,
// so no additional locking is required by users. Distinct engines are fully
// independent: programs may run many of them concurrently on different
// goroutines (one goroutine driving each), which is how the experiment
// runner parallelizes sweeps.
//
// An engine is classically one event calendar. With EnableSharding, model
// construction may partition the simulation into domains (NewDomain /
// SetDomain); Run then executes domains concurrently under conservative
// lookahead windows while remaining bit-for-bit deterministic for any
// worker count. Engine embeds domain 0, so the classic path accesses its
// calendar fields directly with no extra indirection.
type Engine struct {
	domain // domain 0: the root (and, classically, only) calendar

	// tracer, when non-nil, observes event dispatch, process lifecycle,
	// and resource admission in classic mode. See Tracer. Sharded runs
	// skip engine-level hooks (domains dispatch concurrently); the
	// observability layer's own counters remain available.
	tracer Tracer

	seed       int64
	domains    []*domain
	cur        *domain // construction cursor for Spawn/NewResource/At
	shardingOn bool
	workers    int
	lookahead  Time
}

// NewEngine returns an engine with simulated time 0 and an RNG seeded with
// seed. Two engines with the same seed executing the same program produce
// identical schedules.
func NewEngine(seed int64) *Engine {
	e := &Engine{seed: seed}
	e.domain.eng = e
	e.domain.yield = make(chan struct{})
	e.domain.live = make(map[*Proc]struct{})
	e.domain.procs = make(map[*Proc]struct{})
	e.domain.rngSeed = seed
	e.domain.rng = rand.New(rand.NewSource(seed))
	e.domains = []*domain{&e.domain}
	e.cur = &e.domain
	return e
}

// Shutdown unwinds every parked process goroutine (daemon worker loops,
// deadlocked processes) after the simulation has finished, so that
// programs running many simulations do not accumulate blocked
// goroutines. It must be called after Run/RunUntil has returned, from
// the same goroutine; the engine must not be used afterwards.
func (e *Engine) Shutdown() {
	for _, d := range e.domains {
		for p := range d.procs {
			if !p.started {
				// The start event never fired (RunUntil stopped early); there
				// is no goroutine to unwind.
				delete(d.procs, p)
				delete(d.live, p)
				continue
			}
			p.resume <- true // park() panics with killed{}
			d.waitYield()
		}
	}
}

// Now returns the current simulated time: the clock of the root domain
// classically, or the furthest domain clock on a sharded engine (which
// after Run is the simulation's end time). During a sharded run model
// code must use Proc.Now, which reads its own domain's clock.
func (e *Engine) Now() Time {
	if len(e.domains) == 1 {
		return e.domain.now
	}
	var max Time
	for _, d := range e.domains {
		if d.now > max {
			max = d.now
		}
	}
	return max
}

// NextRequestID returns a fresh nonzero request identifier from the
// construction-cursor domain (domain 0 classically). IDs are strictly
// increasing per domain in allocation order, which each domain's
// serialized execution makes deterministic. Runtime code holding a Proc
// should prefer Proc.NextRequestID.
func (e *Engine) NextRequestID() uint64 {
	return e.cur.nextRequestID()
}

// Events returns the number of events executed so far, across all
// domains.
func (e *Engine) Events() uint64 {
	if len(e.domains) == 1 {
		return e.domain.nevents
	}
	var n uint64
	for _, d := range e.domains {
		n += d.nevents
	}
	return n
}

// Rand returns the deterministic random source of the construction-cursor
// domain (domain 0 classically). It must only be used from simulation
// context of that domain; runtime code holding a Proc should prefer
// Proc.Rand.
func (e *Engine) Rand() *rand.Rand { return e.cur.Rand() }

// At schedules fn to run at absolute simulated time t in the
// construction-cursor domain. Scheduling in the past is an error in the
// simulation program and panics.
func (e *Engine) At(t Time, fn func()) { e.cur.schedule(t, fn, false) }

// After schedules fn to run d nanoseconds from now in the
// construction-cursor domain. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.cur.schedule(e.cur.now+d, fn, false) }

// DeadlockError reports that processes remained blocked with no scheduled
// events to wake them.
type DeadlockError struct {
	Now   Time
	Procs []string // names of blocked processes, sorted
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es) %v", d.Now, len(d.Procs), d.Procs)
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if live processes remain blocked afterwards, nil
// otherwise. Run must be called exactly once on the engine goroutine.
func (e *Engine) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with time ≤ deadline. Events beyond the
// deadline remain in the calendar, as do background events pending once
// the last foreground event has run. It returns a *DeadlockError if the
// foreground calendar drains while processes are still blocked.
//
// The tracer is latched once at entry (SetTracer documents it must be
// called outside a running simulation), keeping the dispatch loop free
// of per-event field loads.
func (e *Engine) RunUntil(deadline Time) error {
	if len(e.domains) > 1 {
		return e.runSharded(deadline)
	}
	tracer := e.tracer
	d := &e.domain
	for d.fg > 0 {
		if d.events[0].at > deadline {
			return nil
		}
		ev := d.events.pop()
		if !ev.bg {
			d.fg--
		}
		d.now = ev.at
		d.nevents++
		if tracer != nil {
			tracer.EventDispatched(d.now, d.nevents)
		}
		if ev.p != nil {
			d.unpark(ev.p)
		} else {
			ev.fn()
		}
	}
	if len(d.live) > 0 {
		return &DeadlockError{Now: d.now, Procs: liveNames(d.live)}
	}
	return nil
}

func liveNames(live map[*Proc]struct{}) []string {
	names := make([]string, 0, len(live))
	for p := range live {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
