package sim

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
)

// testWorkerCounts mirrors the testbed package's helper: the worker
// counts compared against a 1-worker run, overridable to a single
// count via BPS_TEST_SHARDS (CI's shard matrix).
func testWorkerCounts(t *testing.T) []int {
	t.Helper()
	if s := os.Getenv("BPS_TEST_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("BPS_TEST_SHARDS=%q: want a positive integer", s)
		}
		return []int{n}
	}
	return []int{2, 3, 4, 8}
}

// TestShardClassicDomainNoops pins the classic collapse: without
// EnableSharding, NewDomain hands back domain 0 and SetDomain is a
// no-op, so partition-aware model code runs unchanged on one calendar.
func TestShardClassicDomainNoops(t *testing.T) {
	e := NewEngine(1)
	if e.Sharded() {
		t.Fatal("fresh engine claims to be sharded")
	}
	if id := e.NewDomain("srv"); id != 0 {
		t.Fatalf("classic NewDomain = %d, want 0", id)
	}
	if prev := e.SetDomain(0); prev != 0 {
		t.Fatalf("classic SetDomain prev = %d, want 0", prev)
	}
	if n := e.NumDomains(); n != 1 {
		t.Fatalf("classic NumDomains = %d, want 1", n)
	}
	// Post on a single-domain engine delivers without lookahead: it is
	// plain scheduling.
	var got Time
	e.Spawn("p", func(p *Proc) {
		p.Post(0, p.Now()+Microsecond, func(c Ctx) { got = c.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != Microsecond {
		t.Fatalf("classic Post ran at %v, want %v", got, Microsecond)
	}
}

// TestShardPostDelivery checks the cross-domain mail path: a process in
// one domain posts into another, the callback runs in the destination
// domain at exactly the posted time, and Ctx.Spawn starts processes
// there.
func TestShardPostDelivery(t *testing.T) {
	e := NewEngine(1)
	e.EnableSharding(2)
	e.SetLookahead(10 * Microsecond)
	d1 := e.NewDomain("a")
	d2 := e.NewDomain("b")

	var at Time
	var inDom int
	spawned := false
	prev := e.SetDomain(d1)
	e.Spawn("sender", func(p *Proc) {
		p.Sleep(Microsecond)
		p.Post(d2, p.Now()+e.Lookahead(), func(c Ctx) {
			at, inDom = c.Now(), c.DomainID()
			c.Spawn("child", func(p2 *Proc) {
				p2.Sleep(Microsecond)
				spawned = true
			})
		})
	})
	e.SetDomain(prev)

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Microsecond + 10*Microsecond; at != want {
		t.Fatalf("mail ran at %v, want %v", at, want)
	}
	if inDom != d2 {
		t.Fatalf("mail ran in domain %d, want %d", inDom, d2)
	}
	if !spawned {
		t.Fatal("Ctx.Spawn child never ran")
	}
}

// TestShardPostLookaheadViolation pins the conservative contract: mail
// must land at least one lookahead in the future, and a violating Post
// panics (re-raised out of Run on the engine goroutine).
func TestShardPostLookaheadViolation(t *testing.T) {
	e := NewEngine(1)
	e.EnableSharding(2)
	e.SetLookahead(10 * Microsecond)
	d1 := e.NewDomain("a")
	d2 := e.NewDomain("b")
	prev := e.SetDomain(d1)
	e.Spawn("sender", func(p *Proc) {
		p.Post(d2, p.Now()+Microsecond, func(Ctx) {}) // < lookahead
	})
	e.SetDomain(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead-violating Post did not panic")
		}
	}()
	_ = e.Run()
}

// TestShardLookaheadValidation pins the lookahead knob's contract:
// non-positive values panic, repeated calls keep the minimum, and a
// sharded multi-domain run without any lookahead panics instead of
// silently deadlocking.
func TestShardLookaheadValidation(t *testing.T) {
	e := NewEngine(1)
	e.EnableSharding(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetLookahead(0) did not panic")
			}
		}()
		e.SetLookahead(0)
	}()
	e.SetLookahead(20 * Microsecond)
	e.SetLookahead(50 * Microsecond) // larger: ignored
	if got := e.Lookahead(); got != 20*Microsecond {
		t.Fatalf("Lookahead = %v, want %v (minimum wins)", got, 20*Microsecond)
	}

	bare := NewEngine(1)
	bare.EnableSharding(2)
	bare.NewDomain("a")
	prev := bare.SetDomain(0)
	bare.Spawn("p", func(p *Proc) { p.Sleep(Microsecond) })
	bare.SetDomain(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("sharded Run without lookahead did not panic")
		}
	}()
	_ = bare.Run()
}

// TestShardDeadlockAcrossDomains checks that deadlock detection unions
// blocked processes across every domain, naming them all.
func TestShardDeadlockAcrossDomains(t *testing.T) {
	e := NewEngine(1)
	e.EnableSharding(2)
	e.SetLookahead(Microsecond)
	d1 := e.NewDomain("a")
	prev := e.SetDomain(d1)
	e.Spawn("stuck-a", func(p *Proc) { p.NewFuture().Wait(p) })
	e.SetDomain(prev)
	e.Spawn("stuck-root", func(p *Proc) { p.NewFuture().Wait(p) })

	err := e.Run()
	dl, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want *DeadlockError", err)
	}
	if want := []string{"stuck-a", "stuck-root"}; !reflect.DeepEqual(dl.Procs, want) {
		t.Fatalf("deadlocked procs = %v, want %v", dl.Procs, want)
	}
	e.Shutdown()
}

// TestShardDomainAccessors covers the bookkeeping surface the model
// layers partition with.
func TestShardDomainAccessors(t *testing.T) {
	e := NewEngine(1)
	e.EnableSharding(3)
	if !e.Sharded() {
		t.Fatal("EnableSharding did not stick")
	}
	if got := e.Workers(); got != 3 {
		t.Fatalf("Workers = %d, want 3", got)
	}
	a := e.NewDomain("alpha")
	b := e.NewDomain("beta")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("NewDomain ids %d, %d: want distinct nonzero", a, b)
	}
	if got := e.NumDomains(); got != 3 {
		t.Fatalf("NumDomains = %d, want 3", got)
	}
	if got := e.DomainName(b); got != "beta" {
		t.Fatalf("DomainName(%d) = %q, want beta", b, got)
	}
	prev := e.SetDomain(a)
	if prev != 0 || e.CurrentDomain() != a {
		t.Fatalf("SetDomain: prev %d cur %d, want 0 and %d", prev, e.CurrentDomain(), a)
	}
	e.SetDomain(prev)
}

// shardTopologySignature builds a pseudo-random multi-domain program
// from seed and runs it with the given worker count, returning an
// order-sensitive log of everything observable: every mail delivery
// (destination clock and domain), each domain's event count, and the
// final clocks. The program stresses the window loop — variable-length
// sleeps, domain-local randomness, chained cross-domain posts — while
// drawing all randomness from sources that are pure functions of the
// topology, never of worker scheduling.
func shardTopologySignature(t *testing.T, seed int64, workers int) []string {
	t.Helper()
	const lookahead = 10 * Microsecond
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine(seed)
	e.EnableSharding(workers)
	e.SetLookahead(lookahead)

	ndom := 2 + rng.Intn(5)
	doms := make([]int, ndom)
	for i := 1; i < ndom; i++ {
		doms[i] = e.NewDomain(fmt.Sprintf("d%d", i))
	}
	logs := make([][]string, ndom) // written only by the owning domain

	for di := 0; di < ndom; di++ {
		nproc := 1 + rng.Intn(3)
		prev := e.SetDomain(doms[di])
		for pi := 0; pi < nproc; pi++ {
			di, pi := di, pi
			rounds := 1 + rng.Intn(4)
			e.Spawn(fmt.Sprintf("d%d.p%d", di, pi), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Sleep(Time(1+p.Rand().Intn(20)) * Microsecond)
					dst := p.Rand().Intn(ndom)
					tag := fmt.Sprintf("d%d.p%d.r%d", di, pi, r)
					p.Post(doms[dst], p.Now()+lookahead+Time(p.Rand().Intn(5))*Microsecond, func(c Ctx) {
						logs[c.DomainID()] = append(logs[c.DomainID()],
							fmt.Sprintf("%s->%d@%d", tag, c.DomainID(), c.Now()))
					})
				}
			})
		}
		e.SetDomain(prev)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	var sig []string
	for i, d := range e.domains {
		sig = append(sig, fmt.Sprintf("dom%d now=%d events=%d", i, d.now, d.nevents))
		sig = append(sig, logs[i]...)
	}
	e.Shutdown()
	return sig
}

// TestShardRandomTopologyWorkerInvariance is the property test behind
// the tentpole guarantee: for arbitrary domain topologies and process
// programs, the observable execution is a pure function of the model —
// bit-identical for every worker count.
func TestShardRandomTopologyWorkerInvariance(t *testing.T) {
	counts := testWorkerCounts(t)
	for seed := int64(1); seed <= 8; seed++ {
		base := shardTopologySignature(t, seed, 1)
		for _, w := range counts {
			if got := shardTopologySignature(t, seed, w); !reflect.DeepEqual(got, base) {
				t.Fatalf("seed %d: workers=%d diverged from workers=1\nbase: %v\ngot:  %v", seed, w, base, got)
			}
		}
	}
}
