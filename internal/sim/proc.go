package sim

// Proc is a simulation process: a Go function running on its own goroutine
// under the engine's strict alternation discipline. At any instant either
// the engine or exactly one process is executing; control transfers happen
// only at park points (Sleep, Future.Wait, Resource.Acquire, Queue ops).
//
// A Proc must not be shared across goroutines and must only be used by the
// body function it was created for.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan bool // true = killed by Shutdown
	started bool
	ctx     any // current request context (see SetCtx)
}

// killed is the sentinel panic value that unwinds a process during
// Engine.Shutdown.
type killed struct{}

// Engine returns the engine the process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Ctx returns the process's current request context (nil when idle).
// Layers install the in-flight request here so components lower in the
// stack — and cross-cutting concerns like trace-span tagging — can see
// which logical access they are serving without every call signature
// threading it through.
func (p *Proc) Ctx() any { return p.ctx }

// SetCtx installs v as the process's request context. Callers save the
// previous value and restore it when their request completes, so nested
// requests unwind correctly.
func (p *Proc) SetCtx(v any) { p.ctx = v }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process that begins executing body at the current
// simulated time (after already-scheduled events at that time). It may be
// called before Run or from simulation context.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt creates a process that begins executing body at absolute time t.
func (e *Engine) SpawnAt(t Time, name string, body func(*Proc)) *Proc {
	return e.spawn(t, name, body, false)
}

// SpawnDaemon creates an infrastructure process (e.g. a server worker
// loop) that is expected to block forever once the workload drains: it is
// excluded from deadlock detection. Its goroutine remains parked when the
// simulation ends.
func (e *Engine) SpawnDaemon(name string, body func(*Proc)) *Proc {
	return e.spawn(e.now, name, body, true)
}

func (e *Engine) spawn(t Time, name string, body func(*Proc), daemon bool) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan bool)}
	if !daemon {
		e.live[p] = struct{}{}
	}
	e.procs[p] = struct{}{}
	e.At(t, func() {
		p.started = true
		if e.tracer != nil {
			e.tracer.ProcStarted(p)
		}
		go func() {
			defer func() {
				// A Shutdown kill unwinds silently; real panics from the
				// simulation program are trapped and re-raised on the
				// engine goroutine inside Run.
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						e.trap = r
					}
				} else if e.tracer != nil {
					// Safe: the engine is blocked on yield below, so the
					// tracer still sees serialized calls.
					e.tracer.ProcEnded(p)
				}
				delete(e.live, p) // safe: engine is blocked on yield below
				delete(e.procs, p)
				e.yield <- struct{}{}
			}()
			body(p)
		}()
		e.waitYield()
	})
	return p
}

// park suspends the calling process and returns control to the engine.
// The process stays suspended until some event callback calls unpark, or
// Engine.Shutdown kills it.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	if <-p.resume {
		panic(killed{})
	}
}

// unpark transfers control from the engine to process p and blocks until p
// parks again or terminates. It must be called only from an event callback
// (engine context), never from another process.
func (e *Engine) unpark(p *Proc) {
	p.resume <- false
	e.waitYield()
}

// wake schedules p to be resumed at the current simulated time, preserving
// FIFO order with other wakes. Safe to call from any simulation context.
func (e *Engine) wake(p *Proc) {
	e.scheduleWake(e.now, p, false)
}

// Sleep suspends the process for d simulated nanoseconds. Zero d yields to
// other events scheduled at the current time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.scheduleWake(e.now+d, p, false)
	p.park()
}

// Future is a one-shot completion that processes can wait on. The zero
// value is usable once bound to an engine via NewFuture.
type Future struct {
	eng     *Engine
	done    bool
	when    Time
	waiters []*Proc

	// onComplete callbacks run synchronously inside Complete, after the
	// waiters have been scheduled. WaitTimeout uses them to observe
	// completion without registering p as a plain waiter, so completion
	// and timeout can never both wake the same process.
	onComplete []func()
}

// NewFuture returns an incomplete Future.
func (e *Engine) NewFuture() *Future { return &Future{eng: e} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// When returns the time the future completed (valid only if Done).
func (f *Future) When() Time { return f.when }

// Complete marks the future done and wakes all waiters. Completing twice
// panics: completion is a one-shot protocol and a double completion always
// indicates a bug in the simulation program.
func (f *Future) Complete() {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.when = f.eng.now
	for _, p := range f.waiters {
		f.eng.wake(p)
	}
	f.waiters = nil
	for _, fn := range f.onComplete {
		fn()
	}
	f.onComplete = nil
}

// Wait suspends p until the future completes. Returns immediately if it
// already has.
func (f *Future) Wait(p *Proc) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, p)
	p.park()
}

// WaitTimeout suspends p until the future completes or d nanoseconds
// elapse, whichever comes first. It reports whether the future completed
// within the window. On timeout the future is left untouched: a later
// Complete still runs (and wakes any other waiters) but no longer
// concerns p.
//
// The timeout timer is a foreground event: a wait on a future that will
// never complete (a dead server's reply) must still count as pending
// work, or the engine would report a spurious deadlock once the rest of
// the foreground calendar drains. The cost is that the engine clock runs
// to the timer's expiry even when the future completes first.
func (f *Future) WaitTimeout(p *Proc, d Time) bool {
	if f.done {
		return true
	}
	if d < 0 {
		panic("sim: negative timeout")
	}
	e := f.eng
	// settled flips synchronously when completion or the timer fires
	// first, so exactly one of them schedules the wake for p.
	settled, completed := false, false
	fire := func(ok bool) {
		if settled {
			return
		}
		settled = true
		completed = ok
		e.wake(p)
	}
	f.onComplete = append(f.onComplete, func() { fire(true) })
	e.At(e.now+d, func() { fire(false) })
	p.park()
	return completed
}

// WaitAll suspends p until every future in fs has completed.
func WaitAll(p *Proc, fs ...*Future) {
	for _, f := range fs {
		f.Wait(p)
	}
}

// WaitGroup counts outstanding work items, like sync.WaitGroup but for
// simulated processes.
type WaitGroup struct {
	eng     *Engine
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup with a zero count.
func (e *Engine) NewWaitGroup() *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the counter by k.
func (w *WaitGroup) Add(k int) {
	w.n += k
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.release()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

func (w *WaitGroup) release() {
	for _, p := range w.waiters {
		w.eng.wake(p)
	}
	w.waiters = nil
}

// Wait suspends p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
