package sim

import "math/rand"

// Proc is a simulation process: a Go function running on its own goroutine
// under its domain's strict alternation discipline. At any instant either
// the domain's dispatch loop or exactly one of its processes is executing;
// control transfers happen only at park points (Sleep, Future.Wait,
// Resource.Acquire, Queue ops). On a classic engine there is exactly one
// domain, so this is the engine-wide single-runner guarantee; on a sharded
// engine processes of different domains run concurrently but never touch
// each other's state except through Proc.Post.
//
// A Proc must not be shared across goroutines and must only be used by the
// body function it was created for.
type Proc struct {
	eng     *Engine
	dom     *domain
	name    string
	resume  chan bool // true = killed by Shutdown
	started bool
	ctx     any // current request context (see SetCtx)

	// live is non-nil for a detached live-measurement process (see
	// LiveExec): the proc runs on an ordinary goroutine against a
	// pluggable clock instead of a domain's event loop. All event-loop
	// facilities (Spawn, At, futures) are unavailable in that mode.
	live *liveState
}

// killed is the sentinel panic value that unwinds a process during
// Engine.Shutdown.
type killed struct{}

// Engine returns the engine the process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// DomainID returns the id of the domain the process belongs to (0 on a
// classic engine and for detached live processes).
func (p *Proc) DomainID() int {
	if p.live != nil {
		return 0
	}
	return p.dom.id
}

// Ctx returns the process's current request context (nil when idle).
// Layers install the in-flight request here so components lower in the
// stack — and cross-cutting concerns like trace-span tagging — can see
// which logical access they are serving without every call signature
// threading it through.
func (p *Proc) Ctx() any { return p.ctx }

// SetCtx installs v as the process's request context. Callers save the
// previous value and restore it when their request completes, so nested
// requests unwind correctly.
func (p *Proc) SetCtx(v any) { p.ctx = v }

// Now returns the current time of the process's domain — simulated time
// for an engine-driven process, the live clock's time for a detached one.
func (p *Proc) Now() Time {
	if p.live != nil {
		return p.live.clock.Now()
	}
	return p.dom.now
}

// Rand returns the deterministic random source of the process's domain.
// Runtime code must draw randomness through here (not Engine.Rand) so
// that a domain's random stream stays independent of other domains.
// Detached live processes own a private RNG, so concurrent workers never
// share one stream.
func (p *Proc) Rand() *rand.Rand {
	if p.live != nil {
		return p.live.rng
	}
	return p.dom.Rand()
}

// NextRequestID returns a fresh request identifier from the process's
// domain (see Engine.NextRequestID). Detached live processes draw from
// their LiveExec's atomic counter.
func (p *Proc) NextRequestID() uint64 {
	if p.live != nil {
		return p.live.exec.ids.Add(1)
	}
	return p.dom.nextRequestID()
}

// NewFuture returns an incomplete Future bound to the process's domain.
func (p *Proc) NewFuture() *Future {
	if p.live != nil {
		panic("sim: futures are not available on a detached live proc")
	}
	return &Future{dom: p.dom}
}

// Spawn creates a process in the caller's domain that begins executing
// body at the caller's current simulated time. Runtime code must spawn
// through here (not Engine.Spawn, whose cursor is a construction-time
// concept).
func (p *Proc) Spawn(name string, body func(*Proc)) *Proc {
	if p.live != nil {
		panic("sim: Spawn is not available on a detached live proc")
	}
	return p.dom.spawn(p.dom.now, name, body, false)
}

// Spawn creates a process in the construction-cursor domain that begins
// executing body at the current simulated time (after already-scheduled
// events at that time). It may be called before Run or from simulation
// context of that domain.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return e.cur.spawn(e.cur.now, name, body, false)
}

// SpawnAt creates a process that begins executing body at absolute time t.
func (e *Engine) SpawnAt(t Time, name string, body func(*Proc)) *Proc {
	return e.cur.spawn(t, name, body, false)
}

// SpawnDaemon creates an infrastructure process (e.g. a server worker
// loop) that is expected to block forever once the workload drains: it is
// excluded from deadlock detection. Its goroutine remains parked when the
// simulation ends.
func (e *Engine) SpawnDaemon(name string, body func(*Proc)) *Proc {
	return e.cur.spawn(e.cur.now, name, body, true)
}

func (d *domain) spawn(t Time, name string, body func(*Proc), daemon bool) *Proc {
	e := d.eng
	p := &Proc{eng: e, dom: d, name: name, resume: make(chan bool)}
	if !daemon {
		d.live[p] = struct{}{}
	}
	d.procs[p] = struct{}{}
	d.schedule(t, func() {
		p.started = true
		if tr := e.tracer; tr != nil && !e.shardingOn {
			tr.ProcStarted(p)
		}
		go func() {
			defer func() {
				// A Shutdown kill unwinds silently; real panics from the
				// simulation program are trapped and re-raised on the
				// dispatching goroutine inside Run.
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						d.trap = r
					}
				} else if tr := e.tracer; tr != nil && !e.shardingOn {
					// Safe: the dispatch loop is blocked on yield below, so
					// the tracer still sees serialized calls.
					tr.ProcEnded(p)
				}
				delete(d.live, p) // safe: dispatch loop is blocked on yield below
				delete(d.procs, p)
				d.yield <- struct{}{}
			}()
			body(p)
		}()
		d.waitYield()
	}, false)
	return p
}

// park suspends the calling process and returns control to its domain's
// dispatch loop. The process stays suspended until some event callback
// calls unpark, or Engine.Shutdown kills it.
func (p *Proc) park() {
	p.dom.yield <- struct{}{}
	if <-p.resume {
		panic(killed{})
	}
}

// unpark transfers control from the dispatch loop to process p and blocks
// until p parks again or terminates. It must be called only from an event
// callback (dispatch context), never from another process.
func (d *domain) unpark(p *Proc) {
	p.resume <- false
	d.waitYield()
}

// At schedules fn as a foreground event at absolute time t in p's
// domain. It is the process-scoped counterpart of Engine.At: the event
// runs on p's own calendar, so it is safe (and deterministic) in
// sharded runs where the engine-level cursor is construction-only.
func (p *Proc) At(t Time, fn func()) {
	if p.live != nil {
		panic("sim: At is not available on a detached live proc")
	}
	p.dom.schedule(t, fn, false)
}

// After schedules fn d nanoseconds from now in p's domain (see At).
func (p *Proc) After(d Time, fn func()) {
	if p.live != nil {
		panic("sim: After is not available on a detached live proc")
	}
	p.dom.schedule(p.dom.now+d, fn, false)
}

// Sleep suspends the process for d simulated nanoseconds. Zero d yields to
// other events scheduled at the current time. On a detached live proc the
// call maps onto the live clock's Sleep: real elapsed time under a wall
// clock, a cursor advance under a virtual one.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if p.live != nil {
		p.live.clock.Sleep(d)
		return
	}
	dom := p.dom
	dom.scheduleWake(dom.now+d, p, false)
	p.park()
}

// Future is a one-shot completion that processes can wait on. Construct
// with Engine.NewFuture (construction-cursor domain) or Proc.NewFuture.
// All parties to a future — completer and waiters — must belong to its
// domain; cross-domain completion goes through Proc.Post to an event in
// the waiter's domain.
type Future struct {
	dom     *domain
	done    bool
	when    Time
	waiters []*Proc

	// onComplete callbacks run synchronously inside Complete, after the
	// waiters have been scheduled. WaitTimeout uses them to observe
	// completion without registering p as a plain waiter, so completion
	// and timeout can never both wake the same process.
	onComplete []func()
}

// NewFuture returns an incomplete Future bound to the construction-cursor
// domain.
func (e *Engine) NewFuture() *Future { return &Future{dom: e.cur} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// When returns the time the future completed (valid only if Done).
func (f *Future) When() Time { return f.when }

// Complete marks the future done and wakes all waiters. Completing twice
// panics: completion is a one-shot protocol and a double completion always
// indicates a bug in the simulation program.
func (f *Future) Complete() {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.when = f.dom.now
	for _, p := range f.waiters {
		p.dom.wake(p)
	}
	f.waiters = nil
	for _, fn := range f.onComplete {
		fn()
	}
	f.onComplete = nil
}

// Wait suspends p until the future completes. Returns immediately if it
// already has.
func (f *Future) Wait(p *Proc) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, p)
	p.park()
}

// WaitTimeout suspends p until the future completes or d nanoseconds
// elapse, whichever comes first. It reports whether the future completed
// within the window. On timeout the future is left untouched: a later
// Complete still runs (and wakes any other waiters) but no longer
// concerns p.
//
// The timeout timer is a foreground event: a wait on a future that will
// never complete (a dead server's reply) must still count as pending
// work, or the engine would report a spurious deadlock once the rest of
// the foreground calendar drains. The cost is that the engine clock runs
// to the timer's expiry even when the future completes first.
func (f *Future) WaitTimeout(p *Proc, d Time) bool {
	if f.done {
		return true
	}
	if d < 0 {
		panic("sim: negative timeout")
	}
	dom := p.dom
	// settled flips synchronously when completion or the timer fires
	// first, so exactly one of them schedules the wake for p.
	settled, completed := false, false
	fire := func(ok bool) {
		if settled {
			return
		}
		settled = true
		completed = ok
		dom.wake(p)
	}
	f.onComplete = append(f.onComplete, func() { fire(true) })
	dom.schedule(dom.now+d, func() { fire(false) }, false)
	p.park()
	return completed
}

// WaitAll suspends p until every future in fs has completed.
func WaitAll(p *Proc, fs ...*Future) {
	for _, f := range fs {
		f.Wait(p)
	}
}

// WaitGroup counts outstanding work items, like sync.WaitGroup but for
// simulated processes. As with Future, all parties must belong to one
// domain.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup with a zero count.
func (e *Engine) NewWaitGroup() *WaitGroup { return &WaitGroup{} }

// NewWaitGroup returns a WaitGroup with a zero count.
func (p *Proc) NewWaitGroup() *WaitGroup { return &WaitGroup{} }

// Add increments the counter by k.
func (w *WaitGroup) Add(k int) {
	w.n += k
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.release()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

func (w *WaitGroup) release() {
	for _, p := range w.waiters {
		p.dom.wake(p)
	}
	w.waiters = nil
}

// Wait suspends p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
