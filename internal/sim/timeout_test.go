package sim

import "testing"

func TestWaitTimeoutCompletesFirst(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.At(Millisecond, func() { f.Complete() })
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = f.WaitTimeout(p, 10*Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("WaitTimeout = false, want completion")
	}
	if at != Millisecond {
		t.Errorf("woke at %v, want completion time %v", at, Millisecond)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	// The future never completes: the waiter must time out rather than
	// deadlock — the timeout timer is a foreground event.
	e := NewEngine(1)
	f := e.NewFuture()
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = f.WaitTimeout(p, 5*Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("WaitTimeout = true on a future that never completed")
	}
	if at != 5*Millisecond {
		t.Errorf("woke at %v, want timeout expiry %v", at, 5*Millisecond)
	}
	if f.Done() {
		t.Error("timeout completed the future")
	}
}

func TestWaitTimeoutAlreadyDone(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		f.Complete()
		got = f.WaitTimeout(p, Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != 0 {
		t.Errorf("WaitTimeout on done future = (%v at %v), want immediate true", got, at)
	}
}

// TestWaitTimeoutLateCompletion is the recovery-path protocol: after a
// timeout the abandoned future may still complete (a slow server finally
// replying). The late completion must not wake or disturb the timed-out
// process, but must still wake plain waiters.
func TestWaitTimeoutLateCompletion(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.At(8*Millisecond, func() { f.Complete() })
	wakes := 0
	var plainAt Time
	e.Spawn("timed", func(p *Proc) {
		if f.WaitTimeout(p, 2*Millisecond) {
			t.Error("timed waiter saw completion before its timeout")
		}
		wakes++
		// Sleep past the late completion; a double wake would resume the
		// sleep early or panic the engine.
		p.Sleep(10 * Millisecond)
		wakes++
	})
	e.Spawn("plain", func(p *Proc) {
		f.Wait(p)
		plainAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Errorf("timed waiter woke %d times, want 2", wakes)
	}
	if plainAt != 8*Millisecond {
		t.Errorf("plain waiter woke at %v, want %v", plainAt, 8*Millisecond)
	}
}

// TestWaitTimeoutSameInstant pins the tie-break: a completion scheduled
// at exactly the timeout's expiry, but earlier in calendar order, wins.
func TestWaitTimeoutSameInstant(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	// Scheduled before the waiter even starts, so at t=5ms this event
	// precedes the timeout timer registered later.
	e.At(5*Millisecond, func() { f.Complete() })
	var got bool
	e.Spawn("waiter", func(p *Proc) {
		got = f.WaitTimeout(p, 5*Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("completion at the same instant (earlier seq) lost to the timeout")
	}
}

func TestWaitTimeoutNegativePanics(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.Spawn("waiter", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative timeout did not panic")
			}
		}()
		f.WaitTimeout(p, -1)
	})
	// The panic is trapped by the deferred recover inside the proc body,
	// so Run itself succeeds.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
