package sim

// Tracer receives structured events from the engine and its primitives:
// event dispatch, process lifecycle, and resource admission. It is the
// extension point the observability layer (internal/obs) plugs into.
//
// Every callback runs in simulation context — the engine serializes them
// with event callbacks and process execution, so implementations need no
// locking as long as their state is only read from simulation context or
// after Run has returned (the engine's channel handshakes establish the
// happens-before edges the race detector needs).
//
// An engine without a tracer pays only a nil check per hook site; no
// allocations, no calls, no change to the event schedule. Attaching a
// tracer must not perturb simulated time either: callbacks observe the
// simulation, they never consume simulated time.
type Tracer interface {
	// EventDispatched fires after each event callback is popped from the
	// calendar, immediately before it runs. nevents counts dispatched
	// events including this one.
	EventDispatched(now Time, nevents uint64)

	// ProcStarted fires when a spawned process begins executing its body.
	ProcStarted(p *Proc)

	// ProcEnded fires when a process body returns (not when Shutdown
	// unwinds a parked daemon).
	ProcEnded(p *Proc)

	// ResourceQueued fires when a request for n units cannot be granted
	// immediately and the process parks in the FIFO queue.
	ResourceQueued(r *Resource, p *Proc, n int)

	// ResourceAcquired fires when n units are granted; waited is how long
	// the request queued (0 for immediate grants).
	ResourceAcquired(r *Resource, n int, waited Time)

	// ResourceReleased fires after n units are returned, before queued
	// waiters are admitted.
	ResourceReleased(r *Resource, n int)
}

// SetTracer attaches t to the engine; nil detaches. It must be called
// from outside a running simulation (typically right after NewEngine) so
// every subsequent event is observed.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// GetTracer returns the attached tracer, or nil.
func (e *Engine) GetTracer() Tracer { return e.tracer }

// AtBackground schedules fn at absolute time t as a background event in
// the construction-cursor domain. Background events share the calendar
// and its deterministic (time, seq) order with ordinary events, but they
// do not keep the simulation alive: Run and RunUntil return once no
// foreground events remain, leaving pending background events unfired.
// Periodic infrastructure — metric samplers, watchdogs — uses this so
// that instrumentation never extends a run beyond the workload's last
// event.
func (e *Engine) AtBackground(t Time, fn func()) { e.cur.schedule(t, fn, true) }

// AfterBackground schedules fn d nanoseconds from now as a background
// event (see AtBackground).
func (e *Engine) AfterBackground(d Time, fn func()) { e.cur.schedule(e.cur.now+d, fn, true) }

// SleepBackground suspends the process for d simulated nanoseconds using
// a background wake-up: the sleep fires only while foreground events
// keep the simulation alive. A sampler daemon loops on this so its
// periodic ticks never prolong the run (the final pending tick is simply
// never dispatched, and Shutdown unwinds the parked daemon).
func (p *Proc) SleepBackground(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	dom := p.dom
	dom.scheduleWake(dom.now+d, p, true)
	p.park()
}
