package sim

import (
	"math/rand"
	"sync/atomic"
)

// This file is the live-measurement escape hatch: it lets ordinary Go
// goroutines drive the same Proc-based I/O stack (ioreq layers,
// middleware, trace collectors) that simulated processes use, against a
// pluggable clock instead of the event calendar. The simulation
// semantics are untouched — a live Proc never parks, never schedules
// events, and never enters a domain's dispatch loop; it only reads time,
// sleeps on its clock, draws from a private RNG, and mints request IDs
// from an atomic counter. Everything downstream of those five facilities
// (metrics, block accounting, window estimation) is pure over the
// timestamps it is handed, which is why a wall-clock or virtual-clock
// run flows through the identical code path as a simulated one.

// TimeSource yields the current time on some timeline — simulated
// (*Engine satisfies it) or live (wall-clock and virtual clocks in
// internal/clock).
type TimeSource interface {
	Now() Time
}

var _ TimeSource = (*Engine)(nil)

// LiveClock is the clock a detached live process runs against: a
// TimeSource plus the ability to spend time on it. A wall clock sleeps
// for real; a virtual clock advances a cursor.
type LiveClock interface {
	TimeSource
	Sleep(d Time)
}

// liveState carries the per-proc live facilities that replace the
// domain's: the clock, a private deterministic RNG, and a handle to the
// executor's shared request-ID counter.
type liveState struct {
	clock LiveClock
	rng   *rand.Rand
	exec  *LiveExec
}

// LiveExec mints detached live processes bound to an engine. The engine
// is never Run — it exists so that p.Engine() resolves to a real engine
// for observer lookup (obs.Get) and so request IDs stay unique across
// all workers of one live run. Unlike simulated procs, live procs run
// on plain goroutines with no alternation discipline: any number may
// execute concurrently, so everything they share (the obs registry's
// atomic counters, the caller's own collectors) must be thread-safe.
type LiveExec struct {
	eng *Engine
	ids atomic.Uint64
}

// NewLiveExec returns an executor bound to e. The engine should be a
// fresh NewEngine that is never Run: its calendar stays empty and only
// its identity (observer attachment) and nothing else is used.
func NewLiveExec(e *Engine) *LiveExec { return &LiveExec{eng: e} }

// Engine returns the (dormant) engine live procs report as theirs.
func (le *LiveExec) Engine() *Engine { return le.eng }

// NewProc returns a detached live process that tells time through clock
// and draws randomness from a private rand.New(rand.NewSource(seed)).
// The caller runs its body on an ordinary goroutine; the Proc is just
// the capability handle the ioreq/middleware stack expects. Event-loop
// facilities (Spawn, At, After, futures) panic on the returned Proc.
func (le *LiveExec) NewProc(name string, clock LiveClock, seed int64) *Proc {
	return &Proc{
		eng:  le.eng,
		name: name,
		live: &liveState{
			clock: clock,
			rng:   rand.New(rand.NewSource(seed)),
			exec:  le,
		},
	}
}
