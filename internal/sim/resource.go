package sim

// Resource is a counted resource with strict-FIFO admission, modelling
// things like a disk head (capacity 1), SSD channels (capacity k), or a
// NIC. Waiters may request multiple units; admission is strictly in
// arrival order — if the head waiter cannot be satisfied, later waiters
// are not admitted ahead of it (no barging, no starvation).
//
// A resource belongs to the domain that was the construction cursor at
// NewResource and must only be used from that domain's processes.
type Resource struct {
	eng   *Engine
	dom   *domain
	name  string
	cap   int
	inUse int

	// queue[qhead:] holds the waiting requests. Popping advances qhead
	// instead of re-slicing the front away, so the backing array keeps
	// its full capacity and steady-state contention runs allocation-free;
	// the array is compacted (not grown) when the tail hits capacity
	// while dead space remains at the front.
	queue []waitReq
	qhead int

	// Utilization accounting.
	busySince Time // when inUse last went 0→nonzero
	busyTotal Time // accumulated time with inUse > 0
	acquires  uint64
}

type waitReq struct {
	p     *Proc
	n     int
	since Time // when the request joined the queue
}

// NewResource returns a resource with the given capacity (≥ 1), bound to
// the construction-cursor domain.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, dom: e.cur, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) - r.qhead }

// Acquires returns the total number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime returns the accumulated simulated time during which at least
// one unit was held, up to the current time.
func (r *Resource) BusyTime() Time {
	t := r.busyTotal
	if r.inUse > 0 {
		t += r.dom.now - r.busySince
	}
	return t
}

// Utilization returns the fraction of [0, now] during which at least one
// unit was held — the uniform per-resource utilization figure the
// metrics layer samples. now is typically Engine.Now(); a now of 0 (or
// negative) yields 0.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	busy := r.busyTotal
	if r.inUse > 0 && now > r.busySince {
		busy += now - r.busySince
	}
	return float64(busy) / float64(now)
}

// hooks returns the tracer to notify, or nil. Engine-level resource
// hooks are a classic-mode feature: sharded domains dispatch
// concurrently, so a shared tracer would race (the observability layer
// keeps its own thread-safe counters for sharded runs).
func (r *Resource) hooks() Tracer {
	if t := r.eng.tracer; t != nil && !r.eng.shardingOn {
		return t
	}
	return nil
}

// Acquire obtains one unit, suspending p in FIFO order if none is free.
func (r *Resource) Acquire(p *Proc) { r.AcquireN(p, 1) }

// AcquireN obtains n units (1 ≤ n ≤ Cap), suspending p in FIFO order until
// they are all available. Units are granted atomically.
func (r *Resource) AcquireN(p *Proc, n int) {
	if n < 1 || n > r.cap {
		panic("sim: AcquireN units out of range for resource " + r.name)
	}
	if r.qhead == len(r.queue) && r.inUse+n <= r.cap {
		r.grant(n)
		if t := r.hooks(); t != nil {
			t.ResourceAcquired(r, n, 0)
		}
		return
	}
	if r.qhead > 0 && len(r.queue) == cap(r.queue) {
		live := copy(r.queue, r.queue[r.qhead:])
		clearTail(r.queue[live:])
		r.queue = r.queue[:live]
		r.qhead = 0
	}
	r.queue = append(r.queue, waitReq{p: p, n: n, since: r.dom.now})
	if t := r.hooks(); t != nil {
		t.ResourceQueued(r, p, n)
	}
	p.park()
	// The releaser granted our units before waking us.
}

// clearTail zeroes dead queue slots so they do not pin procs for GC.
func clearTail(dead []waitReq) {
	for i := range dead {
		dead[i] = waitReq{}
	}
}

// TryAcquire obtains a unit without blocking; it reports whether it
// succeeded.
func (r *Resource) TryAcquire() bool { return r.TryAcquireN(1) }

// TryAcquireN obtains n units without blocking; it reports whether it
// succeeded. It fails if waiters are queued, preserving FIFO order.
func (r *Resource) TryAcquireN(n int) bool {
	if n < 1 || n > r.cap {
		panic("sim: TryAcquireN units out of range for resource " + r.name)
	}
	if r.qhead == len(r.queue) && r.inUse+n <= r.cap {
		r.grant(n)
		if t := r.hooks(); t != nil {
			t.ResourceAcquired(r, n, 0)
		}
		return true
	}
	return false
}

func (r *Resource) grant(n int) {
	if r.inUse == 0 {
		r.busySince = r.dom.now
	}
	r.inUse += n
	r.acquires++
}

// Release returns one unit.
func (r *Resource) Release() { r.ReleaseN(1) }

// ReleaseN returns n units and admits as many queued waiters (in FIFO
// order) as now fit.
func (r *Resource) ReleaseN(n int) {
	if n < 1 || n > r.inUse {
		panic("sim: ReleaseN of units not held on resource " + r.name)
	}
	r.inUse -= n
	if r.inUse == 0 {
		r.busyTotal += r.dom.now - r.busySince
	}
	if t := r.hooks(); t != nil {
		t.ResourceReleased(r, n)
	}
	for r.qhead < len(r.queue) && r.inUse+r.queue[r.qhead].n <= r.cap {
		w := r.queue[r.qhead]
		r.queue[r.qhead] = waitReq{}
		r.qhead++
		if r.qhead == len(r.queue) {
			r.queue = r.queue[:0]
			r.qhead = 0
		}
		r.grant(w.n)
		if t := r.hooks(); t != nil {
			t.ResourceAcquired(r, w.n, r.dom.now-w.since)
		}
		w.p.dom.wake(w.p)
	}
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// Queue is an unbounded FIFO channel between simulation processes of one
// domain. Put never blocks; Get suspends the caller until an item is
// available.
type Queue struct {
	eng     *Engine
	items   []interface{}
	ihead   int
	waiters []*Proc
	maxLen  int
}

// NewQueue returns an empty queue.
func (e *Engine) NewQueue() *Queue { return &Queue{eng: e} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.ihead }

// MaxLen returns the high-water mark of the queue length.
func (q *Queue) MaxLen() int { return q.maxLen }

// Put appends an item and wakes one waiting getter, if any.
func (q *Queue) Put(item interface{}) {
	if q.ihead > 0 && len(q.items) == cap(q.items) {
		live := copy(q.items, q.items[q.ihead:])
		for i := live; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:live]
		q.ihead = 0
	}
	q.items = append(q.items, item)
	if n := len(q.items) - q.ihead; n > q.maxLen {
		q.maxLen = n
	}
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		p.dom.wake(p)
	}
}

// Get removes and returns the oldest item, suspending p until one exists.
func (q *Queue) Get(p *Proc) interface{} {
	for q.ihead == len(q.items) {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	item := q.items[q.ihead]
	q.items[q.ihead] = nil
	q.ihead++
	if q.ihead == len(q.items) {
		q.items = q.items[:0]
		q.ihead = 0
	}
	return item
}
