package sim

import (
	"runtime"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if Millisecond.Millis() != 1.0 {
		t.Fatalf("Millisecond.Millis() = %v, want 1", Millisecond.Millis())
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Fatalf("FromSeconds(-1) = %v, want 0", got)
	}
}

func TestTransferTime(t *testing.T) {
	// 1 MiB at 1 MiB/s takes one second.
	if got := TransferTime(1<<20, 1<<20); got != Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if got := TransferTime(0, 1<<20); got != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", got)
	}
	// Tiny transfers round up to 1ns rather than vanishing.
	if got := TransferTime(1, 1e18); got != 1 {
		t.Fatalf("TransferTime tiny = %v, want 1ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{4 * Microsecond, "4us"},
		{5, "5ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: FIFO after the first t=10 event
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
	if e.Events() != 3 {
		t.Fatalf("Events = %d, want 3", e.Events())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	if err := e.RunUntil(15); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d events by t=15, want 1", ran)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d events total, want 2", ran)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.Spawn("p", func(p *Proc) {
		at1 = p.Now()
		p.Sleep(5 * Millisecond)
		at2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 0 || at2 != 5*Millisecond {
		t.Fatalf("sleep: at1=%v at2=%v", at1, at2)
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		for i := 0; i < 3; i++ {
			name := string(rune('a' + i))
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					log = append(log, p.Name())
					p.Sleep(Time(1+j) * Millisecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("log lengths %d, %d, want 9", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
	// First round must run in spawn order.
	if a[0] != "a" || a[1] != "b" || a[2] != "c" {
		t.Fatalf("spawn order violated: %v", a[:3])
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	var waited Time
	e.Spawn("waiter", func(p *Proc) {
		f.Wait(p)
		waited = p.Now()
	})
	e.Spawn("completer", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		f.Complete()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !f.Done() || f.When() != 7*Millisecond || waited != 7*Millisecond {
		t.Fatalf("future: done=%v when=%v waited=%v", f.Done(), f.When(), waited)
	}
}

func TestFutureWaitAfterComplete(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	ok := false
	e.Spawn("p", func(p *Proc) {
		f.Complete()
		f.Wait(p) // must not block
		ok = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Wait after Complete blocked")
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.Spawn("p", func(p *Proc) {
		f.Complete()
		defer func() {
			if recover() == nil {
				t.Error("double Complete did not panic")
			}
		}()
		f.Complete()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := e.NewWaitGroup()
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Time(i) * Millisecond
		e.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*Millisecond {
		t.Fatalf("waitgroup released at %v, want 3ms", doneAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { f.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 || de.Procs[0] != "stuck" {
		t.Fatalf("deadlocked procs = %v", de.Procs)
	}
}

func TestDeterministicRand(t *testing.T) {
	e1, e2 := NewEngine(7), NewEngine(7)
	for i := 0; i < 100; i++ {
		if e1.Rand().Int63() != e2.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestShutdownUnwindsDaemons(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		e := NewEngine(1)
		q := e.NewQueue()
		// Daemon worker that would otherwise park forever.
		e.SpawnDaemon("worker", func(p *Proc) {
			for {
				q.Get(p)
			}
		})
		e.Spawn("app", func(p *Proc) {
			q.Put(1)
			p.Sleep(Millisecond)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Fatalf("goroutines grew from %d to %d despite Shutdown", before, after)
	}
}

func TestShutdownUnwindsDeadlockedProcs(t *testing.T) {
	e := NewEngine(1)
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { f.Wait(p) })
	if _, ok := e.Run().(*DeadlockError); !ok {
		t.Fatal("expected deadlock")
	}
	e.Shutdown() // must not hang
	if len(e.procs) != 0 {
		t.Fatalf("procs remain: %d", len(e.procs))
	}
}

func TestShutdownSkipsUnstartedProcs(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("early", func(p *Proc) {})
	e.SpawnAt(10*Second, "late", func(p *Proc) {})
	if err := e.RunUntil(Second); err != nil {
		t.Fatal(err)
	}
	e.Shutdown() // "late" never started; must not hang
	if len(e.procs) != 0 {
		t.Fatalf("procs remain: %d", len(e.procs))
	}
}

func TestShutdownAfterCleanRunIsNoop(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) { p.Sleep(Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
}

func TestProcPanicPropagates(t *testing.T) {
	// A real panic in a process body must not be swallowed by the killed
	// sentinel recovery: it re-raises on the engine goroutine, inside
	// Run, where the caller can see it.
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want the process's panic", r)
		}
	}()
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	_ = e.Run()
	t.Error("Run returned instead of panicking")
}
