package sim

import "testing"

// BenchmarkEngineEventDispatch measures the per-event cost of the
// calendar: a single self-rescheduling event chain dispatched b.N times.
// With no tracer attached this is the uninstrumented hot path; the
// allocation report guards against observability hooks adding per-event
// allocations.
func BenchmarkEngineEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, step)
		}
	}
	e.At(0, step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("dispatched %d of %d events", n, b.N)
	}
}

// BenchmarkResourceAcquireRelease measures an uncontended acquire/release
// pair on a capacity-1 resource from inside a simulation process.
func BenchmarkResourceAcquireRelease(b *testing.B) {
	e := NewEngine(1)
	r := e.NewResource("bench", 1)
	e.Spawn("bench", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Acquire(p)
			r.Release()
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if got := r.Acquires(); got != uint64(b.N) {
		b.Fatalf("acquires = %d, want %d", got, b.N)
	}
}
