package sim

import "testing"

// BenchmarkEngineEventDispatch measures the per-event cost of the
// calendar: a single self-rescheduling event chain dispatched b.N times.
// With no tracer attached this is the uninstrumented hot path; the
// allocation report guards against observability hooks adding per-event
// allocations.
func BenchmarkEngineEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, step)
		}
	}
	e.At(0, step)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("dispatched %d of %d events", n, b.N)
	}
}

// BenchmarkEngineCalendarDepth measures dispatch cost with many timers
// outstanding: each iteration pops the earliest of `depth` pending
// events and pushes a replacement, so every sift traverses a full
// 4-ary heap rather than the trivial 1-element calendar above.
func BenchmarkEngineCalendarDepth(b *testing.B) {
	const depth = 1024
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Time(depth)*Microsecond, step)
		}
	}
	for i := 0; i < depth; i++ {
		e.At(Time(i)*Microsecond, step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n < b.N {
		b.Fatalf("dispatched %d of %d events", n, b.N)
	}
}

// BenchmarkEngineCalendarDepth100k is the same replace-the-minimum
// pattern at 10^5 pending events — the calendar population a
// shardscale-sized run keeps outstanding. It pins the deep-heap sift
// cost that the 1024-deep benchmark above is too shallow to see;
// benchguard guards it alongside the dispatch hot path.
func BenchmarkEngineCalendarDepth100k(b *testing.B) {
	const depth = 100_000
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Time(depth)*Microsecond, step)
		}
	}
	for i := 0; i < depth; i++ {
		e.At(Time(i)*Microsecond, step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n < b.N {
		b.Fatalf("dispatched %d of %d events", n, b.N)
	}
}

// BenchmarkProcSleep measures a full park/unpark round trip: the
// channel handshake plus the wake event, which dominates every
// device-service and think-time wait in a workload run.
func BenchmarkProcSleep(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("sleeper", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures acquire/release on a capacity-1
// resource fought over by four processes, so most acquires enqueue the
// proc and every release hands off to a waiter — the device-queue
// pattern that dominates the disk and server models.
func BenchmarkResourceContention(b *testing.B) {
	const procs = 4
	e := NewEngine(1)
	r := e.NewResource("bench", 1)
	each := b.N / procs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < procs; i++ {
		e.Spawn("worker", func(p *Proc) {
			for j := 0; j < each; j++ {
				r.Acquire(p)
				p.Sleep(Nanosecond)
				r.Release()
			}
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if got, want := r.Acquires(), uint64(procs*each); got != want {
		b.Fatalf("acquires = %d, want %d", got, want)
	}
}

// BenchmarkResourceAcquireRelease measures an uncontended acquire/release
// pair on a capacity-1 resource from inside a simulation process.
func BenchmarkResourceAcquireRelease(b *testing.B) {
	e := NewEngine(1)
	r := e.NewResource("bench", 1)
	e.Spawn("bench", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Acquire(p)
			r.Release()
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if got := r.Acquires(); got != uint64(b.N) {
		b.Fatalf("acquires = %d, want %d", got, b.N)
	}
}
