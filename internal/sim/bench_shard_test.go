package sim

import (
	"fmt"
	"os"
	"testing"
)

// runShardMacro executes the shard-scaling macro workload once on a
// sharded engine with the given worker count: ~10^5 processes spread
// over shardMacroDomains domains, each domain a server-like unit whose
// processes contend on a local service resource (the device-queue
// pattern of a cluster run) and send one cross-domain mail at the end.
// The event total is identical for every worker count — only the
// wall-clock distribution across cores changes — so the w1/w2/w4/w8
// ns/op ratios in BENCH_sim.json are the engine's shard-scaling curve.
func runShardMacro(b *testing.B, workers int) {
	const (
		domains        = 128
		procsPerDomain = 800 // 102,400 processes total
		rounds         = 16
		lookahead      = 100 * Microsecond
	)
	e := NewEngine(7)
	e.EnableSharding(workers)
	e.SetLookahead(lookahead)
	doms := make([]int, domains)
	for d := range doms {
		doms[d] = e.NewDomain(fmt.Sprintf("d%d", d))
	}
	for di, dom := range doms {
		prev := e.SetDomain(dom)
		svc := e.NewResource(fmt.Sprintf("svc%d", di), 4)
		next := doms[(di+1)%domains]
		for j := 0; j < procsPerDomain; j++ {
			j := j
			e.Spawn("w", func(p *Proc) {
				for k := 0; k < rounds; k++ {
					svc.Acquire(p)
					p.Sleep(Time(1+(j+k)%7) * Microsecond)
					svc.Release()
				}
				if j == 0 {
					p.Post(next, p.Now()+lookahead, func(Ctx) {})
				}
			})
		}
		e.SetDomain(prev)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

// BenchmarkShardScaling is the shard-scaling macro benchmark: the
// 10^5-proc workload above at 1, 2, 4, and 8 shard workers. It runs
// only when BPS_SHARD_BENCH is set (make bench sets it when recording
// BENCH_sim.json): one pass takes seconds, which would dominate every
// casual `go test -bench` / `make bench-all` sweep. To run it by hand:
//
//	BPS_SHARD_BENCH=1 go test -run '^$' -bench ShardScaling -benchtime=1x ./internal/sim
//
// Speedup is only observable with GOMAXPROCS ≥ the worker count; on a
// single-core host every variant measures the same serialized work
// plus window-synchronization overhead.
func BenchmarkShardScaling(b *testing.B) {
	if os.Getenv("BPS_SHARD_BENCH") == "" {
		b.Skip("long macro benchmark: set BPS_SHARD_BENCH=1 (as make bench does); -benchtime=1x for a single pass")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runShardMacro(b, workers)
			}
		})
	}
}
