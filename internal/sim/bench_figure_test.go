// Macro-benchmarks: whole paper figures reproduced end to end. These
// live in package sim_test because they drive the engine through the
// experiments layer, which package sim cannot import.
package sim_test

import (
	"testing"

	"bps/internal/experiments"
)

// benchFigure reproduces one figure per iteration at 1/1024 of the
// paper's data volume with a fresh (memoization-free) suite each time.
// Parallel: 1 keeps the measurement a pure engine/workload number,
// independent of GOMAXPROCS.
func benchFigure(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Params{Scale: 1.0 / 1024, Seed: 42, Parallel: 1})
		if _, err := s.Figure(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 is the record-size sweep over HDD and SSD (20 runs) —
// the suite's broadest single figure and the macro guard on engine
// regressions that micro-benchmarks miss.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFigure9 is the process-count sweep on the parallel stack, the
// most contention-heavy figure (up to 32 procs fighting per server).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, "fig9") }
