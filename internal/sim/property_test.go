package sim

// Property tests for the engine's core invariants: schedule determinism
// under random programs, resource accounting bounds, and no lost
// wakeups.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProgram runs a randomized mix of sleeps and resource usage and
// returns an execution fingerprint (completion times).
func randomProgram(seed int64, procs, steps, capn int) []Time {
	e := NewEngine(seed)
	r := e.NewResource("res", capn)
	ends := make([]Time, procs)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	type plan struct {
		sleeps []Time
		use    []bool
	}
	plans := make([]plan, procs)
	for i := range plans {
		plans[i].sleeps = make([]Time, steps)
		plans[i].use = make([]bool, steps)
		for s := 0; s < steps; s++ {
			plans[i].sleeps[s] = Time(rng.Int63n(int64(Millisecond)))
			plans[i].use[s] = rng.Intn(2) == 0
		}
	}
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for s := 0; s < steps; s++ {
				if plans[i].use[s] {
					r.Acquire(p)
					p.Sleep(plans[i].sleeps[s])
					r.Release()
				} else {
					p.Sleep(plans[i].sleeps[s])
				}
			}
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	e.Shutdown()
	return ends
}

// Property: identical seeds give identical completion fingerprints.
func TestEngineScheduleDeterminismProperty(t *testing.T) {
	prop := func(seed int64, pRaw, cRaw uint8) bool {
		procs := int(pRaw%6) + 1
		capn := int(cRaw%3) + 1
		a := randomProgram(seed, procs, 8, capn)
		b := randomProgram(seed, procs, 8, capn)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-c resource never grants more than c units, and
// every waiter is eventually served (the program drains without
// deadlock).
func TestResourceNeverOversubscribedProperty(t *testing.T) {
	prop := func(seed int64, pRaw, cRaw uint8) bool {
		procs := int(pRaw%8) + 1
		capn := int(cRaw%4) + 1
		e := NewEngine(seed)
		r := e.NewResource("res", capn)
		ok := true
		rng := rand.New(rand.NewSource(seed))
		durs := make([][]Time, procs)
		for i := range durs {
			durs[i] = []Time{
				Time(rng.Int63n(int64(Millisecond)) + 1),
				Time(rng.Int63n(int64(Millisecond)) + 1),
			}
		}
		for i := 0; i < procs; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for _, d := range durs[i] {
					r.Acquire(p)
					if r.InUse() > r.Cap() {
						ok = false
					}
					p.Sleep(d)
					r.Release()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false // lost wakeup would deadlock
		}
		e.Shutdown()
		return ok && r.InUse() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time of a capacity-1 resource equals the sum of
// hold durations regardless of interleaving.
func TestResourceBusyAccountingProperty(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		procs := int(pRaw%5) + 1
		e := NewEngine(seed)
		r := e.NewResource("res", 1)
		rng := rand.New(rand.NewSource(seed))
		var want Time
		for i := 0; i < procs; i++ {
			hold := Time(rng.Int63n(int64(Millisecond)) + 1)
			gap := Time(rng.Int63n(int64(Millisecond)))
			want += hold
			e.Spawn("p", func(p *Proc) {
				p.Sleep(gap)
				r.Acquire(p)
				p.Sleep(hold)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		e.Shutdown()
		return r.BusyTime() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
