package sim

import (
	"sync"
	"testing"
)

// TestResourceUtilizationConcurrentAcquireRelease checks Utilization's
// accounting while many procs acquire and release concurrently in
// simulated time: live holds must count, and the value must stay within
// [0, 1] at every observation point.
func TestResourceUtilizationConcurrentAcquireRelease(t *testing.T) {
	e := NewEngine(7)
	r := e.NewResource("disk", 2)
	type sample struct {
		at   Time
		util float64
	}
	var samples []sample
	observe := func(p *Proc) {
		samples = append(samples, sample{p.Now(), r.Utilization(p.Now())})
	}
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn("user", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // stagger arrivals
			r.Acquire(p)
			observe(p) // mid-hold: live busy time must be included
			p.Sleep(10 * Millisecond)
			observe(p)
			r.Release()
			observe(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.util < 0 || s.util > 1 {
			t.Fatalf("Utilization(%v) = %v, out of [0,1]", s.at, s.util)
		}
	}
	// Six 10ms holds on capacity 2 with 1ms staggering: the resource is
	// busy essentially the whole run, so the final utilization computed
	// at run end must match BusyTime/now exactly once nothing is live.
	now := e.Now()
	if got, want := r.Utilization(now), float64(r.BusyTime())/float64(now); got != want {
		t.Fatalf("final Utilization = %v, want BusyTime/now = %v", got, want)
	}
	if r.InUse() != 0 {
		t.Fatalf("in use at end = %d, want 0", r.InUse())
	}
}

// TestResourceUtilizationParallelEngines runs many independent engines
// on parallel goroutines — the shape of a parallel experiment sweep —
// each hammering its own resource. Engines share no state, so this must
// be clean under the race detector, and every engine must compute the
// same deterministic utilization.
func TestResourceUtilizationParallelEngines(t *testing.T) {
	const workers = 8
	utils := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(42) // same seed: identical runs
			r := e.NewResource("disk", 1)
			for i := 0; i < 4; i++ {
				e.Spawn("user", func(p *Proc) {
					r.Acquire(p)
					p.Sleep(5 * Millisecond)
					r.Release()
					p.Sleep(Millisecond)
				})
			}
			if err := e.Run(); err != nil {
				t.Error(err)
				return
			}
			utils[w] = r.Utilization(e.Now())
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if utils[w] != utils[0] {
			t.Fatalf("engine %d utilization %v != engine 0 %v (determinism broken)", w, utils[w], utils[0])
		}
	}
	if utils[0] <= 0 || utils[0] > 1 {
		t.Fatalf("utilization = %v, out of (0,1]", utils[0])
	}
}
