// Package sim implements a deterministic discrete-event simulation engine
// used as the execution substrate for the simulated I/O stack.
//
// The engine is process-oriented in the style of SimPy: simulation
// processes are ordinary Go functions running on goroutines, but the engine
// guarantees that at most one process (or event callback) executes at a
// time and that execution order is fully determined by (event time, FIFO
// sequence). Given the same seed and the same program, a simulation run is
// bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in simulated time, measured in nanoseconds since the
// start of the simulation. It is deliberately distinct from time.Time and
// time.Duration: simulated time has no wall-clock anchor and must support
// exact integer arithmetic for reproducibility.
type Time int64

// Duration constants in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = 1<<63 - 1

// Seconds converts a simulated time or duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a simulated time or duration to floating-point
// milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a simulated time or duration to floating-point
// microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to simulated time, rounding
// to the nearest nanosecond.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*float64(Second) + 0.5)
}

// TransferTime returns the simulated time needed to move size bytes at
// bytesPerSec, rounded up to a whole nanosecond so that nonzero transfers
// always consume nonzero time.
func TransferTime(size int64, bytesPerSec float64) Time {
	if size <= 0 || bytesPerSec <= 0 {
		return 0
	}
	t := Time(float64(size) / bytesPerSec * float64(Second))
	if t <= 0 {
		t = 1
	}
	return t
}

// String renders the time using the most natural unit, for logs and tests.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
