package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("disk", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Millisecond)
			r.Release()
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyTime() != 30*Millisecond {
		t.Fatalf("busy = %v, want 30ms", r.BusyTime())
	}
	if r.Acquires() != 3 {
		t.Fatalf("acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("ssd", 2)
	var last Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Millisecond)
			r.Release()
			last = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Four 10ms jobs on capacity 2 finish in two waves: 20ms total.
	if last != 20*Millisecond {
		t.Fatalf("last completion = %v, want 20ms", last)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("disk", 1)
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		n := name
		e.Spawn(n, func(p *Proc) {
			r.Acquire(p)
			order = append(order, n)
			p.Sleep(Millisecond)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"a", "b", "c", "d"} {
		if order[i] != n {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("disk", 1)
	e.Spawn("p", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("TryAcquire on idle resource failed")
		}
		if r.TryAcquire() {
			t.Error("TryAcquire on full resource succeeded")
		}
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("disk", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUse(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("disk", 1)
	e.Spawn("p", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 1 {
				t.Errorf("InUse inside Use = %d, want 1", r.InUse())
			}
			p.Sleep(Millisecond)
		})
		if r.InUse() != 0 {
			t.Errorf("InUse after Use = %d, want 0", r.InUse())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	q := e.NewQueue()
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Millisecond)
			q.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("queue order = %v", got)
		}
	}
	if q.MaxLen() != 1 {
		t.Fatalf("MaxLen = %d, want 1", q.MaxLen())
	}
}

func TestQueueBuffered(t *testing.T) {
	e := NewEngine(1)
	q := e.NewQueue()
	q.Put("x")
	q.Put("y")
	var got []string
	e.Spawn("c", func(p *Proc) {
		got = append(got, q.Get(p).(string), q.Get(p).(string))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v", got)
	}
}

// Property: for any set of job durations on a capacity-1 resource, the
// makespan equals the sum of durations (full serialization) and the
// resource's busy time equals the makespan.
func TestResourceSerializationProperty(t *testing.T) {
	prop := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 64 {
			durs = durs[:64]
		}
		e := NewEngine(1)
		r := e.NewResource("disk", 1)
		var sum Time
		for _, d := range durs {
			dur := Time(d) + 1 // ≥ 1ns
			sum += dur
			e.Spawn("job", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(dur)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == sum && r.BusyTime() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a capacity-c resource, makespan of n equal jobs of duration
// d is ceil(n/c)*d.
func TestResourceWavesProperty(t *testing.T) {
	prop := func(n, c uint8, d uint16) bool {
		jobs := int(n%32) + 1
		capn := int(c%4) + 1
		dur := Time(d) + 1
		e := NewEngine(1)
		r := e.NewResource("res", capn)
		for i := 0; i < jobs; i++ {
			e.Spawn("job", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(dur)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		waves := Time((jobs + capn - 1) / capn)
		return e.Now() == waves*dur
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceAcquireN(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("channels", 4)
	var order []string
	// a takes 3 units for 10ms; b wants 2 and must wait even though c (1
	// unit) would fit — strict FIFO.
	e.Spawn("a", func(p *Proc) {
		r.AcquireN(p, 3)
		order = append(order, "a")
		p.Sleep(10 * Millisecond)
		r.ReleaseN(3)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(Millisecond)
		r.AcquireN(p, 2)
		order = append(order, "b")
		p.Sleep(10 * Millisecond)
		r.ReleaseN(2)
	})
	e.Spawn("c", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		r.AcquireN(p, 1)
		order = append(order, "c")
		r.ReleaseN(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (strict FIFO)", order, want)
		}
	}
}

func TestResourceAcquireNOutOfRangePanics(t *testing.T) {
	e := NewEngine(1)
	r := e.NewResource("x", 2)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("AcquireN(3) on cap-2 resource did not panic")
			}
		}()
		r.AcquireN(p, 3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
