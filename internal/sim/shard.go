package sim

import (
	"fmt"
	"sort"
)

// This file implements the sharded execution mode: one engine, many
// domains (per-node event calendars), executed concurrently by a fixed
// pool of shard workers under conservative lookahead windows.
//
// Protocol (synchronous conservative / bounded-lag):
//
//	m       = min over all domains of the next pending event time
//	horizon = m + lookahead
//
// Every domain may safely dispatch all events with timestamp < horizon,
// because the earliest influence any domain can exert on another is a
// Proc.Post whose delivery time is ≥ sender.now + lookahead ≥ horizon —
// so all cross-domain mail produced inside a window lands in a later
// window. Between windows the coordinator merges all staged mail in the
// deterministic order (deliveryTime, srcDomain, srcSeq) and pushes it
// into the destination calendars. That order — and therefore every
// simulation result — is a pure function of the domain topology and the
// seed: shard workers only decide *which CPU* runs a domain's window,
// never the order of events inside a calendar, so results are
// bit-identical for every worker count (-shards 1, 2, 4, 8, ...).
//
// The lookahead is the minimum cross-domain signalling delay, registered
// by the network layer as its minimum link latency (SetLookahead).

// mail is one staged cross-domain event: fn will run at time at in
// domain dst. (at, src, seq) is the deterministic merge key.
type mail struct {
	at  Time
	seq uint64
	src int32
	dst int32
	fn  func(Ctx)
}

// Ctx is a capability to act inside one domain's execution context.
// Post callbacks receive one so they can read the destination domain's
// clock, schedule follow-up events there, and spawn processes into it —
// the things an event callback may only do in its own domain.
type Ctx struct{ d *domain }

// Now returns the domain's current simulated time.
func (c Ctx) Now() Time { return c.d.now }

// DomainID returns the domain's id.
func (c Ctx) DomainID() int { return c.d.id }

// At schedules fn at absolute time t in the same domain.
func (c Ctx) At(t Time, fn func(Ctx)) {
	d := c.d
	d.schedule(t, func() { fn(Ctx{d}) }, false)
}

// Spawn creates a process in the same domain starting at the current
// time.
func (c Ctx) Spawn(name string, body func(*Proc)) *Proc {
	return c.d.spawn(c.d.now, name, body, false)
}

// EnableSharding switches the engine into sharded mode with the given
// number of shard workers (goroutines executing domain windows; values
// below 1 are clamped to 1). It must be called right after NewEngine,
// before any model construction: only then do NewDomain calls create
// real domains. The worker count affects wall-clock speed only — results
// are bit-identical for every value.
//
// Sharded mode is a distinct semantic mode, not a transparent
// accelerator of classic mode: model layers (netsim, pfs) switch their
// cross-node interactions to mailbox delivery, so sharded results are
// comparable across shard counts but not with classic (-shards 0) runs.
func (e *Engine) EnableSharding(workers int) {
	if workers < 1 {
		workers = 1
	}
	e.shardingOn = true
	e.workers = workers
}

// Sharded reports whether EnableSharding was called. Model layers use it
// to pick between classic blocking interactions and domain mailboxes.
func (e *Engine) Sharded() bool { return e.shardingOn }

// Workers returns the shard worker count (1 when not sharded).
func (e *Engine) Workers() int {
	if !e.shardingOn {
		return 1
	}
	return e.workers
}

// NumDomains returns the number of domains (1 classically).
func (e *Engine) NumDomains() int { return len(e.domains) }

// SetLookahead lowers the engine's conservative lookahead to d if it is
// smaller than the current value (0 means unset). The network layer
// registers its minimum link latency here; a sharded Run panics if no
// positive lookahead was registered.
func (e *Engine) SetLookahead(d Time) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	if e.lookahead == 0 || d < e.lookahead {
		e.lookahead = d
	}
}

// Lookahead returns the registered conservative lookahead (0 = unset).
func (e *Engine) Lookahead() Time { return e.lookahead }

// NewDomain creates a new domain and returns its id. On an unsharded
// engine it is a no-op returning domain 0, so model code can partition
// unconditionally and classic mode collapses to the single calendar.
// Must be called during construction, never from a running simulation.
// The domain RNG seed is derived from (engine seed, id, name), so a
// domain's random stream depends only on the topology, not on the
// worker count.
func (e *Engine) NewDomain(name string) int {
	if !e.shardingOn {
		return 0
	}
	d := &domain{
		eng:     e,
		id:      len(e.domains),
		name:    name,
		yield:   make(chan struct{}),
		live:    make(map[*Proc]struct{}),
		procs:   make(map[*Proc]struct{}),
		rngSeed: deriveDomainSeed(e.seed, len(e.domains), name),
	}
	e.domains = append(e.domains, d)
	return d.id
}

// SetDomain moves the construction cursor: subsequent Spawn, NewResource,
// NewQueue, At, Rand etc. bind to the given domain. It returns the
// previous cursor so callers can restore it. On an unsharded engine only
// domain 0 exists and SetDomain(0) is a no-op.
func (e *Engine) SetDomain(id int) int {
	prev := e.cur.id
	e.cur = e.domains[id]
	return prev
}

// CurrentDomain returns the construction cursor's domain id.
func (e *Engine) CurrentDomain() int { return e.cur.id }

// DomainName returns the name of domain id ("" for domain 0).
func (e *Engine) DomainName(id int) string { return e.domains[id].name }

// deriveDomainSeed mixes the engine seed with the domain's identity via
// FNV-1a, the same construction the experiment runner uses for sweep
// seeds: a cheap, stable, well-mixed pure function.
func deriveDomainSeed(base int64, id int, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(base) >> (8 * i)))
	}
	for i := 0; i < 4; i++ {
		mix(byte(uint32(id) >> (8 * i)))
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	return int64(h)
}

// Post schedules fn to run at absolute time at in domain dst. It is the
// only legal cross-domain interaction: on a sharded engine the event is
// staged in the sender's outbox and merged into dst's calendar at the
// next window barrier, which requires at ≥ now + lookahead (the network
// layer guarantees this by construction — every cross-node message pays
// at least the minimum link latency). Same-domain Posts go through the
// same mailbox so that event ordering is independent of how nodes are
// grouped into domains. On an unsharded engine Post schedules directly.
func (p *Proc) Post(dst int, at Time, fn func(Ctx)) {
	d := p.dom
	e := d.eng
	if len(e.domains) == 1 {
		d.schedule(at, func() { fn(Ctx{d}) }, false)
		return
	}
	if at < d.now+e.lookahead {
		panic(fmt.Sprintf("sim: Post at %v violates lookahead %v from now %v", at, e.lookahead, d.now))
	}
	d.outSeq++
	d.outbox = append(d.outbox, mail{at: at, seq: d.outSeq, src: int32(d.id), dst: int32(dst), fn: fn})
}

// windowResult is one worker's report after executing a window.
type windowResult struct {
	min     Time // earliest pending event across the worker's domains
	fgDelta int  // net foreground-event change across the window
	mail    []mail
	trap    interface{}
}

// shardWorker owns a static partition of domains (ids ≡ index mod
// worker count) and executes their windows on a dedicated goroutine. The
// heap orders the partition by next-event time so a window touches only
// the domains that actually have events before the horizon.
type shardWorker struct {
	doms    []*domain // binary min-heap by nextEventAt
	in      chan Time // horizon broadcast
	out     chan windowResult
	mailBuf []mail
}

func (w *shardWorker) less(i, j int) bool {
	return w.doms[i].nextEventAt() < w.doms[j].nextEventAt()
}

func (w *shardWorker) swap(i, j int) {
	w.doms[i], w.doms[j] = w.doms[j], w.doms[i]
	w.doms[i].hpos = i
	w.doms[j].hpos = j
}

func (w *shardWorker) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !w.less(i, parent) {
			break
		}
		w.swap(i, parent)
		i = parent
	}
}

func (w *shardWorker) siftDown(i int) {
	n := len(w.doms)
	for {
		min := i
		if l := 2*i + 1; l < n && w.less(l, min) {
			min = l
		}
		if r := 2*i + 2; r < n && w.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		w.swap(i, min)
		i = min
	}
}

func (w *shardWorker) init() {
	for i := range w.doms {
		w.doms[i].hpos = i
	}
	for i := len(w.doms)/2 - 1; i >= 0; i-- {
		w.siftDown(i)
	}
}

// window executes one conservative window on every owned domain with
// events before horizon. Any panic from the simulation program (re-raised
// by the domain dispatch loop) is captured into the result so the
// coordinator can re-panic it on the Run caller's goroutine.
func (w *shardWorker) window(horizon Time) (res windowResult) {
	res.min = MaxTime
	res.mail = w.mailBuf[:0]
	defer func() {
		if r := recover(); r != nil {
			res.trap = r
		}
	}()
	for len(w.doms) > 0 && w.doms[0].nextEventAt() < horizon {
		d := w.doms[0]
		fg0 := d.fg
		d.runTo(horizon)
		res.fgDelta += d.fg - fg0
		if len(d.outbox) > 0 {
			res.mail = append(res.mail, d.outbox...)
			d.outbox = d.outbox[:0]
		}
		w.siftDown(0) // d's next event is now ≥ horizon
	}
	if len(w.doms) > 0 {
		res.min = w.doms[0].nextEventAt()
	}
	return res
}

func (w *shardWorker) loop() {
	for horizon := range w.in {
		res := w.window(horizon)
		w.mailBuf = res.mail // reuse: coordinator consumes before next send
		w.out <- res
	}
}

// runSharded is the sharded RunUntil: a coordinator loop alternating
// parallel windows with deterministic mail merges.
func (e *Engine) runSharded(deadline Time) error {
	if e.lookahead <= 0 {
		panic("sim: sharded run requires a positive lookahead (netsim registers its minimum link latency; call SetLookahead)")
	}
	nw := e.workers
	if nw > len(e.domains) {
		nw = len(e.domains)
	}
	workers := make([]*shardWorker, nw)
	for i := range workers {
		workers[i] = &shardWorker{
			in:  make(chan Time, 1),
			out: make(chan windowResult, 1),
		}
	}
	for i, d := range e.domains {
		w := workers[i%nw]
		w.doms = append(w.doms, d)
	}
	for _, w := range workers {
		w.init()
		go w.loop()
	}
	defer func() {
		for _, w := range workers {
			close(w.in)
		}
	}()

	totalFg := 0
	m := MaxTime
	for _, d := range e.domains {
		totalFg += d.fg
		if t := d.nextEventAt(); t < m {
			m = t
		}
	}

	var inbox []mail
	for totalFg > 0 {
		if m > deadline {
			return nil
		}
		horizon := m + e.lookahead
		if horizon < m { // overflow
			horizon = MaxTime
		}
		if deadline != MaxTime && horizon > deadline+1 {
			horizon = deadline + 1
		}

		for _, w := range workers {
			w.in <- horizon
		}
		var trap interface{}
		m = MaxTime
		inbox = inbox[:0]
		for _, w := range workers {
			res := <-w.out
			if res.trap != nil && trap == nil {
				trap = res.trap
			}
			totalFg += res.fgDelta
			if res.min < m {
				m = res.min
			}
			inbox = append(inbox, res.mail...)
		}
		if trap != nil {
			panic(trap)
		}

		// Deterministic merge: delivery order is a pure function of
		// (time, source domain, source sequence), independent of which
		// worker ran which domain when.
		sort.Slice(inbox, func(i, j int) bool {
			a, b := &inbox[i], &inbox[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for i := range inbox {
			ml := &inbox[i]
			d := e.domains[ml.dst]
			fn := ml.fn
			d.seq++
			d.fg++
			d.events.push(event{at: ml.at, seq: d.seq, fn: func() { fn(Ctx{d}) }})
			if ml.at < m {
				m = ml.at
			}
			// The new event can only move the domain's key earlier, so a
			// sift-up in its (idle) worker's heap restores order.
			workers[int(ml.dst)%nw].siftUp(d.hpos)
			ml.fn = nil
		}
		totalFg += len(inbox)
	}

	var blocked []string
	for _, d := range e.domains {
		if len(d.live) > 0 {
			blocked = append(blocked, liveNames(d.live)...)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Now: e.Now(), Procs: blocked}
	}
	return nil
}
