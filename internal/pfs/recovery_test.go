package pfs

import (
	"errors"
	"strings"
	"testing"

	"bps/internal/device"
	"bps/internal/netsim"
	"bps/internal/sim"
)

// fakeFaults is a deterministic ServerFaults: down before until, slowed
// by delay inside [slowFrom, slowTo).
type fakeFaults struct {
	until    sim.Time
	delay    sim.Time
	slowFrom sim.Time
	slowTo   sim.Time
}

func (f fakeFaults) Down(now sim.Time) bool { return now < f.until }

func (f fakeFaults) SlowDelay(now sim.Time) sim.Time {
	if f.delay > 0 && now >= f.slowFrom && now < f.slowTo {
		return f.delay
	}
	return 0
}

// newRecoveryCluster builds n RAM-disk servers with the given recovery
// policy and per-server fault models.
func newRecoveryCluster(e *sim.Engine, n int, rc RecoveryConfig, faults func(id int) ServerFaults) *Cluster {
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := make([]device.Device, n)
	for i := range devs {
		devs[i] = device.NewRAMDisk(e, "ram", 16<<30, 10*sim.Microsecond, 500e6)
	}
	return NewCluster(e, fabric, Config{Recovery: rc, Faults: faults}, devs)
}

// TestRecoveryHealthyMovesSameData: on a fault-free cluster the recovery
// path must move exactly the data the direct path moves and report no
// errors — it only changes how waiting is done, not what is asked for.
func TestRecoveryHealthyMovesSameData(t *testing.T) {
	run := func(rc RecoveryConfig) int64 {
		e := sim.NewEngine(1)
		c := newRecoveryCluster(e, 4, rc, nil)
		cl := c.NewClient("client0")
		e.Spawn("app", func(p *sim.Proc) {
			f, err := c.Create("data", 8<<20, c.DefaultLayout())
			if err != nil {
				t.Error(err)
				return
			}
			for off := int64(0); off < 8<<20; off += 1 << 20 {
				if err := cl.Read(p, f, off, 1<<20); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Moved()
	}
	direct := run(RecoveryConfig{})
	recovered := run(RecoveryConfig{Enabled: true})
	if direct != recovered {
		t.Fatalf("moved: direct=%d recovered=%d", direct, recovered)
	}
}

// TestRetryRidesThroughTransientOutage: the server drops every job for
// the first 20 ms; bounded retries with backoff must carry the access
// through to success once the outage clears.
func TestRetryRidesThroughTransientOutage(t *testing.T) {
	e := sim.NewEngine(1)
	rc := RecoveryConfig{Enabled: true, Timeout: 5 * sim.Millisecond, MaxRetries: 8, Backoff: sim.Millisecond, MaxBackoff: 4 * sim.Millisecond}
	c := newRecoveryCluster(e, 1, rc, func(int) ServerFaults {
		return fakeFaults{until: 20 * sim.Millisecond}
	})
	cl := c.NewClient("client0")
	var readErr error
	var doneAt sim.Time
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 1<<20, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		readErr = cl.Read(p, f, 0, 64<<10)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr != nil {
		t.Fatalf("read did not recover: %v", readErr)
	}
	if doneAt < 20*sim.Millisecond {
		t.Fatalf("read finished at %v, before the outage cleared", doneAt)
	}
	if got := c.Servers()[0].FS().Moved(); got != 64<<10 {
		t.Fatalf("server moved %d, want exactly one serviced read (dropped jobs do no I/O)", got)
	}
}

// TestBackoffScheduleDeterministic: the retry schedule (and therefore
// the whole simulated timeline) replays bit-identically.
func TestBackoffScheduleDeterministic(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine(7)
		rc := RecoveryConfig{Enabled: true, Timeout: 3 * sim.Millisecond, MaxRetries: 6, Backoff: sim.Millisecond, MaxBackoff: 8 * sim.Millisecond}
		c := newRecoveryCluster(e, 2, rc, func(id int) ServerFaults {
			if id == 0 {
				return fakeFaults{until: 15 * sim.Millisecond}
			}
			return fakeFaults{}
		})
		cl := c.NewClient("client0")
		e.Spawn("app", func(p *sim.Proc) {
			f, err := c.Create("data", 1<<20, c.DefaultLayout())
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.Read(p, f, 0, 256<<10); err != nil {
				t.Error(err)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic recovery timeline: %v vs %v", a, b)
	}
}

// TestFailoverToReplica: server 0 is permanently dead, so position 0's
// chunks must be serviced from their chained-declustering replica on
// server 1, and the dead server's disk must stay untouched.
func TestFailoverToReplica(t *testing.T) {
	e := sim.NewEngine(1)
	rc := RecoveryConfig{Enabled: true, Failover: true, Timeout: 2 * sim.Millisecond, MaxRetries: 4, Backoff: sim.Millisecond}
	c := newRecoveryCluster(e, 2, rc, func(id int) ServerFaults {
		if id == 0 {
			return fakeFaults{until: sim.Time(1 << 62)}
		}
		return fakeFaults{}
	})
	cl := c.NewClient("client0")
	var readErr error
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 128<<10, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		readErr = cl.Read(p, f, 0, 128<<10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr != nil {
		t.Fatalf("read did not fail over: %v", readErr)
	}
	if got := c.Servers()[0].FS().Moved(); got != 0 {
		t.Fatalf("dead server moved %d bytes", got)
	}
	// Server 1 serviced its own 64 KiB stripe plus position 0's replica.
	if got := c.Servers()[1].FS().Moved(); got != 128<<10 {
		t.Fatalf("surviving server moved %d, want %d", got, 128<<10)
	}
}

// TestExhaustedRetriesReportTimeout: with every server dead forever the
// access must fail with a joined ErrRPCTimeout after its retry budget —
// and the engine must not deadlock while the client waits on replies
// that never come.
func TestExhaustedRetriesReportTimeout(t *testing.T) {
	e := sim.NewEngine(1)
	rc := RecoveryConfig{Enabled: true, Timeout: 2 * sim.Millisecond, MaxRetries: 2, Backoff: sim.Millisecond}
	c := newRecoveryCluster(e, 2, rc, func(int) ServerFaults {
		return fakeFaults{until: sim.Time(1 << 62)}
	})
	cl := c.NewClient("client0")
	var readErr error
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 1<<20, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		readErr = cl.Read(p, f, 0, 128<<10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr == nil {
		t.Fatal("read on a dead cluster succeeded")
	}
	if !errors.Is(readErr, ErrRPCTimeout) {
		t.Fatalf("err = %v, want ErrRPCTimeout in the chain", readErr)
	}
	// Both per-server RPCs exhausted their budgets; the join names both.
	if !strings.Contains(readErr.Error(), "ios0") || !strings.Contains(readErr.Error(), "ios1") {
		t.Fatalf("err = %v, want both servers named", readErr)
	}
}

// TestSlowWindowDelaysService: a slow window must stretch the access
// without failing it.
func TestSlowWindowDelaysService(t *testing.T) {
	run := func(delay sim.Time) sim.Time {
		e := sim.NewEngine(1)
		rc := RecoveryConfig{Enabled: true}
		c := newRecoveryCluster(e, 1, rc, func(int) ServerFaults {
			return fakeFaults{delay: delay, slowFrom: 0, slowTo: sim.Second}
		})
		cl := c.NewClient("client0")
		// Measure when the read returns, not e.Now(): the engine clock
		// always runs to the RPC timeout timer's expiry.
		var doneAt sim.Time
		e.Spawn("app", func(p *sim.Proc) {
			f, err := c.Create("data", 1<<20, c.DefaultLayout())
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.Read(p, f, 0, 64<<10); err != nil {
				t.Error(err)
			}
			doneAt = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return doneAt
	}
	healthy := run(0)
	slowed := run(10 * sim.Millisecond)
	if slowed < healthy+10*sim.Millisecond {
		t.Fatalf("slow window added %v, want >= 10ms", slowed-healthy)
	}
}

// TestDirectPathJoinsAllServerErrors: the non-recovery path aggregates
// every failing server instead of reporting only the first.
func TestDirectPathJoinsAllServerErrors(t *testing.T) {
	e := sim.NewEngine(1)
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := make([]device.Device, 2)
	for i := range devs {
		// Every access fails after full service time.
		devs[i] = device.NewFaultInjector(device.NewRAMDisk(e, "ram", 16<<30, 10*sim.Microsecond, 500e6), 1)
	}
	c := NewCluster(e, fabric, Config{}, devs)
	cl := c.NewClient("client0")
	var readErr error
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 1<<20, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		readErr = cl.Read(p, f, 0, 128<<10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr == nil {
		t.Fatal("read on all-failing devices succeeded")
	}
	if !errors.Is(readErr, device.ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault in the chain", readErr)
	}
	if !strings.Contains(readErr.Error(), "ios0") || !strings.Contains(readErr.Error(), "ios1") {
		t.Fatalf("err = %v, want both failing servers named", readErr)
	}
}

// TestFaultsRequireRecovery: injecting faults without the recovery path
// would deadlock clients on dropped jobs; the constructor must refuse.
func TestFaultsRequireRecovery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Faults without Recovery.Enabled did not panic")
		}
	}()
	e := sim.NewEngine(1)
	newRecoveryCluster(e, 1, RecoveryConfig{}, func(int) ServerFaults { return fakeFaults{} })
}

// TestNoReplicasWithoutFailover: replica files exist only when failover
// can use them, so healthy layouts stay byte-for-byte unchanged.
func TestNoReplicasWithoutFailover(t *testing.T) {
	e := sim.NewEngine(1)
	c := newRecoveryCluster(e, 2, RecoveryConfig{Enabled: true}, nil)
	f, err := c.Create("data", 128<<10, c.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.replica) != 0 {
		t.Fatalf("replicas allocated without failover: %d", len(f.replica))
	}
	e2 := sim.NewEngine(1)
	c2 := newRecoveryCluster(e2, 2, RecoveryConfig{Enabled: true, Failover: true}, nil)
	f2, err := c2.Create("data", 128<<10, c2.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.replica) != 2 || !f2.hasReplica(0) || !f2.hasReplica(1) {
		t.Fatalf("failover file missing replicas: %+v", f2.replica)
	}
	if f2.replicaServer(0) != 1 || f2.replicaServer(1) != 0 {
		t.Fatalf("replica placement wrong: %d, %d", f2.replicaServer(0), f2.replicaServer(1))
	}
}
