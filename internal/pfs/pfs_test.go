package pfs

import (
	"testing"
	"testing/quick"

	"bps/internal/device"
	"bps/internal/netsim"
	"bps/internal/sim"
)

// newTestCluster builds a cluster of n RAM-disk servers on a fast fabric.
func newTestCluster(e *sim.Engine, n int) *Cluster {
	fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
	devs := make([]device.Device, n)
	for i := range devs {
		devs[i] = device.NewRAMDisk(e, "ram", 16<<30, 10*sim.Microsecond, 500e6)
	}
	return NewCluster(e, fabric, Config{}, devs)
}

func TestLocalSizeFor(t *testing.T) {
	const ss = 100
	cases := []struct {
		size int64
		n    int
		want []int64
	}{
		{size: 400, n: 4, want: []int64{100, 100, 100, 100}},
		{size: 450, n: 4, want: []int64{150, 100, 100, 100}},
		{size: 50, n: 4, want: []int64{50, 0, 0, 0}},
		{size: 1000, n: 3, want: []int64{400, 300, 300}},
		{size: 1050, n: 3, want: []int64{400, 350, 300}},
		{size: 1, n: 1, want: []int64{1}},
	}
	for _, c := range cases {
		for pos, want := range c.want {
			if got := localSizeFor(c.size, ss, c.n, pos); got != want {
				t.Errorf("localSizeFor(size=%d, n=%d, pos=%d) = %d, want %d",
					c.size, c.n, pos, got, want)
			}
		}
	}
}

// Property: local sizes sum to the file size for any (size, stripe, n).
func TestLocalSizesSumProperty(t *testing.T) {
	prop := func(size uint32, stripeExp, n uint8) bool {
		sz := int64(size%1_000_000) + 1
		ss := int64(1) << (stripeExp%8 + 6) // 64..8192
		nn := int(n%8) + 1
		var sum int64
		for pos := 0; pos < nn; pos++ {
			sum += localSizeFor(sz, ss, nn, pos)
		}
		return sum == sz
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunksFor covers [off, off+size) exactly, in order, and every
// chunk stays within its server's local file size.
func TestChunksCoverProperty(t *testing.T) {
	prop := func(off, size uint32, n uint8) bool {
		nn := int(n%8) + 1
		const ss = 64 << 10
		const fileSize = 4 << 20
		o := int64(off) % fileSize
		s := int64(size)%(fileSize-o) + 1
		f := &File{
			size:   fileSize,
			layout: Layout{StripeSize: ss, Servers: make([]int, nn)},
		}
		chunks := f.chunksFor(o, s)
		var covered int64
		for _, ch := range chunks {
			if ch.size <= 0 || ch.pos < 0 || ch.pos >= nn {
				return false
			}
			end := ch.localOff + ch.size
			if end > localSizeFor(fileSize, ss, nn, ch.pos) {
				return false
			}
			covered += ch.size
		}
		return covered == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksMergeSingleServer(t *testing.T) {
	f := &File{size: 1 << 20, layout: Layout{StripeSize: 64 << 10, Servers: []int{0}}}
	chunks := f.chunksFor(0, 1<<20)
	if len(chunks) != 1 {
		t.Fatalf("single-server read split into %d chunks, want 1", len(chunks))
	}
	if chunks[0].localOff != 0 || chunks[0].size != 1<<20 {
		t.Fatalf("chunk = %+v", chunks[0])
	}
}

func TestCreateValidation(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 2)
	if _, err := c.Create("f", 0, c.DefaultLayout()); err == nil {
		t.Error("zero-size create succeeded")
	}
	if _, err := c.Create("f", 1024, Layout{Servers: []int{5}}); err == nil {
		t.Error("create with unknown server succeeded")
	}
	if _, err := c.Create("f", 1024, Layout{}); err == nil {
		t.Error("create with empty layout succeeded")
	}
	if _, err := c.Create("f", 1024, c.DefaultLayout()); err != nil {
		t.Error(err)
	}
	if _, err := c.Create("f", 1024, c.DefaultLayout()); err == nil {
		t.Error("duplicate create succeeded")
	}
	if _, err := c.Open("f"); err != nil {
		t.Error(err)
	}
	if _, err := c.Open("g"); err == nil {
		t.Error("open missing succeeded")
	}
}

func TestReadMovesDataAndCompletes(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 4)
	cl := c.NewClient("client0")
	var readErr error
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 8<<20, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		readErr = cl.Read(p, f, 0, 8<<20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	if c.Moved() != 8<<20 {
		t.Fatalf("Moved = %d, want %d", c.Moved(), 8<<20)
	}
	// Every server participated (8 MiB over 4 servers, 64 KiB stripes).
	for _, s := range c.Servers() {
		if s.FS().Moved() != 2<<20 {
			t.Fatalf("server %d moved %d, want %d", s.ID(), s.FS().Moved(), 2<<20)
		}
	}
	if cl.NIC().Received() < 8<<20 {
		t.Fatalf("client received %d bytes", cl.NIC().Received())
	}
}

func TestWritePath(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 2)
	cl := c.NewClient("client0")
	e.Spawn("app", func(p *sim.Proc) {
		f, err := c.Create("data", 1<<20, c.DefaultLayout())
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.Write(p, f, 0, 1<<20); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, s := range c.Servers() {
		written += s.FS().Device().Stats().BytesWritten
	}
	if written != 1<<20 {
		t.Fatalf("devices wrote %d, want %d", written, 1<<20)
	}
}

func TestReadBounds(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 2)
	cl := c.NewClient("client0")
	e.Spawn("app", func(p *sim.Proc) {
		f, _ := c.Create("data", 4096, c.DefaultLayout())
		if err := cl.Read(p, f, 0, 8192); err == nil {
			t.Error("out-of-bounds read succeeded")
		}
		if err := cl.Read(p, f, 0, 0); err == nil {
			t.Error("zero-size read succeeded")
		}
		if err := cl.Read(p, f, -4, 8); err == nil {
			t.Error("negative-offset read succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedLayoutIsolatesServers(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 4)
	for i := 0; i < 4; i++ {
		i := i
		cl := c.NewClient("client")
		e.Spawn("app", func(p *sim.Proc) {
			f, err := c.Create(fileName(i), 1<<20, c.PinnedLayout(i))
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.Read(p, f, 0, 1<<20); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Servers() {
		if s.FS().Moved() != 1<<20 {
			t.Fatalf("server %d moved %d, want exactly its own file", s.ID(), s.FS().Moved())
		}
	}
}

func fileName(i int) string {
	return "file" + string(rune('0'+i))
}

func TestMoreServersFaster(t *testing.T) {
	run := func(nservers int) sim.Time {
		e := sim.NewEngine(1)
		fabric := netsim.NewFabric(e, netsim.DefaultGigabit())
		devs := make([]device.Device, nservers)
		for i := range devs {
			// Slow disks so the device, not the network, dominates.
			devs[i] = device.NewRAMDisk(e, "disk", 16<<30, 100*sim.Microsecond, 50e6)
		}
		c := NewCluster(e, fabric, Config{}, devs)
		cl := c.NewClient("client0")
		e.Spawn("app", func(p *sim.Proc) {
			f, err := c.Create("data", 64<<20, c.DefaultLayout())
			if err != nil {
				t.Error(err)
				return
			}
			for off := int64(0); off < 64<<20; off += 4 << 20 {
				if err := cl.Read(p, f, off, 4<<20); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one, four := run(1), run(4)
	if four*2 > one {
		t.Fatalf("4 servers (%v) not meaningfully faster than 1 (%v)", four, one)
	}
}

func TestPFSDeterminism(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine(3)
		c := newTestCluster(e, 3)
		for i := 0; i < 3; i++ {
			cl := c.NewClient("client")
			name := fileName(i)
			e.Spawn("app", func(p *sim.Proc) {
				f, err := c.Create(name, 2<<20, c.DefaultLayout())
				if err != nil {
					t.Error(err)
					return
				}
				for off := int64(0); off < 2<<20; off += 64 << 10 {
					if err := cl.Read(p, f, off, 64<<10); err != nil {
						t.Error(err)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic PFS run: %v vs %v", a, b)
	}
}

func TestClientOpenPaysMetadataCost(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 2)
	if _, err := c.Create("data", 1<<20, c.DefaultLayout()); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient("client0")
	var openTime sim.Time
	e.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		f, err := cl.Open(p, "data")
		if err != nil {
			t.Error(err)
			return
		}
		openTime = p.Now() - t0
		if err := cl.Read(p, f, 0, 64<<10); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// At least the 200µs MDS service plus two network hops.
	if openTime < 200*sim.Microsecond {
		t.Fatalf("open took %v, metadata cost missing", openTime)
	}
	if c.MetadataOps() != 1 {
		t.Fatalf("metadata ops = %d", c.MetadataOps())
	}
}

func TestClientOpenMissingFile(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 1)
	cl := c.NewClient("client0")
	e.Spawn("app", func(p *sim.Proc) {
		if _, err := cl.Open(p, "nope"); err == nil {
			t.Error("open of missing file succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Failed lookups still hit the MDS.
	if c.MetadataOps() != 1 {
		t.Fatalf("metadata ops = %d", c.MetadataOps())
	}
}

func TestMetadataServerSerializesLookups(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 1)
	if _, err := c.Create("data", 1<<20, c.DefaultLayout()); err != nil {
		t.Fatal(err)
	}
	const lookers = 8
	var last sim.Time
	for i := 0; i < lookers; i++ {
		cl := c.NewClient("client")
		e.Spawn("app", func(p *sim.Proc) {
			if _, err := cl.Open(p, "data"); err != nil {
				t.Error(err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Eight concurrent lookups serialize on the MDS: ≥ 8×200µs.
	if last < lookers*200*sim.Microsecond {
		t.Fatalf("8 lookups finished in %v, MDS not serializing", last)
	}
	if c.MetadataOps() != lookers {
		t.Fatalf("metadata ops = %d", c.MetadataOps())
	}
}

func TestConcurrentReadersAndWritersOnSharedFile(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 4)
	f, err := c.Create("mixed", 8<<20, c.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rd := c.NewClient("reader")
		e.Spawn("reader", func(p *sim.Proc) {
			for off := int64(0); off < 4<<20; off += 256 << 10 {
				if err := rd.Read(p, f, off, 256<<10); err != nil {
					t.Error(err)
				}
			}
		})
		wr := c.NewClient("writer")
		e.Spawn("writer", func(p *sim.Proc) {
			for off := int64(4 << 20); off < 8<<20; off += 256 << 10 {
				if err := wr.Write(p, f, off, 256<<10); err != nil {
					t.Error(err)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var read, written int64
	for _, s := range c.Servers() {
		read += s.FS().Device().Stats().BytesRead
		written += s.FS().Device().Stats().BytesWritten
	}
	if read != 8<<20 || written != 8<<20 {
		t.Fatalf("read=%d written=%d, want 8 MiB each", read, written)
	}
}

func TestStripeSizeOverrideInLayout(t *testing.T) {
	e := sim.NewEngine(1)
	c := newTestCluster(e, 2)
	layout := Layout{StripeSize: 128 << 10, Servers: []int{0, 1}}
	f, err := c.Create("big-stripe", 1<<20, layout)
	if err != nil {
		t.Fatal(err)
	}
	chunks := f.chunksFor(0, 256<<10)
	if len(chunks) != 2 || chunks[0].size != 128<<10 {
		t.Fatalf("chunks = %+v, want two 128 KiB stripes", chunks)
	}
	if f.Layout().StripeSize != 128<<10 {
		t.Fatalf("layout = %+v", f.Layout())
	}
}

func TestServerQueueDrainsUnderBurst(t *testing.T) {
	// Many clients slam one pinned server; every request completes and
	// the server queue returns to empty.
	e := sim.NewEngine(1)
	c := newTestCluster(e, 1)
	f, err := c.Create("hot", 4<<20, c.PinnedLayout(0))
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 16; i++ {
		cl := c.NewClient("burst")
		e.Spawn("burst", func(p *sim.Proc) {
			if err := cl.Read(p, f, 0, 64<<10); err != nil {
				t.Error(err)
			}
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 16 {
		t.Fatalf("done = %d", done)
	}
}
