package pfs

import (
	"errors"
	"fmt"

	"bps/internal/ioreq"
	"bps/internal/netsim"
	"bps/internal/obs"
	"bps/internal/sim"
)

// Client is a compute-node-side PFS client with its own NIC.
type Client struct {
	cluster *Cluster
	nic     *netsim.NIC
}

// NewClient attaches a client (compute node) to the cluster fabric.
func (c *Cluster) NewClient(name string) *Client {
	return &Client{cluster: c, nic: c.fabric.NewNIC(name)}
}

// NIC returns the client's network interface.
func (cl *Client) NIC() *netsim.NIC { return cl.nic }

// Open looks a file up through the metadata server, paying the RPC
// round trip and queueing behind other metadata operations — the
// runtime equivalent of Cluster.Open. On a classic engine the client
// walks the MDS state inline; on a sharded engine the lookup travels as
// a real RPC into the MDS domain's request queue and the reply
// completes a future back in the client's domain.
func (cl *Client) Open(p *sim.Proc, name string) (*File, error) {
	c := cl.cluster
	if !c.eng.Sharded() {
		c.fabric.Transfer(p, cl.nic, c.mds.nic, c.cfg.RequestMsgBytes)
		c.mds.svc.Acquire(p)
		p.Sleep(c.cfg.MetadataService)
		c.mds.ops++
		c.mdsOps.Add(1)
		c.mds.svc.Release()
		f, err := c.Open(name)
		// The reply travels back whether the lookup succeeded or not.
		c.fabric.Transfer(p, c.mds.nic, cl.nic, c.cfg.RequestMsgBytes)
		return f, err
	}
	op := &mdsOp{cl: cl, name: name, done: p.NewFuture()}
	mq := c.mds.queue
	c.fabric.Send(p, cl.nic, c.mds.nic, c.cfg.RequestMsgBytes, func() { mq.Put(op) })
	op.done.Wait(p)
	return op.f, op.err
}

// ErrRPCTimeout reports that a server failed to reply within the
// recovery policy's per-RPC timeout.
var ErrRPCTimeout = errors.New("pfs: rpc timeout")

// job is one RPC shipped to a server: a list of contiguous local pieces to
// read or write on behalf of one client call. All pieces share one stripe
// position. Under recovery, every attempt is a fresh job with a fresh
// future: a timed-out job may still be sitting in a server queue, and its
// eventual completion must not touch the retry's state.
type job struct {
	client  *Client
	file    *File
	pieces  []chunk
	write   bool
	bytes   int64
	replica bool // service against the position's replica file
	req     *ioreq.Request
	done    *sim.Future
	err     error
}

// Layer adapts the client+file pair into an ioreq layer: requests
// entering Serve fan out as per-server RPCs exactly as Read/Write do,
// and the request travels with each job so server-side spans join the
// access's end-to-end span chain.
func (cl *Client) Layer(f *File) ioreq.Layer {
	return ioreq.Func(func(p *sim.Proc, req *ioreq.Request) error {
		return cl.access(p, f, req)
	})
}

// Read reads size bytes at global offset off, blocking the calling
// process until every involved server has replied.
func (cl *Client) Read(p *sim.Proc, f *File, off, size int64) error {
	return cl.access(p, f, ioreq.New(p, ioreq.OpRead, off, size, f.name))
}

// Write writes size bytes at global offset off.
func (cl *Client) Write(p *sim.Proc, f *File, off, size int64) error {
	return cl.access(p, f, ioreq.New(p, ioreq.OpWrite, off, size, f.name))
}

func (cl *Client) access(p *sim.Proc, f *File, req *ioreq.Request) error {
	off, size, write := req.Off, req.Size, req.Op == ioreq.OpWrite
	if size <= 0 {
		return fmt.Errorf("pfs: access size %d must be positive", size)
	}
	if off < 0 || off+size > f.size {
		return fmt.Errorf("pfs: access [%d,%d) out of bounds (file size %d)", off, off+size, f.size)
	}
	prev := p.Ctx()
	p.SetCtx(req)
	defer p.SetCtx(prev)
	chunks := f.chunksFor(off, size)

	// Group chunks by server position, preserving per-server order: one
	// RPC per involved server, as PVFS aggregates list I/O. Each job
	// carries a child of req routed to its stripe position, so every
	// server-side span keeps the request's identity.
	perServer := make(map[int]*job)
	var jobs []*job
	for _, ch := range chunks {
		j, ok := perServer[ch.pos]
		if !ok {
			jr := req.Child(off, 0)
			jr.Stripe = ch.pos
			j = &job{
				client: cl,
				file:   f,
				write:  write,
				req:    jr,
				done:   p.NewFuture(),
			}
			perServer[ch.pos] = j
			jobs = append(jobs, j)
		}
		j.pieces = append(j.pieces, ch)
		j.bytes += ch.size
		j.req.Size = j.bytes
	}

	cl.cluster.fanout.Observe(int64(len(jobs)))
	var sp obs.Span
	if cl.cluster.o.Spanning() {
		name := "read"
		if write {
			name = "write"
		}
		var args map[string]any
		if cl.cluster.o.Tracing() {
			args = map[string]any{"offset": off, "size": size, "fanout": len(jobs)}
		}
		sp = cl.cluster.o.Begin(p, "pfs", name, args)
	}

	var err error
	if cl.cluster.cfg.Recovery.Enabled {
		err = cl.accessRecovered(p, f, jobs)
	} else {
		err = cl.accessDirect(p, f, jobs)
	}
	sp.End()
	return err
}

// accessDirect is the historical fire-and-wait path: ship every RPC,
// wait for every reply, aggregate whatever failed. No timeouts, no
// retries — and no extra events, so healthy-stack schedules are
// byte-for-byte what they were before recovery existed.
func (cl *Client) accessDirect(p *sim.Proc, f *File, jobs []*job) error {
	fabric := cl.cluster.fabric
	for _, j := range jobs {
		srv := cl.cluster.servers[f.layout.Servers[j.pieces[0].pos]]
		// Ship the request message. For writes the payload travels with
		// the request; for reads it comes back in the reply.
		msg := cl.cluster.cfg.RequestMsgBytes
		if j.write {
			msg += j.bytes
		}
		j, q := j, srv.queue
		fabric.Send(p, cl.nic, srv.nic, msg, func() { q.Put(j) })
	}
	var errs []error
	for _, j := range jobs {
		j.done.Wait(p)
		if j.err != nil {
			errs = append(errs, fmt.Errorf("pfs: ios%d: %w", f.layout.Servers[j.pieces[0].pos], j.err))
		}
	}
	return errors.Join(errs...)
}

// accessRecovered drives each per-server RPC through the recovery state
// machine. Fan-out RPCs run as child processes so one straggling or
// dead server's timeout and retries overlap the others' progress, like
// a real client's per-request threads.
func (cl *Client) accessRecovered(p *sim.Proc, f *File, jobs []*job) error {
	if len(jobs) == 1 {
		return cl.runRecovered(p, f, jobs[0])
	}
	wg := p.NewWaitGroup()
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		p.Spawn(fmt.Sprintf("%s.rpc%d", p.Name(), i), func(sub *sim.Proc) {
			sub.SetCtx(j.req) // child procs inherit the request context
			errs[i] = cl.runRecovered(sub, f, j)
			wg.Done()
		})
	}
	wg.Wait(p)
	return errors.Join(errs...)
}

// runRecovered executes one per-server RPC under the recovery policy:
// send, wait with a per-RPC timeout, and on failure retry with capped
// exponential backoff plus engine-RNG jitter, alternating to the
// position's replica server when failover is enabled. Every attempt
// ships a fresh job with a fresh future — an abandoned attempt may
// still be serviced later (wasted work, as in a real system), and its
// late completion must not wake anyone.
func (cl *Client) runRecovered(p *sim.Proc, f *File, base *job) error {
	c := cl.cluster
	rc := c.cfg.Recovery
	pos := base.pieces[0].pos
	backoff := rc.Backoff
	useReplica := false
	var errs []error
	for attempt := 0; ; attempt++ {
		j := base
		if attempt > 0 {
			j = &job{
				client:  cl,
				file:    f,
				pieces:  base.pieces,
				write:   base.write,
				bytes:   base.bytes,
				replica: useReplica,
				req:     base.req,
				done:    p.NewFuture(),
			}
			if base.req != nil {
				// Each retry carries its own request copy: the abandoned
				// attempt's job may still be queued on a server (possibly in
				// another domain), and stamping Attempt/Deadline on a shared
				// struct would race with its late servicing.
				r := *base.req
				j.req = &r
			}
		}
		if j.req != nil {
			j.req.Attempt = attempt
			j.req.Deadline = p.Now() + rc.Timeout
		}
		srvID := f.layout.Servers[pos]
		if j.replica {
			srvID = f.replicaServer(pos)
		}
		srv := c.servers[srvID]
		msg := c.cfg.RequestMsgBytes
		if j.write {
			msg += j.bytes
		}
		jj, q := j, srv.queue
		c.fabric.Send(p, cl.nic, srv.nic, msg, func() { q.Put(jj) })

		replied := j.done.WaitTimeout(p, rc.Timeout)
		switch {
		case replied && j.err == nil:
			return nil
		case replied:
			errs = append(errs, fmt.Errorf("pfs: ios%d attempt %d: %w", srvID, attempt+1, j.err))
		default:
			c.timeouts.Add(1)
			errs = append(errs, fmt.Errorf("pfs: ios%d attempt %d: %w", srvID, attempt+1, ErrRPCTimeout))
		}
		if attempt >= rc.MaxRetries {
			c.failed.Add(1)
			return errors.Join(errs...)
		}

		// Back off before the retry; the span makes the recovery gap
		// visible on the proc's Chrome-trace track.
		c.retries.Add(1)
		var rsp obs.Span
		if c.o.Spanning() {
			var args map[string]any
			if c.o.Tracing() {
				args = map[string]any{
					"server": srvID, "attempt": attempt + 1, "backoff_ns": int64(backoff),
				}
			}
			rsp = c.o.Begin(p, "pfs", "retry", args)
		}
		jitter := sim.Time(p.Rand().Int63n(int64(backoff/2) + 1))
		p.Sleep(backoff + jitter)
		rsp.End()
		backoff *= 2
		if backoff > rc.MaxBackoff {
			backoff = rc.MaxBackoff
		}
		if rc.Failover && f.hasReplica(pos) {
			useReplica = !useReplica
			if useReplica {
				c.failovers.Add(1)
			}
		}
	}
}

// worker is a server request-handler process: it drains the queue, does
// the local I/O, and ships read replies back to the client.
func (s *Server) worker(p *sim.Proc) {
	for {
		j := s.queue.Get(p).(*job)
		if s.faults != nil {
			now := p.Now()
			if s.faults.Down(now) {
				// Drop the job without completing its future: the
				// client's per-RPC timeout is what notices.
				s.dropped.Add(1)
				continue
			}
			if d := s.faults.SlowDelay(now); d > 0 {
				s.slowed.Add(1)
				p.Sleep(d)
			}
		}
		s.requests.Add(1)
		s.bytes.Add(j.bytes)
		p.SetCtx(j.req) // server-side spans join the request's span chain
		var sp obs.Span
		if s.o.Spanning() {
			var args map[string]any
			if s.o.Tracing() {
				args = map[string]any{"bytes": j.bytes, "write": j.write}
			}
			sp = s.o.Begin(p, "pfs", s.serveName, args)
		}
		for _, piece := range j.pieces {
			lf := j.file.localFor(piece.pos, j.replica)
			var err error
			if j.write {
				err = lf.WriteAt(p, piece.localOff, piece.size)
			} else {
				err = lf.ReadAt(p, piece.localOff, piece.size)
			}
			if err != nil && j.err == nil {
				j.err = err
			}
		}
		// Reads reply with the data; writes and failures ack only. The
		// reply's delivery completes the job future in the client's domain.
		reply := j.file.cluster.cfg.RequestMsgBytes
		if !j.write && j.err == nil {
			reply += j.bytes
		}
		done := j.done
		j.file.cluster.fabric.Send(p, s.nic, j.client.nic, reply, func() { done.Complete() })
		sp.End()
		p.SetCtx(nil)
	}
}
