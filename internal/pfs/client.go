package pfs

import (
	"fmt"

	"bps/internal/netsim"
	"bps/internal/obs"
	"bps/internal/sim"
)

// Client is a compute-node-side PFS client with its own NIC.
type Client struct {
	cluster *Cluster
	nic     *netsim.NIC
}

// NewClient attaches a client (compute node) to the cluster fabric.
func (c *Cluster) NewClient(name string) *Client {
	return &Client{cluster: c, nic: c.fabric.NewNIC(name)}
}

// NIC returns the client's network interface.
func (cl *Client) NIC() *netsim.NIC { return cl.nic }

// Open looks a file up through the metadata server, paying the RPC
// round trip and queueing behind other metadata operations — the
// runtime equivalent of Cluster.Open.
func (cl *Client) Open(p *sim.Proc, name string) (*File, error) {
	c := cl.cluster
	c.fabric.Transfer(p, cl.nic, c.mds.nic, c.cfg.RequestMsgBytes)
	c.mds.svc.Acquire(p)
	p.Sleep(c.cfg.MetadataService)
	c.mds.ops++
	c.mdsOps.Add(1)
	c.mds.svc.Release()
	f, err := c.Open(name)
	// The reply travels back whether the lookup succeeded or not.
	c.fabric.Transfer(p, c.mds.nic, cl.nic, c.cfg.RequestMsgBytes)
	return f, err
}

// job is one RPC shipped to a server: a list of contiguous local pieces to
// read or write on behalf of one client call.
type job struct {
	client *Client
	file   *File
	pieces []chunk
	write  bool
	bytes  int64
	done   *sim.Future
	err    error
}

// Read reads size bytes at global offset off, blocking the calling
// process until every involved server has replied.
func (cl *Client) Read(p *sim.Proc, f *File, off, size int64) error {
	return cl.access(p, f, off, size, false)
}

// Write writes size bytes at global offset off.
func (cl *Client) Write(p *sim.Proc, f *File, off, size int64) error {
	return cl.access(p, f, off, size, true)
}

func (cl *Client) access(p *sim.Proc, f *File, off, size int64, write bool) error {
	if size <= 0 {
		return fmt.Errorf("pfs: access size %d must be positive", size)
	}
	if off < 0 || off+size > f.size {
		return fmt.Errorf("pfs: access [%d,%d) out of bounds (file size %d)", off, off+size, f.size)
	}
	chunks := f.chunksFor(off, size)

	// Group chunks by server position, preserving per-server order: one
	// RPC per involved server, as PVFS aggregates list I/O.
	perServer := make(map[int]*job)
	var jobs []*job
	for _, ch := range chunks {
		j, ok := perServer[ch.pos]
		if !ok {
			j = &job{
				client: cl,
				file:   f,
				write:  write,
				done:   cl.cluster.eng.NewFuture(),
			}
			perServer[ch.pos] = j
			jobs = append(jobs, j)
		}
		j.pieces = append(j.pieces, ch)
		j.bytes += ch.size
	}

	cl.cluster.fanout.Observe(int64(len(jobs)))
	var sp obs.Span
	if cl.cluster.o.Tracing() {
		name := "read"
		if write {
			name = "write"
		}
		sp = cl.cluster.o.Begin(p, "pfs", name, map[string]any{
			"offset": off, "size": size, "fanout": len(jobs),
		})
	}

	fabric := cl.cluster.fabric
	for _, j := range jobs {
		srv := cl.cluster.servers[f.layout.Servers[j.pieces[0].pos]]
		// Ship the request message. For writes the payload travels with
		// the request; for reads it comes back in the reply.
		msg := cl.cluster.cfg.RequestMsgBytes
		if write {
			msg += j.bytes
		}
		fabric.Transfer(p, cl.nic, srv.nic, msg)
		srv.queue.Put(j)
	}
	var firstErr error
	for _, j := range jobs {
		j.done.Wait(p)
		if j.err != nil && firstErr == nil {
			firstErr = j.err
		}
	}
	sp.End()
	return firstErr
}

// worker is a server request-handler process: it drains the queue, does
// the local I/O, and ships read replies back to the client.
func (s *Server) worker(p *sim.Proc) {
	for {
		j := s.queue.Get(p).(*job)
		s.requests.Add(1)
		s.bytes.Add(j.bytes)
		var sp obs.Span
		if s.o.Tracing() {
			sp = s.o.Begin(p, "pfs", s.serveName, map[string]any{
				"bytes": j.bytes, "write": j.write,
			})
		}
		for _, piece := range j.pieces {
			lf := j.file.local[piece.pos]
			var err error
			if j.write {
				err = lf.WriteAt(p, piece.localOff, piece.size)
			} else {
				err = lf.ReadAt(p, piece.localOff, piece.size)
			}
			if err != nil && j.err == nil {
				j.err = err
			}
		}
		if !j.write && j.err == nil {
			// Reply with the data.
			j.file.cluster.fabric.Transfer(p, s.nic, j.client.nic, j.bytes+j.file.cluster.cfg.RequestMsgBytes)
		} else {
			// Ack only.
			j.file.cluster.fabric.Transfer(p, s.nic, j.client.nic, j.file.cluster.cfg.RequestMsgBytes)
		}
		sp.End()
		j.done.Complete()
	}
}
