// Package pfs simulates a PVFS-style parallel file system: files are
// striped across I/O servers, each server owning a local file system on
// its own device and a NIC. Clients split requests into per-server chunk
// lists, ship them as RPCs over the simulated fabric, and servers service
// them concurrently — the source of the I/O parallelism that the BPS
// paper's concurrency experiments (Figs. 9–11) exercise.
package pfs

import (
	"fmt"

	"bps/internal/device"
	"bps/internal/fsim"
	"bps/internal/netsim"
	"bps/internal/obs"
	"bps/internal/sim"
)

// Config parameterizes a cluster.
type Config struct {
	// DefaultStripeSize is used by layouts that do not override it
	// (PVFS2's default is 64 KiB).
	DefaultStripeSize int64

	// ServerWorkers is the number of concurrent request handlers per
	// server; >1 lets a server overlap one job's network reply with the
	// next job's disk read.
	ServerWorkers int

	// RequestMsgBytes is the on-wire size of one RPC request message.
	RequestMsgBytes int64

	// ServerFS configures each server's local file system (cache size,
	// readahead, ...). The Name field is overridden per server.
	ServerFS fsim.Config

	// MetadataService is the metadata server's per-operation service
	// time (lookup/open). Default 200 µs; metadata RPCs also pay the
	// fabric's round-trip cost and queue under load.
	MetadataService sim.Time

	// Recovery configures the client-side recovery policy (per-RPC
	// timeout, bounded retries with capped exponential backoff,
	// failover to replica servers). Disabled by default; when disabled
	// the client access path is exactly the historical one.
	Recovery RecoveryConfig

	// Faults, when non-nil, supplies each server's fault model at
	// cluster construction. It requires Recovery.Enabled: a down server
	// silently drops jobs, and only the recovery path can time them out
	// — NewCluster panics on the inconsistent combination rather than
	// letting clients deadlock.
	Faults func(id int) ServerFaults

	// DomainOf, when non-nil, names the engine domain server i's
	// machinery (NIC, file system, queue, worker processes) is built
	// in. Sharded runs set it so each server owns a calendar; the
	// caller must have constructed devices[i] with the same domain as
	// construction cursor, since a device's resources and RNG bind to
	// the cursor domain. Harmless on classic engines, where every
	// domain id resolves to the single calendar.
	DomainOf func(i int) int
}

// ServerFaults is one server's fault model, queried by its workers.
// Implementations must be pure functions of simulated time (see
// internal/faults): workers on different engines may interleave
// arbitrarily under parallel sweeps, and only stateless answers keep
// results bit-identical.
type ServerFaults interface {
	// Down reports whether the server drops jobs at time now (permanent
	// death or a transient fail window).
	Down(now sim.Time) bool

	// SlowDelay returns extra per-job service delay at time now.
	SlowDelay(now sim.Time) sim.Time
}

// RecoveryConfig is the client-side recovery policy.
type RecoveryConfig struct {
	// Enabled turns the recovery path on. All other fields are ignored
	// (and no replicas are created) when false.
	Enabled bool

	// Timeout is the per-RPC timeout, measured from when the request
	// has been handed to the server queue. Default 50 ms.
	Timeout sim.Time

	// MaxRetries bounds the retry attempts after the first try.
	// Default 4.
	MaxRetries int

	// Backoff is the initial retry backoff, doubling per attempt up to
	// MaxBackoff, plus jitter of up to half the current backoff drawn
	// from the engine's RNG. Defaults 1 ms and 16 ms.
	Backoff    sim.Time
	MaxBackoff sim.Time

	// Failover alternates retry attempts between a chunk's primary
	// server and its replica (chained declustering: position i's
	// replica lives on the layout's next server). Files created on a
	// failover-enabled cluster allocate replica files at create time.
	Failover bool
}

func (r RecoveryConfig) withDefaults() RecoveryConfig {
	if !r.Enabled {
		return r
	}
	if r.Timeout <= 0 {
		r.Timeout = 50 * sim.Millisecond
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 4
	}
	if r.Backoff <= 0 {
		r.Backoff = sim.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 16 * sim.Millisecond
	}
	return r
}

func (c Config) withDefaults() Config {
	if c.DefaultStripeSize <= 0 {
		c.DefaultStripeSize = 64 << 10
	}
	if c.ServerWorkers <= 0 {
		c.ServerWorkers = 2
	}
	if c.RequestMsgBytes <= 0 {
		c.RequestMsgBytes = 256
	}
	if c.MetadataService <= 0 {
		c.MetadataService = 200 * sim.Microsecond
	}
	c.Recovery = c.Recovery.withDefaults()
	return c
}

// Cluster is a set of I/O servers on a shared fabric, plus a metadata
// server handling lookups.
type Cluster struct {
	eng     *sim.Engine
	fabric  *netsim.Fabric
	cfg     Config
	servers []*Server
	files   map[string]*File
	mds     *metadataServer

	// Observability handles; all nil-safe when the engine is unobserved.
	o         *obs.Observer
	fanout    *obs.Histogram // servers touched per client access
	mdsOps    *obs.Counter
	retries   *obs.Counter // RPC retry attempts across all clients
	timeouts  *obs.Counter // RPCs abandoned on timeout
	failovers *obs.Counter // retries redirected to a replica server
	failed    *obs.Counter // RPCs that exhausted their retry budget
}

// metadataServer services lookup/open RPCs, one at a time. On a classic
// engine clients serialize directly on svc; on a sharded engine the
// server owns its own domain, lookup requests arrive through queue as
// fabric deliveries, and a single daemon drains them in FIFO order
// (equivalent discipline to the capacity-1 svc resource).
type metadataServer struct {
	nic   *netsim.NIC
	svc   *sim.Resource
	queue *sim.Queue // sharded engines only
	ops   uint64
}

// mdsOp is one in-flight metadata lookup on a sharded engine. done is a
// future in the client's domain; the reply transfer completes it.
type mdsOp struct {
	cl   *Client
	name string
	done *sim.Future
	f    *File
	err  error
}

// Server is one I/O server: NIC + local file system + request queue
// drained by worker processes.
type Server struct {
	id     int
	nic    *netsim.NIC
	fs     *fsim.FileSystem
	queue  *sim.Queue
	faults ServerFaults // nil = healthy server

	// Observability handles; all nil-safe when the engine is unobserved.
	o         *obs.Observer
	requests  *obs.Counter
	bytes     *obs.Counter
	dropped   *obs.Counter // jobs silently dropped while down
	slowed    *obs.Counter // jobs delayed by a slow window
	serveName string       // precomputed span name
}

// ID returns the server's index within the cluster.
func (s *Server) ID() int { return s.id }

// FS exposes the server's local file system (for stats and cache flush).
func (s *Server) FS() *fsim.FileSystem { return s.fs }

// NewCluster builds a cluster with one server per device, starting
// ServerWorkers handler processes per server.
func NewCluster(e *sim.Engine, fabric *netsim.Fabric, cfg Config, devices []device.Device) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Faults != nil && !cfg.Recovery.Enabled {
		panic("pfs: Config.Faults requires Recovery.Enabled — a down server drops jobs silently, and only the recovery path can time them out")
	}
	c := &Cluster{
		eng:    e,
		fabric: fabric,
		cfg:    cfg,
		files:  make(map[string]*File),
	}
	mdsPrev := e.SetDomain(e.NewDomain("mds"))
	c.mds = &metadataServer{
		nic: fabric.NewNIC("mds"),
		svc: e.NewResource("mds.svc", 1),
	}
	if e.Sharded() {
		c.mds.queue = e.NewQueue()
		e.SpawnDaemon("mds.worker", c.mdsWorker)
	}
	e.SetDomain(mdsPrev)
	c.o = obs.Get(e)
	reg := c.o.Registry()
	c.fanout = reg.Histogram("pfs/client/fanout")
	c.mdsOps = reg.Counter("pfs/mds/ops")
	c.retries = reg.Counter("pfs/client/retries")
	c.timeouts = reg.Counter("pfs/client/timeouts")
	c.failovers = reg.Counter("pfs/client/failovers")
	c.failed = reg.Counter("pfs/client/failed_rpcs")
	if reg != nil {
		svc := c.mds.svc
		reg.Probe("pfs/mds/utilization", func() float64 { return svc.Utilization(e.Now()) })
	}
	for i, dev := range devices {
		dom := 0
		if cfg.DomainOf != nil {
			dom = cfg.DomainOf(i)
		}
		prev := e.SetDomain(dom)
		fscfg := cfg.ServerFS
		fscfg.Name = fmt.Sprintf("ios%d.fs", i)
		srv := &Server{
			id:        i,
			nic:       fabric.NewNIC(fmt.Sprintf("ios%d", i)),
			fs:        fsim.New(e, dev, fscfg),
			queue:     e.NewQueue(),
			o:         c.o,
			requests:  reg.Counter(fmt.Sprintf("pfs/ios%d/requests", i)),
			bytes:     reg.Counter(fmt.Sprintf("pfs/ios%d/bytes", i)),
			dropped:   reg.Counter(fmt.Sprintf("pfs/ios%d/dropped", i)),
			slowed:    reg.Counter(fmt.Sprintf("pfs/ios%d/slowed", i)),
			serveName: fmt.Sprintf("ios%d serve", i),
		}
		if cfg.Faults != nil {
			srv.faults = cfg.Faults(i)
		}
		if reg != nil {
			q := srv.queue
			reg.Probe(fmt.Sprintf("pfs/ios%d/queue_depth", i), func() float64 { return float64(q.Len()) })
		}
		c.servers = append(c.servers, srv)
		for w := 0; w < cfg.ServerWorkers; w++ {
			e.SpawnDaemon(fmt.Sprintf("ios%d.worker%d", i, w), srv.worker)
		}
		e.SetDomain(prev)
	}
	return c
}

// mdsWorker drains the sharded metadata request queue: one op at a
// time, paying the same service time (and keeping the same utilization
// accounting on svc) as the classic inline path, then shipping the
// reply back over the fabric. The files map is sealed at construction,
// so lookups from this domain are race-free.
func (c *Cluster) mdsWorker(p *sim.Proc) {
	for {
		op := c.mds.queue.Get(p).(*mdsOp)
		c.mds.svc.Acquire(p)
		p.Sleep(c.cfg.MetadataService)
		c.mds.ops++
		c.mdsOps.Add(1)
		c.mds.svc.Release()
		op.f, op.err = c.Open(op.name)
		done := op.done
		c.fabric.Send(p, c.mds.nic, op.cl.nic, c.cfg.RequestMsgBytes, func() { done.Complete() })
	}
}

// Servers returns the cluster's servers.
func (c *Cluster) Servers() []*Server { return c.servers }

// NumServers returns the number of I/O servers.
func (c *Cluster) NumServers() int { return len(c.servers) }

// Moved returns total bytes moved through all server devices — the
// file-system-level data volume that the bandwidth metric sees.
func (c *Cluster) Moved() int64 {
	var m int64
	for _, s := range c.servers {
		m += s.fs.Moved()
	}
	return m
}

// FlushCaches drops every server's page cache (pre-run flush).
func (c *Cluster) FlushCaches() {
	for _, s := range c.servers {
		s.fs.FlushCache()
	}
}

// Layout describes a file's striping, like PVFS2 file-distribution
// attributes. Servers lists cluster server IDs in round-robin order; a
// single-element list pins the whole file to one server (the paper's
// "pure" concurrency setup).
type Layout struct {
	StripeSize int64
	Servers    []int
}

// DefaultLayout stripes over all servers with the default stripe size.
func (c *Cluster) DefaultLayout() Layout {
	ids := make([]int, len(c.servers))
	for i := range ids {
		ids[i] = i
	}
	return Layout{StripeSize: c.cfg.DefaultStripeSize, Servers: ids}
}

// PinnedLayout places the whole file on a single server.
func (c *Cluster) PinnedLayout(server int) Layout {
	return Layout{StripeSize: c.cfg.DefaultStripeSize, Servers: []int{server}}
}

func (c *Cluster) validateLayout(l Layout) (Layout, error) {
	if l.StripeSize <= 0 {
		l.StripeSize = c.cfg.DefaultStripeSize
	}
	if len(l.Servers) == 0 {
		return l, fmt.Errorf("pfs: layout has no servers")
	}
	for _, id := range l.Servers {
		if id < 0 || id >= len(c.servers) {
			return l, fmt.Errorf("pfs: layout references unknown server %d", id)
		}
	}
	return l, nil
}

// File is a striped file.
type File struct {
	cluster *Cluster
	name    string
	size    int64
	layout  Layout
	// local[i] is the backing file on layout.Servers[i]'s file system.
	local []*fsim.File
	// replica[i], when failover is enabled, is position i's replica on
	// the layout's next server (chained declustering); nil otherwise.
	replica []*fsim.File
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the logical file size.
func (f *File) Size() int64 { return f.size }

// Layout returns the file's striping attributes.
func (f *File) Layout() Layout { return f.layout }

// Create allocates a striped file across the layout's servers.
func (c *Cluster) Create(name string, size int64, layout Layout) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pfs: create %q: size %d must be positive", name, size)
	}
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("pfs: create %q: already exists", name)
	}
	layout, err := c.validateLayout(layout)
	if err != nil {
		return nil, fmt.Errorf("pfs: create %q: %w", name, err)
	}
	f := &File{cluster: c, name: name, size: size, layout: layout}
	for pos := range layout.Servers {
		localSize := localSizeFor(size, layout.StripeSize, len(layout.Servers), pos)
		if localSize == 0 {
			// Still create a minimal backing file so the slice aligns.
			localSize = 1
		}
		srv := c.servers[layout.Servers[pos]]
		lf, err := srv.fs.Create(name, localSize)
		if err != nil {
			return nil, fmt.Errorf("pfs: create %q on server %d: %w", name, srv.id, err)
		}
		f.local = append(f.local, lf)
	}
	// Failover needs somewhere to fail over to: allocate each position's
	// replica on the layout's next server (chained declustering). Only
	// failover-enabled clusters pay the extra allocation, so healthy
	// stacks are byte-for-byte unchanged.
	if c.cfg.Recovery.Enabled && c.cfg.Recovery.Failover && len(layout.Servers) > 1 {
		for pos := range layout.Servers {
			localSize := localSizeFor(size, layout.StripeSize, len(layout.Servers), pos)
			if localSize == 0 {
				localSize = 1
			}
			srv := c.servers[f.replicaServer(pos)]
			rf, err := srv.fs.Create(fmt.Sprintf("%s.r%d", name, pos), localSize)
			if err != nil {
				return nil, fmt.Errorf("pfs: create replica %q pos %d on server %d: %w", name, pos, srv.id, err)
			}
			f.replica = append(f.replica, rf)
		}
	}
	c.files[name] = f
	return f, nil
}

// replicaServer returns the cluster server ID hosting position pos's
// replica: the next server in the layout's round-robin order.
func (f *File) replicaServer(pos int) int {
	return f.layout.Servers[(pos+1)%len(f.layout.Servers)]
}

// hasReplica reports whether position pos has a replica file.
func (f *File) hasReplica(pos int) bool {
	return pos < len(f.replica) && f.replica[pos] != nil
}

// localFor returns the backing file a job at position pos touches:
// the primary local file, or the replica when the job failed over.
func (f *File) localFor(pos int, replica bool) *fsim.File {
	if replica && pos < len(f.replica) {
		return f.replica[pos]
	}
	return f.local[pos]
}

// Open returns an existing file without consuming simulated time
// (setup-phase lookup). For a runtime open that pays the metadata RPC,
// use Client.Open.
func (c *Cluster) Open(name string) (*File, error) {
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: open %q: no such file", name)
	}
	return f, nil
}

// MetadataOps returns the number of metadata RPCs serviced.
func (c *Cluster) MetadataOps() uint64 { return c.mds.ops }

// localSizeFor computes the number of bytes of an size-byte file that land
// on the server at round-robin position pos of n servers.
func localSizeFor(size, stripe int64, n int, pos int) int64 {
	fullStripes := size / stripe
	tail := size % stripe
	k := int64(pos)
	var local int64
	if fullStripes > k {
		local = ((fullStripes - k - 1) / int64(n)) * stripe
		local += stripe
	}
	// The partial tail stripe has global index fullStripes and belongs to
	// position fullStripes % n.
	if tail > 0 && fullStripes%int64(n) == k {
		local += tail
	}
	return local
}

// chunk is one contiguous piece of a request on a single server.
type chunk struct {
	pos      int   // position within layout.Servers
	localOff int64 // offset in the server-local file
	size     int64
}

// chunksFor splits a global byte range into per-server chunks in global
// offset order.
func (f *File) chunksFor(off, size int64) []chunk {
	ss := f.layout.StripeSize
	n := int64(len(f.layout.Servers))
	var out []chunk
	for size > 0 {
		s := off / ss
		within := off % ss
		run := ss - within
		if run > size {
			run = size
		}
		pos := int(s % n)
		localOff := (s/n)*ss + within
		// Merge with the previous chunk when contiguous on the same server
		// (always the case for n == 1).
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.pos == pos && last.localOff+last.size == localOff {
				last.size += run
				off += run
				size -= run
				continue
			}
		}
		out = append(out, chunk{pos: pos, localOff: localOff, size: run})
		off += run
		size -= run
	}
	return out
}
