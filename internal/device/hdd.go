package device

import (
	"math"

	"bps/internal/sim"
)

// HDDConfig parameterizes a rotating disk. The defaults (see DefaultHDD)
// approximate the 250 GB 7200 RPM SATA-II drive used in the BPS paper's
// testbed.
type HDDConfig struct {
	Name     string
	Capacity int64 // bytes

	RPM float64 // spindle speed; rotational period = 60/RPM seconds

	// Seek curve: a request at distance d bytes from the current head
	// position costs SettleTime + (SeekMax−SettleTime)·sqrt(d/Capacity).
	// The square-root shape is the classic accelerate–coast–settle model.
	SettleTime sim.Time // minimum head repositioning time (track-to-track)
	SeekMax    sim.Time // full-stroke seek

	// Zoned transfer: media rate interpolates linearly from OuterRate at
	// offset 0 to OuterRate·InnerRateRatio at the last byte, matching the
	// higher linear density of outer tracks.
	OuterRate      float64 // bytes/second at offset 0
	InnerRateRatio float64 // (0,1]; inner-track rate as a fraction of outer

	// SequentialWindow is how close (in bytes) a request must start to the
	// current head position to be treated as streaming: no seek and no
	// rotational delay.
	SequentialWindow int64

	// CommandOverhead is charged once per request (controller, bus).
	CommandOverhead sim.Time

	// WritePenalty multiplies the media-transfer portion of writes
	// (write-verify, head switching); 1 means symmetric.
	WritePenalty float64
}

// DefaultHDD returns a configuration approximating the paper's 250 GB
// 7200 RPM SATA-II disk: ~8.5 ms average seek, ~4.17 ms average rotational
// latency, ~110 MB/s outer-zone streaming rate.
func DefaultHDD() HDDConfig {
	return HDDConfig{
		Name:             "hdd",
		Capacity:         250e9,
		RPM:              7200,
		SettleTime:       500 * sim.Microsecond,
		SeekMax:          12 * sim.Millisecond,
		OuterRate:        110e6,
		InnerRateRatio:   0.55,
		SequentialWindow: 1 << 20,
		CommandOverhead:  100 * sim.Microsecond,
		WritePenalty:     1.05,
	}
}

// HDD is a simulated rotating disk with a single head: requests are
// serviced one at a time in FIFO order, so concurrent access produces
// queueing contention.
type HDD struct {
	cfg  HDDConfig
	head *sim.Resource
	rng  randSource
	ins  instruments

	headPos int64 // byte offset just past the last serviced request
	stats   Stats
}

// randSource is the subset of math/rand used by devices, factored out so
// tests can substitute a fixed source.
type randSource interface {
	Float64() float64
}

// NewHDD constructs an HDD bound to the engine. Invalid configurations
// panic: device construction happens at simulation-setup time where a
// loud failure is preferable to a silently wrong model.
func NewHDD(e *sim.Engine, cfg HDDConfig) *HDD {
	if cfg.Capacity <= 0 || cfg.RPM <= 0 || cfg.OuterRate <= 0 {
		panic("device: invalid HDD config: capacity, RPM and OuterRate must be positive")
	}
	if cfg.InnerRateRatio <= 0 || cfg.InnerRateRatio > 1 {
		panic("device: invalid HDD config: InnerRateRatio must be in (0,1]")
	}
	if cfg.WritePenalty < 1 {
		cfg.WritePenalty = 1
	}
	d := &HDD{
		cfg:  cfg,
		head: e.NewResource(cfg.Name+".head", 1),
		rng:  e.Rand(),
	}
	d.ins = newInstruments(e, cfg.Name, d.head)
	return d
}

// Name implements Device.
func (d *HDD) Name() string { return d.cfg.Name }

// Capacity implements Device.
func (d *HDD) Capacity() int64 { return d.cfg.Capacity }

// Stats implements Device.
func (d *HDD) Stats() Stats { return d.stats }

// BusyTime implements Device.
func (d *HDD) BusyTime() sim.Time { return d.head.BusyTime() }

// rotPeriod returns one full revolution.
func (d *HDD) rotPeriod() sim.Time {
	return sim.FromSeconds(60.0 / d.cfg.RPM)
}

// rateAt returns the media rate at a byte offset (zoned).
func (d *HDD) rateAt(offset int64) float64 {
	frac := float64(offset) / float64(d.cfg.Capacity)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return d.cfg.OuterRate * (1 - (1-d.cfg.InnerRateRatio)*frac)
}

// seekTime returns the head-repositioning cost for a given byte distance.
func (d *HDD) seekTime(dist int64) sim.Time {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(d.cfg.Capacity))
	return d.cfg.SettleTime + sim.Time(frac*float64(d.cfg.SeekMax-d.cfg.SettleTime))
}

// serviceTime computes the full service time for a request given the
// current head position, including a rotational latency draw.
func (d *HDD) serviceTime(req Request) sim.Time {
	t := d.cfg.CommandOverhead
	dist := req.Offset - d.headPos
	if dist < 0 {
		dist = -dist
	}
	if dist > d.cfg.SequentialWindow {
		t += d.seekTime(dist)
		// Rotational latency: uniform over one revolution.
		t += sim.Time(d.rng.Float64() * float64(d.rotPeriod()))
	} else if dist != 0 {
		// Near miss: settle plus partial rotation.
		t += d.cfg.SettleTime
		t += sim.Time(d.rng.Float64() * 0.25 * float64(d.rotPeriod()))
	}
	xfer := sim.TransferTime(req.Size, d.rateAt(req.Offset))
	if req.Write {
		xfer = sim.Time(float64(xfer) * d.cfg.WritePenalty)
	}
	return t + xfer
}

// Access implements Device. The request seizes the (single) head, pays
// seek + rotation + transfer, and advances the head position.
func (d *HDD) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.cfg.Capacity); err != nil {
		d.stats.Errors++
		d.ins.errors.Add(1)
		return err
	}
	sp := d.ins.begin(p, req) // span covers queueing + service
	d.head.Acquire(p)
	svc := d.serviceTime(req)
	p.Sleep(svc)
	d.headPos = req.End()
	d.account(req)
	d.head.Release()
	d.ins.done(req, svc)
	sp.End()
	return nil
}

func (d *HDD) account(req Request) {
	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Size
	}
}
