package device

import (
	"bps/internal/sim"
)

// RAMDisk is a near-instant device used in tests and as a memory-speed
// baseline: fixed tiny latency plus a very high transfer rate, unbounded
// concurrency.
type RAMDisk struct {
	name     string
	capacity int64
	latency  sim.Time
	rate     float64
	stats    Stats
	busy     *sim.Resource
	ins      instruments
}

// ramConcurrency caps concurrent RAM-disk accesses; effectively unbounded
// for any workload in this repository while keeping busy-time accounting.
const ramConcurrency = 1 << 16

// NewRAMDisk constructs a RAM-backed device with the given per-request
// latency and transfer rate.
func NewRAMDisk(e *sim.Engine, name string, capacity int64, latency sim.Time, rate float64) *RAMDisk {
	if capacity <= 0 || rate <= 0 {
		panic("device: invalid RAMDisk config")
	}
	d := &RAMDisk{
		name:     name,
		capacity: capacity,
		latency:  latency,
		rate:     rate,
		busy:     e.NewResource(name+".mem", ramConcurrency),
	}
	d.ins = newInstruments(e, name, d.busy)
	return d
}

// Name implements Device.
func (d *RAMDisk) Name() string { return d.name }

// Capacity implements Device.
func (d *RAMDisk) Capacity() int64 { return d.capacity }

// Stats implements Device.
func (d *RAMDisk) Stats() Stats { return d.stats }

// BusyTime implements Device.
func (d *RAMDisk) BusyTime() sim.Time { return d.busy.BusyTime() }

// Access implements Device.
func (d *RAMDisk) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.capacity); err != nil {
		d.stats.Errors++
		d.ins.errors.Add(1)
		return err
	}
	sp := d.ins.begin(p, req)
	d.busy.Acquire(p)
	svc := d.latency + sim.TransferTime(req.Size, d.rate)
	p.Sleep(svc)
	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Size
	}
	d.busy.Release()
	d.ins.done(req, svc)
	sp.End()
	return nil
}

// FaultInjector wraps a device and fails every Nth request (N = Every).
// Failed requests consume the full service time of the underlying device
// before returning ErrInjectedFault, modelling retried/failed accesses
// that the BPS paper still counts in B.
type FaultInjector struct {
	Inner Device
	Every uint64 // fail request numbers k·Every (1-based); 0 disables

	n     uint64
	stats Stats
}

// NewFaultInjector wraps inner, failing every nth access.
func NewFaultInjector(inner Device, every uint64) *FaultInjector {
	return &FaultInjector{Inner: inner, Every: every}
}

// Name implements Device.
func (f *FaultInjector) Name() string { return f.Inner.Name() + "+faults" }

// Capacity implements Device.
func (f *FaultInjector) Capacity() int64 { return f.Inner.Capacity() }

// BusyTime implements Device.
func (f *FaultInjector) BusyTime() sim.Time { return f.Inner.BusyTime() }

// Stats implements Device. Counters include both successful and failed
// accesses; Errors counts the injected faults.
func (f *FaultInjector) Stats() Stats {
	s := f.Inner.Stats()
	s.Errors += f.stats.Errors
	return s
}

// Access implements Device.
func (f *FaultInjector) Access(p *sim.Proc, req Request) error {
	err := f.Inner.Access(p, req)
	if err != nil {
		return err
	}
	f.n++
	if f.Every > 0 && f.n%f.Every == 0 {
		f.stats.Errors++
		return ErrInjectedFault
	}
	return nil
}
