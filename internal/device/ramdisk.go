package device

import (
	"bps/internal/sim"
)

// RAMDisk is a near-instant device used in tests and as a memory-speed
// baseline: fixed tiny latency plus a very high transfer rate, unbounded
// concurrency.
type RAMDisk struct {
	name     string
	capacity int64
	latency  sim.Time
	rate     float64
	stats    Stats
	busy     *sim.Resource
	ins      instruments
}

// ramConcurrency caps concurrent RAM-disk accesses; effectively unbounded
// for any workload in this repository while keeping busy-time accounting.
const ramConcurrency = 1 << 16

// NewRAMDisk constructs a RAM-backed device with the given per-request
// latency and transfer rate.
func NewRAMDisk(e *sim.Engine, name string, capacity int64, latency sim.Time, rate float64) *RAMDisk {
	if capacity <= 0 || rate <= 0 {
		panic("device: invalid RAMDisk config")
	}
	d := &RAMDisk{
		name:     name,
		capacity: capacity,
		latency:  latency,
		rate:     rate,
		busy:     e.NewResource(name+".mem", ramConcurrency),
	}
	d.ins = newInstruments(e, name, d.busy)
	return d
}

// Name implements Device.
func (d *RAMDisk) Name() string { return d.name }

// Capacity implements Device.
func (d *RAMDisk) Capacity() int64 { return d.capacity }

// Stats implements Device.
func (d *RAMDisk) Stats() Stats { return d.stats }

// BusyTime implements Device.
func (d *RAMDisk) BusyTime() sim.Time { return d.busy.BusyTime() }

// Access implements Device.
func (d *RAMDisk) Access(p *sim.Proc, req Request) error {
	if err := req.Validate(d.capacity); err != nil {
		d.stats.Errors++
		d.ins.errors.Add(1)
		return err
	}
	sp := d.ins.begin(p, req)
	d.busy.Acquire(p)
	svc := d.latency + sim.TransferTime(req.Size, d.rate)
	p.Sleep(svc)
	if req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += req.Size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += req.Size
	}
	d.busy.Release()
	d.ins.done(req, svc)
	sp.End()
	return nil
}
