package device

import (
	"bps/internal/sim"
)

// FaultInjector wraps a device and fails every Nth request (N = Every).
// Failed requests consume the full service time of the underlying device
// before returning ErrInjectedFault, modelling retried/failed accesses
// that the BPS paper still counts in B.
//
// Deprecated: use the internal/faults package. faults.NewEveryNth has
// identical semantics, and faults.WrapDevice applies a full
// seed-deterministic fault plan (transient errors, stragglers,
// throughput degradation). This shim remains so existing stacks and
// tests keep working; it cannot live in internal/faults itself because
// that package builds on this one.
type FaultInjector struct {
	Inner Device
	Every uint64 // fail request numbers k·Every (1-based); 0 disables

	n     uint64
	stats Stats
}

// NewFaultInjector wraps inner, failing every nth access.
//
// Deprecated: use faults.NewEveryNth or faults.WrapDevice.
func NewFaultInjector(inner Device, every uint64) *FaultInjector {
	return &FaultInjector{Inner: inner, Every: every}
}

// Name implements Device.
func (f *FaultInjector) Name() string { return f.Inner.Name() + "+faults" }

// Capacity implements Device.
func (f *FaultInjector) Capacity() int64 { return f.Inner.Capacity() }

// BusyTime implements Device.
func (f *FaultInjector) BusyTime() sim.Time { return f.Inner.BusyTime() }

// Stats implements Device. Counters include both successful and failed
// accesses; Errors counts the injected faults.
func (f *FaultInjector) Stats() Stats {
	s := f.Inner.Stats()
	s.Errors += f.stats.Errors
	return s
}

// Access implements Device.
func (f *FaultInjector) Access(p *sim.Proc, req Request) error {
	err := f.Inner.Access(p, req)
	if err != nil {
		return err
	}
	f.n++
	if f.Every > 0 && f.n%f.Every == 0 {
		f.stats.Errors++
		return ErrInjectedFault
	}
	return nil
}
