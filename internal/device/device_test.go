package device

import (
	"testing"
	"testing/quick"

	"bps/internal/sim"
)

func runOne(t *testing.T, body func(e *sim.Engine, p *sim.Proc)) sim.Time {
	t.Helper()
	e := sim.NewEngine(1)
	e.Spawn("test", func(p *sim.Proc) { body(e, p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		req  Request
		ok   bool
		name string
	}{
		{Request{Offset: 0, Size: 512}, true, "basic"},
		{Request{Offset: 0, Size: 0}, false, "zero size"},
		{Request{Offset: -1, Size: 512}, false, "negative offset"},
		{Request{Offset: 1024, Size: 512}, false, "past capacity"},
		{Request{Offset: 512, Size: 512}, true, "exactly at capacity"},
	}
	for _, c := range cases {
		err := c.req.Validate(1024)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestHDDSequentialFasterThanRandom(t *testing.T) {
	const n = 64
	const size = 64 << 10

	seqTime := runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewHDD(e, DefaultHDD())
		for i := 0; i < n; i++ {
			if err := d.Access(p, Request{Offset: int64(i) * size, Size: size}); err != nil {
				t.Error(err)
			}
		}
	})
	randTime := runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewHDD(e, DefaultHDD())
		for i := 0; i < n; i++ {
			off := (int64(i*7919) % 1000) * 100e6 / 1000 * 2 // scattered offsets
			off -= off % SectorSize
			if err := d.Access(p, Request{Offset: off, Size: size}); err != nil {
				t.Error(err)
			}
		}
	})
	if seqTime*3 > randTime {
		t.Fatalf("sequential (%v) not much faster than random (%v) on HDD", seqTime, randTime)
	}
}

func TestHDDZonedRate(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewHDD(e, DefaultHDD())
	outer := d.rateAt(0)
	inner := d.rateAt(d.Capacity())
	if outer != d.cfg.OuterRate {
		t.Fatalf("outer rate = %v, want %v", outer, d.cfg.OuterRate)
	}
	want := d.cfg.OuterRate * d.cfg.InnerRateRatio
	if inner != want {
		t.Fatalf("inner rate = %v, want %v", inner, want)
	}
	if mid := d.rateAt(d.Capacity() / 2); mid <= inner || mid >= outer {
		t.Fatalf("mid-zone rate %v not between %v and %v", mid, inner, outer)
	}
}

func TestHDDSeekMonotone(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewHDD(e, DefaultHDD())
	prev := sim.Time(-1)
	for _, dist := range []int64{0, 1 << 20, 1 << 30, 100e9, 250e9} {
		s := d.seekTime(dist)
		if s < prev {
			t.Fatalf("seekTime not monotone at distance %d: %v < %v", dist, s, prev)
		}
		prev = s
	}
	if d.seekTime(250e9) > d.cfg.SeekMax+d.cfg.SettleTime {
		t.Fatalf("full-stroke seek %v exceeds configured max", d.seekTime(250e9))
	}
}

func TestHDDStatsAndErrors(t *testing.T) {
	runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewHDD(e, DefaultHDD())
		if err := d.Access(p, Request{Offset: 0, Size: 4096}); err != nil {
			t.Error(err)
		}
		if err := d.Access(p, Request{Offset: 4096, Size: 8192, Write: true}); err != nil {
			t.Error(err)
		}
		if err := d.Access(p, Request{Offset: -5, Size: 10}); err == nil {
			t.Error("invalid request did not error")
		}
		s := d.Stats()
		if s.Reads != 1 || s.Writes != 1 || s.BytesRead != 4096 || s.BytesWritten != 8192 || s.Errors != 1 {
			t.Errorf("stats = %+v", s)
		}
		if s.Ops() != 2 || s.Bytes() != 12288 {
			t.Errorf("Ops=%d Bytes=%d", s.Ops(), s.Bytes())
		}
	})
}

func TestHDDContentionSerializes(t *testing.T) {
	// Two concurrent streams on one HDD must take about as long as the two
	// run back to back (single head).
	both := func(nprocs int) sim.Time {
		e := sim.NewEngine(1)
		d := NewHDD(e, DefaultHDD())
		for pid := 0; pid < nprocs; pid++ {
			base := int64(pid) * 50e9
			e.Spawn("s", func(p *sim.Proc) {
				for i := 0; i < 32; i++ {
					if err := d.Access(p, Request{Offset: base + int64(i)*65536, Size: 65536}); err != nil {
						t.Error(err)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one, two := both(1), both(2)
	if two < one*3/2 {
		t.Fatalf("2-stream HDD time %v did not reflect contention vs 1-stream %v", two, one)
	}
}

func TestSSDFasterThanHDDSmallReads(t *testing.T) {
	small := func(mk func(e *sim.Engine) Device) sim.Time {
		return runOne(t, func(e *sim.Engine, p *sim.Proc) {
			d := mk(e)
			for i := 0; i < 128; i++ {
				off := int64(i*7919%1024) * 4096
				if err := d.Access(p, Request{Offset: off, Size: 4096}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	hdd := small(func(e *sim.Engine) Device { return NewHDD(e, DefaultHDD()) })
	ssd := small(func(e *sim.Engine) Device { return NewSSD(e, DefaultSSD()) })
	if ssd*20 > hdd {
		t.Fatalf("SSD random 4K (%v) should be ≫ faster than HDD (%v)", ssd, hdd)
	}
}

func TestSSDFanout(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewSSD(e, DefaultSSD())
	cases := []struct {
		size int64
		want int
	}{
		{1, 1},
		{64 << 10, 1},
		{64<<10 + 1, 2},
		{256 << 10, 4},
		{8 << 20, 8}, // capped at Channels
	}
	for _, c := range cases {
		if got := d.fanout(c.size); got != c.want {
			t.Errorf("fanout(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSSDLargeRequestsUseParallelism(t *testing.T) {
	// An 8 MiB read should be far faster than 128 sequential 64 KiB reads
	// because it stripes across all channels.
	bigTime := runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewSSD(e, DefaultSSD())
		if err := d.Access(p, Request{Offset: 0, Size: 8 << 20}); err != nil {
			t.Error(err)
		}
	})
	smallTime := runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewSSD(e, DefaultSSD())
		for i := 0; i < 128; i++ {
			if err := d.Access(p, Request{Offset: int64(i) * (64 << 10), Size: 64 << 10}); err != nil {
				t.Error(err)
			}
		}
	})
	if bigTime*4 > smallTime {
		t.Fatalf("8MiB single read %v vs 128×64KiB %v: striping not effective", bigTime, smallTime)
	}
}

func TestSSDConcurrencyScales(t *testing.T) {
	run := func(nprocs int) sim.Time {
		e := sim.NewEngine(1)
		d := NewSSD(e, DefaultSSD())
		for pid := 0; pid < nprocs; pid++ {
			base := int64(pid) * 10e9
			e.Spawn("s", func(p *sim.Proc) {
				for i := 0; i < 64; i++ {
					if err := d.Access(p, Request{Offset: base + int64(i)*4096, Size: 4096}); err != nil {
						t.Error(err)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one, four := run(1), run(4)
	// Four independent 4K streams on an 8-channel SSD should not take 4×.
	if four > one*2 {
		t.Fatalf("4-stream SSD time %v vs 1-stream %v: channels not parallel", four, one)
	}
}

func TestRAMDisk(t *testing.T) {
	total := runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewRAMDisk(e, "ram", 1<<30, sim.Microsecond, 10e9)
		if err := d.Access(p, Request{Offset: 0, Size: 10 << 20}); err != nil {
			t.Error(err)
		}
		if d.Stats().BytesRead != 10<<20 {
			t.Errorf("BytesRead = %d", d.Stats().BytesRead)
		}
		if err := d.Access(p, Request{Offset: 1 << 30, Size: 1}); err == nil {
			t.Error("out-of-capacity access did not error")
		}
	})
	// 10 MiB at 10 GB/s ≈ 1.05 ms plus 1 µs latency.
	if total < sim.Millisecond || total > 2*sim.Millisecond {
		t.Fatalf("RAM disk 10MiB time = %v", total)
	}
}

func TestFaultInjector(t *testing.T) {
	runOne(t, func(e *sim.Engine, p *sim.Proc) {
		d := NewFaultInjector(NewRAMDisk(e, "ram", 1<<30, 0, 1e9), 3)
		var errs int
		for i := 0; i < 9; i++ {
			if err := d.Access(p, Request{Offset: int64(i) * 4096, Size: 4096}); err != nil {
				if err != ErrInjectedFault {
					t.Fatalf("unexpected error %v", err)
				}
				errs++
			}
		}
		if errs != 3 {
			t.Fatalf("injected %d faults, want 3", errs)
		}
		s := d.Stats()
		if s.Errors != 3 {
			t.Fatalf("Stats.Errors = %d, want 3", s.Errors)
		}
		// Failed requests still consumed device time and bytes.
		if s.Reads != 9 || s.BytesRead != 9*4096 {
			t.Fatalf("stats = %+v, faulted ops should still be serviced", s)
		}
	})
}

// Property: HDD service time decomposition — for any two request sizes at
// the same location with the head parked there, the larger request never
// finishes first (transfer is monotone in size).
func TestHDDServiceMonotoneInSize(t *testing.T) {
	prop := func(a, b uint32) bool {
		sa, sb := int64(a%(8<<20))+1, int64(b%(8<<20))+1
		if sa > sb {
			sa, sb = sb, sa
		}
		e := sim.NewEngine(7)
		d := NewHDD(e, DefaultHDD())
		// Park head at 0 and stream from there: deterministic, no rotation.
		ta := d.serviceTime(Request{Offset: 0, Size: sa})
		tb := d.serviceTime(Request{Offset: 0, Size: sb})
		return ta <= tb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSD fanout is within [1, Channels] and monotone in size.
func TestSSDFanoutProperty(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewSSD(e, DefaultSSD())
	prop := func(a, b uint32) bool {
		sa, sb := int64(a)+1, int64(b)+1
		if sa > sb {
			sa, sb = sb, sa
		}
		fa, fb := d.fanout(sa), d.fanout(sb)
		return fa >= 1 && fb <= d.cfg.Channels && fa <= fb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceDeterminism(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine(99)
		d := NewHDD(e, DefaultHDD())
		e.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				off := int64(i*104729%4000) * 1e6
				off -= off % SectorSize
				if err := d.Access(p, Request{Offset: off, Size: 65536}); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave different makespans: %v vs %v", a, b)
	}
}

func TestSSDWriteAmplificationSlowsWrites(t *testing.T) {
	write := func(wa float64) sim.Time {
		return runOne(t, func(e *sim.Engine, p *sim.Proc) {
			cfg := DefaultSSD()
			cfg.WriteAmplification = wa
			d := NewSSD(e, cfg)
			for i := 0; i < 16; i++ {
				if err := d.Access(p, Request{Offset: int64(i) * (1 << 20), Size: 1 << 20, Write: true}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	plain, amplified := write(1), write(3)
	if amplified < plain*2 {
		t.Fatalf("WA=3 writes (%v) not ≫ slower than WA=1 (%v)", amplified, plain)
	}
}

func TestSSDNANDWrittenTracksAmplification(t *testing.T) {
	runOne(t, func(e *sim.Engine, p *sim.Proc) {
		cfg := DefaultSSD()
		cfg.WriteAmplification = 2.5
		d := NewSSD(e, cfg)
		if err := d.Access(p, Request{Offset: 0, Size: 1 << 20, Write: true}); err != nil {
			t.Fatal(err)
		}
		want := int64(2.5 * (1 << 20))
		if d.NANDWritten() != want {
			t.Fatalf("NANDWritten = %d, want %d", d.NANDWritten(), want)
		}
		// Logical stats stay at the requested size.
		if d.Stats().BytesWritten != 1<<20 {
			t.Fatalf("BytesWritten = %d", d.Stats().BytesWritten)
		}
		// Reads do not amplify.
		if err := d.Access(p, Request{Offset: 0, Size: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		if d.NANDWritten() != want {
			t.Fatalf("read changed NANDWritten to %d", d.NANDWritten())
		}
	})
}

func TestSSDGCPausesStallDevice(t *testing.T) {
	run := func(gcEvery int64, gcPause sim.Time) (sim.Time, uint64) {
		e := sim.NewEngine(1)
		cfg := DefaultSSD()
		cfg.GCPauseEvery = gcEvery
		cfg.GCPause = gcPause
		d := NewSSD(e, cfg)
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 32; i++ {
				if err := d.Access(p, Request{Offset: int64(i) * (1 << 20), Size: 1 << 20, Write: true}); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), d.GCPauses()
	}
	noGC, zero := run(0, 0)
	if zero != 0 {
		t.Fatalf("GC pauses with GC disabled: %d", zero)
	}
	withGC, pauses := run(8<<20, 50*sim.Millisecond)
	if pauses != 4 {
		t.Fatalf("pauses = %d, want 4 (32 MiB / 8 MiB)", pauses)
	}
	if withGC < noGC+4*50*sim.Millisecond {
		t.Fatalf("GC run %v vs %v: pauses not charged", withGC, noGC)
	}
}

func TestSSDGCPauseBlocksConcurrentReaders(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultSSD()
	cfg.GCPauseEvery = 1 << 20
	cfg.GCPause = 100 * sim.Millisecond
	d := NewSSD(e, cfg)
	var readDone sim.Time
	e.Spawn("writer", func(p *sim.Proc) {
		if err := d.Access(p, Request{Offset: 0, Size: 1 << 20, Write: true}); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // arrive during the GC stall
		if err := d.Access(p, Request{Offset: 8 << 20, Size: 4096}); err != nil {
			t.Error(err)
		}
		readDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readDone < 100*sim.Millisecond {
		t.Fatalf("reader finished at %v, did not queue behind the GC stall", readDone)
	}
}
